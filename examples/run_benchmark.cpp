/**
 * @file
 * Command-line experiment runner: any benchmark x machine x policy.
 *
 *   $ ./run_benchmark [machine] [benchmark] [policy] [shots]
 *
 *   machine:   ibmqx2 | ibmqx4 | ibmq_melbourne   (default ibmqx4)
 *   benchmark: bv-4A bv-4B qaoa-4A qaoa-4B        (Q5 machines)
 *              bv-6 bv-7 qaoa-6 qaoa-7            (melbourne)
 *              or "all"                           (default all)
 *   policy:    baseline | sim | sim2 | aim | matrixinv | all
 *   shots:     trials per policy (default 16384)
 *
 * Prints PST / IST / ROCA and the top outcomes for each run — the
 * everything-in-one-binary entry point for poking at the system.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "metrics/observables.hh"
#include "mitigation/matrix_correction.hh"
#include "qsim/bitstring.hh"

using namespace qem;

namespace
{

std::vector<std::unique_ptr<MitigationPolicy>>
makePolicies(const std::string& which, MachineSession& session,
             const TranspiledProgram& program, unsigned bits)
{
    std::vector<std::unique_ptr<MitigationPolicy>> policies;
    auto want = [&](const char* name) {
        return which == "all" || which == name;
    };
    if (want("baseline"))
        policies.push_back(std::make_unique<BaselinePolicy>());
    if (want("sim2")) {
        policies.push_back(std::make_unique<StaticInvertAndMeasure>(
            twoModeStrings(bits)));
    }
    if (want("sim"))
        policies.push_back(
            std::make_unique<StaticInvertAndMeasure>());
    if (want("aim")) {
        policies.push_back(
            std::make_unique<AdaptiveInvertAndMeasure>(
                session.profileProgram(program)));
    }
    if (want("matrixinv")) {
        policies.push_back(
            std::make_unique<MatrixInversionCorrection>());
    }
    return policies;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string machine_name =
        argc > 1 ? argv[1] : "ibmqx4";
    const std::string bench_name = argc > 2 ? argv[2] : "all";
    const std::string policy_name = argc > 3 ? argv[3] : "all";
    const std::size_t shots =
        argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4]))
                 : 16384;

    Machine machine = makeMachine(machine_name);
    MachineSession session(std::move(machine), 2019);
    std::printf("machine %s, %zu trials per policy\n\n",
                machine_name.c_str(), shots);

    bool ran_any = false;
    for (const NisqBenchmark& bench :
         benchmarkSuiteFor(session.machine().numQubits())) {
        if (bench_name != "all" && bench.name != bench_name)
            continue;
        ran_any = true;
        const TranspiledProgram program =
            session.prepare(bench.circuit);
        std::printf("-- %s (correct output %s, %zu SWAPs, "
                    "%.1f us) --\n",
                    bench.name.c_str(),
                    toBitString(bench.correctOutput,
                                bench.outputBits)
                        .c_str(),
                    program.swapCount,
                    program.durationNs / 1000.0);

        AsciiTable table({"policy", "PST", "IST", "ROCA",
                          "mean err distance", "top outcome"});
        for (auto& policy :
             makePolicies(policy_name, session, program,
                          bench.outputBits)) {
            const Counts counts =
                session.runPolicy(program, *policy, shots);
            const ReliabilityReport report =
                reliability(counts, bench.acceptedOutputs);
            table.addRow(
                {policy->name(), fmt(report.pst),
                 fmt(report.ist, 2), std::to_string(report.roca),
                 fmt(meanHammingDistance(counts,
                                         bench.correctOutput),
                     2),
                 toBitString(counts.mostFrequent(),
                             bench.outputBits)});
        }
        std::printf("%s\n", table.toString().c_str());
    }
    if (!ran_any) {
        std::fprintf(stderr,
                     "unknown benchmark '%s' for this machine\n",
                     bench_name.c_str());
        return 1;
    }
    return 0;
}
