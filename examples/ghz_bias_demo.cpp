/**
 * @file
 * Domain scenario: how state-dependent readout bias corrupts an
 * entangled state, and how SIM restores the symmetry.
 *
 * A GHZ state should read 00...0 and 11...1 with equal probability;
 * biased readout makes the all-ones branch seem far less likely
 * than it is, which would mislead any fidelity estimate built on
 * those populations. SIM's merged modes restore the balance without
 * knowing anything about the state.
 *
 *   $ ./ghz_bias_demo [qubits]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "kernels/basis.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"

using namespace qem;

int
main(int argc, char** argv)
{
    const unsigned n =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
    if (n < 2 || n > 10) {
        std::fprintf(stderr, "qubits must be in [2, 10]\n");
        return 1;
    }
    const std::size_t shots = 16384;
    std::printf("GHZ-%u on ibmq_melbourne, %zu trials\n\n", n,
                shots);

    const Circuit ghz = ghzState(n);
    const BasisState ones = allOnes(n);

    IdealSimulator ideal(n, 3);
    const Counts ideal_counts = ideal.run(ghz, shots);

    MachineSession session(makeIbmqMelbourne(), 4);
    const TranspiledProgram program = session.prepare(ghz);
    BaselinePolicy baseline;
    const Counts base_counts =
        session.runPolicy(program, baseline, shots);
    StaticInvertAndMeasure sim;
    const Counts sim_counts =
        session.runPolicy(program, sim, shots);

    AsciiTable table({"readout", "P(00..0)", "P(11..1)",
                      "imbalance P0/P1"});
    auto row = [&](const char* name, const Counts& counts) {
        const double p0 = counts.probability(0);
        const double p1 = counts.probability(ones);
        table.addRow({name, fmt(p0), fmt(p1),
                      p1 > 0 ? fmt(p0 / p1, 2) + "x" : "inf"});
    };
    row("ideal", ideal_counts);
    row("baseline", base_counts);
    row("SIM (4 modes)", sim_counts);
    std::printf("%s\n", table.toString().c_str());

    std::printf("a GHZ fidelity estimated from baseline "
                "populations: %.3f;\nfrom SIM-corrected "
                "populations: %.3f (population term only, ideal "
                "1.0)\n",
                base_counts.probability(0) +
                    base_counts.probability(ones),
                sim_counts.probability(0) +
                    sim_counts.probability(ones));
    return 0;
}
