/**
 * @file
 * Quickstart: build a circuit, run it on a noisy machine model,
 * and rescue the answer with Invert-and-Measure.
 *
 *   $ ./quickstart
 *
 * Walks through the whole public API surface in ~80 lines:
 * kernels -> transpiler -> backend -> policies -> metrics.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "kernels/bv.hh"
#include "qsim/bitstring.hh"
#include "qsim/qasm.hh"

using namespace qem;

int
main()
{
    // 1. A program: Bernstein-Vazirani hiding the all-ones key --
    //    the most measurement-error-prone answer there is.
    const unsigned key_bits = 4;
    const BasisState key = fromBitString("1111");
    const Circuit logical = bernsteinVazirani(key_bits, key);
    std::printf("logical circuit:\n%s\n",
                logical.toString().c_str());

    // 2. A machine: the ibmqx4 model (bowtie topology, biased and
    //    correlated readout). MachineSession bundles the machine,
    //    its trajectory-simulator backend, and a variability-aware
    //    transpiler.
    MachineSession session(makeIbmqx4(), /*seed=*/2019);
    const TranspiledProgram program = session.prepare(logical);
    std::printf("transpiled onto %s: %zu ops, %zu SWAPs, "
                "%.0f ns\n\n",
                session.machine().name().c_str(),
                program.circuit.size(), program.swapCount,
                program.durationNs);

    // (The physical program exports to OpenQASM 2.0 if you want to
    // run it elsewhere.)
    std::printf("first lines of QASM export:\n");
    const std::string qasm = toQasm(program.circuit);
    std::printf("%.*s...\n\n", 120, qasm.c_str());

    // 3. Run 16384 trials under three measurement policies.
    const std::size_t shots = 16384;
    BaselinePolicy baseline;
    StaticInvertAndMeasure sim; // Four static inversion strings.
    AdaptiveInvertAndMeasure aim(session.profileProgram(program));

    for (MitigationPolicy* policy :
         std::initializer_list<MitigationPolicy*>{
             &baseline, &sim, &aim}) {
        const Counts counts =
            session.runPolicy(program, *policy, shots);
        std::printf("%-8s PST=%.3f IST=%.2f ROCA=%zu  top=%s\n",
                    policy->name().c_str(), pst(counts, key),
                    ist(counts, key), roca(counts, key),
                    toBitString(counts.mostFrequent(), key_bits)
                        .c_str());
    }
    std::printf("\nInvert-and-Measure reads the weak all-ones "
                "answer through stronger basis states and flips "
                "the log back -- the paper's contribution in one "
                "program.\n");
    return 0;
}
