/**
 * @file
 * Domain scenario: the offline-profiling workflow AIM assumes.
 *
 * A characterization job profiles the machine once and saves the
 * RBMS to a file; production jobs later load it and hand it to AIM
 * without spending any trials on characterization. The paper
 * justifies this split by the bias's repeatability across
 * calibration cycles (Section 6.1); the abl_calibration_drift bench
 * quantifies how far that stretches.
 *
 *   $ ./offline_profile [profile-path]
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "kernels/bv.hh"
#include "mitigation/rbms_io.hh"
#include "qsim/bitstring.hh"

using namespace qem;

int
main(int argc, char** argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/invertq_ibmqx4.rbms";

    // ---- Characterization job (run once per machine) ----
    {
        MachineSession session(makeIbmqx4(), 71);
        // Profile the full register so any 5-qubit program whose
        // clbits map to qubits 0..4 in order can reuse it; per-
        // program profiles (MachineSession::profileProgram) are the
        // precise variant.
        const ExhaustiveRbms profile = characterizeDirect(
            session.backend(), {0, 1, 2, 3, 4}, 8192);
        std::ofstream out(path);
        out << serializeRbms(profile);
        std::printf("characterized ibmqx4: strongest state %s, "
                    "profile saved to %s\n",
                    toBitString(profile.strongestState(), 5)
                        .c_str(),
                    path.c_str());
    }

    // ---- Production job (any later day) ----
    {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "cannot reopen %s\n",
                         path.c_str());
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const auto profile = parseRbms(buffer.str());
        std::printf("loaded profile: %u bits, strongest state "
                    "%s\n\n",
                    profile->numBits(),
                    toBitString(profile->strongestState(), 5)
                        .c_str());

        MachineSession session(makeIbmqx4(), 72);
        const BasisState target = fromBitString("11011");
        // Identity layout so the program's clbits align with the
        // profiled qubits 0..4.
        Transpiler aligned(session.machine(),
                           std::make_shared<TrivialAllocator>());
        const TranspiledProgram program =
            aligned.transpile(bernsteinVaziraniFull(4, target));

        BaselinePolicy baseline;
        AdaptiveInvertAndMeasure aim(profile);
        const double p_base =
            pst(session.runPolicy(program, baseline, 16384),
                target);
        const double p_aim =
            pst(session.runPolicy(program, aim, 16384), target);
        std::printf("BV full-state target %s: baseline PST %.3f, "
                    "AIM (offline profile) PST %.3f\n",
                    toBitString(target, 5).c_str(), p_base,
                    p_aim);
    }
    return 0;
}
