/**
 * @file
 * Domain scenario: solving max-cut with QAOA on a noisy machine,
 * end to end — graph construction, classical angle optimization,
 * transpilation, noisy execution under every mitigation policy,
 * and classical verification of the proposed cuts.
 *
 *   $ ./qaoa_maxcut
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "kernels/qaoa.hh"
#include "qsim/bitstring.hh"

using namespace qem;

int
main()
{
    // A 6-node instance whose optimal cut is a heavy (weak to
    // measure) string: exactly the case the paper's Table 2 shows
    // suffering the most.
    const std::string target = "101011";
    const Graph graph =
        completeBipartite(6, fromBitString(target));
    const MaxCutResult best = bruteForceMaxCut(graph);
    std::printf("graph: %u nodes, %zu edges; optimal cut value "
                "%.0f at %s (and complement)\n",
                graph.numNodes(), graph.numEdges(), best.value,
                target.c_str());

    // Classical outer loop: optimize the p=2 ansatz angles on the
    // ideal simulator, as a 2019 QAOA pipeline would before
    // submitting to hardware.
    const QaoaAngles angles = optimizeQaoaAngles(graph, 2);
    std::printf("optimized <C> = %.3f (p=2)\n\n",
                qaoaExpectedCut(graph, angles));
    const Circuit logical = qaoaCircuit(graph, angles);

    MachineSession session(makeIbmqMelbourne(), 7);
    const TranspiledProgram program = session.prepare(logical);
    std::printf("running on %s: %zu SWAPs inserted, duration "
                "%.1f us\n\n",
                session.machine().name().c_str(),
                program.swapCount, program.durationNs / 1000.0);

    const std::size_t shots = 16384;
    const BasisState cut = fromBitString(target);

    BaselinePolicy baseline;
    StaticInvertAndMeasure sim;
    AdaptiveInvertAndMeasure aim(session.profileProgram(program));

    AsciiTable table({"policy", "PST", "IST", "ROCA",
                      "best cut in top-4 samples"});
    for (MitigationPolicy* policy :
         std::initializer_list<MitigationPolicy*>{
             &baseline, &sim, &aim}) {
        const Counts counts =
            session.runPolicy(program, *policy, shots);
        // A practitioner would test the top-K sampled partitions
        // classically (ROCA's motivation): report the best cut
        // value among the four most frequent outputs.
        double best_seen = 0.0;
        std::size_t rank = 0;
        for (const auto& [s, n] : counts.sortedByCount()) {
            if (++rank > 4)
                break;
            best_seen = std::max(best_seen, graph.cutValue(s));
        }
        table.addRow({policy->name(), fmt(pst(counts, cut)),
                      fmt(ist(counts, cut), 2),
                      std::to_string(roca(counts, cut)),
                      fmt(best_seen, 0) + " / " +
                          fmt(best.value, 0)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("mitigation pushes the true optimum up the ranked "
                "log, so fewer candidate cuts need classical "
                "evaluation.\n");
    return 0;
}
