/**
 * @file
 * Domain scenario: profiling a machine's readout bias the three
 * ways the paper describes (direct, ESCT, AWCT), and reading the
 * profile the way AIM does — strongest state, weakest state, and
 * per-state strengths.
 *
 *   $ ./machine_characterization [machine]
 *
 * machine: ibmqx2 | ibmqx4 | ibmq_melbourne (default ibmqx4)
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "metrics/stats.hh"
#include "mitigation/rbms.hh"
#include "qsim/bitstring.hh"

using namespace qem;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "ibmqx4";
    MachineSession session(makeMachine(name), 11);
    const unsigned n = session.machine().numQubits();
    std::printf("characterizing %s (%u qubits)\n\n", name.c_str(),
                n);

    std::vector<Qubit> all(n);
    for (unsigned i = 0; i < n; ++i)
        all[i] = i;

    if (n <= 5) {
        // Small machine: all three techniques, side by side.
        const ExhaustiveRbms direct =
            characterizeDirect(session.backend(), all, 8192);
        const ExhaustiveRbms esct = characterizeSuperposition(
            session.backend(), all, 8192 * 32);
        const WindowedRbms awct = characterizeWindowed(
            session.backend(), all, 4, 8192 * 8);

        const auto d = direct.relativeCurve();
        const auto e = esct.relativeCurve();
        const auto w = awct.relativeCurve();
        AsciiTable table({"state", "HW", "direct", "ESCT",
                          "AWCT", ""});
        for (BasisState s : statesByHammingWeight(n)) {
            table.addRow({toBitString(s, n),
                          std::to_string(hammingWeight(s)),
                          fmt(d[s]), fmt(e[s]), fmt(w[s]),
                          bar(d[s], 1.0, 25)});
        }
        std::printf("%s\n", table.toString().c_str());
        std::printf("ESCT MSE vs direct: %s   AWCT MSE vs direct: "
                    "%s\n",
                    fmt(meanSquaredError(d, e), 4).c_str(),
                    fmt(meanSquaredError(d, w), 4).c_str());
        std::printf("strongest state: %s   weakest state: %s\n",
                    toBitString(direct.strongestState(), n)
                        .c_str(),
                    toBitString(
                        static_cast<BasisState>(
                            std::min_element(d.begin(), d.end()) -
                            d.begin()),
                        n)
                        .c_str());
    } else {
        // Large machine: AWCT is the only affordable technique
        // (O(2^m) trials instead of O(2^N)).
        const WindowedRbms awct = characterizeWindowed(
            session.backend(), all, 4, 16384);
        std::printf("AWCT with m=4, overlap 2: %zu windows\n",
                    awct.windows().size());
        const BasisState strongest = awct.strongestState();
        std::printf("strongest state: %s\n",
                    toBitString(strongest, n).c_str());
        AsciiTable table({"probe state", "relative strength"});
        const double top = awct.strength(strongest);
        table.addRow({toBitString(0, n),
                      fmt(awct.strength(0) / top)});
        table.addRow({toBitString(allOnes(n), n),
                      fmt(awct.strength(allOnes(n)) / top)});
        BasisState alternating = 0;
        for (unsigned b = 1; b < n; b += 2)
            alternating = setBit(alternating, b, true);
        table.addRow({toBitString(alternating, n),
                      fmt(awct.strength(alternating) / top)});
        std::printf("%s", table.toString().c_str());
    }
    return 0;
}
