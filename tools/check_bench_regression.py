#!/usr/bin/env python3
"""Soft benchmark-regression check for CI.

Compares freshly generated BENCH_*.json files (see
src/harness/bench_io.hh) against committed baselines and emits a
GitHub Actions `::warning::` for every benchmark whose throughput
dropped by more than the tolerance. Always exits 0: shared CI
runners are too noisy for a hard gate, so the signal is a visible
warning plus the uploaded artifacts, not a red build.

Rate counters (shots_per_sec, jobs_per_sec, amps_per_sec) are
preferred when both sides have them; otherwise per-iteration real
time is compared.
Percentile counters (p50_/p95_/p99_-prefixed, e.g.
p99_submit_to_audit_seconds from jobservice_bench) are latencies and
compared lower-is-better, each one independently. Benchmarks that
exist on only one side are reported informationally.

Usage:
  check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.30]
  check_bench_regression.py --pair B1.json F1.json --pair B2.json F2.json

The two forms compose: every positional pair and every --pair is
checked in one invocation with a shared tolerance.
"""

import argparse
import json
import re
import sys

# Rate counters understood by throughput(), in preference order.
# amps_per_sec is the gate-kernel axis (amplitudes touched per
# second by a dense matrix apply, see bench/perf_microbench.cc).
# pst is the quality axis of the policy-family shootout
# (higher-is-better like a rate; seeded runs make it exactly
# reproducible, so a drop is a distribution change, not noise).
RATE_COUNTERS = ("shots_per_sec", "jobs_per_sec", "amps_per_sec",
                 "pst")

# Latency-percentile counters: lower is better.
PERCENTILE_RE = re.compile(r"^p\d{1,3}_")


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    # bench_io envelope: {schema, bench, results: [...]}.
    rows = doc.get("results", doc) if isinstance(doc, dict) else doc
    if not isinstance(rows, list):
        raise SystemExit(f"{path}: expected a run array or a "
                         "bench envelope with one")
    out = {}
    for row in rows:
        if isinstance(row, dict) and "name" in row:
            out[row["name"]] = row
    return out


def throughput(row):
    """(value, kind) where higher is better."""
    counters = row.get("counters", {})
    for kind in RATE_COUNTERS:
        rate = counters.get(kind)
        if rate:
            return float(rate), kind
    real = float(row.get("real_time_seconds", 0.0))
    if real <= 0.0:
        return None, None
    return 1.0 / real, "1/real_time"


def percentiles(row):
    """{counter: seconds} of every pNN_* latency counter."""
    return {name: float(value)
            for name, value in row.get("counters", {}).items()
            if PERCENTILE_RE.match(name)}


def check_percentiles(name, base_row, fresh_row, tolerance):
    """Lower-is-better latency check; returns regressions found."""
    base = percentiles(base_row)
    fresh = percentiles(fresh_row)
    regressions = 0
    for counter in sorted(set(base) & set(fresh)):
        base_v, new_v = base[counter], fresh[counter]
        if base_v <= 0.0:
            continue
        ratio = new_v / base_v
        marker = ""
        if ratio > 1.0 + tolerance:
            regressions += 1
            marker = "  <-- REGRESSION"
            print(f"::warning::bench regression: {name} "
                  f"{counter} {base_v:.3g}s -> {new_v:.3g}s "
                  f"({(ratio - 1.0) * 100:.0f}% slower, "
                  f"tolerance {tolerance * 100:.0f}%)")
        print(f"{name}: {counter} {base_v:.3g}s -> {new_v:.3g}s "
              f"(x{ratio:.2f}){marker}")
    for counter in sorted(set(base) ^ set(fresh)):
        side = "baseline" if counter in base else "fresh run"
        print(f"note: {name}: {counter} only in {side}")
    return regressions


def check_pair(baseline_path, fresh_path, tolerance):
    """Compare one baseline/fresh pair; returns the regression count."""
    baseline = load_results(baseline_path)
    fresh = load_results(fresh_path)
    print(f"== {baseline_path} vs {fresh_path}")

    regressions = 0
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: {name} only in baseline (removed?)")
            continue
        base_v, base_kind = throughput(baseline[name])
        new_v, new_kind = throughput(fresh[name])
        if base_v is None or new_v is None or base_kind != new_kind:
            print(f"note: {name}: not comparable, skipped")
        else:
            ratio = new_v / base_v
            marker = ""
            if ratio < 1.0 - tolerance:
                regressions += 1
                marker = "  <-- REGRESSION"
                print(f"::warning::bench regression: {name} "
                      f"{base_kind} {base_v:.3g} -> {new_v:.3g} "
                      f"({(1.0 - ratio) * 100:.0f}% drop, "
                      f"tolerance {tolerance * 100:.0f}%)")
            print(f"{name}: {base_kind} {base_v:.3g} -> {new_v:.3g} "
                  f"(x{ratio:.2f}){marker}")
        regressions += check_percentiles(name, baseline[name],
                                         fresh[name], tolerance)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} only in fresh run (new benchmark)")
    return regressions


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--pair", nargs=2, action="append",
                        default=[], metavar=("BASELINE", "FRESH"),
                        help="an extra baseline/fresh pair to check "
                             "(repeatable)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop (default 0.30)")
    args = parser.parse_args()

    pairs = []
    if args.baseline is not None:
        if args.fresh is None:
            parser.error("positional BASELINE requires FRESH")
        pairs.append((args.baseline, args.fresh))
    pairs.extend((b, f) for b, f in args.pair)
    if not pairs:
        parser.error("nothing to check: pass BASELINE FRESH or "
                     "--pair")

    regressions = 0
    for baseline_path, fresh_path in pairs:
        regressions += check_pair(baseline_path, fresh_path,
                                  args.tolerance)

    print(f"{regressions} regression(s) beyond "
          f"{args.tolerance * 100:.0f}% tolerance across "
          f"{len(pairs)} pair(s) (soft check, exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
