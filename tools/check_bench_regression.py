#!/usr/bin/env python3
"""Soft benchmark-regression check for CI.

Compares a freshly generated BENCH_*.json (see src/harness/bench_io.hh)
against a committed baseline and emits a GitHub Actions `::warning::`
for every benchmark whose throughput dropped by more than the
tolerance. Always exits 0: shared CI runners are too noisy for a hard
gate, so the signal is a visible warning plus the uploaded artifacts,
not a red build.

Rate counters (shots_per_sec) are preferred when both sides have
them; otherwise per-iteration real time is compared. Benchmarks that
exist on only one side are reported informationally.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.30]
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    # bench_io envelope: {schema, bench, results: [...]}.
    rows = doc.get("results", doc) if isinstance(doc, dict) else doc
    if not isinstance(rows, list):
        raise SystemExit(f"{path}: expected a run array or a "
                         "bench envelope with one")
    out = {}
    for row in rows:
        if isinstance(row, dict) and "name" in row:
            out[row["name"]] = row
    return out


def throughput(row):
    """(value, kind) where higher is better."""
    rate = row.get("counters", {}).get("shots_per_sec")
    if rate:
        return float(rate), "shots_per_sec"
    real = float(row.get("real_time_seconds", 0.0))
    if real <= 0.0:
        return None, None
    return 1.0 / real, "1/real_time"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop (default 0.30)")
    args = parser.parse_args()

    baseline = load_results(args.baseline)
    fresh = load_results(args.fresh)

    regressions = 0
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: {name} only in baseline (removed?)")
            continue
        base_v, base_kind = throughput(baseline[name])
        new_v, new_kind = throughput(fresh[name])
        if base_v is None or new_v is None or base_kind != new_kind:
            print(f"note: {name}: not comparable, skipped")
            continue
        ratio = new_v / base_v
        marker = ""
        if ratio < 1.0 - args.tolerance:
            regressions += 1
            marker = "  <-- REGRESSION"
            print(f"::warning::bench regression: {name} "
                  f"{base_kind} {base_v:.3g} -> {new_v:.3g} "
                  f"({(1.0 - ratio) * 100:.0f}% drop, "
                  f"tolerance {args.tolerance * 100:.0f}%)")
        print(f"{name}: {base_kind} {base_v:.3g} -> {new_v:.3g} "
              f"(x{ratio:.2f}){marker}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} only in fresh run (new benchmark)")

    print(f"{regressions} regression(s) beyond "
          f"{args.tolerance * 100:.0f}% tolerance "
          f"(soft check, exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
