/**
 * @file
 * Unit tests for PST / IST / ROCA.
 */

#include <gtest/gtest.h>

#include "metrics/reliability.hh"

namespace qem
{
namespace
{

Counts
sampleLog()
{
    Counts c(3);
    c.add(0b101, 50); // "correct"
    c.add(0b001, 30);
    c.add(0b111, 20);
    return c;
}

TEST(Reliability, PstIsCorrectFraction)
{
    const Counts c = sampleLog();
    EXPECT_NEAR(pst(c, BasisState{0b101}), 0.5, 1e-12);
    EXPECT_NEAR(pst(c, {0b101, 0b001}), 0.8, 1e-12);
    EXPECT_NEAR(pst(c, BasisState{0b000}), 0.0, 1e-12);
    EXPECT_NEAR(pst(Counts(3), BasisState{0}), 0.0, 1e-12);
}

TEST(Reliability, IstComparesAgainstStrongestIncorrect)
{
    const Counts c = sampleLog();
    EXPECT_NEAR(ist(c, BasisState{0b101}), 50.0 / 30.0, 1e-12);
    // Accepting the runner-up too: strongest incorrect is 0b111.
    EXPECT_NEAR(ist(c, {0b101, 0b001}), 80.0 / 20.0, 1e-12);
}

TEST(Reliability, IstEdgeCases)
{
    Counts all_correct(2);
    all_correct.add(0b01, 10);
    EXPECT_TRUE(std::isinf(ist(all_correct, BasisState{0b01})));
    Counts never_seen(2);
    never_seen.add(0b10, 10);
    EXPECT_NEAR(ist(never_seen, BasisState{0b01}), 0.0, 1e-12);
    EXPECT_NEAR(ist(Counts(2), BasisState{0}), 0.0, 1e-12);
}

TEST(Reliability, IstBelowOneMeansMaskedAnswer)
{
    Counts c(2);
    c.add(0b01, 30); // correct
    c.add(0b10, 35); // dominant incorrect (Fig 3(d) scenario)
    EXPECT_LT(ist(c, BasisState{0b01}), 1.0);
}

TEST(Reliability, RocaRanksByFrequency)
{
    const Counts c = sampleLog();
    EXPECT_EQ(roca(c, BasisState{0b101}), 1u);
    EXPECT_EQ(roca(c, BasisState{0b001}), 2u);
    EXPECT_EQ(roca(c, BasisState{0b111}), 3u);
    // Never-observed outcome ranks after everything.
    EXPECT_EQ(roca(c, BasisState{0b000}), 4u);
    // Multiple accepted: best rank wins.
    EXPECT_EQ(roca(c, {0b111, 0b001}), 2u);
}

TEST(Reliability, RocaTieBreaksDeterministically)
{
    Counts c(2);
    c.add(0b00, 10);
    c.add(0b01, 10);
    // Equal counts: lower value first.
    EXPECT_EQ(roca(c, BasisState{0b00}), 1u);
    EXPECT_EQ(roca(c, BasisState{0b01}), 2u);
}

TEST(Reliability, BundleMatchesIndividualMetrics)
{
    const Counts c = sampleLog();
    const ReliabilityReport r = reliability(c, {0b101});
    EXPECT_NEAR(r.pst, pst(c, BasisState{0b101}), 1e-12);
    EXPECT_NEAR(r.ist, ist(c, BasisState{0b101}), 1e-12);
    EXPECT_EQ(r.roca, roca(c, BasisState{0b101}));
}

} // namespace
} // namespace qem
