/**
 * @file
 * Unit tests for the golden regression store: update-mode recording,
 * reload-and-check round trips, statistical tolerance of reseeded
 * sampled records, and the failure modes (missing golden, schema
 * drift, analytic mismatch).
 */

#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "verify/golden.hh"

namespace qem::verify
{
namespace
{

/** A manifest path unique to this test, removed on destruction. */
class TempManifest
{
  public:
    explicit TempManifest(const std::string& tag)
        : path_("golden_test_" + tag + ".json")
    {
        std::remove(path_.c_str());
    }
    ~TempManifest() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

Counts
sampleBiasedCoin(double p1, std::size_t shots, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution draw(p1);
    Counts counts(1);
    for (std::size_t i = 0; i < shots; ++i)
        counts.add(draw(rng) ? 1 : 0);
    return counts;
}

TEST(GoldenStore, SampledRoundTripSurvivesReseeding)
{
    TempManifest manifest("sampled");
    {
        GoldenStore writer(manifest.path(), /*update=*/true);
        const CheckResult recorded = writer.checkSampled(
            "coin", sampleBiasedCoin(0.3, 4000, 1), 1e-6,
            {{"source", "unit-test"}});
        EXPECT_TRUE(recorded);
        EXPECT_TRUE(writer.dirty());
        ASSERT_TRUE(writer.flush());
        EXPECT_FALSE(writer.dirty());
    }
    GoldenStore reader(manifest.path(), /*update=*/false);
    const GoldenRecord* record = reader.find("coin");
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->isSampled());
    EXPECT_EQ(record->meta.at("source"), "unit-test");
    // A reseeded sample of the same coin passes...
    EXPECT_TRUE(reader.checkSampled(
        "coin", sampleBiasedCoin(0.3, 4000, 999), 1e-6));
    // ...a different coin does not.
    const CheckResult drifted = reader.checkSampled(
        "coin", sampleBiasedCoin(0.45, 4000, 999), 1e-6);
    EXPECT_FALSE(drifted);
    EXPECT_LT(drifted.pValue, 1e-6);
}

TEST(GoldenStore, AnalyticRoundTripIsExact)
{
    TempManifest manifest("analytic");
    const std::vector<double> dist = {0.123456789012345, 0.2,
                                      0.3, 0.376543210987655};
    {
        GoldenStore writer(manifest.path(), true);
        EXPECT_TRUE(
            writer.checkAnalytic("dist", 2, dist, 1e-12));
        ASSERT_TRUE(writer.flush());
    }
    GoldenStore reader(manifest.path(), false);
    // JsonValue prints doubles with %.17g, so the reload is
    // bit-exact and a zero-tolerance check passes.
    EXPECT_TRUE(reader.checkAnalytic("dist", 2, dist, 0.0));
    std::vector<double> off = dist;
    off[1] += 1e-6;
    off[2] -= 1e-6;
    const CheckResult r =
        reader.checkAnalytic("dist", 2, off, 1e-9);
    EXPECT_FALSE(r);
    EXPECT_NE(r.message.find("MISMATCH"), std::string::npos);
}

TEST(GoldenStore, MissingGoldenFailsWithActionableMessage)
{
    TempManifest manifest("missing");
    GoldenStore store(manifest.path(), false);
    const CheckResult r = store.checkSampled(
        "absent", sampleBiasedCoin(0.5, 100, 3), 1e-6);
    EXPECT_FALSE(r);
    EXPECT_NE(r.message.find("--update-golden"),
              std::string::npos);
    // Same for an analytic lookup that only has a sampled record.
    EXPECT_FALSE(
        store.checkAnalytic("absent", 1, {0.5, 0.5}, 1e-9));
}

TEST(GoldenStore, RejectsUnknownSchema)
{
    TempManifest manifest("schema");
    {
        std::ofstream out(manifest.path());
        out << "{\"schema\": \"invertq.golden/v999\", "
               "\"records\": {}}\n";
    }
    EXPECT_THROW(GoldenStore(manifest.path(), false),
                 std::runtime_error);
}

TEST(GoldenStore, UpdateReplacesAndPreservesOtherRecords)
{
    TempManifest manifest("merge");
    {
        GoldenStore writer(manifest.path(), true);
        writer.checkSampled("a", sampleBiasedCoin(0.2, 2000, 7),
                            1e-6);
        writer.checkAnalytic("b", 1, {0.25, 0.75}, 1e-12);
        ASSERT_TRUE(writer.flush());
    }
    {
        // Re-record only 'a'; 'b' must survive the rewrite.
        GoldenStore writer(manifest.path(), true);
        writer.checkSampled("a", sampleBiasedCoin(0.6, 2000, 8),
                            1e-6);
        ASSERT_TRUE(writer.flush());
    }
    GoldenStore reader(manifest.path(), false);
    EXPECT_TRUE(reader.checkSampled(
        "a", sampleBiasedCoin(0.6, 2000, 99), 1e-6));
    EXPECT_TRUE(reader.checkAnalytic("b", 1, {0.25, 0.75}, 0.0));
}

} // namespace
} // namespace qem::verify
