/**
 * @file
 * Unit tests for the packed bit-string utilities.
 */

#include <gtest/gtest.h>

#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(Bitstring, HammingWeightCountsSetBits)
{
    EXPECT_EQ(hammingWeight(0), 0);
    EXPECT_EQ(hammingWeight(1), 1);
    EXPECT_EQ(hammingWeight(0b10110), 3);
    EXPECT_EQ(hammingWeight(~BasisState{0}), 64);
}

TEST(Bitstring, HammingDistanceCountsDifferingBits)
{
    EXPECT_EQ(hammingDistance(0, 0), 0);
    EXPECT_EQ(hammingDistance(0b101, 0b010), 3);
    EXPECT_EQ(hammingDistance(0b1100, 0b1010), 2);
}

TEST(Bitstring, GetAndSetBit)
{
    BasisState s = 0;
    s = setBit(s, 3, true);
    EXPECT_TRUE(getBit(s, 3));
    EXPECT_FALSE(getBit(s, 2));
    s = setBit(s, 3, false);
    EXPECT_EQ(s, 0u);
    // Setting an already-set bit is idempotent.
    s = setBit(setBit(s, 7, true), 7, true);
    EXPECT_EQ(s, BasisState{1} << 7);
}

TEST(Bitstring, AllOnesWidths)
{
    EXPECT_EQ(allOnes(0), 0u);
    EXPECT_EQ(allOnes(1), 1u);
    EXPECT_EQ(allOnes(5), 0b11111u);
    EXPECT_EQ(allOnes(64), ~BasisState{0});
}

TEST(Bitstring, ToBitStringPutsQubitZeroFirst)
{
    EXPECT_EQ(toBitString(0b00001, 5), "10000");
    EXPECT_EQ(toBitString(0b10000, 5), "00001");
    EXPECT_EQ(toBitString(0, 3), "000");
    EXPECT_EQ(toBitString(allOnes(4), 4), "1111");
}

TEST(Bitstring, FromBitStringInvertsToBitString)
{
    for (BasisState s = 0; s < 64; ++s)
        EXPECT_EQ(fromBitString(toBitString(s, 6)), s);
}

TEST(Bitstring, FromBitStringRejectsGarbage)
{
    EXPECT_THROW(fromBitString("01x1"), std::invalid_argument);
    EXPECT_THROW(fromBitString(std::string(65, '0')),
                 std::invalid_argument);
    EXPECT_EQ(fromBitString(""), 0u);
}

TEST(Bitstring, StatesByHammingWeightOrdering)
{
    const auto states = statesByHammingWeight(4);
    ASSERT_EQ(states.size(), 16u);
    EXPECT_EQ(states.front(), 0u);
    EXPECT_EQ(states.back(), allOnes(4));
    for (std::size_t i = 1; i < states.size(); ++i) {
        const int prev = hammingWeight(states[i - 1]);
        const int cur = hammingWeight(states[i]);
        EXPECT_LE(prev, cur);
        if (prev == cur) {
            EXPECT_LT(states[i - 1], states[i]);
        }
    }
}

TEST(Bitstring, StatesByHammingWeightRejectsHugeN)
{
    EXPECT_THROW(statesByHammingWeight(30), std::invalid_argument);
}

TEST(Bitstring, StatesOfWeightEnumeratesBinomially)
{
    EXPECT_EQ(statesOfWeight(5, 0).size(), 1u);
    EXPECT_EQ(statesOfWeight(5, 2).size(), 10u);
    EXPECT_EQ(statesOfWeight(5, 5).size(), 1u);
    EXPECT_TRUE(statesOfWeight(5, 6).empty());
    for (BasisState s : statesOfWeight(6, 3))
        EXPECT_EQ(hammingWeight(s), 3);
}

/** Round-trip property over widths: parse(render(s)) == s. */
class BitstringWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitstringWidth, RoundTripAndWeightConsistency)
{
    const unsigned n = GetParam();
    const BasisState top = allOnes(n);
    for (BasisState s : {BasisState{0}, top, top / 2, top / 3}) {
        const std::string text = toBitString(s, n);
        ASSERT_EQ(text.size(), n);
        EXPECT_EQ(fromBitString(text), s);
        EXPECT_EQ(static_cast<int>(
                      std::count(text.begin(), text.end(), '1')),
                  hammingWeight(s));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitstringWidth,
                         ::testing::Values(1u, 2u, 5u, 14u, 31u,
                                           63u));

} // namespace
} // namespace qem
