/**
 * @file
 * Unit tests for Static Invert-and-Measure (SIM).
 */

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "metrics/reliability.hh"
#include "mitigation/sim_policy.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

/** Backend that records every run it is asked to perform. */
class RecordingBackend : public Backend
{
  public:
    explicit RecordingBackend(unsigned n) : n_(n) {}

    Counts run(const Circuit& circuit, std::size_t shots) override
    {
        shotCounts.push_back(shots);
        xGateCounts.push_back(circuit.countOps(GateKind::X));
        // Report an error-free all-zero readout.
        Counts counts(circuit.numClbits());
        counts.add(0, shots);
        return counts;
    }

    unsigned numQubits() const override { return n_; }

    std::vector<std::size_t> shotCounts;
    std::vector<std::size_t> xGateCounts;

  private:
    unsigned n_;
};

/** Readout-only noise model with strong 1->0 bias. */
NoiseModel
biasedModel(unsigned n, double p10)
{
    NoiseModel model(n);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(n, 0.0),
        std::vector<double>(n, p10)));
    return model;
}

TEST(SimPolicy, SplitsShotsEvenlyAcrossModes)
{
    RecordingBackend backend(4);
    StaticInvertAndMeasure sim; // Default four modes.
    Circuit c(4);
    c.measureAll();
    const Counts merged = sim.run(c, backend, 1000);
    ASSERT_EQ(backend.shotCounts.size(), 4u);
    for (std::size_t shots : backend.shotCounts)
        EXPECT_EQ(shots, 250u);
    EXPECT_EQ(merged.total(), 1000u);
}

TEST(SimPolicy, RemainderShotsGoToEarlyModes)
{
    RecordingBackend backend(4);
    StaticInvertAndMeasure sim;
    Circuit c(4);
    c.measureAll();
    const Counts merged = sim.run(c, backend, 1002);
    ASSERT_EQ(backend.shotCounts.size(), 4u);
    EXPECT_EQ(backend.shotCounts[0], 251u);
    EXPECT_EQ(backend.shotCounts[1], 251u);
    EXPECT_EQ(backend.shotCounts[2], 250u);
    EXPECT_EQ(backend.shotCounts[3], 250u);
    EXPECT_EQ(merged.total(), 1002u);
}

TEST(SimPolicy, ModesCarryTheirInversionGates)
{
    RecordingBackend backend(4);
    StaticInvertAndMeasure sim;
    Circuit c(4);
    c.measureAll();
    sim.run(c, backend, 400);
    // Four modes on 4 bits: 0, 4, 2, 2 inversion X gates in some
    // order.
    std::vector<std::size_t> xs = backend.xGateCounts;
    std::sort(xs.begin(), xs.end());
    EXPECT_EQ(xs, (std::vector<std::size_t>{0, 2, 2, 4}));
}

TEST(SimPolicy, PostCorrectionRestoresOutcomeLabels)
{
    // The recording backend always reads all-zeros; after
    // post-correction each mode contributes its own inversion
    // string, so the merged log contains exactly the four strings.
    RecordingBackend backend(4);
    StaticInvertAndMeasure sim;
    Circuit c(4);
    c.measureAll();
    const Counts merged = sim.run(c, backend, 400);
    EXPECT_EQ(merged.distinct(), 4u);
    for (InversionString s : fourModeStrings(4))
        EXPECT_EQ(merged.get(s), 100u) << s;
}

TEST(SimPolicy, NoiseFreeSimMatchesBaselineSemantics)
{
    TrajectorySimulator backend(NoiseModel(3), 51);
    StaticInvertAndMeasure sim;
    const Counts counts =
        sim.run(basisStatePrep(3, 0b101), backend, 400);
    EXPECT_EQ(counts.get(0b101), 400u);
}

TEST(SimPolicy, MitigatesWeakStateTowardAverage)
{
    // p10 = 0.3, p01 = 0: baseline PST of the all-ones state is
    // 0.7^4 ~ 0.24; with two-mode SIM half the trials read the
    // strong all-zeros state perfectly, so PST ~ (0.24 + 1)/2.
    const unsigned n = 4;
    TrajectorySimulator backend(biasedModel(n, 0.3), 52);
    StaticInvertAndMeasure two =
        StaticInvertAndMeasure::twoMode(n);
    const Circuit c = basisStatePrep(n, allOnes(n));
    const double p = pst(two.run(c, backend, 40000), allOnes(n));
    EXPECT_NEAR(p, (0.2401 + 1.0) / 2.0, 0.02);
}

TEST(SimPolicy, FactoriesAndNames)
{
    EXPECT_EQ(StaticInvertAndMeasure().name(), "SIM");
    EXPECT_EQ(StaticInvertAndMeasure::twoMode(4).name(), "SIM-2");
    EXPECT_EQ(StaticInvertAndMeasure::fourMode(4).name(), "SIM-4");
    EXPECT_EQ(StaticInvertAndMeasure::multiMode(6, 3).name(),
              "SIM-8");
}

TEST(SimPolicy, ValidatesInputs)
{
    RecordingBackend backend(3);
    StaticInvertAndMeasure sim;
    Circuit unmeasured(3);
    EXPECT_THROW(sim.run(unmeasured, backend, 100),
                 std::invalid_argument);
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(sim.run(c, backend, 2), std::invalid_argument);
}

} // namespace
} // namespace qem
