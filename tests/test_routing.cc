/**
 * @file
 * Unit tests for the SWAP-insertion router.
 */

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "qsim/bitstring.hh"
#include "qsim/rng.hh"
#include "qsim/simulator.hh"
#include "transpile/routing.hh"

namespace qem
{
namespace
{

Topology
line4()
{
    return Topology(4, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(Routing, AdjacentGatesPassThrough)
{
    const Topology topo = line4();
    Router router(topo);
    Circuit c(4);
    c.h(0).cx(0, 1).cx(2, 3);
    const RoutedCircuit routed = router.route(c, {0, 1, 2, 3});
    EXPECT_EQ(routed.swapCount, 0u);
    EXPECT_EQ(routed.circuit.size(), 3u);
    EXPECT_EQ(routed.finalLayout, (Layout{0, 1, 2, 3}));
}

TEST(Routing, DistantGateGetsSwapChain)
{
    const Topology topo = line4();
    Router router(topo);
    Circuit c(4);
    c.cx(0, 3); // Distance 3 -> 2 SWAPs.
    const RoutedCircuit routed = router.route(c, {0, 1, 2, 3});
    EXPECT_EQ(routed.swapCount, 2u);
    // SWAPs decompose to 3 CX each, plus the original CX.
    EXPECT_EQ(routed.circuit.countOps(GateKind::CX), 7u);
    // Every 2q gate acts across a coupled pair.
    for (const Operation& op : routed.circuit.ops()) {
        if (op.qubits.size() == 2) {
            EXPECT_TRUE(topo.coupled(op.qubits[0], op.qubits[1]))
                << op.toString();
        }
    }
}

TEST(Routing, MeasurementsFollowMovedQubits)
{
    // After routing, logical qubits live elsewhere; the semantics
    // must survive. Verify by executing the routed circuit.
    const Topology topo = line4();
    Router router(topo);
    Circuit c(4);
    c.x(0).cx(0, 3).measure(0, 0).measure(3, 1);
    const RoutedCircuit routed = router.route(c, {0, 1, 2, 3});
    IdealSimulator sim(4, 1);
    const Counts counts = sim.run(routed.circuit, 100);
    // x(0) then cx(0,3): c0 = 1, c1 = 1.
    EXPECT_EQ(counts.get(0b11), 100u);
}

TEST(Routing, SemanticsPreservedOnRealTopology)
{
    // Full BV-4 on the melbourne ladder from an awkward initial
    // layout; the routed circuit must still recover the key.
    const Machine m = makeIbmqMelbourne();
    Router router(m.topology());
    const BasisState key = fromBitString("1011");
    Circuit c = bernsteinVazirani(4, key);
    const Layout layout{0, 5, 9, 13, 3}; // Scattered on purpose.
    const RoutedCircuit routed = router.route(c, layout);
    EXPECT_GT(routed.swapCount, 0u);
    IdealSimulator sim(14, 2);
    EXPECT_EQ(sim.run(routed.circuit, 200).get(key), 200u);
}

TEST(Routing, RandomCircuitsStayCoupled)
{
    // Property: routing arbitrary 2q circuits never emits an
    // uncoupled 2q gate and never changes the ideal outcome
    // distribution support for basis-prep circuits.
    const Machine m = makeIbmqMelbourne();
    Router router(m.topology());
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(6);
        for (int g = 0; g < 12; ++g) {
            const Qubit a = static_cast<Qubit>(rng.index(6));
            Qubit b = static_cast<Qubit>(rng.index(6));
            while (b == a)
                b = static_cast<Qubit>(rng.index(6));
            c.cx(a, b);
        }
        c.measureAll();
        Layout layout{2, 4, 6, 8, 10, 12};
        const RoutedCircuit routed = router.route(c, layout);
        for (const Operation& op : routed.circuit.ops()) {
            if (op.qubits.size() == 2 && isUnitary(op.kind)) {
                ASSERT_TRUE(m.topology().coupled(op.qubits[0],
                                                 op.qubits[1]));
            }
        }
        // CX circuits permute basis states: outcome from |0...0>
        // must match the unrouted circuit's.
        IdealSimulator narrow(6, 3);
        IdealSimulator wide(14, 3);
        const BasisState expected =
            narrow.run(c, 1).mostFrequent();
        EXPECT_EQ(wide.run(routed.circuit, 1).mostFrequent(),
                  expected);
    }
}

TEST(Routing, RejectsThreeQubitGates)
{
    // Router keeps a reference: the topology must outlive it.
    const Topology topo = line4();
    Router router(topo);
    Circuit c(4);
    c.ccx(0, 1, 2);
    EXPECT_THROW(router.route(c, {0, 1, 2, 3}),
                 std::invalid_argument);
}

TEST(Routing, ValidatesLayout)
{
    const Topology topo = line4();
    Router router(topo);
    Circuit c(2);
    c.cx(0, 1);
    EXPECT_THROW(router.route(c, {0}), std::logic_error);
    EXPECT_THROW(router.route(c, {0, 0}), std::logic_error);
}

} // namespace
} // namespace qem
