/**
 * @file
 * Unit tests for graphs, max-cut, and target-cut graph synthesis.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "kernels/graph.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(Graph, EdgeConstructionValidates)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(3, 1, 2.5);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_TRUE(g.hasEdge(1, 3));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_THROW(g.addEdge(0, 1), std::invalid_argument);
    EXPECT_THROW(g.addEdge(1, 1), std::invalid_argument);
    EXPECT_THROW(g.addEdge(0, 4), std::out_of_range);
    EXPECT_THROW(Graph(0), std::invalid_argument);
}

TEST(Graph, CutValueCountsCrossEdges)
{
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    // Partition {1} vs {0, 2} cuts both edges: 3.0.
    EXPECT_NEAR(g.cutValue(0b010), 3.0, 1e-12);
    EXPECT_NEAR(g.cutValue(0b000), 0.0, 1e-12);
    EXPECT_NEAR(g.cutValue(0b100), 2.0, 1e-12);
    // Complement invariance.
    EXPECT_NEAR(g.cutValue(0b010), g.cutValue(0b101), 1e-12);
}

TEST(Graph, BruteForceMaxCutCycle)
{
    const MaxCutResult best = bruteForceMaxCut(cycleGraph(4));
    EXPECT_NEAR(best.value, 4.0, 1e-12);
    ASSERT_EQ(best.argmax.size(), 2u);
    EXPECT_NE(std::find(best.argmax.begin(), best.argmax.end(),
                        fromBitString("0101")),
              best.argmax.end());
}

TEST(Graph, BruteForceMaxCutStar)
{
    const MaxCutResult best = bruteForceMaxCut(starGraph(4, 0));
    EXPECT_NEAR(best.value, 3.0, 1e-12);
    ASSERT_EQ(best.argmax.size(), 2u);
    EXPECT_NE(std::find(best.argmax.begin(), best.argmax.end(),
                        fromBitString("0111")),
              best.argmax.end());
}

TEST(Graph, CompleteBipartiteOptimumIsTheSide)
{
    for (const char* side : {"101011", "010000", "110110"}) {
        const BasisState s = fromBitString(side);
        const Graph g = completeBipartite(6, s);
        const MaxCutResult best = bruteForceMaxCut(g);
        ASSERT_EQ(best.argmax.size(), 2u) << side;
        EXPECT_NE(std::find(best.argmax.begin(), best.argmax.end(),
                            s),
                  best.argmax.end())
            << side;
        EXPECT_NEAR(best.value, static_cast<double>(g.numEdges()),
                    1e-12);
    }
    EXPECT_THROW(completeBipartite(4, 0), std::invalid_argument);
    EXPECT_THROW(completeBipartite(4, 0b1111),
                 std::invalid_argument);
}

TEST(Graph, FactoriesValidateSizes)
{
    EXPECT_THROW(cycleGraph(2), std::invalid_argument);
    EXPECT_THROW(starGraph(1), std::invalid_argument);
    EXPECT_EQ(cycleGraph(5).numEdges(), 5u);
    EXPECT_EQ(starGraph(6, 2).numEdges(), 5u);
}

TEST(Graph, SynthesizeHitsTargetWithRequestedEdges)
{
    const BasisState target = fromBitString("010100");
    const Graph g = synthesizeGraphForCut(6, 8, target, 3);
    const MaxCutResult best = bruteForceMaxCut(g);
    ASSERT_EQ(best.argmax.size(), 2u);
    EXPECT_NE(std::find(best.argmax.begin(), best.argmax.end(),
                        target),
              best.argmax.end());
    EXPECT_EQ(g.numEdges(), 8u);
}

TEST(Graph, SynthesizeIsDeterministic)
{
    const BasisState target = fromBitString("101001");
    const Graph a = synthesizeGraphForCut(6, 8, target, 5);
    const Graph b = synthesizeGraphForCut(6, 8, target, 5);
    EXPECT_EQ(a.edges(), b.edges());
}

TEST(Graph, SynthesizeFallsBackToBipartite)
{
    // 5 edges cannot make a unique HW-3 cut on 6 nodes quickly in
    // all cases; whatever happens, the returned graph must have the
    // requested optimum.
    const BasisState target = fromBitString("111000");
    const Graph g = synthesizeGraphForCut(6, 5, target, 1);
    const MaxCutResult best = bruteForceMaxCut(g);
    EXPECT_NE(std::find(best.argmax.begin(), best.argmax.end(),
                        target),
              best.argmax.end());
}

} // namespace
} // namespace qem
