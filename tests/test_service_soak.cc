/**
 * @file
 * Concurrency soak of the job service under injected faults: mixed
 * priorities submitted from several threads, with the full retry /
 * salvage machinery engaged via INVERTQ_FAULTS. The FailFast runs
 * must stay bit-identical to a clean serial replay of the service's
 * RNG contract; the DropBatches runs must account every lost batch.
 *
 * Named ServiceSoak (not *Fault*) on purpose: CI's fault-injection
 * smoke leg filters on `Fault|Resilient|RuntimeDeterminism`, and
 * the TSan leg runs this suite separately.
 */

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/trajectory.hh"
#include "runtime/shot_plan.hh"
#include "service/job_service.hh"
#include "transpile/transpiler.hh"

namespace qem
{
namespace
{

using svc::JobHandle;
using svc::JobOptions;
using svc::JobPriority;
using svc::JobService;
using svc::JobStatus;
using svc::ServiceOptions;

/**
 * Owns INVERTQ_FAULTS for the duration of a test: the service reads
 * it when a machine is registered, so each test pins its own spec
 * and the destructor restores whatever was ambient.
 */
class ServiceSoak : public ::testing::Test
{
  protected:
    ServiceSoak()
    {
        if (const char* ambient = std::getenv("INVERTQ_FAULTS")) {
            saved_ = ambient;
            unsetenv("INVERTQ_FAULTS");
        }
    }

    ~ServiceSoak() override
    {
        if (saved_)
            setenv("INVERTQ_FAULTS", saved_->c_str(), 1);
        else
            unsetenv("INVERTQ_FAULTS");
    }

    static void setFaults(const std::string& spec)
    {
        ASSERT_EQ(setenv("INVERTQ_FAULTS", spec.c_str(), 1), 0);
    }

    static void clearFaults()
    {
        ASSERT_EQ(unsetenv("INVERTQ_FAULTS"), 0);
    }

  private:
    std::optional<std::string> saved_;
};

/** Service options tuned for soaking: fast backoff, 4 workers. */
ServiceOptions
soakOptions(unsigned max_retries)
{
    ServiceOptions options;
    options.numThreads = 4;
    options.defaultMaxRetries = max_retries;
    options.backoff.baseSeconds = 1e-5;
    options.backoff.maxSeconds = 1e-4;
    return options;
}

/** Clean serial replay of the service determinism contract. */
Counts
serialReference(const ShardedBackend& prototype,
                const Circuit& circuit, std::size_t shots,
                std::size_t batch_size, std::uint64_t service_seed,
                const std::string& tenant, std::uint64_t job_key)
{
    const Rng job =
        JobService::jobStream(service_seed, tenant, job_key);
    Counts merged(circuit.numClbits());
    const ShotPlan plan(shots, batch_size);
    for (const ShotBatch& batch : plan.batches()) {
        Rng rng = ShotPlan::substream(job, batch.index);
        merged.merge(prototype.run(circuit, batch.shots, rng));
    }
    return merged;
}

JobOptions
jobOptions(const std::string& tenant, std::uint64_t job_key,
           JobPriority priority, SalvageMode salvage,
           int max_retries = -1)
{
    JobOptions options;
    options.tenant = tenant;
    options.jobKey = job_key;
    options.batchSize = 64;
    options.priority = priority;
    options.salvage = salvage;
    options.maxRetries = max_retries;
    return options;
}

constexpr JobPriority kPriorityCycle[] = {
    JobPriority::Interactive,
    JobPriority::Batch,
    JobPriority::Background,
    JobPriority::Batch,
};

TEST_F(ServiceSoak, FailFastStaysBitIdenticalUnderFaults)
{
    const Machine machine = makeMachine("ibmqx4");
    const TrajectorySimulator prototype(machine.noiseModel(), 7);
    const Circuit circuit =
        Transpiler(machine)
            .transpile(bernsteinVazirani(3, 0b101))
            .circuit;

    // 16 jobs x 8 batches at a 10% transient rate: retries are
    // engaged with overwhelming probability (P[none] ~ 1.4e-6),
    // and a batch exhausting 8 retries is ~1e-9 per batch.
    setFaults("rate=0.1,seed=77");
    JobService service(soakOptions(8), 2019);
    service.registerMachine("ibmqx4", prototype);
    clearFaults();

    constexpr unsigned kSubmitters = 4;
    constexpr unsigned kJobsEach = 4;
    constexpr std::size_t kShots = 512;
    std::vector<std::vector<JobHandle>> handles(kSubmitters);
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&service, &circuit, &handles,
                                 t] {
            const std::string tenant = "t" + std::to_string(t);
            for (unsigned j = 0; j < kJobsEach; ++j) {
                handles[t].push_back(service.submit(
                    "ibmqx4", circuit, kShots,
                    jobOptions(tenant, j, kPriorityCycle[j % 4],
                               SalvageMode::FailFast)));
            }
        });
    }
    for (auto& thread : submitters)
        thread.join();
    service.drain();

    for (unsigned t = 0; t < kSubmitters; ++t) {
        const std::string tenant = "t" + std::to_string(t);
        ASSERT_EQ(handles[t].size(), kJobsEach);
        for (unsigned j = 0; j < kJobsEach; ++j) {
            const JobHandle& handle = handles[t][j];
            ASSERT_EQ(handle.status(), JobStatus::Completed)
                << tenant << " job " << j;
            EXPECT_EQ(handle.get().total(), kShots);
            EXPECT_EQ(handle.get().raw(),
                      serialReference(prototype, circuit, kShots,
                                      64, 2019, tenant, j)
                          .raw())
                << tenant << " job " << j
                << ": counts depend on fault timing or "
                << "interleaving";
            EXPECT_EQ(handle.record().droppedBatches, 0u);
        }
    }

    const svc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.submitted, kSubmitters * kJobsEach);
    EXPECT_EQ(summary.completed, kSubmitters * kJobsEach);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(summary.shotsCompleted,
              kSubmitters * kJobsEach * kShots);
    EXPECT_GT(summary.retries, 0u)
        << "fault injection never engaged the retry path";
}

TEST_F(ServiceSoak, DropBatchesAccountsEveryLostBatch)
{
    const Machine machine = makeMachine("ibmqx2");
    const TrajectorySimulator prototype(machine.noiseModel(), 3);
    const Circuit circuit =
        Transpiler(machine)
            .transpile(bernsteinVazirani(2, 0b11))
            .circuit;

    // No retries, 20% rate, 64 batches: at least one drop with
    // P ~ 1 - 0.8^64 (~0.9999994).
    setFaults("rate=0.2,seed=99");
    JobService service(soakOptions(0), 4242);
    service.registerMachine("ibmqx2", prototype);
    clearFaults();

    constexpr std::size_t kShots = 1024; // 16 batches of 64.
    std::vector<JobHandle> handles;
    for (std::uint64_t j = 0; j < 4; ++j) {
        handles.push_back(service.submit(
            "ibmqx2", circuit, kShots,
            jobOptions("soak", j, kPriorityCycle[j % 4],
                       SalvageMode::DropBatches, 0)));
    }
    service.drain();

    std::size_t dropped = 0, completedShots = 0;
    for (const JobHandle& handle : handles) {
        ASSERT_EQ(handle.status(), JobStatus::Completed);
        const svc::JobRecord& record = handle.record();
        // The histogram and the audit record must agree on the
        // salvage: every shot in the log is accounted, every lost
        // batch is 64 shots short.
        EXPECT_EQ(handle.get().total(), record.shotsCompleted);
        EXPECT_EQ(record.shotsRequested - record.shotsCompleted,
                  record.droppedBatches * 64);
        dropped += record.droppedBatches;
        completedShots += record.shotsCompleted;
        if (record.droppedBatches == 0) {
            // Fault-free jobs still follow the contract exactly.
            EXPECT_EQ(handle.get().raw(),
                      serialReference(prototype, circuit, kShots,
                                      64, 4242, "soak",
                                      record.jobKey)
                          .raw());
        }
    }
    EXPECT_GT(dropped, 0u)
        << "fault injection never dropped a batch";

    const svc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.completed, 4u);
    EXPECT_EQ(summary.droppedBatches, dropped);
    EXPECT_EQ(summary.shotsCompleted, completedShots);
}

TEST_F(ServiceSoak, DeadMachineFailsFastWithBudgetExhausted)
{
    const TrajectorySimulator prototype(
        makeMachine("ibmqx2").noiseModel(), 3);
    const Circuit circuit =
        Transpiler(makeMachine("ibmqx2"))
            .transpile(bernsteinVazirani(2, 0b01))
            .circuit;

    // Outage from call 0 that never heals: every attempt fails,
    // the retry budget exhausts, FailFast surfaces the loss.
    setFaults("after=0,kind=transient");
    JobService service(soakOptions(1), 5);
    service.registerMachine("dead", prototype);
    clearFaults();

    JobHandle handle = service.submit(
        "dead", circuit, 128,
        jobOptions("alice", 0, JobPriority::Batch,
                   SalvageMode::FailFast, 1));
    handle.wait();
    EXPECT_EQ(handle.status(), JobStatus::Failed);
    EXPECT_THROW((void)handle.get(), BudgetExhausted);
    EXPECT_EQ(handle.record().status, JobStatus::Failed);
    EXPECT_FALSE(handle.record().error.empty());
    EXPECT_EQ(service.summary().failed, 1u);
    // The service survives a dead machine: later jobs on healthy
    // machines still complete.
    service.registerMachine("ok", prototype);
    JobHandle ok = service.submit(
        "ok", circuit, 128,
        jobOptions("alice", 1, JobPriority::Batch,
                   SalvageMode::FailFast));
    ok.wait();
    EXPECT_EQ(ok.status(), JobStatus::Completed);
}

} // namespace
} // namespace qem
