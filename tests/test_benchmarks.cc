/**
 * @file
 * Unit tests for the Table-3 benchmark suite.
 */

#include <gtest/gtest.h>

#include "kernels/benchmarks.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(Benchmarks, Q5SuiteMatchesTable3)
{
    const auto suite = benchmarkSuiteQ5();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name, "bv-4A");
    EXPECT_EQ(suite[0].correctOutput, fromBitString("0111"));
    EXPECT_EQ(suite[1].name, "bv-4B");
    EXPECT_EQ(suite[1].correctOutput, fromBitString("1111"));
    EXPECT_EQ(suite[2].name, "qaoa-4A");
    EXPECT_EQ(suite[2].correctOutput, fromBitString("0101"));
    EXPECT_EQ(suite[3].name, "qaoa-4B");
    EXPECT_EQ(suite[3].correctOutput, fromBitString("0111"));
    for (const auto& bench : suite) {
        EXPECT_LE(bench.circuit.numQubits(), 5u) << bench.name;
        EXPECT_TRUE(bench.circuit.hasMeasurements()) << bench.name;
        EXPECT_EQ(bench.outputBits, 4u) << bench.name;
        ASSERT_FALSE(bench.acceptedOutputs.empty()) << bench.name;
        EXPECT_EQ(bench.acceptedOutputs[0], bench.correctOutput);
    }
}

TEST(Benchmarks, Q14SuiteMatchesTable3)
{
    const auto suite = benchmarkSuiteQ14();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name, "bv-6");
    EXPECT_EQ(suite[0].correctOutput, fromBitString("011111"));
    EXPECT_EQ(suite[1].name, "bv-7");
    EXPECT_EQ(suite[1].correctOutput, fromBitString("0111111"));
    EXPECT_EQ(suite[2].name, "qaoa-6");
    EXPECT_EQ(suite[2].correctOutput, fromBitString("101011"));
    EXPECT_EQ(suite[3].name, "qaoa-7");
    EXPECT_EQ(suite[3].correctOutput, fromBitString("1010110"));
}

TEST(Benchmarks, SuiteForDispatchesOnMachineSize)
{
    EXPECT_EQ(benchmarkSuiteFor(5).front().name, "bv-4A");
    EXPECT_EQ(benchmarkSuiteFor(14).front().name, "bv-6");
}

TEST(Benchmarks, ComplementOutput)
{
    const auto suite = benchmarkSuiteQ5();
    EXPECT_EQ(complementOutput(suite[2]), fromBitString("1010"));
}

TEST(Benchmarks, BvBenchmarksAreExactOnIdealHardware)
{
    for (const auto& bench : benchmarkSuiteQ5()) {
        if (bench.name.rfind("bv", 0) != 0)
            continue;
        IdealSimulator sim(bench.circuit.numQubits(), 31);
        EXPECT_EQ(sim.run(bench.circuit, 100).get(
                      bench.correctOutput),
                  100u)
            << bench.name;
    }
}

TEST(Benchmarks, QaoaBenchmarksConcentrateOnOptimum)
{
    for (const auto& suite :
         {benchmarkSuiteQ5(), benchmarkSuiteQ14()}) {
        for (const auto& bench : suite) {
            if (bench.name.rfind("qaoa", 0) != 0)
                continue;
            IdealSimulator sim(bench.circuit.numQubits(), 32);
            const Counts counts = sim.run(bench.circuit, 20000);
            const BasisState top = counts.mostFrequent();
            EXPECT_TRUE(top == bench.correctOutput ||
                        top == complementOutput(bench))
                << bench.name << " top="
                << toBitString(top, bench.outputBits);
        }
    }
}

TEST(Benchmarks, MakersValidateInputs)
{
    EXPECT_THROW(makeBvBenchmark("x", 4, "011"),
                 std::invalid_argument);
    EXPECT_THROW(
        makeQaoaBenchmark("x", cycleGraph(4), 1, "01011"),
        std::invalid_argument);
    // Declared target must actually be the max cut.
    EXPECT_THROW(makeQaoaBenchmark("x", cycleGraph(4), 1, "0011"),
                 std::logic_error);
}

} // namespace
} // namespace qem
