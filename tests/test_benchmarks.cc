/**
 * @file
 * Unit tests for the Table-3 benchmark suite.
 */

#include <algorithm>
#include <iterator>

#include <gtest/gtest.h>

#include "kernels/benchmarks.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem
{
namespace
{

/** False-positive budget per statistical claim in this file. */
constexpr double kAlpha = 1e-6;

TEST(Benchmarks, Q5SuiteMatchesTable3)
{
    const auto suite = benchmarkSuiteQ5();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name, "bv-4A");
    EXPECT_EQ(suite[0].correctOutput, fromBitString("0111"));
    EXPECT_EQ(suite[1].name, "bv-4B");
    EXPECT_EQ(suite[1].correctOutput, fromBitString("1111"));
    EXPECT_EQ(suite[2].name, "qaoa-4A");
    EXPECT_EQ(suite[2].correctOutput, fromBitString("0101"));
    EXPECT_EQ(suite[3].name, "qaoa-4B");
    EXPECT_EQ(suite[3].correctOutput, fromBitString("0111"));
    for (const auto& bench : suite) {
        EXPECT_LE(bench.circuit.numQubits(), 5u) << bench.name;
        EXPECT_TRUE(bench.circuit.hasMeasurements()) << bench.name;
        EXPECT_EQ(bench.outputBits, 4u) << bench.name;
        ASSERT_FALSE(bench.acceptedOutputs.empty()) << bench.name;
        EXPECT_EQ(bench.acceptedOutputs[0], bench.correctOutput);
    }
}

TEST(Benchmarks, Q14SuiteMatchesTable3)
{
    const auto suite = benchmarkSuiteQ14();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name, "bv-6");
    EXPECT_EQ(suite[0].correctOutput, fromBitString("011111"));
    EXPECT_EQ(suite[1].name, "bv-7");
    EXPECT_EQ(suite[1].correctOutput, fromBitString("0111111"));
    EXPECT_EQ(suite[2].name, "qaoa-6");
    EXPECT_EQ(suite[2].correctOutput, fromBitString("101011"));
    EXPECT_EQ(suite[3].name, "qaoa-7");
    EXPECT_EQ(suite[3].correctOutput, fromBitString("1010110"));
}

TEST(Benchmarks, SuiteForDispatchesOnMachineSize)
{
    EXPECT_EQ(benchmarkSuiteFor(5).front().name, "bv-4A");
    EXPECT_EQ(benchmarkSuiteFor(14).front().name, "bv-6");
}

TEST(Benchmarks, ComplementOutput)
{
    const auto suite = benchmarkSuiteQ5();
    EXPECT_EQ(complementOutput(suite[2]), fromBitString("1010"));
}

TEST(Benchmarks, BvBenchmarksAreExactOnIdealHardware)
{
    for (const auto& bench : benchmarkSuiteQ5()) {
        if (bench.name.rfind("bv", 0) != 0)
            continue;
        IdealSimulator sim(bench.circuit.numQubits(), 31);
        EXPECT_EQ(sim.run(bench.circuit, 100).get(
                      bench.correctOutput),
                  100u)
            << bench.name;
    }
}

TEST(Benchmarks, QaoaBenchmarksConcentrateOnOptimum)
{
    for (const auto& suite :
         {benchmarkSuiteQ5(), benchmarkSuiteQ14()}) {
        for (const auto& bench : suite) {
            if (bench.name.rfind("qaoa", 0) != 0)
                continue;
            // Concentration is an analytic property of the circuit:
            // the exact amplitudes must peak on the optimum (or its
            // Z2 complement). No sampling, no tolerance.
            const std::vector<double> ideal =
                verify::idealDistribution(bench.circuit);
            const BasisState top = static_cast<BasisState>(
                std::distance(ideal.begin(),
                              std::max_element(ideal.begin(),
                                               ideal.end())));
            EXPECT_TRUE(top == bench.correctOutput ||
                        top == complementOutput(bench))
                << bench.name << " top="
                << toBitString(top, bench.outputBits);
            // And the ideal simulator actually samples that
            // distribution: G-test with an explicit alpha replaces
            // the old most-frequent-outcome heuristic.
            IdealSimulator sim(bench.circuit.numQubits(), 32);
            const Counts counts = sim.run(bench.circuit, 20000);
            const verify::CheckResult fit =
                verify::checkDistribution(counts, ideal, kAlpha);
            EXPECT_TRUE(fit) << bench.name << ": " << fit.message;
        }
    }
}

TEST(Benchmarks, MakersValidateInputs)
{
    EXPECT_THROW(makeBvBenchmark("x", 4, "011"),
                 std::invalid_argument);
    EXPECT_THROW(
        makeQaoaBenchmark("x", cycleGraph(4), 1, "01011"),
        std::invalid_argument);
    // Declared target must actually be the max cut.
    EXPECT_THROW(makeQaoaBenchmark("x", cycleGraph(4), 1, "0011"),
                 std::logic_error);
}

} // namespace
} // namespace qem
