/**
 * @file
 * Unit tests for the reproducible RNG.
 */

#include <gtest/gtest.h>

#include "qsim/rng.hh"

namespace qem
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.bits() == b.bits());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, IndexBoundsAndCoverage)
{
    Rng rng(11);
    std::vector<int> seen(7, 0);
    for (int i = 0; i < 7000; ++i) {
        const std::uint64_t k = rng.index(7);
        ASSERT_LT(k, 7u);
        ++seen[k];
    }
    for (int count : seen)
        EXPECT_GT(count, 700); // Roughly uniform (expected 1000).
    EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(12);
    std::vector<double> weights{1.0, 0.0, 3.0};
    std::vector<int> seen(3, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.discrete(weights)];
    EXPECT_EQ(seen[1], 0);
    EXPECT_NEAR(seen[2] / 8000.0, 0.75, 0.03);
}

TEST(Rng, DiscreteRejectsBadWeights)
{
    Rng rng(13);
    EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({1.0, -0.1}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({}), std::invalid_argument);
}

TEST(Rng, SplitIsDeterministicAndIndependent)
{
    Rng parent1(99), parent2(99);
    Rng childA = parent1.split();
    Rng childB = parent2.split();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(childA.bits(), childB.bits());
    // Second split differs from the first.
    Rng childC = parent1.split();
    int same = 0;
    Rng childA2 = parent2.split(); // Re-derive first child stream.
    (void)childA2;
    for (int i = 0; i < 32; ++i)
        same += (childC.bits() == childA.bits());
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitAtIsOrderIndependent)
{
    // Deriving substreams in any order — or interleaved with draws
    // and sequential splits — yields the same streams.
    Rng forward(314), backward(314);
    Rng f0 = forward.splitAt(0);
    Rng f7 = forward.splitAt(7);
    (void)backward.bits();      // Perturb the engine...
    (void)backward.split();     // ...and the split counter.
    Rng b7 = backward.splitAt(7);
    Rng b0 = backward.splitAt(0);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(f0.bits(), b0.bits());
        EXPECT_EQ(f7.bits(), b7.bits());
    }
}

TEST(Rng, SplitAtDoesNotPerturbTheParent)
{
    Rng touched(55), untouched(55);
    (void)touched.splitAt(3);
    (void)touched.splitAt(12);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(touched.bits(), untouched.bits());
    // The sequential split counter is also untouched: the next
    // split() matches a fresh generator's first split.
    Rng fresh(55);
    Rng a = touched.split();
    Rng b = fresh.split();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, SplitAtIndicesDiverge)
{
    Rng rng(17);
    Rng s0 = rng.splitAt(0);
    Rng s1 = rng.splitAt(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (s0.bits() == s1.bits());
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitAtIsDomainSeparatedFromSplit)
{
    // splitAt(i) and the i-th split() child are different streams.
    Rng rng(23);
    Rng indexed = rng.splitAt(1);
    Rng sequential = rng.split(); // First sequential child.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (indexed.bits() == sequential.bits());
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace qem
