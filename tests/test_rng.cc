/**
 * @file
 * Unit tests for the reproducible RNG.
 */

#include <gtest/gtest.h>

#include "qsim/rng.hh"

namespace qem
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.bits() == b.bits());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, IndexBoundsAndCoverage)
{
    Rng rng(11);
    std::vector<int> seen(7, 0);
    for (int i = 0; i < 7000; ++i) {
        const std::uint64_t k = rng.index(7);
        ASSERT_LT(k, 7u);
        ++seen[k];
    }
    for (int count : seen)
        EXPECT_GT(count, 700); // Roughly uniform (expected 1000).
    EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(12);
    std::vector<double> weights{1.0, 0.0, 3.0};
    std::vector<int> seen(3, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.discrete(weights)];
    EXPECT_EQ(seen[1], 0);
    EXPECT_NEAR(seen[2] / 8000.0, 0.75, 0.03);
}

TEST(Rng, DiscreteRejectsBadWeights)
{
    Rng rng(13);
    EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({1.0, -0.1}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({}), std::invalid_argument);
}

TEST(Rng, SplitIsDeterministicAndIndependent)
{
    Rng parent1(99), parent2(99);
    Rng childA = parent1.split();
    Rng childB = parent2.split();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(childA.bits(), childB.bits());
    // Second split differs from the first.
    Rng childC = parent1.split();
    int same = 0;
    Rng childA2 = parent2.split(); // Re-derive first child stream.
    (void)childA2;
    for (int i = 0; i < 32; ++i)
        same += (childC.bits() == childA.bits());
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace qem
