/**
 * @file
 * Determinism guarantees of the parallel shot-execution runtime:
 * the merged histogram of a job is a pure function of (seed, batch
 * size, call index) — never of thread count or scheduling — for
 * both a Bernstein-Vazirani and a QAOA trajectory workload.
 */

#include <gtest/gtest.h>

#include "kernels/benchmarks.hh"
#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "runtime/parallel_backend.hh"
#include "runtime/shot_plan.hh"

namespace qem
{
namespace
{

/** Merged histogram of @p shots BV-5 trials on @p threads workers. */
Counts
runBv(unsigned threads, std::uint64_t seed, std::size_t shots,
      std::size_t batch_size)
{
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    ParallelBackend backend(proto, seed,
                            RuntimeOptions{.numThreads = threads,
                                           .batchSize = batch_size});
    return backend.run(bernsteinVazirani(4, fromBitString("1011")),
                       shots);
}

TEST(RuntimeDeterminism, BvIdenticalAcross1_2_8Threads)
{
    const Counts one = runBv(1, 2019, 4096, 64);
    const Counts two = runBv(2, 2019, 4096, 64);
    const Counts eight = runBv(8, 2019, 4096, 64);
    EXPECT_EQ(one.total(), 4096u);
    EXPECT_EQ(one.raw(), two.raw());
    EXPECT_EQ(one.raw(), eight.raw());
}

TEST(RuntimeDeterminism, QaoaIdenticalAcross1_2_8Threads)
{
    // First QAOA entry of the 5-qubit suite (Table 3 workload).
    const std::vector<NisqBenchmark> suite = benchmarkSuiteQ5();
    const NisqBenchmark* qaoa = nullptr;
    for (const NisqBenchmark& bench : suite) {
        if (bench.name.rfind("qaoa", 0) == 0) {
            qaoa = &bench;
            break;
        }
    }
    ASSERT_NE(qaoa, nullptr);

    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 11);
    Counts byThreads[3];
    const unsigned threads[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
        ParallelBackend backend(proto, 2019,
                                RuntimeOptions{.numThreads = threads[i],
                                               .batchSize = 128});
        byThreads[i] = backend.run(qaoa->circuit, 2048);
    }
    EXPECT_EQ(byThreads[0].total(), 2048u);
    EXPECT_EQ(byThreads[0].raw(), byThreads[1].raw());
    EXPECT_EQ(byThreads[0].raw(), byThreads[2].raw());
}

TEST(RuntimeDeterminism, RepeatedRunsAdvanceButReplayExactly)
{
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    const Circuit circuit = bernsteinVazirani(4, allOnes(4));

    ParallelBackend a(
        proto, 5, RuntimeOptions{.numThreads = 2, .batchSize = 64});
    const Counts first = a.run(circuit, 1024);
    const Counts second = a.run(circuit, 1024);
    // Same job twice consumes fresh job streams (like the serial
    // simulators), so the histograms differ...
    EXPECT_NE(first.raw(), second.raw());
    // ...but a reconstructed backend replays the same sequence.
    ParallelBackend b(
        proto, 5, RuntimeOptions{.numThreads = 8, .batchSize = 64});
    EXPECT_EQ(b.run(circuit, 1024).raw(), first.raw());
    EXPECT_EQ(b.run(circuit, 1024).raw(), second.raw());
}

TEST(RuntimeDeterminism, IdealBackendShardsDeterministically)
{
    const IdealSimulator proto(5, 123);
    const Circuit circuit = bernsteinVazirani(4, fromBitString("0110"));
    ParallelBackend one(
        proto, 9, RuntimeOptions{.numThreads = 1, .batchSize = 32});
    ParallelBackend four(
        proto, 9, RuntimeOptions{.numThreads = 4, .batchSize = 32});
    EXPECT_EQ(one.run(circuit, 1000).raw(),
              four.run(circuit, 1000).raw());
}

TEST(RuntimeDeterminism, UnevenShotCountsAreCoveredExactly)
{
    // 1000 shots in batches of 64 -> 15 full batches + a 40-shot
    // tail; every shot lands in the log exactly once.
    const Counts counts = runBv(3, 77, 1000, 64);
    EXPECT_EQ(counts.total(), 1000u);
}

TEST(RuntimeDeterminism, StatsAccountForEveryShot)
{
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    ParallelBackend backend(
        proto, 2019,
        RuntimeOptions{.numThreads = 2, .batchSize = 64});
    (void)backend.run(bernsteinVazirani(4, 1), 512);
    const RuntimeStats& stats = backend.lastRunStats();
    EXPECT_EQ(stats.shots, 512u);
    EXPECT_EQ(stats.batches, 8u);
    EXPECT_EQ(stats.numThreads, 2u);
    std::uint64_t across = 0;
    for (std::uint64_t w : stats.perWorkerShots)
        across += w;
    EXPECT_EQ(across, 512u);
    EXPECT_GT(stats.shotsPerSecond, 0.0);
    EXPECT_FALSE(stats.toString().empty());
}

TEST(RuntimeDeterminism, WorkerExceptionPropagates)
{
    // RESET is unsupported by the trajectory simulator; the throw
    // happens on a pool worker and must surface at the call site.
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    ParallelBackend backend(
        proto, 3, RuntimeOptions{.numThreads = 2, .batchSize = 16});
    Circuit bad(1);
    bad.reset(0).measure(0, 0);
    EXPECT_THROW(backend.run(bad, 64), std::logic_error);
}

TEST(RuntimeDeterminism, ExplicitRngOverloadMatchesMemberStream)
{
    // The member-RNG run() is a wrapper: driving the const overload
    // with an equally-seeded stream reproduces it bit for bit.
    const Circuit circuit = bernsteinVazirani(4, fromBitString("1110"));
    TrajectorySimulator wrapped(makeIbmqx4().noiseModel(), 42);
    const TrajectorySimulator pure(makeIbmqx4().noiseModel(), 99);
    Rng stream(42);
    EXPECT_EQ(wrapped.run(circuit, 2000).raw(),
              pure.run(circuit, 2000, stream).raw());
}

TEST(ShotPlan, PartitionsTheBudgetContiguously)
{
    const ShotPlan plan(1000, 64);
    EXPECT_EQ(plan.numBatches(), 16u);
    std::size_t next = 0;
    for (const ShotBatch& batch : plan.batches()) {
        EXPECT_EQ(batch.firstShot, next);
        EXPECT_LE(batch.shots, 64u);
        next += batch.shots;
    }
    EXPECT_EQ(next, 1000u);
    EXPECT_THROW(ShotPlan(10, 0), std::invalid_argument);
    EXPECT_EQ(ShotPlan(0, 64).numBatches(), 0u);
}

TEST(ShotPlan, SubstreamsAreKeyedByIndexNotOrder)
{
    Rng job(31337);
    Rng late = ShotPlan::substream(job, 9);
    Rng early = ShotPlan::substream(job, 0);
    // Re-deriving in the opposite order yields the same streams.
    Rng early2 = ShotPlan::substream(job, 0);
    Rng late2 = ShotPlan::substream(job, 9);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(early.bits(), early2.bits());
        EXPECT_EQ(late.bits(), late2.bits());
    }
}

} // namespace
} // namespace qem
