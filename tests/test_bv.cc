/**
 * @file
 * Unit tests for the Bernstein-Vazirani kernel (and the basis-prep
 * kernels it shares a file with in spirit).
 */

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(BasisKernels, BasisStatePrepProducesRequestedState)
{
    IdealSimulator sim(5);
    for (BasisState s : {BasisState{0}, BasisState{0b10110},
                         allOnes(5)}) {
        const Counts counts = sim.run(basisStatePrep(5, s), 50);
        EXPECT_EQ(counts.get(s), 50u) << "state " << s;
    }
    EXPECT_THROW(basisStatePrep(3, 8), std::invalid_argument);
    EXPECT_THROW(basisStatePrep(0, 0), std::invalid_argument);
    EXPECT_FALSE(basisStatePrep(3, 1, false).hasMeasurements());
}

TEST(BasisKernels, GhzStructure)
{
    const Circuit ghz = ghzState(5);
    EXPECT_EQ(ghz.countOps(GateKind::H), 1u);
    EXPECT_EQ(ghz.countOps(GateKind::CX), 4u);
    EXPECT_EQ(ghz.countOps(GateKind::MEASURE), 5u);
}

TEST(BasisKernels, UniformSuperpositionStructure)
{
    const Circuit sup = uniformSuperposition(4);
    EXPECT_EQ(sup.countOps(GateKind::H), 4u);
}

TEST(Bv, StructureMatchesKey)
{
    const BasisState key = fromBitString("0110");
    const Circuit c = bernsteinVazirani(4, key);
    EXPECT_EQ(c.numQubits(), 5u); // 4 key + ancilla.
    EXPECT_EQ(c.countOps(GateKind::CX), 2u); // Two set key bits.
    EXPECT_EQ(c.countOps(GateKind::MEASURE), 4u); // Key only.
    // Gate count scales with key weight, measurement count with n
    // (Table 3's "scale linearly" note).
    const Circuit heavy = bernsteinVazirani(4, allOnes(4));
    EXPECT_EQ(heavy.countOps(GateKind::CX), 4u);
}

TEST(Bv, RejectsBadKeys)
{
    EXPECT_THROW(bernsteinVazirani(3, 0b1000), std::invalid_argument);
    EXPECT_THROW(bernsteinVazirani(0, 0), std::invalid_argument);
}

TEST(BvFull, AncillaSteering)
{
    IdealSimulator sim(5);
    // target bit 4 set: ancilla must read 1.
    const BasisState t1 = fromBitString("01101");
    EXPECT_EQ(sim.run(bernsteinVaziraniFull(4, t1), 100).get(t1),
              100u);
    // target bit 4 clear: trailing X steers the ancilla to 0.
    const BasisState t0 = fromBitString("01100");
    EXPECT_EQ(sim.run(bernsteinVaziraniFull(4, t0), 100).get(t0),
              100u);
    EXPECT_THROW(bernsteinVaziraniFull(3, 1 << 4),
                 std::invalid_argument);
}

/** Property sweep: every key of every width is recovered exactly on
 *  an ideal machine. */
class BvKeySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BvKeySweep, AllKeysRecovered)
{
    const unsigned n = GetParam();
    IdealSimulator sim(n + 1);
    for (BasisState key = 0; key < (BasisState{1} << n); ++key) {
        const Counts counts =
            sim.run(bernsteinVazirani(n, key), 20);
        ASSERT_EQ(counts.get(key), 20u)
            << "n=" << n << " key=" << key;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BvKeySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace qem
