/**
 * @file
 * Unit tests for qubit allocation.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "transpile/allocation.hh"

namespace qem
{
namespace
{

TEST(Allocation, ValidateLayoutCatchesBadLayouts)
{
    EXPECT_NO_THROW(validateLayout({2, 0, 1}, 3, 5));
    EXPECT_THROW(validateLayout({0, 1}, 3, 5), std::logic_error);
    EXPECT_THROW(validateLayout({0, 5, 1}, 3, 5), std::logic_error);
    EXPECT_THROW(validateLayout({0, 0, 1}, 3, 5), std::logic_error);
}

TEST(Allocation, TrivialAllocatorIsIdentity)
{
    TrivialAllocator alloc;
    Circuit c(3);
    c.h(0);
    const Layout layout = alloc.allocate(c, makeIbmqx2());
    EXPECT_EQ(layout, (Layout{0, 1, 2}));
    Circuit wide(6);
    EXPECT_THROW(alloc.allocate(wide, makeIbmqx2()),
                 std::invalid_argument);
}

TEST(Allocation, VariabilityAwareProducesValidLayout)
{
    VariabilityAwareAllocator alloc;
    const Machine m = makeIbmqMelbourne();
    Circuit c = bernsteinVazirani(6, 0b111111);
    const Layout layout = alloc.allocate(c, m);
    EXPECT_NO_THROW(
        validateLayout(layout, c.numQubits(), m.numQubits()));
}

TEST(Allocation, VariabilityAwareAvoidsWorstReadoutQubit)
{
    // Melbourne's qubit 9 has a 31% assignment error; a 5-qubit
    // program has plenty of better homes.
    VariabilityAwareAllocator alloc;
    const Machine m = makeIbmqMelbourne();
    Qubit worst = 0;
    for (Qubit q = 1; q < m.numQubits(); ++q) {
        if (m.calibration().readoutAssignmentError(q) >
            m.calibration().readoutAssignmentError(worst)) {
            worst = q;
        }
    }
    Circuit c = bernsteinVazirani(4, 0b1111);
    const Layout layout = alloc.allocate(c, m);
    EXPECT_EQ(std::count(layout.begin(), layout.end(), worst), 0)
        << "program was placed on the worst qubit " << worst;
}

TEST(Allocation, InteractingQubitsPlacedAdjacent)
{
    // BV's star interaction graph fits the bowtie: every key qubit
    // should be adjacent to the ancilla's physical home.
    VariabilityAwareAllocator alloc;
    const Machine m = makeIbmqx2();
    Circuit c = bernsteinVazirani(4, 0b1111);
    const Layout layout = alloc.allocate(c, m);
    const Qubit ancilla_phys = layout[4];
    int adjacent = 0;
    for (Qubit key = 0; key < 4; ++key)
        adjacent += m.topology().coupled(layout[key], ancilla_phys);
    // The bowtie center has degree 4, so a good allocation makes
    // all four key qubits adjacent.
    EXPECT_EQ(adjacent, 4);
}

TEST(Allocation, RejectsOverwideCircuit)
{
    VariabilityAwareAllocator alloc;
    Circuit c(6);
    EXPECT_THROW(alloc.allocate(c, makeIbmqx2()),
                 std::invalid_argument);
}

TEST(Allocation, DeterministicAcrossCalls)
{
    VariabilityAwareAllocator alloc;
    const Machine m = makeIbmqMelbourne();
    Circuit c = bernsteinVazirani(5, 0b10101);
    EXPECT_EQ(alloc.allocate(c, m), alloc.allocate(c, m));
}

} // namespace
} // namespace qem
