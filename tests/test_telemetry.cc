/**
 * @file
 * Unit tests for the telemetry subsystem: registry thread safety,
 * histogram bucketing, span nesting/ordering, JSON round-trips,
 * and the disabled-is-a-no-op contract.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/manifest.hh"
#include "telemetry/metrics.hh"
#include "telemetry/sink.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"

namespace qem::telemetry
{
namespace
{

/** Every test starts and ends with pristine global telemetry. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetAll(); }
    void TearDown() override
    {
        setEnabled(false);
        resetAll();
    }
};

TEST_F(TelemetryTest, CounterConcurrentAddsLoseNothing)
{
    MetricsRegistry registry;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kAdds = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry] {
            // Half the threads re-resolve the handle every
            // iteration to also exercise concurrent registration.
            Counter& c = registry.counter("shared");
            for (std::uint64_t i = 0; i < kAdds; ++i)
                c.add();
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(registry.counter("shared").value(),
              kThreads * kAdds);
}

TEST_F(TelemetryTest, HistogramConcurrentRecordsLoseNothing)
{
    MetricsRegistry registry;
    Histogram& h =
        registry.histogram("lat", {0.25, 0.5, 0.75, 1.0});
    constexpr unsigned kThreads = 8;
    constexpr int kRecords = 5000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kRecords; ++i) {
                h.record(static_cast<double>((i + t) % 5) *
                         0.25);
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(h.count(), kThreads * kRecords);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : h.bucketCounts())
        bucket_total += b;
    EXPECT_EQ(bucket_total, h.count());
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 1.0);
    EXPECT_GT(h.sum(), 0.0);
}

TEST_F(TelemetryTest, HistogramBucketPlacement)
{
    Histogram h({1.0, 2.0, 3.0});
    h.record(0.5); // <= 1.0
    h.record(1.0); // <= 1.0 (inclusive upper bound)
    h.record(1.5); // <= 2.0
    h.record(2.5); // <= 3.0
    h.record(99.0); // overflow
    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 99.0);
}

TEST_F(TelemetryTest, HistogramRejectsBadBounds)
{
    EXPECT_THROW(Histogram({}), std::invalid_argument);
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(TelemetryTest, RegistryHandlesAreStable)
{
    MetricsRegistry registry;
    Counter& a = registry.counter("x");
    Gauge& g = registry.gauge("g");
    g.set(2.5);
    for (int i = 0; i < 100; ++i)
        registry.counter("name" + std::to_string(i));
    EXPECT_EQ(&a, &registry.counter("x"));
    EXPECT_EQ(registry.gauge("g").value(), 2.5);
    // Histogram bounds are fixed by the first registration.
    Histogram& h = registry.histogram("h", {1.0});
    EXPECT_EQ(&h, &registry.histogram("h", {5.0, 6.0}));
    EXPECT_EQ(h.upperBounds().size(), 1u);
}

TEST_F(TelemetryTest, SpanNestingAndOrdering)
{
    SpanTracer tracer;
    {
        SpanTracer::Scope outer = tracer.scoped("outer");
        {
            SpanTracer::Scope a = tracer.scoped("a");
        }
        {
            SpanTracer::Scope b = tracer.scoped("b");
            SpanTracer::Scope inner = tracer.scoped("b.inner");
        }
    }
    const SpanSnapshot root = tracer.snapshot();
    EXPECT_EQ(root.name, "session");
    ASSERT_EQ(root.children.size(), 1u);
    const SpanSnapshot& outer = root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_TRUE(outer.closed);
    ASSERT_EQ(outer.children.size(), 2u);
    EXPECT_EQ(outer.children[0].name, "a");
    EXPECT_EQ(outer.children[1].name, "b");
    ASSERT_EQ(outer.children[1].children.size(), 1u);
    EXPECT_EQ(outer.children[1].children[0].name, "b.inner");
    // Children start within the parent and take no longer.
    EXPECT_GE(outer.children[0].startSeconds,
              outer.startSeconds);
    EXPECT_LE(outer.children[0].durationSeconds,
              outer.durationSeconds);
    EXPECT_NE(root.find("b.inner"), nullptr);
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST_F(TelemetryTest, SpanFromWorkerThreadAttachesToRoot)
{
    SpanTracer tracer;
    SpanTracer::Scope main_span = tracer.scoped("main");
    std::thread worker([&tracer] {
        SpanTracer::Scope s = tracer.scoped("worker");
    });
    worker.join();
    const SpanSnapshot root = tracer.snapshot();
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].name, "main");
    EXPECT_EQ(root.children[1].name, "worker");
}

TEST_F(TelemetryTest, TracerResetSurvivesLiveScopes)
{
    SpanTracer tracer;
    SpanTracer::Scope stale = tracer.scoped("stale");
    tracer.reset();
    {
        SpanTracer::Scope fresh = tracer.scoped("fresh");
    }
    stale = {}; // Closing the pre-reset scope must be harmless.
    const SpanSnapshot root = tracer.snapshot();
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].name, "fresh");
}

TEST_F(TelemetryTest, JsonRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc["string"] = JsonValue("with \"quotes\" and \n newline");
    doc["int"] = JsonValue(std::uint64_t{123456789});
    doc["float"] = JsonValue(0.125);
    doc["bool"] = JsonValue(true);
    doc["null"] = JsonValue();
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(1));
    arr.push(JsonValue("two"));
    JsonValue nested = JsonValue::object();
    nested["k"] = JsonValue(false);
    arr.push(std::move(nested));
    doc["arr"] = std::move(arr);

    for (int indent : {0, 2}) {
        const std::string text = doc.dump(indent);
        const JsonValue parsed = JsonValue::parse(text);
        EXPECT_EQ(parsed, doc) << text;
    }
}

TEST_F(TelemetryTest, JsonIntegersDumpWithoutExponent)
{
    JsonValue v(std::uint64_t{16384});
    EXPECT_EQ(v.dump(), "16384");
    EXPECT_EQ(JsonValue::parse("16384").asUint(), 16384u);
}

TEST_F(TelemetryTest, JsonParseRejectsGarbage)
{
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{\"a\":}"),
                 std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{} trailing"),
                 std::runtime_error);
}

TEST_F(TelemetryTest, SnapshotExportsToJson)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(3);
    registry.gauge("threads").set(4.0);
    registry.histogram("lat", {1.0, 2.0}).record(0.5);
    const JsonValue json = toJson(registry.snapshot());

    const JsonValue* counters = json.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("jobs"), nullptr);
    EXPECT_EQ(counters->find("jobs")->asUint(), 3u);
    const JsonValue* hist = json.find("histograms");
    ASSERT_NE(hist, nullptr);
    const JsonValue* lat = hist->find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asUint(), 1u);
    // Bounds + the overflow bucket.
    EXPECT_EQ(lat->find("buckets")->size(), 3u);
}

TEST_F(TelemetryTest, DisabledFacadeIsInert)
{
    setEnabled(false);
    count("ghost.counter", 7);
    observe("ghost.histogram", 1.0);
    gaugeSet("ghost.gauge", 1.0);
    {
        SpanTracer::Scope s = span("ghost.span");
    }
    EXPECT_TRUE(metrics().snapshot().empty());
    EXPECT_TRUE(tracer().snapshot().children.empty());
}

TEST_F(TelemetryTest, EnabledFacadeRecords)
{
    setEnabled(true);
    count("real.counter", 7);
    observe("real.histogram", 1.0);
    {
        SpanTracer::Scope s = span("real.span");
    }
    const MetricsSnapshot snap = metrics().snapshot();
    EXPECT_EQ(snap.counters.at("real.counter"), 7u);
    EXPECT_EQ(snap.histograms.at("real.histogram").count, 1u);
    EXPECT_NE(tracer().snapshot().find("real.span"), nullptr);
}

TEST_F(TelemetryTest, ReportSinkRendersEverySection)
{
    RunInfo run;
    run.label = "unit";
    run.machine = "ibmqx4";
    run.seed = 7;
    run.shotsRequested = 128;
    MetricsRegistry registry;
    registry.counter("c").add(1);
    registry.gauge("g").set(2.0);
    registry.histogram("h", {1.0}).record(0.5);
    SpanTracer tracer;
    {
        SpanTracer::Scope s = tracer.scoped("stage");
    }
    const std::string report = renderReport(
        run, registry.snapshot(), tracer.snapshot());
    EXPECT_NE(report.find("unit"), std::string::npos);
    EXPECT_NE(report.find("stage"), std::string::npos);
    EXPECT_NE(report.find("c = 1"), std::string::npos);
    EXPECT_NE(report.find("g = 2"), std::string::npos);
    EXPECT_NE(report.find("h: n=1"), std::string::npos);
}

TEST_F(TelemetryTest, ManifestBuildsAndParses)
{
    RunInfo run;
    run.label = "unit";
    run.machine = "ibmqx4";
    run.seed = 7;
    run.numThreads = 2;
    run.batchSize = 64;
    run.shotsRequested = 128;
    MetricsRegistry registry;
    registry.counter("c").add(5);
    SpanTracer tracer;
    const JsonValue manifest = buildManifest(
        run, registry.snapshot(), tracer.snapshot());
    const JsonValue reparsed =
        JsonValue::parse(manifest.dump(2));
    EXPECT_EQ(reparsed.find("schema")->asString(),
              kManifestSchema);
    EXPECT_EQ(reparsed.find("run")->find("seed")->asUint(), 7u);
    EXPECT_EQ(reparsed.find("metrics")
                  ->find("counters")
                  ->find("c")
                  ->asUint(),
              5u);
}

} // namespace
} // namespace qem::telemetry
