/**
 * @file
 * Unit tests for the telemetry subsystem: registry thread safety,
 * histogram bucketing, span nesting/ordering, JSON round-trips,
 * and the disabled-is-a-no-op contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/manifest.hh"
#include "telemetry/metrics.hh"
#include "telemetry/sink.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"

namespace qem::telemetry
{
namespace
{

/** Every test starts and ends with pristine global telemetry. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetAll(); }
    void TearDown() override
    {
        setEnabled(false);
        resetAll();
    }
};

TEST_F(TelemetryTest, CounterConcurrentAddsLoseNothing)
{
    MetricsRegistry registry;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kAdds = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry] {
            // Half the threads re-resolve the handle every
            // iteration to also exercise concurrent registration.
            Counter& c = registry.counter("shared");
            for (std::uint64_t i = 0; i < kAdds; ++i)
                c.add();
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(registry.counter("shared").value(),
              kThreads * kAdds);
}

TEST_F(TelemetryTest, HistogramConcurrentRecordsLoseNothing)
{
    MetricsRegistry registry;
    Histogram& h =
        registry.histogram("lat", {0.25, 0.5, 0.75, 1.0});
    constexpr unsigned kThreads = 8;
    constexpr int kRecords = 5000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kRecords; ++i) {
                h.record(static_cast<double>((i + t) % 5) *
                         0.25);
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(h.count(), kThreads * kRecords);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : h.bucketCounts())
        bucket_total += b;
    EXPECT_EQ(bucket_total, h.count());
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 1.0);
    EXPECT_GT(h.sum(), 0.0);
}

TEST_F(TelemetryTest, HistogramBucketPlacement)
{
    Histogram h({1.0, 2.0, 3.0});
    h.record(0.5); // <= 1.0
    h.record(1.0); // <= 1.0 (inclusive upper bound)
    h.record(1.5); // <= 2.0
    h.record(2.5); // <= 3.0
    h.record(99.0); // overflow
    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 99.0);
}

TEST_F(TelemetryTest, HistogramRejectsBadBounds)
{
    EXPECT_THROW(Histogram({}), std::invalid_argument);
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(TelemetryTest, RegistryHandlesAreStable)
{
    MetricsRegistry registry;
    Counter& a = registry.counter("x");
    Gauge& g = registry.gauge("g");
    g.set(2.5);
    for (int i = 0; i < 100; ++i)
        registry.counter("name" + std::to_string(i));
    EXPECT_EQ(&a, &registry.counter("x"));
    EXPECT_EQ(registry.gauge("g").value(), 2.5);
    // Histogram bounds are fixed by the first registration.
    Histogram& h = registry.histogram("h", {1.0});
    EXPECT_EQ(&h, &registry.histogram("h", {5.0, 6.0}));
    EXPECT_EQ(h.upperBounds().size(), 1u);
}

TEST_F(TelemetryTest, SpanNestingAndOrdering)
{
    SpanTracer tracer;
    {
        SpanTracer::Scope outer = tracer.scoped("outer");
        {
            SpanTracer::Scope a = tracer.scoped("a");
        }
        {
            SpanTracer::Scope b = tracer.scoped("b");
            SpanTracer::Scope inner = tracer.scoped("b.inner");
        }
    }
    const SpanSnapshot root = tracer.snapshot();
    EXPECT_EQ(root.name, "session");
    ASSERT_EQ(root.children.size(), 1u);
    const SpanSnapshot& outer = root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_TRUE(outer.closed);
    ASSERT_EQ(outer.children.size(), 2u);
    EXPECT_EQ(outer.children[0].name, "a");
    EXPECT_EQ(outer.children[1].name, "b");
    ASSERT_EQ(outer.children[1].children.size(), 1u);
    EXPECT_EQ(outer.children[1].children[0].name, "b.inner");
    // Children start within the parent and take no longer.
    EXPECT_GE(outer.children[0].startSeconds,
              outer.startSeconds);
    EXPECT_LE(outer.children[0].durationSeconds,
              outer.durationSeconds);
    EXPECT_NE(root.find("b.inner"), nullptr);
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST_F(TelemetryTest, SpanFromWorkerThreadAttachesToRoot)
{
    SpanTracer tracer;
    SpanTracer::Scope main_span = tracer.scoped("main");
    std::thread worker([&tracer] {
        SpanTracer::Scope s = tracer.scoped("worker");
    });
    worker.join();
    const SpanSnapshot root = tracer.snapshot();
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].name, "main");
    EXPECT_EQ(root.children[1].name, "worker");
}

TEST_F(TelemetryTest, TracerResetSurvivesLiveScopes)
{
    SpanTracer tracer;
    SpanTracer::Scope stale = tracer.scoped("stale");
    tracer.reset();
    {
        SpanTracer::Scope fresh = tracer.scoped("fresh");
    }
    stale = {}; // Closing the pre-reset scope must be harmless.
    const SpanSnapshot root = tracer.snapshot();
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].name, "fresh");
}

TEST_F(TelemetryTest, JsonRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc["string"] = JsonValue("with \"quotes\" and \n newline");
    doc["int"] = JsonValue(std::uint64_t{123456789});
    doc["float"] = JsonValue(0.125);
    doc["bool"] = JsonValue(true);
    doc["null"] = JsonValue();
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(1));
    arr.push(JsonValue("two"));
    JsonValue nested = JsonValue::object();
    nested["k"] = JsonValue(false);
    arr.push(std::move(nested));
    doc["arr"] = std::move(arr);

    for (int indent : {0, 2}) {
        const std::string text = doc.dump(indent);
        const JsonValue parsed = JsonValue::parse(text);
        EXPECT_EQ(parsed, doc) << text;
    }
}

TEST_F(TelemetryTest, JsonIntegersDumpWithoutExponent)
{
    JsonValue v(std::uint64_t{16384});
    EXPECT_EQ(v.dump(), "16384");
    EXPECT_EQ(JsonValue::parse("16384").asUint(), 16384u);
}

TEST_F(TelemetryTest, JsonParseRejectsGarbage)
{
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{\"a\":}"),
                 std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{} trailing"),
                 std::runtime_error);
}

TEST_F(TelemetryTest, SnapshotExportsToJson)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(3);
    registry.gauge("threads").set(4.0);
    registry.histogram("lat", {1.0, 2.0}).record(0.5);
    const JsonValue json = toJson(registry.snapshot());

    const JsonValue* counters = json.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("jobs"), nullptr);
    EXPECT_EQ(counters->find("jobs")->asUint(), 3u);
    const JsonValue* hist = json.find("histograms");
    ASSERT_NE(hist, nullptr);
    const JsonValue* lat = hist->find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asUint(), 1u);
    // Bounds + the overflow bucket.
    EXPECT_EQ(lat->find("buckets")->size(), 3u);
}

TEST_F(TelemetryTest, DisabledFacadeIsInert)
{
    setEnabled(false);
    count("ghost.counter", 7);
    observe("ghost.histogram", 1.0);
    gaugeSet("ghost.gauge", 1.0);
    {
        SpanTracer::Scope s = span("ghost.span");
    }
    EXPECT_TRUE(metrics().snapshot().empty());
    EXPECT_TRUE(tracer().snapshot().children.empty());
}

TEST_F(TelemetryTest, EnabledFacadeRecords)
{
    setEnabled(true);
    count("real.counter", 7);
    observe("real.histogram", 1.0);
    {
        SpanTracer::Scope s = span("real.span");
    }
    const MetricsSnapshot snap = metrics().snapshot();
    EXPECT_EQ(snap.counters.at("real.counter"), 7u);
    EXPECT_EQ(snap.histograms.at("real.histogram").count, 1u);
    EXPECT_NE(tracer().snapshot().find("real.span"), nullptr);
}

TEST_F(TelemetryTest, ReportSinkRendersEverySection)
{
    RunInfo run;
    run.label = "unit";
    run.machine = "ibmqx4";
    run.seed = 7;
    run.shotsRequested = 128;
    MetricsRegistry registry;
    registry.counter("c").add(1);
    registry.gauge("g").set(2.0);
    registry.histogram("h", {1.0}).record(0.5);
    SpanTracer tracer;
    {
        SpanTracer::Scope s = tracer.scoped("stage");
    }
    const std::string report = renderReport(
        run, registry.snapshot(), tracer.snapshot());
    EXPECT_NE(report.find("unit"), std::string::npos);
    EXPECT_NE(report.find("stage"), std::string::npos);
    EXPECT_NE(report.find("c = 1"), std::string::npos);
    EXPECT_NE(report.find("g = 2"), std::string::npos);
    EXPECT_NE(report.find("h: n=1"), std::string::npos);
}

TEST_F(TelemetryTest, JsonEscapesControlCharacters)
{
    JsonValue doc = JsonValue::object();
    doc["k"] = JsonValue(std::string("a\x01" "b\x1f" "c\td"));
    const std::string text = doc.dump();
    // Raw control bytes are invalid JSON; they must leave as
    // \u escapes (or the named short forms).
    for (char c : text)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << text;
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    EXPECT_NE(text.find("\\u001f"), std::string::npos);
    EXPECT_NE(text.find("\\t"), std::string::npos);
    EXPECT_EQ(JsonValue::parse(text), doc);
}

TEST_F(TelemetryTest, JsonReplacesInvalidUtf8)
{
    // Hostile span/tenant names: stray continuation, truncated
    // sequence, overlong encoding, surrogate half, out-of-range.
    const std::string hostile[] = {
        std::string("\x80"),
        std::string("\xc3"),
        std::string("\xc0\x80"),
        std::string("\xed\xa0\x80"),
        std::string("\xf5\x80\x80\x80"),
        std::string("ok\xffmiddle"),
    };
    for (const std::string& name : hostile) {
        JsonValue doc = JsonValue::object();
        doc[name] = JsonValue(name);
        const std::string text = doc.dump();
        // The dump must parse (invalid bytes became U+FFFD).
        EXPECT_NO_THROW((void)JsonValue::parse(text)) << text;
        EXPECT_NE(text.find("\xef\xbf\xbd"), std::string::npos)
            << text;
    }
    // Valid multibyte text passes through untouched.
    JsonValue ok = JsonValue::object();
    ok["gr\xc3\xbc\xc3\x9f"] = JsonValue("\xe2\x9c\x93 \xf0\x9f\x8e\x89");
    const std::string text = ok.dump();
    EXPECT_EQ(JsonValue::parse(text), ok);
    EXPECT_NE(text.find("\xe2\x9c\x93"), std::string::npos);
}

TEST_F(TelemetryTest, JsonFuzzHostileNamesAlwaysEmitValidJson)
{
    // Deterministic byte-soup fuzz: whatever a tenant names their
    // job, the manifest must stay parseable and stable.
    std::mt19937 rng(20190814);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> length(0, 24);
    for (int iteration = 0; iteration < 500; ++iteration) {
        std::string name;
        const int n = length(rng);
        for (int i = 0; i < n; ++i)
            name.push_back(static_cast<char>(byte(rng)));
        JsonValue doc = JsonValue::object();
        doc["name"] = JsonValue(name);
        doc[name] = JsonValue(static_cast<std::uint64_t>(
            static_cast<unsigned>(iteration)));
        const std::string text = doc.dump();
        JsonValue parsed;
        ASSERT_NO_THROW(parsed = JsonValue::parse(text))
            << "iteration " << iteration << ": " << text;
        // Re-dumping the parsed document is a fixed point: the
        // replacement characters are themselves valid UTF-8.
        EXPECT_EQ(parsed.dump(), text) << "iteration "
                                       << iteration;
    }
}

TEST_F(TelemetryTest, ManifestBuildsAndParses)
{
    RunInfo run;
    run.label = "unit";
    run.machine = "ibmqx4";
    run.seed = 7;
    run.numThreads = 2;
    run.batchSize = 64;
    run.shotsRequested = 128;
    MetricsRegistry registry;
    registry.counter("c").add(5);
    SpanTracer tracer;
    const JsonValue manifest = buildManifest(
        run, registry.snapshot(), tracer.snapshot());
    const JsonValue reparsed =
        JsonValue::parse(manifest.dump(2));
    EXPECT_EQ(reparsed.find("schema")->asString(),
              kManifestSchema);
    EXPECT_EQ(reparsed.find("run")->find("seed")->asUint(), 7u);
    EXPECT_EQ(reparsed.find("metrics")
                  ->find("counters")
                  ->find("c")
                  ->asUint(),
              5u);
}

/**
 * Races the TSan CI leg replays: concurrent manifest writers and
 * tracer resets against live spans (satellite of the introspection
 * PR; see .github/workflows/ci.yml "soak" step).
 */
class TelemetryRace : public ::testing::Test
{
  protected:
    void SetUp() override { resetAll(); }
    void TearDown() override
    {
        setEnabled(false);
        resetAll();
    }
};

TEST_F(TelemetryRace, ManifestSinkConcurrentWritersStayValid)
{
    const std::string path =
        ::testing::TempDir() + "race_manifest.json";
    std::remove(path.c_str());

    constexpr unsigned kWriters = 8;
    constexpr int kEmits = 25;
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kWriters; ++t) {
        writers.emplace_back([&path, t] {
            MetricsRegistry registry;
            registry.counter("writer").add(t);
            SpanTracer tracer;
            RunInfo run;
            run.label = "race";
            run.seed = t;
            ManifestFileSink sink(path);
            for (int i = 0; i < kEmits; ++i)
                sink.emit(run, registry.snapshot(),
                          tracer.snapshot());
        });
    }
    for (std::thread& t : writers)
        t.join();

    // tmp+rename per emit: whoever renamed last, the file is one
    // complete manifest, never an interleaving of two writers.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    JsonValue manifest;
    ASSERT_NO_THROW(manifest = JsonValue::parse(text.str()))
        << text.str();
    EXPECT_EQ(manifest.find("schema")->asString(),
              kManifestSchema);
    EXPECT_EQ(manifest.find("run")->find("label")->asString(),
              "race");
}

TEST_F(TelemetryRace, WriteTextAtomicPublishesWholePayloads)
{
    const std::string path =
        ::testing::TempDir() + "race_atomic.txt";
    std::remove(path.c_str());
    constexpr unsigned kWriters = 8;
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kWriters; ++t) {
        writers.emplace_back([&path, t] {
            const std::string payload(
                4096, static_cast<char>('a' + t));
            for (int i = 0; i < 50; ++i)
                ASSERT_TRUE(writeTextAtomic(path, payload));
        });
    }
    for (std::thread& t : writers)
        t.join();
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    const std::string content = text.str();
    ASSERT_EQ(content.size(), 4096u);
    // All 4096 bytes come from ONE writer.
    for (char c : content)
        EXPECT_EQ(c, content[0]);
}

TEST_F(TelemetryRace, TracerResetRacesActiveSpans)
{
    SpanTracer tracer;
    MetricsRegistry registry;
    tracer.watchCounters(&registry, {"race.counter"});
    std::atomic<bool> stop{false};
    std::vector<std::thread> spanners;
    for (unsigned t = 0; t < 4; ++t) {
        spanners.emplace_back([&tracer, &registry, &stop, t] {
            while (!stop.load(std::memory_order_relaxed)) {
                SpanTracer::Scope outer = tracer.scoped(
                    "outer" + std::to_string(t));
                registry.counter("race.counter").add();
                SpanTracer::Scope inner =
                    tracer.scoped("inner");
            }
        });
    }
    for (int i = 0; i < 200; ++i) {
        tracer.reset();
        (void)tracer.snapshot();
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : spanners)
        t.join();

    // Post-race the tracer must still work: generation checks
    // discarded the orphaned closes, fresh spans land cleanly.
    tracer.reset();
    {
        SpanTracer::Scope s = tracer.scoped("after");
    }
    const SpanSnapshot root = tracer.snapshot();
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].name, "after");
    EXPECT_TRUE(root.children[0].closed);
}

TEST_F(TelemetryRace, GlobalResetRacesFacadeUse)
{
    setEnabled(true);
    std::atomic<bool> stop{false};
    std::vector<std::thread> users;
    for (unsigned t = 0; t < 4; ++t) {
        users.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                count("facade.counter");
                gaugeSet("facade.gauge", 1.0);
                SpanTracer::Scope s = span("facade.span");
            }
        });
    }
    for (int i = 0; i < 100; ++i)
        resetAll();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : users)
        t.join();
    setEnabled(true);
    count("facade.final");
    EXPECT_GE(metrics().snapshot().counters.at("facade.final"),
              1u);
}

} // namespace
} // namespace qem::telemetry
