/**
 * @file
 * Unit tests for the ExactOracle: analytic distributions against
 * closed forms, plan arithmetic against the policies' own integer
 * splits, and statistical agreement between sampled policy runs and
 * the oracle mixture they should converge to.
 */

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "mitigation/aim_policy.hh"
#include "mitigation/sim_policy.hh"
#include "noise/readout.hh"
#include "noise/trajectory.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem::verify
{
namespace
{

/** Readout-only model: every qubit flips 1->0 w.p. @p p10 and
 *  0->1 w.p. @p p01. */
NoiseModel
readoutModel(unsigned n, double p01, double p10)
{
    NoiseModel model(n);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(n, p01),
        std::vector<double>(n, p10)));
    return model;
}

TEST(ExactOracle, ObservedMatchesClosedFormOneQubit)
{
    // Prepare |1>, read with P(1->0) = 0.2: observe 1 w.p. 0.8.
    Circuit c(1);
    c.x(0).measureAll();
    const ExactOracle oracle(readoutModel(1, 0.0, 0.2));
    const std::vector<double> dist =
        oracle.observedDistribution(c);
    ASSERT_EQ(dist.size(), 2u);
    EXPECT_NEAR(dist[0], 0.2, 1e-12);
    EXPECT_NEAR(dist[1], 0.8, 1e-12);
}

TEST(ExactOracle, CorrectedInversionCancelsOnNoiselessMachine)
{
    // With no noise, invert-then-XOR-back is the identity, for any
    // inversion string.
    const Circuit c = ghzState(3);
    const ExactOracle oracle(NoiseModel(3));
    const std::vector<double> ideal = idealDistribution(c);
    for (InversionString inv : {0u, 3u, 5u, 7u}) {
        const std::vector<double> corrected =
            oracle.correctedDistribution(c, inv);
        ASSERT_EQ(corrected.size(), ideal.size());
        for (std::size_t x = 0; x < ideal.size(); ++x)
            EXPECT_NEAR(corrected[x], ideal[x], 1e-12)
                << "inv " << inv << " outcome " << x;
    }
}

TEST(ExactOracle, CorrectedDistributionMovesBiasWithTheMode)
{
    // Strong 1->0 decay. Baseline reads |1> correctly w.p. 0.7;
    // under the all-ones inversion the state is prepared as |0>
    // (X-gate cancels), read perfectly, and the log is flipped
    // back -- the corrected mode is strictly more reliable.
    Circuit c(1);
    c.x(0).measureAll();
    const ExactOracle oracle(readoutModel(1, 0.0, 0.3));
    EXPECT_NEAR(oracle.correctedDistribution(c, 0)[1], 0.7,
                1e-12);
    EXPECT_NEAR(oracle.correctedDistribution(c, 1)[1], 1.0,
                1e-12);
}

TEST(ExactOracle, SimPlanMatchesPolicyShareArithmetic)
{
    Circuit c(2);
    c.measureAll();
    const ExactOracle oracle(readoutModel(2, 0.0, 0.1));
    // 10 shots over 4 modes: 3, 3, 2, 2 (leftover to the earliest
    // modes, like StaticInvertAndMeasure).
    const ModePlan plan = oracle.simPlan(c, 10);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].shots, 3u);
    EXPECT_EQ(plan[1].shots, 3u);
    EXPECT_EQ(plan[2].shots, 2u);
    EXPECT_EQ(plan[3].shots, 2u);
    EXPECT_THROW(oracle.simPlan(c, 3), std::invalid_argument);
}

TEST(ExactOracle, PlanDistributionIsNormalizedAndFoldsDuplicates)
{
    const Circuit c = ghzState(2);
    const ExactOracle oracle(readoutModel(2, 0.05, 0.2));
    const ModePlan plan = {{0, 100}, {3, 300}};
    const std::vector<double> dist =
        oracle.planDistribution(c, plan);
    EXPECT_NEAR(
        std::accumulate(dist.begin(), dist.end(), 0.0), 1.0,
        1e-12);
    // The same plan with one mode split in two is the same mixture.
    const std::vector<double> split = oracle.planDistribution(
        c, {{0, 100}, {3, 120}, {3, 180}});
    for (std::size_t x = 0; x < dist.size(); ++x)
        EXPECT_NEAR(split[x], dist[x], 1e-12);
    EXPECT_THROW(oracle.planDistribution(c, {{0, 0}}),
                 std::invalid_argument);
}

TEST(ExactOracle, SupportsRejectsOversizedAndResetCircuits)
{
    const ExactOracle oracle(readoutModel(2, 0.0, 0.1));
    Circuit measured(2);
    measured.h(0).measureAll();
    EXPECT_TRUE(oracle.supports(measured));

    Circuit unmeasured(2);
    unmeasured.h(0);
    EXPECT_FALSE(oracle.supports(unmeasured));

    Circuit wide(3);
    wide.measureAll();
    EXPECT_FALSE(oracle.supports(wide)); // Model is 2 qubits.

    Circuit with_reset(2);
    with_reset.h(0).reset(0).measureAll();
    EXPECT_FALSE(oracle.supports(with_reset));
}

TEST(ExactOracle, SimRunConvergesToPlanDistribution)
{
    // The core soundness claim: conditional on the realized plan, a
    // sampled SIM log is a draw from the oracle mixture. G-test at
    // alpha = 1e-6 (the run is seeded, so this either reproduces or
    // flags a real distribution change).
    const unsigned n = 3;
    const NoiseModel model = readoutModel(n, 0.02, 0.15);
    TrajectorySimulator backend(model, 20190828);
    const Circuit c = bernsteinVaziraniFull(n - 1, 0b101);

    StaticInvertAndMeasure sim;
    const Counts counts = sim.run(c, backend, 20000);
    const ModePlan plan = sim.lastPlan();
    ASSERT_EQ(plan.size(), 4u);

    const ExactOracle oracle(model);
    const CheckResult r = checkDistribution(
        counts, oracle.planDistribution(c, plan), 1e-6);
    EXPECT_TRUE(r) << r.message;
}

TEST(ExactOracle, AimRunConvergesToItsRealizedPlan)
{
    const unsigned n = 3;
    const NoiseModel model = readoutModel(n, 0.01, 0.2);
    TrajectorySimulator backend(model, 77);
    const Circuit c = bernsteinVaziraniFull(n - 1, 0b011);

    // All-ones is the strongest state under 1->0 decay? No: decay
    // corrupts ones, so all-zeros reads best. Encode that profile.
    std::vector<double> table(std::size_t{1} << n);
    for (BasisState s = 0; s < table.size(); ++s)
        table[s] = 1.0 / (1.0 + static_cast<double>(
                                    __builtin_popcountll(s)));
    auto rbms = std::make_shared<ExhaustiveRbms>(table);

    AdaptiveInvertAndMeasure aim(rbms);
    const Counts counts = aim.run(c, backend, 24000);
    const ModePlan plan = aim.lastPlan();
    ASSERT_GE(plan.size(), 5u); // 4 canary modes + tailored.

    std::uint64_t planned = 0;
    for (const ModeShare& mode : plan)
        planned += mode.shots;
    EXPECT_EQ(planned, counts.total());

    const ExactOracle oracle(model);
    const CheckResult r = checkDistribution(
        counts, oracle.planDistribution(c, plan), 1e-6);
    EXPECT_TRUE(r) << r.message;
}

TEST(ExactOracle, AimPredictionRanksTrueOutputFirst)
{
    // Analytic AIM: with a deterministic circuit and mild noise the
    // top candidate must be the programmed output, and the plan
    // must spend the whole budget.
    const unsigned n = 3;
    const NoiseModel model = readoutModel(n, 0.02, 0.1);
    const Circuit c = bernsteinVaziraniFull(n - 1, 0b110);

    std::vector<double> table(std::size_t{1} << n, 1.0);
    table[0] = 2.0; // All-zeros reads strongest.
    const ExhaustiveRbms rbms{table};

    const ExactOracle oracle(model);
    const ExactOracle::AimPrediction prediction =
        oracle.aimPrediction(c, rbms, 16000);
    ASSERT_FALSE(prediction.candidates.empty());
    EXPECT_EQ(prediction.candidates.front(), BasisState{0b110});

    std::uint64_t planned = 0;
    for (const ModeShare& mode : prediction.plan)
        planned += mode.shots;
    EXPECT_EQ(planned, 16000u);
    EXPECT_NEAR(std::accumulate(prediction.distribution.begin(),
                                prediction.distribution.end(),
                                0.0),
                1.0, 1e-12);
}

TEST(IdealDistribution, ClosedForms)
{
    // GHZ: half the mass on each extreme outcome.
    const std::vector<double> ghz =
        idealDistribution(ghzState(3));
    EXPECT_NEAR(ghz[0b000], 0.5, 1e-12);
    EXPECT_NEAR(ghz[0b111], 0.5, 1e-12);
    // BV: a point mass on the key.
    const std::vector<double> bv =
        idealDistribution(bernsteinVazirani(3, 0b101));
    EXPECT_NEAR(bv[0b101], 1.0, 1e-12);

    Circuit unmeasured(1);
    unmeasured.h(0);
    EXPECT_THROW(idealDistribution(unmeasured),
                 std::invalid_argument);
}

} // namespace
} // namespace qem::verify
