/**
 * @file
 * Unit tests for the machine factories: Table-1 error statistics,
 * topology shapes, and noise-model construction.
 */

#include <gtest/gtest.h>

#include "machine/machines.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(Machines, Ibmqx2Table1Stats)
{
    const Machine m = makeIbmqx2();
    EXPECT_EQ(m.name(), "ibmqx2");
    EXPECT_EQ(m.numQubits(), 5u);
    const ErrorStats stats = m.calibration().readoutErrorStats();
    // Paper Table 1: min 1.2%, avg 3.8%, max 12.8%.
    EXPECT_NEAR(stats.min, 0.012, 0.002);
    EXPECT_NEAR(stats.avg, 0.038, 0.004);
    EXPECT_NEAR(stats.max, 0.128, 0.005);
}

TEST(Machines, Ibmqx4Table1Stats)
{
    const Machine m = makeIbmqx4();
    const ErrorStats stats = m.calibration().readoutErrorStats();
    // Paper Table 1: min 3.4%, avg 8.2%, max 20.7%.
    EXPECT_NEAR(stats.min, 0.034, 0.003);
    EXPECT_NEAR(stats.avg, 0.082, 0.005);
    EXPECT_NEAR(stats.max, 0.207, 0.01);
}

TEST(Machines, MelbourneTable1Stats)
{
    const Machine m = makeIbmqMelbourne();
    EXPECT_EQ(m.numQubits(), 14u);
    const ErrorStats stats = m.calibration().readoutErrorStats();
    // Paper Table 1: min 2.2%, avg 8.12%, max 31%.
    EXPECT_NEAR(stats.min, 0.022, 0.003);
    EXPECT_NEAR(stats.avg, 0.0812, 0.006);
    EXPECT_NEAR(stats.max, 0.31, 0.01);
}

TEST(Machines, ReadoutIsBiasedTowardOnes)
{
    // ibmqx2 and melbourne: p10 > p01 for every qubit -- the
    // paper's core observation about state-dependent bias.
    for (const Machine& m : {makeIbmqx2(), makeIbmqMelbourne()}) {
        for (Qubit q = 0; q < m.numQubits(); ++q) {
            EXPECT_GT(m.calibration().qubit(q).readoutP10,
                      m.calibration().qubit(q).readoutP01)
                << m.name() << " qubit " << q;
        }
    }
    // ibmqx4: biased toward ones *on average*, but with at least
    // one inverted qubit (the Section 6.1 arbitrary bias).
    const Machine x4 = makeIbmqx4();
    double sum10 = 0.0, sum01 = 0.0;
    int inverted = 0;
    for (Qubit q = 0; q < x4.numQubits(); ++q) {
        const QubitCalibration& qc = x4.calibration().qubit(q);
        sum10 += qc.readoutP10;
        sum01 += qc.readoutP01;
        inverted += qc.readoutP01 > qc.readoutP10;
    }
    EXPECT_GT(sum10, sum01);
    EXPECT_GE(inverted, 1);
}

TEST(Machines, BowtieTopologies)
{
    for (const Machine& m : {makeIbmqx2(), makeIbmqx4()}) {
        EXPECT_EQ(m.topology().edges().size(), 6u) << m.name();
        EXPECT_EQ(m.topology().degree(2), 4u) << m.name();
        EXPECT_TRUE(m.topology().connected()) << m.name();
    }
}

TEST(Machines, MelbourneLadderTopology)
{
    const Machine m = makeIbmqMelbourne();
    EXPECT_EQ(m.topology().edges().size(), 18u);
    EXPECT_TRUE(m.topology().connected());
    EXPECT_TRUE(m.topology().coupled(3, 11));
    EXPECT_FALSE(m.topology().coupled(0, 13));
}

TEST(Machines, AllLinksCalibrated)
{
    for (const Machine& m :
         {makeIbmqx2(), makeIbmqx4(), makeIbmqMelbourne()}) {
        for (const auto& [a, b] : m.topology().edges()) {
            ASSERT_TRUE(m.calibration().hasLink(a, b))
                << m.name() << " " << a << "-" << b;
            EXPECT_GT(m.calibration().link(a, b).cxError, 0.0);
            EXPECT_GT(m.calibration().link(a, b).cxDurationNs, 0.0);
        }
    }
}

TEST(Machines, NoiseModelCarriesCorrelatedReadout)
{
    for (const Machine& m :
         {makeIbmqx2(), makeIbmqx4(), makeIbmqMelbourne()}) {
        const NoiseModel model = m.noiseModel();
        ASSERT_NE(model.readout(), nullptr) << m.name();
        EXPECT_EQ(model.readout()->numQubits(), m.numQubits());
        EXPECT_TRUE(model.hasGateNoise()) << m.name();
        // Crosstalk means the flip rate depends on context.
        const double isolated =
            model.readout()->flipProbability(0, true, 0b1);
        const double crowded = model.readout()->flipProbability(
            0, true, allOnes(m.numQubits()));
        EXPECT_NE(isolated, crowded) << m.name();
    }
}

TEST(Machines, Ibmqx4HasArbitraryBias)
{
    // Unlike ibmqx2, ibmqx4's crosstalk includes negative entries,
    // so at least one qubit reads *better* in a crowded context.
    const NoiseModel model = makeIbmqx4().noiseModel();
    bool some_better = false, some_worse = false;
    for (Qubit q = 0; q < 5; ++q) {
        const double isolated = model.readout()->flipProbability(
            q, true, BasisState{1} << q);
        const double crowded = model.readout()->flipProbability(
            q, true, allOnes(5));
        some_better |= crowded < isolated;
        some_worse |= crowded > isolated;
    }
    EXPECT_TRUE(some_better);
    EXPECT_TRUE(some_worse);
}

TEST(Machines, IdealMachineIsNoiseFree)
{
    const Machine m = makeIdealMachine(4);
    const NoiseModel model = m.noiseModel();
    EXPECT_FALSE(model.hasGateNoise());
    EXPECT_NEAR(model.readout()->flipProbability(0, true, allOnes(4)),
                0.0, 1e-12);
    // All-to-all coupling.
    EXPECT_EQ(m.topology().edges().size(), 6u);
}

TEST(Machines, FactoryByName)
{
    EXPECT_EQ(makeMachine("ibmqx2").name(), "ibmqx2");
    EXPECT_EQ(makeMachine("ibmq-melbourne").name(),
              "ibmq_melbourne");
    EXPECT_THROW(makeMachine("ibmq_unknown"), std::invalid_argument);
}

TEST(Machines, CoherentCalibrationReachesNoiseModel)
{
    Machine m = makeIbmqx2();
    m.calibration().qubit(1).coherentZ = 0.1;
    m.calibration().qubit(1).coherentX = -0.05;
    LinkCalibration link = m.calibration().link(0, 2);
    link.coherentZZ = 0.2;
    m.calibration().setLink(0, 2, link);

    const NoiseModel model = m.noiseModel();
    EXPECT_NEAR(model.gate1q(1).coherentZ, 0.1, 1e-12);
    EXPECT_NEAR(model.gate1q(1).coherentX, -0.05, 1e-12);
    EXPECT_NEAR(model.gate2q(0, 2).coherentZZ, 0.2, 1e-12);
    // Untouched sites stay coherent-error-free.
    EXPECT_EQ(model.gate1q(0).coherentZ, 0.0);
    EXPECT_EQ(model.gate2q(3, 4).coherentZZ, 0.0);
}

TEST(Machines, LinearMachineBuilder)
{
    const Machine m = makeLinearMachine(6);
    EXPECT_EQ(m.name(), "linear-6");
    EXPECT_EQ(m.topology().edges().size(), 5u);
    EXPECT_TRUE(m.topology().connected());
    EXPECT_EQ(m.topology().distance(0, 5), 5u);
    EXPECT_NO_THROW(m.noiseModel());
    EXPECT_THROW(makeLinearMachine(1), std::invalid_argument);
}

TEST(Machines, GridMachineBuilder)
{
    const Machine m = makeGridMachine(3, 4);
    EXPECT_EQ(m.name(), "grid-3x4");
    EXPECT_EQ(m.numQubits(), 12u);
    // 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
    EXPECT_EQ(m.topology().edges().size(), 17u);
    EXPECT_TRUE(m.topology().coupled(0, 4));
    EXPECT_TRUE(m.topology().coupled(5, 6));
    EXPECT_FALSE(m.topology().coupled(3, 4)); // Row wrap.
    EXPECT_TRUE(m.topology().connected());
    EXPECT_THROW(makeGridMachine(1, 1), std::invalid_argument);
    EXPECT_THROW(makeGridMachine(0, 5), std::invalid_argument);
}

TEST(Machines, MachineValidatesSizes)
{
    Topology topo(2, {{0, 1}});
    Calibration calib(3);
    EXPECT_THROW(Machine("bad", topo, calib),
                 std::invalid_argument);
}

} // namespace
} // namespace qem
