/**
 * @file
 * End-to-end telemetry acceptance tests: a comparePolicies run with
 * telemetry enabled must produce a parseable JSON manifest with
 * per-stage span timings, per-policy shot counters (including the
 * AIM canary/bulk split), and per-worker batch latency histograms —
 * and enabling telemetry must not perturb the merged histograms.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "telemetry/manifest.hh"
#include "telemetry/telemetry.hh"

namespace qem
{
namespace
{

using telemetry::JsonValue;

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Each test starts clean and leaves telemetry off. */
class RunManifestTest : public ::testing::Test
{
  protected:
    void SetUp() override { telemetry::resetAll(); }
    void TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
};

TEST_F(RunManifestTest, ComparePoliciesWritesParseableManifest)
{
    const std::string path =
        ::testing::TempDir() + "invertq_manifest_test.json";
    telemetry::setEnabled(true);
    telemetry::setManifestPath(path);

    constexpr std::size_t kShots = 4096;
    MachineSession session(makeIbmqx4(), 101, {2, 128});
    const auto suite = benchmarkSuiteQ5();
    const NisqBenchmark& bench = suite[1];
    const auto results = session.comparePolicies(bench, kShots);
    ASSERT_EQ(results.size(), 3u);

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << "manifest not written: " << path;
    const JsonValue manifest = JsonValue::parse(text);

    // Schema and run metadata.
    ASSERT_NE(manifest.find("schema"), nullptr);
    EXPECT_EQ(manifest.find("schema")->asString(),
              telemetry::kManifestSchema);
    const JsonValue* run = manifest.find("run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->find("label")->asString(),
              "comparePolicies:" + std::string(bench.name));
    EXPECT_EQ(run->find("machine")->asString(),
              session.machine().name());
    EXPECT_EQ(run->find("seed")->asUint(), 101u);
    EXPECT_EQ(run->find("num_threads")->asUint(), 2u);
    EXPECT_EQ(run->find("batch_size")->asUint(), 128u);
    EXPECT_EQ(run->find("shots_requested")->asUint(), kShots);

    // Per-stage span tree. Walking the JSON (rather than the live
    // tracer) proves the timings survive the export.
    const JsonValue* spans = manifest.find("spans");
    ASSERT_NE(spans, nullptr);
    const JsonValue* compare = nullptr;
    for (const JsonValue& child :
         spans->find("children")->items()) {
        if (child.find("name")->asString() ==
            "compare_policies:" + std::string(bench.name))
            compare = &child;
    }
    ASSERT_NE(compare, nullptr);
    EXPECT_GT(compare->find("duration_seconds")->asDouble(), 0.0);
    double stage_total = 0.0;
    std::vector<std::string> stage_names;
    for (const JsonValue& stage :
         compare->find("children")->items()) {
        stage_names.push_back(stage.find("name")->asString());
        stage_total +=
            stage.find("duration_seconds")->asDouble();
    }
    for (const char* expected :
         {"transpile", "policy:Baseline", "policy:SIM",
          "profile_rbms", "policy:AIM"}) {
        EXPECT_NE(std::find(stage_names.begin(),
                            stage_names.end(), expected),
                  stage_names.end())
            << "missing stage span " << expected;
    }
    // Children are timed within the parent.
    EXPECT_LE(stage_total,
              compare->find("duration_seconds")->asDouble() *
                  1.001);

    // Per-policy shot counters, including the AIM split.
    const JsonValue* counters =
        manifest.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    for (const char* policy : {"Baseline", "SIM", "AIM"}) {
        const JsonValue* c = counters->find(
            "session.policy." + std::string(policy) + ".shots");
        ASSERT_NE(c, nullptr) << policy;
        EXPECT_EQ(c->asUint(), kShots) << policy;
    }
    const JsonValue* canary =
        counters->find("policy.aim.canary_shots");
    const JsonValue* bulk =
        counters->find("policy.aim.bulk_shots");
    ASSERT_NE(canary, nullptr);
    ASSERT_NE(bulk, nullptr);
    EXPECT_GT(canary->asUint(), 0u);
    EXPECT_EQ(canary->asUint() + bulk->asUint(), kShots);
    EXPECT_GT(counters->find("policy.sim.inversion_strings_applied")
                  ->asUint(),
              0u);
    EXPECT_GT(counters->find("trajectory.shots")->asUint(), 0u);

    // Per-worker batch latency histograms from the runtime.
    const JsonValue* histograms =
        manifest.find("metrics")->find("histograms");
    ASSERT_NE(histograms, nullptr);
    for (const char* name : {"runtime.worker0.batch_seconds",
                             "runtime.worker1.batch_seconds",
                             "runtime.queue_wait_seconds"}) {
        const JsonValue* h = histograms->find(name);
        ASSERT_NE(h, nullptr) << name;
        EXPECT_GT(h->find("count")->asUint(), 0u) << name;
        std::uint64_t bucket_total = 0;
        for (const JsonValue& bucket :
             h->find("buckets")->items())
            bucket_total += bucket.find("count")->asUint();
        EXPECT_EQ(bucket_total, h->find("count")->asUint())
            << name;
    }
}

TEST_F(RunManifestTest, TelemetryDoesNotPerturbMergedHistograms)
{
    const auto suite = benchmarkSuiteQ5();
    const NisqBenchmark& bench = suite[0];
    constexpr std::size_t kShots = 1024;
    constexpr std::uint64_t kSeed = 314;

    telemetry::setEnabled(false);
    MachineSession off(makeIbmqx4(), kSeed, {2, 64});
    const auto plain = off.comparePolicies(bench, kShots);

    telemetry::resetAll();
    telemetry::setEnabled(true);
    telemetry::setManifestPath(
        ::testing::TempDir() + "invertq_determinism_test.json");
    MachineSession on(makeIbmqx4(), kSeed, {2, 64});
    const auto traced = on.comparePolicies(bench, kShots);

    ASSERT_EQ(plain.size(), traced.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].policy, traced[i].policy);
        EXPECT_EQ(plain[i].counts.raw(), traced[i].counts.raw())
            << "telemetry perturbed policy " << plain[i].policy;
    }
}

TEST_F(RunManifestTest, SerialModeReportsRunStats)
{
    MachineSession session(makeIbmqx4(), 7); // numThreads = 0.
    EXPECT_EQ(session.lastRunStats(), nullptr);

    BaselinePolicy baseline;
    const auto suite = benchmarkSuiteQ5();
    const TranspiledProgram program =
        session.prepare(suite[0].circuit);
    session.runPolicy(program, baseline, 2048);

    const RuntimeStats* stats = session.lastRunStats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->shots, 2048u);
    EXPECT_EQ(stats->numThreads, 1u);
    EXPECT_GE(stats->wallSeconds, 0.0);
    EXPECT_GT(stats->shotsPerSecond, 0.0);
    ASSERT_EQ(stats->perWorkerShots.size(), 1u);
    EXPECT_EQ(stats->perWorkerShots[0], 2048u);
}

TEST_F(RunManifestTest, ManifestWriteFailureIsNonFatal)
{
    telemetry::setEnabled(true);
    MachineSession session(makeIbmqx4(), 7);
    EXPECT_FALSE(session.writeManifest(
        "/nonexistent-dir/invertq.json", "unit", 0));
}

} // namespace
} // namespace qem
