/**
 * @file
 * Unit tests for the Counts output log.
 */

#include <gtest/gtest.h>

#include "qsim/bitstring.hh"
#include "qsim/counts.hh"

namespace qem
{
namespace
{

TEST(Counts, AddGetTotalProbability)
{
    Counts c(3);
    c.add(0b101, 3);
    c.add(0b001);
    EXPECT_EQ(c.get(0b101), 3u);
    EXPECT_EQ(c.get(0b001), 1u);
    EXPECT_EQ(c.get(0b111), 0u);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.distinct(), 2u);
    EXPECT_NEAR(c.probability(0b101), 0.75, 1e-12);
    EXPECT_NEAR(Counts(3).probability(0), 0.0, 1e-12);
}

TEST(Counts, AddRejectsWideOutcome)
{
    Counts c(2);
    EXPECT_THROW(c.add(4), std::out_of_range);
    EXPECT_THROW(Counts(65), std::invalid_argument);
}

TEST(Counts, SortedByCountBreaksTiesByValue)
{
    Counts c(3);
    c.add(5, 10);
    c.add(2, 10);
    c.add(1, 20);
    const auto sorted = c.sortedByCount();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].first, 1u);
    EXPECT_EQ(sorted[1].first, 2u); // Tie with 5, lower value first.
    EXPECT_EQ(sorted[2].first, 5u);
    EXPECT_EQ(c.mostFrequent(), 1u);
    EXPECT_THROW(Counts(3).mostFrequent(), std::logic_error);
}

TEST(Counts, MergeAccumulates)
{
    Counts a(2), b(2);
    a.add(1, 5);
    b.add(1, 3);
    b.add(2, 7);
    a.merge(b);
    EXPECT_EQ(a.get(1), 8u);
    EXPECT_EQ(a.get(2), 7u);
    EXPECT_EQ(a.total(), 15u);
    Counts wide(3);
    EXPECT_THROW(a.merge(wide), std::invalid_argument);
}

TEST(Counts, XorAllRelabelsOutcomes)
{
    Counts c(3);
    c.add(0b101, 4);
    c.add(0b000, 2);
    const Counts flipped = c.xorAll(0b111);
    EXPECT_EQ(flipped.get(0b010), 4u);
    EXPECT_EQ(flipped.get(0b111), 2u);
    EXPECT_EQ(flipped.total(), 6u);
    // Double application is the identity.
    const Counts back = flipped.xorAll(0b111);
    EXPECT_EQ(back.get(0b101), 4u);
    EXPECT_EQ(back.get(0b000), 2u);
}

TEST(Counts, MarginalizeSelectsAndReordersBits)
{
    Counts c(3);
    c.add(fromBitString("110"), 5); // q0=1 q1=1 q2=0
    c.add(fromBitString("011"), 3); // q0=0 q1=1 q2=1
    // Keep bits {2, 0}: new bit0 = old bit2, new bit1 = old bit0.
    const Counts m = c.marginalize({2, 0});
    EXPECT_EQ(m.numBits(), 2u);
    EXPECT_EQ(m.get(0b10), 5u); // old: bit2=0, bit0=1 -> 0b10.
    EXPECT_EQ(m.get(0b01), 3u);
    EXPECT_THROW(c.marginalize({3}), std::out_of_range);
}

TEST(Counts, MarginalizeMergesCollidingOutcomes)
{
    Counts c(2);
    c.add(0b00, 1);
    c.add(0b10, 2); // Differ only in bit 1.
    const Counts m = c.marginalize({0});
    EXPECT_EQ(m.get(0), 3u);
}

TEST(Counts, ToProbabilityVector)
{
    Counts c(2);
    c.add(0, 1);
    c.add(3, 3);
    const auto probs = c.toProbabilityVector();
    ASSERT_EQ(probs.size(), 4u);
    EXPECT_NEAR(probs[0], 0.25, 1e-12);
    EXPECT_NEAR(probs[3], 0.75, 1e-12);
    EXPECT_NEAR(probs[1], 0.0, 1e-12);
    EXPECT_THROW(Counts(30).toProbabilityVector(), std::logic_error);
}

TEST(Counts, ToStringShowsTopOutcomes)
{
    Counts c(3);
    c.add(0b101, 4);
    const std::string text = c.toString();
    EXPECT_NE(text.find("101"), std::string::npos);
    EXPECT_NE(text.find("total=4"), std::string::npos);
}

} // namespace
} // namespace qem
