/**
 * @file
 * Tests for the JitteredAllocator and the
 * Ensemble-of-Diverse-Mappings runner.
 */

#include <set>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "kernels/bv.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(JitteredAllocator, ZeroSigmaMatchesVariabilityAware)
{
    const Machine m = makeIbmqMelbourne();
    const Circuit c = bernsteinVazirani(5, 0b10110);
    VariabilityAwareAllocator plain;
    JitteredAllocator jittered(3, 0.0);
    EXPECT_EQ(jittered.allocate(c, m), plain.allocate(c, m));
    EXPECT_THROW(JitteredAllocator(1, -0.2),
                 std::invalid_argument);
}

TEST(JitteredAllocator, SeedsProduceDiverseValidLayouts)
{
    const Machine m = makeIbmqMelbourne();
    const Circuit c = bernsteinVazirani(5, 0b10110);
    std::set<Layout> layouts;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const Layout layout =
            JitteredAllocator(seed, 0.4).allocate(c, m);
        EXPECT_NO_THROW(
            validateLayout(layout, c.numQubits(), m.numQubits()));
        layouts.insert(layout);
    }
    // Diversity: at least three distinct placements among six.
    EXPECT_GE(layouts.size(), 3u);
    // Determinism per seed.
    EXPECT_EQ(JitteredAllocator(2, 0.4).allocate(c, m),
              JitteredAllocator(2, 0.4).allocate(c, m));
}

TEST(Ensemble, TransparentOnNoiselessMachine)
{
    MachineSession session(makeIdealMachine(5), 401);
    const BasisState key = fromBitString("1011");
    BaselinePolicy inner;
    const Counts counts = session.runEnsemble(
        bernsteinVazirani(4, key), inner, 4000, 4);
    EXPECT_EQ(counts.total(), 4000u);
    EXPECT_EQ(counts.get(key), 4000u);
}

TEST(Ensemble, SpendsBudgetAcrossMappings)
{
    MachineSession session(makeIbmqx4(), 402);
    BaselinePolicy inner;
    const Counts counts = session.runEnsemble(
        bernsteinVazirani(4, 0b0111), inner, 4001, 4);
    EXPECT_EQ(counts.total(), 4001u);
}

TEST(Ensemble, ValidatesArguments)
{
    MachineSession session(makeIbmqx4(), 403);
    BaselinePolicy inner;
    const Circuit c = bernsteinVazirani(4, 0b0111);
    EXPECT_THROW(session.runEnsemble(c, inner, 100, 0),
                 std::invalid_argument);
    EXPECT_THROW(session.runEnsemble(c, inner, 2, 4),
                 std::invalid_argument);
}

TEST(Ensemble, ComposesWithSim)
{
    // EDM + SIM run together; the merged log is still a valid
    // sample of the right width and budget, and on a readout-
    // biased machine the composition should not fall below the
    // plain ensemble for the weak all-ones key.
    MachineSession session(makeIbmqx2(), 404);
    const BasisState key = fromBitString("1111");
    const Circuit c = bernsteinVazirani(4, key);

    BaselinePolicy baseline;
    const double p_edm =
        pst(session.runEnsemble(c, baseline, 16384, 4), key);
    StaticInvertAndMeasure sim;
    const double p_edm_sim =
        pst(session.runEnsemble(c, sim, 16384, 4), key);
    EXPECT_GT(p_edm_sim, p_edm);
}

} // namespace
} // namespace qem
