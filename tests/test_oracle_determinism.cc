/**
 * @file
 * Pins the ExactOracle's analytic output: the distribution derived
 * for a SIM run must be bit-identical whether the policy executed on
 * the serial backend or the parallel runtime (1, 4, or 8 workers),
 * and must match the committed golden manifest — the analytic path
 * has no business depending on execution threading.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "kernels/benchmarks.hh"
#include "machine/machines.hh"
#include "verify/golden.hh"
#include "verify/oracle.hh"

#ifndef QEM_GOLDEN_DIR
#define QEM_GOLDEN_DIR "tests/golden"
#endif

namespace qem
{
namespace
{

TEST(OracleDeterminism, AnalyticPathIgnoresRuntimeThreads)
{
    verify::GoldenStore golden(
        std::string(QEM_GOLDEN_DIR) + "/oracle_determinism.json");

    const NisqBenchmark bench =
        makeBvBenchmark("bv-4A", 4, "0111");
    std::vector<std::vector<double>> sim_dists;
    std::vector<std::vector<double>> observed_dists;
    unsigned clbits = 0; // BV-4 carries an unmeasured ancilla bit.
    for (unsigned threads : {1u, 4u, 8u}) {
        MachineSession session(makeMachine("ibmqx4"), 2019,
                               SessionOptions{threads, 64});
        const TranspiledProgram program =
            session.prepare(bench.circuit);
        const verify::ExactOracle oracle(session.machine());
        ASSERT_TRUE(oracle.supports(program.circuit));
        clbits = program.circuit.numClbits();

        StaticInvertAndMeasure sim;
        session.runPolicy(program, sim, 512);
        sim_dists.push_back(oracle.planDistribution(
            program.circuit, sim.lastPlan()));
        observed_dists.push_back(
            oracle.observedDistribution(program.circuit));
    }

    // Bit-identical across thread counts: the oracle conditions
    // only on the plan, and SIM's plan is a function of the shot
    // count alone.
    for (std::size_t t = 1; t < sim_dists.size(); ++t) {
        ASSERT_EQ(sim_dists[t], sim_dists[0])
            << "SIM oracle distribution varies with threads";
        ASSERT_EQ(observed_dists[t], observed_dists[0])
            << "observed distribution varies with threads";
    }

    // And pinned against the committed manifest.
    const verify::CheckResult sim_check = golden.checkAnalytic(
        "ibmqx4/bv-4A/sim-512", clbits, sim_dists[0], 1e-12,
        {{"machine", "ibmqx4"}, {"policy", "SIM"}});
    EXPECT_TRUE(sim_check) << sim_check.message;
    const verify::CheckResult observed_check =
        golden.checkAnalytic("ibmqx4/bv-4A/observed", clbits,
                             observed_dists[0], 1e-12,
                             {{"machine", "ibmqx4"},
                              {"policy", "baseline"}});
    EXPECT_TRUE(observed_check) << observed_check.message;

    if (golden.updating()) {
        ASSERT_TRUE(golden.flush());
    }
}

} // namespace
} // namespace qem
