/**
 * @file
 * Unit tests for the QAOA kernel and its classical optimizer.
 */

#include <gtest/gtest.h>

#include "kernels/qaoa.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(Qaoa, CircuitStructure)
{
    const Graph g = cycleGraph(4);
    QaoaAngles angles{{0.3, 0.5}, {0.2, 0.1}};
    const Circuit c = qaoaCircuit(g, angles);
    EXPECT_EQ(c.numQubits(), 4u);
    // Per layer: 2 CX per edge + 1 RZ per edge + 1 RX per node.
    EXPECT_EQ(c.countOps(GateKind::CX), 2u * 4u * 2u);
    EXPECT_EQ(c.countOps(GateKind::RZ), 4u * 2u);
    EXPECT_EQ(c.countOps(GateKind::RX), 4u * 2u);
    EXPECT_EQ(c.countOps(GateKind::H), 4u);
    EXPECT_EQ(c.countOps(GateKind::MEASURE), 4u);
}

TEST(Qaoa, RejectsBadAngles)
{
    const Graph g = cycleGraph(3);
    EXPECT_THROW(qaoaCircuit(g, QaoaAngles{{0.1}, {}}),
                 std::invalid_argument);
    EXPECT_THROW(qaoaCircuit(g, QaoaAngles{{}, {}}),
                 std::invalid_argument);
}

TEST(Qaoa, ZeroAnglesGiveUniformDistribution)
{
    const Graph g = cycleGraph(4);
    QaoaAngles zero{{0.0}, {0.0}};
    // <C> of the uniform distribution = half the edges.
    EXPECT_NEAR(qaoaExpectedCut(g, zero), 2.0, 1e-9);
    for (BasisState s = 0; s < 16; ++s)
        EXPECT_NEAR(qaoaIdealProbability(g, zero, s), 1.0 / 16.0,
                    1e-9);
}

TEST(Qaoa, DistributionIsComplementSymmetric)
{
    // The standard ansatz commutes with global X: P(s) == P(~s).
    const Graph g = completeBipartite(5, 0b01101);
    QaoaAngles angles{{0.7, 0.3}, {0.4, 0.9}};
    for (BasisState s = 0; s < 16; ++s) {
        EXPECT_NEAR(qaoaIdealProbability(g, angles, s),
                    qaoaIdealProbability(g, angles,
                                         s ^ allOnes(5)),
                    1e-9)
            << "state " << s;
    }
}

TEST(Qaoa, OptimizerBeatsZeroAngles)
{
    const Graph g = cycleGraph(4);
    const QaoaAngles best = optimizeQaoaAngles(g, 1);
    EXPECT_GT(qaoaExpectedCut(g, best), 2.0 + 0.5);
    EXPECT_LE(qaoaExpectedCut(g, best),
              bruteForceMaxCut(g).value + 1e-9);
}

TEST(Qaoa, OptimizedCircuitConcentratesOnMaxCut)
{
    const Graph g = cycleGraph(4);
    const QaoaAngles best = optimizeQaoaAngles(g, 1);
    IdealSimulator sim(4, 21);
    const Counts counts = sim.run(qaoaCircuit(g, best), 20000);
    const BasisState top = counts.mostFrequent();
    EXPECT_TRUE(top == fromBitString("0101") ||
                top == fromBitString("1010"))
        << toBitString(top, 4);
    // The optimum pair dominates the uniform share by a wide
    // margin.
    EXPECT_GT(counts.probability(fromBitString("0101")), 0.2);
}

TEST(Qaoa, DeeperAnsatzDoesNotRegress)
{
    const Graph g = completeBipartite(4, 0b0111);
    const double p1 =
        qaoaExpectedCut(g, optimizeQaoaAngles(g, 1));
    const double p2 =
        qaoaExpectedCut(g, optimizeQaoaAngles(g, 2));
    EXPECT_GE(p2, p1 - 0.05);
}

TEST(Qaoa, OptimizerIsDeterministic)
{
    const Graph g = completeBipartite(5, 0b10101);
    const QaoaAngles a = optimizeQaoaAngles(g, 2);
    const QaoaAngles b = optimizeQaoaAngles(g, 2);
    EXPECT_EQ(a.gamma, b.gamma);
    EXPECT_EQ(a.beta, b.beta);
}

TEST(Qaoa, OptimizerValidatesArguments)
{
    const Graph g = cycleGraph(3);
    EXPECT_THROW(optimizeQaoaAngles(g, 0), std::invalid_argument);
    EXPECT_THROW(optimizeQaoaAngles(g, 9), std::invalid_argument);
    EXPECT_THROW(optimizeQaoaAngles(g, 1, 1), std::invalid_argument);
}

} // namespace
} // namespace qem
