/**
 * @file
 * Fuzz suite for the statevector kernel implementations.
 *
 * The scalar table is the semantic reference; every other compiled
 * implementation (AVX2 when QEM_SIMD found -mavx2) must reproduce it
 * BIT-FOR-BIT — not approximately — because exact-counts goldens
 * sample from these amplitudes and must not care which kernel ran
 * (kernels.hh documents the no-FMA contract making this possible).
 * Random circuits over every stride combination are replayed under
 * each implementation and the amplitude arrays compared with
 * operator== on the raw doubles.
 *
 * Gate fusion is checked at the same level but with a tolerance:
 * a fused 4x4 product is a different (mathematically equal) FP
 * expression, so fused amplitudes agree to rounding, not bits.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/noise_program.hh"
#include "qsim/kernels/kernels.hh"
#include "qsim/rng.hh"
#include "qsim/statevector.hh"
#include "transpile/transpiler.hh"

namespace qem
{
namespace
{

/** Restore the dispatch table the suite found, whatever a test did. */
class KernelGuard
{
  public:
    KernelGuard()
        : saved_(kernels::active())
    {
    }
    ~KernelGuard() { kernels::setActive(saved_); }

  private:
    kernels::Impl saved_;
};

/** A haar-ish random 1q unitary from three random angles. */
Matrix2
randomUnitary1q(Rng& rng)
{
    return gateMatrix1q(GateKind::U3,
                        {rng.uniform() * 3.0, rng.uniform() * 6.0,
                         rng.uniform() * 6.0});
}

/** Random normalized state over n qubits. */
StateVector
randomState(unsigned n, Rng& rng)
{
    StateVector s(n);
    for (BasisState x = 0; x < s.dim(); ++x)
        s.setAmplitude(x, {rng.uniform() - 0.5,
                           rng.uniform() - 0.5});
    s.normalize();
    return s;
}

/** One random layer of every kernel entry point. */
void
applyRandomLayer(StateVector& s, unsigned n, Rng& rng)
{
    const Qubit q = static_cast<Qubit>(rng.index(n));
    Qubit p = static_cast<Qubit>(rng.index(n));
    if (p == q)
        p = (p + 1) % n;
    if (n == 1) {
        // No distinct partner exists; only 1q entry points apply.
        switch (rng.index(4)) {
          case 0:
            s.applyMatrix1q(randomUnitary1q(rng), q);
            return;
          case 1:
            s.applyH(q);
            return;
          case 2:
            s.applyX(q);
            return;
          default:
            s.applyZ(q);
            return;
        }
    }
    switch (rng.index(8)) {
      case 0:
        s.applyMatrix1q(randomUnitary1q(rng), q);
        break;
      case 1: {
        // Random 2q unitary: CX conjugated by random 1q gates.
        s.applyMatrix1q(randomUnitary1q(rng), q);
        s.applyCX(q, p);
        s.applyMatrix1q(randomUnitary1q(rng), p);
        break;
      }
      case 2:
        s.applyH(q);
        break;
      case 3:
        s.applyX(q);
        break;
      case 4:
        s.applyZ(q);
        break;
      case 5:
        s.applyCX(q, p);
        break;
      case 6:
        s.applyCZ(q, p);
        break;
      default:
        s.applySwap(q, p);
        break;
    }
}

TEST(Kernels, ScalarTableAlwaysAvailable)
{
    EXPECT_TRUE(kernels::available(kernels::Impl::Scalar));
    EXPECT_FALSE(kernels::availableImpls().empty());
    EXPECT_EQ(kernels::availableImpls().front(),
              kernels::Impl::Scalar);
    EXPECT_STREQ(kernels::name(kernels::Impl::Scalar), "scalar");
    EXPECT_STREQ(kernels::name(kernels::Impl::Avx2), "avx2");
}

TEST(Kernels, SetActiveRejectsUnavailableImpl)
{
    KernelGuard guard;
    if (!kernels::available(kernels::Impl::Avx2)) {
        const kernels::Impl before = kernels::active();
        EXPECT_FALSE(kernels::setActive(kernels::Impl::Avx2));
        EXPECT_EQ(kernels::active(), before);
    } else {
        EXPECT_TRUE(kernels::setActive(kernels::Impl::Avx2));
        EXPECT_EQ(kernels::active(), kernels::Impl::Avx2);
    }
    EXPECT_TRUE(kernels::setActive(kernels::Impl::Scalar));
    EXPECT_EQ(kernels::active(), kernels::Impl::Scalar);
}

TEST(Kernels, EveryImplMatchesScalarBitForBit)
{
    // The load-bearing contract: random circuits replayed under
    // every implementation end in the SAME doubles. Qubit counts
    // cover stride 1 (interleaved pairs), the vector width boundary,
    // and large cache-blocked strides.
    KernelGuard guard;
    for (const unsigned n : {1u, 2u, 3u, 5u, 8u}) {
        for (int round = 0; round < 8; ++round) {
            const std::uint64_t seed =
                1000 + n * 100 + static_cast<std::uint64_t>(round);
            Rng init(seed);
            const StateVector start = randomState(n, init);

            ASSERT_TRUE(kernels::setActive(kernels::Impl::Scalar));
            StateVector ref = start;
            {
                Rng ops(seed + 1);
                for (int layer = 0; layer < 24; ++layer)
                    applyRandomLayer(ref, n, ops);
            }
            for (const kernels::Impl impl :
                 kernels::availableImpls()) {
                if (impl == kernels::Impl::Scalar)
                    continue;
                ASSERT_TRUE(kernels::setActive(impl));
                StateVector got = start;
                Rng ops(seed + 1);
                for (int layer = 0; layer < 24; ++layer)
                    applyRandomLayer(got, n, ops);
                for (BasisState x = 0; x < ref.dim(); ++x)
                    ASSERT_EQ(got.amplitude(x), ref.amplitude(x))
                        << kernels::name(impl) << " n=" << n
                        << " round=" << round << " state=" << x;
            }
        }
    }
}

TEST(Kernels, TranspiledPaperCircuitsMatchBitForBit)
{
    // Same contract on the real workload shape: transpiled BV on the
    // paper machines, evolved noiselessly under each implementation.
    KernelGuard guard;
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Transpiler transpiler(machine);
        const Circuit c =
            transpiler.transpile(bernsteinVazirani(4, 0b1011))
                .circuit;
        const NoiseModel clean(machine.noiseModel().numQubits());
        const NoiseProgram p =
            NoiseProgram::lower(c, clean, TrajectoryOptions{});

        ASSERT_TRUE(kernels::setActive(kernels::Impl::Scalar));
        StateVector ref(p.compactQubits());
        Rng r1(5);
        p.evolve(ref, r1);
        for (const kernels::Impl impl : kernels::availableImpls()) {
            if (impl == kernels::Impl::Scalar)
                continue;
            ASSERT_TRUE(kernels::setActive(impl));
            StateVector got(p.compactQubits());
            Rng r2(5);
            p.evolve(got, r2);
            for (BasisState x = 0; x < ref.dim(); ++x)
                ASSERT_EQ(got.amplitude(x), ref.amplitude(x))
                    << kernels::name(impl) << " " << name << " "
                    << x;
        }
    }
}

TEST(Kernels, FusedEvolutionMatchesScalarReferenceWithinTolerance)
{
    // Fusion changes the FP expression (one 4x4 product vs a gate
    // run), so this is a tolerance check, under every kernel impl:
    // fused amplitudes must match the scalar unfused reference to
    // near machine precision on random transpiled circuits.
    KernelGuard guard;
    Rng secrets(31337);
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Transpiler transpiler(machine);
        const NoiseModel clean(machine.noiseModel().numQubits());
        for (int round = 0; round < 4; ++round) {
            const auto secret =
                static_cast<BasisState>(secrets.index(8));
            const Circuit c =
                transpiler
                    .transpile(bernsteinVazirani(
                        4, static_cast<unsigned>(secret)))
                    .circuit;
            TrajectoryOptions fusedOpt;
            fusedOpt.fuseGates = true;
            const NoiseProgram plain =
                NoiseProgram::lower(c, clean, TrajectoryOptions{});
            const NoiseProgram fused =
                NoiseProgram::lower(c, clean, fusedOpt);
            ASSERT_GT(fused.fusedSteps(), 0u);

            ASSERT_TRUE(kernels::setActive(kernels::Impl::Scalar));
            StateVector ref(plain.compactQubits());
            Rng r0(1);
            plain.evolve(ref, r0);
            for (const kernels::Impl impl :
                 kernels::availableImpls()) {
                ASSERT_TRUE(kernels::setActive(impl));
                StateVector got(fused.compactQubits());
                Rng r1(1);
                fused.evolve(got, r1);
                EXPECT_NEAR(got.fidelity(ref), 1.0, 1e-12)
                    << kernels::name(impl) << " " << name
                    << " round=" << round;
            }
        }
    }
}

} // namespace
} // namespace qem
