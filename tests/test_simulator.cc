/**
 * @file
 * Unit tests for the ideal simulator backend.
 */

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(IdealSimulator, BvRecoversKeyWithCertainty)
{
    const BasisState key = fromBitString("0110");
    IdealSimulator sim(5);
    const Counts counts = sim.run(bernsteinVazirani(4, key), 1000);
    EXPECT_EQ(counts.get(key), 1000u);
}

TEST(IdealSimulator, GhzSplitsEvenly)
{
    IdealSimulator sim(5, 77);
    const Counts counts = sim.run(ghzState(5), 20000);
    EXPECT_NEAR(counts.probability(0), 0.5, 0.02);
    EXPECT_NEAR(counts.probability(allOnes(5)), 0.5, 0.02);
    EXPECT_EQ(counts.get(1), 0u);
}

TEST(IdealSimulator, UniformSuperpositionIsUniform)
{
    IdealSimulator sim(3, 78);
    const Counts counts = sim.run(uniformSuperposition(3), 64000);
    for (BasisState s = 0; s < 8; ++s)
        EXPECT_NEAR(counts.probability(s), 0.125, 0.01)
            << "state " << s;
}

TEST(IdealSimulator, MeasurementSubsetAndClbitMapping)
{
    // q1 ends in |1>; read it into clbit 0 only.
    Circuit c(3, 1);
    c.x(1).measure(1, 0);
    IdealSimulator sim(3);
    const Counts counts = sim.run(c, 100);
    EXPECT_EQ(counts.get(1), 100u);
    EXPECT_EQ(counts.numBits(), 1u);
}

TEST(IdealSimulator, StateOfSkipsMeasurements)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    IdealSimulator sim(2);
    const StateVector state = sim.stateOf(c);
    EXPECT_NEAR(state.probabilityOf(0b00), 0.5, 1e-12);
    EXPECT_NEAR(state.probabilityOf(0b11), 0.5, 1e-12);
}

TEST(IdealSimulator, RunRequiresMeasurements)
{
    Circuit c(1);
    c.h(0);
    IdealSimulator sim(1);
    EXPECT_THROW(sim.run(c, 10), std::invalid_argument);
}

TEST(IdealSimulator, RejectsOverwideCircuit)
{
    Circuit c(3);
    c.measureAll();
    IdealSimulator sim(2);
    EXPECT_THROW(sim.run(c, 10), std::invalid_argument);
}

TEST(IdealSimulator, RejectsReset)
{
    Circuit c(1);
    c.h(0).reset(0).measure(0, 0);
    IdealSimulator sim(1);
    EXPECT_THROW(sim.run(c, 10), std::logic_error);
}

TEST(IdealSimulator, SeededRunsReproduce)
{
    Circuit c = ghzState(3);
    IdealSimulator a(3, 5), b(3, 5);
    EXPECT_EQ(a.run(c, 500).raw(), b.run(c, 500).raw());
}

} // namespace
} // namespace qem
