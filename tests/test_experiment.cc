/**
 * @file
 * Integration tests for the MachineSession experiment pipeline.
 */

#include <gtest/gtest.h>

#include "harness/config.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "kernels/basis.hh"
#include "qsim/bitstring.hh"

#include <cstdlib>

namespace qem
{
namespace
{

TEST(Experiment, PrepareProducesRunnablePhysicalProgram)
{
    MachineSession session(makeIbmqx2(), 91);
    const auto suite = benchmarkSuiteQ5();
    const TranspiledProgram program =
        session.prepare(suite[0].circuit);
    EXPECT_EQ(program.circuit.numQubits(), 5u);
    EXPECT_EQ(measuredPhysicalQubits(program).size(), 4u);
    BaselinePolicy baseline;
    const Counts counts =
        session.runPolicy(program, baseline, 2000);
    EXPECT_EQ(counts.total(), 2000u);
}

TEST(Experiment, ProfileProgramCoversMeasuredBits)
{
    MachineSession session(makeIbmqx4(), 92);
    const auto suite = benchmarkSuiteQ5();
    const TranspiledProgram program =
        session.prepare(suite[1].circuit);
    const auto rbms = session.profileProgram(program);
    ASSERT_NE(rbms, nullptr);
    EXPECT_EQ(rbms->numBits(), 4u);
}

TEST(Experiment, ComparePoliciesOrderingOnBiasedMachine)
{
    // bv-4B reads the all-ones key: the weak state. On ibmqx4 both
    // mitigations must beat the baseline, and AIM must beat SIM.
    MachineSession session(makeIbmqx4(), 93);
    const auto suite = benchmarkSuiteQ5();
    const auto results = session.comparePolicies(suite[1], 16384);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].policy, "Baseline");
    EXPECT_EQ(results[1].policy, "SIM");
    EXPECT_EQ(results[2].policy, "AIM");
    EXPECT_GT(results[1].report.pst, results[0].report.pst);
    EXPECT_GT(results[2].report.pst, results[1].report.pst);
    EXPECT_GT(results[2].report.ist, results[0].report.ist);
}

TEST(Experiment, MelbourneBvBenefitsFromMitigation)
{
    MachineSession session(makeIbmqMelbourne(), 94);
    const auto suite = benchmarkSuiteQ14();
    const auto results = session.comparePolicies(suite[0], 8192);
    EXPECT_GT(results[1].report.pst, results[0].report.pst);
    EXPECT_GE(results[2].report.pst, results[1].report.pst * 0.9);
}

TEST(Experiment, ConfigEnvOverrides)
{
    unsetenv("INVERTQ_SHOTS");
    unsetenv("INVERTQ_SEED");
    EXPECT_EQ(configuredShots(123), 123u);
    EXPECT_EQ(configuredSeed(7), 7u);
    setenv("INVERTQ_SHOTS", "4096", 1);
    setenv("INVERTQ_SEED", "99", 1);
    EXPECT_EQ(configuredShots(123), 4096u);
    EXPECT_EQ(configuredSeed(7), 99u);
    setenv("INVERTQ_SHOTS", "garbage", 1);
    EXPECT_EQ(configuredShots(123), 123u);
    unsetenv("INVERTQ_SHOTS");
    unsetenv("INVERTQ_SEED");
}

TEST(Experiment, AsciiTableRendersAlignedColumns)
{
    AsciiTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    const std::string text = table.toString();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_THROW(table.addRow({"too", "many", "cells"}),
                 std::invalid_argument);
    EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(Experiment, Formatters)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
    EXPECT_EQ(fmtPercent(0.1234, 1), "12.3%");
    EXPECT_EQ(bar(0.5, 1.0, 10), "#####");
    EXPECT_EQ(bar(2.0, 1.0, 4), "####"); // Saturates.
    EXPECT_EQ(bar(1.0, 0.0, 4), "");
}

} // namespace
} // namespace qem
