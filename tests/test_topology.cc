/**
 * @file
 * Unit tests for the coupling topology.
 */

#include <gtest/gtest.h>

#include "machine/topology.hh"

namespace qem
{
namespace
{

Topology
bowtie()
{
    return Topology(5,
                    {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
}

TEST(Topology, ConstructionValidatesEdges)
{
    EXPECT_THROW(Topology(0, {}), std::invalid_argument);
    EXPECT_THROW(Topology(2, {{0, 2}}), std::invalid_argument);
    EXPECT_THROW(Topology(2, {{1, 1}}), std::invalid_argument);
    EXPECT_THROW(Topology(3, {{0, 1}, {1, 0}}),
                 std::invalid_argument);
}

TEST(Topology, CoupledIsSymmetric)
{
    const Topology t = bowtie();
    EXPECT_TRUE(t.coupled(0, 1));
    EXPECT_TRUE(t.coupled(1, 0));
    EXPECT_FALSE(t.coupled(0, 3));
    EXPECT_FALSE(t.coupled(2, 2));
    EXPECT_THROW(t.coupled(0, 9), std::out_of_range);
}

TEST(Topology, NeighborsAndDegree)
{
    const Topology t = bowtie();
    EXPECT_EQ(t.degree(2), 4u);
    EXPECT_EQ(t.degree(0), 2u);
    const auto& n2 = t.neighbors(2);
    EXPECT_EQ(n2, (std::vector<Qubit>{0, 1, 3, 4}));
}

TEST(Topology, DistancesViaBfs)
{
    const Topology t = bowtie();
    EXPECT_EQ(t.distance(0, 0), 0u);
    EXPECT_EQ(t.distance(0, 1), 1u);
    EXPECT_EQ(t.distance(0, 3), 2u);
    EXPECT_EQ(t.distance(1, 4), 2u);
}

TEST(Topology, ShortestPathIsValidWalk)
{
    const Topology t = bowtie();
    const auto path = t.shortestPath(0, 4);
    ASSERT_EQ(path.size(), 3u); // distance 2 -> 3 nodes.
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 4u);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(t.coupled(path[i], path[i + 1]));
}

TEST(Topology, DisconnectedComponentsDetected)
{
    const Topology split(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(split.connected());
    EXPECT_THROW(split.distance(0, 3), std::logic_error);
    EXPECT_TRUE(bowtie().connected());
}

TEST(Topology, LineGraphDistances)
{
    const Topology line(4, {{0, 1}, {1, 2}, {2, 3}});
    EXPECT_EQ(line.distance(0, 3), 3u);
    const auto path = line.shortestPath(3, 0);
    EXPECT_EQ(path,
              (std::vector<Qubit>{3, 2, 1, 0}));
}

} // namespace
} // namespace qem
