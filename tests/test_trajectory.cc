/**
 * @file
 * Unit tests for the Monte-Carlo trajectory simulator.
 */

#include <cmath>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "telemetry/telemetry.hh"
#include "verify/assertions.hh"

namespace qem
{
namespace
{

NoiseModel
cleanModel(unsigned n)
{
    return NoiseModel(n);
}

TEST(Trajectory, NoiseFreeMatchesIdeal)
{
    const BasisState key = fromBitString("1011");
    TrajectorySimulator sim(cleanModel(5), 1);
    const Counts counts = sim.run(bernsteinVazirani(4, key), 2000);
    EXPECT_EQ(counts.get(key), 2000u);
}

TEST(Trajectory, ReadoutErrorsProduceExpectedSuccessRate)
{
    NoiseModel model(3);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(3, 0.0), std::vector<double>(3, 0.2)));
    TrajectorySimulator sim(std::move(model), 2);
    const Counts counts =
        sim.run(basisStatePrep(3, allOnes(3)), 40000);
    // PST = (1 - 0.2)^3 = 0.512.
    EXPECT_NEAR(counts.probability(allOnes(3)), 0.512, 0.01);
    // All-zero state is read perfectly (p01 = 0) -- state-dependent
    // bias in its purest form.
    TrajectorySimulator sim2(sim.model(), 3);
    const Counts zeros = sim2.run(basisStatePrep(3, 0), 5000);
    EXPECT_EQ(zeros.get(0), 5000u);
}

TEST(Trajectory, DepolarizingGateErrorLowersFidelity)
{
    NoiseModel model(1);
    model.setGate1q(0, {0.3, 0.0});
    TrajectorySimulator sim(std::move(model), 4);
    Circuit c(1);
    c.x(0).measure(0, 0);
    const Counts counts = sim.run(c, 30000);
    // After X, error prob 0.3: X or Y flips the bit (2/3 of
    // errors), Z leaves it. P(correct) = 0.7 + 0.3/3 = 0.8.
    EXPECT_NEAR(counts.probability(1), 0.8, 0.01);
}

TEST(Trajectory, DelayAppliesT1Decay)
{
    NoiseModel model(1);
    model.setT1(0, 1000.0);
    model.setT2(0, 2000.0); // No pure dephasing.
    TrajectorySimulator sim(std::move(model), 5);
    Circuit c(1);
    c.x(0).delay(1000.0, 0).measure(0, 0);
    const Counts counts = sim.run(c, 40000);
    // P(survive) = e^-1.
    EXPECT_NEAR(counts.probability(1), std::exp(-1.0), 0.01);
}

TEST(Trajectory, GateDurationAppliesDecayToo)
{
    NoiseModel model(1);
    model.setT1(0, 1000.0);
    model.setT2(0, 2000.0);
    model.setGate1q(0, {0.0, 693.1}); // ln(2) * 1000 ns.
    TrajectorySimulator sim(std::move(model), 6);
    Circuit c(1);
    c.x(0).measure(0, 0);
    const Counts counts = sim.run(c, 40000);
    EXPECT_NEAR(counts.probability(1), 0.5, 0.01);
}

TEST(Trajectory, CompactionHandlesSparseQubitUse)
{
    // Use qubits 3 and 7 of a 14-qubit machine; results must be
    // identical in distribution to the dense 2-qubit case.
    NoiseModel model(14);
    std::vector<double> p01(14, 0.0), p10(14, 0.0);
    p10[3] = 0.25;
    model.setReadout(std::make_shared<AsymmetricReadout>(p01, p10));
    TrajectorySimulator sim(std::move(model), 7);
    Circuit c(14, 2);
    c.x(3).x(7).measure(3, 0).measure(7, 1);
    const Counts counts = sim.run(c, 30000);
    EXPECT_NEAR(counts.probability(0b11), 0.75, 0.01);
    EXPECT_NEAR(counts.probability(0b10), 0.25, 0.01);
}

TEST(Trajectory, CorrelatedReadoutSeesFullContext)
{
    // Crosstalk victim qubit 0 reads worse when qubit 1 is excited,
    // even though qubit 1 is NOT measured.
    AsymmetricReadout base({0.0, 0.0}, {0.1, 0.0});
    std::vector<std::vector<double>> j01(2,
                                         std::vector<double>(2, 0));
    std::vector<std::vector<double>> j10(2,
                                         std::vector<double>(2, 0));
    j10[0][1] = 0.3;
    NoiseModel model(2);
    model.setReadout(std::make_shared<CorrelatedReadout>(
        std::move(base), j01, j10));

    TrajectorySimulator sim(std::move(model), 8);
    Circuit c(2, 1);
    c.x(0).x(1).measure(0, 0); // Qubit 1 excited but unread.
    const Counts counts = sim.run(c, 30000);
    EXPECT_NEAR(counts.probability(1), 0.6, 0.012); // 1-(0.1+0.3)
}

TEST(Trajectory, OptionTogglesDisableProcesses)
{
    NoiseModel model(1);
    model.setGate1q(0, {0.5, 0.0});
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.0}, std::vector<double>{0.5}));
    Circuit c(1);
    c.x(0).measure(0, 0);

    TrajectoryOptions no_gate;
    no_gate.enableGateErrors = false;
    TrajectorySimulator sim1(model, 9, no_gate);
    // Only readout errors: P(1) = 0.5.
    EXPECT_NEAR(sim1.run(c, 20000).probability(1), 0.5, 0.015);

    TrajectoryOptions no_readout;
    no_readout.enableReadoutErrors = false;
    TrajectorySimulator sim2(model, 10, no_readout);
    // Only gate errors: P(1) = 0.5 + 0.5/3.
    EXPECT_NEAR(sim2.run(c, 20000).probability(1), 2.0 / 3.0, 0.015);
}

TEST(Trajectory, ValidatesInputs)
{
    TrajectorySimulator sim(cleanModel(2), 11);
    Circuit wide(3);
    wide.measureAll();
    EXPECT_THROW(sim.run(wide, 10), std::invalid_argument);
    Circuit unmeasured(2);
    unmeasured.h(0);
    EXPECT_THROW(sim.run(unmeasured, 10), std::invalid_argument);
    Circuit with_reset(2);
    with_reset.reset(0).measureAll();
    EXPECT_THROW(sim.run(with_reset, 10), std::logic_error);
    EXPECT_THROW(TrajectorySimulator(cleanModel(1), 1,
                                     TrajectoryOptions{0}),
                 std::invalid_argument);
}

/** Telemetry scope: enable, reset, and always restore. */
class TelemetryCapture
{
  public:
    TelemetryCapture()
    {
        telemetry::resetAll();
        telemetry::setEnabled(true);
    }
    ~TelemetryCapture()
    {
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
    std::uint64_t counter(const std::string& name) const
    {
        return telemetry::metrics().counter(name).value();
    }
};

TEST(Trajectory, ReadoutOnlyModelTakesSingleTrajectoryFastPath)
{
    // A model that HAS stochastic gate noise and finite T1/T2, with
    // options disabling both, must still take the one-trajectory
    // shortcut: eligibility is a property of model AND options, not
    // of the model alone (the options-blind fast path was the bug).
    NoiseModel model(2);
    model.setGate1q(0, {0.05, 60.0});
    model.setGate1q(1, {0.05, 60.0});
    model.setT1(0, 40000.0);
    model.setT2(0, 60000.0);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.02, 0.05},
        std::vector<double>{0.1, 0.15}));
    TrajectoryOptions readoutOnly;
    readoutOnly.enableDecay = false;
    readoutOnly.enableGateErrors = false;

    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();

    TelemetryCapture tele;
    TrajectorySimulator sim(model, 21, readoutOnly);
    const Counts counts = sim.run(c, 20000);
    EXPECT_EQ(counts.total(), 20000u);
    EXPECT_EQ(tele.counter("trajectory.trajectories"), 1u);
    EXPECT_EQ(tele.counter("trajectory.fastpath_runs"), 1u);
}

TEST(Trajectory, FastPathMatchesBatchedDistribution)
{
    // The shortcut must change throughput, never statistics: its
    // histogram is one sample of the same distribution the batched
    // estimator draws from.
    NoiseModel model(2);
    model.setGate1q(0, {0.05, 0.0});
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.03, 0.01},
        std::vector<double>{0.12, 0.08}));
    TrajectoryOptions fast;
    fast.enableGateErrors = false;
    TrajectoryOptions batched = fast;
    batched.deterministicFastPath = false;

    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();

    TrajectorySimulator fastSim(model, 22, fast);
    TrajectorySimulator batchedSim(model, 23, batched);
    const Counts a = fastSim.run(c, 40000);
    const Counts b = batchedSim.run(c, 40000);
    const verify::CheckResult same =
        verify::checkSameDistribution(a, b, 1e-4);
    EXPECT_TRUE(same) << same.message;
}

TEST(Trajectory, DisabledDecayReportsNoDecayEvents)
{
    // decayEvents counts channels that actually acted; with decay
    // disabled the counter must stay exactly zero even though the
    // model has finite T1 and the circuit has real durations.
    NoiseModel model(1);
    model.setT1(0, 1000.0);
    model.setT2(0, 1500.0);
    model.setGate1q(0, {0.1, 200.0}); // Keeps the program stochastic.
    Circuit c(1);
    c.x(0).delay(800.0, 0).measure(0, 0);

    {
        TelemetryCapture tele;
        TrajectoryOptions noDecay;
        noDecay.enableDecay = false;
        TrajectorySimulator sim(model, 24, noDecay);
        sim.run(c, 4000);
        EXPECT_EQ(tele.counter("trajectory.decay_events"), 0u);
    }
    {
        TelemetryCapture tele;
        TrajectorySimulator sim(model, 24);
        sim.run(c, 4000);
        EXPECT_GT(tele.counter("trajectory.decay_events"), 0u);
    }
}

TEST(Trajectory, SeededRunsReproduce)
{
    NoiseModel model(2);
    model.setGate1q(0, {0.05, 0.0});
    model.setGate1q(1, {0.05, 0.0});
    Circuit c = ghzState(2);
    TrajectorySimulator a(model, 42), b(model, 42);
    EXPECT_EQ(a.run(c, 3000).raw(), b.run(c, 3000).raw());
}

TEST(Trajectory, BatchSizeDoesNotBiasDistribution)
{
    NoiseModel model(1);
    model.setGate1q(0, {0.2, 0.0});
    Circuit c(1);
    c.x(0).measure(0, 0);
    TrajectoryOptions small{1, true, true, true};
    TrajectoryOptions large{64, true, true, true};
    TrajectorySimulator sim_small(model, 12, small);
    TrajectorySimulator sim_large(model, 13, large);
    const double p_small = sim_small.run(c, 60000).probability(1);
    const double p_large = sim_large.run(c, 60000).probability(1);
    // Batching coarsens the estimator's variance, not its mean.
    EXPECT_NEAR(p_small, p_large, 0.03);
    EXPECT_NEAR(p_small, 0.8 + 0.2 / 3.0, 0.02);
}

} // namespace
} // namespace qem
