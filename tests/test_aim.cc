/**
 * @file
 * Unit tests for Adaptive Invert-and-Measure (AIM).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "metrics/reliability.hh"
#include "mitigation/aim_policy.hh"
#include "mitigation/sim_policy.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "verify/assertions.hh"

namespace qem
{
namespace
{

/**
 * False-positive budget per statistical claim. The backends here
 * are readout-only (no gate noise), so every shot is an independent
 * draw and no design-effect deflation is needed.
 */
constexpr double kAlpha = 1e-6;

/** Readout-only backend with an arbitrary strongest state. */
TrajectorySimulator
arbitraryBiasBackend(std::uint64_t seed)
{
    // Strongest state is NOT all-zeros: qubit 1 reads a 1 better
    // than a 0 (p01 > p10 there), everyone else is one-biased.
    NoiseModel model(3);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.01, 0.30, 0.02},
        std::vector<double>{0.30, 0.01, 0.35}));
    return TrajectorySimulator(std::move(model), seed);
}

std::shared_ptr<const RbmsEstimate>
profile(Backend& backend)
{
    return characterizeAuto(backend, {0, 1, 2});
}

TEST(AimPolicy, ValidatesConstruction)
{
    EXPECT_THROW(AdaptiveInvertAndMeasure(nullptr),
                 std::invalid_argument);
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>{1.0, 0.5});
    AimOptions bad;
    bad.canaryFraction = 0.0;
    EXPECT_THROW(AdaptiveInvertAndMeasure(rbms, bad),
                 std::invalid_argument);
    bad.canaryFraction = 1.0;
    EXPECT_THROW(AdaptiveInvertAndMeasure(rbms, bad),
                 std::invalid_argument);
    AimOptions zero_k;
    zero_k.numCandidates = 0;
    EXPECT_THROW(AdaptiveInvertAndMeasure(rbms, zero_k),
                 std::invalid_argument);
}

TEST(AimPolicy, RequiresMatchingRbmsWidth)
{
    auto backend = arbitraryBiasBackend(71);
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>{1.0, 0.5}); // 1 bit, circuit has 3.
    AdaptiveInvertAndMeasure aim(rbms);
    const Circuit c = basisStatePrep(3, 0b101);
    EXPECT_THROW(aim.run(c, backend, 1000), std::invalid_argument);
    Circuit unmeasured(3);
    EXPECT_THROW(aim.run(unmeasured, backend, 1000),
                 std::invalid_argument);
}

TEST(AimPolicy, CandidatesContainTheTrueOutput)
{
    auto backend = arbitraryBiasBackend(72);
    AdaptiveInvertAndMeasure aim(profile(backend));
    const BasisState truth = fromBitString("101");
    aim.run(basisStatePrep(3, truth), backend, 8000);
    const auto& candidates = aim.lastCandidates();
    ASSERT_FALSE(candidates.empty());
    EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                        truth),
              candidates.end());
    EXPECT_LE(candidates.size(), 4u);
}

TEST(AimPolicy, SteersWeakStateToStrongest)
{
    // The weakest-read state: 101 (both one-biased qubits excited,
    // qubit 1 at 0 which it reads badly). AIM must beat both the
    // baseline and four-mode SIM on it.
    const BasisState truth = fromBitString("101");
    const Circuit c = basisStatePrep(3, truth);
    const std::size_t shots = 30000;

    auto b1 = arbitraryBiasBackend(73);
    BaselinePolicy baseline;
    const Counts base = baseline.run(c, b1, shots);

    auto b2 = arbitraryBiasBackend(74);
    StaticInvertAndMeasure sim;
    const Counts sim_counts = sim.run(c, b2, shots);

    auto b3 = arbitraryBiasBackend(75);
    AdaptiveInvertAndMeasure aim(profile(b3));
    const Counts aim_counts = aim.run(c, b3, shots);

    const verify::CheckResult sim_beats_base =
        verify::checkProportionOrdering(
            sim_counts.get(truth), shots, base.get(truth), shots,
            kAlpha);
    EXPECT_TRUE(sim_beats_base) << sim_beats_base.message;
    const verify::CheckResult aim_beats_sim =
        verify::checkProportionOrdering(aim_counts.get(truth),
                                        shots,
                                        sim_counts.get(truth),
                                        shots, kAlpha);
    EXPECT_TRUE(aim_beats_sim) << aim_beats_sim.message;
    // The strongest state of this model is read with ~0.95^3
    // fidelity; AIM should get most of the way there on 75% of the
    // trials.
    const verify::CheckResult floor = verify::checkProbAtLeast(
        aim_counts, truth, 0.6, kAlpha);
    EXPECT_TRUE(floor) << floor.message;
}

TEST(AimPolicy, TotalTrialBudgetIsRespected)
{
    auto backend = arbitraryBiasBackend(76);
    AdaptiveInvertAndMeasure aim(profile(backend));
    const Counts counts =
        aim.run(basisStatePrep(3, 0b111), backend, 10000);
    EXPECT_EQ(counts.total(), 10000u);
}

TEST(AimPolicy, CanaryFractionControlsSplit)
{
    // A counting backend verifies ~canaryFraction of trials run in
    // four canary modes and the rest in tailored modes.
    class CountingBackend : public Backend
    {
      public:
        Counts run(const Circuit& circuit,
                   std::size_t shots) override
        {
            calls.push_back(shots);
            Counts counts(circuit.numClbits());
            counts.add(0b01, shots); // Deterministic "output".
            return counts;
        }
        unsigned numQubits() const override { return 2; }
        std::vector<std::size_t> calls;
    };

    CountingBackend backend;
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>{0.9, 0.6, 0.5, 0.3});
    AimOptions options;
    options.canaryFraction = 0.25;
    options.numCandidates = 2;
    AdaptiveInvertAndMeasure aim(rbms, options);
    Circuit c(2);
    c.measureAll();
    aim.run(c, backend, 1000);
    // Four canary calls of 62/63 shots each (250 total), then the
    // tailored calls totalling 750.
    ASSERT_GE(backend.calls.size(), 5u);
    std::size_t canary = 0;
    for (int i = 0; i < 4; ++i)
        canary += backend.calls[i];
    EXPECT_EQ(canary, 250u);
    std::size_t tailored = 0;
    for (std::size_t i = 4; i < backend.calls.size(); ++i)
        tailored += backend.calls[i];
    EXPECT_EQ(tailored, 750u);
}

TEST(AimPolicy, NameIsAim)
{
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>{1.0, 0.5});
    EXPECT_EQ(AdaptiveInvertAndMeasure(rbms).name(), "AIM");
}

} // namespace
} // namespace qem
