/**
 * @file
 * Paper-level integration tests: every headline phenomenon of
 * Tannu & Qureshi (MICRO-52, 2019) must hold in this reproduction,
 * in shape if not in exact magnitude.
 *
 * Sampled claims run through the verify:: assertion library, so each
 * carries an explicit false-positive budget (kAlpha) instead of a
 * hand-tuned epsilon. Counts sampled through a MachineSession come
 * from the batched trajectory backend (TrajectoryOptions default:
 * 16 shots per stochastic gate-noise trajectory), so every interval
 * is deflated by that worst-case design effect — see
 * docs/verification.md.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "kernels/basis.hh"
#include "metrics/stats.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "verify/assertions.hh"

namespace qem
{
namespace
{

/** False-positive budget per statistical claim in this file. */
constexpr double kAlpha = 1e-6;

/** Worst-case correlation factor of batched trajectory sampling. */
const std::uint64_t kDeff = TrajectoryOptions{}.shotsPerTrajectory;

std::uint64_t
acceptedCount(const Counts& counts,
              const std::vector<BasisState>& accepted)
{
    std::uint64_t n = 0;
    for (BasisState s : accepted)
        n += counts.get(s);
    return n;
}

TEST(PaperIntegration, Fig1InvertAndMeasureShape)
{
    // Fig 1: PST(00000) > PST(invert-and-measure 11111) >
    // PST(11111) on a five-qubit machine.
    MachineSession session(makeIbmqx4(), 101);
    BaselinePolicy baseline;
    const Counts zero = session.runPolicy(basisStatePrep(5, 0),
                                          baseline, 16384);
    const Counts ones = session.runPolicy(
        basisStatePrep(5, allOnes(5)), baseline, 16384);
    StaticInvertAndMeasure full_inversion({allOnes(5)});
    const Counts inv = session.runPolicy(
        basisStatePrep(5, allOnes(5)), full_inversion, 16384);

    const verify::CheckResult zero_beats_inv =
        verify::checkProportionOrdering(
            zero.get(0), zero.total(), inv.get(allOnes(5)),
            inv.total(), kAlpha, 0.0, kDeff);
    EXPECT_TRUE(zero_beats_inv) << zero_beats_inv.message;
    const verify::CheckResult inv_beats_ones =
        verify::checkProportionOrdering(
            inv.get(allOnes(5)), inv.total(),
            ones.get(allOnes(5)), ones.total(), kAlpha, 0.1,
            kDeff);
    EXPECT_TRUE(inv_beats_ones) << inv_beats_ones.message;
}

TEST(PaperIntegration, Fig4BmsAnticorrelatesWithHammingWeight)
{
    // ibmqx2: BMS strongly anti-correlated with Hamming weight
    // (paper: r = -0.93, relative BMS of 11111 = 0.38). These are
    // derived statistics of a 4096-shot-per-state characterization;
    // the thresholds sit several standard errors inside the paper
    // values, so no formal test is attached.
    MachineSession session(makeIbmqx2(), 102);
    const ExhaustiveRbms rbms = characterizeDirect(
        session.backend(), {0, 1, 2, 3, 4}, 4096);
    const auto curve = rbms.relativeCurve();
    std::vector<double> weights;
    for (BasisState s = 0; s < 32; ++s)
        weights.push_back(hammingWeight(s));
    EXPECT_LT(pearson(weights, curve), -0.8);
    EXPECT_GT(curve[allOnes(5)], 0.2);
    EXPECT_LT(curve[allOnes(5)], 0.55);
    EXPECT_EQ(rbms.strongestState(), 0u);
}

TEST(PaperIntegration, Fig5MelbourneBmsFallsWithWeight)
{
    // Fig 5: mean relative BMS falls monotonically (to ~0.4-0.5)
    // over Hamming weights of 10-bit states. ESCT on the ten best
    // qubits keeps this cheap.
    MachineSession session(makeIbmqMelbourne(), 103);
    const std::vector<Qubit> ten{5, 7, 6, 11, 8, 12, 10, 13, 0, 3};
    const ExhaustiveRbms esct = characterizeSuperposition(
        session.backend(), ten, 200000);
    const auto by_weight =
        averageByHammingWeight(esct.relativeCurve(), 10);
    EXPECT_GT(by_weight[0], by_weight[3]);
    EXPECT_GT(by_weight[3], by_weight[7]);
    EXPECT_GT(by_weight[7], by_weight[10]);
    EXPECT_LT(by_weight[10], 0.6);
}

TEST(PaperIntegration, Fig6GhzBiasOnMelbourne)
{
    // Fig 6: GHZ-5 reads 00000 much more often than 11111 (ideal:
    // both 0.5; paper: 0.4 vs 0.1).
    MachineSession session(makeIbmqMelbourne(), 104);
    BaselinePolicy baseline;
    const Counts counts =
        session.runPolicy(ghzState(5), baseline, 16384);

    const verify::CheckResult zero_floor = verify::checkProbAtLeast(
        counts, BasisState{0}, 0.25, kAlpha, kDeff);
    EXPECT_TRUE(zero_floor) << zero_floor.message;
    const verify::CheckResult zero_ceiling =
        verify::checkProbAtMost(counts, BasisState{0}, 0.5, kAlpha,
                                kDeff);
    EXPECT_TRUE(zero_ceiling) << zero_ceiling.message;
    // The bias itself: 00000 leads 11111 by a wide margin. Both
    // proportions come from one log; for disjoint outcomes the
    // independent-sample variance understates the truth by at most
    // 2*p0*p1/n, which the design-effect deflation dwarfs.
    const verify::CheckResult biased =
        verify::checkProportionOrdering(
            counts.get(0), counts.total(),
            counts.get(allOnes(5)), counts.total(), kAlpha, 0.05,
            kDeff);
    EXPECT_TRUE(biased) << biased.message;
}

TEST(PaperIntegration, Fig11Ibmqx4BiasIsNotMonotone)
{
    // Section 6.1: on ibmqx4 measurement strength does not decrease
    // monotonically with Hamming weight.
    MachineSession session(makeIbmqx4(), 105);
    const ExhaustiveRbms rbms = characterizeDirect(
        session.backend(), {0, 1, 2, 3, 4}, 4096);
    const auto curve = rbms.relativeCurve();
    // Find a pair (a, b) with HW(a) < HW(b) but strength(a) <
    // strength(b) by a solid margin: monotone bias can't do that.
    // The 0.08 margin is ~10 characterization standard errors at
    // 4096 shots/state, so a spurious violation is implausible.
    bool violation = false;
    for (BasisState a = 0; a < 32 && !violation; ++a) {
        for (BasisState b = 0; b < 32; ++b) {
            if (hammingWeight(a) < hammingWeight(b) &&
                curve[a] + 0.08 < curve[b]) {
                violation = true;
                break;
            }
        }
    }
    EXPECT_TRUE(violation);
    // Still repeatable: a second characterization agrees closely.
    MachineSession session2(makeIbmqx4(), 106);
    const ExhaustiveRbms again = characterizeDirect(
        session2.backend(), {0, 1, 2, 3, 4}, 4096);
    EXPECT_LT(meanSquaredError(curve, again.relativeCurve()),
              0.005);
}

TEST(PaperIntegration, Fig13AimFlattensBvKeyDependence)
{
    // Fig 13: across BV keys, baseline PST varies wildly with the
    // key's readout strength; AIM is higher and flatter.
    MachineSession session(makeIbmqx4(), 107);
    const std::size_t shots = 8192;
    std::vector<std::uint64_t> base_succ, aim_succ;
    for (const char* key : {"0000", "1010", "0111", "1111"}) {
        NisqBenchmark bench = makeBvBenchmark("bv", 4, key);
        const auto results = session.comparePolicies(bench, shots);
        base_succ.push_back(acceptedCount(results[0].counts,
                                          bench.acceptedOutputs));
        aim_succ.push_back(acceptedCount(results[2].counts,
                                         bench.acceptedOutputs));
    }
    const auto base_minmax = std::minmax_element(
        base_succ.begin(), base_succ.end());
    const auto aim_minmax =
        std::minmax_element(aim_succ.begin(), aim_succ.end());

    // AIM's worst key clearly beats the baseline's worst key.
    const verify::CheckResult lifted =
        verify::checkProportionOrdering(
            *aim_minmax.first, shots, *base_minmax.first, shots,
            kAlpha, 0.05, kDeff);
    EXPECT_TRUE(lifted) << lifted.message;
    // The baseline's key dependence is large (best - worst >= 0.1
    // stays compatible with the data)...
    const verify::CheckResult base_spread =
        verify::checkProportionOrdering(
            *base_minmax.second, shots, *base_minmax.first, shots,
            kAlpha, 0.1, kDeff);
    EXPECT_TRUE(base_spread) << base_spread.message;
    // ...while AIM's is small (best <= worst + 0.15, expressed via
    // a negative margin).
    const verify::CheckResult aim_flat =
        verify::checkProportionOrdering(
            *aim_minmax.first, shots, *aim_minmax.second, shots,
            kAlpha, -0.15, kDeff);
    EXPECT_TRUE(aim_flat) << aim_flat.message;
}

TEST(PaperIntegration, Fig14MitigationGainsAggregate)
{
    // Fig 14: across the Q5 suite on ibmqx4, SIM and AIM both beat
    // the baseline on the pooled (micro-averaged) PST, and AIM
    // beats SIM.
    MachineSession session(makeIbmqx4(), 108);
    const std::size_t shots = 8192;
    std::uint64_t base_succ = 0, sim_succ = 0, aim_succ = 0;
    std::uint64_t trials = 0;
    for (const auto& bench : benchmarkSuiteQ5()) {
        const auto results = session.comparePolicies(bench, shots);
        base_succ += acceptedCount(results[0].counts,
                                   bench.acceptedOutputs);
        sim_succ += acceptedCount(results[1].counts,
                                  bench.acceptedOutputs);
        aim_succ += acceptedCount(results[2].counts,
                                  bench.acceptedOutputs);
        trials += shots;
    }
    ASSERT_GT(trials, 0u);
    const verify::CheckResult sim_gain =
        verify::checkProportionOrdering(sim_succ, trials,
                                        base_succ, trials, kAlpha,
                                        0.0, kDeff);
    EXPECT_TRUE(sim_gain) << sim_gain.message;
    const verify::CheckResult aim_gain =
        verify::checkProportionOrdering(aim_succ, trials, sim_succ,
                                        trials, kAlpha, 0.0,
                                        kDeff);
    EXPECT_TRUE(aim_gain) << aim_gain.message;
}

TEST(PaperIntegration, Table2QaoaDegradesWithTargetWeight)
{
    // Table 2: QAOA PST for the lightest target far exceeds the
    // heaviest on melbourne.
    MachineSession session(makeIbmqMelbourne(), 109);
    BaselinePolicy baseline;
    const std::size_t shots = 16384;
    auto run_graph = [&](const char* target) {
        NisqBenchmark bench = makeQaoaBenchmark(
            target, completeBipartite(6, fromBitString(target)), 2,
            target);
        const Counts counts =
            session.runPolicy(bench.circuit, baseline, shots);
        // Single-string scoring, as in the Table 2 bench.
        return counts.get(bench.correctOutput);
    };
    const std::uint64_t light = run_graph("010000"); // A, HW 1.
    const std::uint64_t heavy = run_graph("110110"); // E, HW 4.
    const verify::CheckResult degraded =
        verify::checkProportionOrdering(light, shots, heavy, shots,
                                        kAlpha, 0.05, kDeff);
    EXPECT_TRUE(degraded) << degraded.message;
}

} // namespace
} // namespace qem
