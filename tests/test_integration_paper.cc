/**
 * @file
 * Paper-level integration tests: every headline phenomenon of
 * Tannu & Qureshi (MICRO-52, 2019) must hold in this reproduction,
 * in shape if not in exact magnitude.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "kernels/basis.hh"
#include "metrics/stats.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(PaperIntegration, Fig1InvertAndMeasureShape)
{
    // Fig 1: PST(00000) > PST(invert-and-measure 11111) >
    // PST(11111) on a five-qubit machine.
    MachineSession session(makeIbmqx4(), 101);
    BaselinePolicy baseline;
    const double p_zero = pst(
        session.runPolicy(basisStatePrep(5, 0), baseline, 16384),
        BasisState{0});
    const double p_ones =
        pst(session.runPolicy(basisStatePrep(5, allOnes(5)),
                              baseline, 16384),
            allOnes(5));
    StaticInvertAndMeasure full_inversion({allOnes(5)});
    const double p_inv =
        pst(session.runPolicy(basisStatePrep(5, allOnes(5)),
                              full_inversion, 16384),
            allOnes(5));
    EXPECT_GT(p_zero, p_inv);
    EXPECT_GT(p_inv, p_ones + 0.1);
}

TEST(PaperIntegration, Fig4BmsAnticorrelatesWithHammingWeight)
{
    // ibmqx2: BMS strongly anti-correlated with Hamming weight
    // (paper: r = -0.93, relative BMS of 11111 = 0.38).
    MachineSession session(makeIbmqx2(), 102);
    const ExhaustiveRbms rbms = characterizeDirect(
        session.backend(), {0, 1, 2, 3, 4}, 4096);
    const auto curve = rbms.relativeCurve();
    std::vector<double> weights;
    for (BasisState s = 0; s < 32; ++s)
        weights.push_back(hammingWeight(s));
    EXPECT_LT(pearson(weights, curve), -0.8);
    EXPECT_GT(curve[allOnes(5)], 0.2);
    EXPECT_LT(curve[allOnes(5)], 0.55);
    EXPECT_EQ(rbms.strongestState(), 0u);
}

TEST(PaperIntegration, Fig5MelbourneBmsFallsWithWeight)
{
    // Fig 5: mean relative BMS falls monotonically (to ~0.4-0.5)
    // over Hamming weights of 10-bit states. ESCT on the ten best
    // qubits keeps this cheap.
    MachineSession session(makeIbmqMelbourne(), 103);
    const std::vector<Qubit> ten{5, 7, 6, 11, 8, 12, 10, 13, 0, 3};
    const ExhaustiveRbms esct = characterizeSuperposition(
        session.backend(), ten, 200000);
    const auto by_weight =
        averageByHammingWeight(esct.relativeCurve(), 10);
    EXPECT_GT(by_weight[0], by_weight[3]);
    EXPECT_GT(by_weight[3], by_weight[7]);
    EXPECT_GT(by_weight[7], by_weight[10]);
    EXPECT_LT(by_weight[10], 0.6);
}

TEST(PaperIntegration, Fig6GhzBiasOnMelbourne)
{
    // Fig 6: GHZ-5 reads 00000 much more often than 11111 (ideal:
    // both 0.5; paper: 0.4 vs 0.1).
    MachineSession session(makeIbmqMelbourne(), 104);
    BaselinePolicy baseline;
    const Counts counts =
        session.runPolicy(ghzState(5), baseline, 16384);
    const double p_zero = counts.probability(0);
    const double p_ones = counts.probability(allOnes(5));
    EXPECT_GT(p_zero, 0.25);
    EXPECT_LT(p_zero, 0.5);
    EXPECT_GT(p_zero, 1.5 * p_ones);
}

TEST(PaperIntegration, Fig11Ibmqx4BiasIsNotMonotone)
{
    // Section 6.1: on ibmqx4 measurement strength does not decrease
    // monotonically with Hamming weight.
    MachineSession session(makeIbmqx4(), 105);
    const ExhaustiveRbms rbms = characterizeDirect(
        session.backend(), {0, 1, 2, 3, 4}, 4096);
    const auto curve = rbms.relativeCurve();
    // Find a pair (a, b) with HW(a) < HW(b) but strength(a) <
    // strength(b) by a solid margin: monotone bias can't do that.
    bool violation = false;
    for (BasisState a = 0; a < 32 && !violation; ++a) {
        for (BasisState b = 0; b < 32; ++b) {
            if (hammingWeight(a) < hammingWeight(b) &&
                curve[a] + 0.08 < curve[b]) {
                violation = true;
                break;
            }
        }
    }
    EXPECT_TRUE(violation);
    // Still repeatable: a second characterization agrees closely.
    MachineSession session2(makeIbmqx4(), 106);
    const ExhaustiveRbms again = characterizeDirect(
        session2.backend(), {0, 1, 2, 3, 4}, 4096);
    EXPECT_LT(meanSquaredError(curve, again.relativeCurve()),
              0.005);
}

TEST(PaperIntegration, Fig13AimFlattensBvKeyDependence)
{
    // Fig 13: across BV keys, baseline PST varies wildly with the
    // key's readout strength; AIM is higher and flatter.
    MachineSession session(makeIbmqx4(), 107);
    std::vector<double> base_pst, aim_pst;
    for (const char* key : {"0000", "1010", "0111", "1111"}) {
        NisqBenchmark bench = makeBvBenchmark("bv", 4, key);
        const auto results = session.comparePolicies(bench, 8192);
        base_pst.push_back(results[0].report.pst);
        aim_pst.push_back(results[2].report.pst);
    }
    const double base_min =
        *std::min_element(base_pst.begin(), base_pst.end());
    const double aim_min =
        *std::min_element(aim_pst.begin(), aim_pst.end());
    EXPECT_GT(aim_min, base_min + 0.05);
    EXPECT_LT(stddev(aim_pst), stddev(base_pst));
}

TEST(PaperIntegration, Fig14MitigationGainsAggregate)
{
    // Fig 14: across the Q5 suite on ibmqx4, SIM and AIM both beat
    // the baseline on average, and AIM beats SIM.
    MachineSession session(makeIbmqx4(), 108);
    double sim_gain = 0.0, aim_gain = 0.0;
    int counted = 0;
    for (const auto& bench : benchmarkSuiteQ5()) {
        const auto results = session.comparePolicies(bench, 8192);
        if (results[0].report.pst <= 0.0)
            continue;
        sim_gain += results[1].report.pst / results[0].report.pst;
        aim_gain += results[2].report.pst / results[0].report.pst;
        ++counted;
    }
    ASSERT_GT(counted, 0);
    sim_gain /= counted;
    aim_gain /= counted;
    EXPECT_GT(sim_gain, 1.0);
    EXPECT_GT(aim_gain, sim_gain);
}

TEST(PaperIntegration, Table2QaoaDegradesWithTargetWeight)
{
    // Table 2: QAOA PST for the lightest target far exceeds the
    // heaviest on melbourne.
    MachineSession session(makeIbmqMelbourne(), 109);
    BaselinePolicy baseline;
    auto run_graph = [&](const char* target) {
        NisqBenchmark bench = makeQaoaBenchmark(
            target, completeBipartite(6, fromBitString(target)), 2,
            target);
        const Counts counts =
            session.runPolicy(bench.circuit, baseline, 16384);
        // Single-string scoring, as in the Table 2 bench.
        return pst(counts, bench.correctOutput);
    };
    const double light = run_graph("010000"); // Graph-A, HW 1.
    const double heavy = run_graph("110110"); // Graph-E, HW 4.
    EXPECT_GT(light, 2.0 * heavy);
}

} // namespace
} // namespace qem
