/**
 * @file
 * Property tests that hold for EVERY mitigation policy: on a
 * noise-free backend the policy is semantically transparent (the
 * circuit's exact answer comes out unchanged), the trial budget is
 * spent exactly, and runs are reproducible per seed.
 */

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "metrics/reliability.hh"
#include "mitigation/aim_policy.hh"
#include "mitigation/matrix_correction.hh"
#include "mitigation/sim_policy.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem
{
namespace
{

/** Factory so each test gets a fresh policy instance. */
using PolicyFactory =
    std::function<std::unique_ptr<MitigationPolicy>(unsigned bits)>;

std::unique_ptr<MitigationPolicy>
makeAim(unsigned bits)
{
    // A flat RBMS profile (no preference) keeps AIM well-defined
    // without a characterization pass.
    std::vector<double> flat(std::size_t{1} << bits, 1.0);
    return std::make_unique<AdaptiveInvertAndMeasure>(
        std::make_shared<ExhaustiveRbms>(std::move(flat)));
}

struct NamedFactory
{
    const char* name;
    PolicyFactory make;
    /**
     * Sampling policies log every trial verbatim; the matrix filter
     * rewrites the histogram and may lose a shot to rounding.
     */
    bool exactTotal = true;
};

class PolicyProperties
    : public ::testing::TestWithParam<NamedFactory>
{
};

TEST_P(PolicyProperties, TransparentOnNoiselessBackend)
{
    const BasisState key = fromBitString("0110");
    const Circuit circuit = bernsteinVazirani(4, key);
    TrajectorySimulator backend(NoiseModel(5), 311);
    auto policy = GetParam().make(4);
    const Counts counts = policy->run(circuit, backend, 4096);
    EXPECT_EQ(counts.total(), 4096u);
    EXPECT_NEAR(pst(counts, key), 1.0, 1e-9) << GetParam().name;
}

TEST_P(PolicyProperties, SpendsExactTrialBudget)
{
    NoiseModel model(4);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.02),
        std::vector<double>(4, 0.15)));
    TrajectorySimulator backend(std::move(model), 312);
    Circuit circuit(4);
    circuit.h(0).cx(0, 1).measureAll();
    auto policy = GetParam().make(4);
    for (std::size_t shots : {100u, 1000u, 4097u}) {
        const std::uint64_t total =
            policy->run(circuit, backend, shots).total();
        if (GetParam().exactTotal) {
            EXPECT_EQ(total, shots) << GetParam().name;
        } else {
            EXPECT_NEAR(static_cast<double>(total),
                        static_cast<double>(shots), 4.0)
                << GetParam().name;
        }
    }
}

TEST_P(PolicyProperties, AgreesWithExactOracleOnRealizedPlan)
{
    // A fourth policy-wide property: conditional on the realized
    // mode plan, the merged log is a multinomial sample from the
    // ExactOracle's mixture. Readout-only noise keeps the backend
    // iid (no trajectory batching), so the G-test's assumptions
    // hold and alpha is the exact false-positive rate.
    NoiseModel model(4);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.03),
        std::vector<double>(4, 0.12)));
    TrajectorySimulator backend(model, 314);
    const Circuit circuit = bernsteinVazirani(3, 0b110);
    auto policy = GetParam().make(3);
    const Counts counts = policy->run(circuit, backend, 20000);
    const ModePlan plan = policy->lastPlan();
    if (plan.empty()) {
        // The matrix filter rewrites the histogram rather than
        // running inversion modes; there is no plan to condition
        // on, so the oracle property does not apply.
        GTEST_SKIP() << GetParam().name
                     << " records no mode plan";
    }
    const verify::ExactOracle oracle(model);
    const verify::CheckResult fit = verify::checkDistribution(
        counts, oracle.planDistribution(circuit, plan), 1e-6);
    EXPECT_TRUE(fit) << GetParam().name << ": " << fit.message;
}

TEST_P(PolicyProperties, ReproduciblePerSeed)
{
    NoiseModel model(4);
    model.setGate1q(0, {0.02, 0.0});
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.02),
        std::vector<double>(4, 0.15)));
    const Circuit circuit = bernsteinVazirani(3, 0b101);

    TrajectorySimulator b1(model, 313);
    TrajectorySimulator b2(model, 313);
    auto p1 = GetParam().make(3);
    auto p2 = GetParam().make(3);
    EXPECT_EQ(p1->run(circuit, b1, 2000).raw(),
              p2->run(circuit, b2, 2000).raw())
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperties,
    ::testing::Values(
        NamedFactory{"baseline",
                     [](unsigned) {
                         return std::make_unique<BaselinePolicy>();
                     }},
        NamedFactory{"sim2",
                     [](unsigned bits) {
                         return std::make_unique<
                             StaticInvertAndMeasure>(
                             twoModeStrings(bits));
                     }},
        NamedFactory{"sim4",
                     [](unsigned bits) {
                         return std::make_unique<
                             StaticInvertAndMeasure>(
                             fourModeStrings(bits));
                     }},
        NamedFactory{"sim8",
                     [](unsigned bits) {
                         return std::make_unique<
                             StaticInvertAndMeasure>(
                             multiModeStrings(bits, 3));
                     }},
        NamedFactory{"aim", makeAim},
        NamedFactory{"matrixinv",
                     [](unsigned) {
                         return std::make_unique<
                             MatrixInversionCorrection>(2048);
                     },
                     /*exactTotal=*/false}),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace qem
