/**
 * @file
 * Property tests that hold for EVERY mitigation policy: on a
 * noise-free backend the policy is semantically transparent (the
 * circuit's exact answer comes out unchanged), the trial budget is
 * spent exactly, and runs are reproducible per seed.
 */

#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "metrics/observables.hh"
#include "metrics/reliability.hh"
#include "mitigation/aim_policy.hh"
#include "mitigation/bfa_policy.hh"
#include "mitigation/matrix_correction.hh"
#include "mitigation/rebalance_policy.hh"
#include "mitigation/sim_policy.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem
{
namespace
{

/** Factory so each test gets a fresh policy instance. */
using PolicyFactory =
    std::function<std::unique_ptr<MitigationPolicy>(unsigned bits)>;

std::unique_ptr<MitigationPolicy>
makeAim(unsigned bits)
{
    // A flat RBMS profile (no preference) keeps AIM well-defined
    // without a characterization pass.
    std::vector<double> flat(std::size_t{1} << bits, 1.0);
    return std::make_unique<AdaptiveInvertAndMeasure>(
        std::make_shared<ExhaustiveRbms>(std::move(flat)));
}

std::shared_ptr<const RbmsEstimate>
flatRbms(unsigned bits)
{
    return std::make_shared<ExhaustiveRbms>(
        std::vector<double>(std::size_t{1} << bits, 1.0));
}

struct NamedFactory
{
    const char* name;
    PolicyFactory make;
    /**
     * Sampling policies log every trial verbatim; the matrix filter
     * rewrites the histogram and may lose a shot to rounding.
     */
    bool exactTotal = true;
};

class PolicyProperties
    : public ::testing::TestWithParam<NamedFactory>
{
};

TEST_P(PolicyProperties, TransparentOnNoiselessBackend)
{
    const BasisState key = fromBitString("0110");
    const Circuit circuit = bernsteinVazirani(4, key);
    TrajectorySimulator backend(NoiseModel(5), 311);
    auto policy = GetParam().make(4);
    const Counts counts = policy->run(circuit, backend, 4096);
    EXPECT_EQ(counts.total(), 4096u);
    EXPECT_NEAR(pst(counts, key), 1.0, 1e-9) << GetParam().name;
}

TEST_P(PolicyProperties, SpendsExactTrialBudget)
{
    NoiseModel model(4);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.02),
        std::vector<double>(4, 0.15)));
    TrajectorySimulator backend(std::move(model), 312);
    Circuit circuit(4);
    circuit.h(0).cx(0, 1).measureAll();
    auto policy = GetParam().make(4);
    for (std::size_t shots : {100u, 1000u, 4097u}) {
        const std::uint64_t total =
            policy->run(circuit, backend, shots).total();
        if (GetParam().exactTotal) {
            EXPECT_EQ(total, shots) << GetParam().name;
        } else {
            EXPECT_NEAR(static_cast<double>(total),
                        static_cast<double>(shots), 4.0)
                << GetParam().name;
        }
    }
}

TEST_P(PolicyProperties, AgreesWithExactOracleOnRealizedPlan)
{
    // A fourth policy-wide property: conditional on the realized
    // mode plan, the merged log is a multinomial sample from the
    // ExactOracle's mixture. Readout-only noise keeps the backend
    // iid (no trajectory batching), so the G-test's assumptions
    // hold and alpha is the exact false-positive rate.
    NoiseModel model(4);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.03),
        std::vector<double>(4, 0.12)));
    TrajectorySimulator backend(model, 314);
    const Circuit circuit = bernsteinVazirani(3, 0b110);
    auto policy = GetParam().make(3);
    const Counts counts = policy->run(circuit, backend, 20000);
    const ModePlan plan = policy->lastPlan();
    if (plan.empty()) {
        // The matrix filter rewrites the histogram rather than
        // running inversion modes; there is no plan to condition
        // on, so the oracle property does not apply.
        GTEST_SKIP() << GetParam().name
                     << " records no mode plan";
    }
    const verify::ExactOracle oracle(model);
    const verify::CheckResult fit = verify::checkDistribution(
        counts, oracle.planDistribution(circuit, plan), 1e-6);
    EXPECT_TRUE(fit) << GetParam().name << ": " << fit.message;
}

TEST_P(PolicyProperties, ReproduciblePerSeed)
{
    NoiseModel model(4);
    model.setGate1q(0, {0.02, 0.0});
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.02),
        std::vector<double>(4, 0.15)));
    const Circuit circuit = bernsteinVazirani(3, 0b101);

    TrajectorySimulator b1(model, 313);
    TrajectorySimulator b2(model, 313);
    auto p1 = GetParam().make(3);
    auto p2 = GetParam().make(3);
    EXPECT_EQ(p1->run(circuit, b1, 2000).raw(),
              p2->run(circuit, b2, 2000).raw())
        << GetParam().name;
}

// --- Family-specific properties -----------------------------------

TEST(PolicyFamily, BfaZeroTwirlGroupsEqualsBaseline)
{
    // numGroups == 0 collapses BFA to a single identity-string
    // group with no unfolding, which must be bit-for-bit the
    // baseline run on an identically seeded backend — the twirl
    // machinery adds exactly nothing when it draws nothing.
    NoiseModel model(4);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.03),
        std::vector<double>(4, 0.12)));
    const Circuit circuit = bernsteinVazirani(3, 0b101);

    TrajectorySimulator b1(model, 411);
    TrajectorySimulator b2(model, 411);
    BaselinePolicy baseline;
    BitFlipAveragePolicy bfa(BfaOptions{.numGroups = 0});
    const Counts reference = baseline.run(circuit, b1, 6000);
    const Counts twirled = bfa.run(circuit, b2, 6000);
    EXPECT_EQ(twirled.raw(), reference.raw());
    const ModePlan plan = bfa.lastPlan();
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].inversion, 0u);
    EXPECT_EQ(plan[0].shots, 6000u);
}

TEST(PolicyFamily, RebalanceIdentityPrefixEqualsBaseline)
{
    // A flat RBMS has strongest state 0; predicting outcome 0 then
    // yields the identity prefix, and the run must be bit-for-bit
    // the baseline on an identically seeded backend.
    NoiseModel model(4);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(4, 0.03),
        std::vector<double>(4, 0.12)));
    const Circuit circuit = bernsteinVazirani(3, 0b011);

    RebalanceOptions options;
    options.predictFromIdeal = false;
    options.predictedOutcome = 0;
    TrajectorySimulator b1(model, 412);
    TrajectorySimulator b2(model, 412);
    BaselinePolicy baseline;
    RebalancePolicy rebalance(flatRbms(3), options);
    const Counts reference = baseline.run(circuit, b1, 6000);
    const Counts steered = rebalance.run(circuit, b2, 6000);
    EXPECT_EQ(steered.raw(), reference.raw());
    ASSERT_EQ(rebalance.lastPlan().size(), 1u);
    EXPECT_EQ(rebalance.lastPlan()[0].inversion, 0u);
}

TEST(PolicyFamily, RebalancePlanReportsPhysicalPrefix)
{
    // The lastPlan() contract (mitigation/policy.hh): plans record
    // the *physical* preparation — the applied X-prefix — not the
    // logical identity the post-corrected log exhibits. With
    // strongest state S and prediction P the recorded inversion
    // must be P XOR S, and holdout replay through that plan
    // prepares the basis states the hardware actually read.
    std::vector<double> table(16, 1.0);
    table[0b0101] = 9.0; // Strongest readout state S = 0101.
    const auto rbms =
        std::make_shared<ExhaustiveRbms>(std::move(table));
    const BasisState key = fromBitString("0110");
    const Circuit circuit = bernsteinVazirani(4, key);

    TrajectorySimulator backend(NoiseModel(5), 413);
    RebalancePolicy rebalance(rbms); // predictFromIdeal
    const Counts counts = rebalance.run(circuit, backend, 2048);

    EXPECT_EQ(rebalance.lastPredicted(), key);
    EXPECT_EQ(RebalancePolicy::prefixFor(key, *rbms),
              key ^ BasisState{0b0101});
    ASSERT_EQ(rebalance.lastPlan().size(), 1u);
    EXPECT_EQ(rebalance.lastPlan()[0].inversion,
              key ^ BasisState{0b0101});
    EXPECT_EQ(rebalance.lastPlan()[0].shots, 2048u);
    // The steering is transparent: post-correction recovers the
    // noiseless answer even though the hardware read 0101.
    EXPECT_NEAR(pst(counts, key), 1.0, 1e-9);
}

/** Share-weighted fraction of @p plan's trials whose twirl string
 *  sets bit @p bit — the realized "half the shots are flipped"
 *  fraction the BFA symmetrization argument is about. */
double
twirledFraction(const ModePlan& plan, unsigned bit)
{
    std::uint64_t total = 0;
    std::uint64_t set = 0;
    for (const ModeShare& mode : plan) {
        total += mode.shots;
        if (getBit(mode.inversion, bit))
            set += mode.shots;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(set) /
                            static_cast<double>(total);
}

TEST(PolicyFamily, BfaExpectationInvariantUnderTwirlSeed)
{
    // BFA's whole point: with the exact symmetrized rates the
    // unfolded <Z_i> do not depend on which twirl strings were
    // drawn. A *finite* twirl set symmetrizes only approximately —
    // when a fraction f of the trials flip bit i, the residual
    // per-bit bias after unfolding is (1 - 2f)(p10 - p01)/(1 - 2p),
    // exactly zero at f = 1/2 and seed-dependent otherwise. So the
    // tolerance is combined shot noise plus the analytic bias bound
    // from the two realized twirl plans (the strings are a pure
    // function of the seed, so the bound is deterministic).
    const double p01 = 0.03;
    const double p10 = 0.12;
    const double symmetrized = 0.5 * (p01 + p10);
    NoiseModel model(3);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(3, p01), std::vector<double>(3, p10)));
    // GHZ-3: every <Z_i> sits at 0, far from the clipping region
    // of the tensored unfolding.
    Circuit circuit(3);
    circuit.h(0).cx(0, 1).cx(1, 2).measureAll();

    BfaOptions a;
    a.symmetrizedRates = std::vector<double>(3, symmetrized);
    BfaOptions b = a;
    b.twirlSeed = 987654321;
    ASSERT_NE(BitFlipAveragePolicy::twirlStrings(3, a),
              BitFlipAveragePolicy::twirlStrings(3, b));

    TrajectorySimulator backend_a(model, 414);
    TrajectorySimulator backend_b(model, 414);
    BitFlipAveragePolicy bfa_a(a);
    BitFlipAveragePolicy bfa_b(b);
    const std::size_t shots = 40000;
    const auto za =
        singleQubitZWithErrors(bfa_a.run(circuit, backend_a, shots));
    const auto zb =
        singleQubitZWithErrors(bfa_b.run(circuit, backend_b, shots));
    ASSERT_EQ(za.size(), zb.size());
    for (std::size_t i = 0; i < za.size(); ++i) {
        const unsigned bit = static_cast<unsigned>(i);
        const double sigma =
            std::sqrt(za[i].standardError * za[i].standardError +
                      zb[i].standardError * zb[i].standardError);
        const double bias_bound =
            2.0 *
            std::abs(twirledFraction(bfa_a.lastTwirlPlan(), bit) -
                     twirledFraction(bfa_b.lastTwirlPlan(), bit)) *
            (p10 - p01) / (1.0 - 2.0 * symmetrized);
        EXPECT_NEAR(za[i].value, zb[i].value,
                    5.0 * sigma + bias_bound + 0.01)
            << "bit " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperties,
    ::testing::Values(
        NamedFactory{"baseline",
                     [](unsigned) {
                         return std::make_unique<BaselinePolicy>();
                     }},
        NamedFactory{"sim2",
                     [](unsigned bits) {
                         return std::make_unique<
                             StaticInvertAndMeasure>(
                             twoModeStrings(bits));
                     }},
        NamedFactory{"sim4",
                     [](unsigned bits) {
                         return std::make_unique<
                             StaticInvertAndMeasure>(
                             fourModeStrings(bits));
                     }},
        NamedFactory{"sim8",
                     [](unsigned bits) {
                         return std::make_unique<
                             StaticInvertAndMeasure>(
                             multiModeStrings(bits, 3));
                     }},
        NamedFactory{"aim", makeAim},
        NamedFactory{"rebalance",
                     [](unsigned bits) {
                         return std::make_unique<RebalancePolicy>(
                             flatRbms(bits));
                     }},
        NamedFactory{"bfa",
                     [](unsigned) {
                         return std::make_unique<
                             BitFlipAveragePolicy>();
                     }},
        NamedFactory{"matrixinv",
                     [](unsigned) {
                         return std::make_unique<
                             MatrixInversionCorrection>(2048);
                     },
                     /*exactTotal=*/false}),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace qem
