/**
 * @file
 * Tests for systematic (coherent) gate errors: deterministic
 * over-rotations that break algorithmic symmetries.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/qaoa.hh"
#include "noise/exact.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(CoherentErrors, FullCounterRotationUndoesAGate)
{
    // X followed by a systematic RX(-pi) is the identity up to
    // global phase: the qubit reads 0 again.
    NoiseModel model(1);
    GateNoise g1;
    g1.coherentX = -M_PI;
    model.setGate1q(0, g1);
    TrajectorySimulator sim(std::move(model), 501);
    Circuit c(1);
    c.x(0).measure(0, 0);
    EXPECT_EQ(sim.run(c, 2000).get(0), 2000u);
}

TEST(CoherentErrors, SmallOverRotationLeaksPopulation)
{
    // X + RX(theta): P(read 0) = sin^2(theta/2).
    const double theta = 0.4;
    NoiseModel model(1);
    GateNoise g1;
    g1.coherentX = theta;
    model.setGate1q(0, g1);
    TrajectorySimulator sim(std::move(model), 502);
    Circuit c(1);
    c.x(0).measure(0, 0);
    const double p0 = sim.run(c, 100000).probability(0);
    EXPECT_NEAR(p0, std::sin(theta / 2) * std::sin(theta / 2),
                0.005);
}

TEST(CoherentErrors, CoherentZIsInvisibleInComputationalBasis)
{
    NoiseModel model(1);
    GateNoise g1;
    g1.coherentZ = 0.7;
    model.setGate1q(0, g1);
    TrajectorySimulator sim(std::move(model), 503);
    Circuit c(1);
    c.x(0).measure(0, 0);
    EXPECT_EQ(sim.run(c, 2000).get(1), 2000u);
}

TEST(CoherentErrors, ZZPhaseChangesInterference)
{
    // |++> -> CX (identity on |++>) -> ZZ(pi) ~ Z(x)Z -> |-->;
    // the trailing H's expose the phase: both qubits read 1.
    NoiseModel model(2);
    GateNoise g2;
    g2.coherentZZ = M_PI;
    model.setGate2q(0, 1, g2);
    TrajectorySimulator sim(std::move(model), 504);
    Circuit c(2);
    c.h(0).h(1).cx(0, 1).h(0).h(1).measureAll();
    EXPECT_EQ(sim.run(c, 2000).get(0b11), 2000u);
    // Without the coherent term the same circuit reads 00.
    TrajectorySimulator clean(NoiseModel(2), 505);
    EXPECT_EQ(clean.run(c, 2000).get(0b00), 2000u);
}

TEST(CoherentErrors, ToggleDisablesThem)
{
    NoiseModel model(1);
    GateNoise g1;
    g1.coherentX = M_PI;
    model.setGate1q(0, g1);
    TrajectoryOptions options;
    options.enableCoherentErrors = false;
    TrajectorySimulator sim(std::move(model), 506, options);
    Circuit c(1);
    c.x(0).measure(0, 0);
    EXPECT_EQ(sim.run(c, 1000).get(1), 1000u);
}

TEST(CoherentErrors, ExactAndTrajectoryAgree)
{
    NoiseModel model(3);
    for (Qubit q = 0; q < 3; ++q) {
        GateNoise g1;
        g1.errorProb = 0.01;
        g1.coherentZ = 0.15;
        g1.coherentX = -0.1;
        model.setGate1q(q, g1);
    }
    GateNoise g2;
    g2.errorProb = 0.02;
    g2.coherentZZ = 0.2;
    model.setGate2q(0, 1, g2);
    model.setGate2q(1, 2, g2);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(3, 0.02),
        std::vector<double>(3, 0.1)));

    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).rx(0.5, 0).measureAll();

    DensityMatrixSimulator exact(model, 507);
    const auto expected = exact.observedDistribution(c);
    TrajectorySimulator sampler(model, 508);
    const Counts counts = sampler.run(c, 150000);
    double tvd = 0.0;
    for (BasisState s = 0; s < 8; ++s)
        tvd += std::abs(counts.probability(s) - expected[s]);
    EXPECT_LT(tvd / 2.0, 0.01);
}

TEST(CoherentErrors, BreakQaoaComplementSymmetry)
{
    // The documented mechanism: the ideal QAOA distribution obeys
    // P(s) = P(~s); coherent over-rotations break it, making one
    // partition observably dominant even with perfect readout.
    // Note on which terms matter: global X conjugation sends
    // RZ(t) to RZ(-t) but fixes RX and ZZ, so the RZ term is the
    // symmetry breaker; the ZZ term amplifies its effect through
    // the interference of the second layer.
    const Graph g = starGraph(4, 0);
    const QaoaAngles angles = optimizeQaoaAngles(g, 2);
    const Circuit c = qaoaCircuit(g, angles);

    NoiseModel model(4);
    for (Qubit q = 0; q < 4; ++q) {
        GateNoise g1;
        g1.coherentX = 0.15;
        g1.coherentZ = 0.2;
        model.setGate1q(q, g1);
    }
    for (Qubit a = 0; a < 4; ++a) {
        for (Qubit b = a + 1; b < 4; ++b) {
            GateNoise g2;
            g2.coherentZZ = 0.25;
            model.setGate2q(a, b, g2);
        }
    }
    DensityMatrixSimulator exact(std::move(model), 509);
    const auto dist = exact.observedDistribution(c);
    const BasisState s = fromBitString("0111");
    const BasisState comp = fromBitString("1000");
    EXPECT_GT(std::abs(dist[s] - dist[comp]), 0.02)
        << "P(s)=" << dist[s] << " P(~s)=" << dist[comp];
}

} // namespace
} // namespace qem
