/**
 * @file
 * Tier-2 oracle cross-check of the recalibration loop: after the
 * scheduler refreshes a drifted machine, an AIM run driven by the
 * *refreshed* empirical profile must agree with the ExactOracle of
 * the drifted hardware — by G-test and by the shot-count-derived
 * TVD radius — and the oracle's asymptotic AIM prediction under
 * the refreshed profile must beat the frozen day-0 profile on the
 * benchmark's correct output. Tolerances follow the conventions of
 * test_oracle_paper.cc: the exact-agreement track samples on a
 * shotsPerTrajectory=1 backend so the iid null holds, and every
 * radius is derived from the actual shot count (tvdBound), never
 * hard-coded.
 *
 * Costs a full empirical bootstrap (2^3 holdout jobs at 16384
 * shots each) plus density-matrix evolutions per mode — hence the
 * tier2 label and the nightly job.
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/config.hh"
#include "harness/experiment.hh"
#include "kernels/benchmarks.hh"
#include "machine/drift.hh"
#include "machine/machines.hh"
#include "mitigation/aim_policy.hh"
#include "noise/trajectory.hh"
#include "service/job_service.hh"
#include "service/recalibration.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"
#include "verify/statistics.hh"

namespace qem
{
namespace
{

using svc::JobService;
using svc::RecalibrationScheduler;
using svc::RecalOptions;
using svc::ServiceOptions;

/** Per-check false-positive budget; the suite is seeded, so a red
 *  check reproduces instead of flaking. */
constexpr double kAlpha = 1e-6;

/** Shields the service path from ambient INVERTQ_FAULTS (the
 *  holdout jobs must sample the machine, not injected faults). */
class RecalibrationOracle : public ::testing::Test
{
  protected:
    RecalibrationOracle()
    {
        if (const char* ambient = std::getenv("INVERTQ_FAULTS")) {
            saved_ = ambient;
            unsetenv("INVERTQ_FAULTS");
        }
    }

    ~RecalibrationOracle() override
    {
        if (saved_)
            setenv("INVERTQ_FAULTS", saved_->c_str(), 1);
        else
            unsetenv("INVERTQ_FAULTS");
    }

  private:
    std::optional<std::string> saved_;
};

TEST_F(RecalibrationOracle, RefreshedAimAgreesWithDriftedOracle)
{
    const std::size_t shots = configuredShots();
    const Machine machine = makeMachine("ibmqx4");
    MachineSession session(machine, configuredSeed());

    // BV's single dominant outcome keeps the AIM candidate ranking
    // unambiguous, so the sampled run converges to the asymptotic
    // prediction (see ExactOracle::aimPrediction's contract).
    const NisqBenchmark bench = makeBvBenchmark("bv-3A", 3, "101");
    const TranspiledProgram program = session.prepare(bench.circuit);
    const std::vector<Qubit> qubits =
        measuredPhysicalQubits(program);
    ASSERT_EQ(qubits.size(), 3u);

    // Bootstrap the scheduler on day-0 hardware, then swap in the
    // day-7 drifted machine and let one pass trip and refresh.
    ServiceOptions serviceOptions;
    serviceOptions.numThreads = configuredThreads();
    JobService service(serviceOptions, 99);
    service.registerMachine(
        "ibmqx4",
        TrajectorySimulator(machine.noiseModel(), configuredSeed()));

    RecalOptions recal;
    recal.staleness.shotsPerState = 8192;
    recal.profileShotsPerState = 16384;
    RecalibrationScheduler scheduler(service, recal);
    scheduler.watchMachine("ibmqx4", machine.numQubits(), qubits);
    const auto frozen = scheduler.currentProfile("ibmqx4");

    const Machine drifted = DriftSchedule(machine, 0.5).at(7);
    ASSERT_TRUE(service.replaceMachine(
        "ibmqx4", TrajectorySimulator(drifted.noiseModel(),
                                      configuredSeed())));
    ASSERT_EQ(scheduler.checkNow(), 1u);
    ASSERT_EQ(scheduler.generation("ibmqx4"), 1u);
    const auto refreshed = scheduler.currentProfile("ibmqx4");
    ASSERT_NE(refreshed, nullptr);
    ASSERT_NE(refreshed.get(), frozen.get());

    const verify::ExactOracle oracle(drifted);
    ASSERT_TRUE(oracle.supports(program.circuit));

    // Exact-agreement track: true iid sampling of the drifted
    // machine, AIM steered by the refreshed empirical profile; the
    // realized plan's analytic mixture is the exact null.
    TrajectorySimulator iid(
        drifted.noiseModel(), configuredSeed(),
        TrajectoryOptions{.shotsPerTrajectory = 1});
    AdaptiveInvertAndMeasure aim(refreshed);
    const Counts counts = aim.run(program.circuit, iid, shots);
    const ModePlan plan = aim.lastPlan();
    ASSERT_FALSE(plan.empty());
    const std::vector<double> analytic =
        oracle.planDistribution(program.circuit, plan);

    const verify::CheckResult fit =
        verify::checkDistribution(counts, analytic, kAlpha);
    EXPECT_TRUE(fit) << fit.message;
    const verify::CheckResult radius =
        verify::checkTvdWithinBound(counts, analytic, kAlpha);
    EXPECT_TRUE(radius) << radius.message;
    std::printf("[recal-oracle] plan        tvd=%.5f bound=%.5f "
                "p=%.3g\n",
                radius.tvd, radius.bound, fit.pValue);

    // Asymptotic track: the refreshed profile's in-the-limit AIM
    // run. The realized plan ranks the candidates the same way but
    // weights shares by the *sampled* canary likelihoods, so its
    // mixture agrees with the prediction to within canary noise —
    // well inside the sampling radius — and the sampled log must
    // sit inside that radius around the prediction too.
    const verify::ExactOracle::AimPrediction prediction =
        oracle.aimPrediction(program.circuit, *refreshed, shots);
    ASSERT_FALSE(prediction.plan.empty());
    EXPECT_EQ(prediction.candidates.front(), bench.correctOutput);
    EXPECT_LT(verify::totalVariation(analytic,
                                     prediction.distribution),
              radius.bound);
    const verify::CheckResult predicted = verify::checkTvdWithinBound(
        counts, prediction.distribution, kAlpha);
    EXPECT_TRUE(predicted) << predicted.message;
    std::printf("[recal-oracle] aimPredict  tvd=%.5f bound=%.5f\n",
                predicted.tvd, predicted.bound);

    // The drift story at oracle precision: under the drifted
    // hardware, the asymptotic AIM steered by the refreshed
    // profile puts at least as much mass on the correct output as
    // the frozen day-0 profile does (ROADMAP item 3's claim,
    // analytically, before the sampled bench reproduces it).
    const verify::ExactOracle::AimPrediction frozenPrediction =
        oracle.aimPrediction(program.circuit, *frozen, shots);
    const double refreshedMass =
        prediction.distribution[bench.correctOutput];
    const double frozenMass =
        frozenPrediction.distribution[bench.correctOutput];
    EXPECT_GE(refreshedMass, frozenMass - 1e-12);
    std::printf("[recal-oracle] correct-mass refreshed=%.5f "
                "frozen=%.5f\n",
                refreshedMass, frozenMass);
}

} // namespace
} // namespace qem
