/**
 * @file
 * Unit tests for the Kraus channel factories.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noise/channels.hh"

namespace qem
{
namespace
{

TEST(Channels, DecayProbability)
{
    EXPECT_NEAR(decayProbability(0.0, 1000.0), 0.0, 1e-12);
    EXPECT_NEAR(decayProbability(1000.0, 1000.0),
                1.0 - std::exp(-1.0), 1e-12);
    EXPECT_NEAR(decayProbability(
                    100.0, std::numeric_limits<double>::infinity()),
                0.0, 1e-12);
    EXPECT_THROW(decayProbability(-1.0, 100.0),
                 std::invalid_argument);
}

TEST(Channels, DephasingProbabilityUsesPureDephasingRate)
{
    // With T2 = 2 T1 there is no pure dephasing.
    EXPECT_NEAR(dephasingProbability(500.0, 1000.0, 2000.0), 0.0,
                1e-12);
    // With T1 = inf the rate is exactly 1/T2.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_NEAR(dephasingProbability(1000.0, inf, 1000.0),
                1.0 - std::exp(-1.0), 1e-12);
    EXPECT_THROW(dephasingProbability(-1.0, 1.0, 1.0),
                 std::invalid_argument);
}

TEST(Channels, ThermalRelaxationSkipsNullProcesses)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(thermalRelaxation(100.0, inf, inf).empty());
    EXPECT_EQ(thermalRelaxation(100.0, 1000.0, 2000.0).size(), 1u);
    EXPECT_EQ(thermalRelaxation(100.0, 1000.0, 800.0).size(), 2u);
}

TEST(Channels, FactoriesRejectBadProbabilities)
{
    EXPECT_THROW(depolarizing(-0.1), std::invalid_argument);
    EXPECT_THROW(depolarizing(1.1), std::invalid_argument);
    EXPECT_THROW(bitFlip(2.0), std::invalid_argument);
    EXPECT_THROW(amplitudeDamping(-0.5), std::invalid_argument);
    EXPECT_THROW(phaseDamping(1.5), std::invalid_argument);
    EXPECT_THROW(phaseFlip(-1.0), std::invalid_argument);
}

TEST(Channels, AmplitudeDampingKrausShape)
{
    const KrausChannel ch = amplitudeDamping(0.36);
    ASSERT_EQ(ch.size(), 2u);
    EXPECT_NEAR(std::abs(ch[0][3]), 0.8, 1e-12);  // sqrt(1-g)
    EXPECT_NEAR(std::abs(ch[1][1]), 0.6, 1e-12);  // sqrt(g)
}

TEST(Channels, IsTracePreservingDetectsViolation)
{
    KrausChannel broken = bitFlip(0.2);
    broken.pop_back();
    EXPECT_FALSE(isTracePreserving(broken));
}

/** Every channel must be trace preserving across its parameter
 *  range. */
class ChannelTp : public ::testing::TestWithParam<double>
{
};

TEST_P(ChannelTp, AllChannelsTracePreserving)
{
    const double p = GetParam();
    EXPECT_TRUE(isTracePreserving(depolarizing(p))) << p;
    EXPECT_TRUE(isTracePreserving(bitFlip(p))) << p;
    EXPECT_TRUE(isTracePreserving(phaseFlip(p))) << p;
    EXPECT_TRUE(isTracePreserving(amplitudeDamping(p))) << p;
    EXPECT_TRUE(isTracePreserving(phaseDamping(p))) << p;
}

INSTANTIATE_TEST_SUITE_P(ProbabilityGrid, ChannelTp,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.99, 1.0));

} // namespace
} // namespace qem
