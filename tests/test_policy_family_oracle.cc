/**
 * @file
 * Tier-2 oracle suite for the twirling/averaging policy family:
 * Rebalance and BFA are executed on every paper workload (BV, GHZ,
 * QAOA) across all three modeled machines, and each sampled log is
 * tested against the ExactOracle's analytic prediction for the
 * realized plan. As in test_oracle_paper.cc, nothing is hard-coded:
 * the G-tests carry an explicit alpha, the TVD radii are derived
 * from the actual shot count (tvdBound), and a failing check
 * escalates onto a fresh, larger sample (checkWithEscalation) so
 * the per-test spurious-failure probability is alpha^attempts.
 *
 * The sampling model matches the exact-agreement track of the SIM/
 * AIM suite: a shotsPerTrajectory=1 backend gives true iid draws,
 * so the multinomial null actually holds. Rebalance conditions on
 * lastPlan() (one physical-prefix mode); BFA's null is subtler —
 * its *twirled* log (lastTwirledCounts) is the multinomial sample,
 * while the returned rate-unfolded log is a deterministic linear
 * image of it, so the twirled log gets the G-test and the unfolded
 * log gets a TVD radius inflated by the tensored inverse's
 * transfer norm prod_i 1/(1 - 2 p_i).
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/config.hh"
#include "harness/experiment.hh"
#include "kernels/basis.hh"
#include "kernels/benchmarks.hh"
#include "machine/machines.hh"
#include "qsim/bitstring.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"
#include "verify/statistics.hh"

namespace qem
{
namespace
{

/** Per-check false-positive budget (see test_oracle_paper.cc). */
constexpr double kAlpha = 1e-6;

/** The three paper workload families on a 5-qubit register. */
std::vector<NisqBenchmark>
familyWorkloads()
{
    return {makeBvBenchmark("bv-4A", 4, "0111"),
            makeGhzBenchmark("ghz-4", 4),
            makeQaoaBenchmark("qaoa-4A", cycleGraph(4), 1,
                              "0101")};
}

/**
 * L1 -> L1 transfer norm of the tensored symmetric inverse: the
 * factor by which unfolding can stretch the twirled log's sampling
 * deviation. Rate-0 bits contribute 1.
 */
double
unfoldInflation(const std::vector<double>& rates)
{
    double inflation = 1.0;
    for (double rate : rates)
        inflation *= 1.0 / (1.0 - 2.0 * rate);
    return inflation;
}

class PolicyFamilyOracle
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(PolicyFamilyOracle, RebalanceAgreesWithExactOracle)
{
    const std::size_t shots = configuredShots();
    const Machine machine = makeMachine(GetParam());
    MachineSession session(machine, configuredSeed());
    const verify::ExactOracle oracle(machine);
    TrajectorySimulator iid(
        machine.noiseModel(), configuredSeed(),
        TrajectoryOptions{.shotsPerTrajectory = 1});

    for (const NisqBenchmark& bench : familyWorkloads()) {
        const TranspiledProgram program =
            session.prepare(bench.circuit);
        ASSERT_TRUE(oracle.supports(program.circuit))
            << bench.name;
        const std::string label =
            std::string(GetParam()) + "/" + bench.name;

        RebalancePolicy rebalance(characterizeAuto(
            iid, measuredPhysicalQubits(program)));
        const verify::CheckResult fit = verify::checkWithEscalation(
            [&](std::size_t s) {
                return rebalance.run(program.circuit, iid, s);
            },
            shots,
            [&](const Counts& counts) {
                const std::vector<double> analytic =
                    oracle.planDistribution(program.circuit,
                                            rebalance.lastPlan());
                verify::CheckResult g = verify::checkDistribution(
                    counts, analytic, kAlpha);
                if (!g)
                    return g;
                return verify::checkTvdWithinBound(counts, analytic,
                                                   kAlpha);
            });
        EXPECT_TRUE(fit) << label << ": " << fit.message;

        // The oracle's plan derivation must mirror the policy's:
        // one mode, the physical prefix, the whole budget.
        const ModePlan realized = rebalance.lastPlan();
        ASSERT_EQ(realized.size(), 1u) << label;
        const ModePlan derived = oracle.rebalancePlan(
            rebalance.lastPredicted(), rebalance.rbms(),
            realized[0].shots);
        ASSERT_EQ(derived.size(), 1u) << label;
        EXPECT_EQ(derived[0].inversion, realized[0].inversion)
            << label;
        EXPECT_EQ(derived[0].shots, realized[0].shots) << label;
        std::printf("[rebalance] %-28s p=%.3g attempts=%u\n",
                    label.c_str(), fit.pValue, fit.attempts);
    }
}

TEST_P(PolicyFamilyOracle, BfaAgreesWithExactOracle)
{
    const std::size_t shots = configuredShots();
    const Machine machine = makeMachine(GetParam());
    MachineSession session(machine, configuredSeed());
    const verify::ExactOracle oracle(machine);
    TrajectorySimulator iid(
        machine.noiseModel(), configuredSeed(),
        TrajectoryOptions{.shotsPerTrajectory = 1});

    for (const NisqBenchmark& bench : familyWorkloads()) {
        const TranspiledProgram program =
            session.prepare(bench.circuit);
        ASSERT_TRUE(oracle.supports(program.circuit))
            << bench.name;
        const std::string label =
            std::string(GetParam()) + "/" + bench.name;

        BfaOptions options;
        options.symmetrizedRates =
            symmetrizedReadoutRates(machine, program);
        BitFlipAveragePolicy bfa(options);
        const double inflation =
            unfoldInflation(options.symmetrizedRates);

        const verify::CheckResult fit = verify::checkWithEscalation(
            [&](std::size_t s) {
                return bfa.run(program.circuit, iid, s);
            },
            shots,
            [&](const Counts& unfolded) {
                // The multinomial sample is the twirled log; the
                // oracle's mixture over the realized twirl plan is
                // its exact null.
                const verify::CheckResult g =
                    verify::checkDistribution(
                        bfa.lastTwirledCounts(),
                        oracle.planDistribution(
                            program.circuit, bfa.lastTwirlPlan()),
                        kAlpha);
                if (!g)
                    return g;
                // The unfolded log is a deterministic image of the
                // twirled one, so its deviation from the oracle's
                // unfolded prediction is the twirled sampling
                // radius stretched by the inverse's transfer norm
                // (x2 slack for the clip/renormalize projection,
                // plus the integer-rounding floor).
                const std::size_t support =
                    std::size_t{1} << unfolded.numBits();
                verify::CheckResult radius;
                radius.alpha = kAlpha;
                radius.tvd = verify::totalVariation(
                    unfolded,
                    oracle.bfaCorrectedDistribution(
                        program.circuit, bfa.lastTwirlPlan(),
                        bfa.symmetrizedRates()));
                radius.bound =
                    2.0 * inflation *
                        verify::tvdBound(
                            support,
                            bfa.lastTwirledCounts().total(),
                            kAlpha) +
                    static_cast<double>(support) /
                        static_cast<double>(unfolded.total());
                radius.passed = radius.tvd <= radius.bound;
                radius.message =
                    "unfolded tvd " + std::to_string(radius.tvd) +
                    " vs inflated bound " +
                    std::to_string(radius.bound);
                return radius;
            });
        EXPECT_TRUE(fit) << label << ": " << fit.message;
        std::printf("[bfa] %-28s tvd=%.5f bound=%.5f "
                    "attempts=%u\n",
                    label.c_str(), fit.tvd, fit.bound,
                    fit.attempts);
    }
}

INSTANTIATE_TEST_SUITE_P(Machines, PolicyFamilyOracle,
                         ::testing::Values("ibmqx2", "ibmqx4",
                                           "ibmq_melbourne"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace qem
