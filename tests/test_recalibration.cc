/**
 * @file
 * Tests of the background recalibration scheduler: empirical
 * bootstrap through the job service, the quiet null on a stable
 * machine, trip → re-profile → atomic generation swap on a drifted
 * one, pinned-generation semantics for in-flight holders, the
 * recalibration_lag health probe, manifest/flight observability,
 * and a concurrency soak (RecalSoak, in the TSan CI leg).
 *
 * Statistical conventions follow docs/verification.md: the probe's
 * two sides are seeded, so "quiet on the same backend" is a true
 * null at the configured alpha and "trips after a day-7 sigma-0.5
 * drift" is a reproducible rejection. Closeness of the refreshed
 * model to the live machine is asserted relationally (closer to
 * the drifted calibration than to the stale one) rather than with
 * a hard-coded tolerance.
 */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "machine/drift.hh"
#include "machine/machines.hh"
#include "noise/trajectory.hh"
#include "runtime/resilient_backend.hh"
#include "service/job_service.hh"
#include "service/recalibration.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "verify/statistics.hh"

namespace qem
{
namespace
{

using svc::JobService;
using svc::RecalibrationScheduler;
using svc::RecalOptions;
using svc::ServiceOptions;
using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::HealthStatus;

/** Shields every test from ambient INVERTQ_FAULTS and leaves
 *  global telemetry pristine. */
class RecalibrationTest : public ::testing::Test
{
  protected:
    RecalibrationTest()
    {
        if (const char* ambient = std::getenv("INVERTQ_FAULTS")) {
            saved_ = ambient;
            unsetenv("INVERTQ_FAULTS");
        }
        telemetry::resetAll();
    }

    ~RecalibrationTest() override
    {
        telemetry::setEnabled(false);
        telemetry::resetAll();
        if (saved_)
            setenv("INVERTQ_FAULTS", saved_->c_str(), 1);
        else
            unsetenv("INVERTQ_FAULTS");
    }

  private:
    std::optional<std::string> saved_;
};

std::vector<Qubit>
watchedQubits()
{
    return {0, 1, 2};
}

ServiceOptions
serviceOptions(unsigned threads)
{
    ServiceOptions options;
    options.numThreads = threads;
    return options;
}

/** Probe 8192 shots/state; profile 16384 so the published rows
 *  are estimated tighter than the probe can distinguish. */
RecalOptions
recalOptions()
{
    RecalOptions options;
    options.staleness.shotsPerState = 8192;
    options.profileShotsPerState = 16384;
    return options;
}

/** TVD between row @p truth of two confusion models. */
double
rowTvd(const svc::ConfusionCdf& a, const svc::ConfusionCdf& b,
       BasisState truth)
{
    const std::size_t dim = std::size_t{1} << a.numBits();
    std::vector<double> pa(dim), pb(dim);
    for (BasisState o = 0; o < dim; ++o) {
        pa[o] = a.probability(truth, o);
        pb[o] = b.probability(truth, o);
    }
    return verify::totalVariation(pa, pb);
}

std::size_t
countEvents(const std::vector<FlightEvent>& events,
            FlightEventKind kind)
{
    std::size_t n = 0;
    for (const FlightEvent& e : events) {
        if (e.kind == kind)
            ++n;
    }
    return n;
}

TEST_F(RecalibrationTest, BootstrapIsQuietOnAStableMachine)
{
    const Machine machine = makeMachine("ibmqx4");
    JobService service(serviceOptions(2), 99);
    service.registerMachine(
        "ibmqx4", TrajectorySimulator(machine.noiseModel(), 7));

    RecalibrationScheduler scheduler(service, recalOptions());
    scheduler.watchMachine("ibmqx4", machine.numQubits(),
                           watchedQubits());

    EXPECT_EQ(scheduler.generation("ibmqx4"), 0u);
    auto profile = scheduler.currentProfile("ibmqx4");
    auto confusion = scheduler.currentConfusion("ibmqx4");
    ASSERT_NE(profile, nullptr);
    ASSERT_NE(confusion, nullptr);
    EXPECT_EQ(profile->numBits(), 3u);
    EXPECT_EQ(confusion->numBits(), 3u);
    // The empirical profile is a real survival-probability table:
    // the strongest state's diagonal dominates its own row.
    const BasisState strongest = profile->strongestState();
    EXPECT_GT(confusion->probability(strongest, strongest), 0.5);

    // Cached and live samples come from the same backend through
    // the same prep circuits, so the probe is a true null here —
    // gate noise alone must never trip it.
    EXPECT_EQ(scheduler.checkNow(), 0u);
    EXPECT_EQ(scheduler.trips(), 0u);
    EXPECT_EQ(scheduler.refreshes(), 0u);
    EXPECT_EQ(scheduler.generation("ibmqx4"), 0u);

    // Bad registrations are rejected up front.
    EXPECT_THROW(scheduler.watchMachine("ibmqx4",
                                        machine.numQubits(),
                                        watchedQubits()),
                 std::invalid_argument);
    EXPECT_THROW(scheduler.watchMachine("nope", 5, {0}),
                 std::invalid_argument);
    EXPECT_THROW(
        scheduler.watchMachine("ibmqx4", machine.numQubits(), {}),
        std::invalid_argument);
    EXPECT_THROW(scheduler.generation("unwatched"),
                 std::invalid_argument);
}

TEST_F(RecalibrationTest, TripRefreshesAndSwapsAtomically)
{
    const Machine machine = makeMachine("ibmqx4");
    const DriftSchedule schedule(machine, 0.5);
    JobService service(serviceOptions(2), 99);
    service.registerMachine(
        "ibmqx4", TrajectorySimulator(machine.noiseModel(), 7));

    RecalibrationScheduler scheduler(service, recalOptions());
    scheduler.watchMachine("ibmqx4", machine.numQubits(),
                           watchedQubits());
    auto stale = scheduler.currentConfusion("ibmqx4");
    auto staleProfile = scheduler.currentProfile("ibmqx4");

    // Overnight, the machine drifts by recalibration-scale
    // factors; the service operator swaps in the day-7 hardware.
    const Machine drifted = schedule.at(7);
    ASSERT_TRUE(service.replaceMachine(
        "ibmqx4", TrajectorySimulator(drifted.noiseModel(), 7)));

    EXPECT_EQ(scheduler.checkNow(), 1u);
    EXPECT_EQ(scheduler.trips(), 1u);
    EXPECT_EQ(scheduler.refreshes(), 1u);
    EXPECT_EQ(scheduler.errors(), 0u);
    EXPECT_EQ(scheduler.generation("ibmqx4"), 1u);

    // Exactly one trip and one swap event, in that order.
    const auto events = scheduler.flightEvents();
    EXPECT_EQ(countEvents(events, FlightEventKind::RecalTrip),
              1u);
    EXPECT_EQ(countEvents(events, FlightEventKind::RecalSwap),
              1u);

    // Pinned-generation contract: the pre-swap holders still work
    // and are distinct objects from the fresh generation.
    auto refreshed = scheduler.currentConfusion("ibmqx4");
    ASSERT_NE(refreshed, nullptr);
    EXPECT_NE(refreshed.get(), stale.get());
    EXPECT_NE(scheduler.currentProfile("ibmqx4").get(),
              staleProfile.get());
    EXPECT_GT(stale->probability(0, 0), 0.0); // Still usable.

    // The refreshed rows describe the drifted machine: on every
    // probed-direction row they sit closer to the day-7 analytic
    // confusion than to the day-0 one the stale model measured.
    const svc::ConfusionCdf day0(machine.calibration(),
                                 watchedQubits());
    const svc::ConfusionCdf day7(drifted.calibration(),
                                 watchedQubits());
    const BasisState ones = 0b111;
    EXPECT_LT(rowTvd(*refreshed, day7, 0),
              rowTvd(*refreshed, day0, 0));
    EXPECT_LT(rowTvd(*refreshed, day7, ones),
              rowTvd(*refreshed, day0, ones));
    // And absolutely close on the gate-free all-zeros row: within
    // the oracle TVD radius for the profiling shot budget plus a
    // small slack for measurement-op noise in the prep circuit.
    const double radius =
        verify::tvdBound(8, recalOptions().profileShotsPerState,
                         1e-6);
    EXPECT_LT(rowTvd(*refreshed, day7, 0), radius + 0.01);

    // The new generation is consistent with the new machine: the
    // next pass is quiet again.
    EXPECT_EQ(scheduler.checkNow(), 0u);
    EXPECT_EQ(scheduler.trips(), 1u);
    EXPECT_EQ(scheduler.generation("ibmqx4"), 1u);
}

TEST_F(RecalibrationTest, ManifestCountersAndLagProbe)
{
    telemetry::setEnabled(true);
    const Machine machine = makeMachine("ibmqx4");
    JobService service(serviceOptions(2), 99);
    service.registerMachine(
        "ibmqx4", TrajectorySimulator(machine.noiseModel(), 7));

    RecalibrationScheduler scheduler(service, recalOptions());
    scheduler.watchMachine("ibmqx4", machine.numQubits(),
                           watchedQubits());

    auto lag = scheduler.lagProbe();
    EXPECT_EQ(lag->name(), "recalibration_lag");
    EXPECT_EQ(lag->check().status, HealthStatus::Healthy);

    const DriftSchedule schedule(machine, 0.5);
    ASSERT_TRUE(service.replaceMachine(
        "ibmqx4",
        TrajectorySimulator(schedule.at(7).noiseModel(), 7)));
    ASSERT_EQ(scheduler.checkNow(), 1u);

    // Counters and the swap-generation gauge.
    const auto snapshot = telemetry::metrics().snapshot();
    EXPECT_EQ(snapshot.counters.at("service.recal.trips"), 1u);
    EXPECT_EQ(snapshot.counters.at("service.recal.refreshes"),
              1u);
    EXPECT_EQ(snapshot.gauges.at("service.recal.swap_generation"),
              1.0);

    // The trip was answered: lag is clear again.
    EXPECT_EQ(lag->check().status, HealthStatus::Healthy);
    EXPECT_EQ(lag->check().value, 0.0);

    // The service manifest carries the scheduler's section with a
    // monotone swap_generation.
    const telemetry::JsonValue doc = service.summaryJson();
    const telemetry::JsonValue* recal =
        doc.find("recalibration");
    ASSERT_NE(recal, nullptr);
    EXPECT_EQ(recal->find("trips")->asUint(), 1u);
    EXPECT_EQ(recal->find("refreshes")->asUint(), 1u);
    const telemetry::JsonValue* machines =
        recal->find("machines");
    ASSERT_NE(machines, nullptr);
    ASSERT_EQ(machines->size(), 1u);
    const telemetry::JsonValue& entry = machines->items()[0];
    EXPECT_EQ(entry.find("machine")->asString(), "ibmqx4");
    EXPECT_EQ(entry.find("swap_generation")->asUint(), 1u);
    EXPECT_EQ(entry.find("trips")->asUint(), 1u);
    EXPECT_EQ(entry.find("refreshes")->asUint(), 1u);
    const telemetry::JsonValue* flight = recal->find("flight");
    ASSERT_NE(flight, nullptr);
    EXPECT_GE(flight->size(), 2u); // recal_trip + recal_swap.

    // One flight event of each kind per refresh — the acceptance
    // invariant the status page relies on.
    std::size_t trips = 0, swaps = 0;
    for (const telemetry::JsonValue& event : flight->items()) {
        const telemetry::JsonValue* kind = event.find("event");
        if (kind == nullptr)
            continue;
        if (kind->asString() == "recal_trip")
            ++trips;
        if (kind->asString() == "recal_swap")
            ++swaps;
    }
    EXPECT_EQ(trips, 1u);
    EXPECT_EQ(swaps, 1u);
}

/**
 * A backend that delegates to a real simulator for a limited
 * number of run() calls, then fails fatally — the deterministic
 * way to let the staleness probe succeed (and trip) but make the
 * subsequent re-profiling sweep fail. Clones share the budget.
 */
class FailAfterBackend : public ShardedBackend
{
  public:
    FailAfterBackend(std::shared_ptr<const ShardedBackend> inner,
                     std::shared_ptr<std::atomic<long>> budget)
        : inner_(std::move(inner)), budget_(std::move(budget))
    {
    }

    Counts run(const Circuit& circuit, std::size_t shots) override
    {
        Rng rng(0);
        return run(circuit, shots, rng);
    }

    Counts run(const Circuit& circuit, std::size_t shots,
               Rng& rng) const override
    {
        if (budget_->fetch_sub(1) <= 0)
            throw FatalError("backend taken offline");
        return inner_->run(circuit, shots, rng);
    }

    unsigned numQubits() const override
    {
        return inner_->numQubits();
    }

    std::unique_ptr<ShardedBackend> clone() const override
    {
        return std::make_unique<FailAfterBackend>(inner_,
                                                  budget_);
    }

  private:
    std::shared_ptr<const ShardedBackend> inner_;
    std::shared_ptr<std::atomic<long>> budget_;
};

TEST_F(RecalibrationTest, FailedRefreshLeavesLagThenRecovers)
{
    const Machine machine = makeMachine("ibmqx4");
    const DriftSchedule schedule(machine, 0.5);
    const Machine drifted = schedule.at(7);
    JobService service(serviceOptions(2), 99);
    service.registerMachine(
        "ibmqx4", TrajectorySimulator(machine.noiseModel(), 7));

    RecalibrationScheduler scheduler(service, recalOptions());
    scheduler.watchMachine("ibmqx4", machine.numQubits(),
                           watchedQubits());
    auto lag = scheduler.lagProbe();

    // Swap in drifted hardware whose run budget covers the probe's
    // holdout jobs (2 states x 8192 shots / 256-shot batches = 64
    // runs) but dies during the 8-state re-profiling sweep.
    auto inner = std::make_shared<const TrajectorySimulator>(
        drifted.noiseModel(), 7);
    auto budget = std::make_shared<std::atomic<long>>(80);
    ASSERT_TRUE(service.replaceMachine(
        "ibmqx4", FailAfterBackend(inner, budget)));

    // Probe trips, re-profiling fails: the trip stays outstanding.
    EXPECT_EQ(scheduler.checkNow(), 0u);
    EXPECT_EQ(scheduler.trips(), 1u);
    EXPECT_EQ(scheduler.refreshes(), 0u);
    EXPECT_GE(scheduler.errors(), 1u);
    EXPECT_EQ(scheduler.generation("ibmqx4"), 0u);
    EXPECT_EQ(lag->check().status, HealthStatus::Degraded);
    EXPECT_EQ(lag->check().value, 1.0);

    // The machine comes back healthy; the next pass trips again
    // and this time the refresh lands, clearing the lag.
    ASSERT_TRUE(service.replaceMachine(
        "ibmqx4", TrajectorySimulator(drifted.noiseModel(), 7)));
    EXPECT_EQ(scheduler.checkNow(), 1u);
    EXPECT_EQ(scheduler.trips(), 2u);
    EXPECT_EQ(scheduler.refreshes(), 1u);
    EXPECT_EQ(scheduler.generation("ibmqx4"), 1u);
    EXPECT_EQ(lag->check().status, HealthStatus::Healthy);
}

// ---------------------------------------------------------------
// RecalSoak: tenant traffic racing machine swaps and recal passes
// (runs under TSan in CI next to the other service soaks).
// ---------------------------------------------------------------

TEST(RecalSoak, ConcurrentSubmitSwapAndCheck)
{
    if (std::getenv("INVERTQ_FAULTS"))
        GTEST_SKIP() << "soak asserts exact totals; fault "
                        "injection changes them";
    const Machine machine = makeMachine("ibmqx4");
    const DriftSchedule schedule(machine, 0.5);
    JobService service(ServiceOptions{}, 99);
    service.registerMachine(
        "ibmqx4", TrajectorySimulator(machine.noiseModel(), 7));

    // Small budgets: the soak exercises interleavings, not power.
    RecalOptions options;
    options.staleness.shotsPerState = 1024;
    options.profileShotsPerState = 2048;
    RecalibrationScheduler scheduler(service, options);
    scheduler.watchMachine("ibmqx4", machine.numQubits(),
                           watchedQubits());

    Circuit circuit(machine.numQubits(), 3);
    circuit.x(0);
    circuit.x(2);
    for (Clbit c = 0; c < 3; ++c)
        circuit.measure(static_cast<Qubit>(c), c);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> completedShots{0};

    std::vector<std::thread> tenants;
    for (int t = 0; t < 3; ++t) {
        tenants.emplace_back([&, t] {
            const std::string tenant =
                "tenant" + std::to_string(t);
            for (std::uint64_t i = 0; !done.load() && i < 64;
                 ++i) {
                svc::JobOptions jo;
                jo.tenant = tenant;
                jo.jobKey = i;
                try {
                    completedShots +=
                        service
                            .submit("ibmqx4", circuit, 128, jo)
                            .get()
                            .total();
                } catch (const BudgetExhausted&) {
                    // Admission control under churn is fine.
                }
            }
        });
    }
    std::thread checker([&] {
        for (int i = 0; i < 3; ++i)
            (void)scheduler.checkNow();
    });
    std::thread swapper([&] {
        for (std::uint64_t day = 1; day <= 3; ++day) {
            EXPECT_TRUE(service.replaceMachine(
                "ibmqx4",
                TrajectorySimulator(
                    schedule.at(day).noiseModel(), 7)));
            (void)service.summaryJson();
        }
    });

    checker.join();
    swapper.join();
    done.store(true);
    for (auto& t : tenants)
        t.join();
    service.drain();

    // Invariants, not exact trip counts: every completed tenant
    // job kept its full shot total, the generation chain is
    // consistent, and the manifest renders mid-churn state.
    EXPECT_EQ(completedShots.load() % 128, 0u);
    EXPECT_GE(scheduler.trips(), scheduler.refreshes());
    EXPECT_EQ(scheduler.generation("ibmqx4"),
              scheduler.refreshes());
    const telemetry::JsonValue doc = service.summaryJson();
    ASSERT_NE(doc.find("recalibration"), nullptr);
    EXPECT_EQ(doc.find("recalibration")
                  ->find("machines")
                  ->size(),
              1u);
}

TEST(RecalSoak, BackgroundThreadStartStop)
{
    const Machine machine = makeMachine("ibmqx2");
    JobService service(ServiceOptions{}, 5);
    service.registerMachine(
        "ibmqx2", TrajectorySimulator(machine.noiseModel(), 3));

    RecalOptions options;
    options.staleness.shotsPerState = 256;
    options.profileShotsPerState = 512;
    RecalibrationScheduler scheduler(service, options);
    scheduler.watchMachine("ibmqx2", machine.numQubits(),
                           {0, 1});

    EXPECT_THROW(scheduler.start(0.0), std::invalid_argument);
    scheduler.start(0.005);
    EXPECT_THROW(scheduler.start(0.005), std::logic_error);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    scheduler.stop();
    scheduler.stop(); // Idempotent.
    // Stable machine: however many passes ran, none tripped.
    EXPECT_EQ(scheduler.trips(), 0u);
    // The scheduler can be restarted after a stop.
    scheduler.start(0.005);
    scheduler.stop();
}

} // namespace
} // namespace qem
