/**
 * @file
 * Failure-injection tests: a backend that fails mid-experiment must
 * not corrupt policy state, and partial results must never be
 * returned as if complete. Exercises the promoted fault injector
 * (src/runtime/fault_injection.hh) against the policies, the
 * parallel runtime's per-batch retry path, the salvage/refusal
 * semantics, and the AIM canary-clamp regression.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "mitigation/aim_policy.hh"
#include "mitigation/matrix_correction.hh"
#include "mitigation/sim_policy.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "runtime/fault_injection.hh"
#include "runtime/parallel_backend.hh"
#include "telemetry/telemetry.hh"

namespace qem
{
namespace
{

/**
 * Hermetic fixture: CI's fault-injection smoke re-runs this suite
 * with INVERTQ_FAULTS exported, which would stack a second injector
 * inside every ParallelBackend and break the exact retry/drop-count
 * expectations below. Each test clears the ambient spec and
 * restores it on teardown; tests that exercise the env path set it
 * explicitly themselves.
 */
class FaultInjection : public ::testing::Test
{
  protected:
    FaultInjection()
    {
        if (const char* ambient = std::getenv("INVERTQ_FAULTS")) {
            saved_ = ambient;
            unsetenv("INVERTQ_FAULTS");
        }
    }

    ~FaultInjection() override
    {
        if (saved_)
            setenv("INVERTQ_FAULTS", saved_->c_str(), 1);
        else
            unsetenv("INVERTQ_FAULTS");
    }

  private:
    std::optional<std::string> saved_;
};

/** Injector over an ideal 3-qubit simulator (outcome always 0). */
FaultInjectingBackend
flakyIdeal(FaultOptions options)
{
    return FaultInjectingBackend(
        std::make_unique<IdealSimulator>(3, 42), options);
}

/** Backend that throws on calls [fail_after, ...). */
FaultInjectingBackend
failingFrom(std::int64_t fail_after)
{
    FaultOptions options;
    options.failAfter = fail_after;
    return flakyIdeal(options);
}

/** Runtime options with retries on and near-zero backoff sleeps. */
RuntimeOptions
fastRuntime(unsigned threads, std::size_t batch_size,
            unsigned max_retries,
            SalvageMode salvage = SalvageMode::FailFast)
{
    RuntimeOptions options;
    options.numThreads = threads;
    options.batchSize = batch_size;
    options.maxRetries = max_retries;
    options.backoff.baseSeconds = 1e-5;
    options.backoff.maxSeconds = 1e-4;
    options.salvage = salvage;
    return options;
}

TEST_F(FaultInjection, SimPropagatesBackendFailure)
{
    FaultInjectingBackend backend =
        failingFrom(2); // Fails on the third mode.
    StaticInvertAndMeasure sim;
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(sim.run(c, backend, 1000), std::runtime_error);
    // The policy is still usable against a healthy backend.
    FaultInjectingBackend healthy = failingFrom(100);
    EXPECT_EQ(sim.run(c, healthy, 1000).total(), 1000u);
}

TEST_F(FaultInjection, AimPropagatesCanaryFailure)
{
    FaultInjectingBackend backend =
        failingFrom(0); // Fails immediately (canaries).
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(aim.run(c, backend, 1000), std::runtime_error);
}

TEST_F(FaultInjection, AimPropagatesTailoredPhaseFailure)
{
    FaultInjectingBackend backend =
        failingFrom(4); // Canaries pass, tailored fails.
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(aim.run(c, backend, 1000), std::runtime_error);
    EXPECT_GE(backend.calls(), 4u);
}

TEST_F(FaultInjection, MatrixCorrectionPropagatesCalibrationFailure)
{
    FaultInjectingBackend backend =
        failingFrom(1); // First calibration circuit only.
    MatrixInversionCorrection minv(512);
    const Circuit c = basisStatePrep(3, 0b101);
    EXPECT_THROW(minv.run(c, backend, 1000), std::runtime_error);
}

// --- AIM canary clamp regression (formerly UB for shots <= 4) ---

TEST_F(FaultInjection, AimRejectsBudgetsTooSmallToSplit)
{
    // std::clamp(x, 4, shots - 1) had lo > hi for shots <= 4 —
    // undefined behavior caught by UBSan. Tiny budgets must be
    // rejected with a clear error instead.
    FaultInjectingBackend backend = failingFrom(1000); // Healthy.
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    Circuit c(3);
    c.measureAll();
    for (std::size_t shots = 1; shots <= 4; ++shots) {
        EXPECT_THROW(aim.run(c, backend, shots),
                     std::invalid_argument)
            << "shots = " << shots;
    }
    // Exactly 5 shots is the smallest valid split: 4 canaries + 1
    // tailored trial.
    EXPECT_EQ(aim.run(c, backend, 5).total(), 5u);
    EXPECT_EQ(aim.run(c, backend, 6).total(), 6u);
}

// --- Per-batch retry through the parallel runtime ---

TEST_F(FaultInjection, RetriedBatchReplaysIdenticalCounts)
{
    // A transient one-shot failure is retried; the retried batch
    // re-derives its index-keyed substream, so the merged log is
    // bit-identical to the fault-free run under the same seed.
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    const Circuit circuit =
        bernsteinVazirani(4, fromBitString("1011"));

    ParallelBackend clean(proto, 2019, fastRuntime(1, 64, 2));
    const Counts expected = clean.run(circuit, 1024);

    FaultOptions faults;
    faults.failAfter = 3; // Fourth batch fails once...
    faults.failCount = 1; // ...then the backend heals.
    const FaultInjectingBackend flaky(proto.clone(), faults);
    ParallelBackend retried(flaky, 2019, fastRuntime(1, 64, 2));
    const Counts actual = retried.run(circuit, 1024);

    EXPECT_EQ(actual.raw(), expected.raw());
    EXPECT_EQ(actual.total(), 1024u);
    const RunOutcome& outcome = retried.lastOutcome();
    EXPECT_EQ(outcome.retriedBatches, 1u);
    EXPECT_EQ(outcome.totalRetries, 1u);
    EXPECT_EQ(outcome.droppedBatches, 0u);
    EXPECT_TRUE(outcome.complete());
    EXPECT_TRUE(outcome.degraded());
    EXPECT_TRUE(retried.lastRunStats().valid);
}

TEST_F(FaultInjection, MultiThreadedTransientFaultsStillConverge)
{
    // Rate faults on 4 workers: which batches fail depends on
    // scheduling, but every retried batch replays its substream,
    // so the merged histogram matches the clean run regardless.
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    const Circuit circuit =
        bernsteinVazirani(4, fromBitString("1011"));

    ParallelBackend clean(proto, 5, fastRuntime(4, 32, 0));
    const Counts expected = clean.run(circuit, 2048);

    FaultOptions faults;
    faults.failureRate = 0.2;
    faults.seed = 13;
    const FaultInjectingBackend flaky(proto.clone(), faults);
    ParallelBackend retried(flaky, 5, fastRuntime(4, 32, 10));
    const Counts actual = retried.run(circuit, 2048);

    EXPECT_EQ(actual.raw(), expected.raw());
    EXPECT_TRUE(retried.lastOutcome().complete());
}

TEST_F(FaultInjection, ExhaustedRetriesThrowTaxonomyType)
{
    // Every call on every worker fails: retries run out and the
    // run aborts with BudgetExhausted (a BackendError).
    const FaultInjectingBackend flaky(
        std::make_unique<IdealSimulator>(3, 42), [] {
            FaultOptions o;
            o.failAfter = 0;
            return o;
        }());
    Circuit c(3);
    c.measureAll();
    ParallelBackend backend(flaky, 11, fastRuntime(2, 32, 2));
    EXPECT_THROW(backend.run(c, 256), BudgetExhausted);
    // The failed run must not report stale throughput.
    EXPECT_FALSE(backend.lastRunStats().valid);
}

TEST_F(FaultInjection, FatalFaultsAreNeverRetried)
{
    FaultOptions faults;
    faults.failAfter = 0;
    faults.kind = FaultKind::Fatal;
    const FaultInjectingBackend flaky(
        std::make_unique<IdealSimulator>(3, 42), faults);
    Circuit c(3);
    c.measureAll();
    ParallelBackend backend(flaky, 11, fastRuntime(2, 32, 5));
    EXPECT_THROW(backend.run(c, 256), FatalError);
    EXPECT_FALSE(backend.lastRunStats().valid);
}

TEST_F(FaultInjection, SalvageModeDropsBatchesAndReportsTheLoss)
{
    // A permanently-failing worker pair under DropBatches: the run
    // completes, reports zero completed shots, and the histogram is
    // empty rather than partial garbage.
    const FaultInjectingBackend flaky(
        std::make_unique<IdealSimulator>(3, 42), [] {
            FaultOptions o;
            o.failAfter = 0;
            return o;
        }());
    Circuit c(3);
    c.measureAll();
    ParallelBackend backend(
        flaky, 11,
        fastRuntime(2, 32, 1, SalvageMode::DropBatches));
    const Counts counts = backend.run(c, 128);
    EXPECT_EQ(counts.total(), 0u);
    const RunOutcome& outcome = backend.lastOutcome();
    EXPECT_EQ(outcome.droppedBatches, 4u);
    EXPECT_EQ(outcome.completedShots, 0u);
    EXPECT_EQ(outcome.requestedShots, 128u);
    EXPECT_FALSE(outcome.complete());
    EXPECT_TRUE(backend.lastRunStats().valid);
    EXPECT_NE(backend.lastRunStats().toString().find("degraded"),
              std::string::npos);
}

TEST_F(FaultInjection, PoliciesRefuseToMergeSalvagedPartialModes)
{
    // Under-budget modes must never be folded into a merged policy
    // histogram as if complete (mitigation-aware failure handling).
    FaultOptions faults;
    faults.failureRate = 0.7;
    faults.seed = 3;
    const FaultInjectingBackend flaky(
        std::make_unique<IdealSimulator>(3, 42), faults);
    ParallelBackend salvaging(
        flaky, 11,
        fastRuntime(2, 16, 0, SalvageMode::DropBatches));
    Circuit c(3);
    c.measureAll();

    StaticInvertAndMeasure sim;
    EXPECT_THROW(sim.run(c, salvaging, 512), BudgetExhausted);

    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    EXPECT_THROW(aim.run(c, salvaging, 512), BudgetExhausted);
}

TEST_F(FaultInjection, EnvSelectedFaultsExerciseTheRetryPath)
{
    // INVERTQ_FAULTS wraps every worker clone inside the runtime;
    // with transient faults and retries the run still converges to
    // the fault-free histogram.
    const TrajectorySimulator proto(makeIbmqx4().noiseModel(), 7);
    const Circuit circuit =
        bernsteinVazirani(4, fromBitString("1011"));
    ParallelBackend clean(proto, 5, fastRuntime(2, 64, 0));
    const Counts expected = clean.run(circuit, 1024);

    ASSERT_EQ(setenv("INVERTQ_FAULTS", "rate=0.25,seed=21", 1), 0);
    ParallelBackend faulty(proto, 5, fastRuntime(2, 64, 10));
    ASSERT_EQ(unsetenv("INVERTQ_FAULTS"), 0);
    EXPECT_EQ(faulty.run(circuit, 1024).raw(), expected.raw());
}

TEST_F(FaultInjection, MalformedEnvSpecFailsLoudly)
{
    ASSERT_EQ(setenv("INVERTQ_FAULTS", "rate=lots", 1), 0);
    const IdealSimulator proto(3, 42);
    EXPECT_THROW(ParallelBackend(proto, 1, fastRuntime(1, 32, 0)),
                 std::invalid_argument);
    ASSERT_EQ(unsetenv("INVERTQ_FAULTS"), 0);
}

// --- Failure telemetry semantics ---

TEST_F(FaultInjection, FailedPolicyRunsDoNotCountShots)
{
    // Shot counters tick on completion: a run that aborts must not
    // inflate policy.sim.shots / policy.aim.* in manifests.
    telemetry::resetAll();
    telemetry::setEnabled(true);
    Circuit c(3);
    c.measureAll();

    FaultInjectingBackend failing = failingFrom(2);
    StaticInvertAndMeasure sim;
    EXPECT_THROW(sim.run(c, failing, 1000), std::runtime_error);
    EXPECT_EQ(
        telemetry::metrics().counter("policy.sim.shots").value(),
        0u);
    EXPECT_EQ(
        telemetry::metrics().counter("policy.sim.runs").value(),
        0u);

    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    FaultInjectingBackend canaryFail = failingFrom(0);
    EXPECT_THROW(aim.run(c, canaryFail, 1000), std::runtime_error);
    EXPECT_EQ(telemetry::metrics()
                  .counter("policy.aim.canary_shots")
                  .value(),
              0u);
    EXPECT_EQ(telemetry::metrics()
                  .counter("policy.aim.bulk_shots")
                  .value(),
              0u);

    // A healthy run counts exactly the merged totals.
    FaultInjectingBackend healthy = failingFrom(1000);
    EXPECT_EQ(sim.run(c, healthy, 1000).total(), 1000u);
    EXPECT_EQ(
        telemetry::metrics().counter("policy.sim.shots").value(),
        1000u);
    EXPECT_EQ(aim.run(c, healthy, 1000).total(), 1000u);
    const std::uint64_t canary = telemetry::metrics()
                                     .counter(
                                         "policy.aim.canary_shots")
                                     .value();
    const std::uint64_t bulk =
        telemetry::metrics().counter("policy.aim.bulk_shots").value();
    EXPECT_EQ(canary + bulk, 1000u);
    telemetry::setEnabled(false);
    telemetry::resetAll();
}

TEST_F(FaultInjection, RetryTelemetryCountersAccumulate)
{
    telemetry::resetAll();
    telemetry::setEnabled(true);
    const FaultInjectingBackend flaky(
        std::make_unique<IdealSimulator>(3, 42), [] {
            FaultOptions o;
            o.failAfter = 0;
            return o;
        }());
    Circuit c(3);
    c.measureAll();
    ParallelBackend backend(
        flaky, 11,
        fastRuntime(2, 32, 1, SalvageMode::DropBatches));
    (void)backend.run(c, 64);
    EXPECT_EQ(
        telemetry::metrics().counter("runtime.retries").value(),
        2u); // 2 batches x 1 retry each.
    EXPECT_EQ(telemetry::metrics()
                  .counter("runtime.dropped_batches")
                  .value(),
              2u);
    EXPECT_EQ(telemetry::metrics()
                  .histogram("runtime.backoff_seconds")
                  .count(),
              2u);
    telemetry::setEnabled(false);
    telemetry::resetAll();
}

// --- Stale-stats regression (MachineSession::lastRunStats) ---

TEST_F(FaultInjection, FailedSessionRunInvalidatesStats)
{
    MachineSession session(makeIbmqx4(), 7); // Serial path.
    BaselinePolicy baseline;
    Circuit circuit(3);
    circuit.measureAll();
    (void)session.runPolicy(circuit, baseline, 512);
    ASSERT_NE(session.lastRunStats(), nullptr);
    EXPECT_EQ(session.lastRunStats()->shots, 512u);

    // AIM rejects the budget before any shot executes; the session
    // must not keep showing the previous run's throughput.
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    EXPECT_THROW(session.runPolicy(circuit, aim, 3),
                 std::invalid_argument);
    EXPECT_EQ(session.lastRunStats(), nullptr);
}

TEST_F(FaultInjection, CsvHelpersSurviveAdversarialCells)
{
    AsciiTable table({"name", "value"});
    table.addRow({"with,comma", "with\"quote"});
    table.addRow({"with\nnewline", "plain"});
    const std::string csv = table.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);

    Counts counts(2);
    counts.add(0b01, 3);
    counts.add(0b10, 1);
    const std::string dump = countsToCsv(counts);
    EXPECT_NE(dump.find("outcome,count,probability"),
              std::string::npos);
    EXPECT_NE(dump.find("10,3,0.75"), std::string::npos);
}

} // namespace
} // namespace qem
