/**
 * @file
 * Failure-injection tests: a backend that fails mid-experiment must
 * not corrupt policy state, and partial results must never be
 * returned as if complete.
 */

#include <gtest/gtest.h>

#include "harness/table.hh"
#include "kernels/basis.hh"
#include "mitigation/aim_policy.hh"
#include "mitigation/matrix_correction.hh"
#include "mitigation/sim_policy.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

/** Backend that throws after a configurable number of run calls. */
class FlakyBackend : public Backend
{
  public:
    FlakyBackend(unsigned n, int fail_after)
        : n_(n), failAfter_(fail_after)
    {
    }

    Counts run(const Circuit& circuit, std::size_t shots) override
    {
        if (calls_++ >= failAfter_)
            throw std::runtime_error("backend lost connection");
        Counts counts(circuit.numClbits());
        counts.add(0, shots);
        return counts;
    }

    unsigned numQubits() const override { return n_; }
    int calls() const { return calls_; }

  private:
    unsigned n_;
    int failAfter_;
    int calls_ = 0;
};

TEST(FaultInjection, SimPropagatesBackendFailure)
{
    FlakyBackend backend(3, 2); // Fails on the third mode.
    StaticInvertAndMeasure sim;
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(sim.run(c, backend, 1000), std::runtime_error);
    // The policy is still usable against a healthy backend.
    FlakyBackend healthy(3, 100);
    EXPECT_EQ(sim.run(c, healthy, 1000).total(), 1000u);
}

TEST(FaultInjection, AimPropagatesCanaryFailure)
{
    FlakyBackend backend(3, 0); // Fails immediately (canaries).
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(aim.run(c, backend, 1000), std::runtime_error);
}

TEST(FaultInjection, AimPropagatesTailoredPhaseFailure)
{
    FlakyBackend backend(3, 4); // Canaries pass, tailored fails.
    auto rbms = std::make_shared<ExhaustiveRbms>(
        std::vector<double>(8, 1.0));
    AdaptiveInvertAndMeasure aim(rbms);
    Circuit c(3);
    c.measureAll();
    EXPECT_THROW(aim.run(c, backend, 1000), std::runtime_error);
    EXPECT_GE(backend.calls(), 4);
}

TEST(FaultInjection, MatrixCorrectionPropagatesCalibrationFailure)
{
    FlakyBackend backend(3, 1); // First calibration circuit only.
    MatrixInversionCorrection minv(512);
    const Circuit c = basisStatePrep(3, 0b101);
    EXPECT_THROW(minv.run(c, backend, 1000), std::runtime_error);
}

TEST(FaultInjection, CsvHelpersSurviveAdversarialCells)
{
    AsciiTable table({"name", "value"});
    table.addRow({"with,comma", "with\"quote"});
    table.addRow({"with\nnewline", "plain"});
    const std::string csv = table.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);

    Counts counts(2);
    counts.add(0b01, 3);
    counts.add(0b10, 1);
    const std::string dump = countsToCsv(counts);
    EXPECT_NE(dump.find("outcome,count,probability"),
              std::string::npos);
    EXPECT_NE(dump.find("10,3,0.75"), std::string::npos);
}

} // namespace
} // namespace qem
