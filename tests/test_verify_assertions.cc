/**
 * @file
 * Unit tests for the statistical assertion helpers: each check's
 * pass/fail semantics, the explicit alpha plumbing, and the
 * escalation driver.
 */

#include <random>

#include <gtest/gtest.h>

#include "verify/assertions.hh"

namespace qem::verify
{
namespace
{

Counts
sampleFrom(const std::vector<double>& probs, std::size_t shots,
           unsigned num_bits, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::discrete_distribution<int> draw(probs.begin(),
                                         probs.end());
    Counts counts(num_bits);
    for (std::size_t i = 0; i < shots; ++i)
        counts.add(static_cast<BasisState>(draw(rng)));
    return counts;
}

TEST(VerifyAssertions, CheckDistributionAcceptsTrueModel)
{
    const std::vector<double> probs = {0.55, 0.25, 0.15, 0.05};
    const CheckResult r = checkDistribution(
        sampleFrom(probs, 8000, 2, 3), probs, 1e-6);
    EXPECT_TRUE(r) << r.message;
    EXPECT_EQ(r.alpha, 1e-6);
    EXPECT_GT(r.bound, 0.0);
}

TEST(VerifyAssertions, CheckDistributionRejectsWrongModel)
{
    const std::vector<double> truth = {0.55, 0.25, 0.15, 0.05};
    const std::vector<double> wrong = {0.25, 0.25, 0.25, 0.25};
    const CheckResult r = checkDistribution(
        sampleFrom(truth, 8000, 2, 5), wrong, 1e-6);
    EXPECT_FALSE(r);
    EXPECT_LT(r.pValue, 1e-6);
}

TEST(VerifyAssertions, CheckTvdWithinBoundAcceptsTrueModel)
{
    const std::vector<double> probs = {0.7, 0.1, 0.1, 0.1};
    const CheckResult r = checkTvdWithinBound(
        sampleFrom(probs, 16000, 2, 9), probs, 1e-6);
    EXPECT_TRUE(r) << r.message;
    EXPECT_LE(r.tvd, r.bound);
}

TEST(VerifyAssertions, CheckSameDistributionSemantics)
{
    const std::vector<double> probs = {0.5, 0.3, 0.1, 0.1};
    const Counts a = sampleFrom(probs, 6000, 2, 13);
    const Counts b = sampleFrom(probs, 6000, 2, 17);
    EXPECT_TRUE(checkSameDistribution(a, b, 1e-6));

    const Counts c =
        sampleFrom({0.1, 0.1, 0.3, 0.5}, 6000, 2, 19);
    const CheckResult r = checkSameDistribution(a, c, 1e-6);
    EXPECT_FALSE(r);
    EXPECT_LT(r.pValue, 1e-9);
}

TEST(VerifyAssertions, CheckProbAtLeastUsesWilsonBound)
{
    Counts counts(1);
    counts.add(1, 900);
    counts.add(0, 100);
    // Observed 0.9: compatible with >= 0.85, statistically
    // incompatible with >= 0.95 at any reasonable alpha.
    EXPECT_TRUE(checkProbAtLeast(counts, BasisState{1}, 0.85,
                                 1e-6));
    const CheckResult r =
        checkProbAtLeast(counts, BasisState{1}, 0.95, 1e-6);
    EXPECT_FALSE(r);
    EXPECT_FALSE(r.message.empty());
}

TEST(VerifyAssertions, CheckProbAtMostMirrorsAtLeast)
{
    Counts counts(1);
    counts.add(1, 100);
    counts.add(0, 900);
    EXPECT_TRUE(
        checkProbAtMost(counts, BasisState{1}, 0.15, 1e-6));
    EXPECT_FALSE(
        checkProbAtMost(counts, BasisState{1}, 0.05, 1e-6));
}

TEST(VerifyAssertions, CheckProbAcceptsOutcomeSets)
{
    Counts counts(2);
    counts.add(0, 450);
    counts.add(3, 450);
    counts.add(1, 100);
    EXPECT_TRUE(checkProbAtLeast(
        counts, std::vector<BasisState>{0, 3}, 0.85, 1e-6));
}

TEST(VerifyAssertions, CheckProportionOrderingSemantics)
{
    // 90% vs 10% on 1000 trials each: the ordering is decisive in
    // one direction and decisively rejected in the other.
    EXPECT_TRUE(
        checkProportionOrdering(900, 1000, 100, 1000, 1e-6));
    const CheckResult r =
        checkProportionOrdering(100, 1000, 900, 1000, 1e-6);
    EXPECT_FALSE(r);
    EXPECT_LT(r.pValue, 1e-9);
    // A statistical tie must NOT fail the ordering claim: the data
    // cannot rule out either direction.
    EXPECT_TRUE(
        checkProportionOrdering(500, 1000, 505, 1000, 1e-6));
}

TEST(VerifyAssertions, EscalationRetriesWithMoreShots)
{
    std::vector<std::size_t> requested;
    const SampleFn sample = [&](std::size_t shots) {
        requested.push_back(shots);
        Counts counts(1);
        counts.add(0, shots);
        return counts;
    };
    // Fail until the sample is big enough: forces escalation.
    const CheckFn check = [](const Counts& counts) {
        CheckResult r;
        r.passed = counts.total() >= 4000;
        return r;
    };
    const CheckResult r = checkWithEscalation(
        sample, 1000, check, Escalation{3, 4});
    EXPECT_TRUE(r);
    EXPECT_EQ(r.attempts, 2u);
    ASSERT_EQ(requested.size(), 2u);
    EXPECT_EQ(requested[0], 1000u);
    EXPECT_EQ(requested[1], 4000u);
}

TEST(VerifyAssertions, EscalationReportsExhaustion)
{
    const SampleFn sample = [](std::size_t shots) {
        Counts counts(1);
        counts.add(0, shots);
        return counts;
    };
    const CheckFn check = [](const Counts&) {
        CheckResult r;
        r.message = "nope";
        return r;
    };
    const CheckResult r = checkWithEscalation(
        sample, 100, check, Escalation{2, 2});
    EXPECT_FALSE(r);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_NE(r.message.find("escalation"), std::string::npos);
}

} // namespace
} // namespace qem::verify
