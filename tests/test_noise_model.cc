/**
 * @file
 * Unit tests for the NoiseModel container.
 */

#include <gtest/gtest.h>

#include "noise/noise_model.hh"

namespace qem
{
namespace
{

TEST(NoiseModel, DefaultsAreNoiseFree)
{
    NoiseModel model(3);
    EXPECT_EQ(model.numQubits(), 3u);
    EXPECT_FALSE(model.hasGateNoise());
    EXPECT_TRUE(std::isinf(model.t1(0)));
    EXPECT_EQ(model.gate1q(1).errorProb, 0.0);
    EXPECT_EQ(model.readout(), nullptr);
    EXPECT_THROW(NoiseModel(0), std::invalid_argument);
}

TEST(NoiseModel, CoherenceSettersValidate)
{
    NoiseModel model(2);
    model.setT1(0, 50000.0);
    model.setT2(0, 40000.0);
    EXPECT_EQ(model.t1(0), 50000.0);
    EXPECT_EQ(model.t2(0), 40000.0);
    EXPECT_THROW(model.setT1(5, 1.0), std::out_of_range);
    EXPECT_THROW(model.setT1(0, -1.0), std::invalid_argument);
    EXPECT_THROW(model.setT2(0, 0.0), std::invalid_argument);
    EXPECT_TRUE(model.hasGateNoise()); // Finite T1 counts as noise.
}

TEST(NoiseModel, TwoQubitGateLookupIsUnordered)
{
    NoiseModel model(3);
    model.setGate2q(2, 0, {0.03, 400.0});
    EXPECT_TRUE(model.hasGate2q(0, 2));
    EXPECT_TRUE(model.hasGate2q(2, 0));
    EXPECT_NEAR(model.gate2q(0, 2).errorProb, 0.03, 1e-12);
    EXPECT_FALSE(model.hasGate2q(0, 1));
    EXPECT_THROW(model.gate2q(0, 1), std::out_of_range);
    EXPECT_THROW(model.setGate2q(1, 1, {}), std::invalid_argument);
}

TEST(NoiseModel, ReadoutSizeMustMatch)
{
    NoiseModel model(2);
    auto wrong = std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.1}, std::vector<double>{0.1});
    EXPECT_THROW(model.setReadout(wrong), std::invalid_argument);
    auto right = std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.1, 0.1},
        std::vector<double>{0.1, 0.1});
    model.setReadout(right);
    EXPECT_NE(model.readout(), nullptr);
}

TEST(NoiseModel, GateNoiseDetection)
{
    NoiseModel model(2);
    EXPECT_FALSE(model.hasGateNoise());
    model.setGate1q(0, {0.001, 0.0});
    EXPECT_TRUE(model.hasGateNoise());

    NoiseModel model2(2);
    model2.setGate2q(0, 1, {0.0, 300.0});
    EXPECT_TRUE(model2.hasGateNoise()); // Duration drives decay.
}

TEST(NoiseModel, MeasureDuration)
{
    NoiseModel model(1);
    model.setMeasureDuration(4000.0);
    EXPECT_EQ(model.measureDurationNs(), 4000.0);
}

} // namespace
} // namespace qem
