/**
 * @file
 * Unit tests for the peephole circuit optimizer.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "qsim/rng.hh"
#include "qsim/simulator.hh"
#include "qsim/statevector.hh"
#include "transpile/optimizer.hh"

namespace qem
{
namespace
{

TEST(Optimizer, CancelsSelfInversePairs)
{
    Circuit c(2);
    c.x(0).x(0).h(1).h(1).cx(0, 1).cx(0, 1);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
}

TEST(Optimizer, CancelsPhasePairsEitherOrder)
{
    Circuit c(1);
    c.s(0).sdg(0).tdg(0).t(0);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
}

TEST(Optimizer, OrderlessGatesCancelAcrossOperandOrder)
{
    Circuit c(2);
    c.cz(0, 1).cz(1, 0).swap(0, 1).swap(1, 0);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
}

TEST(Optimizer, CxDirectionMatters)
{
    Circuit c(2);
    c.cx(0, 1).cx(1, 0);
    EXPECT_EQ(optimizeCircuit(c).size(), 2u);
}

TEST(Optimizer, InterveningOpBlocksCancellation)
{
    Circuit c(2);
    c.x(0).h(0).x(0); // H between the X's.
    EXPECT_EQ(optimizeCircuit(c).size(), 3u);
    Circuit c2(2);
    c2.cx(0, 1).x(1).cx(0, 1); // X on the target between CX's.
    EXPECT_EQ(optimizeCircuit(c2).size(), 3u);
    Circuit c3(2);
    c3.x(0).barrier().x(0); // Barriers block everything.
    EXPECT_EQ(cancelInversePairs(c3).size(), 3u);
}

TEST(Optimizer, UnrelatedQubitDoesNotBlock)
{
    Circuit c(3);
    c.x(0).h(2).x(0);
    const Circuit out = optimizeCircuit(c);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out.ops()[0].kind, GateKind::H);
}

TEST(Optimizer, CascadedCancellation)
{
    // Inner pair cancels first, exposing the outer pair.
    Circuit c(1);
    c.h(0).x(0).x(0).h(0);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
}

TEST(Optimizer, MergesRotations)
{
    Circuit c(1);
    c.rz(0.3, 0).rz(0.5, 0).rz(-0.2, 0);
    const Circuit out = mergeRotations(c);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.ops()[0].params[0], 0.6, 1e-12);
}

TEST(Optimizer, DropsFullTurnRotations)
{
    Circuit c(1);
    c.rx(M_PI, 0).rx(M_PI, 0);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
    Circuit c2(1);
    c2.p(2.0 * M_PI, 0);
    EXPECT_EQ(optimizeCircuit(c2).size(), 0u);
}

TEST(Optimizer, DifferentRotationKindsDoNotMerge)
{
    Circuit c(1);
    c.rz(0.3, 0).rx(0.3, 0);
    EXPECT_EQ(optimizeCircuit(c).size(), 2u);
}

TEST(Optimizer, KeepsMeasurementsAndStructure)
{
    Circuit c(2);
    c.x(0).measure(0, 0).x(0).delay(100, 1).measure(1, 1);
    const Circuit out = optimizeCircuit(c);
    // The measurement blocks the X pair.
    EXPECT_EQ(out.size(), c.size());
    EXPECT_EQ(out.countOps(GateKind::MEASURE), 2u);
}

TEST(Optimizer, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(23);
    for (int trial = 0; trial < 12; ++trial) {
        Circuit c(4, 0);
        for (int g = 0; g < 30; ++g) {
            switch (rng.index(7)) {
              case 0:
                c.x(static_cast<Qubit>(rng.index(4)));
                break;
              case 1:
                c.h(static_cast<Qubit>(rng.index(4)));
                break;
              case 2:
                c.s(static_cast<Qubit>(rng.index(4)));
                break;
              case 3:
                c.sdg(static_cast<Qubit>(rng.index(4)));
                break;
              case 4:
                c.rz(rng.uniform(-1.0, 1.0),
                     static_cast<Qubit>(rng.index(4)));
                break;
              default: {
                const Qubit a = static_cast<Qubit>(rng.index(4));
                Qubit b = static_cast<Qubit>(rng.index(4));
                while (b == a)
                    b = static_cast<Qubit>(rng.index(4));
                c.cx(a, b);
                break;
              }
            }
        }
        const Circuit optimized = optimizeCircuit(c);
        EXPECT_LE(optimized.size(), c.size());
        IdealSimulator sim(4);
        EXPECT_NEAR(
            sim.stateOf(c).fidelity(sim.stateOf(optimized)), 1.0,
            1e-9)
            << "trial " << trial;
    }
}

TEST(Optimizer, DecomposesCcxExactly)
{
    Circuit c(3);
    c.ccx(2, 0, 1);
    const Circuit lowered = decomposeMultiQubitGates(c);
    EXPECT_EQ(lowered.countOps(GateKind::CCX), 0u);
    EXPECT_EQ(lowered.countOps(GateKind::CX), 6u);
    // Unitary equivalence on every basis input.
    for (BasisState input = 0; input < 8; ++input) {
        StateVector direct(3, input);
        direct.applyOperation(c.ops()[0]);
        IdealSimulator sim(3);
        Circuit prep(3);
        for (Qubit q = 0; q < 3; ++q) {
            if ((input >> q) & 1U)
                prep.x(q);
        }
        prep.compose(lowered);
        EXPECT_NEAR(sim.stateOf(prep).fidelity(direct), 1.0, 1e-9)
            << "input " << input;
    }
    // Non-CCX ops pass through untouched.
    Circuit plain(2);
    plain.h(0).cx(0, 1).measureAll();
    EXPECT_EQ(decomposeMultiQubitGates(plain).size(),
              plain.size());
}

TEST(Optimizer, IsIdempotent)
{
    Circuit c(2);
    c.h(0).x(0).x(0).cx(0, 1).rz(0.4, 1).rz(0.6, 1);
    const Circuit once = optimizeCircuit(c);
    const Circuit twice = optimizeCircuit(once);
    EXPECT_EQ(once.size(), twice.size());
}

} // namespace
} // namespace qem
