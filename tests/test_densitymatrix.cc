/**
 * @file
 * Unit tests for the density matrix and the exact noisy backend,
 * including the project's strongest validation: trajectory-sampled
 * statistics against closed-form density-matrix evolution.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "noise/channels.hh"
#include "noise/exact.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "qsim/densitymatrix.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(DensityMatrix, InitializesPure)
{
    DensityMatrix rho(2, 0b10);
    EXPECT_NEAR(rho.probabilityOf(0b10), 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(11), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(2, 4), std::out_of_range);
}

TEST(DensityMatrix, FromPureStateMatchesProjector)
{
    StateVector psi(1);
    psi.applyH(0);
    DensityMatrix rho(psi);
    EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.element(0, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.fidelityWithPure(psi), 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryEvolutionTracksStateVector)
{
    // A random-ish unitary circuit evolved both ways stays pure
    // and identical.
    Circuit c(3, 0);
    c.h(0).u3(0.7, 0.3, 1.9, 1).cx(0, 2).t(2).cz(1, 2)
        .swap(0, 1).rx(1.1, 2).ccx(0, 1, 2);

    IdealSimulator sim(3);
    const StateVector psi = sim.stateOf(c);

    DensityMatrix rho(3);
    for (const Operation& op : c.ops())
        rho.applyOperation(op);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
    EXPECT_NEAR(rho.fidelityWithPure(psi), 1.0, 1e-9);
}

TEST(DensityMatrix, AmplitudeDampingExactAction)
{
    // From |1><1|: diag -> (gamma, 1-gamma), coherences vanish.
    DensityMatrix rho(1, 1);
    rho.applyKraus1q(amplitudeDamping(0.3), 0);
    EXPECT_NEAR(rho.probabilityOf(0), 0.3, 1e-12);
    EXPECT_NEAR(rho.probabilityOf(1), 0.7, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherence)
{
    StateVector plus(1);
    plus.applyH(0);
    DensityMatrix rho(plus);
    rho.applyKraus1q(phaseDamping(1.0), 0);
    EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, 1e-12);
    EXPECT_NEAR(rho.probabilityOf(0), 0.5, 1e-12);
}

TEST(DensityMatrix, DepolarizingMixes)
{
    DensityMatrix rho(1, 0);
    rho.applyKraus1q(depolarizing(0.3), 0);
    // P(flip to 1) = 2p/3 = 0.2.
    EXPECT_NEAR(rho.probabilityOf(1), 0.2, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, TwoQubitDepolarizingIsTracePreserving)
{
    StateVector bell(2);
    bell.applyH(0);
    bell.applyCX(0, 1);
    DensityMatrix rho(bell);
    rho.applyTwoQubitDepolarizing(0, 1, 0.25);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
    // The Bell state loses fidelity: 1 - p * 16/15 * (1 - 1/4)...
    // just require strictly mixed but still Bell-dominant.
    const double f = rho.fidelityWithPure(bell);
    EXPECT_LT(f, 1.0);
    EXPECT_GT(f, 0.7);
    EXPECT_THROW(rho.applyTwoQubitDepolarizing(0, 1, 1.5),
                 std::invalid_argument);
}

TEST(ExactBackend, NoiseFreeMatchesIdeal)
{
    const BasisState key = fromBitString("101");
    DensityMatrixSimulator sim(NoiseModel(4), 5);
    const auto dist =
        sim.observedDistribution(bernsteinVazirani(3, key));
    EXPECT_NEAR(dist[key], 1.0, 1e-9);
    const Counts counts = sim.run(bernsteinVazirani(3, key), 500);
    EXPECT_EQ(counts.get(key), 500u);
}

TEST(ExactBackend, ReadoutConfusionIsAnalytic)
{
    NoiseModel model(2);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.1, 0.0},
        std::vector<double>{0.0, 0.2}));
    DensityMatrixSimulator sim(std::move(model), 6);
    // True state 01 (q0=0, q1=1).
    const auto dist =
        sim.observedDistribution(basisStatePrep(2, 0b10));
    EXPECT_NEAR(dist[0b10], 0.9 * 0.8, 1e-9);
    EXPECT_NEAR(dist[0b11], 0.1 * 0.8, 1e-9);
    EXPECT_NEAR(dist[0b00], 0.9 * 0.2, 1e-9);
    EXPECT_NEAR(dist[0b01], 0.1 * 0.2, 1e-9);
}

TEST(ExactBackend, DistributionSumsToOneUnderFullNoise)
{
    NoiseModel model(3);
    for (Qubit q = 0; q < 3; ++q) {
        model.setT1(q, 40000.0);
        model.setT2(q, 30000.0);
        model.setGate1q(q, {0.01, 100.0});
    }
    model.setGate2q(0, 1, {0.03, 300.0});
    model.setGate2q(1, 2, {0.03, 300.0});
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(3, 0.02),
        std::vector<double>(3, 0.1)));
    DensityMatrixSimulator sim(std::move(model), 7);
    const auto dist = sim.observedDistribution(ghzState(3));
    double total = 0.0;
    for (double p : dist)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExactBackend, TrajectorySamplerConvergesToExact)
{
    // The money test: the Monte-Carlo trajectory simulator must
    // converge to the density-matrix distribution under the full
    // noise stack (gate depolarizing + T1/T2 decay + delays +
    // correlated readout).
    AsymmetricReadout base(std::vector<double>(4, 0.02),
                           std::vector<double>(4, 0.12));
    std::vector<std::vector<double>> j01(4,
                                         std::vector<double>(4, 0));
    std::vector<std::vector<double>> j10(
        4, std::vector<double>(4, 0.03));
    NoiseModel model(4);
    for (Qubit q = 0; q < 4; ++q) {
        model.setT1(q, 50000.0);
        model.setT2(q, 35000.0);
        model.setGate1q(q, {0.005, 120.0});
    }
    for (Qubit a = 0; a < 4; ++a) {
        for (Qubit b = a + 1; b < 4; ++b)
            model.setGate2q(a, b, {0.02, 400.0});
    }
    model.setReadout(std::make_shared<CorrelatedReadout>(
        std::move(base), j01, j10));

    Circuit c(4);
    c.h(0).cx(0, 1).cx(1, 2).delay(2000.0, 3).x(3).cx(2, 3)
        .rx(0.8, 0).measureAll();

    DensityMatrixSimulator exact(model, 8);
    const auto expected = exact.observedDistribution(c);

    TrajectoryOptions options;
    options.shotsPerTrajectory = 4;
    TrajectorySimulator sampler(model, 9, options);
    const std::size_t shots = 200000;
    const Counts counts = sampler.run(c, shots);

    // Total variation distance well inside the sampling noise.
    double tvd = 0.0;
    for (BasisState s = 0; s < 16; ++s)
        tvd += std::abs(counts.probability(s) - expected[s]);
    tvd /= 2.0;
    EXPECT_LT(tvd, 0.01) << "TVD " << tvd;
}

TEST(ExactBackend, RejectsOversizedCircuits)
{
    DensityMatrixSimulator sim(NoiseModel(14), 10);
    Circuit wide(14);
    for (Qubit q = 0; q < 12; ++q)
        wide.h(q);
    wide.measureAll();
    EXPECT_THROW(sim.observedDistribution(wide),
                 std::invalid_argument);
    Circuit unmeasured(3);
    EXPECT_THROW(sim.observedDistribution(unmeasured),
                 std::invalid_argument);
}

TEST(ExactBackend, CompactionKeepsIdleQubitsFree)
{
    // A 2-active-qubit circuit on a 14-qubit machine is exact even
    // though the full register would be far beyond the limit.
    NoiseModel model(14);
    std::vector<double> p01(14, 0.0), p10(14, 0.0);
    p10[9] = 0.25;
    model.setReadout(
        std::make_shared<AsymmetricReadout>(p01, p10));
    DensityMatrixSimulator sim(std::move(model), 11);
    Circuit c(14, 1);
    c.x(9).measure(9, 0);
    const auto dist = sim.observedDistribution(c);
    EXPECT_NEAR(dist[1], 0.75, 1e-9);
    EXPECT_NEAR(dist[0], 0.25, 1e-9);
}

} // namespace
} // namespace qem
