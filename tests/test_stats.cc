/**
 * @file
 * Unit tests for the statistics toolbox.
 */

#include <gtest/gtest.h>

#include "metrics/stats.hh"

namespace qem
{
namespace
{

TEST(Stats, MeanAndStddev)
{
    EXPECT_NEAR(mean({1.0, 2.0, 3.0, 4.0}), 2.5, 1e-12);
    EXPECT_NEAR(stddev({2.0, 2.0, 2.0}), 0.0, 1e-12);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelations)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> up{2, 4, 6, 8, 10};
    const std::vector<double> down{5, 4, 3, 2, 1};
    EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
    EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelatedAndDegenerate)
{
    EXPECT_NEAR(pearson({1, 2, 1, 2}, {1, 1, 2, 2}), 0.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {5, 5, 5}), 0.0, 1e-12);
    EXPECT_THROW(pearson({1}, {1}), std::invalid_argument);
    EXPECT_THROW(pearson({1, 2}, {1}), std::invalid_argument);
}

TEST(Stats, MeanSquaredError)
{
    EXPECT_NEAR(meanSquaredError({1, 2}, {1, 2}), 0.0, 1e-12);
    EXPECT_NEAR(meanSquaredError({0, 0}, {3, 4}), 12.5, 1e-12);
    EXPECT_THROW(meanSquaredError({1}, {1, 2}),
                 std::invalid_argument);
    EXPECT_THROW(meanSquaredError({}, {}), std::invalid_argument);
}

TEST(Stats, Normalizers)
{
    const auto to_max = normalizeToMax({1.0, 2.0, 4.0});
    EXPECT_NEAR(to_max[2], 1.0, 1e-12);
    EXPECT_NEAR(to_max[0], 0.25, 1e-12);
    const auto to_sum = normalizeToSum({1.0, 3.0});
    EXPECT_NEAR(to_sum[0], 0.25, 1e-12);
    EXPECT_NEAR(to_sum[1], 0.75, 1e-12);
    // All-zero vectors pass through unchanged.
    EXPECT_EQ(normalizeToMax({0.0, 0.0}),
              (std::vector<double>{0.0, 0.0}));
    EXPECT_EQ(normalizeToSum({0.0}), (std::vector<double>{0.0}));
}

TEST(Stats, WilsonIntervalBasics)
{
    // Symmetric case: p = 0.5 at n = 100 gives roughly +-0.1.
    const ConfidenceInterval ci = wilsonInterval(50, 100);
    EXPECT_TRUE(ci.contains(0.5));
    EXPECT_NEAR(ci.low, 0.404, 0.005);
    EXPECT_NEAR(ci.high, 0.596, 0.005);
    EXPECT_NEAR(ci.width(), 0.19, 0.01);
}

TEST(Stats, WilsonIntervalStaysInUnitRange)
{
    const ConfidenceInterval zero = wilsonInterval(0, 50);
    EXPECT_GE(zero.low, 0.0);
    EXPECT_GT(zero.high, 0.0); // Zero successes != zero rate.
    const ConfidenceInterval all = wilsonInterval(50, 50);
    EXPECT_LE(all.high, 1.0);
    EXPECT_LT(all.low, 1.0);
}

TEST(Stats, WilsonIntervalShrinksWithTrials)
{
    EXPECT_GT(wilsonInterval(10, 40).width(),
              wilsonInterval(1000, 4000).width());
}

TEST(Stats, WilsonIntervalValidates)
{
    EXPECT_THROW(wilsonInterval(1, 0), std::invalid_argument);
    EXPECT_THROW(wilsonInterval(5, 4), std::invalid_argument);
    EXPECT_THROW(wilsonInterval(1, 4, 0.0), std::invalid_argument);
}

TEST(Stats, AverageByHammingWeight)
{
    // values[s] = popcount(s): class averages equal the weight.
    std::vector<double> values(16);
    for (std::size_t s = 0; s < 16; ++s)
        values[s] = static_cast<double>(__builtin_popcountll(s));
    const auto avg = averageByHammingWeight(values, 4);
    ASSERT_EQ(avg.size(), 5u);
    for (unsigned w = 0; w <= 4; ++w)
        EXPECT_NEAR(avg[w], w, 1e-12);
    EXPECT_THROW(averageByHammingWeight(values, 3),
                 std::invalid_argument);
}

} // namespace
} // namespace qem
