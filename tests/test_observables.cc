/**
 * @file
 * Unit tests for diagonal observables and the sampled energy
 * estimator.
 */

#include <gtest/gtest.h>

#include "kernels/qaoa.hh"
#include "metrics/observables.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

Counts
ghzLikeLog()
{
    Counts c(3);
    c.add(0b000, 50);
    c.add(0b111, 50);
    return c;
}

TEST(Observables, ZParityOfDeterministicLog)
{
    Counts c(2);
    c.add(0b01, 10); // q0 = 1.
    EXPECT_NEAR(zParityExpectation(c, 0b01), -1.0, 1e-12);
    EXPECT_NEAR(zParityExpectation(c, 0b10), 1.0, 1e-12);
    EXPECT_NEAR(zParityExpectation(c, 0b11), -1.0, 1e-12);
    EXPECT_NEAR(zParityExpectation(c, 0b00), 1.0, 1e-12);
}

TEST(Observables, GhzParities)
{
    const Counts c = ghzLikeLog();
    // Single-qubit <Z> vanish, two-qubit <ZZ> are +1.
    for (double z : singleQubitZExpectations(c))
        EXPECT_NEAR(z, 0.0, 1e-12);
    EXPECT_NEAR(zParityExpectation(c, 0b011), 1.0, 1e-12);
    EXPECT_NEAR(zParityExpectation(c, 0b101), 1.0, 1e-12);
    // Three-qubit parity also vanishes (odd under global flip).
    EXPECT_NEAR(zParityExpectation(c, 0b111), 0.0, 1e-12);
}

TEST(Observables, EmptyLogYieldsZero)
{
    Counts empty(2);
    EXPECT_EQ(zParityExpectation(empty, 0b11), 0.0);
    EXPECT_EQ(meanHammingDistance(empty, 0), 0.0);
}

TEST(Observables, HammingDistanceSpectrum)
{
    Counts c(3);
    c.add(0b101, 6); // Reference itself.
    c.add(0b100, 2); // Distance 1.
    c.add(0b010, 2); // Distance 3.
    const auto spec = hammingDistanceSpectrum(c, 0b101);
    ASSERT_EQ(spec.size(), 4u);
    EXPECT_NEAR(spec[0], 0.6, 1e-12);
    EXPECT_NEAR(spec[1], 0.2, 1e-12);
    EXPECT_NEAR(spec[2], 0.0, 1e-12);
    EXPECT_NEAR(spec[3], 0.2, 1e-12);
    EXPECT_NEAR(meanHammingDistance(c, 0b101), 0.8, 1e-12);
}

TEST(Observables, SampledExpectedCut)
{
    const Graph g = cycleGraph(4);
    Counts c(4);
    c.add(fromBitString("0101"), 3); // Cut 4.
    c.add(fromBitString("0000"), 1); // Cut 0.
    EXPECT_NEAR(sampledExpectedCut(g, c), 3.0, 1e-12);
    EXPECT_NEAR(sampledExpectedCut(g, Counts(4)), 0.0, 1e-12);
}

} // namespace
} // namespace qem
