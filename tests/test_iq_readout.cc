/**
 * @file
 * Unit tests for the first-principles IQ readout model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "noise/iq_readout.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

IqQubitParams
cleanQubit()
{
    IqQubitParams p;
    p.i0 = 0.0;
    p.q0 = 0.0;
    p.i1 = 1.0;
    p.q1 = 0.0;
    p.sigma = 0.18;
    p.integrationNs = 4000.0;
    p.t1Ns = std::numeric_limits<double>::infinity();
    return p;
}

TEST(IqReadout, SymmetricWithoutDecayOrOffset)
{
    IqReadoutModel model({cleanQubit()});
    // Both rates equal the Gaussian overlap 0.5 erfc(d/(2 sigma
    // sqrt 2)).
    const double expected =
        0.5 * std::erfc(0.5 / (0.18 * std::sqrt(2.0)));
    EXPECT_NEAR(model.derivedP01(0), expected, 1e-12);
    EXPECT_NEAR(model.derivedP10(0), expected, 1e-12);
}

TEST(IqReadout, DecayDuringIntegrationBiasesOnes)
{
    IqQubitParams p = cleanQubit();
    p.t1Ns = 40000.0; // 10% of T1 spent integrating.
    IqReadoutModel model({p});
    EXPECT_GT(model.derivedP10(0), model.derivedP01(0) + 0.02);
    // The p01 side is untouched by decay.
    EXPECT_NEAR(model.derivedP01(0),
                IqReadoutModel({cleanQubit()}).derivedP01(0),
                1e-12);
}

TEST(IqReadout, DiscriminatorOffsetSkewsEitherWay)
{
    IqQubitParams toward1 = cleanQubit();
    toward1.discriminatorOffset = 0.15;
    IqQubitParams toward0 = cleanQubit();
    toward0.discriminatorOffset = -0.15;
    IqReadoutModel model({toward1, toward0});
    // Boundary near |1>: ones fall below it often (p10 up), zeros
    // rarely cross (p01 down).
    EXPECT_GT(model.derivedP10(0), model.derivedP01(0));
    // Boundary near |0>: the inverted asymmetry (ibmqx4 story).
    EXPECT_GT(model.derivedP01(1), model.derivedP10(1));
}

TEST(IqReadout, MonteCarloMatchesDerivedRates)
{
    IqQubitParams p = cleanQubit();
    p.t1Ns = 30000.0;
    p.discriminatorOffset = 0.05;
    IqReadoutModel model({p});
    Rng rng(601);
    const int trials = 60000;
    int zero_errors = 0, one_errors = 0;
    for (int t = 0; t < trials; ++t) {
        const auto [i0, q0] = model.sampleIqPoint(0, false, rng);
        zero_errors += model.classify(0, i0, q0);
        const auto [i1, q1] = model.sampleIqPoint(0, true, rng);
        one_errors += !model.classify(0, i1, q1);
    }
    EXPECT_NEAR(zero_errors / double(trials), model.derivedP01(0),
                0.004);
    EXPECT_NEAR(one_errors / double(trials), model.derivedP10(0),
                0.005);
}

TEST(IqReadout, WorksAsNoiseModelReadout)
{
    // Plug the physical model straight into the simulator stack.
    IqQubitParams p = cleanQubit();
    p.t1Ns = 20000.0;
    std::vector<IqQubitParams> qubits(3, p);
    auto model = std::make_shared<IqReadoutModel>(qubits);
    const double p10 = model->derivedP10(0);

    NoiseModel noise(3);
    noise.setReadout(model);
    TrajectorySimulator sim(std::move(noise), 602);
    const Counts counts =
        sim.run(basisStatePrep(3, allOnes(3)), 40000);
    const double expected = std::pow(1.0 - p10, 3);
    EXPECT_NEAR(counts.probability(allOnes(3)), expected, 0.01);
}

TEST(IqReadout, LongerIntegrationTradesOverlapForDecay)
{
    // The classic readout tradeoff: SNR improves like sqrt(T) but
    // decay loss grows like T, so the assignment error of |1> is
    // non-monotone in the window length.
    auto assignment_error = [](double t_ns) {
        IqQubitParams p = cleanQubit();
        p.integrationNs = t_ns;
        p.sigma = 0.35 * std::sqrt(1000.0 / t_ns);
        p.t1Ns = 30000.0;
        IqReadoutModel model({p});
        return 0.5 * (model.derivedP01(0) + model.derivedP10(0));
    };
    const double short_t = assignment_error(250.0);
    const double mid_t = assignment_error(4000.0);
    const double long_t = assignment_error(60000.0);
    EXPECT_LT(mid_t, short_t);
    EXPECT_LT(mid_t, long_t);
}

TEST(IqReadout, ValidatesParameters)
{
    EXPECT_THROW(IqReadoutModel({}), std::invalid_argument);
    IqQubitParams bad_sigma = cleanQubit();
    bad_sigma.sigma = 0.0;
    EXPECT_THROW(IqReadoutModel({bad_sigma}),
                 std::invalid_argument);
    IqQubitParams coincident = cleanQubit();
    coincident.i1 = coincident.i0;
    coincident.q1 = coincident.q0;
    EXPECT_THROW(IqReadoutModel({coincident}),
                 std::invalid_argument);
    IqQubitParams bad_t = cleanQubit();
    bad_t.integrationNs = 0.0;
    EXPECT_THROW(IqReadoutModel({bad_t}), std::invalid_argument);
    IqReadoutModel ok({cleanQubit()});
    EXPECT_THROW(ok.derivedP01(1), std::out_of_range);
    EXPECT_THROW(ok.params(7), std::out_of_range);
}

} // namespace
} // namespace qem
