/**
 * @file
 * Live-introspection layer tests: time-series scraping, Chrome
 * trace export, the per-job flight recorder, health probes, and
 * RBMS staleness detection.
 *
 * The IntrospectionSoak suite is the PR's acceptance test: a small
 * telemetry-on service soak must produce a valid trace_event JSON,
 * an `invertq.timeseries/v1` export with at least three series, and
 * a flight-recorder dump for every failed job. Artifacts land in
 * $INVERTQ_STATUS_DIR when set (CI uploads them) or the test temp
 * dir otherwise.
 *
 * The staleness tests follow docs/verification.md: both sides of
 * every G-test are seeded, so the stable-machine case is a true
 * null at the configured alpha and the drifted case is a
 * reproducible rejection — a red run here is a real change.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/drift.hh"
#include "machine/machines.hh"
#include "noise/trajectory.hh"
#include "service/artifacts.hh"
#include "service/job_service.hh"
#include "service/staleness.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace.hh"
#include "transpile/transpiler.hh"

namespace qem
{
namespace
{

using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::FlightRecorder;
using telemetry::FunctionProbe;
using telemetry::HealthMonitor;
using telemetry::HealthStatus;
using telemetry::JsonValue;
using telemetry::MetricsRegistry;
using telemetry::ProbeResult;
using telemetry::SeriesSnapshot;
using telemetry::SpanTracer;
using telemetry::TimeSeriesSampler;
using svc::JobService;

/** Every test starts and ends with pristine global telemetry. */
class IntrospectionTest : public ::testing::Test
{
  protected:
    void SetUp() override { telemetry::resetAll(); }
    void TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
};

const SeriesSnapshot*
findSeries(const std::vector<SeriesSnapshot>& all,
           const std::string& name)
{
    for (const SeriesSnapshot& s : all) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

TEST_F(IntrospectionTest, SamplerCounterDeltaAndRate)
{
    MetricsRegistry registry;
    TimeSeriesSampler sampler(registry);
    registry.counter("jobs").add(4);
    sampler.sampleAt(0.0);
    registry.counter("jobs").add(10);
    registry.gauge("depth").set(3.0);
    sampler.sampleAt(2.0);

    const auto all = sampler.series();
    const SeriesSnapshot* jobs = findSeries(all, "jobs");
    ASSERT_NE(jobs, nullptr);
    EXPECT_EQ(jobs->kind, "counter");
    ASSERT_EQ(jobs->points.size(), 2u);
    // First point: no previous scrape, so rate is pinned to 0.
    EXPECT_EQ(jobs->points[0].value, 4.0);
    EXPECT_EQ(jobs->points[0].rate, 0.0);
    EXPECT_EQ(jobs->points[1].value, 14.0);
    EXPECT_EQ(jobs->points[1].delta, 10.0);
    EXPECT_DOUBLE_EQ(jobs->points[1].rate, 5.0);

    const SeriesSnapshot* depth = findSeries(all, "depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->kind, "gauge");
    ASSERT_EQ(depth->points.size(), 1u)
        << "gauge did not exist at the first scrape";
    EXPECT_EQ(depth->points[0].value, 3.0);
    EXPECT_EQ(sampler.sampleCount(), 2u);
}

TEST_F(IntrospectionTest, SamplerCounterResetReadsAsRestart)
{
    MetricsRegistry registry;
    TimeSeriesSampler sampler(registry);
    registry.counter("c").add(100);
    sampler.sampleAt(0.0);
    registry.counter("c").reset();
    registry.counter("c").add(5);
    sampler.sampleAt(1.0);

    const auto all = sampler.series();
    const SeriesSnapshot* c = findSeries(all, "c");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->points.size(), 2u);
    // A raw value below the previous scrape means the counter
    // restarted; the delta must be the new raw value, not negative.
    EXPECT_EQ(c->points[1].delta, 5.0);
    EXPECT_DOUBLE_EQ(c->points[1].rate, 5.0);
}

TEST_F(IntrospectionTest, SamplerHistogramDerivesRateAndMean)
{
    MetricsRegistry registry;
    TimeSeriesSampler sampler(registry);
    registry.histogram("lat", {0.5, 1.0}).record(0.25);
    registry.histogram("lat", {0.5, 1.0}).record(0.75);
    sampler.sampleAt(1.0);

    const auto all = sampler.series();
    const SeriesSnapshot* count = findSeries(all, "lat.count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->kind, "derived");
    EXPECT_EQ(count->points.back().value, 2.0);
    const SeriesSnapshot* mean =
        findSeries(all, "lat.mean_seconds");
    ASSERT_NE(mean, nullptr);
    EXPECT_DOUBLE_EQ(mean->points.back().value, 0.5);
}

TEST_F(IntrospectionTest, SamplerRingBoundsAndCountsDrops)
{
    MetricsRegistry registry;
    TimeSeriesSampler::Options options;
    options.capacity = 4;
    TimeSeriesSampler sampler(registry, options);
    registry.counter("c");
    for (int i = 0; i < 10; ++i)
        sampler.sampleAt(static_cast<double>(i));

    const auto all = sampler.series();
    const SeriesSnapshot* c = findSeries(all, "c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->points.size(), 4u);
    EXPECT_EQ(c->dropped, 6u);
    EXPECT_EQ(c->points.front().tSeconds, 6.0);
    EXPECT_EQ(c->points.back().tSeconds, 9.0);
}

TEST_F(IntrospectionTest, SamplerNonMonotonicTimestampsClamp)
{
    MetricsRegistry registry;
    TimeSeriesSampler sampler(registry);
    registry.counter("c").add(1);
    sampler.sampleAt(5.0);
    registry.counter("c").add(1);
    sampler.sampleAt(1.0); // Clock went backwards.
    const auto all = sampler.series();
    const SeriesSnapshot* c = findSeries(all, "c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->points.back().tSeconds, 5.0);
    EXPECT_EQ(c->points.back().rate, 0.0)
        << "zero elapsed time must not divide";
}

TEST_F(IntrospectionTest, SamplerExportsSchemaAndRoundTrips)
{
    MetricsRegistry registry;
    TimeSeriesSampler sampler(registry);
    registry.counter("a").add(1);
    registry.gauge("b").set(2.0);
    sampler.sampleAt(0.0);
    sampler.sampleAt(1.0);

    const JsonValue doc = sampler.toJson();
    EXPECT_EQ(doc.find("schema")->asString(),
              telemetry::kTimeSeriesSchema);
    EXPECT_EQ(doc.find("samples")->asUint(), 2u);
    const JsonValue* series = doc.find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_NE(series->find("a"), nullptr);
    // Counter points carry delta/rate; gauge points must not.
    const JsonValue& aPoint =
        series->find("a")->find("points")->items().front();
    EXPECT_NE(aPoint.find("rate"), nullptr);
    const JsonValue& bPoint =
        series->find("b")->find("points")->items().front();
    EXPECT_EQ(bPoint.find("rate"), nullptr);

    const std::string path =
        ::testing::TempDir() + "introspection_timeseries.json";
    ASSERT_TRUE(sampler.writeTo(path));
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_EQ(JsonValue::parse(text.str()), doc);
}

TEST_F(IntrospectionTest, SamplerBackgroundThreadScrapes)
{
    MetricsRegistry registry;
    registry.counter("c").add(1);
    TimeSeriesSampler::Options options;
    options.intervalSeconds = 1e-4;
    TimeSeriesSampler sampler(registry, options);
    sampler.start();
    sampler.start(); // Idempotent.
    while (sampler.sampleCount() < 3)
        std::this_thread::yield();
    sampler.stop();
    sampler.stop(); // Safe to repeat.
    EXPECT_GE(sampler.sampleCount(), 3u);
    const auto all = sampler.series();
    EXPECT_NE(findSeries(all, "c"), nullptr);
}

TEST_F(IntrospectionTest, TraceDocumentIsValidAndThreadCorrect)
{
    MetricsRegistry registry;
    SpanTracer tracer;
    tracer.watchCounters(&registry, {"work.items"});
    {
        SpanTracer::Scope outer = tracer.scoped("outer");
        registry.counter("work.items").add(7);
        std::thread worker([&tracer, &registry] {
            SpanTracer::Scope s = tracer.scoped("worker.batch");
            registry.counter("work.items").add(3);
        });
        worker.join();
    }

    const JsonValue doc = traceDocument(tracer.snapshot());
    std::string error;
    EXPECT_TRUE(
        telemetry::validateTraceJson(doc.dump(), &error))
        << error;

    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::set<std::uint64_t> spanTids;
    std::set<std::string> threadNames;
    bool sawOuterArgs = false;
    for (const JsonValue& event : events->items()) {
        const std::string ph = event.find("ph")->asString();
        if (ph == "M") {
            threadNames.insert(event.find("args")
                                   ->find("name")
                                   ->asString());
        } else if (ph == "X") {
            spanTids.insert(event.find("tid")->asUint());
            if (event.find("name")->asString() == "outer") {
                const JsonValue* args = event.find("args");
                ASSERT_NE(args, nullptr);
                // The counter moved by 10 while "outer" was open
                // (7 on the main thread + 3 on the worker).
                EXPECT_EQ(args->find("work.items")->asUint(),
                          10u);
                sawOuterArgs = true;
            }
        }
    }
    // Two real threads -> two distinct span tids and two named
    // thread tracks in the viewer.
    EXPECT_EQ(spanTids.size(), 2u);
    EXPECT_TRUE(threadNames.count("main"));
    EXPECT_TRUE(sawOuterArgs);
}

TEST_F(IntrospectionTest, TraceCountersComeFromSampler)
{
    MetricsRegistry registry;
    SpanTracer tracer;
    TimeSeriesSampler sampler(registry);
    registry.counter("service.shots").add(64);
    sampler.sampleAt(0.0);
    registry.counter("service.shots").add(64);
    sampler.sampleAt(1.0);
    {
        SpanTracer::Scope s = tracer.scoped("run");
    }

    const JsonValue doc =
        traceDocument(tracer.snapshot(), &sampler);
    std::string error;
    ASSERT_TRUE(
        telemetry::validateTraceJson(doc.dump(), &error))
        << error;
    std::size_t counterEvents = 0;
    for (const JsonValue& event :
         doc.find("traceEvents")->items()) {
        if (event.find("ph")->asString() == "C")
            ++counterEvents;
    }
    EXPECT_EQ(counterEvents, 2u);
}

TEST_F(IntrospectionTest, TraceValidatorRejectsBrokenDocuments)
{
    std::string error;
    EXPECT_FALSE(telemetry::validateTraceJson("not json", &error));
    EXPECT_FALSE(telemetry::validateTraceJson("[]", &error));
    EXPECT_FALSE(
        telemetry::validateTraceJson("{\"x\": 1}", &error));
    EXPECT_FALSE(telemetry::validateTraceJson(
        "{\"traceEvents\": [{\"name\": \"no-ph\"}]}", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(telemetry::validateTraceJson(
        "{\"traceEvents\": []}", &error))
        << error;
}

TEST_F(IntrospectionTest, FlightRecorderRingKeepsNewestEvents)
{
    FlightRecorder recorder(4);
    for (int i = 0; i < 10; ++i) {
        recorder.recordAt(static_cast<double>(i),
                          FlightEventKind::Dispatch, i,
                          static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(recorder.totalRecorded(), 10u);
    EXPECT_EQ(recorder.droppedCount(), 6u);
    const std::vector<FlightEvent> events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 6 + i) << "oldest-first order";
        EXPECT_EQ(events[i].batch,
                  static_cast<std::int64_t>(6 + i));
    }
    const JsonValue dump = recorder.toJson();
    ASSERT_EQ(dump.size(), 5u) << "drop marker + 4 events";
    EXPECT_EQ(dump.items()[0].find("dropped")->asUint(), 6u);
    EXPECT_EQ(dump.items()[1].find("event")->asString(),
              "dispatch");
}

TEST_F(IntrospectionTest, FlightRecorderUsesInjectedClock)
{
    double now = 1.5;
    FlightRecorder recorder(8, [&now] { return now; });
    recorder.record(FlightEventKind::Enqueue);
    now = 2.5;
    recorder.record(FlightEventKind::Merge, -1, 64, "done");
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].tSeconds, 1.5);
    EXPECT_EQ(events[1].tSeconds, 2.5);
    EXPECT_EQ(events[1].detail, "done");
    EXPECT_EQ(std::string(telemetry::flightEventKindName(
                  events[1].kind)),
              "merge");
}

TEST_F(IntrospectionTest, HealthMonitorAggregatesAndPublishes)
{
    telemetry::setEnabled(true);
    HealthMonitor monitor;
    monitor.addProbe(std::make_shared<FunctionProbe>("ok", [] {
        ProbeResult result;
        result.status = HealthStatus::Healthy;
        return result;
    }));
    monitor.addProbe(
        std::make_shared<FunctionProbe>("wobbly", [] {
            ProbeResult result;
            result.status = HealthStatus::Degraded;
            result.value = 0.8;
            result.message = "80% full";
            return result;
        }));
    ASSERT_EQ(monitor.probeCount(), 2u);

    const std::vector<ProbeResult> results = monitor.checkAll();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(monitor.status(), HealthStatus::Degraded);

    const auto snap = telemetry::metrics().snapshot();
    EXPECT_EQ(snap.gauges.at("health.ok"), 0.0);
    EXPECT_EQ(snap.gauges.at("health.wobbly"), 1.0);
    EXPECT_EQ(snap.gauges.at("health.status"), 1.0);

    const JsonValue json = monitor.toJson();
    EXPECT_EQ(json.find("status")->asString(), "degraded");
    EXPECT_EQ(json.find("probes")->size(), 2u);
}

TEST_F(IntrospectionTest, HealthProbeExceptionTurnsUnhealthy)
{
    HealthMonitor monitor;
    monitor.addProbe(
        std::make_shared<FunctionProbe>("broken", [] {
            throw std::runtime_error("probe backend gone");
            return ProbeResult();
        }));
    const auto results = monitor.checkAll();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, HealthStatus::Unhealthy);
    EXPECT_NE(results[0].message.find("probe backend gone"),
              std::string::npos);
    EXPECT_EQ(monitor.status(), HealthStatus::Unhealthy);
}

TEST_F(IntrospectionTest, UtilizationThresholds)
{
    using telemetry::statusFromUtilization;
    EXPECT_EQ(statusFromUtilization(0.1, 0.75, 0.95),
              HealthStatus::Healthy);
    EXPECT_EQ(statusFromUtilization(0.8, 0.75, 0.95),
              HealthStatus::Degraded);
    EXPECT_EQ(statusFromUtilization(0.99, 0.75, 0.95),
              HealthStatus::Unhealthy);
}

// ---------------------------------------------------------------
// RBMS staleness: seeded holdout replay vs the cached confusion
// model. Stable machine => true null at alpha; drifted machine =>
// reproducible rejection (ROADMAP item 3).
// ---------------------------------------------------------------

std::vector<Qubit>
stalenessQubits()
{
    return {0, 1, 2};
}

svc::StalenessOptions
stalenessOptions()
{
    svc::StalenessOptions options;
    options.shotsPerState = 8192;
    return options;
}

TEST_F(IntrospectionTest, StalenessProbeQuietOnStableMachine)
{
    const Machine machine = makeMachine("ibmqx4");
    auto cached = std::make_shared<svc::ConfusionCdf>(
        machine.calibration(), stalenessQubits());
    svc::RbmsStalenessProbe probe(
        cached,
        svc::holdoutFromCalibration(machine.calibration(),
                                    stalenessQubits()),
        stalenessOptions());

    const ProbeResult result = probe.check();
    EXPECT_EQ(result.status, HealthStatus::Healthy)
        << result.message;
    EXPECT_EQ(probe.checksRun(), 1u);
    EXPECT_GE(probe.lastWorst().pValue, 1e-6);
}

TEST_F(IntrospectionTest, StalenessProbeTripsOnDriftedMachine)
{
    const Machine machine = makeMachine("ibmqx4");
    const DriftSchedule schedule(machine, 0.5);
    // Profile on day 0, serve on day 7: readout rates have moved
    // by recalibration-scale lognormal factors.
    auto cached = std::make_shared<svc::ConfusionCdf>(
        schedule.at(0).calibration(), stalenessQubits());
    svc::RbmsStalenessProbe probe(
        cached,
        svc::holdoutFromCalibration(
            schedule.at(7).calibration(), stalenessQubits()),
        stalenessOptions());

    const ProbeResult result = probe.check();
    EXPECT_EQ(result.status, HealthStatus::Unhealthy)
        << result.message;
    EXPECT_LT(probe.lastWorst().pValue, 1e-6 / 2.0);
}

TEST_F(IntrospectionTest, StalenessCheckRollsEpochBackOnThrow)
{
    const Machine machine = makeMachine("ibmqx4");
    auto cached = std::make_shared<svc::ConfusionCdf>(
        machine.calibration(), stalenessQubits());

    // A live sampler that fails transiently on its very first
    // call — the backend hiccup that used to burn the epoch.
    int calls = 0;
    const svc::HoldoutSampler flaky =
        [&calls, &machine](BasisState truth, std::size_t shots,
                           Rng& rng) -> Counts {
        if (calls++ == 0)
            throw std::runtime_error("transient backend failure");
        return svc::holdoutFromCalibration(
            machine.calibration(), stalenessQubits())(truth, shots,
                                                      rng);
    };
    svc::RbmsStalenessProbe probe(cached, flaky,
                                  stalenessOptions());
    EXPECT_THROW(probe.check(), std::runtime_error);
    // The epoch was rolled back, not consumed.
    EXPECT_EQ(probe.checksRun(), 0u);

    // The retry replays the exact splitAt(epoch) stream the failed
    // check would have used: its worst-test statistic must equal
    // that of a twin probe whose sampler never threw.
    const telemetry::ProbeResult retried = probe.check();
    EXPECT_EQ(probe.checksRun(), 1u);

    svc::RbmsStalenessProbe twin(
        cached,
        svc::holdoutFromCalibration(machine.calibration(),
                                    stalenessQubits()),
        stalenessOptions());
    const telemetry::ProbeResult clean = twin.check();
    EXPECT_EQ(retried.status, clean.status);
    EXPECT_EQ(probe.lastWorst().pValue, twin.lastWorst().pValue);
    EXPECT_EQ(probe.lastWorst().statistic,
              twin.lastWorst().statistic);
}

TEST_F(IntrospectionTest, StalenessRejectsOverwideProbeStates)
{
    const Machine machine = makeMachine("ibmqx4");
    auto cached = std::make_shared<svc::ConfusionCdf>(
        machine.calibration(), stalenessQubits()); // 3 bits
    svc::StalenessOptions options = stalenessOptions();
    // 0b1000 needs 4 bits: it would index past the cached rows.
    options.states = {0b1000};
    EXPECT_THROW(
        svc::RbmsStalenessProbe(
            cached,
            svc::holdoutFromCalibration(machine.calibration(),
                                        stalenessQubits()),
            options),
        std::invalid_argument);
    // In-range states construct fine.
    options.states = {0b000, 0b111};
    EXPECT_NO_THROW(svc::RbmsStalenessProbe(
        cached,
        svc::holdoutFromCalibration(machine.calibration(),
                                    stalenessQubits()),
        options));
}

TEST_F(IntrospectionTest, ProbeStateValidationAtThe64BitBoundary)
{
    // validateProbeStates must not shift by >= 64 (undefined
    // behaviour): at num_bits == 64 every BasisState fits.
    EXPECT_NO_THROW(
        svc::validateProbeStates(64, {~std::uint64_t{0}}));
    EXPECT_NO_THROW(svc::validateProbeStates(64, {0}));
    EXPECT_THROW(svc::validateProbeStates(3, {0b1000}),
                 std::invalid_argument);
    EXPECT_NO_THROW(svc::validateProbeStates(3, {0b111}));

    // The default probed states are all-zeros and all-ones, with
    // the same shift guard on the all-ones mask.
    const auto narrow = svc::defaultProbeStates(3);
    ASSERT_EQ(narrow.size(), 2u);
    EXPECT_EQ(narrow[0], 0u);
    EXPECT_EQ(narrow[1], 0b111u);
    const auto wide = svc::defaultProbeStates(64);
    ASSERT_EQ(wide.size(), 2u);
    EXPECT_EQ(wide[0], 0u);
    EXPECT_EQ(wide[1], ~std::uint64_t{0});
}

TEST_F(IntrospectionTest, StalenessGaugeFlipsThroughMonitor)
{
    telemetry::setEnabled(true);
    const Machine machine = makeMachine("ibmqx4");
    const DriftSchedule schedule(machine, 0.5);
    auto cached = std::make_shared<svc::ConfusionCdf>(
        schedule.at(0).calibration(), stalenessQubits());

    HealthMonitor monitor;
    monitor.addProbe(std::make_shared<svc::RbmsStalenessProbe>(
        cached,
        svc::holdoutFromCalibration(
            schedule.at(7).calibration(), stalenessQubits()),
        stalenessOptions()));
    monitor.checkAll();
    EXPECT_EQ(
        telemetry::metrics().snapshot().gauges.at(
            "health.rbms_stale"),
        2.0);

    // The same gauge stays quiet against the un-drifted machine.
    telemetry::resetAll();
    telemetry::setEnabled(true);
    HealthMonitor stableMonitor;
    stableMonitor.addProbe(
        std::make_shared<svc::RbmsStalenessProbe>(
            cached,
            svc::holdoutFromCalibration(
                schedule.at(0).calibration(), stalenessQubits()),
            stalenessOptions()));
    stableMonitor.checkAll();
    EXPECT_EQ(
        telemetry::metrics().snapshot().gauges.at(
            "health.rbms_stale"),
        0.0);
}

TEST_F(IntrospectionTest, DriftScheduleDayZeroIsTheBase)
{
    const Machine machine = makeMachine("ibmqx2");
    const DriftSchedule schedule(machine, 0.3);
    EXPECT_EQ(schedule.at(0).calibration().qubit(0).readoutP01,
              machine.calibration().qubit(0).readoutP01);
    // Day d is deterministic and actually drifted.
    EXPECT_EQ(schedule.at(3).calibration().qubit(0).readoutP01,
              schedule.at(3).calibration().qubit(0).readoutP01);
    EXPECT_NE(schedule.at(3).calibration().qubit(0).readoutP01,
              machine.calibration().qubit(0).readoutP01);
    EXPECT_THROW(DriftSchedule(machine, -0.1),
                 std::invalid_argument);
}

// ---------------------------------------------------------------
// Acceptance soak: a telemetry-on service run exports every
// introspection artifact, and the dumps reconstruct failed jobs.
// ---------------------------------------------------------------

/** Where soak artifacts go: $INVERTQ_STATUS_DIR (CI uploads it)
 *  or the gtest temp dir. Created if missing so a fresh CI
 *  workspace needs no mkdir step. */
std::string
statusDir()
{
    if (const char* dir = std::getenv("INVERTQ_STATUS_DIR")) {
        std::filesystem::create_directories(dir);
        return std::string(dir) + "/";
    }
    return ::testing::TempDir();
}

/** Owns INVERTQ_FAULTS for a test (same idiom as ServiceSoak). */
class IntrospectionSoak : public ::testing::Test
{
  protected:
    IntrospectionSoak()
    {
        if (const char* ambient = std::getenv("INVERTQ_FAULTS")) {
            saved_ = ambient;
            unsetenv("INVERTQ_FAULTS");
        }
        telemetry::resetAll();
    }

    ~IntrospectionSoak() override
    {
        if (saved_)
            setenv("INVERTQ_FAULTS", saved_->c_str(), 1);
        else
            unsetenv("INVERTQ_FAULTS");
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }

  private:
    std::optional<std::string> saved_;
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST_F(IntrospectionSoak, TelemetryOnSoakExportsEveryArtifact)
{
    telemetry::setEnabled(true);
    TimeSeriesSampler sampler(telemetry::metrics());

    const Machine machine = makeMachine("ibmqx4");
    const TrajectorySimulator prototype(machine.noiseModel(), 7);
    const Circuit circuit =
        Transpiler(machine)
            .transpile(bernsteinVazirani(3, 0b101))
            .circuit;

    svc::ServiceOptions options;
    options.numThreads = 4;
    options.backoff.baseSeconds = 1e-5;
    options.backoff.maxSeconds = 1e-4;
    JobService service(options, 2019);
    service.registerMachine("ibmqx4", prototype);
    // A machine that is down from call 0: its jobs must fail and
    // leave complete flight dumps behind.
    ASSERT_EQ(setenv("INVERTQ_FAULTS", "after=0,kind=transient",
                     1),
              0);
    service.registerMachine("dead", prototype);
    ASSERT_EQ(unsetenv("INVERTQ_FAULTS"), 0);

    std::vector<svc::JobHandle> good, bad;
    for (std::uint64_t j = 0; j < 6; ++j) {
        svc::JobOptions jobOptions;
        jobOptions.tenant = "tenant" + std::to_string(j % 2);
        jobOptions.jobKey = j;
        jobOptions.batchSize = 64;
        good.push_back(service.submit("ibmqx4", circuit, 256,
                                      jobOptions));
    }
    sampler.sampleAt(0.0);
    for (std::uint64_t j = 0; j < 2; ++j) {
        svc::JobOptions jobOptions;
        jobOptions.tenant = "unlucky";
        jobOptions.jobKey = j;
        jobOptions.batchSize = 64;
        jobOptions.maxRetries = 1;
        bad.push_back(
            service.submit("dead", circuit, 128, jobOptions));
    }
    service.drain();
    sampler.sampleAt(1.0);
    sampler.sampleAt(2.0);

    // --- Time-series export: >= 3 scraped series. ---
    const std::string seriesPath =
        statusDir() + "soak_timeseries.json";
    ASSERT_TRUE(sampler.writeTo(seriesPath));
    const JsonValue seriesDoc = JsonValue::parse(slurp(seriesPath));
    EXPECT_EQ(seriesDoc.find("schema")->asString(),
              telemetry::kTimeSeriesSchema);
    EXPECT_GE(seriesDoc.find("series")->size(), 3u)
        << seriesDoc.dump();
    EXPECT_NE(seriesDoc.find("series")->find(
                  "service.submitted_jobs"),
              nullptr);

    // --- Chrome trace export: structurally valid trace_event. ---
    const std::string tracePath = statusDir() + "soak_trace.json";
    ASSERT_TRUE(telemetry::writeTrace(
        tracePath, telemetry::tracer().snapshot(), &sampler));
    std::string error;
    EXPECT_TRUE(
        telemetry::validateTraceJson(slurp(tracePath), &error))
        << error;

    // --- Flight dumps: every failed job carries one. ---
    for (const svc::JobHandle& handle : bad) {
        ASSERT_EQ(handle.status(), svc::JobStatus::Failed);
        const svc::JobRecord& record = handle.record();
        ASSERT_FALSE(record.flight.empty());
        std::vector<std::string> kinds;
        for (const FlightEvent& event : record.flight)
            kinds.push_back(
                telemetry::flightEventKindName(event.kind));
        EXPECT_EQ(kinds.front(), "enqueue");
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), "fail"),
                  kinds.end());
        EXPECT_EQ(kinds.back(), "audit");
        // Sequence numbers are strictly increasing and timestamps
        // monotone within one job's dump.
        for (std::size_t i = 1; i < record.flight.size(); ++i) {
            EXPECT_GT(record.flight[i].seq,
                      record.flight[i - 1].seq);
            EXPECT_GE(record.flight[i].tSeconds,
                      record.flight[i - 1].tSeconds);
        }
    }
    const auto snap = telemetry::metrics().snapshot();
    EXPECT_EQ(snap.counters.at("service.flight_dumps"),
              bad.size());

    // --- Manifest: flight dumps and health in the audit log. ---
    service.healthMonitor()->checkAll();
    const std::string manifestPath =
        statusDir() + "soak_manifest.json";
    ASSERT_TRUE(service.writeSummary(manifestPath));
    const JsonValue manifest =
        JsonValue::parse(slurp(manifestPath));
    ASSERT_NE(manifest.find("health"), nullptr);
    EXPECT_EQ(
        manifest.find("health")->find("status")->asString(),
        "healthy");
    const JsonValue* jobs = manifest.find("jobs");
    ASSERT_NE(jobs, nullptr);
    std::size_t dumpsInManifest = 0;
    for (const JsonValue& job : jobs->items()) {
        ASSERT_NE(job.find("queue_wait_seconds"), nullptr);
        ASSERT_NE(job.find("exec_seconds"), nullptr);
        if (job.find("flight") != nullptr)
            ++dumpsInManifest;
    }
    // Telemetry was on for every submission, so every audited job
    // (good and bad) carries its dump.
    EXPECT_EQ(dumpsInManifest, good.size() + bad.size());

    for (const svc::JobHandle& handle : good)
        EXPECT_EQ(handle.status(), svc::JobStatus::Completed);
}

TEST_F(IntrospectionSoak, ServiceBuiltinProbesReadLiveState)
{
    JobService service(svc::ServiceOptions(), 7);
    auto monitor = service.healthMonitor();
    ASSERT_EQ(monitor, service.healthMonitor())
        << "monitor must be created once";
    EXPECT_GE(monitor->probeCount(), 3u);

    const std::vector<ProbeResult> results = monitor->checkAll();
    for (const ProbeResult& result : results) {
        EXPECT_EQ(result.status, HealthStatus::Healthy)
            << result.probe << ": " << result.message;
    }
    EXPECT_EQ(service.summary().health, HealthStatus::Healthy);
    EXPECT_EQ(service.queueDepth(), 0u);
    EXPECT_GT(service.queueCapacity(), 0u);
    EXPECT_EQ(service.dispatchedBatches(), 0u);

    const JsonValue manifest = service.summaryJson();
    ASSERT_NE(manifest.find("health"), nullptr);
    EXPECT_EQ(manifest.find("health")->find("probes")->size(),
              results.size());
}

TEST_F(IntrospectionSoak, FlightRecorderOffByDefaultCostsNothing)
{
    const Machine machine = makeMachine("ibmqx2");
    const TrajectorySimulator prototype(machine.noiseModel(), 3);
    const Circuit circuit =
        Transpiler(machine)
            .transpile(bernsteinVazirani(2, 0b11))
            .circuit;
    JobService service(svc::ServiceOptions(), 11);
    service.registerMachine("ibmqx2", prototype);
    svc::JobHandle handle =
        service.submit("ibmqx2", circuit, 128, {});
    handle.wait();
    EXPECT_TRUE(handle.record().flight.empty())
        << "no recorder may be attached while telemetry is off";
    EXPECT_EQ(handle.record().flightDropped, 0u);
}

} // namespace
} // namespace qem
