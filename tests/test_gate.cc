/**
 * @file
 * Unit tests for the gate set: matrix values, unitarity, metadata.
 */

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "qsim/gate.hh"

namespace qem
{
namespace
{

bool
approxEq(Amplitude a, Amplitude b, double tol = 1e-12)
{
    return std::abs(a - b) < tol;
}

/** ||M M^dag - I||_inf check. */
bool
isUnitaryMatrix(const Matrix2& m, double tol = 1e-12)
{
    const Matrix2 prod = matmul(m, dagger(m));
    return approxEq(prod[0], 1.0, tol) && approxEq(prod[1], 0.0, tol) &&
           approxEq(prod[2], 0.0, tol) && approxEq(prod[3], 1.0, tol);
}

TEST(Gate, NamesRoundTripKinds)
{
    EXPECT_STREQ(gateName(GateKind::CX), "cx");
    EXPECT_STREQ(gateName(GateKind::U3), "u3");
    EXPECT_STREQ(gateName(GateKind::MEASURE), "measure");
}

TEST(Gate, ArityAndParamCounts)
{
    EXPECT_EQ(gateArity(GateKind::H), 1u);
    EXPECT_EQ(gateArity(GateKind::CX), 2u);
    EXPECT_EQ(gateArity(GateKind::CCX), 3u);
    EXPECT_EQ(gateArity(GateKind::BARRIER), 0u);
    EXPECT_EQ(gateParamCount(GateKind::RX), 1u);
    EXPECT_EQ(gateParamCount(GateKind::U2), 2u);
    EXPECT_EQ(gateParamCount(GateKind::U3), 3u);
    EXPECT_EQ(gateParamCount(GateKind::X), 0u);
}

TEST(Gate, UnitaryClassification)
{
    EXPECT_TRUE(isUnitary(GateKind::X));
    EXPECT_TRUE(isUnitary(GateKind::CX));
    EXPECT_FALSE(isUnitary(GateKind::MEASURE));
    EXPECT_FALSE(isUnitary(GateKind::BARRIER));
    EXPECT_FALSE(isUnitary(GateKind::DELAY));
    EXPECT_FALSE(isUnitary(GateKind::RESET));
}

TEST(Gate, PauliXMatrix)
{
    const Matrix2 x = gateMatrix1q(GateKind::X, {});
    EXPECT_TRUE(approxEq(x[0], 0.0));
    EXPECT_TRUE(approxEq(x[1], 1.0));
    EXPECT_TRUE(approxEq(x[2], 1.0));
    EXPECT_TRUE(approxEq(x[3], 0.0));
}

TEST(Gate, HadamardMatrix)
{
    const double s2 = 1.0 / std::sqrt(2.0);
    const Matrix2 h = gateMatrix1q(GateKind::H, {});
    EXPECT_TRUE(approxEq(h[0], s2));
    EXPECT_TRUE(approxEq(h[3], -s2));
}

TEST(Gate, RotationIdentityAtZeroAngle)
{
    for (GateKind kind :
         {GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::P}) {
        const Matrix2 m = gateMatrix1q(kind, {0.0});
        EXPECT_TRUE(approxEq(m[0], 1.0)) << gateName(kind);
        EXPECT_TRUE(approxEq(m[1], 0.0)) << gateName(kind);
        EXPECT_TRUE(approxEq(m[2], 0.0)) << gateName(kind);
        EXPECT_TRUE(approxEq(m[3], 1.0)) << gateName(kind);
    }
}

TEST(Gate, RxPiIsXUpToPhase)
{
    const Matrix2 m = gateMatrix1q(GateKind::RX, {M_PI});
    // RX(pi) = -i X.
    EXPECT_TRUE(approxEq(m[1], Amplitude(0, -1)));
    EXPECT_TRUE(approxEq(m[2], Amplitude(0, -1)));
    EXPECT_TRUE(approxEq(m[0], 0.0));
}

TEST(Gate, U3ReproducesHadamard)
{
    // H = U3(pi/2, 0, pi) up to global phase (they coincide here).
    const Matrix2 u = gateMatrix1q(GateKind::U3, {M_PI / 2, 0, M_PI});
    const Matrix2 h = gateMatrix1q(GateKind::H, {});
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(approxEq(u[i], h[i], 1e-12)) << i;
}

TEST(Gate, WrongParamCountThrows)
{
    EXPECT_THROW(gateMatrix1q(GateKind::RX, {}),
                 std::invalid_argument);
    EXPECT_THROW(gateMatrix1q(GateKind::X, {1.0}),
                 std::invalid_argument);
    EXPECT_THROW(gateMatrix1q(GateKind::CX, {}),
                 std::invalid_argument);
    EXPECT_THROW(gateMatrix2q(GateKind::H), std::invalid_argument);
}

TEST(Gate, CxMatrixControlIsOperandZero)
{
    const Matrix4 cx = gateMatrix2q(GateKind::CX);
    // Input |01> (q0=1 control set) maps to output |11>.
    EXPECT_TRUE(approxEq(cx[3 * 4 + 1], 1.0));
    // Input |10> (control clear) is unchanged.
    EXPECT_TRUE(approxEq(cx[2 * 4 + 2], 1.0));
}

TEST(Gate, InverseKindPairs)
{
    EXPECT_EQ(inverseKind(GateKind::S), GateKind::SDG);
    EXPECT_EQ(inverseKind(GateKind::TDG), GateKind::T);
    EXPECT_EQ(inverseKind(GateKind::X), GateKind::X);
    EXPECT_EQ(inverseKind(GateKind::H), GateKind::H);
}

TEST(Gate, OperationToString)
{
    Operation op{GateKind::CX, {1, 4}, {}};
    EXPECT_EQ(op.toString(), "cx q1, q4");
    Operation meas{GateKind::MEASURE, {0}, {}};
    meas.cbit = 2;
    EXPECT_EQ(meas.toString(), "measure q0 -> c2");
    EXPECT_TRUE(op.touches(4));
    EXPECT_FALSE(op.touches(2));
}

/** Every parameterized single-qubit gate stays unitary over a sweep
 *  of angles. */
class GateUnitarity
    : public ::testing::TestWithParam<std::tuple<GateKind, double>>
{
};

TEST_P(GateUnitarity, MatrixIsUnitary)
{
    const auto [kind, angle] = GetParam();
    std::vector<double> params;
    for (unsigned i = 0; i < gateParamCount(kind); ++i)
        params.push_back(angle * (i + 1));
    EXPECT_TRUE(isUnitaryMatrix(gateMatrix1q(kind, params)))
        << gateName(kind) << " at angle " << angle;
}

INSTANTIATE_TEST_SUITE_P(
    AllGatesAllAngles, GateUnitarity,
    ::testing::Combine(
        ::testing::Values(GateKind::ID, GateKind::X, GateKind::Y,
                          GateKind::Z, GateKind::H, GateKind::S,
                          GateKind::SDG, GateKind::T, GateKind::TDG,
                          GateKind::SX, GateKind::RX, GateKind::RY,
                          GateKind::RZ, GateKind::P, GateKind::U2,
                          GateKind::U3),
        ::testing::Values(0.0, 0.3, 1.0, M_PI / 2, M_PI, 2.7,
                          -1.3)));

} // namespace
} // namespace qem
