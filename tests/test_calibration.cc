/**
 * @file
 * Unit tests for the calibration container.
 */

#include <gtest/gtest.h>

#include "machine/calibration.hh"

namespace qem
{
namespace
{

TEST(Calibration, QubitRecordsAreMutable)
{
    Calibration calib(3);
    calib.qubit(1).readoutP10 = 0.2;
    EXPECT_NEAR(calib.qubit(1).readoutP10, 0.2, 1e-12);
    EXPECT_THROW(calib.qubit(3), std::out_of_range);
    EXPECT_THROW(Calibration(0), std::invalid_argument);
}

TEST(Calibration, LinkLookupIsUnordered)
{
    Calibration calib(3);
    calib.setLink(2, 0, {0.04, 420.0});
    EXPECT_TRUE(calib.hasLink(0, 2));
    EXPECT_NEAR(calib.link(0, 2).cxError, 0.04, 1e-12);
    EXPECT_FALSE(calib.hasLink(0, 1));
    EXPECT_THROW(calib.link(0, 1), std::out_of_range);
    EXPECT_THROW(calib.setLink(1, 1, {}), std::invalid_argument);
}

TEST(Calibration, AssignmentErrorIsMeanOfRates)
{
    Calibration calib(2);
    calib.qubit(0).readoutP01 = 0.02;
    calib.qubit(0).readoutP10 = 0.10;
    EXPECT_NEAR(calib.readoutAssignmentError(0), 0.06, 1e-12);
}

TEST(Calibration, ReadoutStatsMinAvgMax)
{
    Calibration calib(3);
    for (Qubit q = 0; q < 3; ++q)
        calib.qubit(q).readoutP01 = 0.0;
    calib.qubit(0).readoutP10 = 0.02;
    calib.qubit(1).readoutP10 = 0.04;
    calib.qubit(2).readoutP10 = 0.12;
    const ErrorStats stats = calib.readoutErrorStats();
    EXPECT_NEAR(stats.min, 0.01, 1e-12);
    EXPECT_NEAR(stats.avg, 0.03, 1e-12);
    EXPECT_NEAR(stats.max, 0.06, 1e-12);
}

TEST(Calibration, Gate1qStats)
{
    Calibration calib(2);
    calib.qubit(0).gate1qError = 0.001;
    calib.qubit(1).gate1qError = 0.003;
    const ErrorStats stats = calib.gate1qErrorStats();
    EXPECT_NEAR(stats.min, 0.001, 1e-12);
    EXPECT_NEAR(stats.avg, 0.002, 1e-12);
    EXPECT_NEAR(stats.max, 0.003, 1e-12);
}

TEST(Calibration, CrosstalkValidation)
{
    Calibration calib(2);
    EXPECT_FALSE(calib.hasReadoutCrosstalk());
    std::vector<std::vector<double>> good(2,
                                          std::vector<double>(2, 0));
    std::vector<std::vector<double>> bad(1,
                                         std::vector<double>(2, 0));
    EXPECT_THROW(calib.setReadoutCrosstalk(bad, good),
                 std::invalid_argument);
    calib.setReadoutCrosstalk(good, good);
    EXPECT_TRUE(calib.hasReadoutCrosstalk());
}

} // namespace
} // namespace qem
