/**
 * @file
 * Determinism goldens for the policy family: Rebalance and BFA on
 * the ibmqx4 BV-4A program are pinned, bit-for-bit, on both
 * execution paths — the serial backend and the parallel runtime
 * (whose merged histograms must be identical across 1/4/8 workers
 * for a fixed seed). The committed manifest
 * tests/golden/policy_family.json is checked statistically via the
 * golden harness AND byte-exactly via the recorded histograms, so
 * any change to the policies' draw-stream discipline (twirl-string
 * derivation, share-split arithmetic, unfolding rounding) turns
 * the diff into a reviewable golden update instead of silent
 * drift. The BFA analytic record additionally pins the oracle's
 * unfolded prediction for the realized twirl plan at 1e-12.
 *
 * Regenerate with `qem_tests --update-golden` (or
 * INVERTQ_UPDATE_GOLDEN=1) and commit the diff.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "kernels/benchmarks.hh"
#include "machine/machines.hh"
#include "verify/golden.hh"
#include "verify/oracle.hh"

#ifndef QEM_GOLDEN_DIR
#define QEM_GOLDEN_DIR "tests/golden"
#endif

namespace qem
{
namespace
{

constexpr std::size_t kShots = 2048;
constexpr std::uint64_t kSeed = 2019;
/** Two-sample budget of the statistical golden comparison. */
constexpr double kAlpha = 1e-9;

/** One execution of both family policies on the BV-4A program. */
struct FamilyRun
{
    Counts rebalance;
    InversionString prefix = 0;
    Counts bfa;
    ModePlan twirlPlan;
};

FamilyRun
runFamily(SessionOptions options)
{
    MachineSession session(makeMachine("ibmqx4"), kSeed, options);
    const NisqBenchmark bench =
        makeBvBenchmark("bv-4A", 4, "0111");
    const TranspiledProgram program =
        session.prepare(bench.circuit);

    FamilyRun out;
    RebalancePolicy rebalance(session.profileProgram(program));
    out.rebalance = session.runPolicy(program, rebalance, kShots);
    out.prefix = rebalance.lastPlan().at(0).inversion;

    BfaOptions bfa_options;
    bfa_options.symmetrizedRates =
        symmetrizedReadoutRates(session.machine(), program);
    BitFlipAveragePolicy bfa(bfa_options);
    out.bfa = session.runPolicy(program, bfa, kShots);
    out.twirlPlan = bfa.lastTwirlPlan();
    return out;
}

/** Statistical golden check plus the byte-exact pin. */
void
expectPinned(verify::GoldenStore& golden, const std::string& name,
             const Counts& counts,
             std::map<std::string, std::string> meta)
{
    const verify::CheckResult check =
        golden.checkSampled(name, counts, kAlpha, std::move(meta));
    EXPECT_TRUE(check) << name << ": " << check.message;
    if (golden.updating())
        return;
    const verify::GoldenRecord* record = golden.find(name);
    ASSERT_NE(record, nullptr) << name;
    EXPECT_EQ(record->counts.raw(), counts.raw())
        << name << ": histogram drifted from the committed golden";
}

TEST(PolicyFamilyGolden, PinnedAcrossThreadCountsAndSerial)
{
    verify::GoldenStore golden(
        std::string(QEM_GOLDEN_DIR) + "/policy_family.json");

    // Parallel runtime: merged histograms must be bit-identical
    // across worker counts, so one golden record covers them all.
    const FamilyRun parallel = runFamily(SessionOptions{1, 64});
    for (unsigned threads : {4u, 8u}) {
        const FamilyRun run =
            runFamily(SessionOptions{threads, 64});
        EXPECT_EQ(run.rebalance.raw(), parallel.rebalance.raw())
            << "Rebalance varies with " << threads << " threads";
        EXPECT_EQ(run.bfa.raw(), parallel.bfa.raw())
            << "BFA varies with " << threads << " threads";
        EXPECT_EQ(run.prefix, parallel.prefix);
    }

    // Serial path: a different (legacy) stream layout, pinned by
    // its own records.
    const FamilyRun serial = runFamily(SessionOptions{});

    expectPinned(golden, "ibmqx4/bv-4A/rebalance-parallel",
                 parallel.rebalance,
                 {{"machine", "ibmqx4"},
                  {"policy", "Rebalance"},
                  {"prefix", std::to_string(parallel.prefix)}});
    expectPinned(golden, "ibmqx4/bv-4A/rebalance-serial",
                 serial.rebalance,
                 {{"machine", "ibmqx4"},
                  {"policy", "Rebalance"},
                  {"prefix", std::to_string(serial.prefix)}});
    expectPinned(golden, "ibmqx4/bv-4A/bfa-parallel", parallel.bfa,
                 {{"machine", "ibmqx4"}, {"policy", "BFA"}});
    expectPinned(golden, "ibmqx4/bv-4A/bfa-serial", serial.bfa,
                 {{"machine", "ibmqx4"}, {"policy", "BFA"}});

    // The analytic side: the twirl plan is a pure function of
    // (seed, groups, width, shots) — backend-independent — and the
    // oracle's unfolded prediction for it is deterministic, so it
    // pins at numeric tolerance.
    ASSERT_EQ(parallel.twirlPlan.size(), serial.twirlPlan.size());
    for (std::size_t g = 0; g < serial.twirlPlan.size(); ++g) {
        EXPECT_EQ(parallel.twirlPlan[g].inversion,
                  serial.twirlPlan[g].inversion);
        EXPECT_EQ(parallel.twirlPlan[g].shots,
                  serial.twirlPlan[g].shots);
    }
    MachineSession session(makeMachine("ibmqx4"), kSeed);
    const TranspiledProgram program = session.prepare(
        makeBvBenchmark("bv-4A", 4, "0111").circuit);
    const verify::ExactOracle oracle(session.machine());
    const verify::CheckResult analytic = golden.checkAnalytic(
        "ibmqx4/bv-4A/bfa-analytic", program.circuit.numClbits(),
        oracle.bfaCorrectedDistribution(
            program.circuit, serial.twirlPlan,
            symmetrizedReadoutRates(session.machine(), program)),
        1e-12, {{"machine", "ibmqx4"}, {"policy", "BFA"}});
    EXPECT_TRUE(analytic) << analytic.message;

    if (golden.updating()) {
        ASSERT_TRUE(golden.flush());
    }
}

} // namespace
} // namespace qem
