/**
 * @file
 * Tests of the service's shared artifact cache: key discipline,
 * single-flight under concurrent same-key computes, LRU eviction
 * under the byte budget, failure withdrawal, and bit-identity of
 * cached vs freshly compiled execution. Also covers the derived
 * artifact families (confusion CDFs, cached RBMS profiles).
 */

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/trajectory.hh"
#include "qsim/rng.hh"
#include "qsim/simulator.hh"
#include "service/artifact_cache.hh"
#include "service/artifacts.hh"
#include "service/fingerprint.hh"
#include "transpile/transpiler.hh"

namespace qem
{
namespace
{

using svc::ArtifactCache;
using svc::ArtifactKey;
using svc::ArtifactKind;

ArtifactKey
keyOf(std::uint64_t subject, const std::string& machine = "m",
      std::uint64_t options = 0,
      ArtifactKind kind = ArtifactKind::CompiledProgram)
{
    ArtifactKey key;
    key.kind = kind;
    key.subject = subject;
    key.machine = machine;
    key.options = options;
    return key;
}

ArtifactCache::Options
cacheOptions(std::size_t max_bytes, unsigned shards)
{
    ArtifactCache::Options options;
    options.maxBytes = max_bytes;
    options.shards = shards;
    return options;
}

TEST(ArtifactKey, EqualityCoversEveryField)
{
    const ArtifactKey a = keyOf(1, "m", 2);
    EXPECT_EQ(a, keyOf(1, "m", 2));
    EXPECT_FALSE(a == keyOf(9, "m", 2));
    EXPECT_FALSE(a == keyOf(1, "other", 2));
    EXPECT_FALSE(a == keyOf(1, "m", 9));
    EXPECT_FALSE(
        a == keyOf(1, "m", 2, ArtifactKind::RbmsProfile));
    // Distinct keys should (generically) hash apart.
    EXPECT_NE(a.hash(), keyOf(9, "m", 2).hash());
    EXPECT_FALSE(a.toString().empty());
}

TEST(ArtifactCache, ComputesOnceThenHits)
{
    ArtifactCache cache;
    int computes = 0;
    const auto compute =
        [&computes]() -> ArtifactCache::Costed<int> {
        ++computes;
        return {std::make_shared<const int>(42), 8};
    };
    bool hit = true;
    auto first =
        cache.getOrCompute<int>(keyOf(7), compute, &hit);
    EXPECT_FALSE(hit);
    auto second =
        cache.getOrCompute<int>(keyOf(7), compute, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(*second, 42);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ArtifactCache, SingleFlightUnderConcurrentSameKey)
{
    ArtifactCache cache;
    std::atomic<int> computes{0};
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const int>> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &computes, &results, t] {
            results[static_cast<std::size_t>(t)] =
                cache.getOrCompute<int>(
                    keyOf(11),
                    [&computes]()
                        -> ArtifactCache::Costed<int> {
                        ++computes;
                        // Widen the race window: every other
                        // thread must wait, not recompute.
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(50));
                        return {std::make_shared<const int>(5),
                                8};
                    });
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(computes.load(), 1);
    for (const auto& r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r.get(), results.front().get());
    }
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits,
              static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedUnderBudget)
{
    // One shard, budget for two 100-byte entries.
    ArtifactCache cache(cacheOptions(200, 1));
    const auto make = [](int v) {
        return [v]() -> ArtifactCache::Costed<int> {
            return {std::make_shared<const int>(v), 100};
        };
    };
    (void)cache.getOrCompute<int>(keyOf(1), make(1));
    (void)cache.getOrCompute<int>(keyOf(2), make(2));
    // Touch key 1 so key 2 is the LRU victim.
    bool hit = false;
    (void)cache.getOrCompute<int>(keyOf(1), make(1), &hit);
    EXPECT_TRUE(hit);
    (void)cache.getOrCompute<int>(keyOf(3), make(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.stats().bytesUsed, 200u);
    (void)cache.getOrCompute<int>(keyOf(1), make(1), &hit);
    EXPECT_TRUE(hit) << "recently used entry was evicted";
    (void)cache.getOrCompute<int>(keyOf(2), make(2), &hit);
    EXPECT_FALSE(hit) << "LRU entry survived over budget";
}

TEST(ArtifactCache, ZeroBudgetKeepsNothingResident)
{
    ArtifactCache cache(cacheOptions(0, 2));
    int computes = 0;
    const auto compute =
        [&computes]() -> ArtifactCache::Costed<int> {
        ++computes;
        return {std::make_shared<const int>(1), 64};
    };
    auto value = cache.getOrCompute<int>(keyOf(4), compute);
    EXPECT_EQ(*value, 1); // Still handed to the caller.
    (void)cache.getOrCompute<int>(keyOf(4), compute);
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytesUsed, 0u);
}

TEST(ArtifactCache, ThrowingComputeWithdrawsPendingSlot)
{
    ArtifactCache cache;
    EXPECT_THROW(
        (void)cache.getOrCompute<int>(
            keyOf(9),
            []() -> ArtifactCache::Costed<int> {
                throw std::runtime_error("compile exploded");
            }),
        std::runtime_error);
    // The key is not poisoned: the next caller computes cleanly.
    bool hit = true;
    auto value = cache.getOrCompute<int>(
        keyOf(9),
        []() -> ArtifactCache::Costed<int> {
            return {std::make_shared<const int>(3), 8};
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(*value, 3);
}

TEST(ArtifactCache, ClearDropsReadyEntries)
{
    ArtifactCache cache;
    (void)cache.getOrCompute<int>(
        keyOf(1), []() -> ArtifactCache::Costed<int> {
            return {std::make_shared<const int>(1), 8};
        });
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    bool hit = true;
    (void)cache.getOrCompute<int>(
        keyOf(1),
        []() -> ArtifactCache::Costed<int> {
            return {std::make_shared<const int>(1), 8};
        },
        &hit);
    EXPECT_FALSE(hit);
}

/**
 * The acceptance property behind the compiled-program family: a
 * cached compiled run and a fresh compile produce bit-identical
 * counts for the same shot stream.
 */
TEST(ArtifactCache, CachedCompiledRunIsBitIdenticalToFresh)
{
    const Machine machine = makeMachine("ibmqx4");
    const Transpiler transpiler(machine);
    const Circuit circuit =
        transpiler.transpile(bernsteinVazirani(3, 0b101)).circuit;
    const TrajectorySimulator sim(machine.noiseModel(), 1);

    ArtifactCache cache;
    ArtifactKey key;
    key.kind = ArtifactKind::CompiledProgram;
    key.subject = svc::fingerprintCircuit(circuit);
    key.machine = machine.name();
    const auto compute =
        [&]() -> ArtifactCache::Costed<
                  ShardedBackend::CompiledRun> {
        return {sim.compile(circuit), 4096};
    };
    auto cached =
        cache.getOrCompute<ShardedBackend::CompiledRun>(
            key, compute);
    auto cachedAgain =
        cache.getOrCompute<ShardedBackend::CompiledRun>(
            key, compute);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached.get(), cachedAgain.get());

    const auto fresh = sim.compile(circuit);
    ASSERT_NE(fresh, nullptr);
    Rng a(99), b(99);
    EXPECT_EQ(cached->run(2048, a).raw(),
              fresh->run(2048, b).raw());
}

TEST(ConfusionCdf, RowsAreNormalizedCdfs)
{
    const Machine machine = makeMachine("ibmqx4");
    const svc::ConfusionCdf cdf(machine.calibration(), {0, 1});
    ASSERT_EQ(cdf.numBits(), 2u);
    for (BasisState truth = 0; truth < 4; ++truth) {
        const std::vector<double>& row = cdf.row(truth);
        ASSERT_EQ(row.size(), 4u);
        double prev = 0.0;
        for (double c : row) {
            EXPECT_GE(c, prev);
            prev = c;
        }
        EXPECT_DOUBLE_EQ(row.back(), 1.0);
        // The diagonal dominates for calibrated flip rates < 1/2.
        for (BasisState observed = 0; observed < 4; ++observed) {
            if (observed != truth) {
                EXPECT_GT(cdf.probability(truth, truth),
                          cdf.probability(truth, observed));
            }
        }
    }
}

TEST(ConfusionCdf, MatchesIndependentFlipProduct)
{
    // A crosstalk-free machine, so rows factor into per-qubit
    // isolated flip rates (ibmqx4 carries crosstalk matrices and
    // would not).
    const Machine machine = makeLinearMachine(3);
    const Calibration& cal = machine.calibration();
    ASSERT_FALSE(cal.hasReadoutCrosstalk());
    const svc::ConfusionCdf cdf(cal, {0, 1});
    const double p01a = cal.qubit(0).readoutP01;
    const double p10a = cal.qubit(0).readoutP10;
    const double p01b = cal.qubit(1).readoutP01;
    // truth 0b01 (qubit 0 true-1, qubit 1 true-0), observed 0b00:
    // qubit 0 relaxed (p10), qubit 1 stayed 0 (1 - p01).
    EXPECT_NEAR(cdf.probability(0b01, 0b00),
                p10a * (1.0 - p01b), 1e-12);
    // truth 0b00 observed 0b01: qubit 0 excited (p01).
    EXPECT_NEAR(cdf.probability(0b00, 0b01),
                p01a * (1.0 - p01b), 1e-12);
    // Sampling walks the CDF: u below the first bucket returns
    // the first outcome.
    EXPECT_EQ(cdf.sample(0b00, 0.0), 0u);
    EXPECT_EQ(cdf.sample(0b00, 0.9999999), 3u);
}

TEST(ConfusionCdf, RejectsOversizedRegisters)
{
    const Machine machine = makeLinearMachine(
        svc::ConfusionCdf::kMaxBits + 2);
    std::vector<Qubit> qubits;
    for (Qubit q = 0; q <= svc::ConfusionCdf::kMaxBits; ++q)
        qubits.push_back(q);
    EXPECT_THROW(
        svc::ConfusionCdf(machine.calibration(), qubits),
        std::invalid_argument);
}

TEST(ConfusionCdf, CachedLookupHitsAndKeysOnRates)
{
    const Machine machine = makeMachine("ibmqx4");
    ArtifactCache cache;
    bool hit = true;
    auto first = svc::cachedConfusionCdf(
        cache, machine.calibration(), machine.name(), {0, 1},
        &hit);
    EXPECT_FALSE(hit);
    auto second = svc::cachedConfusionCdf(
        cache, machine.calibration(), machine.name(), {0, 1},
        &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get());

    // A recalibrated machine must key differently (stale rows
    // would silently mis-correct).
    Machine drifted = makeMachine("ibmqx4");
    drifted.calibration().qubit(0).readoutP10 += 0.01;
    const auto cleanKey = svc::confusionCdfKey(
        machine.name(), {0, 1}, machine.calibration());
    const auto driftedKey = svc::confusionCdfKey(
        machine.name(), {0, 1}, drifted.calibration());
    EXPECT_FALSE(cleanKey == driftedKey);
}

TEST(ArtifactCache, InvalidateDropsReadyEntry)
{
    ArtifactCache cache;
    int computes = 0;
    const auto compute =
        [&computes]() -> ArtifactCache::Costed<int> {
        ++computes;
        return {std::make_shared<const int>(computes), 64};
    };
    auto pinned = cache.getOrCompute<int>(keyOf(5), compute);
    EXPECT_TRUE(cache.invalidate(keyOf(5)));
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytesUsed, 0u);
    EXPECT_EQ(cache.stats().invalidations, 1u);
    // Pinned holders keep their generation.
    EXPECT_EQ(*pinned, 1);
    // The next lookup recomputes fresh.
    bool hit = true;
    auto fresh = cache.getOrCompute<int>(keyOf(5), compute, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(*fresh, 2);
    EXPECT_EQ(computes, 2);
}

TEST(ArtifactCache, InvalidateUnknownKeyIsANoop)
{
    ArtifactCache cache;
    EXPECT_FALSE(cache.invalidate(keyOf(123)));
    EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(ArtifactCache, InvalidateRacesSingleFlightCompute)
{
    ArtifactCache cache;
    std::atomic<bool> computing{false};
    std::atomic<int> computes{0};
    std::shared_ptr<const int> initiator;
    std::thread worker([&] {
        initiator = cache.getOrCompute<int>(
            keyOf(21),
            [&]() -> ArtifactCache::Costed<int> {
                computing.store(true);
                ++computes;
                // Hold the pending slot open so invalidate() is
                // guaranteed to land mid-flight.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                return {std::make_shared<const int>(1), 64};
            });
    });
    while (!computing.load())
        std::this_thread::yield();
    // Mid-flight invalidation: an entry (the pending slot) exists.
    EXPECT_TRUE(cache.invalidate(keyOf(21)));
    // A second invalidation of the same pending slot counts once.
    EXPECT_FALSE(cache.invalidate(keyOf(21)));
    worker.join();

    // The initiating caller still got its value...
    ASSERT_NE(initiator, nullptr);
    EXPECT_EQ(*initiator, 1);
    // ...but the result was never retained: the next lookup
    // recomputes instead of serving the pre-invalidate value.
    bool hit = true;
    auto fresh = cache.getOrCompute<int>(
        keyOf(21),
        [&]() -> ArtifactCache::Costed<int> {
            ++computes;
            return {std::make_shared<const int>(2), 64};
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(*fresh, 2);
    EXPECT_EQ(computes.load(), 2);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ArtifactCache, EvictionsAndInvalidationsCountSeparately)
{
    // One shard, budget for two entries: filling three evicts one.
    ArtifactCache cache(cacheOptions(200, 1));
    const auto make = [](int v) {
        return [v]() -> ArtifactCache::Costed<int> {
            return {std::make_shared<const int>(v), 100};
        };
    };
    (void)cache.getOrCompute<int>(keyOf(1), make(1));
    (void)cache.getOrCompute<int>(keyOf(2), make(2));
    (void)cache.getOrCompute<int>(keyOf(3), make(3));
    EXPECT_TRUE(cache.invalidate(keyOf(3)));
    // Budget reclaim and caller-declared staleness are different
    // signals: conflating them would fire the cache-thrash probe
    // on healthy recalibration churn.
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ConfusionCdf, EmpiricalRowsMatchHistograms)
{
    // Two bits, hand-built holdout histograms.
    std::vector<Counts> perTruth(4, Counts(2));
    perTruth[0].add(0, 90);
    perTruth[0].add(1, 10);
    perTruth[1].add(1, 75);
    perTruth[1].add(0, 25);
    perTruth[2].add(2, 60);
    perTruth[2].add(3, 40);
    perTruth[3].add(3, 100);
    const svc::ConfusionCdf cdf(2, perTruth);
    EXPECT_NEAR(cdf.probability(0, 0), 0.90, 1e-12);
    EXPECT_NEAR(cdf.probability(0, 1), 0.10, 1e-12);
    EXPECT_NEAR(cdf.probability(1, 0), 0.25, 1e-12);
    EXPECT_NEAR(cdf.probability(2, 3), 0.40, 1e-12);
    EXPECT_DOUBLE_EQ(cdf.row(3).back(), 1.0);
    EXPECT_EQ(cdf.sample(3, 0.5), 3u);

    // One histogram per truth state, none empty, outcomes in range.
    std::vector<Counts> tooFew(3, Counts(2));
    EXPECT_THROW(svc::ConfusionCdf(2, tooFew),
                 std::invalid_argument);
    std::vector<Counts> empty(4, Counts(2));
    empty[0].add(0, 1);
    EXPECT_THROW(svc::ConfusionCdf(2, empty),
                 std::invalid_argument);
    // A wider register smuggles outcome 4 past Counts::add; the
    // 2-bit CDF constructor must still reject it.
    std::vector<Counts> wide(4, Counts(3));
    for (auto& c : wide)
        c.add(0, 1);
    wide[1].add(4, 1);
    EXPECT_THROW(svc::ConfusionCdf(2, wide),
                 std::invalid_argument);
}

TEST(ArtifactKey, GenerationZeroKeepsHistoricalKeys)
{
    const Circuit circuit = bernsteinVazirani(3, 0b101);
    const ArtifactKey base =
        svc::compiledProgramKey("ibmqx4", circuit);
    // Generation 0 is the identity: every un-versioned call site
    // (and every committed golden) keeps its historical key.
    EXPECT_EQ(base, svc::compiledProgramKey("ibmqx4", circuit, 0));
    EXPECT_EQ(base, svc::withGeneration(base, 0));
    // Later generations key apart from the base and each other.
    const ArtifactKey gen1 =
        svc::compiledProgramKey("ibmqx4", circuit, 1);
    const ArtifactKey gen2 =
        svc::compiledProgramKey("ibmqx4", circuit, 2);
    EXPECT_FALSE(base == gen1);
    EXPECT_FALSE(gen1 == gen2);
    EXPECT_NE(gen1.hash(), gen2.hash());
}

TEST(ArtifactCache, CachedRbmsProfileCharacterizesOnce)
{
    const Machine machine = makeMachine("ibmqx4");
    TrajectorySimulator backend(machine.noiseModel(), 7);
    ArtifactCache cache;
    RbmsOptions options;
    options.shotsPerState = 64; // Keep the test cheap.
    bool hit = true;
    auto first = svc::cachedRbmsProfile(
        cache, backend, machine.name(), {0, 1, 2}, options,
        &hit);
    EXPECT_FALSE(hit);
    ASSERT_NE(first, nullptr);
    auto second = svc::cachedRbmsProfile(
        cache, backend, machine.name(), {0, 1, 2}, options,
        &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get());
    // Different knobs are a different artifact.
    RbmsOptions other = options;
    other.shotsPerState = 128;
    auto third = svc::cachedRbmsProfile(
        cache, backend, machine.name(), {0, 1, 2}, other, &hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(first.get(), third.get());
}

} // namespace
} // namespace qem
