/**
 * @file
 * Tests of the multi-tenant job service: async completion, the
 * determinism contract (per-job counts are a pure function of
 * service seed, tenant, job key — pinned by a committed golden
 * across thread counts and submission interleavings), admission
 * control, cancellation, priority dispatch, shared-cache
 * effectiveness, and the exported audit manifest.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "runtime/shot_plan.hh"
#include "service/artifacts.hh"
#include "service/job_service.hh"
#include "telemetry/json.hh"
#include "telemetry/telemetry.hh"
#include "transpile/transpiler.hh"
#include "verify/golden.hh"

namespace qem
{
namespace
{

using svc::JobHandle;
using svc::JobOptions;
using svc::JobPriority;
using svc::JobService;
using svc::JobStatus;
using svc::ServiceOptions;

/**
 * Shields every test from an ambient INVERTQ_FAULTS (the service
 * wraps worker clones per that knob at registration time).
 */
class JobServiceTest : public ::testing::Test
{
  protected:
    JobServiceTest()
    {
        if (const char* ambient = std::getenv("INVERTQ_FAULTS")) {
            saved_ = ambient;
            unsetenv("INVERTQ_FAULTS");
        }
    }

    ~JobServiceTest() override
    {
        if (saved_)
            setenv("INVERTQ_FAULTS", saved_->c_str(), 1);
        else
            unsetenv("INVERTQ_FAULTS");
    }

  private:
    std::optional<std::string> saved_;
};

/**
 * A backend whose runs block until the test opens a shared gate —
 * the deterministic way to hold a 1-thread service busy while
 * later submissions queue up behind it. Clones share the gate.
 */
class GatedBackend : public ShardedBackend
{
  public:
    struct Gate
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool open = false;
        std::atomic<int> runs{0};

        void release()
        {
            {
                std::lock_guard<std::mutex> lock(mutex);
                open = true;
            }
            cv.notify_all();
        }
    };

    explicit GatedBackend(std::shared_ptr<Gate> gate)
        : gate_(std::move(gate))
    {
    }

    Counts run(const Circuit& circuit, std::size_t shots) override
    {
        Rng rng(0);
        return run(circuit, shots, rng);
    }

    Counts run(const Circuit& circuit, std::size_t shots,
               Rng& rng) const override
    {
        (void)rng;
        {
            std::unique_lock<std::mutex> lock(gate_->mutex);
            gate_->cv.wait(lock, [this] { return gate_->open; });
        }
        ++gate_->runs;
        Counts counts(circuit.numClbits());
        counts.add(0, shots); // Every trial reads all-zeros.
        return counts;
    }

    unsigned numQubits() const override { return 8; }

    std::unique_ptr<ShardedBackend> clone() const override
    {
        return std::make_unique<GatedBackend>(gate_);
    }

  private:
    std::shared_ptr<Gate> gate_;
};

/** Physical BV circuit for @p machine_name. */
Circuit
physicalBv(const std::string& machine_name, unsigned n,
           BasisState key)
{
    const Machine machine = makeMachine(machine_name);
    return Transpiler(machine)
        .transpile(bernsteinVazirani(n, key))
        .circuit;
}

/**
 * The service's determinism contract, replayed serially: jobStream
 * seeds the job, batch i samples substream i, batches merge in
 * index order. Any service run of the same (seed, tenant, key,
 * circuit, shots, batch size) must match this bit-for-bit.
 */
Counts
serialReference(const ShardedBackend& prototype,
                const Circuit& circuit, std::size_t shots,
                std::size_t batch_size, std::uint64_t service_seed,
                const std::string& tenant, std::uint64_t job_key)
{
    const Rng job =
        JobService::jobStream(service_seed, tenant, job_key);
    Counts merged(circuit.numClbits());
    if (shots == 0)
        return merged;
    const ShotPlan plan(shots, batch_size);
    for (const ShotBatch& batch : plan.batches()) {
        Rng rng = ShotPlan::substream(job, batch.index);
        merged.merge(prototype.run(circuit, batch.shots, rng));
    }
    return merged;
}

ServiceOptions
serviceOptions(unsigned threads, std::size_t max_queued = 4096)
{
    ServiceOptions options;
    options.numThreads = threads;
    options.maxQueuedBatches = max_queued;
    return options;
}

JobOptions
jobOptions(const std::string& tenant, std::uint64_t job_key,
           std::size_t batch_size = 128,
           JobPriority priority = JobPriority::Batch)
{
    JobOptions options;
    options.tenant = tenant;
    options.jobKey = job_key;
    options.batchSize = batch_size;
    options.priority = priority;
    return options;
}

TEST_F(JobServiceTest, CompletedJobMatchesSerialReference)
{
    const Machine machine = makeMachine("ibmqx4");
    const TrajectorySimulator prototype(machine.noiseModel(), 7);
    const Circuit circuit = physicalBv("ibmqx4", 3, 0b101);

    JobService service(serviceOptions(4), 99);
    ASSERT_TRUE(service.registerMachine("ibmqx4", prototype));
    EXPECT_FALSE(service.registerMachine("ibmqx4", prototype));
    EXPECT_TRUE(service.hasMachine("ibmqx4"));

    JobHandle handle = service.submit(
        "ibmqx4", circuit, 1024, jobOptions("alice", 5));
    ASSERT_TRUE(handle.valid());
    handle.wait();
    EXPECT_EQ(handle.status(), JobStatus::Completed);
    EXPECT_EQ(handle.get().total(), 1024u);
    EXPECT_EQ(handle.get().raw(),
              serialReference(prototype, circuit, 1024, 128, 99,
                              "alice", 5)
                  .raw());

    const svc::JobRecord& record = handle.record();
    EXPECT_EQ(record.tenant, "alice");
    EXPECT_EQ(record.machine, "ibmqx4");
    EXPECT_EQ(record.jobKey, 5u);
    EXPECT_EQ(record.shotsRequested, 1024u);
    EXPECT_EQ(record.shotsCompleted, 1024u);
    EXPECT_EQ(record.batches, 8u);
    EXPECT_EQ(record.status, JobStatus::Completed);
    EXPECT_TRUE(record.compiled);
    EXPECT_GE(record.wallSeconds, 0.0);
}

TEST_F(JobServiceTest, UnregisteredMachineThrows)
{
    JobService service(serviceOptions(1));
    Circuit circuit(2);
    circuit.measureAll();
    EXPECT_THROW(
        (void)service.submit("nope", circuit, 16, JobOptions{}),
        std::invalid_argument);
}

TEST_F(JobServiceTest, ZeroShotJobCompletesEmpty)
{
    JobService service(serviceOptions(1));
    service.registerMachine(
        "ibmqx2", TrajectorySimulator(
                      makeMachine("ibmqx2").noiseModel(), 3));
    const Circuit circuit = physicalBv("ibmqx2", 2, 0b11);
    JobHandle handle = service.submit("ibmqx2", circuit, 0,
                                      jobOptions("alice", 0));
    handle.wait();
    EXPECT_EQ(handle.status(), JobStatus::Completed);
    EXPECT_EQ(handle.get().total(), 0u);
    EXPECT_EQ(handle.record().batches, 0u);
}

TEST_F(JobServiceTest, AdmissionControlRejectsOverflow)
{
    const TrajectorySimulator prototype(
        makeMachine("ibmqx2").noiseModel(), 3);
    const Circuit circuit = physicalBv("ibmqx2", 2, 0b01);

    // Bound: 2 queued batches. 1024/128 = 8 batches cannot fit.
    JobService service(serviceOptions(1, 2), 7);
    service.registerMachine("ibmqx2", prototype);
    EXPECT_THROW((void)service.submit("ibmqx2", circuit, 1024,
                                      jobOptions("alice", 0)),
                 BudgetExhausted);

    // Rejection enqueued nothing: the service drains instantly and
    // a job that fits still runs to completion.
    service.drain();
    JobHandle fits = service.submit("ibmqx2", circuit, 128,
                                    jobOptions("alice", 1));
    fits.wait();
    EXPECT_EQ(fits.status(), JobStatus::Completed);

    const svc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.rejected, 1u);
    EXPECT_EQ(summary.submitted, 1u);
    EXPECT_EQ(summary.completed, 1u);
}

TEST_F(JobServiceTest, CancelSkipsQueuedJob)
{
    auto gate = std::make_shared<GatedBackend::Gate>();
    JobService service(serviceOptions(1));
    service.registerMachine("gated", GatedBackend(gate));
    Circuit circuit(2);
    circuit.measureAll();

    // One batch occupies the only worker at the closed gate...
    JobHandle blocker = service.submit(
        "gated", circuit, 64, jobOptions("alice", 0, 64));
    while (blocker.status() != JobStatus::Running)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // ...so this one is still queued and cancellable.
    JobHandle victim = service.submit(
        "gated", circuit, 64, jobOptions("alice", 1, 64));
    EXPECT_TRUE(service.cancel(victim));

    gate->release();
    service.drain();

    EXPECT_EQ(blocker.status(), JobStatus::Completed);
    EXPECT_EQ(blocker.get().total(), 64u);
    EXPECT_EQ(victim.status(), JobStatus::Cancelled);
    EXPECT_THROW((void)victim.get(), svc::JobCancelled);
    EXPECT_EQ(victim.record().status, JobStatus::Cancelled);
    EXPECT_EQ(victim.record().shotsCompleted, 0u);
    // The victim's batch never reached the backend.
    EXPECT_EQ(gate->runs.load(), 1);
    // Terminal jobs cannot be cancelled again.
    EXPECT_FALSE(service.cancel(victim));
    EXPECT_FALSE(service.cancel(blocker));
    EXPECT_EQ(service.summary().cancelled, 1u);
}

TEST_F(JobServiceTest, InteractiveDispatchesBeforeBackground)
{
    auto gate = std::make_shared<GatedBackend::Gate>();
    JobService service(serviceOptions(1));
    service.registerMachine("gated", GatedBackend(gate));
    Circuit circuit(2);
    circuit.measureAll();

    JobHandle blocker = service.submit(
        "gated", circuit, 16,
        jobOptions("alice", 0, 16, JobPriority::Interactive));
    while (blocker.status() != JobStatus::Running)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Submitted background-first: dispatch order must not be FIFO.
    JobHandle background = service.submit(
        "gated", circuit, 16,
        jobOptions("alice", 1, 16, JobPriority::Background));
    JobHandle batch = service.submit(
        "gated", circuit, 16,
        jobOptions("bob", 2, 16, JobPriority::Batch));
    JobHandle interactive = service.submit(
        "gated", circuit, 16,
        jobOptions("carol", 3, 16, JobPriority::Interactive));

    gate->release();
    service.drain();

    std::vector<std::uint64_t> order;
    for (const svc::JobRecord& record : service.auditLog())
        order.push_back(record.id);
    ASSERT_EQ(order.size(), 4u);
    // One worker: completion order == dispatch order.
    EXPECT_EQ(order[0], blocker.id());
    EXPECT_EQ(order[1], interactive.id());
    EXPECT_EQ(order[2], batch.id());
    EXPECT_EQ(order[3], background.id());
}

/** Index of the first flight event of @p kind; -1 when absent. */
int
flightIndexOf(const svc::JobRecord& record,
              telemetry::FlightEventKind kind)
{
    for (std::size_t i = 0; i < record.flight.size(); ++i) {
        if (record.flight[i].kind == kind)
            return static_cast<int>(i);
    }
    return -1;
}

TEST_F(JobServiceTest, QueueWaitExecuteSplitObeysInvariants)
{
    using telemetry::FlightEventKind;
    auto gate = std::make_shared<GatedBackend::Gate>();
    ServiceOptions options = serviceOptions(1);
    options.flightRecorder = true; // No telemetry needed.
    JobService service(options);
    service.registerMachine("gated", GatedBackend(gate));
    Circuit circuit(2);
    circuit.measureAll();

    JobHandle blocker = service.submit(
        "gated", circuit, 64, jobOptions("alice", 0, 64));
    while (blocker.status() != JobStatus::Running)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Waits at the queue while the blocker owns the only worker.
    JobHandle waiter = service.submit(
        "gated", circuit, 64, jobOptions("alice", 1, 64));
    gate->release();
    service.drain();

    for (const JobHandle* handle : {&blocker, &waiter}) {
        const svc::JobRecord& record = handle->record();
        ASSERT_EQ(record.status, JobStatus::Completed);
        EXPECT_GE(record.queueWaitSeconds, 0.0);
        EXPECT_GE(record.execSeconds, 0.0);
        // The split is exact, not approximate: wait + execute
        // reconstructs the wall duration bit-for-bit.
        EXPECT_DOUBLE_EQ(record.queueWaitSeconds +
                             record.execSeconds,
                         record.wallSeconds);

        // Flight events tell the same story, in causal order.
        const int enqueue =
            flightIndexOf(record, FlightEventKind::Enqueue);
        const int admit =
            flightIndexOf(record, FlightEventKind::Admit);
        const int dispatch =
            flightIndexOf(record, FlightEventKind::Dispatch);
        const int merge =
            flightIndexOf(record, FlightEventKind::Merge);
        const int audit =
            flightIndexOf(record, FlightEventKind::Audit);
        ASSERT_GE(enqueue, 0);
        ASSERT_GE(admit, 0);
        ASSERT_GE(dispatch, 0);
        ASSERT_GE(merge, 0);
        ASSERT_GE(audit, 0);
        EXPECT_LT(enqueue, admit);
        EXPECT_LT(admit, dispatch);
        EXPECT_LT(dispatch, merge);
        EXPECT_LT(merge, audit);
        for (std::size_t i = 1; i < record.flight.size(); ++i) {
            EXPECT_GT(record.flight[i].seq,
                      record.flight[i - 1].seq);
            EXPECT_GE(record.flight[i].tSeconds,
                      record.flight[i - 1].tSeconds);
        }
    }
    // The waiter demonstrably queued behind the blocker.
    EXPECT_GT(waiter.record().queueWaitSeconds, 0.0);
}

TEST_F(JobServiceTest, CancelledBeforeDispatchIsPureQueueWait)
{
    auto gate = std::make_shared<GatedBackend::Gate>();
    ServiceOptions options = serviceOptions(1);
    options.flightRecorder = true;
    JobService service(options);
    service.registerMachine("gated", GatedBackend(gate));
    Circuit circuit(2);
    circuit.measureAll();

    JobHandle blocker = service.submit(
        "gated", circuit, 64, jobOptions("alice", 0, 64));
    while (blocker.status() != JobStatus::Running)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    JobHandle victim = service.submit(
        "gated", circuit, 64, jobOptions("alice", 1, 64));
    ASSERT_TRUE(service.cancel(victim));
    gate->release();
    service.drain();

    const svc::JobRecord& record = victim.record();
    ASSERT_EQ(record.status, JobStatus::Cancelled);
    // Never dispatched: the whole lifetime was queue wait.
    EXPECT_DOUBLE_EQ(record.queueWaitSeconds,
                     record.wallSeconds);
    EXPECT_EQ(record.execSeconds, 0.0);
    EXPECT_GE(flightIndexOf(record,
                            telemetry::FlightEventKind::Cancel),
              0);
    EXPECT_EQ(flightIndexOf(
                  record, telemetry::FlightEventKind::Dispatch),
              -1);
}

TEST_F(JobServiceTest, AuditRecordJsonCarriesTheSplit)
{
    const TrajectorySimulator prototype(
        makeMachine("ibmqx2").noiseModel(), 3);
    JobService service(serviceOptions(2));
    service.registerMachine("ibmqx2", prototype);
    JobHandle handle =
        service.submit("ibmqx2", physicalBv("ibmqx2", 2, 0b01),
                       128, jobOptions("alice", 0, 64));
    handle.wait();
    const telemetry::JsonValue json = handle.record().toJson();
    ASSERT_NE(json.find("queue_wait_seconds"), nullptr);
    ASSERT_NE(json.find("exec_seconds"), nullptr);
    EXPECT_DOUBLE_EQ(
        json.find("queue_wait_seconds")->asDouble() +
            json.find("exec_seconds")->asDouble(),
        json.find("wall_seconds")->asDouble());
    // Off-by-default recording: no flight dump in the record.
    EXPECT_EQ(json.find("flight"), nullptr);
}

/**
 * Exact-counts golden pinning the service determinism contract
 * (schema invertq.service-exact/v1). Every record is one job's
 * merged histogram; the same (seed, tenant, key, circuit, shots,
 * batch size) must reproduce it bit-for-bit on any thread count
 * and submission interleaving. Regenerate with --update-golden.
 */
class ServiceExactGolden
{
  public:
    ServiceExactGolden()
        : path_(std::string(QEM_GOLDEN_DIR) +
                "/job_service.json"),
          update_(verify::GoldenStore::updateRequested())
    {
    }

    void check(const std::string& name, const Counts& counts)
    {
        if (update_) {
            telemetry::JsonValue rec =
                telemetry::JsonValue::object();
            rec["bits"] = telemetry::JsonValue(counts.numBits());
            telemetry::JsonValue raw =
                telemetry::JsonValue::object();
            for (const auto& [state, n] : counts.raw())
                raw[std::to_string(state)] =
                    telemetry::JsonValue(n);
            rec["counts"] = std::move(raw);
            fresh_["records"][name] = std::move(rec);
            return;
        }
        if (root_.isNull()) {
            std::ifstream in(path_);
            ASSERT_TRUE(in.good()) << "missing golden: " << path_;
            std::ostringstream text;
            text << in.rdbuf();
            root_ = telemetry::JsonValue::parse(text.str());
        }
        const telemetry::JsonValue* records =
            root_.find("records");
        ASSERT_NE(records, nullptr);
        const telemetry::JsonValue* rec = records->find(name);
        ASSERT_NE(rec, nullptr) << "no golden record " << name;
        ASSERT_EQ(rec->find("bits")->asUint(), counts.numBits());
        std::map<BasisState, std::uint64_t> expected;
        for (const auto& [state, value] :
             rec->find("counts")->members())
            expected[std::stoull(state)] = value.asUint();
        EXPECT_EQ(counts.raw(), expected)
            << name << ": service counts diverged bit-wise from "
            << "the recorded reference run";
    }

    ~ServiceExactGolden()
    {
        if (!update_)
            return;
        fresh_["schema"] =
            telemetry::JsonValue("invertq.service-exact/v1");
        std::ofstream out(path_);
        out << fresh_.dump(1) << "\n";
    }

  private:
    std::string path_;
    bool update_ = false;
    telemetry::JsonValue root_;
    telemetry::JsonValue fresh_;
};

TEST_F(JobServiceTest, ConcurrentDeterminismGolden)
{
    const Machine machine = makeMachine("ibmqx4");
    const TrajectorySimulator prototype(machine.noiseModel(), 7);
    const Circuit circuit = physicalBv("ibmqx4", 3, 0b110);

    struct Spec
    {
        const char* tenant;
        std::uint64_t key;
        std::size_t shots;
    };
    const std::vector<Spec> jobs = {
        {"alice", 0, 768}, {"alice", 1, 1024}, {"bob", 0, 512},
        {"bob", 7, 896},   {"carol", 3, 640},
    };

    ServiceExactGolden golden;
    // Same five jobs on 1 thread and 4, submitted forward and in
    // reverse: per-job counts must never move.
    for (unsigned threads : {1u, 4u}) {
        for (bool reversed : {false, true}) {
            JobService service(serviceOptions(threads), 2019);
            service.registerMachine("ibmqx4", prototype);
            std::vector<JobHandle> handles(jobs.size());
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const std::size_t at =
                    reversed ? jobs.size() - 1 - i : i;
                handles[at] = service.submit(
                    "ibmqx4", circuit, jobs[at].shots,
                    jobOptions(jobs[at].tenant, jobs[at].key));
            }
            service.drain();
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const std::string name =
                    std::string(jobs[i].tenant) + "/k" +
                    std::to_string(jobs[i].key);
                // In update mode every configuration records the
                // same entry — a divergence would still be caught
                // by the serial-reference check below.
                golden.check(name, handles[i].get());
                if (HasFatalFailure())
                    return;
                EXPECT_EQ(
                    handles[i].get().raw(),
                    serialReference(prototype, circuit,
                                    jobs[i].shots, 128, 2019,
                                    jobs[i].tenant, jobs[i].key)
                        .raw());
            }
        }
    }
}

TEST_F(JobServiceTest, SharedCacheCompilesOncePerCircuit)
{
    telemetry::resetAll();
    telemetry::setEnabled(true);

    const TrajectorySimulator prototype(
        makeMachine("ibmqx4").noiseModel(), 7);
    const Circuit circuit = physicalBv("ibmqx4", 3, 0b011);
    {
        JobService service(serviceOptions(2), 11);
        service.registerMachine("ibmqx4", prototype);
        std::vector<JobHandle> handles;
        for (std::uint64_t key = 0; key < 5; ++key) {
            handles.push_back(service.submit(
                "ibmqx4", circuit, 256,
                jobOptions("alice", key, 64)));
        }
        service.drain();
        for (auto& handle : handles)
            EXPECT_EQ(handle.status(), JobStatus::Completed);

        // One compile fed all five jobs.
        EXPECT_EQ(telemetry::metrics()
                      .counter("runtime.compiled_jobs")
                      .value(),
                  1u);
        EXPECT_EQ(telemetry::metrics()
                      .counter("service.cache.misses")
                      .value(),
                  1u);
        EXPECT_EQ(telemetry::metrics()
                      .counter("service.cache.hits")
                      .value(),
                  4u);
        EXPECT_EQ(service.summary().cache.hits, 4u);
        EXPECT_EQ(service.summary().cache.misses, 1u);

        const std::vector<svc::JobRecord> audit =
            service.auditLog();
        ASSERT_EQ(audit.size(), 5u);
        std::uint64_t hits = 0, misses = 0;
        for (const svc::JobRecord& record : audit) {
            EXPECT_TRUE(record.compiled);
            hits += record.cacheHits;
            misses += record.cacheMisses;
        }
        EXPECT_EQ(misses, 1u);
        EXPECT_EQ(hits, 4u);
    }

    telemetry::setEnabled(false);
    telemetry::resetAll();
}

TEST_F(JobServiceTest, SummaryManifestRoundTrips)
{
    const TrajectorySimulator prototype(
        makeMachine("ibmqx2").noiseModel(), 3);
    const Circuit circuit = physicalBv("ibmqx2", 2, 0b10);

    JobService service(serviceOptions(2), 5);
    service.registerMachine("ibmqx2", prototype);
    for (std::uint64_t key = 0; key < 3; ++key) {
        (void)service.submit("ibmqx2", circuit, 128,
                             jobOptions("alice", key, 64));
    }
    service.drain();

    const std::string path =
        ::testing::TempDir() + "/service_manifest.json";
    ASSERT_TRUE(service.writeSummary(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    const telemetry::JsonValue doc =
        telemetry::JsonValue::parse(text.str());

    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->asString(),
              "invertq.service.manifest/v1");
    const telemetry::JsonValue* svcInfo = doc.find("service");
    ASSERT_NE(svcInfo, nullptr);
    EXPECT_EQ(svcInfo->find("seed")->asUint(), 5u);
    const telemetry::JsonValue* summary = doc.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("submitted")->asUint(), 3u);
    EXPECT_EQ(summary->find("completed")->asUint(), 3u);
    EXPECT_EQ(summary->find("shots_completed")->asUint(),
              3u * 128u);
    const telemetry::JsonValue* jobsJson = doc.find("jobs");
    ASSERT_NE(jobsJson, nullptr);
    ASSERT_EQ(jobsJson->size(), 3u);
    for (const telemetry::JsonValue& job : jobsJson->items()) {
        EXPECT_EQ(job.find("tenant")->asString(), "alice");
        EXPECT_EQ(job.find("status")->asString(), "completed");
        EXPECT_EQ(job.find("machine")->asString(), "ibmqx2");
    }
}

TEST_F(JobServiceTest, ReplaceMachineSwapsAtomicallyAndPins)
{
    const Machine machine = makeMachine("ibmqx4");
    const TrajectorySimulator original(machine.noiseModel(), 7);
    const Circuit circuit = physicalBv("ibmqx4", 3, 0b101);

    // A gated original: its jobs start, then block, so the swap
    // provably lands while they are in flight.
    auto gate = std::make_shared<GatedBackend::Gate>();
    const GatedBackend gated(gate);

    JobService service(serviceOptions(2), 99);
    ASSERT_TRUE(service.registerMachine("ibmqx4", gated));
    EXPECT_EQ(service.machineGeneration("ibmqx4"), 0u);
    EXPECT_FALSE(service.replaceMachine("nope", original));
    EXPECT_THROW((void)service.machineGeneration("nope"),
                 std::invalid_argument);

    JobHandle pinned = service.submit("ibmqx4", circuit, 256,
                                      jobOptions("alice", 1));

    // Swap while the pinned job is queued/blocked on the gate.
    ASSERT_TRUE(service.replaceMachine("ibmqx4", original));
    EXPECT_EQ(service.machineGeneration("ibmqx4"), 1u);

    JobHandle after = service.submit("ibmqx4", circuit, 256,
                                     jobOptions("alice", 2));
    gate->release();
    pinned.wait();
    after.wait();

    // The in-flight job ran on the worker set it resolved at
    // submit time: all-zeros is the gated backend's signature.
    EXPECT_EQ(pinned.get().get(0), 256u);
    EXPECT_EQ(pinned.get().distinct(), 1u);
    // The post-swap job ran on the replacement and matches the
    // serial reference for the SAME (tenant, jobKey): a machine
    // swap does not move the job's RNG stream.
    EXPECT_EQ(after.get().raw(),
              serialReference(original, circuit, 256, 128, 99,
                              "alice", 2)
                  .raw());
}

TEST_F(JobServiceTest, ResultsBitIdenticalAcrossSwapAndInvalidate)
{
    const Machine machine = makeMachine("ibmqx4");
    const TrajectorySimulator prototype(machine.noiseModel(), 7);
    const Circuit circuit = physicalBv("ibmqx4", 3, 0b011);

    // Reference service: never swapped, artifact freshly compiled.
    JobService fresh(serviceOptions(2), 99);
    fresh.registerMachine("ibmqx4", prototype);
    const Counts freshCounts =
        fresh.submit("ibmqx4", circuit, 512, jobOptions("t", 9))
            .get();

    // Swapped service: same prototype republished mid-stream, and
    // the compiled artifact invalidated between jobs. Generation
    // bumps mean the second job misses onto a generation-1 compile.
    JobService swapped(serviceOptions(2), 99);
    swapped.registerMachine("ibmqx4", prototype);
    const Counts before =
        swapped.submit("ibmqx4", circuit, 512, jobOptions("t", 9))
            .get();
    ASSERT_TRUE(swapped.replaceMachine("ibmqx4", prototype));
    ASSERT_TRUE(swapped.cache().invalidate(
        svc::compiledProgramKey("ibmqx4", circuit, 0)));
    const Counts after =
        swapped.submit("ibmqx4", circuit, 512, jobOptions("t", 9))
            .get();

    // Job results are a pure function of (seed, tenant, jobKey,
    // circuit, shots, batch size) — bit-identical whether the
    // artifact was freshly computed or swapped mid-stream.
    EXPECT_EQ(before.raw(), freshCounts.raw());
    EXPECT_EQ(after.raw(), freshCounts.raw());
    // Both generations' compiles happened (two distinct keys).
    EXPECT_GE(swapped.summary().cache.misses, 2u);
    EXPECT_EQ(swapped.summary().cache.invalidations, 1u);
}

} // namespace
} // namespace qem
