/**
 * @file
 * Unit tests for the runtime's worker-thread pool: tasks execute,
 * results and exceptions propagate through futures, and the
 * destructor drains pending work before joining.
 */

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hh"

namespace qem
{
namespace
{

TEST(ThreadPool, RejectsZeroWorkers)
{
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> hits{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&hits] { ++hits; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
                  i * i);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("worker exploded");
    });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A sibling task is unaffected by another task's exception.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            (void)pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++done;
            });
        }
        // Destruction races the queue: every task must still run.
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ShutdownDrainRunsQueuedTasks)
{
    std::atomic<int> done{0};
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
        futures.push_back(pool.submit([&done] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            ++done;
        }));
    }
    pool.shutdown(ThreadPool::ShutdownMode::Drain);
    EXPECT_EQ(done.load(), 16);
    for (auto& f : futures)
        EXPECT_NO_THROW(f.get());
    // After shutdown, new work is refused.
    EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
    // Idempotent: a second shutdown (and the destructor) no-op.
    pool.shutdown(ThreadPool::ShutdownMode::Abort);
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ShutdownAbortDiscardsQueuedTasks)
{
    std::atomic<int> done{0};
    std::promise<void> entered;
    std::promise<void> release;
    std::shared_future<void> gate =
        release.get_future().share();

    ThreadPool pool(1);
    // Occupy the single worker so everything behind it stays
    // queued until shutdown decides its fate.
    auto blocker = pool.submit([&entered, gate, &done] {
        entered.set_value();
        gate.wait();
        ++done;
    });
    entered.get_future().wait();

    std::vector<std::future<void>> queued;
    for (int i = 0; i < 8; ++i)
        queued.push_back(pool.submit([&done] { ++done; }));

    // Abort from a helper thread: it discards the queue right
    // away, then blocks joining the (still busy) worker. Release
    // the worker only after the queue is visibly empty, so none of
    // the queued tasks could have been picked up.
    std::thread aborter(
        [&pool] { pool.shutdown(ThreadPool::ShutdownMode::Abort); });
    while (pool.pendingTasks() != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    release.set_value();
    aborter.join();

    // The in-flight task always finishes; the queued ones must
    // not have run, and their futures report the broken promise.
    EXPECT_NO_THROW(blocker.get());
    EXPECT_EQ(done.load(), 1);
    for (auto& f : queued)
        EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange)
{
    ThreadPool pool(3);
    std::mutex mutex;
    std::set<int> seen;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&] {
            const int w = ThreadPool::workerIndex();
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(w);
        }));
    }
    for (auto& f : futures)
        f.get();
    ASSERT_FALSE(seen.empty());
    for (int w : seen) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 3);
    }
    // Off-pool threads (this one) see the sentinel.
    EXPECT_EQ(ThreadPool::workerIndex(), -1);
}

} // namespace
} // namespace qem
