/**
 * @file
 * Unit tests for the runtime's worker-thread pool: tasks execute,
 * results and exceptions propagate through futures, and the
 * destructor drains pending work before joining.
 */

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hh"

namespace qem
{
namespace
{

TEST(ThreadPool, RejectsZeroWorkers)
{
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> hits{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&hits] { ++hits; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
                  i * i);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("worker exploded");
    });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A sibling task is unaffected by another task's exception.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            (void)pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++done;
            });
        }
        // Destruction races the queue: every task must still run.
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange)
{
    ThreadPool pool(3);
    std::mutex mutex;
    std::set<int> seen;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&] {
            const int w = ThreadPool::workerIndex();
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(w);
        }));
    }
    for (auto& f : futures)
        f.get();
    ASSERT_FALSE(seen.empty());
    for (int w : seen) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 3);
    }
    // Off-pool threads (this one) see the sentinel.
    EXPECT_EQ(ThreadPool::workerIndex(), -1);
}

} // namespace
} // namespace qem
