/**
 * @file
 * Tier-2 oracle suite: every paper-level workload family (BV, GHZ,
 * QAOA) is executed under SIM and AIM on the modeled IBM-Q5
 * machines, and each sampled log is tested against the ExactOracle's
 * analytic distribution for its realized mode plan. Tolerances are
 * never hard-coded: the G-test carries an explicit alpha and the TVD
 * check uses the concentration radius derived from the actual shot
 * count (tvdBound), so scaling INVERTQ_SHOTS tightens the assertions
 * automatically.
 *
 * Sampling model caveat, load-bearing for every assertion here: the
 * trajectory backend draws shotsPerTrajectory (default 16) shots
 * from each stochastic gate-noise trajectory. The marginal per-shot
 * distribution is exactly the density-matrix one, but shots within a
 * batch are correlated, which overdisperses multinomial statistics
 * and makes an iid G-test reject a perfectly healthy backend. So the
 * exact-agreement track runs the policies on a shotsPerTrajectory=1
 * backend (true iid), while the harness-integration track keeps the
 * production batching and instead checks the TVD radius computed
 * from the *effective* sample size shots/16 — a conservative bound,
 * since a batch of 16 fully-correlated draws carries at least 1/16
 * of the information of independent ones. See docs/verification.md.
 *
 * These tests cost density-matrix evolutions per policy mode on top
 * of the sampled runs, which is why they carry the `tier2` ctest
 * label and run in the nightly job instead of the per-commit suite.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/config.hh"
#include "harness/experiment.hh"
#include "kernels/basis.hh"
#include "kernels/benchmarks.hh"
#include "machine/machines.hh"
#include "qsim/bitstring.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem
{
namespace
{

/** Per-check false-positive budget. The whole suite is seeded, so a
 *  red check is reproducible, not flaky; alpha only controls how
 *  surprising the sampled log must be to count as a regression. */
constexpr double kAlpha = 1e-6;

/** The trajectory backend's default shots-per-trajectory batch:
 *  the worst-case design effect of its within-batch correlation. */
constexpr std::uint64_t kDesignEffect = 16;

/** The three paper workload families on a 5-qubit machine. */
std::vector<NisqBenchmark>
oracleWorkloads()
{
    return {makeBvBenchmark("bv-4A", 4, "0111"),
            makeGhzBenchmark("ghz-4", 4),
            makeQaoaBenchmark("qaoa-4A", cycleGraph(4), 1,
                              "0101")};
}

/** Run @p policy on the iid backend and assert its log agrees with
 *  the oracle distribution for the realized plan, both by G-test
 *  and by the shot-count-derived TVD radius. */
void
expectPolicyMatchesOracle(const TranspiledProgram& program,
                          MitigationPolicy& policy,
                          Backend& backend, std::size_t shots,
                          const verify::ExactOracle& oracle,
                          const std::string& label)
{
    const Counts counts =
        policy.run(program.circuit, backend, shots);
    const ModePlan plan = policy.lastPlan();
    ASSERT_FALSE(plan.empty()) << label;
    const std::vector<double> analytic =
        oracle.planDistribution(program.circuit, plan);

    const verify::CheckResult fit =
        verify::checkDistribution(counts, analytic, kAlpha);
    EXPECT_TRUE(fit) << label << ": " << fit.message;

    const verify::CheckResult radius =
        verify::checkTvdWithinBound(counts, analytic, kAlpha);
    EXPECT_TRUE(radius) << label << ": " << radius.message;
    std::printf("[oracle] %-28s tvd=%.5f bound=%.5f p=%.3g\n",
                label.c_str(), radius.tvd, radius.bound,
                fit.pValue);
}

class OraclePaper : public ::testing::TestWithParam<const char*>
{
};

TEST_P(OraclePaper, SimAndAimAgreeWithExactOracle)
{
    const std::size_t shots = configuredShots();
    const Machine machine = makeMachine(GetParam());
    MachineSession session(machine, configuredSeed());
    const verify::ExactOracle oracle(machine);
    // True iid sampling: one stochastic trajectory per shot, so the
    // logs are exact multinomial draws and the G-test's iid null
    // actually holds.
    TrajectorySimulator iid(
        machine.noiseModel(), configuredSeed(),
        TrajectoryOptions{.shotsPerTrajectory = 1});

    for (const NisqBenchmark& bench : oracleWorkloads()) {
        const TranspiledProgram program =
            session.prepare(bench.circuit);
        ASSERT_TRUE(oracle.supports(program.circuit))
            << bench.name;

        StaticInvertAndMeasure sim;
        expectPolicyMatchesOracle(
            program, sim, iid, shots, oracle,
            std::string(GetParam()) + "/" + bench.name + "/SIM");

        AdaptiveInvertAndMeasure aim(characterizeAuto(
            iid, measuredPhysicalQubits(program)));
        expectPolicyMatchesOracle(
            program, aim, iid, shots, oracle,
            std::string(GetParam()) + "/" + bench.name + "/AIM");
    }
}

TEST_P(OraclePaper, HarnessOracleColumnStaysWithinEffectiveBound)
{
    // The production path: comparePolicies with the oracle column
    // on, batched trajectory sampling and all. Correlated batches
    // inflate the deviation, so the radius is derived from the
    // effective sample size shots / kDesignEffect.
    const std::size_t shots = configuredShots();
    MachineSession session(makeMachine(GetParam()),
                           configuredSeed(),
                           SessionOptions{configuredThreads()});
    for (const NisqBenchmark& bench : oracleWorkloads()) {
        const std::vector<PolicyResult> results =
            session.comparePolicies(bench, shots,
                                    CompareOptions{true});
        ASSERT_EQ(results.size(), 3u);
        for (const PolicyResult& result : results) {
            ASSERT_GE(result.oracleTvd, 0.0)
                << bench.name << "/" << result.policy
                << ": oracle column missing";
            const double bound = verify::tvdBound(
                std::size_t{1} << result.counts.numBits(),
                shots / kDesignEffect, kAlpha);
            EXPECT_LE(result.oracleTvd, bound)
                << bench.name << "/" << result.policy;
            std::printf(
                "[harness] %-24s %-8s oracleTvd=%.5f "
                "effective-bound=%.5f\n",
                bench.name.c_str(), result.policy.c_str(),
                result.oracleTvd, bound);
        }
    }
}

TEST_P(OraclePaper, AsymptoticAimPredictionIsWellFormed)
{
    MachineSession session(makeMachine(GetParam()),
                           configuredSeed());
    const verify::ExactOracle oracle(session.machine());
    const NisqBenchmark bench = makeBvBenchmark("bv-4A", 4,
                                                "0111");
    const TranspiledProgram program =
        session.prepare(bench.circuit);
    const std::size_t shots = 16384;

    const verify::ExactOracle::AimPrediction prediction =
        oracle.aimPrediction(program.circuit,
                             *session.profileProgram(program),
                             shots);
    ASSERT_FALSE(prediction.candidates.empty());
    std::uint64_t planned = 0;
    for (const ModeShare& mode : prediction.plan)
        planned += mode.shots;
    EXPECT_EQ(planned, shots);

    double mass = 0.0;
    for (double p : prediction.distribution)
        mass += p;
    EXPECT_NEAR(mass, 1.0, 1e-9);

    // BV is deterministic, so its output must rank among the top-K
    // analytic candidates on every modeled machine.
    EXPECT_NE(std::find(prediction.candidates.begin(),
                        prediction.candidates.end(),
                        bench.correctOutput),
              prediction.candidates.end());
}

INSTANTIATE_TEST_SUITE_P(Machines, OraclePaper,
                         ::testing::Values("ibmqx2", "ibmqx4"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace qem
