/**
 * @file
 * Tier-2 cross-checks for gate-fused trajectory programs.
 *
 * Fused evolution applies the same unitary as the unfused program
 * (one 4x4 product instead of a gate run), so its sampled
 * distribution must converge to the same analytic law. Two tracks:
 *
 * 1. Oracle track: fused trajectory runs on the paper machines are
 *    G-tested against the ExactOracle's density-matrix distribution
 *    (shotsPerTrajectory=1, so shots are iid and the multinomial
 *    G-test applies as-is — see test_oracle_paper.cc for why).
 * 2. Equivalence track: fused vs unfused runs of the same circuit
 *    are two-sample G-tested against each other.
 *
 * CCX-bearing circuits are used deliberately: under full noise the
 * only fusable unitary adjacency is inside multi-step
 * decompositions, so a transpiled 1q/2q circuit would exercise the
 * knob without exercising the fusion (fusedSteps() == 0). The
 * ASSERT_GT guards keep these tests honest about that.
 *
 * Costs density-matrix evolutions plus 2x65536-shot sampled runs,
 * hence the tier2 label (nightly, not per-commit).
 */

#include <string>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/noise_program.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "transpile/transpiler.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem
{
namespace
{

constexpr double kAlpha = 1e-6;
constexpr std::size_t kShots = 65536;

Circuit
ccxLadder()
{
    Circuit c(5);
    c.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3).ccx(2, 3, 4).measureAll();
    return c;
}

TEST(FusionOracle, FusedCountsMatchExactDistribution)
{
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Circuit c = ccxLadder();
        TrajectoryOptions opt;
        opt.fuseGates = true;
        opt.shotsPerTrajectory = 1; // iid shots for the G-test.
        ASSERT_GT(NoiseProgram::lower(c, machine.noiseModel(), opt)
                      .fusedSteps(),
                  0u)
            << name << ": circuit must actually fuse";

        TrajectorySimulator sim(machine.noiseModel(), 4242, opt);
        const verify::ExactOracle oracle(machine);
        ASSERT_TRUE(oracle.supports(c));
        const auto check = verify::checkDistribution(
            sim.run(c, kShots), oracle.observedDistribution(c),
            kAlpha);
        EXPECT_TRUE(check) << name << ": " << check.message;
    }
}

TEST(FusionOracle, FusedTranspiledBvMatchesExactDistribution)
{
    // Transpiled BV fuses nothing under full noise (every unitary is
    // chased by its own stochastic steps), but the knob must still
    // be distribution-neutral on the paper workload family.
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Transpiler transpiler(machine);
        const Circuit c =
            transpiler.transpile(bernsteinVazirani(4, 0b0111))
                .circuit;
        TrajectoryOptions opt;
        opt.fuseGates = true;
        opt.shotsPerTrajectory = 1;
        TrajectorySimulator sim(machine.noiseModel(), 777, opt);
        const verify::ExactOracle oracle(machine);
        ASSERT_TRUE(oracle.supports(c));
        const auto check = verify::checkDistribution(
            sim.run(c, kShots), oracle.observedDistribution(c),
            kAlpha);
        EXPECT_TRUE(check) << name << ": " << check.message;
    }
}

TEST(FusionOracle, FusedAndUnfusedRunsAgreeDistributionally)
{
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Circuit c = ccxLadder();
        TrajectoryOptions plainOpt;
        plainOpt.shotsPerTrajectory = 1;
        TrajectoryOptions fusedOpt = plainOpt;
        fusedOpt.fuseGates = true;
        TrajectorySimulator plain(machine.noiseModel(), 91,
                                  plainOpt);
        TrajectorySimulator fused(machine.noiseModel(), 92,
                                  fusedOpt);
        const auto check = verify::checkSameDistribution(
            plain.run(c, kShots), fused.run(c, kShots), kAlpha);
        EXPECT_TRUE(check) << name << ": " << check.message;
    }
}

} // namespace
} // namespace qem
