/**
 * @file
 * Pipeline fuzzing: random logical circuits pushed through the full
 * transpile -> simulate -> mitigate stack must uphold structural
 * invariants regardless of shape.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "qsim/qasm.hh"
#include "qsim/rng.hh"
#include "verify/assertions.hh"
#include "verify/oracle.hh"

namespace qem
{
namespace
{

/** Random measured circuit over @p n qubits. */
Circuit
randomCircuit(unsigned n, int gates, Rng& rng)
{
    Circuit c(n);
    for (int g = 0; g < gates; ++g) {
        const Qubit a = static_cast<Qubit>(rng.index(n));
        Qubit b = static_cast<Qubit>(rng.index(n));
        while (b == a)
            b = static_cast<Qubit>(rng.index(n));
        switch (rng.index(8)) {
          case 0:
            c.h(a);
            break;
          case 1:
            c.x(a);
            break;
          case 2:
            c.t(a);
            break;
          case 3:
            c.rz(rng.uniform(-2.0, 2.0), a);
            break;
          case 4:
            c.rx(rng.uniform(-2.0, 2.0), a);
            break;
          case 5:
            c.cx(a, b);
            break;
          case 6:
            c.cz(a, b);
            break;
          default:
            c.swap(a, b);
            break;
        }
    }
    c.measureAll();
    return c;
}

class PipelineFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PipelineFuzz, InvariantsHoldOnMelbourne)
{
    Rng rng(900 + GetParam());
    MachineSession session(makeIbmqMelbourne(),
                           1000 + GetParam());
    const Machine& m = session.machine();
    const unsigned n = 2 + static_cast<unsigned>(rng.index(5));
    const Circuit logical =
        randomCircuit(n, 8 + static_cast<int>(rng.index(20)),
                      rng);

    // Transpilation invariants.
    const TranspiledProgram program = session.prepare(logical);
    EXPECT_NO_THROW(validateLayout(program.initialLayout, n,
                                   m.numQubits()));
    for (const Operation& op : program.circuit.ops()) {
        if (op.qubits.size() == 2 && isUnitary(op.kind)) {
            ASSERT_TRUE(m.topology().coupled(op.qubits[0],
                                             op.qubits[1]))
                << op.toString();
        }
    }
    EXPECT_EQ(program.circuit.countOps(GateKind::MEASURE), n);
    EXPECT_GE(program.durationNs, 0.0);

    // The physical circuit round-trips through QASM.
    const Circuit parsed = fromQasm(toQasm(program.circuit));
    EXPECT_EQ(parsed.size(), program.circuit.size());

    // Every policy produces a structurally sound log.
    BaselinePolicy baseline;
    StaticInvertAndMeasure sim;
    for (MitigationPolicy* policy :
         std::initializer_list<MitigationPolicy*>{&baseline,
                                                  &sim}) {
        const Counts counts =
            session.runPolicy(program, *policy, 512);
        EXPECT_EQ(counts.total(), 512u);
        EXPECT_EQ(counts.numBits(), n);
        for (const auto& [outcome, count] : counts.raw()) {
            EXPECT_LT(outcome, BasisState{1} << n);
            EXPECT_GT(count, 0u);
        }
    }
}

TEST_P(PipelineFuzz, PoliciesMatchExactOracleOnIbmqx4)
{
    // On the 5-qubit machine the density-matrix oracle is cheap, so
    // every fuzzed circuit's sampled log can be cross-checked
    // against the analytic distribution of its realized plan. The
    // policies run on an iid (shotsPerTrajectory = 1) backend so
    // the G-test's multinomial null holds exactly; alpha = 1e-9 per
    // check keeps the whole 12-seed suite's spurious-failure budget
    // below 5e-8.
    constexpr double alpha = 1e-9;
    Rng rng(1900 + GetParam());
    const Machine machine = makeIbmqx4();
    MachineSession session(machine, 2000 + GetParam());
    TrajectorySimulator iid(
        machine.noiseModel(), 3000 + GetParam(),
        TrajectoryOptions{.shotsPerTrajectory = 1});
    const unsigned n = 2 + static_cast<unsigned>(rng.index(4));
    const Circuit logical =
        randomCircuit(n, 6 + static_cast<int>(rng.index(12)),
                      rng);
    const TranspiledProgram program = session.prepare(logical);
    const verify::ExactOracle oracle(machine);
    ASSERT_TRUE(oracle.supports(program.circuit));

    BaselinePolicy baseline;
    StaticInvertAndMeasure sim;
    for (MitigationPolicy* policy :
         std::initializer_list<MitigationPolicy*>{&baseline,
                                                  &sim}) {
        const Counts counts =
            policy->run(program.circuit, iid, 4096);
        const ModePlan plan = policy->lastPlan();
        ASSERT_FALSE(plan.empty()) << policy->name();
        const verify::CheckResult fit = verify::checkDistribution(
            counts, oracle.planDistribution(program.circuit, plan),
            alpha);
        EXPECT_TRUE(fit)
            << policy->name() << ": " << fit.message;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range(0u, 12u));

} // namespace
} // namespace qem
