/**
 * @file
 * Pipeline fuzzing: random logical circuits pushed through the full
 * transpile -> simulate -> mitigate stack must uphold structural
 * invariants regardless of shape.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "qsim/bitstring.hh"
#include "qsim/qasm.hh"
#include "qsim/rng.hh"

namespace qem
{
namespace
{

/** Random measured circuit over @p n qubits. */
Circuit
randomCircuit(unsigned n, int gates, Rng& rng)
{
    Circuit c(n);
    for (int g = 0; g < gates; ++g) {
        const Qubit a = static_cast<Qubit>(rng.index(n));
        Qubit b = static_cast<Qubit>(rng.index(n));
        while (b == a)
            b = static_cast<Qubit>(rng.index(n));
        switch (rng.index(8)) {
          case 0:
            c.h(a);
            break;
          case 1:
            c.x(a);
            break;
          case 2:
            c.t(a);
            break;
          case 3:
            c.rz(rng.uniform(-2.0, 2.0), a);
            break;
          case 4:
            c.rx(rng.uniform(-2.0, 2.0), a);
            break;
          case 5:
            c.cx(a, b);
            break;
          case 6:
            c.cz(a, b);
            break;
          default:
            c.swap(a, b);
            break;
        }
    }
    c.measureAll();
    return c;
}

class PipelineFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PipelineFuzz, InvariantsHoldOnMelbourne)
{
    Rng rng(900 + GetParam());
    MachineSession session(makeIbmqMelbourne(),
                           1000 + GetParam());
    const Machine& m = session.machine();
    const unsigned n = 2 + static_cast<unsigned>(rng.index(5));
    const Circuit logical =
        randomCircuit(n, 8 + static_cast<int>(rng.index(20)),
                      rng);

    // Transpilation invariants.
    const TranspiledProgram program = session.prepare(logical);
    EXPECT_NO_THROW(validateLayout(program.initialLayout, n,
                                   m.numQubits()));
    for (const Operation& op : program.circuit.ops()) {
        if (op.qubits.size() == 2 && isUnitary(op.kind)) {
            ASSERT_TRUE(m.topology().coupled(op.qubits[0],
                                             op.qubits[1]))
                << op.toString();
        }
    }
    EXPECT_EQ(program.circuit.countOps(GateKind::MEASURE), n);
    EXPECT_GE(program.durationNs, 0.0);

    // The physical circuit round-trips through QASM.
    const Circuit parsed = fromQasm(toQasm(program.circuit));
    EXPECT_EQ(parsed.size(), program.circuit.size());

    // Every policy produces a structurally sound log.
    BaselinePolicy baseline;
    StaticInvertAndMeasure sim;
    for (MitigationPolicy* policy :
         std::initializer_list<MitigationPolicy*>{&baseline,
                                                  &sim}) {
        const Counts counts =
            session.runPolicy(program, *policy, 512);
        EXPECT_EQ(counts.total(), 512u);
        EXPECT_EQ(counts.numBits(), n);
        for (const auto& [outcome, count] : counts.raw()) {
            EXPECT_LT(outcome, BasisState{1} << n);
            EXPECT_GT(count, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range(0u, 12u));

} // namespace
} // namespace qem
