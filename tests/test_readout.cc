/**
 * @file
 * Unit tests for the readout-error models — the paper's central
 * noise process.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noise/readout.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(AsymmetricReadout, FlipProbabilitiesPerQubit)
{
    AsymmetricReadout model({0.01, 0.02}, {0.10, 0.20});
    EXPECT_EQ(model.numQubits(), 2u);
    EXPECT_NEAR(model.flipProbability(0, false, 0), 0.01, 1e-12);
    EXPECT_NEAR(model.flipProbability(0, true, 0), 0.10, 1e-12);
    EXPECT_NEAR(model.flipProbability(1, true, 0), 0.20, 1e-12);
    EXPECT_THROW(model.flipProbability(2, false, 0),
                 std::out_of_range);
}

TEST(AsymmetricReadout, ValidatesConstruction)
{
    EXPECT_THROW(AsymmetricReadout({0.1}, {0.1, 0.1}),
                 std::invalid_argument);
    EXPECT_THROW(AsymmetricReadout({}, {}), std::invalid_argument);
    EXPECT_THROW(AsymmetricReadout({1.5}, {0.1}),
                 std::invalid_argument);
}

TEST(AsymmetricReadout, SuccessProbabilityIsProduct)
{
    AsymmetricReadout model({0.1, 0.1, 0.1}, {0.2, 0.2, 0.2});
    // All-zero: (1-0.1)^3; all-one: (1-0.2)^3.
    EXPECT_NEAR(model.successProbability(0, 3), 0.9 * 0.9 * 0.9,
                1e-12);
    EXPECT_NEAR(model.successProbability(0b111, 3),
                0.8 * 0.8 * 0.8, 1e-12);
    // Mixed state: one of each.
    EXPECT_NEAR(model.successProbability(0b010, 3),
                0.9 * 0.8 * 0.9, 1e-12);
}

TEST(AsymmetricReadout, ConfusionProbabilitiesSumToOne)
{
    AsymmetricReadout model({0.05, 0.1}, {0.2, 0.3});
    const std::vector<Qubit> measured{0, 1};
    for (BasisState truth = 0; truth < 4; ++truth) {
        double sum = 0.0;
        for (BasisState obs = 0; obs < 4; ++obs)
            sum += model.confusionProbability(truth, obs, measured);
        EXPECT_NEAR(sum, 1.0, 1e-12) << "truth " << truth;
    }
}

TEST(AsymmetricReadout, SampleReadoutStatistics)
{
    AsymmetricReadout model({0.0, 0.0}, {0.5, 0.0});
    Rng rng(3);
    const std::vector<Qubit> measured{0, 1};
    int q0_kept = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        const BasisState obs =
            model.sampleReadout(0b11, measured, rng);
        q0_kept += getBit(obs, 0);
        EXPECT_TRUE(getBit(obs, 1)); // q1 is error-free.
    }
    EXPECT_NEAR(q0_kept / static_cast<double>(trials), 0.5, 0.03);
}

TEST(AsymmetricReadout, UnmeasuredQubitsReadZero)
{
    AsymmetricReadout model({0.0, 0.0, 0.0}, {0.0, 0.0, 0.0});
    Rng rng(4);
    const BasisState obs = model.sampleReadout(0b111, {0, 2}, rng);
    EXPECT_EQ(obs, 0b101u);
}

TEST(CorrelatedReadout, CrosstalkShiftsRates)
{
    AsymmetricReadout base({0.01, 0.01}, {0.10, 0.10});
    // Qubit 0's 1->0 rate rises by 0.15 when qubit 1 holds a 1.
    std::vector<std::vector<double>> j01(2,
                                         std::vector<double>(2, 0));
    std::vector<std::vector<double>> j10(2,
                                         std::vector<double>(2, 0));
    j10[0][1] = 0.15;
    CorrelatedReadout model(std::move(base), j01, j10);

    EXPECT_NEAR(model.flipProbability(0, true, 0b01), 0.10, 1e-12);
    EXPECT_NEAR(model.flipProbability(0, true, 0b11), 0.25, 1e-12);
    // Qubit 1 itself is unaffected (no self term used).
    EXPECT_NEAR(model.flipProbability(1, true, 0b11), 0.10, 1e-12);
    // p01 unaffected.
    EXPECT_NEAR(model.flipProbability(0, false, 0b10), 0.01, 1e-12);
}

TEST(CorrelatedReadout, RatesClampToHalf)
{
    AsymmetricReadout base({0.01, 0.01}, {0.45, 0.45});
    std::vector<std::vector<double>> j01(2,
                                         std::vector<double>(2, 0));
    std::vector<std::vector<double>> j10(
        2, std::vector<double>(2, 0.3));
    CorrelatedReadout model(std::move(base), j01, j10);
    EXPECT_NEAR(model.flipProbability(0, true, 0b11), 0.5, 1e-12);
    // Negative crosstalk clamps at zero.
    AsymmetricReadout base2({0.01, 0.01}, {0.05, 0.05});
    std::vector<std::vector<double>> j10n(
        2, std::vector<double>(2, -0.3));
    CorrelatedReadout model2(std::move(base2), j01, j10n);
    EXPECT_NEAR(model2.flipProbability(0, true, 0b11), 0.0, 1e-12);
}

TEST(CorrelatedReadout, ValidatesMatrixShape)
{
    AsymmetricReadout base({0.01, 0.01}, {0.1, 0.1});
    std::vector<std::vector<double>> square(
        2, std::vector<double>(2, 0));
    std::vector<std::vector<double>> ragged{{0.0, 0.0}, {0.0}};
    EXPECT_THROW(CorrelatedReadout(base, ragged, square),
                 std::invalid_argument);
    EXPECT_THROW(
        CorrelatedReadout(base, square,
                          std::vector<std::vector<double>>(1)),
        std::invalid_argument);
}

TEST(RelaxingReadout, ComposesDecayWithSpamFlips)
{
    // One qubit: T1 = 10us, readout pulse 10us -> decay 1-e^-1.
    const double pd = 1.0 - std::exp(-1.0);
    AsymmetricReadout model = makeRelaxingReadout(
        {0.02}, {0.05}, {10000.0}, 10000.0);
    const double expected = pd * (1.0 - 0.02) + (1.0 - pd) * 0.05;
    EXPECT_NEAR(model.p10()[0], expected, 1e-12);
    EXPECT_NEAR(model.p01()[0], 0.02, 1e-12);
    EXPECT_THROW(makeRelaxingReadout({0.1}, {0.1, 0.1}, {1.0}, 1.0),
                 std::invalid_argument);
}

TEST(RelaxingReadout, MakesOnesWeakerThanZeros)
{
    // The physical origin of the paper's bias: with relaxation
    // during readout, reading |1> is strictly more error-prone.
    AsymmetricReadout model = makeRelaxingReadout(
        {0.01, 0.01}, {0.01, 0.01}, {50000.0, 50000.0}, 4000.0);
    EXPECT_GT(model.successProbability(0, 2),
              model.successProbability(0b11, 2));
}

} // namespace
} // namespace qem
