/**
 * @file
 * Unit tests for the verification statistics library: special
 * functions against closed forms, goodness-of-fit tests on known
 * samples, and the shot-count-derived TVD bound.
 */

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "verify/statistics.hh"

namespace qem::verify
{
namespace
{

TEST(VerifyStatistics, LogGammaClosedForms)
{
    // Gamma(1) = Gamma(2) = 1, Gamma(5) = 24,
    // Gamma(1/2) = sqrt(pi).
    EXPECT_NEAR(logGamma(1.0), 0.0, 1e-12);
    EXPECT_NEAR(logGamma(2.0), 0.0, 1e-12);
    EXPECT_NEAR(logGamma(5.0), std::log(24.0), 1e-11);
    EXPECT_NEAR(logGamma(0.5), 0.5 * std::log(M_PI), 1e-11);
    // Recurrence Gamma(x+1) = x Gamma(x) at a non-integer point.
    EXPECT_NEAR(logGamma(4.3), logGamma(3.3) + std::log(3.3),
                1e-10);
}

TEST(VerifyStatistics, RegularizedGammaMatchesExponential)
{
    // P(1, x) = 1 - exp(-x): exercises the series branch (small x)
    // and the continued-fraction branch (large x).
    for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
        EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x),
                    1e-12)
            << "x = " << x;
    }
    EXPECT_NEAR(regularizedGammaP(2.0, 0.0), 0.0, 1e-15);
}

TEST(VerifyStatistics, ChiSquareSurvivalClosedForms)
{
    // k = 2 degrees of freedom: survival(x) = exp(-x/2).
    EXPECT_NEAR(chiSquareSurvival(2.0, 2), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(chiSquareSurvival(7.0, 2), std::exp(-3.5), 1e-12);
    // Standard critical value: P(X_1 >= 3.841459) ~ 0.05.
    EXPECT_NEAR(chiSquareSurvival(3.841459, 1), 0.05, 1e-4);
    EXPECT_NEAR(chiSquareSurvival(0.0, 3), 1.0, 1e-12);
}

TEST(VerifyStatistics, GTestAcceptsExactlyProportionalSample)
{
    // Counts exactly proportional to the model: G = 0, p = 1.
    Counts counts(2);
    counts.add(0, 400);
    counts.add(1, 300);
    counts.add(2, 200);
    counts.add(3, 100);
    const GofResult r =
        gTest(counts, {0.4, 0.3, 0.2, 0.1});
    EXPECT_NEAR(r.statistic, 0.0, 1e-9);
    EXPECT_NEAR(r.pValue, 1.0, 1e-9);
    EXPECT_EQ(r.dof, 3u);
}

TEST(VerifyStatistics, GTestRejectsWrongModel)
{
    Counts counts(1);
    counts.add(0, 900);
    counts.add(1, 100);
    const GofResult r = gTest(counts, {0.5, 0.5});
    EXPECT_LT(r.pValue, 1e-9);
}

TEST(VerifyStatistics, GTestZeroProbabilityCellIsFatal)
{
    Counts counts(1);
    counts.add(0, 10);
    counts.add(1, 10);
    const GofResult r = gTest(counts, {1.0, 0.0});
    EXPECT_EQ(r.pValue, 0.0);
}

TEST(VerifyStatistics, GTestPoolsSparseCells)
{
    // Two cells with expected counts far below 5 must be pooled.
    Counts counts(2);
    counts.add(0, 96);
    counts.add(1, 2);
    counts.add(2, 1);
    counts.add(3, 1);
    const GofResult r =
        gTest(counts, {0.96, 0.02, 0.01, 0.01});
    EXPECT_GT(r.pooledCells, 0u);
    EXPECT_GE(r.pValue, 0.01);
}

TEST(VerifyStatistics, ChiSquareAgreesWithGOnGoodFit)
{
    std::mt19937_64 rng(7);
    std::discrete_distribution<int> draw({0.4, 0.3, 0.2, 0.1});
    Counts counts(2);
    for (int i = 0; i < 4000; ++i)
        counts.add(static_cast<BasisState>(draw(rng)));
    const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
    const GofResult g = gTest(counts, probs);
    const GofResult x2 = chiSquareTest(counts, probs);
    // Both should comfortably accept the true model...
    EXPECT_GT(g.pValue, 1e-4);
    EXPECT_GT(x2.pValue, 1e-4);
    // ...and agree on the asymptotics.
    EXPECT_NEAR(g.statistic, x2.statistic,
                0.5 * std::max(1.0, g.statistic));
}

TEST(VerifyStatistics, TwoSampleGAcceptsSameSource)
{
    std::mt19937_64 rng(11);
    std::discrete_distribution<int> draw({0.5, 0.25, 0.15, 0.1});
    Counts a(2), b(2);
    for (int i = 0; i < 3000; ++i)
        a.add(static_cast<BasisState>(draw(rng)));
    for (int i = 0; i < 5000; ++i)
        b.add(static_cast<BasisState>(draw(rng)));
    EXPECT_GT(twoSampleGTest(a, b).pValue, 1e-4);
}

TEST(VerifyStatistics, TwoSampleGRejectsDisjointSupports)
{
    Counts a(1), b(1);
    a.add(0, 500);
    b.add(1, 500);
    EXPECT_LT(twoSampleGTest(a, b).pValue, 1e-12);
}

TEST(VerifyStatistics, TotalVariationVectors)
{
    EXPECT_NEAR(totalVariation({1.0, 0.0}, {0.0, 1.0}), 1.0,
                1e-12);
    EXPECT_NEAR(totalVariation({0.5, 0.5}, {0.5, 0.5}), 0.0,
                1e-12);
    EXPECT_NEAR(totalVariation({0.7, 0.3}, {0.5, 0.5}), 0.2,
                1e-12);
}

TEST(VerifyStatistics, TotalVariationCounts)
{
    Counts counts(1);
    counts.add(0, 70);
    counts.add(1, 30);
    EXPECT_NEAR(totalVariation(counts, {0.5, 0.5}), 0.2, 1e-12);
}

TEST(VerifyStatistics, TvdBoundFormulaAndMonotonicity)
{
    // eps = sqrt((k ln2 + ln(1/alpha)) / (2 n)).
    const double eps = tvdBound(4, 10000, 1e-6);
    EXPECT_NEAR(eps,
                std::sqrt((4.0 * std::log(2.0) +
                           std::log(1e6)) /
                          (2.0 * 10000.0)),
                1e-12);
    // More shots shrink the radius; more cells or a smaller alpha
    // grow it.
    EXPECT_LT(tvdBound(4, 40000, 1e-6), eps);
    EXPECT_GT(tvdBound(16, 10000, 1e-6), eps);
    EXPECT_GT(tvdBound(4, 10000, 1e-9), eps);
}

TEST(VerifyStatistics, TvdBoundCoversEmpiricalDeviation)
{
    // A real multinomial sample must land inside its own bound
    // (alpha = 1e-6: this failing is a one-in-a-million event).
    std::mt19937_64 rng(23);
    const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
    std::discrete_distribution<int> draw(probs.begin(),
                                         probs.end());
    Counts counts(2);
    const std::uint64_t shots = 20000;
    for (std::uint64_t i = 0; i < shots; ++i)
        counts.add(static_cast<BasisState>(draw(rng)));
    EXPECT_LT(totalVariation(counts, probs),
              tvdBound(4, shots, 1e-6));
}

} // namespace
} // namespace qem::verify
