/**
 * @file
 * Custom gtest entry point for the test binaries: recognizes the
 * repo-specific `--update-golden` flag anywhere on the command line
 * and strips it before GoogleTest parses the rest. With the flag (or
 * INVERTQ_UPDATE_GOLDEN set), every GoldenStore constructed with the
 * default policy records fresh values and rewrites its manifest on
 * flush() instead of checking — see docs/verification.md.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "verify/golden.hh"

int
main(int argc, char** argv)
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-golden") == 0) {
            qem::verify::GoldenStore::requestUpdate();
            continue;
        }
        argv[kept++] = argv[i];
    }
    argc = kept;
    argv[argc] = nullptr;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
