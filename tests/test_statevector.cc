/**
 * @file
 * Unit tests for the dense state vector: gate application, fast
 * paths vs generic matrices, sampling, and trajectory channels.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noise/channels.hh"
#include "qsim/bitstring.hh"
#include "qsim/statevector.hh"

namespace qem
{
namespace
{

TEST(StateVector, InitializesToRequestedBasisState)
{
    StateVector zero(3);
    EXPECT_NEAR(zero.probabilityOf(0), 1.0, 1e-12);
    StateVector five(3, 0b101);
    EXPECT_NEAR(five.probabilityOf(0b101), 1.0, 1e-12);
    EXPECT_EQ(five.dim(), 8u);
    EXPECT_THROW(StateVector(0), std::invalid_argument);
    EXPECT_THROW(StateVector(3, 8), std::out_of_range);
}

TEST(StateVector, XFlipsBasisState)
{
    StateVector s(3);
    s.applyX(1);
    EXPECT_NEAR(s.probabilityOf(0b010), 1.0, 1e-12);
    s.applyX(1);
    EXPECT_NEAR(s.probabilityOf(0), 1.0, 1e-12);
}

TEST(StateVector, HadamardCreatesUniformPair)
{
    StateVector s(1);
    s.applyH(0);
    EXPECT_NEAR(s.probabilityOf(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probabilityOf(1), 0.5, 1e-12);
    s.applyH(0);
    EXPECT_NEAR(s.probabilityOf(0), 1.0, 1e-12);
}

TEST(StateVector, CxEntanglesBellPair)
{
    StateVector s(2);
    s.applyH(0);
    s.applyCX(0, 1);
    EXPECT_NEAR(s.probabilityOf(0b00), 0.5, 1e-12);
    EXPECT_NEAR(s.probabilityOf(0b11), 0.5, 1e-12);
    EXPECT_NEAR(s.probabilityOf(0b01), 0.0, 1e-12);
}

TEST(StateVector, FastPathsMatchGenericMatrices)
{
    // Prepare an arbitrary 3-qubit state, then compare each fast
    // path against applyMatrix1q / applyMatrix2q.
    auto prepare = [] {
        StateVector s(3);
        s.applyH(0);
        s.applyMatrix1q(gateMatrix1q(GateKind::U3, {0.7, 0.2, 1.1}),
                        1);
        s.applyCX(0, 2);
        s.applyMatrix1q(gateMatrix1q(GateKind::T, {}), 2);
        return s;
    };

    {
        StateVector fast = prepare(), slow = prepare();
        fast.applyX(1);
        slow.applyMatrix1q(gateMatrix1q(GateKind::X, {}), 1);
        EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-12);
    }
    {
        StateVector fast = prepare(), slow = prepare();
        fast.applyZ(2);
        slow.applyMatrix1q(gateMatrix1q(GateKind::Z, {}), 2);
        EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-12);
    }
    {
        StateVector fast = prepare(), slow = prepare();
        fast.applyH(0);
        slow.applyMatrix1q(gateMatrix1q(GateKind::H, {}), 0);
        EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-12);
    }
    {
        StateVector fast = prepare(), slow = prepare();
        fast.applyCX(2, 0);
        slow.applyMatrix2q(gateMatrix2q(GateKind::CX), 2, 0);
        EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-12);
    }
    {
        StateVector fast = prepare(), slow = prepare();
        fast.applyCZ(1, 2);
        slow.applyMatrix2q(gateMatrix2q(GateKind::CZ), 1, 2);
        EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-12);
    }
    {
        StateVector fast = prepare(), slow = prepare();
        fast.applySwap(0, 2);
        slow.applyMatrix2q(gateMatrix2q(GateKind::SWAP), 0, 2);
        EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-12);
    }
}

TEST(StateVector, ToffoliDecompositionActsAsCCX)
{
    for (BasisState input = 0; input < 8; ++input) {
        StateVector s(3, input);
        Operation ccx{GateKind::CCX, {0, 1, 2}, {}};
        s.applyOperation(ccx);
        BasisState expected = input;
        if (getBit(input, 0) && getBit(input, 1))
            expected ^= 0b100;
        EXPECT_NEAR(s.probabilityOf(expected), 1.0, 1e-9)
            << "input " << input;
    }
}

TEST(StateVector, ProbabilityOneOfSingleQubit)
{
    StateVector s(2);
    s.applyMatrix1q(gateMatrix1q(GateKind::RY, {2.0 * M_PI / 3}), 0);
    // RY(theta): P(1) = sin^2(theta/2) = sin^2(pi/3) = 3/4.
    EXPECT_NEAR(s.probabilityOne(0), 0.75, 1e-12);
    EXPECT_NEAR(s.probabilityOne(1), 0.0, 1e-12);
}

TEST(StateVector, NormalizeAndNormTracking)
{
    StateVector s(1);
    s.setAmplitude(0, {0.3, 0.0});
    s.setAmplitude(1, {0.0, 0.4});
    EXPECT_NEAR(s.norm(), 0.25, 1e-12);
    s.normalize();
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
    s.setAmplitude(0, 0);
    s.setAmplitude(1, 0);
    EXPECT_THROW(s.normalize(), std::logic_error);
}

TEST(StateVector, CollapseProjectsAndRenormalizes)
{
    StateVector s(2);
    s.applyH(0);
    s.applyCX(0, 1);
    s.collapseQubit(0, true);
    EXPECT_NEAR(s.probabilityOf(0b11), 1.0, 1e-12);
}

TEST(StateVector, MeasureQubitFollowsBornRule)
{
    Rng rng(5);
    int ones = 0;
    for (int i = 0; i < 4000; ++i) {
        StateVector s(1);
        s.applyMatrix1q(gateMatrix1q(GateKind::RY, {M_PI / 3}), 0);
        ones += s.measureQubit(0, rng);
    }
    // P(1) = sin^2(pi/6) = 0.25.
    EXPECT_NEAR(ones / 4000.0, 0.25, 0.03);
}

TEST(StateVector, SamplingMatchesDistribution)
{
    StateVector s(2);
    s.applyH(0);
    s.applyCX(0, 1);
    Rng rng(6);
    const auto samples = s.sample(rng, 20000);
    std::size_t zeros = 0, threes = 0;
    for (BasisState x : samples) {
        zeros += (x == 0b00);
        threes += (x == 0b11);
    }
    EXPECT_EQ(zeros + threes, samples.size());
    EXPECT_NEAR(zeros / 20000.0, 0.5, 0.02);
}

TEST(StateVector, InnerProductAndFidelity)
{
    StateVector a(2), b(2);
    a.applyH(0);
    EXPECT_NEAR(a.fidelity(b), 0.5, 1e-12);
    b.applyH(0);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
    StateVector wide(3);
    EXPECT_THROW(a.innerProduct(wide), std::invalid_argument);
}

TEST(StateVector, KrausAmplitudeDampingStatistics)
{
    // From |1>, the decay jump must fire with probability gamma.
    const double gamma = 0.3;
    const KrausChannel channel = amplitudeDamping(gamma);
    Rng rng(7);
    int jumps = 0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i) {
        StateVector s(1, 1);
        jumps += (s.applyKraus1q(channel, 0, rng) == 1);
    }
    EXPECT_NEAR(jumps / static_cast<double>(trials), gamma, 0.03);
}

TEST(StateVector, FastDampingMatchesGenericKraus)
{
    // Statistical comparison of P(final=1) after damping a
    // superposition, fast path vs generic Kraus path.
    const double gamma = 0.4;
    auto estimate = [&](bool fast) {
        Rng rng(fast ? 11 : 13);
        double p1 = 0.0;
        const int trials = 4000;
        for (int i = 0; i < trials; ++i) {
            StateVector s(1);
            s.applyMatrix1q(gateMatrix1q(GateKind::RY, {M_PI / 2}),
                            0);
            if (fast) {
                s.applyAmplitudeDamping(0, gamma, rng);
            } else {
                const KrausChannel ch = amplitudeDamping(gamma);
                s.applyKraus1q(ch, 0, rng);
            }
            p1 += s.probabilityOne(0);
        }
        return p1 / trials;
    };
    // Analytic: P(1) = 0.5 (1 - gamma) = 0.3.
    EXPECT_NEAR(estimate(true), 0.3, 0.02);
    EXPECT_NEAR(estimate(false), 0.3, 0.02);
}

TEST(StateVector, KrausConsumesExactlyOneUniform)
{
    // applyKraus1q folds branch selection into a single uniform
    // draw regardless of which branch wins, so channel application
    // is draw-for-draw stable — lowering and interpreter stay on
    // the same rng stream.
    const KrausChannel channel = amplitudeDamping(0.35);
    Rng used(23), reference(23);
    for (int i = 0; i < 64; ++i) {
        StateVector s(1);
        s.applyMatrix1q(gateMatrix1q(GateKind::RY, {1.3}), 0);
        s.applyKraus1q(channel, 0, used);
        reference.uniform(); // The one draw the channel made.
        ASSERT_EQ(used.uniform(), reference.uniform()) << i;
    }
}

TEST(StateVector, KrausUnitBranchSkipsRenormalization)
{
    // When the selected branch already has norm one (identity-like
    // Kraus op), the rescale is skipped: amplitudes stay bit-exact,
    // not merely close.
    const KrausChannel identity{gateMatrix1q(GateKind::ID, {})};
    Rng rng(29);
    StateVector s(2);
    s.applyH(0);
    s.applyMatrix1q(gateMatrix1q(GateKind::U3, {0.9, 0.4, 1.7}), 1);
    const StateVector before = s;
    s.applyKraus1q(identity, 1, rng);
    for (BasisState x = 0; x < s.dim(); ++x)
        ASSERT_EQ(s.amplitude(x), before.amplitude(x)) << x;
}

TEST(StateVector, FastPhaseDampingPreservesPopulations)
{
    const double lambda = 0.5;
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        StateVector s(1);
        s.applyMatrix1q(gateMatrix1q(GateKind::RY, {1.1}), 0);
        const double before = s.probabilityOne(0);
        s.applyPhaseDamping(0, lambda, rng);
        // Phase damping never changes populations within a branch
        // on average; each branch is a valid normalized state.
        EXPECT_NEAR(s.norm(), 1.0, 1e-9);
        const double after = s.probabilityOne(0);
        EXPECT_TRUE(after == after); // Not NaN.
        (void)before;
    }
}

TEST(StateVector, DampingOnGroundStateIsIdentity)
{
    Rng rng(19);
    StateVector s(2);
    s.applyH(1); // Qubit 0 stays |0>.
    StateVector copy = s;
    EXPECT_FALSE(s.applyAmplitudeDamping(0, 0.9, rng).applied);
    EXPECT_FALSE(s.applyPhaseDamping(0, 0.9, rng).applied);
    EXPECT_NEAR(s.fidelity(copy), 1.0, 1e-12);
}

TEST(StateVector, ApplyOperationRejectsNonUnitary)
{
    StateVector s(1);
    Operation meas{GateKind::MEASURE, {0}, {}};
    EXPECT_THROW(s.applyOperation(meas), std::invalid_argument);
}

TEST(StateVector, SampleScalesDrawByNormOnSubNormalizedState)
{
    // Regression: sample(Rng&) used an unscaled uniform, so on a
    // sub-normalized state every draw past the total mass fell
    // through to the *last* basis state. With the mass concentrated
    // on |01> and total norm 0.25, the old sampler returned |11>
    // for ~75% of draws; the norm-scaled draw always hits |01>.
    StateVector s(2);
    s.setAmplitude(0, {0.0, 0.0});
    s.setAmplitude(1, {0.5, 0.0});
    Rng rng(101);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(s.sample(rng), 1u) << i;
}

TEST(StateVector, SampleUnbiasedWithinRenormalizeSkipWindow)
{
    // The realistic trigger: post-Kraus norm drift inside the 1e-12
    // renormalize-skip window leaves norm = 1 - eps; the sampler
    // must still distribute mass over the support only, never the
    // fall-through state.
    const double half = std::sqrt(0.5 * (1.0 - 1e-9));
    StateVector s(2);
    s.setAmplitude(0, {half, 0.0});
    s.setAmplitude(3, {half, 0.0});
    Rng rng(202);
    int seen[4] = {0, 0, 0, 0};
    for (int i = 0; i < 2000; ++i) {
        const BasisState x = s.sample(rng);
        ASSERT_TRUE(x == 0 || x == 3) << x;
        ++seen[x];
    }
    // Roughly even split over the support (5 sigma ~ 112).
    EXPECT_GT(seen[0], 800);
    EXPECT_GT(seen[3], 800);
}

TEST(StateVector, KrausFallThroughPicksLargestNormBranch)
{
    // Crafted sub-trace channel: branch norms sum to 0.3, so any
    // draw r >= 0.3 exhausts the cumulative scan. The old code
    // defaulted to the *last* branch — here a zero matrix, which
    // nulls the state and makes normalize() throw logic_error. The
    // fix falls back to the largest-norm branch.
    const double a = std::sqrt(0.3);
    const Matrix2 scaledId{Amplitude{a, 0.0}, Amplitude{0.0, 0.0},
                           Amplitude{0.0, 0.0}, Amplitude{a, 0.0}};
    const Matrix2 zero{Amplitude{0.0, 0.0}, Amplitude{0.0, 0.0},
                       Amplitude{0.0, 0.0}, Amplitude{0.0, 0.0}};
    const std::vector<Matrix2> channel{scaledId, zero};
    Rng rng(303);
    bool sawFallThrough = false;
    for (int i = 0; i < 64; ++i) {
        StateVector s(1);
        s.applyMatrix1q(gateMatrix1q(GateKind::RY, {0.8}), 0);
        // Peek whether this iteration's draw lands past the trace.
        Rng peek = rng;
        if (peek.uniform() >= 0.3)
            sawFallThrough = true;
        std::size_t chosen = 0;
        ASSERT_NO_THROW(chosen = s.applyKraus1q(channel, 0, rng));
        EXPECT_EQ(chosen, 0u) << i;
        EXPECT_NEAR(s.norm(), 1.0, 1e-9) << i;
    }
    // The loop must actually have exercised the fall-through path.
    ASSERT_TRUE(sawFallThrough);
}

TEST(StateVector, DampingNearCertainJumpNeverProducesInf)
{
    // gamma -> 1 on a (nearly) fully excited qubit drives the
    // no-jump rescale factor 1/sqrt(1 - p_jump) toward inf. The
    // degenerate case collapses deterministically instead; sweep
    // the boundary and assert finite, normalized output always.
    const double nearOne = std::nextafter(1.0, 0.0);
    Rng rng(404);
    for (const double gamma : {1.0, nearOne}) {
        for (int i = 0; i < 200; ++i) {
            StateVector s(1);
            s.applyX(0); // p1 == 1 exactly.
            const auto r = s.applyAmplitudeDamping(0, gamma, rng);
            EXPECT_TRUE(r.applied);
            const double n = s.norm();
            ASSERT_TRUE(std::isfinite(n));
            ASSERT_NEAR(n, 1.0, 1e-9);
            if (gamma == 1.0) {
                // Full damping on |1> must land on |0>.
                EXPECT_TRUE(r.jumped);
                EXPECT_NEAR(s.probabilityOf(0), 1.0, 1e-9);
            }
        }
        for (int i = 0; i < 200; ++i) {
            StateVector s(1);
            s.applyX(0);
            const auto r = s.applyPhaseDamping(0, gamma, rng);
            EXPECT_TRUE(r.applied);
            const double n = s.norm();
            ASSERT_TRUE(std::isfinite(n));
            ASSERT_NEAR(n, 1.0, 1e-9);
            if (gamma == 1.0) {
                // Full dephasing jump projects onto |1>.
                EXPECT_TRUE(r.jumped);
                EXPECT_NEAR(s.probabilityOne(0), 1.0, 1e-9);
            }
        }
    }
    // Superposition states at the boundary: the rescale factors are
    // large but must stay finite and re-normalize exactly.
    for (int i = 0; i < 200; ++i) {
        StateVector s(1);
        s.applyMatrix1q(gateMatrix1q(GateKind::RY, {2.7}), 0);
        s.applyAmplitudeDamping(0, nearOne, rng);
        ASSERT_TRUE(std::isfinite(s.norm()));
        ASSERT_NEAR(s.norm(), 1.0, 1e-9);
    }
}

} // namespace
} // namespace qem
