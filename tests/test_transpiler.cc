/**
 * @file
 * Integration tests for the full transpilation pipeline.
 */

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "kernels/qaoa.hh"
#include "machine/machines.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"
#include "transpile/transpiler.hh"

namespace qem
{
namespace
{

TEST(Transpiler, BvSurvivesTranspilationOnBowtie)
{
    const Machine m = makeIbmqx2();
    Transpiler transpiler(m);
    const BasisState key = fromBitString("1101");
    const TranspiledProgram program =
        transpiler.transpile(bernsteinVazirani(4, key));
    EXPECT_NO_THROW(validateLayout(program.initialLayout, 5,
                                   m.numQubits()));
    EXPECT_GT(program.durationNs, 0.0);
    // Execute the physical circuit noise-free: semantics intact.
    IdealSimulator sim(m.numQubits(), 9);
    EXPECT_EQ(sim.run(program.circuit, 300).get(key), 300u);
}

TEST(Transpiler, BvSurvivesTranspilationOnMelbourne)
{
    const Machine m = makeIbmqMelbourne();
    Transpiler transpiler(m);
    const BasisState key = fromBitString("0110101");
    const TranspiledProgram program =
        transpiler.transpile(bernsteinVazirani(7, key));
    IdealSimulator sim(m.numQubits(), 10);
    EXPECT_EQ(sim.run(program.circuit, 300).get(key), 300u);
}

TEST(Transpiler, QaoaSurvivesTranspilation)
{
    const Machine m = makeIbmqMelbourne();
    Transpiler transpiler(m);
    const Graph graph = cycleGraph(4);
    QaoaAngles angles{{0.4}, {0.3}};
    const Circuit logical = qaoaCircuit(graph, angles);
    const TranspiledProgram program = transpiler.transpile(logical);
    // Output distribution must match the logical circuit's exactly
    // (both noise-free).
    IdealSimulator narrow(4, 11);
    IdealSimulator wide(m.numQubits(), 11);
    const Counts want = narrow.run(logical, 40000);
    const Counts got = wide.run(program.circuit, 40000);
    for (BasisState s = 0; s < 16; ++s)
        EXPECT_NEAR(got.probability(s), want.probability(s), 0.015)
            << "state " << s;
}

TEST(Transpiler, RoutedGatesRespectCoupling)
{
    const Machine m = makeIbmqx4();
    Transpiler transpiler(m);
    const TranspiledProgram program = transpiler.transpile(
        qaoaCircuit(completeBipartite(5, 0b10101), {{0.5}, {0.2}}));
    for (const Operation& op : program.circuit.ops()) {
        if (op.qubits.size() == 2 && isUnitary(op.kind)) {
            EXPECT_TRUE(
                m.topology().coupled(op.qubits[0], op.qubits[1]))
                << op.toString();
        }
    }
}

TEST(Transpiler, CustomAllocatorIsUsed)
{
    const Machine m = makeIbmqMelbourne();
    Transpiler transpiler(m, std::make_shared<TrivialAllocator>());
    Circuit c(3);
    c.h(0).measureAll();
    const TranspiledProgram program = transpiler.transpile(c);
    EXPECT_EQ(program.initialLayout, (Layout{0, 1, 2}));
}

TEST(Transpiler, ToffoliCircuitsAreLoweredAndRouted)
{
    // A CCX circuit (unroutable as-is) must transpile and keep its
    // semantics: a Toffoli with both controls set flips the target.
    const Machine m = makeIbmqMelbourne();
    Transpiler transpiler(m);
    Circuit c(3);
    c.x(0).x(1).ccx(0, 1, 2).measureAll();
    const TranspiledProgram program = transpiler.transpile(c);
    EXPECT_EQ(program.circuit.countOps(GateKind::CCX), 0u);
    for (const Operation& op : program.circuit.ops()) {
        if (op.qubits.size() == 2 && isUnitary(op.kind)) {
            EXPECT_TRUE(
                m.topology().coupled(op.qubits[0], op.qubits[1]));
        }
    }
    IdealSimulator sim(m.numQubits(), 12);
    EXPECT_EQ(sim.run(program.circuit, 200).get(0b111), 200u);
}

TEST(Transpiler, ScheduledDelaysPresentForUnevenCircuits)
{
    const Machine m = makeIbmqx2();
    Transpiler transpiler(m);
    Circuit c(3);
    c.h(0).h(0).h(0).cx(0, 1).measureAll();
    const TranspiledProgram program = transpiler.transpile(c);
    EXPECT_GT(program.circuit.countOps(GateKind::DELAY), 0u);
}

} // namespace
} // namespace qem
