/**
 * @file
 * Unit tests for inversion strings: circuit rewriting, classical
 * post-correction, and the standard string sets.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "mitigation/inversion.hh"
#include "qsim/bitstring.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(Inversion, InsertsXBeforeSelectedMeasures)
{
    Circuit c(3);
    c.h(0).measure(0, 0).measure(1, 1).measure(2, 2);
    const Circuit inv = applyInversion(c, 0b101);
    // Two X gates inserted (clbits 0 and 2), none for clbit 1.
    EXPECT_EQ(inv.countOps(GateKind::X), 2u);
    EXPECT_EQ(inv.size(), c.size() + 2);
    // Each X directly precedes its measurement on the same qubit.
    const auto& ops = inv.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == GateKind::X) {
            ASSERT_LT(i + 1, ops.size());
            EXPECT_EQ(ops[i + 1].kind, GateKind::MEASURE);
            EXPECT_EQ(ops[i + 1].qubits[0], ops[i].qubits[0]);
        }
    }
}

TEST(Inversion, ZeroMaskIsIdentity)
{
    Circuit c(2);
    c.h(0).measureAll();
    const Circuit inv = applyInversion(c, 0);
    EXPECT_EQ(inv.size(), c.size());
}

TEST(Inversion, MaskAddressesClbitsNotQubits)
{
    // Qubit 2 measured into clbit 0: inverting clbit 0 flips
    // qubit 2.
    Circuit c(3, 1);
    c.measure(2, 0);
    const Circuit inv = applyInversion(c, 0b1);
    ASSERT_EQ(inv.ops()[0].kind, GateKind::X);
    EXPECT_EQ(inv.ops()[0].qubits[0], 2u);
}

TEST(Inversion, CorrectInversionIsXorRelabeling)
{
    Counts observed(3);
    observed.add(0b010, 7);
    const Counts corrected = correctInversion(observed, 0b111);
    EXPECT_EQ(corrected.get(0b101), 7u);
}

TEST(Inversion, RoundTripPreservesSemanticsOnIdealBackend)
{
    // Property: for any state s and mask m, running the inverted
    // circuit and XOR-correcting reproduces s exactly.
    IdealSimulator sim(4, 41);
    for (BasisState s = 0; s < 16; ++s) {
        for (InversionString m : {BasisState{0}, BasisState{0b1111},
                                  BasisState{0b0101},
                                  BasisState{0b0011}}) {
            const Circuit inv =
                applyInversion(basisStatePrep(4, s), m);
            const Counts corrected =
                correctInversion(sim.run(inv, 16), m);
            ASSERT_EQ(corrected.get(s), 16u)
                << "s=" << s << " m=" << m;
        }
    }
}

TEST(Inversion, TwoModeStrings)
{
    const auto strings = twoModeStrings(5);
    ASSERT_EQ(strings.size(), 2u);
    EXPECT_EQ(strings[0], 0u);
    EXPECT_EQ(strings[1], allOnes(5));
}

TEST(Inversion, FourModeStringsMatchPaper)
{
    // Section 5.3: no inversion, full inversion, even-bit, odd-bit.
    const auto strings = fourModeStrings(5);
    ASSERT_EQ(strings.size(), 4u);
    EXPECT_NE(std::find(strings.begin(), strings.end(),
                        BasisState{0}),
              strings.end());
    EXPECT_NE(std::find(strings.begin(), strings.end(), allOnes(5)),
              strings.end());
    const BasisState even = fromBitString("10101");
    const BasisState odd = fromBitString("01010");
    EXPECT_NE(std::find(strings.begin(), strings.end(), even),
              strings.end());
    EXPECT_NE(std::find(strings.begin(), strings.end(), odd),
              strings.end());
}

TEST(Inversion, MultiModeStringsFormXorClosedSet)
{
    const auto strings = multiModeStrings(6, 3);
    ASSERT_EQ(strings.size(), 8u);
    // Distinct.
    auto sorted = strings;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
    // XOR-closed subgroup of the hypercube.
    for (InversionString a : strings) {
        for (InversionString b : strings) {
            EXPECT_NE(std::find(strings.begin(), strings.end(),
                                a ^ b),
                      strings.end());
        }
    }
}

TEST(Inversion, MultiModeValidation)
{
    EXPECT_THROW(multiModeStrings(0, 1), std::invalid_argument);
    EXPECT_THROW(multiModeStrings(2, 3), std::invalid_argument);
    EXPECT_THROW(multiModeStrings(4, 0), std::invalid_argument);
}

} // namespace
} // namespace qem
