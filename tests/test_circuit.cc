/**
 * @file
 * Unit tests for the circuit IR.
 */

#include <gtest/gtest.h>

#include "qsim/bitstring.hh"
#include "qsim/circuit.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(Circuit, ConstructionDefaultsClbitsToQubits)
{
    Circuit c(3);
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numClbits(), 3u);
    Circuit d(3, 1);
    EXPECT_EQ(d.numClbits(), 1u);
    EXPECT_THROW(Circuit(0), std::invalid_argument);
    EXPECT_THROW(Circuit(65), std::invalid_argument);
}

TEST(Circuit, BuildersAppendOps)
{
    Circuit c(3);
    c.h(0).cx(0, 1).rz(0.5, 2).measure(1, 0);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.ops()[0].kind, GateKind::H);
    EXPECT_EQ(c.ops()[1].qubits[1], 1u);
    EXPECT_EQ(c.ops()[2].params[0], 0.5);
    EXPECT_EQ(c.ops()[3].cbit, 0u);
}

TEST(Circuit, AppendValidatesOperands)
{
    Circuit c(2);
    EXPECT_THROW(c.x(2), std::out_of_range);
    EXPECT_THROW(c.cx(0, 0), std::invalid_argument);
    EXPECT_THROW(c.measure(0, 5), std::out_of_range);
    Operation bad{GateKind::CX, {0}, {}};
    EXPECT_THROW(c.append(bad), std::invalid_argument);
    Operation badparam{GateKind::RX, {0}, {}};
    EXPECT_THROW(c.append(badparam), std::invalid_argument);
}

TEST(Circuit, DepthIgnoresBarriersAndDelays)
{
    Circuit c(2);
    c.h(0).barrier().delay(100, 0).h(0).x(1);
    EXPECT_EQ(c.depth(), 2u); // Two H's on qubit 0.
}

TEST(Circuit, DepthTracksCrossQubitDependencies)
{
    Circuit c(3);
    c.h(0).h(1).cx(0, 1).x(2);
    EXPECT_EQ(c.depth(), 2u);
    c.cx(1, 2);
    EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, CountOpsAndTwoQubitGateCount)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).swap(0, 2).measureAll();
    EXPECT_EQ(c.countOps(GateKind::CX), 2u);
    EXPECT_EQ(c.countOps(GateKind::MEASURE), 3u);
    EXPECT_EQ(c.twoQubitGateCount(), 3u);
}

TEST(Circuit, ComposeConcatenates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    a.compose(b);
    EXPECT_EQ(a.size(), 2u);
    Circuit wide(3);
    EXPECT_THROW(b.compose(wide), std::invalid_argument);
}

TEST(Circuit, MeasureAllRequiresRoom)
{
    Circuit tight(3, 1);
    EXPECT_THROW(tight.measureAll(), std::logic_error);
}

TEST(Circuit, InverseUndoesUnitaryEvolution)
{
    Circuit c(3, 0);
    c.h(0).t(1).cx(0, 1).u3(0.3, 1.1, -0.4, 2).s(2).cz(1, 2)
        .rx(0.7, 0).u2(0.2, 0.9, 1).sx(2).swap(0, 2);
    Circuit round_trip = c;
    round_trip.compose(c.inverse());
    IdealSimulator sim(3);
    const StateVector state = sim.stateOf(round_trip);
    EXPECT_NEAR(state.probabilityOf(0), 1.0, 1e-9);
}

TEST(Circuit, InverseRejectsMeasurement)
{
    Circuit c(1);
    c.h(0).measure(0, 0);
    EXPECT_THROW(c.inverse(), std::logic_error);
}

TEST(Circuit, RemapQubitsRewritesOperands)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const Circuit phys = c.remapQubits({3, 1}, 5);
    EXPECT_EQ(phys.numQubits(), 5u);
    EXPECT_EQ(phys.ops()[0].qubits[0], 3u);
    EXPECT_EQ(phys.ops()[1].qubits[0], 3u);
    EXPECT_EQ(phys.ops()[1].qubits[1], 1u);
    EXPECT_EQ(phys.ops()[2].qubits[0], 3u);
    EXPECT_EQ(phys.ops()[2].cbit, 0u);
    EXPECT_THROW(c.remapQubits({0}, 5), std::invalid_argument);
    EXPECT_THROW(c.remapQubits({0, 9}, 5), std::invalid_argument);
}

TEST(Circuit, MeasuredQubitsInClbitOrder)
{
    Circuit c(3);
    c.measure(2, 0).measure(0, 1);
    const auto measured = c.measuredQubits();
    ASSERT_EQ(measured.size(), 2u);
    EXPECT_EQ(measured[0], 2u);
    EXPECT_EQ(measured[1], 0u);
    EXPECT_TRUE(c.hasMeasurements());
    EXPECT_FALSE(Circuit(1).hasMeasurements());
}

TEST(Circuit, ClassicalOutcomeProjectsMeasuredBits)
{
    Circuit c(4, 2);
    c.measure(3, 0).measure(1, 1);
    // Full state q3=1, q1=0, q0=1 -> c0 = q3 = 1, c1 = q1 = 0.
    const BasisState full = fromBitString("1001");
    EXPECT_EQ(c.classicalOutcome(full), 0b01u);
}

TEST(Circuit, ToStringListsOps)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const std::string text = c.toString();
    EXPECT_NE(text.find("h q0"), std::string::npos);
    EXPECT_NE(text.find("cx q0, q1"), std::string::npos);
}

} // namespace
} // namespace qem
