/**
 * @file
 * Unit tests for OpenQASM 2.0 export/import.
 */

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "qsim/bitstring.hh"
#include "qsim/qasm.hh"
#include "qsim/simulator.hh"

namespace qem
{
namespace
{

TEST(Qasm, EmitsHeaderAndRegisters)
{
    Circuit c(3, 2);
    const std::string text = toQasm(c);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(text.find("creg c[2];"), std::string::npos);
}

TEST(Qasm, EmitsGatesMeasuresBarriers)
{
    Circuit c(2);
    c.h(0).rx(0.5, 1).cx(0, 1).barrier().measure(1, 0);
    const std::string text = toQasm(c);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("rx(0.5) q[1];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0], q[1];"), std::string::npos);
    EXPECT_NE(text.find("barrier q;"), std::string::npos);
    EXPECT_NE(text.find("measure q[1] -> c[0];"),
              std::string::npos);
}

TEST(Qasm, RoundTripPreservesSemantics)
{
    const BasisState key = fromBitString("101");
    Circuit original = bernsteinVazirani(3, key);
    original.delay(120.5, 2);
    const Circuit parsed = fromQasm(toQasm(original));
    EXPECT_EQ(parsed.numQubits(), original.numQubits());
    EXPECT_EQ(parsed.numClbits(), original.numClbits());
    EXPECT_EQ(parsed.size(), original.size());
    IdealSimulator sim(4, 3);
    EXPECT_EQ(sim.run(parsed, 100).get(key), 100u);
}

TEST(Qasm, RoundTripEveryGateKind)
{
    Circuit c(3);
    c.id(0).x(0).y(1).z(2).h(0).s(1).sdg(2).t(0).tdg(1).sx(2);
    c.rx(0.25, 0).ry(-1.5, 1).rz(3.0, 2).p(0.125, 0);
    c.u2(0.1, 0.2, 1).u3(0.1, 0.2, 0.3, 2);
    c.cx(0, 1).cz(1, 2).swap(0, 2).ccx(0, 1, 2);
    c.measureAll();
    const Circuit parsed = fromQasm(toQasm(c));
    ASSERT_EQ(parsed.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(parsed.ops()[i].kind, c.ops()[i].kind) << i;
        EXPECT_EQ(parsed.ops()[i].qubits, c.ops()[i].qubits) << i;
        ASSERT_EQ(parsed.ops()[i].params.size(),
                  c.ops()[i].params.size());
        for (std::size_t p = 0; p < c.ops()[i].params.size(); ++p)
            EXPECT_NEAR(parsed.ops()[i].params[p],
                        c.ops()[i].params[p], 1e-9);
    }
}

TEST(Qasm, ParserIgnoresCommentsAndBlankLines)
{
    const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[1];

creg c[1];
h q[0]; // trailing comment
measure q[0] -> c[0];
)";
    const Circuit c = fromQasm(text);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Qasm, ParserDiagnosesErrors)
{
    EXPECT_THROW(fromQasm("h q[0];"), std::invalid_argument);
    EXPECT_THROW(fromQasm("qreg q[1];\ncreg c[1];\nfrob q[0];"),
                 std::invalid_argument);
    EXPECT_THROW(fromQasm("qreg q[1];\ncreg c[1];\nh q[0]"),
                 std::invalid_argument);
    EXPECT_THROW(fromQasm("qreg q[1];\ncreg c[1];\nh q[5];"),
                 std::invalid_argument);
    EXPECT_THROW(fromQasm("qreg q[1];\ncreg c[1];\nrx() q[0];"),
                 std::invalid_argument);
    EXPECT_THROW(fromQasm(""), std::invalid_argument);
}

TEST(Qasm, RegistersOnlyProgramIsAnEmptyCircuit)
{
    // Declarations with no statements are legal QASM: the result is
    // a gate-free circuit of the declared shape.
    const Circuit c = fromQasm("OPENQASM 2.0;\n"
                               "include \"qelib1.inc\";\n"
                               "qreg q[3];\n"
                               "creg c[2];\n");
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numClbits(), 2u);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_FALSE(c.hasMeasurements());
}

TEST(Qasm, CommentsOnlyProgramIsRejected)
{
    // A file of comments and blank lines never declares registers,
    // so the parser must refuse it rather than return a 0-qubit
    // circuit.
    EXPECT_THROW(fromQasm("// nothing here\n"
                          "\n"
                          "   // still nothing\n"),
                 std::invalid_argument);
    EXPECT_THROW(fromQasm("OPENQASM 2.0;\n// just a header\n"),
                 std::invalid_argument);
}

TEST(Qasm, UnknownGateNamesTheOffender)
{
    try {
        fromQasm("qreg q[2];\ncreg c[2];\nxyzzy q[0];");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("xyzzy"), std::string::npos) << what;
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    }
}

} // namespace
} // namespace qem
