/**
 * @file
 * Tests of the precompiled trajectory noise program: the fast-path
 * predicate (stochastic() must see model AND options), lowering
 * invariants, compile()/run() equivalence, and an exact-counts
 * golden pinning bit-identity of the precompiled hot loop across
 * thread counts on the paper machines.
 */

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/noise_program.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "runtime/parallel_backend.hh"
#include "telemetry/json.hh"
#include "transpile/transpiler.hh"
#include "verify/golden.hh"

namespace qem
{
namespace
{

Circuit
xDelayMeasure()
{
    Circuit c(1);
    c.x(0).delay(500.0, 0).measure(0, 0);
    return c;
}

TEST(NoiseProgram, CleanModelIsNotStochastic)
{
    const NoiseProgram p = NoiseProgram::lower(
        xDelayMeasure(), NoiseModel(1), TrajectoryOptions{});
    EXPECT_FALSE(p.stochastic());
}

TEST(NoiseProgram, ReadoutOnlyModelIsNotStochastic)
{
    // Readout confusion is applied per shot, outside the trajectory
    // evolution — it must not defeat the single-trajectory shortcut.
    NoiseModel model(1);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.1}, std::vector<double>{0.2}));
    const NoiseProgram p = NoiseProgram::lower(
        xDelayMeasure(), model, TrajectoryOptions{});
    EXPECT_FALSE(p.stochastic());
}

TEST(NoiseProgram, StochasticPredicateSeesModelAndOptions)
{
    // The historical bug: eligibility checked model.hasGateNoise()
    // alone, so a model with gate noise but options disabling every
    // stochastic process still paid one trajectory per batch.
    NoiseModel noisy(1);
    noisy.setGate1q(0, {0.05, 120.0});
    noisy.setT1(0, 50000.0);
    noisy.setT2(0, 70000.0);
    const Circuit c = xDelayMeasure();

    EXPECT_TRUE(NoiseProgram::lower(c, noisy, TrajectoryOptions{})
                    .stochastic());

    TrajectoryOptions gateOff;
    gateOff.enableGateErrors = false;
    EXPECT_TRUE(NoiseProgram::lower(c, noisy, gateOff).stochastic())
        << "decay over finite T1 remains stochastic";

    TrajectoryOptions decayOff;
    decayOff.enableDecay = false;
    EXPECT_TRUE(NoiseProgram::lower(c, noisy, decayOff).stochastic())
        << "depolarizing gate errors remain stochastic";

    TrajectoryOptions bothOff;
    bothOff.enableGateErrors = false;
    bothOff.enableDecay = false;
    EXPECT_FALSE(
        NoiseProgram::lower(c, noisy, bothOff).stochastic())
        << "no effectively enabled stochastic process";
}

TEST(NoiseProgram, ZeroRatesLowerToNothingStochastic)
{
    // A model that nominally "has gate noise" but with zero
    // probability and zero duration contributes no stochastic step.
    NoiseModel model(1);
    model.setGate1q(0, {0.0, 0.0});
    const NoiseProgram p = NoiseProgram::lower(
        xDelayMeasure(), model, TrajectoryOptions{});
    EXPECT_FALSE(p.stochastic());
}

TEST(NoiseProgram, GateCountMatchesSourceOperations)
{
    // gatesPerTrajectory counts source unitaries (CCX once, not its
    // 15-gate decomposition), matching pre-lowering telemetry.
    Circuit c(3);
    c.h(0).cx(0, 1).ccx(0, 1, 2).measureAll();
    const NoiseProgram p = NoiseProgram::lower(
        c, NoiseModel(3), TrajectoryOptions{});
    EXPECT_EQ(p.gatesPerTrajectory(), 3u);
    EXPECT_FALSE(p.stochastic());
    EXPECT_GT(p.size(), 3u); // Decomposition emits real steps.
}

TEST(NoiseProgram, EvolveIsDrawIdenticalAcrossSharing)
{
    // One immutable program, two same-seeded streams: evolve() must
    // keep no internal state between trajectories.
    NoiseModel model(2);
    model.setGate1q(0, {0.2, 0.0});
    model.setGate1q(1, {0.2, 0.0});
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const NoiseProgram p =
        NoiseProgram::lower(c, model, TrajectoryOptions{});
    ASSERT_TRUE(p.stochastic());

    Rng r1(91), r2(91);
    StateVector a(p.compactQubits()), b(p.compactQubits());
    for (int i = 0; i < 20; ++i) {
        a.resetTo(0);
        b.resetTo(0);
        p.evolve(a, r1);
        p.evolve(b, r2);
        for (BasisState s = 0; s < a.dim(); ++s)
            ASSERT_EQ(a.amplitude(s), b.amplitude(s))
                << "trajectory " << i << " state " << s;
    }
}

TEST(NoiseProgram, CompiledRunMatchesDirectRun)
{
    // run(circuit, shots, rng) is defined as compile()->run(); pin
    // that a reused compiled program consumes the stream the same
    // way as compile-per-call.
    const Machine machine = makeIbmqx2();
    const Transpiler transpiler(machine);
    const Circuit c =
        transpiler.transpile(bernsteinVazirani(3, 0b101)).circuit;
    const TrajectorySimulator sim(machine.noiseModel(), 1);
    const auto compiled = sim.compile(c);
    ASSERT_NE(compiled, nullptr);
    Rng direct(77), reused(77);
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(sim.run(c, 512, direct).raw(),
                  compiled->run(512, reused).raw())
            << "round " << round;
    }
}

/**
 * Exact-counts golden for the precompiled hot loop (schema
 * invertq.trajectory-exact/v1, distinct from the statistical
 * invertq.golden/v1 store: these counts pin bit-identity, not
 * distributional agreement). Captured from the pre-lowering
 * interpreter; the lowered program must reproduce them exactly,
 * across thread counts. Regenerate with --update-golden.
 */
class TrajectoryExactGolden
{
  public:
    explicit TrajectoryExactGolden(
        const std::string& file = "trajectory_program.json")
        : path_(std::string(QEM_GOLDEN_DIR) + "/" + file),
          update_(verify::GoldenStore::updateRequested())
    {
    }

    void check(const std::string& name, const Counts& counts)
    {
        if (update_) {
            telemetry::JsonValue rec = telemetry::JsonValue::object();
            rec["bits"] = telemetry::JsonValue(counts.numBits());
            telemetry::JsonValue raw = telemetry::JsonValue::object();
            for (const auto& [state, n] : counts.raw())
                raw[std::to_string(state)] = telemetry::JsonValue(n);
            rec["counts"] = std::move(raw);
            fresh_["records"][name] = std::move(rec);
            return;
        }
        if (root_.isNull()) {
            std::ifstream in(path_);
            ASSERT_TRUE(in.good()) << "missing golden: " << path_;
            std::ostringstream text;
            text << in.rdbuf();
            root_ = telemetry::JsonValue::parse(text.str());
        }
        const telemetry::JsonValue* records = root_.find("records");
        ASSERT_NE(records, nullptr);
        const telemetry::JsonValue* rec = records->find(name);
        ASSERT_NE(rec, nullptr) << "no golden record " << name;
        ASSERT_EQ(rec->find("bits")->asUint(), counts.numBits());
        std::map<BasisState, std::uint64_t> expected;
        for (const auto& [state, value] :
             rec->find("counts")->members())
            expected[std::stoull(state)] = value.asUint();
        EXPECT_EQ(counts.raw(), expected)
            << name << ": precompiled counts diverged bit-wise "
            << "from the recorded interpreter run";
    }

    ~TrajectoryExactGolden()
    {
        if (!update_)
            return;
        fresh_["schema"] = telemetry::JsonValue(
            "invertq.trajectory-exact/v1");
        std::ofstream out(path_);
        out << fresh_.dump(1) << "\n";
    }

  private:
    std::string path_;
    bool update_ = false;
    telemetry::JsonValue root_;
    telemetry::JsonValue fresh_;
};

TEST(NoiseProgram, PrecompiledCountsMatchInterpreterGolden)
{
    TrajectoryExactGolden golden;
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Transpiler transpiler(machine);
        const Circuit c =
            transpiler.transpile(bernsteinVazirani(4, 0b0111))
                .circuit;
        for (unsigned threads : {1u, 4u, 8u}) {
            const TrajectorySimulator proto(machine.noiseModel(),
                                            11);
            ParallelBackend backend(
                proto, 2027,
                RuntimeOptions{.numThreads = threads,
                               .batchSize = 128});
            golden.check(std::string(name) + "/bv4/t" +
                             std::to_string(threads),
                         backend.run(c, 4096));
            if (HasFatalFailure())
                return;
        }
        TrajectorySimulator serial(machine.noiseModel(), 33);
        golden.check(std::string(name) + "/bv4/serial",
                     serial.run(c, 4096));
        if (HasFatalFailure())
            return;
    }
}

/**
 * A circuit whose lowering has fusable unitary adjacency even under
 * full noise: stochastic steps follow each *source* op, so the
 * 15-step CCX decompositions fuse internally (15 -> 5 steps each)
 * while the stochastic layout around them is untouched.
 */
Circuit
ccxLadder()
{
    Circuit c(5);
    c.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3).ccx(2, 3, 4).measureAll();
    return c;
}

TEST(NoiseProgram, FusionReducesStepsAndKeepsGateCount)
{
    const Machine machine = makeIbmqx2();
    const Circuit c = ccxLadder();
    TrajectoryOptions fused;
    fused.fuseGates = true;
    const NoiseProgram plain = NoiseProgram::lower(
        c, machine.noiseModel(), TrajectoryOptions{});
    const NoiseProgram opt =
        NoiseProgram::lower(c, machine.noiseModel(), fused);
    EXPECT_EQ(plain.fusedSteps(), 0u);
    // Each CCX decomposition collapses 15 unitary steps to 5.
    EXPECT_GE(opt.fusedSteps(), 20u);
    EXPECT_EQ(plain.size(), opt.size() + opt.fusedSteps());
    EXPECT_EQ(plain.gatesPerTrajectory(), opt.gatesPerTrajectory());
    EXPECT_EQ(plain.stochastic(), opt.stochastic());

    // Full-noise transpiled BV has a stochastic step after every
    // unitary, so there is nothing to fuse — and fusion must not
    // invent anything.
    const Transpiler transpiler(machine);
    const Circuit bv =
        transpiler.transpile(bernsteinVazirani(4, 0b0111)).circuit;
    const NoiseProgram bvPlain = NoiseProgram::lower(
        bv, machine.noiseModel(), TrajectoryOptions{});
    const NoiseProgram bvOpt =
        NoiseProgram::lower(bv, machine.noiseModel(), fused);
    EXPECT_EQ(bvOpt.fusedSteps(), 0u);
    EXPECT_EQ(bvPlain.size(), bvOpt.size());
}

TEST(NoiseProgram, FusionPreservesDrawStream)
{
    // Fusion merges only unitary steps, which consume no RNG draws:
    // with every stochastic step drawing a *state-independent*
    // amount (gate errors: one bernoulli at constant p, plus Pauli
    // picks on fire), a fused trajectory must consume the stream
    // bit-identically to the unfused one, including branch outcomes.
    // Decay channels are excluded here by design, not convenience:
    // they skip their draw entirely when the qubit has exactly zero
    // |1> population, and fused 4x4 products can turn an exact-zero
    // amplitude into a ~1e-17 rounding residue (or vice versa),
    // legitimately changing how many draws the channel consumes —
    // that full-noise behavior is pinned deterministically by the
    // fused golden instead.
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Circuit c = ccxLadder();
        TrajectoryOptions plainOpt;
        plainOpt.enableDecay = false;
        TrajectoryOptions fusedOpt = plainOpt;
        fusedOpt.fuseGates = true;
        const NoiseProgram plain =
            NoiseProgram::lower(c, machine.noiseModel(), plainOpt);
        const NoiseProgram fused = NoiseProgram::lower(
            c, machine.noiseModel(), fusedOpt);
        ASSERT_TRUE(plain.stochastic());
        ASSERT_GT(fused.fusedSteps(), 0u);

        Rng rp(515), rf(515);
        StateVector a(plain.compactQubits());
        StateVector b(fused.compactQubits());
        for (int i = 0; i < 100; ++i) {
            a.resetTo(0);
            b.resetTo(0);
            const TrajectoryEvents ep = plain.evolve(a, rp);
            const TrajectoryEvents ef = fused.evolve(b, rf);
            ASSERT_EQ(ep.gateErrors, ef.gateErrors)
                << name << " trajectory " << i;
            ASSERT_EQ(ep.decayEvents, ef.decayEvents)
                << name << " trajectory " << i;
            // Streams must sit at the same position after every
            // trajectory, not merely at the end.
            Rng peekP = rp, peekF = rf;
            ASSERT_EQ(peekP.uniform(), peekF.uniform())
                << name << " trajectory " << i;
            // Same draws + same branches: the trajectories describe
            // the same physical path, so amplitudes agree to
            // rounding.
            ASSERT_NEAR(a.fidelity(b), 1.0, 1e-9)
                << name << " trajectory " << i;
        }
    }
}

TEST(NoiseProgram, FusionMatchesUnfusedOnCleanCircuits)
{
    // With no stochastic step the fused program is one long unitary
    // contraction; the final state must match the gate-by-gate
    // evolution up to FP rounding on every machine topology.
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Transpiler transpiler(machine);
        const Circuit c =
            transpiler.transpile(bernsteinVazirani(4, 0b0110))
                .circuit;
        TrajectoryOptions fusedOpt;
        fusedOpt.fuseGates = true;
        const NoiseModel clean(machine.noiseModel().numQubits());
        const NoiseProgram plain =
            NoiseProgram::lower(c, clean, TrajectoryOptions{});
        const NoiseProgram fused =
            NoiseProgram::lower(c, clean, fusedOpt);
        ASSERT_FALSE(fused.stochastic());
        EXPECT_LT(fused.size(), plain.size());

        Rng rng(0);
        StateVector a(plain.compactQubits());
        StateVector b(fused.compactQubits());
        plain.evolve(a, rng);
        fused.evolve(b, rng);
        EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12) << name;
    }
}

TEST(NoiseProgram, FusedCountsMatchFusedGolden)
{
    // Fused amplitudes round differently, so fused mode pins its own
    // exact-counts golden (trajectory_fused.json) rather than
    // reusing the unfused one; both regenerate via --update-golden.
    TrajectoryExactGolden golden("trajectory_fused.json");
    TrajectoryOptions fusedOpt;
    fusedOpt.fuseGates = true;
    const Circuit c = ccxLadder();
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        for (unsigned threads : {1u, 4u}) {
            const TrajectorySimulator proto(machine.noiseModel(), 11,
                                            fusedOpt);
            ParallelBackend backend(
                proto, 2027,
                RuntimeOptions{.numThreads = threads,
                               .batchSize = 128});
            golden.check(std::string(name) + "/ccx5/t" +
                             std::to_string(threads),
                         backend.run(c, 4096));
            if (HasFatalFailure())
                return;
        }
        TrajectorySimulator serial(machine.noiseModel(), 33,
                                   fusedOpt);
        golden.check(std::string(name) + "/ccx5/serial",
                     serial.run(c, 4096));
        if (HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace qem
