/**
 * @file
 * Tests of the precompiled trajectory noise program: the fast-path
 * predicate (stochastic() must see model AND options), lowering
 * invariants, compile()/run() equivalence, and an exact-counts
 * golden pinning bit-identity of the precompiled hot loop across
 * thread counts on the paper machines.
 */

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "kernels/bv.hh"
#include "machine/machines.hh"
#include "noise/noise_program.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"
#include "runtime/parallel_backend.hh"
#include "telemetry/json.hh"
#include "transpile/transpiler.hh"
#include "verify/golden.hh"

namespace qem
{
namespace
{

Circuit
xDelayMeasure()
{
    Circuit c(1);
    c.x(0).delay(500.0, 0).measure(0, 0);
    return c;
}

TEST(NoiseProgram, CleanModelIsNotStochastic)
{
    const NoiseProgram p = NoiseProgram::lower(
        xDelayMeasure(), NoiseModel(1), TrajectoryOptions{});
    EXPECT_FALSE(p.stochastic());
}

TEST(NoiseProgram, ReadoutOnlyModelIsNotStochastic)
{
    // Readout confusion is applied per shot, outside the trajectory
    // evolution — it must not defeat the single-trajectory shortcut.
    NoiseModel model(1);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.1}, std::vector<double>{0.2}));
    const NoiseProgram p = NoiseProgram::lower(
        xDelayMeasure(), model, TrajectoryOptions{});
    EXPECT_FALSE(p.stochastic());
}

TEST(NoiseProgram, StochasticPredicateSeesModelAndOptions)
{
    // The historical bug: eligibility checked model.hasGateNoise()
    // alone, so a model with gate noise but options disabling every
    // stochastic process still paid one trajectory per batch.
    NoiseModel noisy(1);
    noisy.setGate1q(0, {0.05, 120.0});
    noisy.setT1(0, 50000.0);
    noisy.setT2(0, 70000.0);
    const Circuit c = xDelayMeasure();

    EXPECT_TRUE(NoiseProgram::lower(c, noisy, TrajectoryOptions{})
                    .stochastic());

    TrajectoryOptions gateOff;
    gateOff.enableGateErrors = false;
    EXPECT_TRUE(NoiseProgram::lower(c, noisy, gateOff).stochastic())
        << "decay over finite T1 remains stochastic";

    TrajectoryOptions decayOff;
    decayOff.enableDecay = false;
    EXPECT_TRUE(NoiseProgram::lower(c, noisy, decayOff).stochastic())
        << "depolarizing gate errors remain stochastic";

    TrajectoryOptions bothOff;
    bothOff.enableGateErrors = false;
    bothOff.enableDecay = false;
    EXPECT_FALSE(
        NoiseProgram::lower(c, noisy, bothOff).stochastic())
        << "no effectively enabled stochastic process";
}

TEST(NoiseProgram, ZeroRatesLowerToNothingStochastic)
{
    // A model that nominally "has gate noise" but with zero
    // probability and zero duration contributes no stochastic step.
    NoiseModel model(1);
    model.setGate1q(0, {0.0, 0.0});
    const NoiseProgram p = NoiseProgram::lower(
        xDelayMeasure(), model, TrajectoryOptions{});
    EXPECT_FALSE(p.stochastic());
}

TEST(NoiseProgram, GateCountMatchesSourceOperations)
{
    // gatesPerTrajectory counts source unitaries (CCX once, not its
    // 15-gate decomposition), matching pre-lowering telemetry.
    Circuit c(3);
    c.h(0).cx(0, 1).ccx(0, 1, 2).measureAll();
    const NoiseProgram p = NoiseProgram::lower(
        c, NoiseModel(3), TrajectoryOptions{});
    EXPECT_EQ(p.gatesPerTrajectory(), 3u);
    EXPECT_FALSE(p.stochastic());
    EXPECT_GT(p.size(), 3u); // Decomposition emits real steps.
}

TEST(NoiseProgram, EvolveIsDrawIdenticalAcrossSharing)
{
    // One immutable program, two same-seeded streams: evolve() must
    // keep no internal state between trajectories.
    NoiseModel model(2);
    model.setGate1q(0, {0.2, 0.0});
    model.setGate1q(1, {0.2, 0.0});
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const NoiseProgram p =
        NoiseProgram::lower(c, model, TrajectoryOptions{});
    ASSERT_TRUE(p.stochastic());

    Rng r1(91), r2(91);
    StateVector a(p.compactQubits()), b(p.compactQubits());
    for (int i = 0; i < 20; ++i) {
        a.resetTo(0);
        b.resetTo(0);
        p.evolve(a, r1);
        p.evolve(b, r2);
        for (BasisState s = 0; s < a.dim(); ++s)
            ASSERT_EQ(a.amplitude(s), b.amplitude(s))
                << "trajectory " << i << " state " << s;
    }
}

TEST(NoiseProgram, CompiledRunMatchesDirectRun)
{
    // run(circuit, shots, rng) is defined as compile()->run(); pin
    // that a reused compiled program consumes the stream the same
    // way as compile-per-call.
    const Machine machine = makeIbmqx2();
    const Transpiler transpiler(machine);
    const Circuit c =
        transpiler.transpile(bernsteinVazirani(3, 0b101)).circuit;
    const TrajectorySimulator sim(machine.noiseModel(), 1);
    const auto compiled = sim.compile(c);
    ASSERT_NE(compiled, nullptr);
    Rng direct(77), reused(77);
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(sim.run(c, 512, direct).raw(),
                  compiled->run(512, reused).raw())
            << "round " << round;
    }
}

/**
 * Exact-counts golden for the precompiled hot loop (schema
 * invertq.trajectory-exact/v1, distinct from the statistical
 * invertq.golden/v1 store: these counts pin bit-identity, not
 * distributional agreement). Captured from the pre-lowering
 * interpreter; the lowered program must reproduce them exactly,
 * across thread counts. Regenerate with --update-golden.
 */
class TrajectoryExactGolden
{
  public:
    TrajectoryExactGolden()
        : path_(std::string(QEM_GOLDEN_DIR) +
                "/trajectory_program.json"),
          update_(verify::GoldenStore::updateRequested())
    {
    }

    void check(const std::string& name, const Counts& counts)
    {
        if (update_) {
            telemetry::JsonValue rec = telemetry::JsonValue::object();
            rec["bits"] = telemetry::JsonValue(counts.numBits());
            telemetry::JsonValue raw = telemetry::JsonValue::object();
            for (const auto& [state, n] : counts.raw())
                raw[std::to_string(state)] = telemetry::JsonValue(n);
            rec["counts"] = std::move(raw);
            fresh_["records"][name] = std::move(rec);
            return;
        }
        if (root_.isNull()) {
            std::ifstream in(path_);
            ASSERT_TRUE(in.good()) << "missing golden: " << path_;
            std::ostringstream text;
            text << in.rdbuf();
            root_ = telemetry::JsonValue::parse(text.str());
        }
        const telemetry::JsonValue* records = root_.find("records");
        ASSERT_NE(records, nullptr);
        const telemetry::JsonValue* rec = records->find(name);
        ASSERT_NE(rec, nullptr) << "no golden record " << name;
        ASSERT_EQ(rec->find("bits")->asUint(), counts.numBits());
        std::map<BasisState, std::uint64_t> expected;
        for (const auto& [state, value] :
             rec->find("counts")->members())
            expected[std::stoull(state)] = value.asUint();
        EXPECT_EQ(counts.raw(), expected)
            << name << ": precompiled counts diverged bit-wise "
            << "from the recorded interpreter run";
    }

    ~TrajectoryExactGolden()
    {
        if (!update_)
            return;
        fresh_["schema"] = telemetry::JsonValue(
            "invertq.trajectory-exact/v1");
        std::ofstream out(path_);
        out << fresh_.dump(1) << "\n";
    }

  private:
    std::string path_;
    bool update_ = false;
    telemetry::JsonValue root_;
    telemetry::JsonValue fresh_;
};

TEST(NoiseProgram, PrecompiledCountsMatchInterpreterGolden)
{
    TrajectoryExactGolden golden;
    for (const char* name : {"ibmqx2", "ibmqx4"}) {
        const Machine machine = makeMachine(name);
        const Transpiler transpiler(machine);
        const Circuit c =
            transpiler.transpile(bernsteinVazirani(4, 0b0111))
                .circuit;
        for (unsigned threads : {1u, 4u, 8u}) {
            const TrajectorySimulator proto(machine.noiseModel(),
                                            11);
            ParallelBackend backend(
                proto, 2027,
                RuntimeOptions{.numThreads = threads,
                               .batchSize = 128});
            golden.check(std::string(name) + "/bv4/t" +
                             std::to_string(threads),
                         backend.run(c, 4096));
            if (HasFatalFailure())
                return;
        }
        TrajectorySimulator serial(machine.noiseModel(), 33);
        golden.check(std::string(name) + "/bv4/serial",
                     serial.run(c, 4096));
        if (HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace qem
