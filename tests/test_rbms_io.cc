/**
 * @file
 * Unit tests for RBMS profile serialization.
 */

#include <gtest/gtest.h>

#include "mitigation/rbms_io.hh"
#include "noise/trajectory.hh"

namespace qem
{
namespace
{

TEST(RbmsIo, ExhaustiveRoundTrip)
{
    ExhaustiveRbms original({0.9, 0.4, 0.7, 0.25});
    const auto parsed = parseRbms(serializeRbms(original));
    ASSERT_NE(parsed, nullptr);
    EXPECT_EQ(parsed->numBits(), 2u);
    for (BasisState s = 0; s < 4; ++s)
        EXPECT_NEAR(parsed->strength(s), original.strength(s),
                    1e-15)
            << s;
    EXPECT_EQ(parsed->strongestState(),
              original.strongestState());
}

TEST(RbmsIo, WindowedRoundTrip)
{
    WindowedRbms original(
        5, {{0, {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}},
            {2, {0.95, 0.85, 0.75, 0.65, 0.55, 0.45, 0.35,
                 0.25}}});
    const auto parsed = parseRbms(serializeRbms(original));
    ASSERT_NE(parsed, nullptr);
    EXPECT_EQ(parsed->numBits(), 5u);
    EXPECT_NE(dynamic_cast<const WindowedRbms*>(parsed.get()),
              nullptr);
    for (BasisState s = 0; s < 32; ++s)
        EXPECT_NEAR(parsed->strength(s), original.strength(s),
                    1e-12)
            << s;
    EXPECT_EQ(parsed->strongestState(),
              original.strongestState());
}

TEST(RbmsIo, RoundTripOfMeasuredProfile)
{
    // End-to-end: characterize, save, load, and the loaded profile
    // drives AIM identically.
    NoiseModel model(3);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>{0.02, 0.05, 0.01},
        std::vector<double>{0.2, 0.1, 0.3}));
    TrajectorySimulator backend(std::move(model), 91);
    const ExhaustiveRbms measured =
        characterizeDirect(backend, {0, 1, 2}, 8192);
    const auto loaded = parseRbms(serializeRbms(measured));
    EXPECT_EQ(loaded->strongestState(),
              measured.strongestState());
    EXPECT_NEAR(loaded->strength(5), measured.strength(5), 1e-12);
}

TEST(RbmsIo, ParserDiagnosesGarbage)
{
    EXPECT_THROW(parseRbms(""), std::invalid_argument);
    EXPECT_THROW(parseRbms("bogus exhaustive 2\n1 1 1 1"),
                 std::invalid_argument);
    EXPECT_THROW(parseRbms("rbms exotic 2\n1 1 1 1"),
                 std::invalid_argument);
    EXPECT_THROW(parseRbms("rbms exhaustive 2\n1 1 1"),
                 std::invalid_argument);
    EXPECT_THROW(parseRbms("rbms exhaustive 2\n1 -1 1 1"),
                 std::invalid_argument);
    EXPECT_THROW(parseRbms("rbms exhaustive 0\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        parseRbms("rbms windowed 5 1\nwidget 0 8\n1 1 1 1 1 1 1 1"),
        std::invalid_argument);
}

TEST(RbmsIo, ParserDiagnosesTruncatedInput)
{
    // Header with no table at all.
    EXPECT_THROW(parseRbms("rbms exhaustive 2\n"),
                 std::invalid_argument);
    // Header cut off before the bit count.
    EXPECT_THROW(parseRbms("rbms exhaustive"),
                 std::invalid_argument);
    // Dense tables above 24 bits would be multi-hundred-MB; the
    // parser refuses rather than allocating.
    EXPECT_THROW(parseRbms("rbms exhaustive 25\n1 1"),
                 std::invalid_argument);
    // Windowed: table shorter than its declared size.
    EXPECT_THROW(parseRbms("rbms windowed 5 1\nwindow 0 8\n"
                           "1 1 1 1"),
                 std::invalid_argument);
    // Windowed: second declared window missing entirely.
    EXPECT_THROW(parseRbms("rbms windowed 5 2\nwindow 0 8\n"
                           "1 1 1 1 1 1 1 1"),
                 std::invalid_argument);
    // Windowed: zero windows declared.
    EXPECT_THROW(parseRbms("rbms windowed 5 0\n"),
                 std::invalid_argument);
}

TEST(RbmsIo, ParserDiagnosesNonNumericStrengths)
{
    EXPECT_THROW(parseRbms("rbms exhaustive 2\n1 squid 1 1"),
                 std::invalid_argument);
    EXPECT_THROW(parseRbms("rbms windowed 5 1\nwindow zero 8\n"
                           "1 1 1 1 1 1 1 1"),
                 std::invalid_argument);
}

} // namespace
} // namespace qem
