/**
 * @file
 * Unit tests for the tensored matrix-inversion comparator.
 */

#include <gtest/gtest.h>

#include "kernels/basis.hh"
#include "metrics/reliability.hh"
#include "mitigation/matrix_correction.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

TEST(MatrixCorrection, InverseUndoesConfusionAnalytically)
{
    // Forward-confuse a point distribution by hand, then invert.
    const std::vector<double> p01{0.1, 0.0};
    const std::vector<double> p10{0.0, 0.2};
    // True state 01 (bit0=1... value 1): observed distribution:
    // bit0 true 1 flips 1->0 never (p10[0]=0)? p10[0]=0, p01[0]=0.1.
    // Take true state = 0b01: bit0=1 (no flip, p10[0]=0),
    // bit1=0 (no flip, p01[1]=0). Observation = truth.
    std::vector<double> obs(4, 0.0);
    obs[0b01] = 1.0;
    const auto corrected = invertTensoredConfusion(obs, p01, p10);
    EXPECT_NEAR(corrected[0b01], 1.0, 1e-9);

    // A mixed case: truth 0b10 confused by both rates.
    std::vector<double> obs2(4, 0.0);
    // bit0: true 0 -> reads 1 w.p. 0.1; bit1: true 1 -> reads 0
    // w.p. 0.2.
    obs2[0b10] = 0.9 * 0.8;
    obs2[0b11] = 0.1 * 0.8;
    obs2[0b00] = 0.9 * 0.2;
    obs2[0b01] = 0.1 * 0.2;
    const auto corrected2 = invertTensoredConfusion(obs2, p01, p10);
    EXPECT_NEAR(corrected2[0b10], 1.0, 1e-9);
    EXPECT_NEAR(corrected2[0b00], 0.0, 1e-9);
}

TEST(MatrixCorrection, ValidatesInputs)
{
    EXPECT_THROW(invertTensoredConfusion({1.0, 0.0}, {0.1},
                                         {0.1, 0.1}),
                 std::invalid_argument);
    EXPECT_THROW(invertTensoredConfusion({1.0, 0.0, 0.0}, {0.1},
                                         {0.1}),
                 std::invalid_argument);
    // Singular matrix: p01 + p10 = 1.
    EXPECT_THROW(invertTensoredConfusion({1.0, 0.0}, {0.5}, {0.5}),
                 std::invalid_argument);
    EXPECT_THROW(MatrixInversionCorrection(0),
                 std::invalid_argument);
}

TEST(MatrixCorrection, RecoversTruthUnderIndependentNoise)
{
    // Independent asymmetric readout is this technique's home
    // turf: the corrected PST should approach 1.
    NoiseModel model(3);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(3, 0.03),
        std::vector<double>(3, 0.20)));
    TrajectorySimulator backend(std::move(model), 81);

    const BasisState truth = allOnes(3);
    const Circuit c = basisStatePrep(3, truth);

    BaselinePolicy baseline;
    const double p_base =
        pst(baseline.run(c, backend, 30000), truth);
    MatrixInversionCorrection minv(30000);
    const double p_minv = pst(minv.run(c, backend, 30000), truth);
    EXPECT_LT(p_base, 0.6);
    EXPECT_GT(p_minv, 0.9);
}

TEST(MatrixCorrection, BlindToCorrelatedBias)
{
    // With strong pairwise crosstalk the tensored calibration
    // (performed one basis extreme at a time) misestimates the
    // confusion of crowded states, so residual error remains. This
    // is the paper's argument for mitigating in hardware.
    AsymmetricReadout base(std::vector<double>(3, 0.01),
                           std::vector<double>(3, 0.05));
    std::vector<std::vector<double>> j01(3,
                                         std::vector<double>(3, 0));
    std::vector<std::vector<double>> j10(
        3, std::vector<double>(3, 0.15));
    NoiseModel model(3);
    model.setReadout(std::make_shared<CorrelatedReadout>(
        std::move(base), j01, j10));
    TrajectorySimulator backend(std::move(model), 82);

    const BasisState truth = allOnes(3);
    const Circuit c = basisStatePrep(3, truth);
    MatrixInversionCorrection minv(30000);
    const double p_minv = pst(minv.run(c, backend, 30000), truth);
    // Calibration on the all-ones circuit *does* see the crowded
    // rates here, but mixed states are still mispredicted; at
    // minimum the correction must not reach the independent-noise
    // quality.
    EXPECT_LT(p_minv, 0.98);
}

TEST(MatrixCorrection, PreservesShotTotalApproximately)
{
    NoiseModel model(2);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::vector<double>(2, 0.02),
        std::vector<double>(2, 0.10)));
    TrajectorySimulator backend(std::move(model), 83);
    MatrixInversionCorrection minv(8000);
    const Counts out =
        minv.run(basisStatePrep(2, 0b11), backend, 10000);
    // Rounding may drop a few shots, not more.
    EXPECT_NEAR(static_cast<double>(out.total()), 10000.0, 5.0);
}

TEST(MatrixCorrection, RejectsUnmeasuredCircuit)
{
    TrajectorySimulator backend(NoiseModel(2), 84);
    MatrixInversionCorrection minv;
    Circuit c(2);
    EXPECT_THROW(minv.run(c, backend, 100), std::invalid_argument);
    EXPECT_EQ(minv.name(), "MatrixInv");
}

} // namespace
} // namespace qem
