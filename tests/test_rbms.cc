/**
 * @file
 * Unit tests for RBMS estimation: exhaustive tables, windowed
 * combination, and the three characterization techniques.
 */

#include <gtest/gtest.h>

#include "mitigation/rbms.hh"
#include "metrics/stats.hh"
#include "noise/trajectory.hh"
#include "qsim/bitstring.hh"

namespace qem
{
namespace
{

/** Readout-only backend over @p n qubits. */
TrajectorySimulator
readoutBackend(unsigned n, std::vector<double> p01,
               std::vector<double> p10, std::uint64_t seed)
{
    NoiseModel model(n);
    model.setReadout(std::make_shared<AsymmetricReadout>(
        std::move(p01), std::move(p10)));
    return TrajectorySimulator(std::move(model), seed);
}

TEST(ExhaustiveRbms, BasicsAndStrongest)
{
    ExhaustiveRbms rbms({0.5, 0.9, 0.3, 0.7});
    EXPECT_EQ(rbms.numBits(), 2u);
    EXPECT_NEAR(rbms.strength(1), 0.9, 1e-12);
    EXPECT_EQ(rbms.strongestState(), 1u);
    const auto curve = rbms.relativeCurve();
    EXPECT_NEAR(curve[1], 1.0, 1e-12);
    EXPECT_NEAR(curve[2], 0.3 / 0.9, 1e-12);
    EXPECT_THROW(rbms.strength(4), std::out_of_range);
    EXPECT_THROW(ExhaustiveRbms({0.1, 0.2, 0.3}),
                 std::invalid_argument);
    EXPECT_THROW(ExhaustiveRbms({0.1, -0.2}),
                 std::invalid_argument);
}

TEST(ExhaustiveRbms, ZeroStrengthIsFloored)
{
    ExhaustiveRbms rbms({0.0, 1.0});
    EXPECT_GT(rbms.strength(0), 0.0); // Guard for likelihood math.
}

TEST(CharacterizeDirect, RecoversAnalyticSuccessRates)
{
    const std::vector<double> p01{0.02, 0.05};
    const std::vector<double> p10{0.20, 0.10};
    auto backend = readoutBackend(2, p01, p10, 61);
    AsymmetricReadout analytic(p01, p10);
    const ExhaustiveRbms rbms =
        characterizeDirect(backend, {0, 1}, 20000);
    for (BasisState s = 0; s < 4; ++s) {
        EXPECT_NEAR(rbms.strength(s),
                    analytic.successProbability(s, 2), 0.02)
            << "state " << s;
    }
    EXPECT_EQ(rbms.strongestState(), 0u);
}

TEST(CharacterizeSuperposition, MatchesDirectWithinPaperTolerance)
{
    // Appendix A claims ESCT reproduces the RBMS within ~5% MSE.
    auto backend = readoutBackend(
        3, {0.01, 0.02, 0.01}, {0.25, 0.10, 0.18}, 62);
    const ExhaustiveRbms direct =
        characterizeDirect(backend, {0, 1, 2}, 20000);
    const ExhaustiveRbms esct =
        characterizeSuperposition(backend, {0, 1, 2}, 160000);
    const double mse = meanSquaredError(direct.relativeCurve(),
                                        esct.relativeCurve());
    // ESCT inflates strong states with leakage; the paper reports
    // agreement within ~5% MSE and so do we.
    EXPECT_LT(mse, 0.05);
    EXPECT_EQ(esct.strongestState(), direct.strongestState());
}

TEST(WindowedRbms, ValidatesWindowLayout)
{
    WindowedRbms::Window w0{0, std::vector<double>(8, 1.0)};
    WindowedRbms::Window w1{2, std::vector<double>(8, 1.0)};
    EXPECT_NO_THROW(WindowedRbms(5, {w0, w1}));
    // Gap between windows.
    WindowedRbms::Window gap{4, std::vector<double>(8, 1.0)};
    EXPECT_THROW(WindowedRbms(7, {w0, gap}),
                 std::invalid_argument);
    // Insufficient coverage.
    EXPECT_THROW(WindowedRbms(9, {w0, w1}),
                 std::invalid_argument);
    EXPECT_THROW(WindowedRbms(3, {}), std::invalid_argument);
    // Non-power-of-two table.
    WindowedRbms::Window bad{0, std::vector<double>(6, 1.0)};
    EXPECT_THROW(WindowedRbms(3, {bad}), std::invalid_argument);
}

TEST(WindowedRbms, ExactForIndependentNoise)
{
    // With independent per-qubit noise the windowed product is
    // exact: build windows from the analytic model and compare
    // full-state strengths.
    const std::vector<double> p01{0.01, 0.03, 0.02, 0.04, 0.01};
    const std::vector<double> p10{0.2, 0.1, 0.3, 0.15, 0.25};
    AsymmetricReadout analytic(p01, p10);

    auto window_table = [&](unsigned offset, unsigned m) {
        std::vector<double> table(std::size_t{1} << m);
        for (BasisState local = 0; local < table.size(); ++local) {
            double p = 1.0;
            for (unsigned b = 0; b < m; ++b) {
                const bool v = getBit(local, b);
                p *= 1.0 - analytic.flipProbability(
                               offset + b, v, local << offset);
            }
            table[local] = p;
        }
        return table;
    };

    WindowedRbms rbms(5, {{0, window_table(0, 3)},
                          {1, window_table(1, 3)},
                          {2, window_table(2, 3)}});
    // The windowed product equals the true success probability up
    // to one constant factor (which is irrelevant for a *relative*
    // strength), so the normalized curves match exactly.
    std::vector<double> truth(32);
    for (BasisState s = 0; s < 32; ++s)
        truth[s] = analytic.successProbability(s, 5);
    const auto want = normalizeToMax(truth);
    const auto got = rbms.relativeCurve();
    for (BasisState s = 0; s < 32; ++s)
        EXPECT_NEAR(got[s], want[s], 1e-9) << "state " << s;
    EXPECT_EQ(rbms.strongestState(), 0u);
}

TEST(WindowedRbms, StrongestStateChainsThroughOverlap)
{
    // Bit 0 prefers 1, bit 1 prefers 0, bit 2 prefers 1; windows of
    // 2 bits with 1-bit overlap must chain to 101.
    auto table = [](double s00, double s01, double s10, double s11) {
        return std::vector<double>{s00, s01, s10, s11};
    };
    WindowedRbms rbms(3, {{0, table(0.5, 0.9, 0.4, 0.7)},
                          {1, table(0.6, 0.4, 0.9, 0.5)}});
    EXPECT_EQ(rbms.strongestState(), fromBitString("101"));
}

TEST(CharacterizeWindowed, ApproximatesDirectOnUncorrelatedNoise)
{
    const std::vector<double> p01(5, 0.02);
    const std::vector<double> p10{0.25, 0.08, 0.2, 0.12, 0.3};
    auto backend = readoutBackend(5, p01, p10, 63);
    AsymmetricReadout analytic(p01, p10);
    const WindowedRbms awct =
        characterizeWindowed(backend, {0, 1, 2, 3, 4}, 4, 120000);
    // Two windows (offsets 0 and 1) on 5 bits.
    EXPECT_EQ(awct.windows().size(), 2u);
    const auto curve = awct.relativeCurve();
    std::vector<double> truth(32);
    for (BasisState s = 0; s < 32; ++s)
        truth[s] = analytic.successProbability(s, 5);
    // Window-level ESCT carries the same leakage bias as plain
    // ESCT; the paper's 5% MSE tolerance applies here too.
    EXPECT_LT(meanSquaredError(normalizeToMax(truth), curve), 0.05);
    EXPECT_EQ(awct.strongestState(), 0u);
}

TEST(CharacterizeWindowed, WindowCountMatchesPaperFor14Qubits)
{
    // The paper: m=4, overlap 2 -> 6 windows on 14 qubits.
    auto backend = readoutBackend(
        14, std::vector<double>(14, 0.0),
        std::vector<double>(14, 0.1), 64);
    std::vector<Qubit> all(14);
    for (unsigned i = 0; i < 14; ++i)
        all[i] = i;
    const WindowedRbms awct =
        characterizeWindowed(backend, all, 4, 2000);
    EXPECT_EQ(awct.windows().size(), 6u);
    EXPECT_EQ(awct.numBits(), 14u);
    // Strength queries over the full 14-bit space work.
    EXPECT_GT(awct.strength(0), awct.strength(allOnes(14)));
}

TEST(CharacterizeWindowed, OverlapParameterControlsWindowCount)
{
    auto backend = readoutBackend(
        8, std::vector<double>(8, 0.0),
        std::vector<double>(8, 0.1), 68);
    std::vector<Qubit> all(8);
    for (unsigned i = 0; i < 8; ++i)
        all[i] = i;
    // m=4: overlap 2 -> offsets 0,2,4 (3 windows); overlap 0 ->
    // offsets 0,4 (2 windows).
    EXPECT_EQ(characterizeWindowed(backend, all, 4, 2000, 2)
                  .windows()
                  .size(),
              3u);
    EXPECT_EQ(characterizeWindowed(backend, all, 4, 2000, 0)
                  .windows()
                  .size(),
              2u);
    EXPECT_THROW(characterizeWindowed(backend, all, 4, 2000, 4),
                 std::invalid_argument);
    // Disjoint windows are exact for independent noise too.
    const WindowedRbms disjoint =
        characterizeWindowed(backend, all, 4, 30000, 0);
    EXPECT_EQ(disjoint.strongestState(), 0u);
}

TEST(CharacterizeAuto, DispatchesOnRegisterWidth)
{
    auto backend = readoutBackend(
        8, std::vector<double>(8, 0.0),
        std::vector<double>(8, 0.1), 65);
    RbmsOptions options;
    options.shotsPerState = 200;
    options.shotsPerWindow = 500;
    const auto small =
        characterizeAuto(backend, {0, 1, 2}, options);
    EXPECT_NE(dynamic_cast<const ExhaustiveRbms*>(small.get()),
              nullptr);
    const auto large = characterizeAuto(
        backend, {0, 1, 2, 3, 4, 5, 6, 7}, options);
    EXPECT_NE(dynamic_cast<const WindowedRbms*>(large.get()),
              nullptr);
}

TEST(Characterize, ValidatesQubits)
{
    auto backend = readoutBackend(
        3, std::vector<double>(3, 0.0),
        std::vector<double>(3, 0.1), 66);
    EXPECT_THROW(characterizeDirect(backend, {}, 10),
                 std::invalid_argument);
    EXPECT_THROW(characterizeDirect(backend, {5}, 10),
                 std::invalid_argument);
    EXPECT_THROW(characterizeWindowed(backend, {0, 1, 2}, 2, 10),
                 std::invalid_argument);
}

} // namespace
} // namespace qem
