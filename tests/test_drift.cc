/**
 * @file
 * Unit tests for the calibration-drift model (and Rng::normal,
 * which it introduced).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "machine/drift.hh"
#include "machine/machines.hh"
#include "qsim/rng.hh"

namespace qem
{
namespace
{

TEST(RngNormal, MomentsAreRight)
{
    Rng rng(31);
    double sum = 0.0, sumsq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal(2.0, 3.0);
        sum += z;
        sumsq += z * z;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Drift, ZeroSigmaIsIdentity)
{
    const Machine nominal = makeIbmqx4();
    const Machine drifted = driftCalibration(nominal, 0.0, 42);
    for (Qubit q = 0; q < nominal.numQubits(); ++q) {
        EXPECT_EQ(drifted.calibration().qubit(q).readoutP10,
                  nominal.calibration().qubit(q).readoutP10);
        EXPECT_EQ(drifted.calibration().qubit(q).t1Ns,
                  nominal.calibration().qubit(q).t1Ns);
    }
}

TEST(Drift, DeterministicPerSeed)
{
    const Machine nominal = makeIbmqx2();
    const Machine a = driftCalibration(nominal, 0.2, 7);
    const Machine b = driftCalibration(nominal, 0.2, 7);
    const Machine c = driftCalibration(nominal, 0.2, 8);
    EXPECT_EQ(a.calibration().qubit(0).readoutP10,
              b.calibration().qubit(0).readoutP10);
    EXPECT_NE(a.calibration().qubit(0).readoutP10,
              c.calibration().qubit(0).readoutP10);
}

TEST(Drift, RatesStayPhysical)
{
    const Machine nominal = makeIbmqMelbourne();
    for (std::uint64_t day = 0; day < 10; ++day) {
        const Machine drifted =
            driftCalibration(nominal, 0.5, day);
        for (Qubit q = 0; q < drifted.numQubits(); ++q) {
            const QubitCalibration& qc =
                drifted.calibration().qubit(q);
            EXPECT_GE(qc.readoutP01, 0.0);
            EXPECT_LE(qc.readoutP01, 0.5);
            EXPECT_GE(qc.readoutP10, 0.0);
            EXPECT_LE(qc.readoutP10, 0.5);
            EXPECT_GT(qc.t1Ns, 0.0);
            EXPECT_LE(qc.t2Ns, 2.0 * qc.t1Ns + 1e-9);
        }
        // Drifted machines still build valid noise models.
        EXPECT_NO_THROW(drifted.noiseModel());
    }
}

TEST(Drift, SmallSigmaMeansSmallShift)
{
    const Machine nominal = makeIbmqx4();
    const Machine drifted = driftCalibration(nominal, 0.05, 3);
    for (Qubit q = 0; q < nominal.numQubits(); ++q) {
        const double before =
            nominal.calibration().qubit(q).readoutP10;
        const double after =
            drifted.calibration().qubit(q).readoutP10;
        EXPECT_NEAR(after / before, 1.0, 0.25) << "qubit " << q;
    }
    EXPECT_EQ(drifted.name(), "ibmqx4+drift");
}

TEST(Drift, RejectsNegativeSigma)
{
    EXPECT_THROW(driftCalibration(makeIbmqx2(), -0.1, 1),
                 std::invalid_argument);
}

TEST(DriftSchedule, DayZeroIsTheBaseInvariant)
{
    const Machine nominal = makeIbmqx4();
    const DriftSchedule schedule(nominal, 0.5);
    const Machine day0 = schedule.at(0);
    // The asserted invariant: day 0 is the machine exactly as
    // profiled, bit-for-bit, not a zero-sigma drift realization.
    EXPECT_EQ(day0.name(), nominal.name());
    for (Qubit q = 0; q < nominal.numQubits(); ++q) {
        const QubitCalibration& a = day0.calibration().qubit(q);
        const QubitCalibration& b =
            nominal.calibration().qubit(q);
        EXPECT_EQ(a.readoutP01, b.readoutP01) << "qubit " << q;
        EXPECT_EQ(a.readoutP10, b.readoutP10) << "qubit " << q;
        EXPECT_EQ(a.t1Ns, b.t1Ns) << "qubit " << q;
        EXPECT_EQ(a.t2Ns, b.t2Ns) << "qubit " << q;
    }
}

TEST(DriftSchedule, RejectsDaysPastTheHorizon)
{
    const Machine nominal = makeIbmqx2();
    const DriftSchedule schedule(nominal, 0.2, 10);
    EXPECT_EQ(schedule.horizonDays(), 10u);
    EXPECT_NO_THROW(schedule.at(10));
    EXPECT_THROW(schedule.at(11), std::out_of_range);
    // A negative day cast to the unsigned index wraps far past any
    // sane horizon and must be rejected, not extrapolated.
    EXPECT_THROW(schedule.at(static_cast<std::uint64_t>(-1)),
                 std::out_of_range);
    EXPECT_THROW(DriftSchedule(nominal, 0.2, 0),
                 std::invalid_argument);
    // The default horizon covers a year of daily realizations.
    EXPECT_EQ(DriftSchedule(nominal, 0.2).horizonDays(),
              DriftSchedule::kDefaultHorizonDays);
}

TEST(Drift, PreservesTopologyAndCrosstalkStructure)
{
    const Machine nominal = makeIbmqx4();
    const Machine drifted = driftCalibration(nominal, 0.3, 11);
    EXPECT_EQ(drifted.topology().edges(),
              nominal.topology().edges());
    EXPECT_TRUE(drifted.calibration().hasReadoutCrosstalk());
    // Zero crosstalk entries stay zero (multiplicative drift).
    const auto& j10n = nominal.calibration().crosstalkJ10();
    const auto& j10d = drifted.calibration().crosstalkJ10();
    for (std::size_t i = 0; i < j10n.size(); ++i) {
        for (std::size_t k = 0; k < j10n.size(); ++k) {
            if (j10n[i][k] == 0.0) {
                EXPECT_EQ(j10d[i][k], 0.0);
            }
        }
    }
}

} // namespace
} // namespace qem
