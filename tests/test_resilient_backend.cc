/**
 * @file
 * Unit tests for the resilience layer: the error taxonomy, the
 * deterministic backoff schedule, the retrying ResilientBackend
 * decorator, and the configurable fault injector it is exercised
 * with.
 */

#include <gtest/gtest.h>

#include <memory>

#include "qsim/simulator.hh"
#include "runtime/fault_injection.hh"
#include "runtime/resilient_backend.hh"

namespace qem
{
namespace
{

/** Injector over an ideal 3-qubit simulator (outcome always 0). */
FaultInjectingBackend
flaky(FaultOptions options)
{
    return FaultInjectingBackend(
        std::make_unique<IdealSimulator>(3, 42), options);
}

/** Measured 3-qubit circuit with no gates. */
Circuit
measuredCircuit()
{
    Circuit c(3);
    c.measureAll();
    return c;
}

/** Fast backoff so retry tests don't sleep noticeably. */
RetryOptions
fastRetry(unsigned max_retries)
{
    RetryOptions options;
    options.maxRetries = max_retries;
    options.backoff.baseSeconds = 1e-5;
    options.backoff.maxSeconds = 1e-4;
    return options;
}

TEST(ErrorTaxonomy, TypesNestUnderBackendError)
{
    // Policies written against std::runtime_error keep working.
    EXPECT_THROW(throw TransientError("t"), BackendError);
    EXPECT_THROW(throw FatalError("f"), BackendError);
    EXPECT_THROW(throw BudgetExhausted("b"), BackendError);
    EXPECT_THROW(throw TransientError("t"), std::runtime_error);

    const TransientError transient("t");
    const FatalError fatal("f");
    EXPECT_TRUE(isTransient(transient));
    EXPECT_FALSE(isTransient(fatal));
    EXPECT_FALSE(isTransient(std::runtime_error("r")));
}

TEST(BackoffPolicy, DelaysAreDeterministicInTheSeed)
{
    const BackoffPolicy policy{0.01, 1.0, 0.5};
    Rng a(7), b(7);
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
        EXPECT_DOUBLE_EQ(policy.delaySeconds(attempt, a),
                         policy.delaySeconds(attempt, b));
    }
}

TEST(BackoffPolicy, GrowsExponentiallyAndCaps)
{
    const BackoffPolicy policy{0.01, 0.05, 0.0}; // No jitter.
    Rng rng(1);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(0, rng), 0.01);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(1, rng), 0.02);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(2, rng), 0.04);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(3, rng), 0.05); // Capped.
    EXPECT_DOUBLE_EQ(policy.delaySeconds(63, rng), 0.05);
}

TEST(BackoffPolicy, JitterStaysWithinBounds)
{
    const BackoffPolicy policy{0.01, 1.0, 0.5};
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        const double d = policy.delaySeconds(0, rng);
        EXPECT_GE(d, 0.005);
        EXPECT_LT(d, 0.015);
    }
}

TEST(ResilientBackend, RetriesTransientFailuresToSuccess)
{
    // Calls 0 and 1 fail, call 2 succeeds.
    FaultOptions faults;
    faults.failAfter = 0;
    faults.failCount = 2;
    FaultInjectingBackend inner = flaky(faults);
    ResilientBackend backend(inner, 11, fastRetry(3));

    const Counts counts = backend.run(measuredCircuit(), 100);
    EXPECT_EQ(counts.total(), 100u);
    EXPECT_EQ(counts.get(0), 100u);
    EXPECT_EQ(inner.calls(), 3u);
    EXPECT_EQ(backend.lastOutcome().totalRetries, 2u);
    EXPECT_TRUE(backend.lastOutcome().complete());
    EXPECT_TRUE(backend.lastOutcome().degraded());
}

TEST(ResilientBackend, ExhaustedRetriesThrowBudgetExhausted)
{
    FaultOptions faults;
    faults.failAfter = 0; // Never heals.
    FaultInjectingBackend inner = flaky(faults);
    ResilientBackend backend(inner, 11, fastRetry(2));

    EXPECT_THROW(backend.run(measuredCircuit(), 100),
                 BudgetExhausted);
    EXPECT_EQ(inner.calls(), 3u); // 1 attempt + 2 retries.
}

TEST(ResilientBackend, FatalErrorsAreNeverRetried)
{
    FaultOptions faults;
    faults.failAfter = 0;
    faults.kind = FaultKind::Fatal;
    FaultInjectingBackend inner = flaky(faults);
    ResilientBackend backend(inner, 11, fastRetry(5));

    EXPECT_THROW(backend.run(measuredCircuit(), 100), FatalError);
    EXPECT_EQ(inner.calls(), 1u);
}

TEST(ResilientBackend, DeadlineCutsRetryingShort)
{
    FaultOptions faults;
    faults.failAfter = 0; // Never heals.
    FaultInjectingBackend inner = flaky(faults);
    RetryOptions options = fastRetry(1000000);
    options.backoff.baseSeconds = 0.02;
    options.backoff.maxSeconds = 0.02;
    options.deadlineSeconds = 0.05;
    ResilientBackend backend(inner, 11, options);

    EXPECT_THROW(backend.run(measuredCircuit(), 100),
                 BudgetExhausted);
    EXPECT_TRUE(backend.lastOutcome().deadlineExceeded);
    // Far fewer attempts than the retry budget allows.
    EXPECT_LT(inner.calls(), 100u);
}

TEST(ResilientBackend, CleanRunsPassThroughUntouched)
{
    IdealSimulator inner(3, 42);
    ResilientBackend backend(inner, 11);
    const Counts counts = backend.run(measuredCircuit(), 64);
    EXPECT_EQ(counts.total(), 64u);
    EXPECT_EQ(backend.lastOutcome().totalRetries, 0u);
    EXPECT_FALSE(backend.lastOutcome().degraded());
    EXPECT_EQ(backend.numQubits(), 3u);
}

TEST(FaultInjector, RateFaultsAreDeterministicPerCallIndex)
{
    FaultOptions faults;
    faults.failureRate = 0.5;
    faults.seed = 9;
    FaultInjectingBackend a = flaky(faults);
    FaultInjectingBackend b = flaky(faults);
    const Circuit c = measuredCircuit();
    // The same call sequence produces the same fault pattern.
    for (int i = 0; i < 32; ++i) {
        bool aThrew = false, bThrew = false;
        try {
            (void)a.run(c, 4);
        } catch (const TransientError&) {
            aThrew = true;
        }
        try {
            (void)b.run(c, 4);
        } catch (const TransientError&) {
            bThrew = true;
        }
        EXPECT_EQ(aThrew, bThrew) << "call " << i;
    }
    EXPECT_GT(a.failures(), 0u);
    EXPECT_LT(a.failures(), 32u);
    EXPECT_EQ(a.failures(), b.failures());
}

TEST(FaultInjector, RateFaultsDoNotPerturbTheShotStream)
{
    // An injector that never fires must replay the inner backend's
    // stream draw for draw: fault decisions are hash-keyed, not
    // drawn from the caller's Rng.
    FaultOptions faults;
    faults.failureRate = 0.0;
    FaultInjectingBackend wrapped = flaky(faults);
    IdealSimulator plain(3, 42);
    const Circuit c = measuredCircuit();
    Rng a(5), b(5);
    EXPECT_EQ(wrapped.run(c, 500, a).raw(),
              plain.run(c, 500, b).raw());
}

TEST(FaultInjector, ScheduleWindowHealsAfterCount)
{
    FaultOptions faults;
    faults.failAfter = 2;
    faults.failCount = 3;
    FaultInjectingBackend backend = flaky(faults);
    const Circuit c = measuredCircuit();
    for (int call = 0; call < 8; ++call) {
        const bool shouldFail = call >= 2 && call < 5;
        if (shouldFail)
            EXPECT_THROW((void)backend.run(c, 1), TransientError);
        else
            EXPECT_EQ(backend.run(c, 1).total(), 1u);
    }
    EXPECT_EQ(backend.failures(), 3u);
}

TEST(FaultInjector, CloneResetsCallCounters)
{
    FaultOptions faults;
    faults.failAfter = 0;
    faults.failCount = 1;
    FaultInjectingBackend backend = flaky(faults);
    const Circuit c = measuredCircuit();
    EXPECT_THROW((void)backend.run(c, 1), TransientError);
    EXPECT_EQ(backend.run(c, 1).total(), 1u);
    // The clone replays the schedule from call 0.
    std::unique_ptr<ShardedBackend> fresh = backend.clone();
    Rng rng(1);
    EXPECT_THROW((void)fresh->run(c, 1, rng), TransientError);
}

TEST(FaultInjector, ParsesFullSpec)
{
    const FaultOptions options = FaultOptions::parse(
        "rate=0.25,kind=fatal,after=3,count=2,seed=99");
    EXPECT_DOUBLE_EQ(options.failureRate, 0.25);
    EXPECT_EQ(options.kind, FaultKind::Fatal);
    EXPECT_EQ(options.failAfter, 3);
    EXPECT_EQ(options.failCount, 2u);
    EXPECT_EQ(options.seed, 99u);
}

TEST(FaultInjector, ParseDefaultsAndErrors)
{
    const FaultOptions rate = FaultOptions::parse("rate=0.1");
    EXPECT_DOUBLE_EQ(rate.failureRate, 0.1);
    EXPECT_EQ(rate.kind, FaultKind::Transient);
    EXPECT_EQ(rate.failAfter, -1);

    EXPECT_THROW(FaultOptions::parse("rate"),
                 std::invalid_argument);
    EXPECT_THROW(FaultOptions::parse("rate=2.0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultOptions::parse("kind=sometimes"),
                 std::invalid_argument);
    EXPECT_THROW(FaultOptions::parse("bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultOptions::parse("after=3x"),
                 std::invalid_argument);
}

} // namespace
} // namespace qem
