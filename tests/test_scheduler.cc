/**
 * @file
 * Unit tests for the ASAP scheduler.
 */

#include <gtest/gtest.h>

#include "machine/machines.hh"
#include "transpile/scheduler.hh"

namespace qem
{
namespace
{

/** Machine with uniform, easy-to-reason-about durations. */
Machine
uniformMachine()
{
    Topology topo(3, {{0, 1}, {1, 2}});
    Calibration calib(3);
    for (Qubit q = 0; q < 3; ++q) {
        calib.qubit(q).gate1qDurationNs = 100.0;
        calib.qubit(q).readoutP01 = 0.0;
        calib.qubit(q).readoutP10 = 0.0;
    }
    calib.setLink(0, 1, {0.0, 300.0});
    calib.setLink(1, 2, {0.0, 300.0});
    calib.setMeasureDuration(1000.0);
    return Machine("uniform", std::move(topo), std::move(calib));
}

TEST(Scheduler, OpDurations)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Operation h{GateKind::H, {0}, {}};
    EXPECT_EQ(sched.opDurationNs(h), 100.0);
    Operation cx{GateKind::CX, {0, 1}, {}};
    EXPECT_EQ(sched.opDurationNs(cx), 300.0);
    Operation meas{GateKind::MEASURE, {0}, {}};
    EXPECT_EQ(sched.opDurationNs(meas), 1000.0);
    Operation delay{GateKind::DELAY, {0}, {250.0}};
    EXPECT_EQ(sched.opDurationNs(delay), 250.0);
    Operation barrier{GateKind::BARRIER, {}, {}};
    EXPECT_EQ(sched.opDurationNs(barrier), 0.0);
}

TEST(Scheduler, SerialGatesAccumulateDuration)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Circuit c(3);
    c.h(0).h(0).cx(0, 1);
    const ScheduledCircuit out = sched.schedule(c);
    EXPECT_EQ(out.durationNs, 500.0); // 100 + 100 + 300.
    // One delay: qubit 1 idles 200ns before the CX.
    EXPECT_EQ(out.circuit.countOps(GateKind::DELAY), 1u);
}

TEST(Scheduler, IdleQubitGetsDelayBeforeTwoQubitGate)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Circuit c(3);
    c.h(0).h(0).cx(0, 1); // Qubit 1 idles 200ns.
    Circuit with_gate_on_1(3);
    with_gate_on_1.h(0).h(0).h(1).cx(0, 1); // Qubit 1 idles 100ns.
    const ScheduledCircuit a = sched.schedule(c);
    const ScheduledCircuit b = sched.schedule(with_gate_on_1);
    double delay_a = 0.0, delay_b = 0.0;
    for (const Operation& op : a.circuit.ops()) {
        if (op.kind == GateKind::DELAY)
            delay_a += op.params[0];
    }
    for (const Operation& op : b.circuit.ops()) {
        if (op.kind == GateKind::DELAY)
            delay_b += op.params[0];
    }
    EXPECT_EQ(delay_a, 200.0);
    EXPECT_EQ(delay_b, 100.0);
}

TEST(Scheduler, MeasurementsAlignToCommonReadout)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Circuit c(3);
    // Qubit 0 finishes at 200ns, qubit 2 at 100ns, qubit 1 at 0.
    c.h(0).h(0).h(2).measure(0, 0).measure(1, 1).measure(2, 2);
    const ScheduledCircuit out = sched.schedule(c);
    EXPECT_EQ(out.durationNs, 200.0);
    // Delays of 200 (q1) and 100 (q2) pad up to the readout start.
    double q1_delay = 0.0, q2_delay = 0.0;
    for (const Operation& op : out.circuit.ops()) {
        if (op.kind == GateKind::DELAY) {
            if (op.qubits[0] == 1)
                q1_delay += op.params[0];
            if (op.qubits[0] == 2)
                q2_delay += op.params[0];
        }
    }
    EXPECT_EQ(q1_delay, 200.0);
    EXPECT_EQ(q2_delay, 100.0);
    // Measures all appear after the gates.
    bool measures_started = false;
    for (const Operation& op : out.circuit.ops()) {
        if (op.kind == GateKind::MEASURE)
            measures_started = true;
        else if (measures_started && op.kind != GateKind::MEASURE)
            FAIL() << "non-measure op after readout started";
    }
}

TEST(Scheduler, BarrierSynchronizesQubits)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Circuit c(3);
    c.h(0).h(0).barrier().h(1);
    const ScheduledCircuit out = sched.schedule(c);
    // Qubit 1's H starts at 200ns: total 300.
    EXPECT_EQ(out.durationNs, 300.0);
}

TEST(Scheduler, PreservesGateCountAndSemantics)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    const ScheduledCircuit out = sched.schedule(c);
    EXPECT_EQ(out.circuit.countOps(GateKind::CX), 2u);
    EXPECT_EQ(out.circuit.countOps(GateKind::MEASURE), 3u);
    EXPECT_EQ(out.circuit.countOps(GateKind::H), 1u);
}

TEST(Scheduler, RejectsOverwideCircuit)
{
    const Machine m = uniformMachine();
    Scheduler sched(m);
    Circuit wide(4);
    EXPECT_THROW(sched.schedule(wide), std::invalid_argument);
}

} // namespace
} // namespace qem
