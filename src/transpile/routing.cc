#include "transpile/routing.hh"

#include <algorithm>
#include <stdexcept>

namespace qem
{

Router::Router(const Topology& topology)
    : topology_(topology)
{
}

RoutedCircuit
Router::route(const Circuit& circuit,
              const Layout& initial_layout) const
{
    const unsigned np = topology_.numQubits();
    validateLayout(initial_layout, circuit.numQubits(), np);

    RoutedCircuit out;
    out.circuit = Circuit(np, static_cast<int>(circuit.numClbits()));
    Layout where = initial_layout; // logical -> current physical

    auto emitSwap = [&](Qubit a, Qubit b) {
        // Hardware realizes SWAP as 3 CX; emit the decomposition so
        // the noise model charges the true cost.
        out.circuit.cx(a, b).cx(b, a).cx(a, b);
        ++out.swapCount;
        // Update the inverse tracking: any logical qubit living on a
        // or b moves to the other side.
        for (Qubit& phys : where) {
            if (phys == a)
                phys = b;
            else if (phys == b)
                phys = a;
        }
    };

    for (const Operation& op : circuit.ops()) {
        if (op.kind == GateKind::BARRIER) {
            out.circuit.barrier();
            continue;
        }
        if (op.qubits.size() == 2 && isUnitary(op.kind)) {
            Qubit pa = where[op.qubits[0]];
            Qubit pb = where[op.qubits[1]];
            if (!topology_.coupled(pa, pb)) {
                // Walk operand A along a shortest path until the
                // pair is adjacent.
                const std::vector<Qubit> path =
                    topology_.shortestPath(pa, pb);
                for (std::size_t i = 0; i + 2 < path.size(); ++i)
                    emitSwap(path[i], path[i + 1]);
                pa = where[op.qubits[0]];
                pb = where[op.qubits[1]];
                if (!topology_.coupled(pa, pb))
                    throw std::logic_error("Router: SWAP chain failed "
                                           "to make operands "
                                           "adjacent");
            }
            Operation phys = op;
            phys.qubits = {pa, pb};
            out.circuit.append(std::move(phys));
            continue;
        }
        if (op.qubits.size() == 3 && isUnitary(op.kind)) {
            throw std::invalid_argument("Router: decompose 3-qubit "
                                        "gates before routing");
        }
        Operation phys = op;
        for (Qubit& q : phys.qubits)
            q = where[q];
        out.circuit.append(std::move(phys));
    }

    out.finalLayout = where;
    return out;
}

} // namespace qem
