#include "transpile/transpiler.hh"

namespace qem
{

Transpiler::Transpiler(const Machine& machine,
                       std::shared_ptr<const Allocator> allocator,
                       TranspilerOptions options)
    : machine_(machine), allocator_(std::move(allocator)),
      options_(options)
{
    if (!allocator_)
        allocator_ = std::make_shared<VariabilityAwareAllocator>();
}

TranspiledProgram
Transpiler::transpile(const Circuit& logical) const
{
    const Circuit lowered = decomposeMultiQubitGates(logical);
    const Circuit optimized = options_.optimizeLogical
                                  ? optimizeCircuit(lowered)
                                  : lowered;
    TranspiledProgram out;
    out.initialLayout = allocator_->allocate(optimized, machine_);

    Router router(machine_.topology());
    RoutedCircuit routed =
        router.route(optimized, out.initialLayout);
    out.finalLayout = std::move(routed.finalLayout);
    out.swapCount = routed.swapCount;

    Scheduler scheduler(machine_);
    ScheduledCircuit scheduled = scheduler.schedule(routed.circuit);
    out.circuit = std::move(scheduled.circuit);
    out.durationNs = scheduled.durationNs;
    return out;
}

} // namespace qem
