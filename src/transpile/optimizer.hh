/**
 * @file
 * Peephole circuit optimizer: inverse-pair cancellation and
 * rotation merging.
 *
 * NISQ compilers run passes like these because every removed gate
 * is removed error exposure (the related-work section's "eliminate
 * redundant gates" line of compilers). Two rewrites are provided:
 *
 *  - cancelInversePairs: X·X, Y·Y, Z·Z, H·H, CX·CX, CZ·CZ,
 *    SWAP·SWAP (same operands), and S·SDG / T·TDG pairs are removed
 *    when no intervening operation touches the shared qubits.
 *  - mergeRotations: adjacent RX/RY/RZ/P on one qubit sum their
 *    angles; full-turn results are dropped (global phase is
 *    irrelevant to every consumer in this project).
 *
 * optimizeCircuit() runs both to a fixed point. The transpiler
 * applies it to the *logical* circuit before routing; inversion
 * strings are appended after transpilation, so mitigation X gates
 * are never "optimized away".
 */

#ifndef QEM_TRANSPILE_OPTIMIZER_HH
#define QEM_TRANSPILE_OPTIMIZER_HH

#include "qsim/circuit.hh"

namespace qem
{

/**
 * Lower multi-qubit gates the router cannot place: CCX becomes the
 * standard 6-CX H/T decomposition. One- and two-qubit operations
 * pass through untouched.
 */
Circuit decomposeMultiQubitGates(const Circuit& circuit);

/** One pass of adjacent inverse-pair cancellation. */
Circuit cancelInversePairs(const Circuit& circuit);

/** One pass of rotation merging (and zero-rotation elision). */
Circuit mergeRotations(const Circuit& circuit);

/** Both rewrites, iterated to a fixed point. */
Circuit optimizeCircuit(const Circuit& circuit);

} // namespace qem

#endif // QEM_TRANSPILE_OPTIMIZER_HH
