/**
 * @file
 * SWAP-insertion router.
 *
 * Rewrites a physically-mapped circuit so every two-qubit gate acts
 * across a coupled pair, inserting SWAP chains along shortest paths
 * when operands are distant. The logical->physical correspondence
 * changes as SWAPs execute; the router tracks it so measurements read
 * the current home of each logical qubit.
 */

#ifndef QEM_TRANSPILE_ROUTING_HH
#define QEM_TRANSPILE_ROUTING_HH

#include "machine/topology.hh"
#include "qsim/circuit.hh"
#include "transpile/allocation.hh"

namespace qem
{

/** Result of routing: the rewritten circuit plus mapping metadata. */
struct RoutedCircuit
{
    /** Circuit over the machine's physical register. */
    Circuit circuit;
    /** Final home of each logical qubit after all SWAPs. */
    Layout finalLayout;
    /** Number of SWAP gates inserted. */
    std::size_t swapCount = 0;

    RoutedCircuit() : circuit(1) {}
};

class Router
{
  public:
    explicit Router(const Topology& topology);

    /**
     * Route @p circuit (a *logical* circuit) onto the topology using
     * @p initial_layout as the starting placement. Gate operands and
     * measurements are rewritten to physical indices; SWAPs are
     * decomposed into 3 CX when emitted so downstream noise treats
     * them like hardware would.
     */
    RoutedCircuit route(const Circuit& circuit,
                        const Layout& initial_layout) const;

  private:
    const Topology& topology_;
};

} // namespace qem

#endif // QEM_TRANSPILE_ROUTING_HH
