/**
 * @file
 * End-to-end transpilation pipeline: allocate -> route -> schedule.
 *
 * Turns a logical kernel circuit into a machine-executable physical
 * circuit. The paper runs every experiment with "the most optimal
 * qubit allocation" and identical programs for baseline and
 * mitigated runs (Section 4.3); Transpiler is how both get the same
 * physical program here, with mitigation policies appending their
 * inversion X gates *after* transpilation so the core program is
 * untouched.
 */

#ifndef QEM_TRANSPILE_TRANSPILER_HH
#define QEM_TRANSPILE_TRANSPILER_HH

#include <memory>

#include "transpile/allocation.hh"
#include "transpile/optimizer.hh"
#include "transpile/routing.hh"
#include "transpile/scheduler.hh"

namespace qem
{

/** Pipeline knobs. */
struct TranspilerOptions
{
    /**
     * Run the peephole optimizer on the logical circuit before
     * allocation. (Inversion strings are applied after
     * transpilation, so mitigation gates are never affected.)
     */
    bool optimizeLogical = true;
};

/** A fully transpiled program ready for a backend. */
struct TranspiledProgram
{
    /** Physical, routed, scheduled circuit. */
    Circuit circuit;
    /** Initial layout chosen by allocation. */
    Layout initialLayout;
    /** Home of each logical qubit at measurement time. */
    Layout finalLayout;
    std::size_t swapCount = 0;
    double durationNs = 0.0;

    TranspiledProgram() : circuit(1) {}
};

class Transpiler
{
  public:
    /**
     * @param machine Target machine (must outlive the transpiler).
     * @param allocator Allocation policy; defaults to the paper's
     *        variability-aware allocation.
     */
    explicit Transpiler(const Machine& machine,
                        std::shared_ptr<const Allocator> allocator =
                            nullptr,
                        TranspilerOptions options = {});

    /** Transpile a logical circuit. */
    TranspiledProgram transpile(const Circuit& logical) const;

    const Machine& machine() const { return machine_; }

  private:
    const Machine& machine_;
    std::shared_ptr<const Allocator> allocator_;
    TranspilerOptions options_;
};

} // namespace qem

#endif // QEM_TRANSPILE_TRANSPILER_HH
