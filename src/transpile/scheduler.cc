#include "transpile/scheduler.hh"

#include <algorithm>
#include <stdexcept>

namespace qem
{

Scheduler::Scheduler(const Machine& machine)
    : machine_(machine)
{
}

double
Scheduler::opDurationNs(const Operation& op) const
{
    const Calibration& calib = machine_.calibration();
    switch (op.kind) {
      case GateKind::BARRIER:
        return 0.0;
      case GateKind::DELAY:
        return op.params[0];
      case GateKind::MEASURE:
        return calib.measureDurationNs();
      case GateKind::RESET:
        return calib.measureDurationNs();
      default:
        break;
    }
    if (op.qubits.size() == 1)
        return calib.qubit(op.qubits[0]).gate1qDurationNs;
    if (op.qubits.size() == 2 &&
        calib.hasLink(op.qubits[0], op.qubits[1])) {
        return calib.link(op.qubits[0], op.qubits[1]).cxDurationNs;
    }
    // Uncalibrated multi-qubit gate: charge the worst calibrated
    // link duration as a conservative default.
    double worst = 0.0;
    for (const auto& [a, b] : machine_.topology().edges())
        worst = std::max(worst, calib.link(a, b).cxDurationNs);
    return worst;
}

ScheduledCircuit
Scheduler::schedule(const Circuit& circuit) const
{
    if (circuit.numQubits() > machine_.numQubits())
        throw std::invalid_argument("Scheduler: circuit wider than "
                                    "machine");

    ScheduledCircuit out;
    out.circuit = Circuit(circuit.numQubits(),
                          static_cast<int>(circuit.numClbits()));
    std::vector<double> ready(circuit.numQubits(), 0.0);

    // First pass: gates. Measurements are collected and aligned at
    // the end (simultaneous readout cycle).
    std::vector<Operation> measures;
    for (const Operation& op : circuit.ops()) {
        if (op.kind == GateKind::MEASURE) {
            measures.push_back(op);
            continue;
        }
        if (op.kind == GateKind::BARRIER) {
            // Synchronize all qubits.
            const double t =
                *std::max_element(ready.begin(), ready.end());
            for (Qubit q = 0; q < circuit.numQubits(); ++q) {
                if (t > ready[q]) {
                    out.circuit.delay(t - ready[q], q);
                    ready[q] = t;
                }
            }
            out.circuit.barrier();
            continue;
        }
        double start = 0.0;
        for (Qubit q : op.qubits)
            start = std::max(start, ready[q]);
        for (Qubit q : op.qubits) {
            if (start > ready[q])
                out.circuit.delay(start - ready[q], q);
        }
        const double dur = opDurationNs(op);
        for (Qubit q : op.qubits)
            ready[q] = start + dur;
        out.circuit.append(op);
    }

    // Second pass: align measured qubits to a common readout start.
    // All padding delays are emitted before any MEASURE so the
    // readout cycle forms one contiguous block.
    double readout_start = 0.0;
    for (const Operation& m : measures)
        readout_start = std::max(readout_start, ready[m.qubits[0]]);
    for (const Operation& m : measures) {
        const Qubit q = m.qubits[0];
        if (readout_start > ready[q]) {
            out.circuit.delay(readout_start - ready[q], q);
            ready[q] = readout_start;
        }
    }
    for (const Operation& m : measures)
        out.circuit.append(m);

    out.durationNs = readout_start;
    for (double t : ready)
        out.durationNs = std::max(out.durationNs, t);
    return out;
}

} // namespace qem
