/**
 * @file
 * Qubit allocation: mapping logical program qubits onto physical
 * machine qubits.
 *
 * The paper's baseline is "the most optimal qubit allocation ...
 * cognizant of underlying noise and variation in the error rate such
 * that benchmarks are mapped on strongest qubits and links with
 * minimum number of SWAPs" (Section 4.3). VariabilityAwareAllocator
 * implements that policy; TrivialAllocator (identity mapping) exists
 * as the naive comparison point and for tests.
 */

#ifndef QEM_TRANSPILE_ALLOCATION_HH
#define QEM_TRANSPILE_ALLOCATION_HH

#include <vector>

#include "machine/machine.hh"
#include "qsim/circuit.hh"

namespace qem
{

/** layout[logical] = physical. */
using Layout = std::vector<Qubit>;

class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Choose a layout for @p circuit on @p machine.
     *
     * @return layout of size circuit.numQubits() with distinct
     *         physical entries.
     */
    virtual Layout allocate(const Circuit& circuit,
                            const Machine& machine) const = 0;
};

/** Identity mapping: logical i -> physical i. */
class TrivialAllocator : public Allocator
{
  public:
    Layout allocate(const Circuit& circuit,
                    const Machine& machine) const override;
};

/**
 * Greedy variability-aware allocation.
 *
 * Builds the logical interaction graph (weighted by the number of
 * two-qubit gates per pair), scores physical qubits by readout and
 * gate fidelity, then grows the placement from the most-interacting
 * logical qubit outward: each step places the unplaced logical qubit
 * with the strongest interaction to the placed set on the free
 * physical qubit minimizing a weighted cost of link error and hop
 * distance (distance proxies the SWAPs routing will need).
 */
class VariabilityAwareAllocator : public Allocator
{
  public:
    /**
     * @param distance_weight Relative cost of one hop of separation
     *        versus link error; higher values prioritize SWAP
     *        avoidance.
     */
    explicit VariabilityAwareAllocator(double distance_weight = 0.05);

    Layout allocate(const Circuit& circuit,
                    const Machine& machine) const override;

  private:
    double distanceWeight_;
};

/**
 * Variability-aware allocation against a *jittered* view of the
 * calibration: every error rate is perturbed by a seeded lognormal
 * factor before the greedy placement runs, so different seeds yield
 * different-but-still-sensible layouts. This is the mapping
 * diversity the authors' concurrent MICRO-52 work (EDM, "Ensemble
 * of Diverse Mappings") spreads trials across to decorrelate
 * mapping-specific mistakes.
 */
class JitteredAllocator : public Allocator
{
  public:
    /**
     * @param seed Jitter realization; equal seeds give equal
     *        layouts.
     * @param sigma Lognormal sigma of the rate perturbation; 0
     *        reduces to plain variability-aware allocation.
     */
    explicit JitteredAllocator(std::uint64_t seed,
                               double sigma = 0.3);

    Layout allocate(const Circuit& circuit,
                    const Machine& machine) const override;

  private:
    std::uint64_t seed_;
    double sigma_;
};

/** Validate that a layout is injective and within machine range. */
void validateLayout(const Layout& layout, unsigned num_logical,
                    unsigned num_physical);

} // namespace qem

#endif // QEM_TRANSPILE_ALLOCATION_HH
