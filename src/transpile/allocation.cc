#include "transpile/allocation.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "machine/drift.hh"

namespace qem
{

JitteredAllocator::JitteredAllocator(std::uint64_t seed,
                                     double sigma)
    : seed_(seed), sigma_(sigma)
{
    if (sigma < 0.0)
        throw std::invalid_argument("JitteredAllocator: negative "
                                    "sigma");
}

Layout
JitteredAllocator::allocate(const Circuit& circuit,
                            const Machine& machine) const
{
    // Allocate against a drifted copy of the calibration: the
    // topology is identical, so the layout is valid for the real
    // machine, but the quality ordering the greedy sees differs
    // per seed.
    const Machine jittered =
        driftCalibration(machine, sigma_, seed_);
    return VariabilityAwareAllocator().allocate(circuit, jittered);
}

void
validateLayout(const Layout& layout, unsigned num_logical,
               unsigned num_physical)
{
    if (layout.size() != num_logical)
        throw std::logic_error("layout size does not match the "
                               "logical register");
    std::vector<bool> used(num_physical, false);
    for (Qubit phys : layout) {
        if (phys >= num_physical)
            throw std::logic_error("layout entry out of machine "
                                   "range");
        if (used[phys])
            throw std::logic_error("layout maps two logical qubits "
                                   "to one physical qubit");
        used[phys] = true;
    }
}

Layout
TrivialAllocator::allocate(const Circuit& circuit,
                           const Machine& machine) const
{
    if (circuit.numQubits() > machine.numQubits())
        throw std::invalid_argument("TrivialAllocator: circuit wider "
                                    "than machine");
    Layout layout(circuit.numQubits());
    for (Qubit q = 0; q < circuit.numQubits(); ++q)
        layout[q] = q;
    return layout;
}

VariabilityAwareAllocator::VariabilityAwareAllocator(
    double distance_weight)
    : distanceWeight_(distance_weight)
{
}

Layout
VariabilityAwareAllocator::allocate(const Circuit& circuit,
                                    const Machine& machine) const
{
    const unsigned nl = circuit.numQubits();
    const unsigned np = machine.numQubits();
    if (nl > np)
        throw std::invalid_argument("VariabilityAwareAllocator: "
                                    "circuit wider than machine");
    const Topology& topo = machine.topology();
    const Calibration& calib = machine.calibration();

    // Logical interaction weights: number of 2q gates per pair.
    std::vector<std::vector<double>> interact(
        nl, std::vector<double>(nl, 0.0));
    std::vector<double> activity(nl, 0.0);
    for (const Operation& op : circuit.ops()) {
        if (isUnitary(op.kind) && op.qubits.size() == 2) {
            const Qubit a = op.qubits[0];
            const Qubit b = op.qubits[1];
            interact[a][b] += 1.0;
            interact[b][a] += 1.0;
            activity[a] += 1.0;
            activity[b] += 1.0;
        }
    }
    for (const Operation& op : circuit.ops()) {
        // Light weighting of 1q gates and readout keeps isolated
        // qubits placed sensibly too.
        if (op.qubits.size() == 1)
            activity[op.qubits[0]] += 0.1;
    }

    // Physical qubit quality: readout and 1q-gate fidelity, plus the
    // quality of the best incident links.
    auto qubitQuality = [&](Qubit p) {
        const QubitCalibration& qc = calib.qubit(p);
        double best_link = 1.0;
        for (Qubit nb : topo.neighbors(p)) {
            if (calib.hasLink(p, nb))
                best_link = std::min(best_link,
                                     calib.link(p, nb).cxError);
        }
        return (1.0 - calib.readoutAssignmentError(p)) *
               (1.0 - qc.gate1qError) * (1.0 - best_link);
    };

    std::vector<bool> placed_logical(nl, false);
    std::vector<bool> used_physical(np, false);
    Layout layout(nl, 0);

    // Seed: the busiest logical qubit on the highest-quality
    // physical qubit (ties by index for determinism).
    Qubit seed_logical = 0;
    for (Qubit q = 1; q < nl; ++q) {
        if (activity[q] > activity[seed_logical])
            seed_logical = q;
    }
    // Seed site: high quality, with a connectivity bonus so hub
    // programs (e.g. BV's star interaction graph) land on
    // high-degree qubits and avoid routing SWAPs.
    auto seedScore = [&](Qubit p) {
        return qubitQuality(p) * (1.0 + 0.05 * topo.degree(p));
    };
    Qubit seed_physical = 0;
    for (Qubit p = 1; p < np; ++p) {
        if (seedScore(p) > seedScore(seed_physical))
            seed_physical = p;
    }
    layout[seed_logical] = seed_physical;
    placed_logical[seed_logical] = true;
    used_physical[seed_physical] = true;

    for (unsigned step = 1; step < nl; ++step) {
        // Next logical qubit: strongest total interaction with the
        // placed set; fall back to activity.
        Qubit next = nl;
        double best_conn = -1.0;
        for (Qubit q = 0; q < nl; ++q) {
            if (placed_logical[q])
                continue;
            double conn = 0.0;
            for (Qubit other = 0; other < nl; ++other) {
                if (placed_logical[other])
                    conn += interact[q][other];
            }
            conn += 1e-3 * activity[q];
            if (conn > best_conn) {
                best_conn = conn;
                next = q;
            }
        }

        // Best free physical site: minimize interaction-weighted
        // distance + link error to already-placed partners, and
        // prefer high-quality qubits.
        Qubit best_site = np;
        double best_cost = std::numeric_limits<double>::max();
        for (Qubit p = 0; p < np; ++p) {
            if (used_physical[p])
                continue;
            double cost = 1.0 - qubitQuality(p);
            for (Qubit other = 0; other < nl; ++other) {
                if (!placed_logical[other] ||
                    interact[next][other] == 0.0) {
                    continue;
                }
                const Qubit op_phys = layout[other];
                const unsigned d = topo.distance(p, op_phys);
                double link_err = 0.0;
                if (d == 1 && calib.hasLink(p, op_phys))
                    link_err = calib.link(p, op_phys).cxError;
                cost += interact[next][other] *
                        (link_err +
                         distanceWeight_ * (d > 0 ? d - 1 : 0));
            }
            if (cost < best_cost) {
                best_cost = cost;
                best_site = p;
            }
        }

        layout[next] = best_site;
        placed_logical[next] = true;
        used_physical[best_site] = true;
    }

    validateLayout(layout, nl, np);
    return layout;
}

} // namespace qem
