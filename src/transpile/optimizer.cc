#include "transpile/optimizer.hh"

#include <cmath>
#include <optional>

namespace qem
{

namespace
{

/** True when two adjacent operations annihilate. */
bool
isInversePair(const Operation& a, const Operation& b)
{
    auto self_inverse = [](GateKind kind) {
        switch (kind) {
          case GateKind::X:
          case GateKind::Y:
          case GateKind::Z:
          case GateKind::H:
          case GateKind::CX:
          case GateKind::CZ:
          case GateKind::SWAP:
            return true;
          default:
            return false;
        }
    };
    auto orderless = [](GateKind kind) {
        return kind == GateKind::CZ || kind == GateKind::SWAP;
    };
    auto same_operands = [&](const Operation& x,
                             const Operation& y) {
        if (x.qubits == y.qubits)
            return true;
        if (orderless(x.kind) && x.qubits.size() == 2 &&
            x.qubits[0] == y.qubits[1] &&
            x.qubits[1] == y.qubits[0]) {
            return true;
        }
        return false;
    };

    if (self_inverse(a.kind) && a.kind == b.kind)
        return same_operands(a, b);
    // Fixed-phase inverse pairs, either order.
    const GateKind ka = a.kind, kb = b.kind;
    const bool s_pair = (ka == GateKind::S && kb == GateKind::SDG) ||
                        (ka == GateKind::SDG && kb == GateKind::S);
    const bool t_pair = (ka == GateKind::T && kb == GateKind::TDG) ||
                        (ka == GateKind::TDG && kb == GateKind::T);
    if (s_pair || t_pair)
        return a.qubits == b.qubits;
    return false;
}

/** Index of the first op after @p from touching any of its
 *  qubits; nullopt if none. Barriers block everything. */
std::optional<std::size_t>
nextOpTouching(const std::vector<Operation>& ops, std::size_t from)
{
    const Operation& ref = ops[from];
    for (std::size_t j = from + 1; j < ops.size(); ++j) {
        if (ops[j].kind == GateKind::BARRIER)
            return j;
        for (Qubit q : ref.qubits) {
            if (ops[j].touches(q))
                return j;
        }
    }
    return std::nullopt;
}

bool
isMergeableRotation(GateKind kind)
{
    switch (kind) {
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::P:
        return true;
      default:
        return false;
    }
}

/** True if the rotation angle is a full turn (identity up to
 *  global phase, which nothing in this project observes). */
bool
isFullTurn(double angle)
{
    const double two_pi = 2.0 * M_PI;
    const double r = std::remainder(angle, two_pi);
    return std::abs(r) < 1e-12;
}

} // namespace

Circuit
decomposeMultiQubitGates(const Circuit& circuit)
{
    Circuit out(circuit.numQubits(),
                static_cast<int>(circuit.numClbits()));
    for (const Operation& op : circuit.ops()) {
        if (op.kind != GateKind::CCX) {
            out.append(op);
            continue;
        }
        // Standard Toffoli decomposition (matches the state-vector
        // fast path).
        const Qubit a = op.qubits[0];
        const Qubit b = op.qubits[1];
        const Qubit c = op.qubits[2];
        out.h(c).cx(b, c).tdg(c).cx(a, c).t(c).cx(b, c).tdg(c)
            .cx(a, c).t(b).t(c).h(c).cx(a, b).t(a).tdg(b)
            .cx(a, b);
    }
    return out;
}

Circuit
cancelInversePairs(const Circuit& circuit)
{
    std::vector<Operation> ops(circuit.ops());
    std::vector<bool> dead(ops.size(), false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (dead[i] || !isUnitary(ops[i].kind))
                continue;
            // Find the next op touching our qubits; if it was
            // already cancelled this pass, the post-pass compaction
            // and the fixed-point loop will revisit this site.
            const auto next = nextOpTouching(ops, i);
            if (!next || dead[*next])
                continue;
            if (isInversePair(ops[i], ops[*next])) {
                // The partner must touch exactly our qubits;
                // otherwise an extra operand saw only one gate.
                if (ops[*next].qubits.size() ==
                    ops[i].qubits.size()) {
                    dead[i] = dead[*next] = true;
                    changed = true;
                }
            }
        }
        // Compact away dead ops so "adjacent" re-evaluates.
        std::vector<Operation> alive;
        alive.reserve(ops.size());
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (!dead[i])
                alive.push_back(std::move(ops[i]));
        }
        ops = std::move(alive);
        dead.assign(ops.size(), false);
    }

    Circuit out(circuit.numQubits(),
                static_cast<int>(circuit.numClbits()));
    for (Operation& op : ops)
        out.append(std::move(op));
    return out;
}

Circuit
mergeRotations(const Circuit& circuit)
{
    std::vector<Operation> ops(circuit.ops());
    std::vector<bool> dead(ops.size(), false);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (dead[i] || !isMergeableRotation(ops[i].kind))
            continue;
        // Absorb consecutive same-kind rotations on this qubit.
        std::size_t cur = i;
        while (true) {
            const auto next = nextOpTouching(ops, cur);
            if (!next || dead[*next])
                break;
            if (ops[*next].kind != ops[i].kind ||
                ops[*next].qubits != ops[i].qubits) {
                break;
            }
            ops[i].params[0] += ops[*next].params[0];
            dead[*next] = true;
            cur = *next;
        }
        if (isFullTurn(ops[i].params[0]))
            dead[i] = true;
    }

    Circuit out(circuit.numQubits(),
                static_cast<int>(circuit.numClbits()));
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (!dead[i])
            out.append(std::move(ops[i]));
    }
    return out;
}

Circuit
optimizeCircuit(const Circuit& circuit)
{
    Circuit current = circuit;
    while (true) {
        Circuit next = mergeRotations(cancelInversePairs(current));
        if (next.size() == current.size())
            return next;
        current = std::move(next);
    }
}

} // namespace qem
