/**
 * @file
 * ASAP scheduler: attaches wall-clock timing to a physical circuit
 * and materializes idle windows as DELAY operations.
 *
 * The trajectory simulator applies thermal relaxation wherever a
 * DELAY appears, so scheduling is what exposes a circuit to
 * coherence (T1/T2) errors beyond per-gate decay. Measurements are
 * aligned to fire simultaneously at the end, like the hardware's
 * readout cycle; qubits that finish their gates early therefore idle
 * (and decay) until readout — one of the mechanisms behind the
 * 1 -> 0 measurement bias.
 */

#ifndef QEM_TRANSPILE_SCHEDULER_HH
#define QEM_TRANSPILE_SCHEDULER_HH

#include "machine/machine.hh"
#include "qsim/circuit.hh"

namespace qem
{

/** Scheduling result. */
struct ScheduledCircuit
{
    /** Circuit with DELAY operations covering idle windows. */
    Circuit circuit;
    /** Total wall-clock duration (start of readout), nanoseconds. */
    double durationNs = 0.0;

    ScheduledCircuit() : circuit(1) {}
};

class Scheduler
{
  public:
    explicit Scheduler(const Machine& machine);

    /**
     * Schedule a *physical* circuit (operands are machine qubits).
     * Gate durations come from the machine calibration. Every
     * measured qubit receives a delay up to the common readout start
     * time before its MEASURE.
     */
    ScheduledCircuit schedule(const Circuit& circuit) const;

    /** Duration of one operation per the machine calibration. */
    double opDurationNs(const Operation& op) const;

  private:
    const Machine& machine_;
};

} // namespace qem

#endif // QEM_TRANSPILE_SCHEDULER_HH
