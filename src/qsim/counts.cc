#include "qsim/counts.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

Counts::Counts(unsigned num_bits)
    : numBits_(num_bits)
{
    if (num_bits > 64)
        throw std::invalid_argument("Counts: more than 64 bits");
}

void
Counts::add(BasisState outcome, std::uint64_t n)
{
    if (numBits_ < 64 && (outcome >> numBits_) != 0)
        throw std::out_of_range("Counts::add: outcome wider than the "
                                "classical register");
    counts_[outcome] += n;
    total_ += n;
}

std::uint64_t
Counts::get(BasisState outcome) const
{
    auto it = counts_.find(outcome);
    return it == counts_.end() ? 0 : it->second;
}

double
Counts::probability(BasisState outcome) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(get(outcome)) /
           static_cast<double>(total_);
}

std::vector<std::pair<BasisState, std::uint64_t>>
Counts::sortedByCount() const
{
    std::vector<std::pair<BasisState, std::uint64_t>> out(
        counts_.begin(), counts_.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    return out;
}

BasisState
Counts::mostFrequent() const
{
    if (counts_.empty())
        throw std::logic_error("Counts::mostFrequent: empty log");
    return sortedByCount().front().first;
}

void
Counts::merge(const Counts& other)
{
    if (other.numBits_ != numBits_)
        throw std::invalid_argument("Counts::merge: bit width mismatch");
    for (const auto& [outcome, n] : other.counts_)
        add(outcome, n);
}

Counts
Counts::xorAll(BasisState mask) const
{
    Counts out(numBits_);
    for (const auto& [outcome, n] : counts_)
        out.add(outcome ^ mask, n);
    return out;
}

Counts
Counts::marginalize(const std::vector<unsigned>& bits) const
{
    for (unsigned b : bits) {
        if (b >= numBits_)
            throw std::out_of_range("Counts::marginalize: bit out of "
                                    "range");
    }
    Counts out(static_cast<unsigned>(bits.size()));
    for (const auto& [outcome, n] : counts_) {
        BasisState reduced = 0;
        for (std::size_t i = 0; i < bits.size(); ++i)
            reduced = setBit(reduced, static_cast<unsigned>(i),
                             getBit(outcome, bits[i]));
        out.add(reduced, n);
    }
    return out;
}

std::vector<double>
Counts::toProbabilityVector() const
{
    if (numBits_ > 24)
        throw std::logic_error("Counts::toProbabilityVector: register "
                               "too wide to densify");
    std::vector<double> probs(std::size_t{1} << numBits_, 0.0);
    if (total_ == 0)
        return probs;
    for (const auto& [outcome, n] : counts_)
        probs[outcome] = static_cast<double>(n) /
                         static_cast<double>(total_);
    return probs;
}

std::string
Counts::toString(std::size_t k) const
{
    std::ostringstream os;
    os << "counts(total=" << total_ << ")\n";
    std::size_t shown = 0;
    for (const auto& [outcome, n] : sortedByCount()) {
        if (shown++ >= k)
            break;
        os << "  " << toBitString(outcome, numBits_) << " : " << n
           << "  (" << probability(outcome) << ")\n";
    }
    return os.str();
}

} // namespace qem
