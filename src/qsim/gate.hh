/**
 * @file
 * Gate set and operation record for the circuit IR.
 *
 * The gate set mirrors the physical basis of the 2019-era IBM
 * machines the paper evaluates (u1/u2/u3 single-qubit rotations and
 * CX) plus the usual named aliases (X, H, ...). Matrices are
 * generated on demand from the gate kind and parameters.
 */

#ifndef QEM_QSIM_GATE_HH
#define QEM_QSIM_GATE_HH

#include <array>
#include <string>
#include <vector>

#include "qsim/types.hh"

namespace qem
{

/** Row-major 2x2 complex matrix: {m00, m01, m10, m11}. */
using Matrix2 = std::array<Amplitude, 4>;

/** Row-major 4x4 complex matrix acting on (q1 q0) ordered pairs. */
using Matrix4 = std::array<Amplitude, 16>;

/** Every operation the circuit IR can carry. */
enum class GateKind
{
    // Single-qubit unitaries.
    ID, X, Y, Z, H, S, SDG, T, TDG, SX,
    RX, RY, RZ, P, U2, U3,
    // Two-qubit unitaries.
    CX, CZ, SWAP,
    // Three-qubit unitary.
    CCX,
    // Non-unitary / structural operations.
    MEASURE, RESET, BARRIER, DELAY,
};

/** Human-readable lower-case mnemonic ("cx", "u3", ...). */
const char* gateName(GateKind kind);

/** Number of qubit operands the gate kind requires (0 for BARRIER). */
unsigned gateArity(GateKind kind);

/** Number of real parameters the gate kind requires. */
unsigned gateParamCount(GateKind kind);

/** True for gates with a unitary matrix (i.e. not measure/reset/...). */
bool isUnitary(GateKind kind);

/**
 * Matrix of a single-qubit unitary gate.
 *
 * @param kind A single-qubit unitary GateKind.
 * @param params Gate parameters (angle(s)); size must match
 *               gateParamCount().
 */
Matrix2 gateMatrix1q(GateKind kind, const std::vector<double>& params);

/** Matrix of a two-qubit unitary gate (CX control = operand 0). */
Matrix4 gateMatrix2q(GateKind kind);

/** Hermitian conjugate of a 2x2 matrix. */
Matrix2 dagger(const Matrix2& m);

/** Matrix product a * b of 2x2 matrices. */
Matrix2 matmul(const Matrix2& a, const Matrix2& b);

/** Matrix product a * b of 4x4 matrices. */
Matrix4 matmul(const Matrix4& a, const Matrix4& b);

/**
 * Embed a 1q unitary into the 2q operand space: U acting on the
 * operand mapped to index bit @p bit (0 or 1), identity on the
 * other. Used by gate fusion to fold 1q gates into 4x4 products.
 */
Matrix4 embed1qIn2q(const Matrix2& m, unsigned bit);

/**
 * The same 2q unitary expressed with its operands swapped: if M acts
 * on (a, b) mapped to index bits (0, 1), the result acts identically
 * when applied to (b, a). Lets fusion combine two 2q steps written
 * with opposite operand order.
 */
Matrix4 swapOperandOrder(const Matrix4& m);

/**
 * One operation in a circuit: a gate kind, its qubit operands, real
 * parameters, and bookkeeping for measurement and timing.
 */
struct Operation
{
    GateKind kind = GateKind::ID;
    /** Qubit operands; for CX the first entry is the control. */
    std::vector<Qubit> qubits;
    /** Rotation angles or, for DELAY, the duration in nanoseconds. */
    std::vector<double> params;
    /** Destination classical bit for MEASURE; unused otherwise. */
    Clbit cbit = 0;

    /** True if this operation is @p kind acting on qubit @p q. */
    bool touches(Qubit q) const;

    /** Render as e.g. "cx q1, q4" or "measure q0 -> c0". */
    std::string toString() const;
};

/**
 * Name of the inverse gate kind, for Circuit::inverse(). Parameterized
 * rotations invert by negating angles; this helper returns the kind
 * whose matrix is the dagger for the fixed gates (S -> SDG etc.).
 */
GateKind inverseKind(GateKind kind);

} // namespace qem

#endif // QEM_QSIM_GATE_HH
