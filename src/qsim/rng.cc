#include "qsim/rng.hh"

#include <cmath>
#include <stdexcept>

namespace qem
{

namespace
{

/** SplitMix64 step; used to whiten seeds for split streams. */
std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : engine_(splitMix64(seed)), seed_(seed)
{
}

double
Rng::uniform()
{
    // Use the top 53 bits for a uniform double in [0, 1).
    return (engine_() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::index(std::uint64_t n)
{
    if (n == 0)
        throw std::invalid_argument("Rng::index: n must be nonzero");
    // Rejection sampling for an unbiased bounded integer.
    const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
    std::uint64_t x;
    do {
        x = engine_();
    } while (x >= limit);
    return x % n;
}

std::uint64_t
Rng::bits()
{
    return engine_();
}

double
Rng::normal(double mean, double sigma)
{
    // Box-Muller on our own uniforms keeps the stream's
    // reproducibility independent of the standard library.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + sigma * z;
}

std::size_t
Rng::discrete(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            throw std::invalid_argument("Rng::discrete: negative weight");
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("Rng::discrete: zero total weight");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    ++splitCount_;
    return Rng(splitMix64(seed_ ^ splitMix64(splitCount_)));
}

Rng
Rng::splitAt(std::uint64_t index) const
{
    // Domain-separation constant keeps the indexed family disjoint
    // from the sequential split() family at every index.
    constexpr std::uint64_t kIndexedDomain = 0xD1B54A32D192ED03ULL;
    return Rng(
        splitMix64(seed_ ^ splitMix64(index ^ kIndexedDomain)));
}

} // namespace qem
