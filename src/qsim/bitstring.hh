/**
 * @file
 * Utilities for manipulating packed basis states as bit strings.
 *
 * Convention used throughout InvertQ: bit i of a BasisState is the
 * value of qubit i. The textual rendering produced by toBitString()
 * prints qubit 0 first (leftmost), matching the left-to-right qubit
 * ordering of the paper's figures ("00000" ... "11111" where the
 * leftmost character is qubit 0).
 */

#ifndef QEM_QSIM_BITSTRING_HH
#define QEM_QSIM_BITSTRING_HH

#include <string>
#include <vector>

#include "qsim/types.hh"

namespace qem
{

/** Number of set bits (the paper's "Hamming Weight") of a state. */
int hammingWeight(BasisState s);

/** Number of differing bits between two states. */
int hammingDistance(BasisState a, BasisState b);

/** Value of bit @p bit of state @p s. */
bool getBit(BasisState s, unsigned bit);

/** Copy of @p s with bit @p bit forced to @p value. */
BasisState setBit(BasisState s, unsigned bit, bool value);

/** State with the low @p n bits set (e.g. allOnes(5) == 0b11111). */
BasisState allOnes(unsigned n);

/**
 * Render the low @p n bits of @p s, qubit 0 leftmost.
 *
 * @param s Packed basis state.
 * @param n Number of qubits to render.
 * @return String of length @p n consisting of '0'/'1'.
 */
std::string toBitString(BasisState s, unsigned n);

/**
 * Parse a bit string in the toBitString() convention (first character
 * is qubit 0). Throws std::invalid_argument on any non-'0'/'1'
 * character or if the string is longer than 64 characters.
 */
BasisState fromBitString(const std::string& bits);

/**
 * All states expressible on @p n qubits, sorted by ascending Hamming
 * weight and ascending numeric value within a weight class. This is
 * the x-axis ordering used by the paper's per-state figures.
 */
std::vector<BasisState> statesByHammingWeight(unsigned n);

/** All states of exactly @p weight set bits on @p n qubits. */
std::vector<BasisState> statesOfWeight(unsigned n, int weight);

} // namespace qem

#endif // QEM_QSIM_BITSTRING_HH
