/**
 * @file
 * Ideal (noise-free) circuit simulator.
 *
 * Runs a circuit on a dense state vector with no error processes;
 * this is the reference executor used to validate kernels, optimize
 * QAOA angles, and produce the paper's "ideal quantum computer"
 * baselines (e.g. Fig 3(b), the ideal series in Fig 6).
 */

#ifndef QEM_QSIM_SIMULATOR_HH
#define QEM_QSIM_SIMULATOR_HH

#include <memory>

#include "qsim/circuit.hh"
#include "qsim/counts.hh"
#include "qsim/rng.hh"
#include "qsim/statevector.hh"

namespace qem
{

/**
 * Abstract execution backend: anything that can run a measured
 * circuit for a number of trials and return the output log. The
 * mitigation policies are written against this interface so the same
 * policy code would drive real hardware.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /**
     * Execute @p circuit for @p shots trials.
     *
     * @param circuit A circuit with MEASURE operations.
     * @param shots Number of trials to log.
     * @return Histogram over the circuit's classical register.
     */
    virtual Counts run(const Circuit& circuit, std::size_t shots) = 0;

    /** Number of qubits the backend exposes. */
    virtual unsigned numQubits() const = 0;
};

/**
 * A Backend whose sampling can be driven by an external RNG stream
 * and that can be cloned for per-worker use. This is the contract
 * the parallel runtime (src/runtime/) needs: the three-argument
 * run() is const — all mutable per-shot state lives in the caller's
 * Rng — so worker clones never share mutable state, and the same
 * (circuit, shots, stream) triple always yields the same Counts.
 */
class ShardedBackend : public Backend
{
  public:
    using Backend::run;

    /**
     * Execute @p shots trials drawing every random decision from
     * @p rng instead of the backend's member stream.
     */
    virtual Counts run(const Circuit& circuit, std::size_t shots,
                       Rng& rng) const = 0;

    /**
     * A circuit lowered once for repeated execution. run() must
     * consume the rng stream exactly as the owning backend's
     * three-argument run() would for the same circuit, so compiled
     * and uncompiled execution of the same (shots, stream) pair are
     * bit-identical. Implementations keep no mutable state across
     * calls (scratch lives on run()'s stack), so one compiled
     * program may be shared by every worker thread.
     */
    class CompiledRun
    {
      public:
        virtual ~CompiledRun() = default;

        /** Execute @p shots trials against the lowered circuit. */
        virtual Counts run(std::size_t shots, Rng& rng) const = 0;
    };

    /**
     * Lower @p circuit into a reusable execution program, or nullptr
     * when this backend has no compiled form — callers must then
     * fall back to run(). The base default is nullptr so decorators
     * that perturb per-call behaviour (e.g. fault injection) opt out
     * of sharing a compiled program by simply not overriding this.
     */
    virtual std::shared_ptr<const CompiledRun>
    compile(const Circuit& circuit) const
    {
        (void)circuit;
        return nullptr;
    }

    /** Deep copy for per-worker use. */
    virtual std::unique_ptr<ShardedBackend> clone() const = 0;
};

/** Noise-free execution backend. */
class IdealSimulator : public ShardedBackend
{
  public:
    /**
     * @param num_qubits Register size the backend exposes.
     * @param seed Seed for measurement sampling.
     */
    explicit IdealSimulator(unsigned num_qubits,
                            std::uint64_t seed = 1234);

    /**
     * Evolve the circuit's unitary prefix and return the
     * pre-measurement state. MEASURE/BARRIER/DELAY operations are
     * skipped; RESET collapses deterministically only if the qubit is
     * untouched (otherwise throws, since an ideal pre-measurement
     * state is no longer well defined).
     */
    StateVector stateOf(const Circuit& circuit) const;

    /** Sample from the member RNG stream (wrapper over the const
     *  overload; repeated calls consume the stream). */
    Counts run(const Circuit& circuit, std::size_t shots) override;

    /** Sample from an explicit stream; pure in (circuit, rng). */
    Counts run(const Circuit& circuit, std::size_t shots,
               Rng& rng) const override;

    /**
     * Lower the circuit once: the pre-measurement state is evolved
     * here and the MEASURE projection is hoisted into a flat
     * (qubit, clbit) list, so each compiled run() is pure sampling.
     */
    std::shared_ptr<const CompiledRun>
    compile(const Circuit& circuit) const override;

    std::unique_ptr<ShardedBackend> clone() const override
    {
        return std::make_unique<IdealSimulator>(*this);
    }

    unsigned numQubits() const override { return numQubits_; }

  private:
    unsigned numQubits_;
    Rng rng_;
};

} // namespace qem

#endif // QEM_QSIM_SIMULATOR_HH
