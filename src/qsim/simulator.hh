/**
 * @file
 * Ideal (noise-free) circuit simulator.
 *
 * Runs a circuit on a dense state vector with no error processes;
 * this is the reference executor used to validate kernels, optimize
 * QAOA angles, and produce the paper's "ideal quantum computer"
 * baselines (e.g. Fig 3(b), the ideal series in Fig 6).
 */

#ifndef QEM_QSIM_SIMULATOR_HH
#define QEM_QSIM_SIMULATOR_HH

#include <memory>

#include "qsim/circuit.hh"
#include "qsim/counts.hh"
#include "qsim/rng.hh"
#include "qsim/statevector.hh"

namespace qem
{

/**
 * Abstract execution backend: anything that can run a measured
 * circuit for a number of trials and return the output log. The
 * mitigation policies are written against this interface so the same
 * policy code would drive real hardware.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /**
     * Execute @p circuit for @p shots trials.
     *
     * @param circuit A circuit with MEASURE operations.
     * @param shots Number of trials to log.
     * @return Histogram over the circuit's classical register.
     */
    virtual Counts run(const Circuit& circuit, std::size_t shots) = 0;

    /** Number of qubits the backend exposes. */
    virtual unsigned numQubits() const = 0;
};

/**
 * A Backend whose sampling can be driven by an external RNG stream
 * and that can be cloned for per-worker use. This is the contract
 * the parallel runtime (src/runtime/) needs: the three-argument
 * run() is const — all mutable per-shot state lives in the caller's
 * Rng — so worker clones never share mutable state, and the same
 * (circuit, shots, stream) triple always yields the same Counts.
 */
class ShardedBackend : public Backend
{
  public:
    using Backend::run;

    /**
     * Execute @p shots trials drawing every random decision from
     * @p rng instead of the backend's member stream.
     */
    virtual Counts run(const Circuit& circuit, std::size_t shots,
                       Rng& rng) const = 0;

    /** Deep copy for per-worker use. */
    virtual std::unique_ptr<ShardedBackend> clone() const = 0;
};

/** Noise-free execution backend. */
class IdealSimulator : public ShardedBackend
{
  public:
    /**
     * @param num_qubits Register size the backend exposes.
     * @param seed Seed for measurement sampling.
     */
    explicit IdealSimulator(unsigned num_qubits,
                            std::uint64_t seed = 1234);

    /**
     * Evolve the circuit's unitary prefix and return the
     * pre-measurement state. MEASURE/BARRIER/DELAY operations are
     * skipped; RESET collapses deterministically only if the qubit is
     * untouched (otherwise throws, since an ideal pre-measurement
     * state is no longer well defined).
     */
    StateVector stateOf(const Circuit& circuit) const;

    /** Sample from the member RNG stream (wrapper over the const
     *  overload; repeated calls consume the stream). */
    Counts run(const Circuit& circuit, std::size_t shots) override;

    /** Sample from an explicit stream; pure in (circuit, rng). */
    Counts run(const Circuit& circuit, std::size_t shots,
               Rng& rng) const override;

    std::unique_ptr<ShardedBackend> clone() const override
    {
        return std::make_unique<IdealSimulator>(*this);
    }

    unsigned numQubits() const override { return numQubits_; }

  private:
    unsigned numQubits_;
    Rng rng_;
};

} // namespace qem

#endif // QEM_QSIM_SIMULATOR_HH
