/**
 * @file
 * OpenQASM 2.0 serialization of circuits.
 *
 * Export targets the qelib1 gate vocabulary of the 2019 IBM stack so
 * emitted programs run unmodified on period toolchains; import
 * accepts the same subset (plus a nonstandard `delay(ns)` gate call,
 * which the scheduler produces and a comment-stripping toolchain can
 * ignore).
 */

#ifndef QEM_QSIM_QASM_HH
#define QEM_QSIM_QASM_HH

#include <string>

#include "qsim/circuit.hh"

namespace qem
{

/** Serialize @p circuit as an OpenQASM 2.0 program. */
std::string toQasm(const Circuit& circuit);

/**
 * Parse an OpenQASM 2.0 program emitted by toQasm (single qreg and
 * creg, qelib1 gates, measure, barrier, delay). Throws
 * std::invalid_argument with a line diagnostic on anything it does
 * not understand.
 */
Circuit fromQasm(const std::string& text);

} // namespace qem

#endif // QEM_QSIM_QASM_HH
