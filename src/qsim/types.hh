/**
 * @file
 * Fundamental types shared across the InvertQ libraries.
 */

#ifndef QEM_QSIM_TYPES_HH
#define QEM_QSIM_TYPES_HH

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qem
{

/** Complex probability amplitude of a basis state. */
using Amplitude = std::complex<double>;

/**
 * A computational basis state of up to 64 qubits, packed into an
 * integer. Bit i of the integer is the value of qubit i.
 */
using BasisState = std::uint64_t;

/** Index of a qubit within a circuit or machine. */
using Qubit = unsigned;

/** Index of a classical bit within a circuit's output register. */
using Clbit = unsigned;

/**
 * Largest state-vector register the dense simulator will allocate.
 * 2^28 amplitudes = 4 GiB of doubles; anything larger is refused
 * up front rather than thrashing the machine.
 */
inline constexpr unsigned maxSimulatedQubits = 28;

} // namespace qem

#endif // QEM_QSIM_TYPES_HH
