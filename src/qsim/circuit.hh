/**
 * @file
 * Quantum circuit intermediate representation.
 *
 * A Circuit is an ordered list of Operations over a fixed-size qubit
 * register and classical output register. It is the unit of work that
 * kernels produce, the transpiler rewrites, the mitigation policies
 * instrument, and the simulators execute.
 */

#ifndef QEM_QSIM_CIRCUIT_HH
#define QEM_QSIM_CIRCUIT_HH

#include <map>
#include <string>
#include <vector>

#include "qsim/gate.hh"
#include "qsim/types.hh"

namespace qem
{

class Circuit
{
  public:
    /**
     * Create an empty circuit.
     *
     * @param num_qubits Size of the quantum register.
     * @param num_clbits Size of the classical register; defaults to
     *                   one classical bit per qubit.
     */
    explicit Circuit(unsigned num_qubits, int num_clbits = -1);

    unsigned numQubits() const { return numQubits_; }
    unsigned numClbits() const { return numClbits_; }
    const std::vector<Operation>& ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** @name Gate builder helpers.
     *  Each appends one operation and returns *this for chaining. */
    /// @{
    Circuit& id(Qubit q);
    Circuit& x(Qubit q);
    Circuit& y(Qubit q);
    Circuit& z(Qubit q);
    Circuit& h(Qubit q);
    Circuit& s(Qubit q);
    Circuit& sdg(Qubit q);
    Circuit& t(Qubit q);
    Circuit& tdg(Qubit q);
    Circuit& sx(Qubit q);
    Circuit& rx(double theta, Qubit q);
    Circuit& ry(double theta, Qubit q);
    Circuit& rz(double theta, Qubit q);
    Circuit& p(double lambda, Qubit q);
    Circuit& u2(double phi, double lambda, Qubit q);
    Circuit& u3(double theta, double phi, double lambda, Qubit q);
    Circuit& cx(Qubit control, Qubit target);
    Circuit& cz(Qubit a, Qubit b);
    Circuit& swap(Qubit a, Qubit b);
    Circuit& ccx(Qubit c0, Qubit c1, Qubit target);
    Circuit& barrier();
    Circuit& reset(Qubit q);
    Circuit& delay(double nanoseconds, Qubit q);
    Circuit& measure(Qubit q, Clbit c);
    /** Measure qubit i into classical bit i, for all qubits. */
    Circuit& measureAll();
    /// @}

    /** Append a prebuilt operation (validated). */
    Circuit& append(Operation op);

    /**
     * Append every operation of @p other (registers must be no larger
     * than this circuit's).
     */
    Circuit& compose(const Circuit& other);

    /**
     * Unitary-only inverse: operations reversed and conjugated.
     * Throws if the circuit contains measurement or reset.
     */
    Circuit inverse() const;

    /**
     * Rewrite qubit operands through @p layout, where layout[i] is the
     * physical qubit that logical qubit i maps to. The returned
     * circuit has @p physical_qubits qubits (>= max layout entry + 1).
     */
    Circuit remapQubits(const std::vector<Qubit>& layout,
                        unsigned physical_qubits) const;

    /** Number of operations of the given kind. */
    std::size_t countOps(GateKind kind) const;

    /** Number of two-qubit unitary gates. */
    std::size_t twoQubitGateCount() const;

    /**
     * Circuit depth: the longest chain of operations per qubit,
     * counting unitaries and measurements (barriers and delays are
     * excluded).
     */
    std::size_t depth() const;

    /** True if any MEASURE operation is present. */
    bool hasMeasurements() const;

    /**
     * Qubits read by MEASURE operations, in ascending order of the
     * classical bit they write.
     */
    std::vector<Qubit> measuredQubits() const;

    /**
     * Project a full-register basis state (as sampled from the state
     * vector) onto the classical register according to the circuit's
     * MEASURE operations. Bit c of the result is the value of the
     * qubit measured into classical bit c.
     */
    BasisState classicalOutcome(BasisState full_state) const;

    /** One operation per line, for debugging and examples. */
    std::string toString() const;

  private:
    void checkQubit(Qubit q) const;
    void checkClbit(Clbit c) const;

    unsigned numQubits_;
    unsigned numClbits_;
    std::vector<Operation> ops_;
};

} // namespace qem

#endif // QEM_QSIM_CIRCUIT_HH
