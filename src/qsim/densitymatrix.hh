/**
 * @file
 * Dense density-matrix register with exact channel application.
 *
 * The trajectory simulator estimates noisy outcome statistics by
 * Monte-Carlo sampling; the density matrix computes them in closed
 * form. It costs 4^n memory and superoperator-time, so it is
 * limited to small registers (<= 10 qubits), where it serves as the
 * exact reference the trajectory sampler is validated against, and
 * as a fast analytic path for small readout-only studies.
 */

#ifndef QEM_QSIM_DENSITYMATRIX_HH
#define QEM_QSIM_DENSITYMATRIX_HH

#include <span>
#include <vector>

#include "qsim/gate.hh"
#include "qsim/statevector.hh"
#include "qsim/types.hh"

namespace qem
{

/** Largest density-matrix register (4^10 = 1M amplitudes). */
inline constexpr unsigned maxDensityMatrixQubits = 10;

class DensityMatrix
{
  public:
    /** Initialize in the pure basis state |s><s|. */
    explicit DensityMatrix(unsigned num_qubits, BasisState s = 0);

    /** Initialize as |psi><psi|. */
    explicit DensityMatrix(const StateVector& psi);

    unsigned numQubits() const { return numQubits_; }
    std::size_t dim() const { return dim_; }

    /** Matrix element rho[row][col]. */
    Amplitude element(BasisState row, BasisState col) const;
    void setElement(BasisState row, BasisState col, Amplitude v);

    /** @name Exact evolution. */
    /// @{
    /** rho -> U rho U^dag for a single-qubit unitary on @p q. */
    void applyUnitary1q(const Matrix2& u, Qubit q);

    /** rho -> U rho U^dag for a 4x4 unitary (bit0 = @p q0). */
    void applyUnitary2q(const Matrix4& u, Qubit q0, Qubit q1);

    /** Apply one unitary circuit operation (CCX is decomposed). */
    void applyOperation(const Operation& op);

    /** Exact channel: rho -> sum_k K_k rho K_k^dag. */
    void applyKraus1q(std::span<const Matrix2> kraus, Qubit q);

    /**
     * Exact two-qubit depolarizing in the trajectory simulator's
     * convention: with probability @p p a uniformly random
     * non-identity Pauli pair hits (q0, q1).
     */
    void applyTwoQubitDepolarizing(Qubit q0, Qubit q1, double p);
    /// @}

    /** Tr(rho); 1 for any physical state. */
    double trace() const;

    /** Diagonal: exact measurement probabilities of all outcomes. */
    std::vector<double> probabilities() const;

    double probabilityOf(BasisState s) const;

    /** <psi| rho |psi>: fidelity against a pure reference. */
    double fidelityWithPure(const StateVector& psi) const;

  private:
    std::size_t index(BasisState row, BasisState col) const
    {
        return static_cast<std::size_t>(row) * dim_ + col;
    }

    /**
     * Apply a 2x2 matrix to one side of rho: the row axis uses
     * @p m as-is (left multiplication), the column axis uses the
     * conjugate (right multiplication by m^dag when paired).
     */
    void applyMatrixAxis1q(const Matrix2& m, Qubit q, bool rows);
    void applyMatrixAxis2q(const Matrix4& m, Qubit q0, Qubit q1,
                           bool rows);

    unsigned numQubits_;
    std::size_t dim_;
    std::vector<Amplitude> rho_;
};

} // namespace qem

#endif // QEM_QSIM_DENSITYMATRIX_HH
