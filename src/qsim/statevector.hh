/**
 * @file
 * Dense state-vector register with in-place gate application.
 *
 * This is the computational core of the substrate: a 2^n complex
 * vector with cache-friendly strided updates for one- and two-qubit
 * unitaries, plus the non-unitary primitives the noise model needs
 * (Kraus channel application by quantum-trajectory sampling,
 * projective collapse) and measurement sampling.
 */

#ifndef QEM_QSIM_STATEVECTOR_HH
#define QEM_QSIM_STATEVECTOR_HH

#include <span>
#include <vector>

#include "qsim/gate.hh"
#include "qsim/rng.hh"
#include "qsim/types.hh"

namespace qem
{

/**
 * What a trajectory damping channel did to the state.
 *
 * `applied` is false exactly when the channel was a no-op on this
 * state (zero probability, or no |1> population for the target
 * qubit) — in that case no RNG draw was consumed and the amplitudes
 * are untouched. `jumped` reports which Kraus branch fired when the
 * channel did act.
 */
struct DampingResult
{
    bool applied = false;
    bool jumped = false;
};

class StateVector
{
  public:
    /** Initialize @p num_qubits qubits in the |0...0> state. */
    explicit StateVector(unsigned num_qubits);

    /** Initialize in the computational basis state @p s. */
    StateVector(unsigned num_qubits, BasisState s);

    unsigned numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    Amplitude amplitude(BasisState s) const { return amps_[s]; }
    void setAmplitude(BasisState s, Amplitude a) { amps_[s] = a; }

    /** Reset to the basis state @p s. */
    void resetTo(BasisState s);

    /** @name Unitary application. */
    /// @{
    /** Apply an arbitrary 2x2 unitary to qubit @p q. */
    void applyMatrix1q(const Matrix2& m, Qubit q);

    /**
     * Apply an arbitrary 4x4 matrix where index bit 0 corresponds to
     * qubit @p q0 and index bit 1 to qubit @p q1.
     */
    void applyMatrix2q(const Matrix4& m, Qubit q0, Qubit q1);

    /** Fast paths for common gates. */
    void applyX(Qubit q);
    void applyZ(Qubit q);
    void applyH(Qubit q);
    void applyCX(Qubit control, Qubit target);
    void applyCZ(Qubit a, Qubit b);
    void applySwap(Qubit a, Qubit b);

    /**
     * Apply one unitary circuit operation (dispatches to the fast
     * paths; CCX is decomposed on the fly). Throws for non-unitary
     * operations.
     */
    void applyOperation(const Operation& op);
    /// @}

    /** @name Non-unitary primitives. */
    /// @{
    /**
     * Apply a single-qubit Kraus channel by trajectory sampling: one
     * Kraus operator is chosen with probability equal to the norm of
     * its (unnormalized) output state, applied, and the state is
     * renormalized.
     *
     * Branch norms are evaluated lazily: evaluation stops as soon as
     * the running cumulative covers the branch draw (for a
     * trace-preserving channel the norms sum to 1, so a
     * high-probability first branch — the identity Kraus of a weak
     * channel — costs one streaming pass instead of one per
     * operator). Exactly one uniform draw is consumed either way,
     * and renormalization is skipped when the chosen branch norm is
     * already 1 within rounding.
     *
     * @param kraus The Kraus operators; must satisfy
     *              sum_k K_k^dag K_k = I.
     * @param q Target qubit.
     * @param rng Random source deciding the trajectory branch.
     * @return Index of the Kraus operator that was applied.
     */
    std::size_t applyKraus1q(std::span<const Matrix2> kraus, Qubit q,
                             Rng& rng);

    /**
     * Trajectory branch of the amplitude-damping channel with decay
     * probability @p gamma, specialized for speed (two passes versus
     * the generic Kraus path's seven): the jump branch fires with
     * probability gamma * P(q=1), and the surviving branch applies
     * the no-jump Kraus operator; both are renormalized in-place.
     *
     * @return Whether the channel acted at all and whether the decay
     *         jump occurred (see DampingResult).
     */
    DampingResult applyAmplitudeDamping(Qubit q, double gamma,
                                        Rng& rng);

    /**
     * Trajectory branch of the phase-damping channel with dephasing
     * probability @p lambda; same fast path as
     * applyAmplitudeDamping.
     *
     * @return Whether the channel acted at all and whether the
     *         dephasing jump occurred (see DampingResult).
     */
    DampingResult applyPhaseDamping(Qubit q, double lambda, Rng& rng);

    /**
     * Projectively measure qubit @p q, collapse the state, and
     * renormalize.
     *
     * @return The measured bit.
     */
    bool measureQubit(Qubit q, Rng& rng);

    /** Collapse qubit @p q to @p value (projector + renormalize). */
    void collapseQubit(Qubit q, bool value);
    /// @}

    /** @name Probabilities and sampling. */
    /// @{
    /** Squared norm of the state (1 for any normalized state). */
    double norm() const;

    /** Rescale to unit norm; throws on a numerically null state. */
    void normalize();

    /** Probability that measuring everything yields @p s. */
    double probabilityOf(BasisState s) const;

    /** Probability that qubit @p q reads 1. */
    double probabilityOne(Qubit q) const;

    /** Full probability vector |amp|^2 over all basis states. */
    std::vector<double> probabilities() const;

    /** Sample one full-register measurement outcome. */
    BasisState sample(Rng& rng) const;

    /**
     * Sample @p shots outcomes. Builds a cumulative table once, so
     * this is the preferred path for repeated sampling.
     */
    std::vector<BasisState> sample(Rng& rng, std::size_t shots) const;

    /**
     * Buffer-reusing form of the batched sample(): the cumulative
     * table is built in @p cdf and the outcomes land in @p out
     * (both resized as needed), so a caller sampling from many
     * trajectory states in a loop allocates nothing after the first
     * iteration. Draw-for-draw identical to sample(rng, shots).
     */
    void sampleInto(Rng& rng, std::size_t shots,
                    std::vector<double>& cdf,
                    std::vector<BasisState>& out) const;
    /// @}

    /** Inner product <this|other>. */
    Amplitude innerProduct(const StateVector& other) const;

    /** |<this|other>|^2. */
    double fidelity(const StateVector& other) const;

  private:
    unsigned numQubits_;
    std::vector<Amplitude> amps_;
};

} // namespace qem

#endif // QEM_QSIM_STATEVECTOR_HH
