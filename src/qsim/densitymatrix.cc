#include "qsim/densitymatrix.hh"

#include <stdexcept>

namespace qem
{

DensityMatrix::DensityMatrix(unsigned num_qubits, BasisState s)
    : numQubits_(num_qubits), dim_(std::size_t{1} << num_qubits)
{
    if (num_qubits == 0 || num_qubits > maxDensityMatrixQubits)
        throw std::invalid_argument("DensityMatrix: qubit count out "
                                    "of supported range");
    if (s >= dim_)
        throw std::out_of_range("DensityMatrix: initial state out "
                                "of range");
    rho_.assign(dim_ * dim_, Amplitude{0.0, 0.0});
    rho_[index(s, s)] = 1.0;
}

DensityMatrix::DensityMatrix(const StateVector& psi)
    : numQubits_(psi.numQubits()), dim_(psi.dim())
{
    if (numQubits_ > maxDensityMatrixQubits)
        throw std::invalid_argument("DensityMatrix: state too wide");
    rho_.resize(dim_ * dim_);
    for (BasisState r = 0; r < dim_; ++r) {
        for (BasisState c = 0; c < dim_; ++c) {
            rho_[index(r, c)] =
                psi.amplitude(r) * std::conj(psi.amplitude(c));
        }
    }
}

Amplitude
DensityMatrix::element(BasisState row, BasisState col) const
{
    if (row >= dim_ || col >= dim_)
        throw std::out_of_range("DensityMatrix::element: index out "
                                "of range");
    return rho_[index(row, col)];
}

void
DensityMatrix::setElement(BasisState row, BasisState col,
                          Amplitude v)
{
    if (row >= dim_ || col >= dim_)
        throw std::out_of_range("DensityMatrix::setElement: index "
                                "out of range");
    rho_[index(row, col)] = v;
}

void
DensityMatrix::applyMatrixAxis1q(const Matrix2& m, Qubit q,
                                 bool rows)
{
    const std::size_t stride = std::size_t{1} << q;
    // Conjugate for the column axis (right multiplication by the
    // dagger of the paired unitary).
    const Amplitude m00 = rows ? m[0] : std::conj(m[0]);
    const Amplitude m01 = rows ? m[1] : std::conj(m[1]);
    const Amplitude m10 = rows ? m[2] : std::conj(m[2]);
    const Amplitude m11 = rows ? m[3] : std::conj(m[3]);
    for (std::size_t fixed = 0; fixed < dim_; ++fixed) {
        for (std::size_t base = 0; base < dim_;
             base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                const std::size_t i0 =
                    rows ? index(i, fixed) : index(fixed, i);
                const std::size_t i1 =
                    rows ? index(i + stride, fixed)
                         : index(fixed, i + stride);
                const Amplitude a0 = rho_[i0];
                const Amplitude a1 = rho_[i1];
                rho_[i0] = m00 * a0 + m01 * a1;
                rho_[i1] = m10 * a0 + m11 * a1;
            }
        }
    }
}

void
DensityMatrix::applyMatrixAxis2q(const Matrix4& m, Qubit q0,
                                 Qubit q1, bool rows)
{
    const std::size_t b0 = std::size_t{1} << q0;
    const std::size_t b1 = std::size_t{1} << q1;
    const std::size_t mask = b0 | b1;
    Matrix4 mm = m;
    if (!rows) {
        for (Amplitude& a : mm)
            a = std::conj(a);
    }
    for (std::size_t fixed = 0; fixed < dim_; ++fixed) {
        for (std::size_t i = 0; i < dim_; ++i) {
            if (i & mask)
                continue;
            const std::size_t idx[4] = {i, i | b0, i | b1,
                                        i | b0 | b1};
            Amplitude a[4];
            for (int k = 0; k < 4; ++k) {
                a[k] = rows ? rho_[index(idx[k], fixed)]
                            : rho_[index(fixed, idx[k])];
            }
            for (int r = 0; r < 4; ++r) {
                Amplitude acc{0.0, 0.0};
                for (int c = 0; c < 4; ++c)
                    acc += mm[r * 4 + c] * a[c];
                if (rows)
                    rho_[index(idx[r], fixed)] = acc;
                else
                    rho_[index(fixed, idx[r])] = acc;
            }
        }
    }
}

void
DensityMatrix::applyUnitary1q(const Matrix2& u, Qubit q)
{
    if (q >= numQubits_)
        throw std::out_of_range("DensityMatrix::applyUnitary1q: "
                                "qubit out of range");
    applyMatrixAxis1q(u, q, true);
    applyMatrixAxis1q(u, q, false);
}

void
DensityMatrix::applyUnitary2q(const Matrix4& u, Qubit q0, Qubit q1)
{
    if (q0 >= numQubits_ || q1 >= numQubits_ || q0 == q1)
        throw std::out_of_range("DensityMatrix::applyUnitary2q: bad "
                                "qubits");
    applyMatrixAxis2q(u, q0, q1, true);
    applyMatrixAxis2q(u, q0, q1, false);
}

void
DensityMatrix::applyOperation(const Operation& op)
{
    switch (op.kind) {
      case GateKind::ID:
        return;
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        applyUnitary2q(gateMatrix2q(op.kind), op.qubits[0],
                       op.qubits[1]);
        return;
      case GateKind::CCX: {
        // Same H/T/CX decomposition as the state vector.
        const Qubit a = op.qubits[0];
        const Qubit b = op.qubits[1];
        const Qubit c = op.qubits[2];
        auto g1 = [&](GateKind kind, Qubit q) {
            applyUnitary1q(gateMatrix1q(kind, {}), q);
        };
        auto cx = [&](Qubit x, Qubit y) {
            applyUnitary2q(gateMatrix2q(GateKind::CX), x, y);
        };
        g1(GateKind::H, c);
        cx(b, c);
        g1(GateKind::TDG, c);
        cx(a, c);
        g1(GateKind::T, c);
        cx(b, c);
        g1(GateKind::TDG, c);
        cx(a, c);
        g1(GateKind::T, b);
        g1(GateKind::T, c);
        g1(GateKind::H, c);
        cx(a, b);
        g1(GateKind::T, a);
        g1(GateKind::TDG, b);
        cx(a, b);
        return;
      }
      default:
        break;
    }
    if (!isUnitary(op.kind))
        throw std::invalid_argument("DensityMatrix::applyOperation: "
                                    "non-unitary operation");
    applyUnitary1q(gateMatrix1q(op.kind, op.params), op.qubits[0]);
}

void
DensityMatrix::applyKraus1q(std::span<const Matrix2> kraus, Qubit q)
{
    if (kraus.empty())
        throw std::invalid_argument("DensityMatrix::applyKraus1q: "
                                    "empty channel");
    std::vector<Amplitude> acc(rho_.size(), Amplitude{0.0, 0.0});
    const std::vector<Amplitude> original = rho_;
    for (const Matrix2& k : kraus) {
        rho_ = original;
        applyMatrixAxis1q(k, q, true);
        applyMatrixAxis1q(k, q, false);
        for (std::size_t i = 0; i < rho_.size(); ++i)
            acc[i] += rho_[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::applyTwoQubitDepolarizing(Qubit q0, Qubit q1,
                                         double p)
{
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument("applyTwoQubitDepolarizing: "
                                    "probability out of [0, 1]");
    if (p == 0.0)
        return;
    static const Matrix2 paulis[4] = {
        gateMatrix1q(GateKind::ID, {}),
        gateMatrix1q(GateKind::X, {}),
        gateMatrix1q(GateKind::Y, {}),
        gateMatrix1q(GateKind::Z, {}),
    };
    const std::vector<Amplitude> original = rho_;
    std::vector<Amplitude> acc(rho_.size());
    for (std::size_t i = 0; i < rho_.size(); ++i)
        acc[i] = (1.0 - p) * original[i];
    for (int pa = 0; pa < 4; ++pa) {
        for (int pb = 0; pb < 4; ++pb) {
            if (pa == 0 && pb == 0)
                continue;
            rho_ = original;
            if (pa != 0)
                applyUnitary1q(paulis[pa], q0);
            if (pb != 0)
                applyUnitary1q(paulis[pb], q1);
            const double w = p / 15.0;
            for (std::size_t i = 0; i < rho_.size(); ++i)
                acc[i] += w * rho_[i];
        }
    }
    rho_ = std::move(acc);
}

double
DensityMatrix::trace() const
{
    double t = 0.0;
    for (BasisState s = 0; s < dim_; ++s)
        t += rho_[index(s, s)].real();
    return t;
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim_);
    for (BasisState s = 0; s < dim_; ++s)
        probs[s] = rho_[index(s, s)].real();
    return probs;
}

double
DensityMatrix::probabilityOf(BasisState s) const
{
    if (s >= dim_)
        return 0.0;
    return rho_[index(s, s)].real();
}

double
DensityMatrix::fidelityWithPure(const StateVector& psi) const
{
    if (psi.numQubits() != numQubits_)
        throw std::invalid_argument("fidelityWithPure: size "
                                    "mismatch");
    Amplitude acc{0.0, 0.0};
    for (BasisState r = 0; r < dim_; ++r) {
        for (BasisState c = 0; c < dim_; ++c) {
            acc += std::conj(psi.amplitude(r)) *
                   rho_[index(r, c)] * psi.amplitude(c);
        }
    }
    return acc.real();
}

} // namespace qem
