#include "qsim/statevector.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qsim/kernels/kernels.hh"

namespace qem
{

StateVector::StateVector(unsigned num_qubits)
    : StateVector(num_qubits, 0)
{
}

StateVector::StateVector(unsigned num_qubits, BasisState s)
    : numQubits_(num_qubits)
{
    if (num_qubits == 0 || num_qubits > maxSimulatedQubits)
        throw std::invalid_argument("StateVector: qubit count out of "
                                    "supported range");
    amps_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
    if (s >= amps_.size())
        throw std::out_of_range("StateVector: initial basis state out "
                                "of range");
    amps_[s] = 1.0;
}

void
StateVector::resetTo(BasisState s)
{
    if (s >= amps_.size())
        throw std::out_of_range("StateVector::resetTo: state out of "
                                "range");
    std::fill(amps_.begin(), amps_.end(), Amplitude{0.0, 0.0});
    amps_[s] = 1.0;
}

void
StateVector::applyMatrix1q(const Matrix2& m, Qubit q)
{
    kernels::apply1q(amps_.data(), amps_.size(),
                     std::size_t{1} << q, m);
}

void
StateVector::applyMatrix2q(const Matrix4& m, Qubit q0, Qubit q1)
{
    kernels::apply2q(amps_.data(), amps_.size(),
                     std::size_t{1} << q0, std::size_t{1} << q1, m);
}

void
StateVector::applyX(Qubit q)
{
    kernels::applyX(amps_.data(), amps_.size(), std::size_t{1} << q);
}

void
StateVector::applyZ(Qubit q)
{
    kernels::applyZ(amps_.data(), amps_.size(), std::size_t{1} << q);
}

void
StateVector::applyH(Qubit q)
{
    kernels::applyH(amps_.data(), amps_.size(), std::size_t{1} << q);
}

void
StateVector::applyCX(Qubit control, Qubit target)
{
    kernels::applyCX(amps_.data(), amps_.size(),
                     std::size_t{1} << control,
                     std::size_t{1} << target);
}

void
StateVector::applyCZ(Qubit a, Qubit b)
{
    kernels::applyCZ(amps_.data(), amps_.size(),
                     (std::size_t{1} << a) | (std::size_t{1} << b));
}

void
StateVector::applySwap(Qubit a, Qubit b)
{
    kernels::applySwap(amps_.data(), amps_.size(),
                       std::size_t{1} << a, std::size_t{1} << b);
}

void
StateVector::applyOperation(const Operation& op)
{
    switch (op.kind) {
      case GateKind::ID:
        return;
      case GateKind::X:
        applyX(op.qubits[0]);
        return;
      case GateKind::Z:
        applyZ(op.qubits[0]);
        return;
      case GateKind::H:
        applyH(op.qubits[0]);
        return;
      case GateKind::CX:
        applyCX(op.qubits[0], op.qubits[1]);
        return;
      case GateKind::CZ:
        applyCZ(op.qubits[0], op.qubits[1]);
        return;
      case GateKind::SWAP:
        applySwap(op.qubits[0], op.qubits[1]);
        return;
      case GateKind::CCX: {
        // Standard Toffoli decomposition into H/T/CX.
        const Qubit a = op.qubits[0];
        const Qubit b = op.qubits[1];
        const Qubit c = op.qubits[2];
        applyH(c);
        applyCX(b, c);
        applyMatrix1q(gateMatrix1q(GateKind::TDG, {}), c);
        applyCX(a, c);
        applyMatrix1q(gateMatrix1q(GateKind::T, {}), c);
        applyCX(b, c);
        applyMatrix1q(gateMatrix1q(GateKind::TDG, {}), c);
        applyCX(a, c);
        applyMatrix1q(gateMatrix1q(GateKind::T, {}), b);
        applyMatrix1q(gateMatrix1q(GateKind::T, {}), c);
        applyH(c);
        applyCX(a, b);
        applyMatrix1q(gateMatrix1q(GateKind::T, {}), a);
        applyMatrix1q(gateMatrix1q(GateKind::TDG, {}), b);
        applyCX(a, b);
        return;
      }
      default:
        break;
    }
    if (!isUnitary(op.kind))
        throw std::invalid_argument("StateVector::applyOperation: "
                                    "non-unitary operation");
    applyMatrix1q(gateMatrix1q(op.kind, op.params), op.qubits[0]);
}

std::size_t
StateVector::applyKraus1q(std::span<const Matrix2> kraus, Qubit q,
                          Rng& rng)
{
    if (kraus.empty())
        throw std::invalid_argument("applyKraus1q: empty channel");

    // Probability of branch k is || K_k |psi> ||^2, computed in a
    // streaming pass without materializing the branch state. For a
    // trace-preserving channel on a normalized state the branch
    // norms sum to 1, so the branch draw is a single uniform and
    // norms are only evaluated until the cumulative covers it — a
    // weak channel (identity-dominated first branch) pays one pass,
    // not kraus.size() passes.
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t n = amps_.size();
    const double r = rng.uniform();
    double cumulative = 0.0;
    std::size_t chosen = kraus.size();
    double chosenNorm = 0.0;
    std::size_t bestK = 0;
    double bestNorm = -1.0;
    for (std::size_t k = 0; k < kraus.size(); ++k) {
        const Matrix2& m = kraus[k];
        double p = 0.0;
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                const Amplitude a0 = amps_[i];
                const Amplitude a1 = amps_[i + stride];
                p += std::norm(m[0] * a0 + m[1] * a1);
                p += std::norm(m[2] * a0 + m[3] * a1);
            }
        }
        cumulative += p;
        if (p > bestNorm) {
            bestNorm = p;
            bestK = k;
        }
        if (cumulative > r) {
            chosen = k;
            chosenNorm = p;
            break;
        }
    }
    if (chosen == kraus.size()) {
        // Round-off fall-through: the cumulative branch norms summed
        // to < r (sub-unit trace, or FP drift on a nominally
        // trace-preserving channel). The old behavior defaulted to
        // the *last* branch, which can have ~0 norm and leave a null
        // state; pick the largest-norm branch instead — every branch
        // was already evaluated to get here, so this is free.
        chosen = bestK;
        chosenNorm = bestNorm;
    }

    applyMatrix1q(kraus[chosen], q);
    // The post-apply norm equals the chosen branch norm, so rescale
    // directly instead of re-measuring it — and skip the pass
    // entirely for a branch that preserved the norm (the identity
    // Kraus fast case).
    if (chosenNorm <= 0.0)
        normalize(); // All branches annihilate: preserve the throw.
    else if (std::abs(chosenNorm - 1.0) > 1e-12) {
        const double scale = 1.0 / std::sqrt(chosenNorm);
        for (Amplitude& a : amps_)
            a *= scale;
    }
    return chosen;
}

DampingResult
StateVector::applyAmplitudeDamping(Qubit q, double gamma, Rng& rng)
{
    if (gamma <= 0.0)
        return {};
    const double p1 = probabilityOne(q);
    if (p1 <= 0.0)
        return {}; // Channel acts trivially on |0>.
    const double p_jump = gamma * p1;
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t n = amps_.size();
    if (rng.bernoulli(p_jump)) {
        // Jump K1 = [[0, sqrt(g)], [0, 0]]: move the |1> component
        // to |0>; the branch norm is p_jump, folded into the scale.
        const double scale = 1.0 / std::sqrt(p1);
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                amps_[i] = amps_[i + stride] * scale;
                amps_[i + stride] = 0.0;
            }
        }
        return {true, true};
    }
    // No-jump K0 = diag(1, sqrt(1-g)); branch norm is 1 - p_jump.
    if (1.0 - p_jump <= 0.0) {
        // Degenerate: p_jump rounded to 1 but the draw said no-jump
        // (unreachable with Rng::bernoulli, which short-circuits
        // p >= 1, but guarded so the rescale can never produce inf).
        // The no-jump branch has zero norm; collapse into the only
        // physical outcome, the jump.
        const double scale = 1.0 / std::sqrt(p1);
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                amps_[i] = amps_[i + stride] * scale;
                amps_[i + stride] = 0.0;
            }
        }
        return {true, true};
    }
    const double inv = 1.0 / std::sqrt(1.0 - p_jump);
    const double keep = std::sqrt(1.0 - gamma) * inv;
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            amps_[i] *= inv;
            amps_[i + stride] *= keep;
        }
    }
    return {true, false};
}

DampingResult
StateVector::applyPhaseDamping(Qubit q, double lambda, Rng& rng)
{
    if (lambda <= 0.0)
        return {};
    const double p1 = probabilityOne(q);
    if (p1 <= 0.0)
        return {};
    const double p_jump = lambda * p1;
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t n = amps_.size();
    if (rng.bernoulli(p_jump)) {
        // Jump K1 = diag(0, sqrt(lambda)): project onto |1>.
        const double scale = 1.0 / std::sqrt(p1);
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                amps_[i] = 0.0;
                amps_[i + stride] *= scale;
            }
        }
        return {true, true};
    }
    // No-jump K0 = diag(1, sqrt(1-lambda)).
    if (1.0 - p_jump <= 0.0) {
        // Degenerate: same guard as amplitude damping — collapse
        // into the zero-norm-complement jump outcome (|1> here)
        // rather than rescaling by 1/sqrt(0).
        const double scale = 1.0 / std::sqrt(p1);
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                amps_[i] = 0.0;
                amps_[i + stride] *= scale;
            }
        }
        return {true, true};
    }
    const double inv = 1.0 / std::sqrt(1.0 - p_jump);
    const double keep = std::sqrt(1.0 - lambda) * inv;
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            amps_[i] *= inv;
            amps_[i + stride] *= keep;
        }
    }
    return {true, false};
}

bool
StateVector::measureQubit(Qubit q, Rng& rng)
{
    const double p1 = probabilityOne(q);
    const bool outcome = rng.bernoulli(p1);
    collapseQubit(q, outcome);
    return outcome;
}

void
StateVector::collapseQubit(Qubit q, bool value)
{
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t n = amps_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const bool bit = (i & stride) != 0;
        if (bit != value)
            amps_[i] = 0.0;
    }
    normalize();
}

double
StateVector::norm() const
{
    double total = 0.0;
    for (const Amplitude& a : amps_)
        total += std::norm(a);
    return total;
}

void
StateVector::normalize()
{
    const double total = norm();
    if (total <= 0.0)
        throw std::logic_error("StateVector::normalize: null state");
    const double scale = 1.0 / std::sqrt(total);
    for (Amplitude& a : amps_)
        a *= scale;
}

double
StateVector::probabilityOf(BasisState s) const
{
    if (s >= amps_.size())
        return 0.0;
    return std::norm(amps_[s]);
}

double
StateVector::probabilityOne(Qubit q) const
{
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t n = amps_.size();
    double p = 0.0;
    for (std::size_t base = stride; base < n; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i)
            p += std::norm(amps_[i]);
    }
    return p;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

BasisState
StateVector::sample(Rng& rng) const
{
    // Scale the draw by the total norm (as sampleInto does): on a
    // sub-normalized state an unscaled uniform over-runs the
    // probability mass and biases toward the fall-through last basis
    // state.
    double r = rng.uniform() * norm();
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        r -= std::norm(amps_[i]);
        if (r < 0.0)
            return i;
    }
    return amps_.size() - 1;
}

std::vector<BasisState>
StateVector::sample(Rng& rng, std::size_t shots) const
{
    std::vector<double> cdf;
    std::vector<BasisState> out;
    sampleInto(rng, shots, cdf, out);
    return out;
}

void
StateVector::sampleInto(Rng& rng, std::size_t shots,
                        std::vector<double>& cdf,
                        std::vector<BasisState>& out) const
{
    // Build the cumulative distribution once; binary-search per shot.
    cdf.resize(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        cdf[i] = acc;
    }
    out.clear();
    out.reserve(shots);
    for (std::size_t s = 0; s < shots; ++s) {
        const double r = rng.uniform() * acc;
        const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        out.push_back(static_cast<BasisState>(
            std::min<std::size_t>(it - cdf.begin(), cdf.size() - 1)));
    }
}

Amplitude
StateVector::innerProduct(const StateVector& other) const
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("innerProduct: size mismatch");
    Amplitude acc{0.0, 0.0};
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
StateVector::fidelity(const StateVector& other) const
{
    return std::norm(innerProduct(other));
}

} // namespace qem
