#include "qsim/bitstring.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace qem
{

int
hammingWeight(BasisState s)
{
    return std::popcount(s);
}

int
hammingDistance(BasisState a, BasisState b)
{
    return std::popcount(a ^ b);
}

bool
getBit(BasisState s, unsigned bit)
{
    return (s >> bit) & 1ULL;
}

BasisState
setBit(BasisState s, unsigned bit, bool value)
{
    const BasisState mask = BasisState{1} << bit;
    return value ? (s | mask) : (s & ~mask);
}

BasisState
allOnes(unsigned n)
{
    if (n == 0)
        return 0;
    if (n >= 64)
        return ~BasisState{0};
    return (BasisState{1} << n) - 1;
}

std::string
toBitString(BasisState s, unsigned n)
{
    std::string out(n, '0');
    for (unsigned i = 0; i < n; ++i) {
        if (getBit(s, i))
            out[i] = '1';
    }
    return out;
}

BasisState
fromBitString(const std::string& bits)
{
    if (bits.size() > 64)
        throw std::invalid_argument("bit string longer than 64 bits");
    BasisState s = 0;
    for (unsigned i = 0; i < bits.size(); ++i) {
        if (bits[i] == '1')
            s = setBit(s, i, true);
        else if (bits[i] != '0')
            throw std::invalid_argument("bit string contains non-binary "
                                        "character");
    }
    return s;
}

std::vector<BasisState>
statesByHammingWeight(unsigned n)
{
    if (n > 24)
        throw std::invalid_argument("statesByHammingWeight: n too large "
                                    "to enumerate");
    std::vector<BasisState> states(size_t{1} << n);
    for (BasisState s = 0; s < states.size(); ++s)
        states[s] = s;
    std::stable_sort(states.begin(), states.end(),
                     [](BasisState a, BasisState b) {
                         const int wa = hammingWeight(a);
                         const int wb = hammingWeight(b);
                         if (wa != wb)
                             return wa < wb;
                         return a < b;
                     });
    return states;
}

std::vector<BasisState>
statesOfWeight(unsigned n, int weight)
{
    std::vector<BasisState> out;
    const BasisState limit = BasisState{1} << n;
    for (BasisState s = 0; s < limit; ++s) {
        if (hammingWeight(s) == weight)
            out.push_back(s);
    }
    return out;
}

} // namespace qem
