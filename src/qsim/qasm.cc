#include "qsim/qasm.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace qem
{

namespace
{

/** Gates emitted/accepted by name with plain operand lists. */
const std::map<std::string, GateKind> namedGates = {
    {"id", GateKind::ID},   {"x", GateKind::X},
    {"y", GateKind::Y},     {"z", GateKind::Z},
    {"h", GateKind::H},     {"s", GateKind::S},
    {"sdg", GateKind::SDG}, {"t", GateKind::T},
    {"tdg", GateKind::TDG}, {"sx", GateKind::SX},
    {"rx", GateKind::RX},   {"ry", GateKind::RY},
    {"rz", GateKind::RZ},   {"p", GateKind::P},
    {"u2", GateKind::U2},   {"u3", GateKind::U3},
    {"cx", GateKind::CX},   {"cz", GateKind::CZ},
    {"swap", GateKind::SWAP}, {"ccx", GateKind::CCX},
    {"delay", GateKind::DELAY},
};

[[noreturn]] void
parseError(std::size_t line_no, const std::string& what)
{
    std::ostringstream os;
    os << "fromQasm: line " << line_no << ": " << what;
    throw std::invalid_argument(os.str());
}

/** Parse "q[3]" -> 3 (register name validated by caller). */
unsigned
parseIndex(const std::string& token, const std::string& reg,
           std::size_t line_no)
{
    const std::string prefix = reg + "[";
    if (token.size() < prefix.size() + 2 ||
        token.compare(0, prefix.size(), prefix) != 0 ||
        token.back() != ']') {
        parseError(line_no, "expected " + reg + "[i], got '" + token +
                            "'");
    }
    try {
        return static_cast<unsigned>(std::stoul(
            token.substr(prefix.size(),
                         token.size() - prefix.size() - 1)));
    } catch (...) {
        parseError(line_no, "bad register index in '" + token + "'");
    }
}

/** Split "a, b ,c" on commas and trim whitespace. */
std::vector<std::string>
splitArgs(const std::string& text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

std::string
toQasm(const Circuit& circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";
    os << "creg c[" << circuit.numClbits() << "];\n";
    for (const Operation& op : circuit.ops()) {
        switch (op.kind) {
          case GateKind::BARRIER:
            os << "barrier q;\n";
            continue;
          case GateKind::MEASURE:
            os << "measure q[" << op.qubits[0] << "] -> c["
               << op.cbit << "];\n";
            continue;
          case GateKind::RESET:
            os << "reset q[" << op.qubits[0] << "];\n";
            continue;
          default:
            break;
        }
        os << gateName(op.kind);
        if (!op.params.empty()) {
            os << "(";
            for (std::size_t i = 0; i < op.params.size(); ++i)
                os << (i ? "," : "") << op.params[i];
            os << ")";
        }
        for (std::size_t i = 0; i < op.qubits.size(); ++i)
            os << (i ? ", q[" : " q[") << op.qubits[i] << "]";
        os << ";\n";
    }
    return os.str();
}

Circuit
fromQasm(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    int num_qubits = -1;
    int num_clbits = -1;
    std::vector<Circuit> holder; // Deferred construction.

    auto circuit = [&]() -> Circuit& {
        if (holder.empty())
            parseError(line_no, "statement before qreg declaration");
        return holder.front();
    };

    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and surrounding whitespace.
        const std::size_t comment = line.find("//");
        if (comment != std::string::npos)
            line.erase(comment);
        std::size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            continue;
        std::size_t end = line.find_last_not_of(" \t\r");
        line = line.substr(begin, end - begin + 1);
        if (line.empty())
            continue;
        if (line.back() != ';')
            parseError(line_no, "missing ';'");
        line.pop_back();

        if (line.rfind("OPENQASM", 0) == 0 ||
            line.rfind("include", 0) == 0) {
            continue;
        }
        if (line.rfind("qreg", 0) == 0) {
            num_qubits = static_cast<int>(
                parseIndex(line.substr(5), "q", line_no));
            if (num_clbits >= 0 || !holder.empty())
                parseError(line_no, "qreg after creg/statements");
            continue;
        }
        if (line.rfind("creg", 0) == 0) {
            if (num_qubits < 0)
                parseError(line_no, "creg before qreg");
            num_clbits = static_cast<int>(
                parseIndex(line.substr(5), "c", line_no));
            holder.emplace_back(static_cast<unsigned>(num_qubits),
                                num_clbits);
            continue;
        }
        if (line.rfind("barrier", 0) == 0) {
            circuit().barrier();
            continue;
        }
        if (line.rfind("measure", 0) == 0) {
            const std::size_t arrow = line.find("->");
            if (arrow == std::string::npos)
                parseError(line_no, "measure without '->'");
            const auto lhs = splitArgs(line.substr(7,
                                                   arrow - 7));
            const auto rhs = splitArgs(line.substr(arrow + 2));
            if (lhs.size() != 1 || rhs.size() != 1)
                parseError(line_no, "measure takes one qubit and "
                                    "one clbit");
            circuit().measure(parseIndex(lhs[0], "q", line_no),
                              parseIndex(rhs[0], "c", line_no));
            continue;
        }
        if (line.rfind("reset", 0) == 0) {
            circuit().reset(parseIndex(
                splitArgs(line.substr(5)).at(0), "q", line_no));
            continue;
        }

        // Generic gate call: name[(params)] operands.
        std::size_t name_end = 0;
        while (name_end < line.size() &&
               (std::isalnum(static_cast<unsigned char>(
                    line[name_end])) ||
                line[name_end] == '_')) {
            ++name_end;
        }
        const std::string name = line.substr(0, name_end);
        auto it = namedGates.find(name);
        if (it == namedGates.end())
            parseError(line_no, "unknown gate '" + name + "'");

        std::vector<double> params;
        std::size_t rest = name_end;
        if (rest < line.size() && line[rest] == '(') {
            const std::size_t close = line.find(')', rest);
            if (close == std::string::npos)
                parseError(line_no, "unterminated parameter list");
            for (const std::string& p : splitArgs(
                     line.substr(rest + 1, close - rest - 1))) {
                try {
                    params.push_back(std::stod(p));
                } catch (...) {
                    parseError(line_no, "bad parameter '" + p + "'");
                }
            }
            rest = close + 1;
        }

        Operation op;
        op.kind = it->second;
        op.params = std::move(params);
        for (const std::string& q : splitArgs(line.substr(rest)))
            op.qubits.push_back(parseIndex(q, "q", line_no));
        try {
            circuit().append(std::move(op));
        } catch (const std::exception& e) {
            parseError(line_no, e.what());
        }
    }

    if (holder.empty())
        throw std::invalid_argument("fromQasm: no qreg/creg "
                                    "declarations found");
    return holder.front();
}

} // namespace qem
