/**
 * @file
 * Seedable random number generator used by every stochastic component.
 *
 * All randomness in InvertQ flows through this class so that every
 * experiment is reproducible from a single seed. The generator is a
 * thin convenience wrapper around std::mt19937_64.
 */

#ifndef QEM_QSIM_RNG_HH
#define QEM_QSIM_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace qem
{

/**
 * Reproducible pseudo-random source.
 *
 * Substreams created with split() are deterministic functions of the
 * parent's seed and split index, so fan-out experiments (one stream
 * per trajectory, per mode, per benchmark) stay reproducible even if
 * the order of consumption changes.
 */
class Rng
{
  public:
    /** Construct from an explicit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** True with probability @p p (p <= 0 never, p >= 1 always). */
    bool bernoulli(double p);

    /** Uniform integer in [0, n). @p n must be nonzero. */
    std::uint64_t index(std::uint64_t n);

    /** Raw 64 random bits. */
    std::uint64_t bits();

    /** Normal (Gaussian) draw with the given mean and sigma. */
    double normal(double mean = 0.0, double sigma = 1.0);

    /**
     * Sample an index from an unnormalized weight vector.
     * Weights must be nonnegative with a positive sum.
     */
    std::size_t discrete(const std::vector<double>& weights);

    /**
     * Derive an independent child stream. Deterministic in
     * (parent seed, number of prior splits).
     */
    Rng split();

    /**
     * Derive the child stream keyed by an explicit @p index rather
     * than call order: splitAt(i) yields the same stream no matter
     * how many splits/draws happened before, so concurrent callers
     * can derive substreams in any order. Does not perturb this
     * generator (const), and is domain-separated from split() — the
     * two families never collide.
     */
    Rng splitAt(std::uint64_t index) const;

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
    std::uint64_t splitCount_ = 0;
};

} // namespace qem

#endif // QEM_QSIM_RNG_HH
