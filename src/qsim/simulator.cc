#include "qsim/simulator.hh"

#include <stdexcept>
#include <utility>

#include "qsim/bitstring.hh"

namespace qem
{

IdealSimulator::IdealSimulator(unsigned num_qubits, std::uint64_t seed)
    : numQubits_(num_qubits), rng_(seed)
{
}

StateVector
IdealSimulator::stateOf(const Circuit& circuit) const
{
    if (circuit.numQubits() > numQubits_)
        throw std::invalid_argument("IdealSimulator: circuit wider than "
                                    "the backend register");
    StateVector state(circuit.numQubits());
    for (const Operation& op : circuit.ops()) {
        switch (op.kind) {
          case GateKind::MEASURE:
          case GateKind::BARRIER:
          case GateKind::DELAY:
            break;
          case GateKind::RESET:
            throw std::logic_error("IdealSimulator::stateOf: RESET not "
                                   "supported in pre-measurement "
                                   "evolution");
          default:
            state.applyOperation(op);
            break;
        }
    }
    return state;
}

Counts
IdealSimulator::run(const Circuit& circuit, std::size_t shots)
{
    return run(circuit, shots, rng_);
}

Counts
IdealSimulator::run(const Circuit& circuit, std::size_t shots,
                    Rng& rng) const
{
    if (!circuit.hasMeasurements())
        throw std::invalid_argument("IdealSimulator::run: circuit has "
                                    "no measurements");
    const StateVector state = stateOf(circuit);
    Counts counts(circuit.numClbits());
    for (BasisState full : state.sample(rng, shots))
        counts.add(circuit.classicalOutcome(full));
    return counts;
}

namespace
{

/** Ideal circuit lowered to (final state, measurement projection). */
class CompiledIdealRun final : public ShardedBackend::CompiledRun
{
  public:
    CompiledIdealRun(StateVector state, unsigned num_clbits,
                     std::vector<std::pair<Qubit, Clbit>> outcome_map)
        : state_(std::move(state)),
          numClbits_(num_clbits),
          outcomeMap_(std::move(outcome_map))
    {
    }

    Counts run(std::size_t shots, Rng& rng) const override
    {
        std::vector<double> cdf;
        std::vector<BasisState> samples;
        state_.sampleInto(rng, shots, cdf, samples);
        Counts counts(numClbits_);
        for (BasisState full : samples) {
            BasisState out = 0;
            for (const auto& [qubit, cbit] : outcomeMap_)
                out = setBit(out, cbit, getBit(full, qubit));
            counts.add(out);
        }
        return counts;
    }

  private:
    StateVector state_;
    unsigned numClbits_;
    std::vector<std::pair<Qubit, Clbit>> outcomeMap_;
};

} // namespace

std::shared_ptr<const ShardedBackend::CompiledRun>
IdealSimulator::compile(const Circuit& circuit) const
{
    if (!circuit.hasMeasurements())
        throw std::invalid_argument("IdealSimulator::compile: circuit "
                                    "has no measurements");
    std::vector<std::pair<Qubit, Clbit>> outcomeMap;
    for (const Operation& op : circuit.ops()) {
        if (op.kind == GateKind::MEASURE)
            outcomeMap.emplace_back(op.qubits[0], op.cbit);
    }
    return std::make_shared<CompiledIdealRun>(stateOf(circuit),
                                              circuit.numClbits(),
                                              std::move(outcomeMap));
}

} // namespace qem
