#include "qsim/simulator.hh"

#include <stdexcept>

namespace qem
{

IdealSimulator::IdealSimulator(unsigned num_qubits, std::uint64_t seed)
    : numQubits_(num_qubits), rng_(seed)
{
}

StateVector
IdealSimulator::stateOf(const Circuit& circuit) const
{
    if (circuit.numQubits() > numQubits_)
        throw std::invalid_argument("IdealSimulator: circuit wider than "
                                    "the backend register");
    StateVector state(circuit.numQubits());
    for (const Operation& op : circuit.ops()) {
        switch (op.kind) {
          case GateKind::MEASURE:
          case GateKind::BARRIER:
          case GateKind::DELAY:
            break;
          case GateKind::RESET:
            throw std::logic_error("IdealSimulator::stateOf: RESET not "
                                   "supported in pre-measurement "
                                   "evolution");
          default:
            state.applyOperation(op);
            break;
        }
    }
    return state;
}

Counts
IdealSimulator::run(const Circuit& circuit, std::size_t shots)
{
    return run(circuit, shots, rng_);
}

Counts
IdealSimulator::run(const Circuit& circuit, std::size_t shots,
                    Rng& rng) const
{
    if (!circuit.hasMeasurements())
        throw std::invalid_argument("IdealSimulator::run: circuit has "
                                    "no measurements");
    const StateVector state = stateOf(circuit);
    Counts counts(circuit.numClbits());
    for (BasisState full : state.sample(rng, shots))
        counts.add(circuit.classicalOutcome(full));
    return counts;
}

} // namespace qem
