#include "qsim/gate.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qem
{

namespace
{

constexpr Amplitude I{0.0, 1.0};

Amplitude
expi(double theta)
{
    return {std::cos(theta), std::sin(theta)};
}

} // namespace

const char*
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::ID: return "id";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::SDG: return "sdg";
      case GateKind::T: return "t";
      case GateKind::TDG: return "tdg";
      case GateKind::SX: return "sx";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::P: return "p";
      case GateKind::U2: return "u2";
      case GateKind::U3: return "u3";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::SWAP: return "swap";
      case GateKind::CCX: return "ccx";
      case GateKind::MEASURE: return "measure";
      case GateKind::RESET: return "reset";
      case GateKind::BARRIER: return "barrier";
      case GateKind::DELAY: return "delay";
    }
    return "?";
}

unsigned
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return 2;
      case GateKind::CCX:
        return 3;
      case GateKind::BARRIER:
        return 0;
      default:
        return 1;
    }
}

unsigned
gateParamCount(GateKind kind)
{
    switch (kind) {
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::P:
      case GateKind::DELAY:
        return 1;
      case GateKind::U2:
        return 2;
      case GateKind::U3:
        return 3;
      default:
        return 0;
    }
}

bool
isUnitary(GateKind kind)
{
    switch (kind) {
      case GateKind::MEASURE:
      case GateKind::RESET:
      case GateKind::BARRIER:
      case GateKind::DELAY:
        return false;
      default:
        return true;
    }
}

Matrix2
gateMatrix1q(GateKind kind, const std::vector<double>& params)
{
    if (params.size() != gateParamCount(kind))
        throw std::invalid_argument("gateMatrix1q: wrong parameter count "
                                    "for gate " + std::string(gateName(kind)));
    const double s2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::ID:
        return {1, 0, 0, 1};
      case GateKind::X:
        return {0, 1, 1, 0};
      case GateKind::Y:
        return {0, -I, I, 0};
      case GateKind::Z:
        return {1, 0, 0, -1};
      case GateKind::H:
        return {s2, s2, s2, -s2};
      case GateKind::S:
        return {1, 0, 0, I};
      case GateKind::SDG:
        return {1, 0, 0, -I};
      case GateKind::T:
        return {1, 0, 0, expi(M_PI / 4)};
      case GateKind::TDG:
        return {1, 0, 0, expi(-M_PI / 4)};
      case GateKind::SX:
        return {Amplitude(0.5, 0.5), Amplitude(0.5, -0.5),
                Amplitude(0.5, -0.5), Amplitude(0.5, 0.5)};
      case GateKind::RX: {
        const double t = params[0] / 2;
        return {std::cos(t), -I * std::sin(t),
                -I * std::sin(t), std::cos(t)};
      }
      case GateKind::RY: {
        const double t = params[0] / 2;
        return {std::cos(t), -std::sin(t), std::sin(t), std::cos(t)};
      }
      case GateKind::RZ: {
        const double t = params[0] / 2;
        return {expi(-t), 0, 0, expi(t)};
      }
      case GateKind::P:
        return {1, 0, 0, expi(params[0])};
      case GateKind::U2: {
        const double phi = params[0];
        const double lam = params[1];
        return {s2, -s2 * expi(lam), s2 * expi(phi),
                s2 * expi(phi + lam)};
      }
      case GateKind::U3: {
        const double t = params[0] / 2;
        const double phi = params[1];
        const double lam = params[2];
        return {std::cos(t), -expi(lam) * std::sin(t),
                expi(phi) * std::sin(t), expi(phi + lam) * std::cos(t)};
      }
      default:
        throw std::invalid_argument("gateMatrix1q: not a single-qubit "
                                    "unitary: " +
                                    std::string(gateName(kind)));
    }
}

Matrix4
gateMatrix2q(GateKind kind)
{
    // Basis ordering: |q1 q0> = |00>, |01>, |10>, |11> where the first
    // operand of the Operation maps to q0. For CX the control is the
    // first operand, i.e. bit 0 of the index.
    switch (kind) {
      case GateKind::CX:
        return {1, 0, 0, 0,
                0, 0, 0, 1,
                0, 0, 1, 0,
                0, 1, 0, 0};
      case GateKind::CZ:
        return {1, 0, 0, 0,
                0, 1, 0, 0,
                0, 0, 1, 0,
                0, 0, 0, -1};
      case GateKind::SWAP:
        return {1, 0, 0, 0,
                0, 0, 1, 0,
                0, 1, 0, 0,
                0, 0, 0, 1};
      default:
        throw std::invalid_argument("gateMatrix2q: not a two-qubit "
                                    "unitary: " +
                                    std::string(gateName(kind)));
    }
}

Matrix2
dagger(const Matrix2& m)
{
    return {std::conj(m[0]), std::conj(m[2]),
            std::conj(m[1]), std::conj(m[3])};
}

Matrix2
matmul(const Matrix2& a, const Matrix2& b)
{
    return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Matrix4
matmul(const Matrix4& a, const Matrix4& b)
{
    Matrix4 out{};
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            Amplitude acc{0.0, 0.0};
            for (std::size_t k = 0; k < 4; ++k)
                acc += a[r * 4 + k] * b[k * 4 + c];
            out[r * 4 + c] = acc;
        }
    }
    return out;
}

Matrix4
embed1qIn2q(const Matrix2& m, unsigned bit)
{
    if (bit > 1)
        throw std::invalid_argument("embed1qIn2q: bit must be 0 or 1");
    Matrix4 out{};
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            if (bit == 0) {
                // U on index bit 0, identity on bit 1.
                if ((r >> 1) == (c >> 1))
                    out[r * 4 + c] = m[(r & 1) * 2 + (c & 1)];
            } else {
                if ((r & 1) == (c & 1))
                    out[r * 4 + c] = m[(r >> 1) * 2 + (c >> 1)];
            }
        }
    }
    return out;
}

Matrix4
swapOperandOrder(const Matrix4& m)
{
    auto sw = [](std::size_t i) {
        return ((i & 1) << 1) | ((i >> 1) & 1);
    };
    Matrix4 out{};
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            out[r * 4 + c] = m[sw(r) * 4 + sw(c)];
    return out;
}

bool
Operation::touches(Qubit q) const
{
    for (Qubit mine : qubits) {
        if (mine == q)
            return true;
    }
    return false;
}

std::string
Operation::toString() const
{
    std::ostringstream os;
    os << gateName(kind);
    if (!params.empty()) {
        os << "(";
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (i)
                os << ", ";
            os << params[i];
        }
        os << ")";
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? ", q" : " q") << qubits[i];
    if (kind == GateKind::MEASURE)
        os << " -> c" << cbit;
    return os.str();
}

GateKind
inverseKind(GateKind kind)
{
    switch (kind) {
      case GateKind::S: return GateKind::SDG;
      case GateKind::SDG: return GateKind::S;
      case GateKind::T: return GateKind::TDG;
      case GateKind::TDG: return GateKind::T;
      default: return kind;
    }
}

} // namespace qem
