#include "qsim/circuit.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

Circuit::Circuit(unsigned num_qubits, int num_clbits)
    : numQubits_(num_qubits),
      numClbits_(num_clbits < 0 ? num_qubits
                                : static_cast<unsigned>(num_clbits))
{
    if (num_qubits == 0 || num_qubits > 64)
        throw std::invalid_argument("Circuit: qubit count must be in "
                                    "[1, 64]");
}

void
Circuit::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("Circuit: qubit index out of range");
}

void
Circuit::checkClbit(Clbit c) const
{
    if (c >= numClbits_)
        throw std::out_of_range("Circuit: classical bit index out of "
                                "range");
}

Circuit&
Circuit::append(Operation op)
{
    if (op.kind != GateKind::BARRIER) {
        if (op.qubits.size() != gateArity(op.kind))
            throw std::invalid_argument("Circuit::append: wrong operand "
                                        "count for gate");
        for (Qubit q : op.qubits)
            checkQubit(q);
        for (std::size_t i = 0; i < op.qubits.size(); ++i) {
            for (std::size_t j = i + 1; j < op.qubits.size(); ++j) {
                if (op.qubits[i] == op.qubits[j])
                    throw std::invalid_argument("Circuit::append: "
                                                "duplicate qubit operand");
            }
        }
    }
    if (op.params.size() != gateParamCount(op.kind))
        throw std::invalid_argument("Circuit::append: wrong parameter "
                                    "count for gate");
    if (op.kind == GateKind::MEASURE)
        checkClbit(op.cbit);
    ops_.push_back(std::move(op));
    return *this;
}

Circuit& Circuit::id(Qubit q) { return append({GateKind::ID, {q}, {}}); }
Circuit& Circuit::x(Qubit q) { return append({GateKind::X, {q}, {}}); }
Circuit& Circuit::y(Qubit q) { return append({GateKind::Y, {q}, {}}); }
Circuit& Circuit::z(Qubit q) { return append({GateKind::Z, {q}, {}}); }
Circuit& Circuit::h(Qubit q) { return append({GateKind::H, {q}, {}}); }
Circuit& Circuit::s(Qubit q) { return append({GateKind::S, {q}, {}}); }
Circuit& Circuit::sdg(Qubit q) { return append({GateKind::SDG, {q}, {}}); }
Circuit& Circuit::t(Qubit q) { return append({GateKind::T, {q}, {}}); }
Circuit& Circuit::tdg(Qubit q) { return append({GateKind::TDG, {q}, {}}); }
Circuit& Circuit::sx(Qubit q) { return append({GateKind::SX, {q}, {}}); }

Circuit&
Circuit::rx(double theta, Qubit q)
{
    return append({GateKind::RX, {q}, {theta}});
}

Circuit&
Circuit::ry(double theta, Qubit q)
{
    return append({GateKind::RY, {q}, {theta}});
}

Circuit&
Circuit::rz(double theta, Qubit q)
{
    return append({GateKind::RZ, {q}, {theta}});
}

Circuit&
Circuit::p(double lambda, Qubit q)
{
    return append({GateKind::P, {q}, {lambda}});
}

Circuit&
Circuit::u2(double phi, double lambda, Qubit q)
{
    return append({GateKind::U2, {q}, {phi, lambda}});
}

Circuit&
Circuit::u3(double theta, double phi, double lambda, Qubit q)
{
    return append({GateKind::U3, {q}, {theta, phi, lambda}});
}

Circuit&
Circuit::cx(Qubit control, Qubit target)
{
    return append({GateKind::CX, {control, target}, {}});
}

Circuit&
Circuit::cz(Qubit a, Qubit b)
{
    return append({GateKind::CZ, {a, b}, {}});
}

Circuit&
Circuit::swap(Qubit a, Qubit b)
{
    return append({GateKind::SWAP, {a, b}, {}});
}

Circuit&
Circuit::ccx(Qubit c0, Qubit c1, Qubit target)
{
    return append({GateKind::CCX, {c0, c1, target}, {}});
}

Circuit&
Circuit::barrier()
{
    return append({GateKind::BARRIER, {}, {}});
}

Circuit&
Circuit::reset(Qubit q)
{
    return append({GateKind::RESET, {q}, {}});
}

Circuit&
Circuit::delay(double nanoseconds, Qubit q)
{
    return append({GateKind::DELAY, {q}, {nanoseconds}});
}

Circuit&
Circuit::measure(Qubit q, Clbit c)
{
    Operation op{GateKind::MEASURE, {q}, {}};
    op.cbit = c;
    return append(std::move(op));
}

Circuit&
Circuit::measureAll()
{
    if (numClbits_ < numQubits_)
        throw std::logic_error("Circuit::measureAll: classical register "
                               "too small");
    for (Qubit q = 0; q < numQubits_; ++q)
        measure(q, q);
    return *this;
}

Circuit&
Circuit::compose(const Circuit& other)
{
    if (other.numQubits_ > numQubits_ || other.numClbits_ > numClbits_)
        throw std::invalid_argument("Circuit::compose: other circuit has "
                                    "larger registers");
    for (const Operation& op : other.ops_)
        append(op);
    return *this;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_, static_cast<int>(numClbits_));
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        Operation op = *it;
        switch (op.kind) {
          case GateKind::MEASURE:
          case GateKind::RESET:
            throw std::logic_error("Circuit::inverse: circuit is not "
                                   "unitary");
          case GateKind::BARRIER:
          case GateKind::DELAY:
            break;
          case GateKind::RX:
          case GateKind::RY:
          case GateKind::RZ:
          case GateKind::P:
            op.params[0] = -op.params[0];
            break;
          case GateKind::U2:
            // U2(phi, lambda)^-1 = U3(-pi/2, -lambda, -phi).
            op.kind = GateKind::U3;
            op.params = {-M_PI / 2, -op.params[1], -op.params[0]};
            break;
          case GateKind::U3:
            // U3(t, phi, lambda)^-1 = U3(-t, -lambda, -phi).
            op.params = {-op.params[0], -op.params[2], -op.params[1]};
            break;
          case GateKind::SX:
            // SX^-1 = RX(-pi/2) up to global phase.
            op.kind = GateKind::RX;
            op.params = {-M_PI / 2};
            break;
          default:
            op.kind = inverseKind(op.kind);
            break;
        }
        inv.append(std::move(op));
    }
    return inv;
}

Circuit
Circuit::remapQubits(const std::vector<Qubit>& layout,
                     unsigned physical_qubits) const
{
    if (layout.size() != numQubits_)
        throw std::invalid_argument("Circuit::remapQubits: layout size "
                                    "mismatch");
    for (Qubit phys : layout) {
        if (phys >= physical_qubits)
            throw std::invalid_argument("Circuit::remapQubits: layout "
                                        "entry out of range");
    }
    Circuit out(physical_qubits, static_cast<int>(numClbits_));
    for (Operation op : ops_) {
        for (Qubit& q : op.qubits)
            q = layout[q];
        out.append(std::move(op));
    }
    return out;
}

std::size_t
Circuit::countOps(GateKind kind) const
{
    std::size_t n = 0;
    for (const Operation& op : ops_) {
        if (op.kind == kind)
            ++n;
    }
    return n;
}

std::size_t
Circuit::twoQubitGateCount() const
{
    std::size_t n = 0;
    for (const Operation& op : ops_) {
        if (isUnitary(op.kind) && gateArity(op.kind) == 2)
            ++n;
    }
    return n;
}

std::size_t
Circuit::depth() const
{
    std::vector<std::size_t> level(numQubits_, 0);
    for (const Operation& op : ops_) {
        if (op.kind == GateKind::BARRIER || op.kind == GateKind::DELAY)
            continue;
        std::size_t start = 0;
        for (Qubit q : op.qubits)
            start = std::max(start, level[q]);
        for (Qubit q : op.qubits)
            level[q] = start + 1;
    }
    return *std::max_element(level.begin(), level.end());
}

bool
Circuit::hasMeasurements() const
{
    return countOps(GateKind::MEASURE) > 0;
}

std::vector<Qubit>
Circuit::measuredQubits() const
{
    std::map<Clbit, Qubit> by_clbit;
    for (const Operation& op : ops_) {
        if (op.kind == GateKind::MEASURE)
            by_clbit[op.cbit] = op.qubits[0];
    }
    std::vector<Qubit> out;
    out.reserve(by_clbit.size());
    for (const auto& [cbit, qubit] : by_clbit)
        out.push_back(qubit);
    return out;
}

BasisState
Circuit::classicalOutcome(BasisState full_state) const
{
    BasisState out = 0;
    for (const Operation& op : ops_) {
        if (op.kind == GateKind::MEASURE)
            out = setBit(out, op.cbit, getBit(full_state, op.qubits[0]));
    }
    return out;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << numQubits_ << " qubits, " << numClbits_
       << " clbits)\n";
    for (const Operation& op : ops_)
        os << "  " << op.toString() << "\n";
    return os.str();
}

} // namespace qem
