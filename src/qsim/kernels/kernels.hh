/**
 * @file
 * Amplitude-update kernels behind the dense state vector.
 *
 * Every hot loop of StateVector — the generic 1q/2q matrix applies,
 * the named fast paths (X/Z/H/CX/CZ/SWAP) — routes through one of
 * the implementations registered here. The portable scalar kernels
 * (scalar.cc) are the semantic reference; the AVX2 kernels
 * (avx2.cc, built when the QEM_SIMD CMake option finds -mavx2)
 * vectorize the same loops two complex amplitudes at a time.
 *
 * Bit-identity contract: the SIMD kernels are written WITHOUT fused
 * multiply-add (plain mul + addsub, matching the evaluation order
 * of std::complex arithmetic) and the AVX2 translation unit is
 * compiled without -mfma, so every implementation produces
 * bit-identical amplitudes. Switching kernels can therefore never
 * move a sampled count or invalidate an exact-counts golden; the
 * fuzz suite in tests/test_kernels.cc pins this.
 *
 * Selection: the fastest implementation the CPU supports is chosen
 * on first use (runtime dispatch — one binary serves AVX2 and
 * pre-AVX2 machines). The QEM_KERNELS environment variable
 * ("scalar", "avx2") or setActive() overrides the choice; tests and
 * benchmarks use this to compare implementations in-process.
 * setActive() is not synchronized against concurrently executing
 * kernels — switch only while no state vector is being evolved.
 */

#ifndef QEM_QSIM_KERNELS_KERNELS_HH
#define QEM_QSIM_KERNELS_KERNELS_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "qsim/gate.hh"
#include "qsim/types.hh"

namespace qem::kernels
{

/**
 * One kernel implementation: a named table of amplitude-update
 * routines over a raw 2^n amplitude array.
 *
 * Strides are powers of two (1 << qubit). apply2q's s0/s1 are the
 * strides of the qubits mapped to matrix index bits 0/1; the
 * traversal visits each aligned 4-amplitude cell once, walking the
 * smaller stride contiguously (cache-blocked for large strides).
 */
struct KernelTable
{
    const char* name;
    void (*apply1q)(Amplitude* amps, std::size_t n,
                    std::size_t stride, const Matrix2& m);
    void (*apply2q)(Amplitude* amps, std::size_t n, std::size_t s0,
                    std::size_t s1, const Matrix4& m);
    void (*applyH)(Amplitude* amps, std::size_t n,
                   std::size_t stride);
    void (*applyX)(Amplitude* amps, std::size_t n,
                   std::size_t stride);
    void (*applyZ)(Amplitude* amps, std::size_t n,
                   std::size_t stride);
    void (*applyCX)(Amplitude* amps, std::size_t n, std::size_t cb,
                    std::size_t tb);
    void (*applyCZ)(Amplitude* amps, std::size_t n,
                    std::size_t mask);
    void (*applySwap)(Amplitude* amps, std::size_t n,
                      std::size_t ab, std::size_t bb);
};

/** Kernel implementations, in dispatch preference order. */
enum class Impl
{
    Scalar,
    Avx2,
};

/** Portable reference implementation (always available). */
const KernelTable& scalarTable();

/** The implementation currently serving StateVector. */
Impl active();

/**
 * Force an implementation. Returns false (and leaves the active
 * table unchanged) when @p impl was compiled out or the CPU lacks
 * the ISA. Not synchronized against running kernels.
 */
bool setActive(Impl impl);

/** Is @p impl compiled in and supported by this CPU? */
bool available(Impl impl);

/** Every available implementation, scalar first. */
std::vector<Impl> availableImpls();

/** Human-readable implementation name ("scalar", "avx2"). */
const char* name(Impl impl);

namespace detail
{

extern std::atomic<const KernelTable*> g_active;

/** Resolve the active table, selecting the default on first use. */
const KernelTable& resolveActive();

inline const KernelTable&
activeTable()
{
    const KernelTable* t =
        g_active.load(std::memory_order_acquire);
    return t ? *t : resolveActive();
}

} // namespace detail

/** @name Hot-path wrappers over the active implementation. */
/// @{
inline void
apply1q(Amplitude* amps, std::size_t n, std::size_t stride,
        const Matrix2& m)
{
    detail::activeTable().apply1q(amps, n, stride, m);
}

inline void
apply2q(Amplitude* amps, std::size_t n, std::size_t s0,
        std::size_t s1, const Matrix4& m)
{
    detail::activeTable().apply2q(amps, n, s0, s1, m);
}

inline void
applyH(Amplitude* amps, std::size_t n, std::size_t stride)
{
    detail::activeTable().applyH(amps, n, stride);
}

inline void
applyX(Amplitude* amps, std::size_t n, std::size_t stride)
{
    detail::activeTable().applyX(amps, n, stride);
}

inline void
applyZ(Amplitude* amps, std::size_t n, std::size_t stride)
{
    detail::activeTable().applyZ(amps, n, stride);
}

inline void
applyCX(Amplitude* amps, std::size_t n, std::size_t cb,
        std::size_t tb)
{
    detail::activeTable().applyCX(amps, n, cb, tb);
}

inline void
applyCZ(Amplitude* amps, std::size_t n, std::size_t mask)
{
    detail::activeTable().applyCZ(amps, n, mask);
}

inline void
applySwap(Amplitude* amps, std::size_t n, std::size_t ab,
          std::size_t bb)
{
    detail::activeTable().applySwap(amps, n, ab, bb);
}
/// @}

} // namespace qem::kernels

#endif // QEM_QSIM_KERNELS_KERNELS_HH
