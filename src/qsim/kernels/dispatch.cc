/**
 * @file
 * Runtime kernel selection.
 *
 * One binary serves every machine: the AVX2 table is picked on first
 * use when (a) it was compiled in (QEM_SIMD / QEM_KERNELS_AVX2) and
 * (b) the CPU reports the ISA. The QEM_KERNELS environment variable
 * forces a specific implementation ("scalar" or "avx2") for A/B
 * comparisons and the no-SIMD CI leg; an unavailable forced choice
 * falls back to the default with no error (the fuzz suite proves the
 * implementations are bit-identical, so the fallback is safe).
 */

#include <cstdlib>
#include <cstring>

#include "qsim/kernels/kernels.hh"

namespace qem::kernels
{

#if defined(QEM_KERNELS_AVX2)
const KernelTable& avx2Table();
#endif

namespace detail
{

std::atomic<const KernelTable*> g_active{nullptr};

namespace
{

bool
cpuHasAvx2()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

const KernelTable*
tableFor(Impl impl)
{
    switch (impl) {
    case Impl::Scalar:
        return &scalarTable();
    case Impl::Avx2:
#if defined(QEM_KERNELS_AVX2)
        if (cpuHasAvx2())
            return &avx2Table();
#endif
        return nullptr;
    }
    return nullptr;
}

const KernelTable*
defaultTable()
{
    if (const char* forced = std::getenv("QEM_KERNELS")) {
        if (std::strcmp(forced, "scalar") == 0)
            return &scalarTable();
        if (std::strcmp(forced, "avx2") == 0) {
            if (const KernelTable* t = tableFor(Impl::Avx2))
                return t;
        }
    }
    if (const KernelTable* t = tableFor(Impl::Avx2))
        return t;
    return &scalarTable();
}

} // namespace

const KernelTable&
resolveActive()
{
    const KernelTable* chosen = defaultTable();
    const KernelTable* expected = nullptr;
    // Another thread may have raced us; either winner is the same
    // deterministic choice.
    g_active.compare_exchange_strong(expected, chosen,
                                     std::memory_order_acq_rel);
    return *g_active.load(std::memory_order_acquire);
}

} // namespace detail

Impl
active()
{
    const KernelTable& t = detail::activeTable();
#if defined(QEM_KERNELS_AVX2)
    if (&t == &avx2Table())
        return Impl::Avx2;
#endif
    (void)t;
    return Impl::Scalar;
}

bool
setActive(Impl impl)
{
    const KernelTable* t = detail::tableFor(impl);
    if (t == nullptr)
        return false;
    detail::g_active.store(t, std::memory_order_release);
    return true;
}

bool
available(Impl impl)
{
    return detail::tableFor(impl) != nullptr;
}

std::vector<Impl>
availableImpls()
{
    std::vector<Impl> impls{Impl::Scalar};
    if (available(Impl::Avx2))
        impls.push_back(Impl::Avx2);
    return impls;
}

const char*
name(Impl impl)
{
    switch (impl) {
    case Impl::Scalar:
        return "scalar";
    case Impl::Avx2:
        return "avx2";
    }
    return "?";
}

} // namespace qem::kernels
