/**
 * @file
 * AVX2 amplitude kernels: two complex<double> per 256-bit vector.
 *
 * Bit-identity with the scalar reference is a hard contract (exact
 * goldens sample from these amplitudes): every complex product is
 * computed as mul + addsub in the same order as std::complex
 * operator* — real = cr*xr - ci*xi, imag = cr*xi + ci*xr — and this
 * translation unit is compiled with -mavx2 but WITHOUT -mfma, so
 * neither the intrinsics nor the compiler can contract the multiply
 * and add into a differently-rounded fused op. Each vector lane
 * performs exactly the scalar arithmetic, so equality is structural,
 * not approximate (pinned by tests/test_kernels.cc).
 *
 * Layout notes: a 256-bit vector holds [x0.re, x0.im, x1.re, x1.im].
 * For stride >= 2 both halves of a 1q pair are contiguous runs of
 * even length, so the inner loop is a straight 2-at-a-time sweep.
 * For stride == 1 the (a0, a1) operands interleave in memory; two
 * loads and 128-bit-lane permutes split them into an a0 vector and
 * an a1 vector covering two adjacent pairs.
 */

#if !defined(__AVX2__)
#error "avx2.cc must be compiled with -mavx2"
#endif
#if defined(__FMA__)
#error "avx2.cc must NOT be compiled with -mfma (bit-identity)"
#endif

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "qsim/kernels/kernels.hh"

namespace qem::kernels
{

namespace
{

inline double*
raw(Amplitude* amps)
{
    return reinterpret_cast<double*>(amps);
}

/** Splatted complex scalar: coefficient of one matrix entry. */
struct Coef
{
    __m256d re;
    __m256d im;

    explicit Coef(const Amplitude& c)
        : re(_mm256_set1_pd(c.real())),
          im(_mm256_set1_pd(c.imag()))
    {
    }
};

/**
 * c * x for two complex lanes, in std::complex evaluation order:
 * even lane cr*xr - ci*xi, odd lane cr*xi + ci*xr (mul + addsub,
 * never fused).
 */
inline __m256d
cmul(const Coef& c, __m256d x)
{
    const __m256d xswap = _mm256_permute_pd(x, 0x5);
    return _mm256_addsub_pd(_mm256_mul_pd(c.re, x),
                            _mm256_mul_pd(c.im, xswap));
}

void
avx2Apply1q(Amplitude* amps, std::size_t n, std::size_t stride,
            const Matrix2& m)
{
    const Coef m0(m[0]), m1(m[1]), m2(m[2]), m3(m[3]);
    if (stride == 1) {
        // Pairs are interleaved: [a0 a1 | a0' a1']. Split two pairs
        // into an a0 vector and an a1 vector, compute, re-interleave.
        std::size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            double* p = raw(amps + i);
            const __m256d v0 = _mm256_loadu_pd(p);
            const __m256d v1 = _mm256_loadu_pd(p + 4);
            const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
            const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
            const __m256d r0 =
                _mm256_add_pd(cmul(m0, a0), cmul(m1, a1));
            const __m256d r1 =
                _mm256_add_pd(cmul(m2, a0), cmul(m3, a1));
            _mm256_storeu_pd(p, _mm256_permute2f128_pd(r0, r1,
                                                       0x20));
            _mm256_storeu_pd(p + 4,
                             _mm256_permute2f128_pd(r0, r1, 0x31));
        }
        for (; i < n; i += 2) {
            const Amplitude a0 = amps[i];
            const Amplitude a1 = amps[i + 1];
            amps[i] = m[0] * a0 + m[1] * a1;
            amps[i + 1] = m[2] * a0 + m[3] * a1;
        }
        return;
    }
    // stride >= 2: both halves are contiguous even-length runs.
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        double* p0 = raw(amps + base);
        double* p1 = raw(amps + base + stride);
        for (std::size_t i = 0; i < 2 * stride; i += 4) {
            const __m256d a0 = _mm256_loadu_pd(p0 + i);
            const __m256d a1 = _mm256_loadu_pd(p1 + i);
            _mm256_storeu_pd(
                p0 + i, _mm256_add_pd(cmul(m0, a0), cmul(m1, a1)));
            _mm256_storeu_pd(
                p1 + i, _mm256_add_pd(cmul(m2, a0), cmul(m3, a1)));
        }
    }
}

void
avx2Apply2q(Amplitude* amps, std::size_t n, std::size_t s0,
            std::size_t s1, const Matrix4& m)
{
    const std::size_t lo = std::min(s0, s1);
    const std::size_t hi = std::max(s0, s1);
    if (lo == 1) {
        // One operand is qubit 0: the cell's low pair interleaves in
        // memory; keep the scalar reference loop (the cell update
        // itself is the same arithmetic either way).
        for (std::size_t a = 0; a < n; a += 2 * hi) {
            for (std::size_t b = a; b < a + hi; b += 2) {
                const std::size_t i01 = b + s0;
                const std::size_t i10 = b + s1;
                const std::size_t i11 = b + s0 + s1;
                const Amplitude a00 = amps[b];
                const Amplitude a01 = amps[i01];
                const Amplitude a10 = amps[i10];
                const Amplitude a11 = amps[i11];
                amps[b] = m[0] * a00 + m[1] * a01 + m[2] * a10 +
                          m[3] * a11;
                amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 +
                            m[7] * a11;
                amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 +
                            m[11] * a11;
                amps[i11] = m[12] * a00 + m[13] * a01 +
                            m[14] * a10 + m[15] * a11;
            }
        }
        return;
    }
    const Coef c00(m[0]), c01(m[1]), c02(m[2]), c03(m[3]);
    const Coef c10(m[4]), c11(m[5]), c12(m[6]), c13(m[7]);
    const Coef c20(m[8]), c21(m[9]), c22(m[10]), c23(m[11]);
    const Coef c30(m[12]), c31(m[13]), c32(m[14]), c33(m[15]);
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            double* p00 = raw(amps + b);
            double* p01 = raw(amps + b + s0);
            double* p10 = raw(amps + b + s1);
            double* p11 = raw(amps + b + s0 + s1);
            for (std::size_t i = 0; i < 2 * lo; i += 4) {
                const __m256d a00 = _mm256_loadu_pd(p00 + i);
                const __m256d a01 = _mm256_loadu_pd(p01 + i);
                const __m256d a10 = _mm256_loadu_pd(p10 + i);
                const __m256d a11 = _mm256_loadu_pd(p11 + i);
                _mm256_storeu_pd(
                    p00 + i,
                    _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(c00, a00),
                                          cmul(c01, a01)),
                            cmul(c02, a10)),
                        cmul(c03, a11)));
                _mm256_storeu_pd(
                    p01 + i,
                    _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(c10, a00),
                                          cmul(c11, a01)),
                            cmul(c12, a10)),
                        cmul(c13, a11)));
                _mm256_storeu_pd(
                    p10 + i,
                    _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(c20, a00),
                                          cmul(c21, a01)),
                            cmul(c22, a10)),
                        cmul(c23, a11)));
                _mm256_storeu_pd(
                    p11 + i,
                    _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(cmul(c30, a00),
                                          cmul(c31, a01)),
                            cmul(c32, a10)),
                        cmul(c33, a11)));
            }
        }
    }
}

void
avx2ApplyH(Amplitude* amps, std::size_t n, std::size_t stride)
{
    static const double s2 = 1.0 / std::sqrt(2.0);
    const __m256d vs2 = _mm256_set1_pd(s2);
    if (stride == 1) {
        std::size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            double* p = raw(amps + i);
            const __m256d v0 = _mm256_loadu_pd(p);
            const __m256d v1 = _mm256_loadu_pd(p + 4);
            const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
            const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
            const __m256d r0 =
                _mm256_mul_pd(vs2, _mm256_add_pd(a0, a1));
            const __m256d r1 =
                _mm256_mul_pd(vs2, _mm256_sub_pd(a0, a1));
            _mm256_storeu_pd(p, _mm256_permute2f128_pd(r0, r1,
                                                       0x20));
            _mm256_storeu_pd(p + 4,
                             _mm256_permute2f128_pd(r0, r1, 0x31));
        }
        for (; i < n; i += 2) {
            const Amplitude a0 = amps[i];
            const Amplitude a1 = amps[i + 1];
            amps[i] = s2 * (a0 + a1);
            amps[i + 1] = s2 * (a0 - a1);
        }
        return;
    }
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        double* p0 = raw(amps + base);
        double* p1 = raw(amps + base + stride);
        for (std::size_t i = 0; i < 2 * stride; i += 4) {
            const __m256d a0 = _mm256_loadu_pd(p0 + i);
            const __m256d a1 = _mm256_loadu_pd(p1 + i);
            _mm256_storeu_pd(
                p0 + i, _mm256_mul_pd(vs2, _mm256_add_pd(a0, a1)));
            _mm256_storeu_pd(
                p1 + i, _mm256_mul_pd(vs2, _mm256_sub_pd(a0, a1)));
        }
    }
}

/** Negate 2*count doubles starting at p (sign-bit flip, exact). */
inline void
negateRun(double* p, std::size_t count2)
{
    const __m256d sign = _mm256_set1_pd(-0.0);
    std::size_t i = 0;
    for (; i + 4 <= count2; i += 4) {
        _mm256_storeu_pd(
            p + i, _mm256_xor_pd(_mm256_loadu_pd(p + i), sign));
    }
    for (; i < count2; ++i)
        p[i] = -p[i];
}

/** Swap two non-overlapping runs of 2*count doubles. */
inline void
swapRun(double* a, double* b, std::size_t count2)
{
    std::size_t i = 0;
    for (; i + 4 <= count2; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        _mm256_storeu_pd(a + i, vb);
        _mm256_storeu_pd(b + i, va);
    }
    for (; i < count2; ++i)
        std::swap(a[i], b[i]);
}

void
avx2ApplyX(Amplitude* amps, std::size_t n, std::size_t stride)
{
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        swapRun(raw(amps + base), raw(amps + base + stride),
                2 * stride);
    }
}

void
avx2ApplyZ(Amplitude* amps, std::size_t n, std::size_t stride)
{
    for (std::size_t base = stride; base < n; base += 2 * stride)
        negateRun(raw(amps + base), 2 * stride);
}

void
avx2ApplyCX(Amplitude* amps, std::size_t n, std::size_t cb,
            std::size_t tb)
{
    const std::size_t lo = std::min(cb, tb);
    const std::size_t hi = std::max(cb, tb);
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            swapRun(raw(amps + b + cb), raw(amps + b + cb + tb),
                    2 * lo);
        }
    }
}

void
avx2ApplyCZ(Amplitude* amps, std::size_t n, std::size_t mask)
{
    const std::size_t lo = mask & (~mask + 1);
    const std::size_t hi = mask ^ lo;
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo)
            negateRun(raw(amps + b + mask), 2 * lo);
    }
}

void
avx2ApplySwap(Amplitude* amps, std::size_t n, std::size_t ab,
              std::size_t bb)
{
    const std::size_t lo = std::min(ab, bb);
    const std::size_t hi = std::max(ab, bb);
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            swapRun(raw(amps + b + ab), raw(amps + b + bb),
                    2 * lo);
        }
    }
}

} // namespace

const KernelTable&
avx2Table()
{
    static const KernelTable table = {
        "avx2",      avx2Apply1q, avx2Apply2q, avx2ApplyH,
        avx2ApplyX,  avx2ApplyZ,  avx2ApplyCX, avx2ApplyCZ,
        avx2ApplySwap,
    };
    return table;
}

} // namespace qem::kernels
