/**
 * @file
 * Portable scalar reference kernels.
 *
 * These are the semantic ground truth every other implementation
 * must reproduce bit-for-bit (see kernels.hh). The 1q loops keep
 * the exact evaluation order of the original StateVector members;
 * the 2q traversal is cache-blocked: instead of scanning all 2^n
 * indices and branching on the operand bits, it enumerates the
 * aligned 4-amplitude cells directly with the smaller operand
 * stride walked contiguously in the innermost loop, so each cell is
 * visited once and the four access streams stay sequential. Cell
 * updates are independent, so the visit order cannot change a
 * single bit of the result.
 */

#include <algorithm>
#include <cmath>

#include "qsim/kernels/kernels.hh"

namespace qem::kernels
{

namespace
{

void
scalarApply1q(Amplitude* amps, std::size_t n, std::size_t stride,
              const Matrix2& m)
{
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            const Amplitude a0 = amps[i];
            const Amplitude a1 = amps[i + stride];
            amps[i] = m[0] * a0 + m[1] * a1;
            amps[i + stride] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
scalarApply2q(Amplitude* amps, std::size_t n, std::size_t s0,
              std::size_t s1, const Matrix4& m)
{
    const std::size_t lo = std::min(s0, s1);
    const std::size_t hi = std::max(s0, s1);
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            for (std::size_t k = b; k < b + lo; ++k) {
                const std::size_t i00 = k;
                const std::size_t i01 = k + s0;
                const std::size_t i10 = k + s1;
                const std::size_t i11 = k + s0 + s1;
                const Amplitude a00 = amps[i00];
                const Amplitude a01 = amps[i01];
                const Amplitude a10 = amps[i10];
                const Amplitude a11 = amps[i11];
                amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 +
                            m[3] * a11;
                amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 +
                            m[7] * a11;
                amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 +
                            m[11] * a11;
                amps[i11] = m[12] * a00 + m[13] * a01 +
                            m[14] * a10 + m[15] * a11;
            }
        }
    }
}

void
scalarApplyH(Amplitude* amps, std::size_t n, std::size_t stride)
{
    static const double s2 = 1.0 / std::sqrt(2.0);
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            const Amplitude a0 = amps[i];
            const Amplitude a1 = amps[i + stride];
            amps[i] = s2 * (a0 + a1);
            amps[i + stride] = s2 * (a0 - a1);
        }
    }
}

void
scalarApplyX(Amplitude* amps, std::size_t n, std::size_t stride)
{
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        std::swap_ranges(amps + base, amps + base + stride,
                         amps + base + stride);
    }
}

void
scalarApplyZ(Amplitude* amps, std::size_t n, std::size_t stride)
{
    for (std::size_t base = stride; base < n; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i)
            amps[i] = -amps[i];
    }
}

void
scalarApplyCX(Amplitude* amps, std::size_t n, std::size_t cb,
              std::size_t tb)
{
    // Swap (control=1, target=0) with (control=1, target=1) once
    // per cell.
    const std::size_t lo = std::min(cb, tb);
    const std::size_t hi = std::max(cb, tb);
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            std::swap_ranges(amps + b + cb, amps + b + cb + lo,
                             amps + b + cb + tb);
        }
    }
}

void
scalarApplyCZ(Amplitude* amps, std::size_t n, std::size_t mask)
{
    // mask has exactly two bits set; negate cells with both set.
    const std::size_t lo = mask & (~mask + 1);
    const std::size_t hi = mask ^ lo;
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            for (std::size_t k = b + mask; k < b + mask + lo; ++k)
                amps[k] = -amps[k];
        }
    }
}

void
scalarApplySwap(Amplitude* amps, std::size_t n, std::size_t ab,
                std::size_t bb)
{
    const std::size_t lo = std::min(ab, bb);
    const std::size_t hi = std::max(ab, bb);
    for (std::size_t a = 0; a < n; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            std::swap_ranges(amps + b + ab, amps + b + ab + lo,
                             amps + b + bb);
        }
    }
}

} // namespace

const KernelTable&
scalarTable()
{
    static const KernelTable table = {
        "scalar",      scalarApply1q, scalarApply2q, scalarApplyH,
        scalarApplyX,  scalarApplyZ,  scalarApplyCX, scalarApplyCZ,
        scalarApplySwap,
    };
    return table;
}

} // namespace qem::kernels
