/**
 * @file
 * Histogram of measured classical outcomes ("the output log").
 *
 * The NISQ execution model of the paper repeats a program for
 * thousands of trials and logs the classical outcome of each trial;
 * Counts is that log in aggregated form. Every reliability metric
 * (PST, IST, ROCA) and every mitigation policy operates on Counts.
 */

#ifndef QEM_QSIM_COUNTS_HH
#define QEM_QSIM_COUNTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qsim/types.hh"

namespace qem
{

class Counts
{
  public:
    /** @param num_bits Width of the classical outcomes being logged. */
    explicit Counts(unsigned num_bits = 0);

    unsigned numBits() const { return numBits_; }

    /** Record @p n occurrences of @p outcome. */
    void add(BasisState outcome, std::uint64_t n = 1);

    /** Occurrences of @p outcome (0 if never seen). */
    std::uint64_t get(BasisState outcome) const;

    /** Total number of logged trials. */
    std::uint64_t total() const { return total_; }

    /** Number of distinct outcomes observed. */
    std::size_t distinct() const { return counts_.size(); }

    /** Relative frequency of @p outcome; 0 if the log is empty. */
    double probability(BasisState outcome) const;

    /** All (outcome, count) pairs in ascending outcome order. */
    const std::map<BasisState, std::uint64_t>& raw() const
    {
        return counts_;
    }

    /**
     * Outcomes sorted by descending count; ties broken by ascending
     * outcome value so ordering is deterministic.
     */
    std::vector<std::pair<BasisState, std::uint64_t>> sortedByCount()
        const;

    /** The most frequent outcome; throws if the log is empty. */
    BasisState mostFrequent() const;

    /** Merge another log into this one (bit widths must match). */
    void merge(const Counts& other);

    /**
     * New log with every outcome XORed with @p mask. This is the
     * classical post-correction step of Invert-and-Measure: outcomes
     * observed under an inversion string are flipped back.
     */
    Counts xorAll(BasisState mask) const;

    /**
     * New log keeping only classical bits selected by @p bits (bit i
     * of the result is bit bits[i] of the original outcome). Used to
     * marginalize out ancilla bits.
     */
    Counts marginalize(const std::vector<unsigned>& bits) const;

    /** Probability vector over all 2^numBits outcomes (numBits<=24). */
    std::vector<double> toProbabilityVector() const;

    /** Render the top @p k outcomes as a small ASCII table. */
    std::string toString(std::size_t k = 10) const;

  private:
    unsigned numBits_;
    std::uint64_t total_ = 0;
    std::map<BasisState, std::uint64_t> counts_;
};

} // namespace qem

#endif // QEM_QSIM_COUNTS_HH
