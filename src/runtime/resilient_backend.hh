/**
 * @file
 * Failure semantics for the execution runtime: the error taxonomy
 * every layer above the backend speaks, a deterministic
 * exponential-backoff schedule, and a retrying Backend decorator.
 *
 * The paper's policies assume every trial batch submitted to the
 * machine comes back; real cloud backends (the IBM queues the paper
 * ran on) drop jobs, time out, and return partial results. This
 * module gives callers a vocabulary to tell those cases apart:
 *
 *   - TransientError   "try again" — queue hiccup, lost connection,
 *                      injected fault. The only retryable kind.
 *   - FatalError       "never retry" — malformed circuit, a backend
 *                      that cannot run this program at all.
 *   - BudgetExhausted  "the runtime gave up" — retries or the
 *                      wall-clock deadline ran out, or a policy
 *                      refused to merge an under-budget mode.
 *
 * Exceptions outside the taxonomy (std::logic_error from an
 * unsupported RESET, bad_alloc, ...) are treated as fatal and
 * propagate unchanged, so pre-existing error contracts are intact.
 */

#ifndef QEM_RUNTIME_RESILIENT_BACKEND_HH
#define QEM_RUNTIME_RESILIENT_BACKEND_HH

#include <stdexcept>
#include <string>

#include "qsim/rng.hh"
#include "qsim/simulator.hh"
#include "runtime/runtime_stats.hh"

namespace qem
{

/** Base of the runtime failure taxonomy. */
class BackendError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A failure worth retrying (dropped job, queue hiccup). */
class TransientError : public BackendError
{
  public:
    using BackendError::BackendError;
};

/** A failure retrying cannot fix (rejected program, dead device). */
class FatalError : public BackendError
{
  public:
    using BackendError::BackendError;
};

/**
 * The retry/deadline budget ran out before the work completed, or a
 * policy refused to merge a result that came back under budget.
 */
class BudgetExhausted : public BackendError
{
  public:
    using BackendError::BackendError;
};

/** Exponential backoff with deterministic jitter. */
struct BackoffPolicy
{
    /** Delay before the first retry. */
    double baseSeconds = 0.005;
    /** Upper bound on any single delay. */
    double maxSeconds = 1.0;
    /**
     * Jitter fraction in [0, 1): attempt k sleeps
     * base * 2^k * U[1 - jitter, 1 + jitter), capped at maxSeconds.
     * Draws come from the caller's Rng, so a fixed seed replays the
     * exact delay sequence.
     */
    double jitter = 0.5;

    /** Delay (seconds) before retry number @p attempt (0-based). */
    double delaySeconds(unsigned attempt, Rng& rng) const;
};

/** Retry budget for one logical submission. */
struct RetryOptions
{
    /** Retries after the first failure; 0 disables retrying. */
    unsigned maxRetries = 2;
    /** Backoff between attempts. */
    BackoffPolicy backoff;
    /**
     * Wall-clock budget in seconds for the whole submission
     * including retries and backoff sleeps; 0 = unlimited. Checked
     * before each retry (a running attempt is never interrupted).
     */
    double deadlineSeconds = 0.0;
};

/**
 * Backend decorator that retries transient failures.
 *
 * run() forwards to the wrapped backend; a TransientError triggers
 * up to RetryOptions::maxRetries re-submissions with exponential
 * backoff, after which (or once the deadline passes) BudgetExhausted
 * is thrown. FatalError and non-taxonomy exceptions propagate
 * unchanged on the first occurrence. Backoff jitter draws from an
 * Rng seeded at construction, so the delay sequence of a run is
 * reproducible from the seed.
 *
 * Telemetry (when enabled): `runtime.retries`,
 * `runtime.deadline_exceeded` counters and the
 * `runtime.backoff_seconds` histogram.
 */
class ResilientBackend : public Backend
{
  public:
    /**
     * @param inner Backend to decorate (not owned; must outlive
     *        this object).
     * @param seed Seed of the jitter stream.
     * @param options Retry budget and backoff shape.
     */
    ResilientBackend(Backend& inner, std::uint64_t seed,
                     RetryOptions options = {});

    Counts run(const Circuit& circuit, std::size_t shots) override;

    unsigned numQubits() const override
    {
        return inner_.numQubits();
    }

    /**
     * Outcome of the most recent run(): attempts used, backoff
     * spent, whether the deadline fired. Valid after run() returns
     * or throws BudgetExhausted.
     */
    const RunOutcome& lastOutcome() const { return outcome_; }

  private:
    Backend& inner_;
    RetryOptions options_;
    Rng rng_;
    RunOutcome outcome_;
};

/** True when @p e is retryable under the taxonomy. */
bool isTransient(const std::exception& e);

/** Sleep the calling thread for @p seconds (no-op when <= 0). */
void backoffSleep(double seconds);

} // namespace qem

#endif // QEM_RUNTIME_RESILIENT_BACKEND_HH
