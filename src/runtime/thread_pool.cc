#include "runtime/thread_pool.hh"

#include <stdexcept>

namespace qem
{

namespace
{

/** Worker-local pool index; -1 on non-pool threads. */
thread_local int tl_worker_index = -1;

} // namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        throw std::invalid_argument("ThreadPool: need at least one "
                                    "worker thread");
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    shutdown(ShutdownMode::Drain);
}

void
ThreadPool::shutdown(ShutdownMode mode)
{
    std::queue<std::function<void()>> discarded;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        if (mode == ShutdownMode::Abort)
            queue_.swap(discarded);
    }
    available_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    // Destroy discarded tasks outside the lock; dropping a
    // packaged_task breaks its future's promise, which is exactly
    // the signal an aborted submitter should see.
}

int
ThreadPool::workerIndex()
{
    return tl_worker_index;
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            throw std::runtime_error("ThreadPool::submit: pool is "
                                     "shutting down");
        queue_.push(std::move(task));
    }
    available_.notify_one();
}

void
ThreadPool::workerLoop(unsigned index)
{
    tl_worker_index = static_cast<int>(index);
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            // Drain the queue even when stopping so every submitted
            // future completes before the destructor returns.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

} // namespace qem
