#include "runtime/runtime_stats.hh"

#include <cstdio>

namespace qem
{

std::string
RuntimeStats::toString() const
{
    char head[160];
    std::snprintf(head, sizeof head,
                  "%zu shots in %.3f s (%.0f shots/sec), "
                  "%zu batches on %u threads, per-worker [",
                  shots, wallSeconds, shotsPerSecond, batches,
                  numThreads);
    std::string out(head);
    for (std::size_t i = 0; i < perWorkerShots.size(); ++i) {
        char item[32];
        std::snprintf(item, sizeof item, "%s%llu", i ? ", " : "",
                      static_cast<unsigned long long>(
                          perWorkerShots[i]));
        out += item;
    }
    out += "]";
    return out;
}

} // namespace qem
