#include "runtime/runtime_stats.hh"

#include <cstdio>

namespace qem
{

std::string
RunOutcome::toString() const
{
    char head[192];
    std::snprintf(head, sizeof head,
                  "%zu/%zu shots, %zu retried batches "
                  "(%zu retries), %zu dropped, %.3f s backoff%s%s",
                  completedShots, requestedShots, retriedBatches,
                  totalRetries, droppedBatches, backoffSeconds,
                  deadlineExceeded ? ", deadline exceeded" : "",
                  salvage == SalvageMode::DropBatches
                      ? ", salvage"
                      : "");
    return head;
}

std::string
RuntimeStats::toString() const
{
    char head[160];
    std::snprintf(head, sizeof head,
                  "%zu shots in %.3f s (%.0f shots/sec), "
                  "%zu batches on %u threads, per-worker [",
                  shots, wallSeconds, shotsPerSecond, batches,
                  numThreads);
    std::string out(head);
    for (std::size_t i = 0; i < perWorkerShots.size(); ++i) {
        char item[32];
        std::snprintf(item, sizeof item, "%s%llu", i ? ", " : "",
                      static_cast<unsigned long long>(
                          perWorkerShots[i]));
        out += item;
    }
    out += "]";
    if (outcome.degraded()) {
        out += " degraded: ";
        out += outcome.toString();
    }
    return out;
}

} // namespace qem
