#include "runtime/fault_injection.hh"

#include <cstdlib>
#include <stdexcept>

namespace qem
{

namespace
{

/** splitmix64: the decision hash for rate faults. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
parseUint(const std::string& value, const std::string& key)
{
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) {
        throw std::invalid_argument("INVERTQ_FAULTS: trailing "
                                    "junk in '" +
                                    key + "=" + value + "'");
    }
    return v;
}

} // namespace

FaultOptions
FaultOptions::parse(const std::string& spec)
{
    FaultOptions options;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument(
                "INVERTQ_FAULTS: expected key=value, got '" +
                item + "'");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        try {
            if (key == "rate") {
                options.failureRate = std::stod(value);
            } else if (key == "kind") {
                if (value == "transient")
                    options.kind = FaultKind::Transient;
                else if (value == "fatal")
                    options.kind = FaultKind::Fatal;
                else
                    throw std::invalid_argument(
                        "INVERTQ_FAULTS: unknown kind '" + value +
                        "'");
            } else if (key == "after") {
                options.failAfter = static_cast<std::int64_t>(
                    parseUint(value, key));
            } else if (key == "count") {
                options.failCount = parseUint(value, key);
            } else if (key == "seed") {
                options.seed = parseUint(value, key);
            } else {
                throw std::invalid_argument(
                    "INVERTQ_FAULTS: unknown key '" + key + "'");
            }
        } catch (const std::invalid_argument&) {
            throw;
        } catch (const std::exception&) {
            throw std::invalid_argument(
                "INVERTQ_FAULTS: malformed value in '" + item +
                "'");
        }
    }
    if (options.failureRate < 0.0 || options.failureRate > 1.0) {
        throw std::invalid_argument("INVERTQ_FAULTS: rate must be "
                                    "in [0, 1]");
    }
    return options;
}

std::optional<FaultOptions>
FaultOptions::fromEnv()
{
    const char* env = std::getenv("INVERTQ_FAULTS");
    if (env == nullptr || *env == '\0')
        return std::nullopt;
    return parse(env);
}

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<ShardedBackend> inner, FaultOptions options)
    : inner_(std::move(inner)), options_(options)
{
    if (!inner_)
        throw std::invalid_argument("FaultInjectingBackend: null "
                                    "inner backend");
}

void
FaultInjectingBackend::maybeFail(std::uint64_t index) const
{
    bool fail = false;
    if (options_.failAfter >= 0 &&
        index >= static_cast<std::uint64_t>(options_.failAfter) &&
        index - static_cast<std::uint64_t>(options_.failAfter) <
            options_.failCount) {
        fail = true;
    }
    if (!fail && options_.failureRate > 0.0) {
        // Hash-keyed decision: independent of the caller's shot
        // stream, so retried work replays identical counts.
        const double u =
            static_cast<double>(mix64(options_.seed ^ index) >>
                                11) *
            0x1.0p-53;
        fail = u < options_.failureRate;
    }
    if (!fail)
        return;
    failures_.fetch_add(1, std::memory_order_relaxed);
    const std::string what =
        "injected fault at call " + std::to_string(index);
    if (options_.kind == FaultKind::Fatal)
        throw FatalError(what);
    throw TransientError(what);
}

Counts
FaultInjectingBackend::run(const Circuit& circuit,
                           std::size_t shots)
{
    maybeFail(calls_.fetch_add(1, std::memory_order_relaxed));
    return inner_->run(circuit, shots);
}

Counts
FaultInjectingBackend::run(const Circuit& circuit,
                           std::size_t shots, Rng& rng) const
{
    maybeFail(calls_.fetch_add(1, std::memory_order_relaxed));
    return inner_->run(circuit, shots, rng);
}

std::unique_ptr<ShardedBackend>
FaultInjectingBackend::clone() const
{
    return std::make_unique<FaultInjectingBackend>(inner_->clone(),
                                                   options_);
}

} // namespace qem
