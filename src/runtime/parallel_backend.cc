#include "runtime/parallel_backend.hh"

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>

#include "telemetry/telemetry.hh"

namespace qem
{

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Per-worker batch-latency histograms plus the shared queue-wait
 * histogram, resolved once per run() so workers touch only
 * lock-free handles. Null handles (telemetry disabled) skip all
 * clock reads on the batch path.
 */
struct RunTelemetry
{
    std::vector<telemetry::Histogram*> workerBatchSeconds;
    telemetry::Histogram* queueWaitSeconds = nullptr;

    static RunTelemetry resolve(std::size_t workers)
    {
        RunTelemetry t;
        if (!telemetry::enabled()) {
            t.workerBatchSeconds.assign(workers, nullptr);
            return t;
        }
        telemetry::MetricsRegistry& m = telemetry::metrics();
        t.workerBatchSeconds.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            t.workerBatchSeconds.push_back(&m.histogram(
                "runtime.worker" + std::to_string(w) +
                ".batch_seconds"));
        }
        t.queueWaitSeconds =
            &m.histogram("runtime.queue_wait_seconds");
        return t;
    }
};

} // namespace

ParallelBackend::ParallelBackend(const ShardedBackend& prototype,
                                 std::uint64_t seed,
                                 RuntimeOptions options)
    : rng_(seed), options_(options)
{
    if (options_.batchSize == 0)
        throw std::invalid_argument("ParallelBackend: batch size "
                                    "must be nonzero");
    const unsigned threads = resolveThreads(options_.numThreads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(prototype.clone());
    if (threads > 1)
        pool_ = std::make_unique<ThreadPool>(threads);
}

Counts
ParallelBackend::run(const Circuit& circuit, std::size_t shots)
{
    const auto start = std::chrono::steady_clock::now();
    telemetry::SpanTracer::Scope runSpan =
        telemetry::span("runtime.run");
    const RunTelemetry tele =
        RunTelemetry::resolve(workers_.size());

    const ShotPlan plan(shots, options_.batchSize);
    // One job stream per call: repeated runs see fresh substreams
    // (call-order dependent, like the serial simulators), while the
    // batch->substream mapping below stays order-independent.
    const Rng job = rng_.split();

    std::vector<Counts> partial(plan.numBatches());
    std::vector<std::uint64_t> workerShots(workers_.size(), 0);

    if (!pool_) {
        for (const ShotBatch& batch : plan.batches()) {
            const auto batchStart =
                tele.workerBatchSeconds[0]
                    ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
            Rng rng = ShotPlan::substream(job, batch.index);
            partial[batch.index] =
                workers_[0]->run(circuit, batch.shots, rng);
            workerShots[0] += batch.shots;
            if (tele.workerBatchSeconds[0]) {
                tele.workerBatchSeconds[0]->record(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        batchStart)
                        .count());
            }
        }
    } else {
        std::vector<std::future<void>> futures;
        futures.reserve(plan.numBatches());
        for (const ShotBatch& batch : plan.batches()) {
            const auto enqueued =
                tele.queueWaitSeconds
                    ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
            futures.push_back(pool_->submit(
                [this, &circuit, &job, &partial, &workerShots,
                 &tele, enqueued, batch] {
                    const auto picked =
                        tele.queueWaitSeconds
                            ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::
                                  time_point{};
                    if (tele.queueWaitSeconds) {
                        tele.queueWaitSeconds->record(
                            std::chrono::duration<double>(
                                picked - enqueued)
                                .count());
                    }
                    const int w = ThreadPool::workerIndex();
                    Rng rng =
                        ShotPlan::substream(job, batch.index);
                    partial[batch.index] =
                        workers_[static_cast<std::size_t>(w)]->run(
                            circuit, batch.shots, rng);
                    workerShots[static_cast<std::size_t>(w)] +=
                        batch.shots;
                    telemetry::Histogram* h =
                        tele.workerBatchSeconds
                            [static_cast<std::size_t>(w)];
                    if (h) {
                        h->record(std::chrono::duration<double>(
                                      std::chrono::steady_clock::
                                          now() -
                                      picked)
                                      .count());
                    }
                }));
        }
        // Wait for every batch before touching the stack frame the
        // tasks reference; only then surface the first exception.
        for (std::future<void>& f : futures)
            f.wait();
        for (std::future<void>& f : futures)
            f.get();
    }

    Counts merged(circuit.numClbits());
    for (const Counts& batchCounts : partial)
        merged.merge(batchCounts);

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    stats_.shots = shots;
    stats_.batches = plan.numBatches();
    stats_.numThreads = numThreads();
    stats_.wallSeconds = seconds;
    stats_.shotsPerSecond =
        seconds > 0.0 ? static_cast<double>(shots) / seconds : 0.0;
    stats_.perWorkerShots = std::move(workerShots);
    if (telemetry::enabled()) {
        // Fold RuntimeStats into the registry so sinks see the
        // runtime's throughput next to every other metric.
        telemetry::MetricsRegistry& m = telemetry::metrics();
        m.counter("runtime.shots").add(shots);
        m.counter("runtime.batches").add(plan.numBatches());
        m.counter("runtime.jobs").add(1);
        m.gauge("runtime.threads")
            .set(static_cast<double>(numThreads()));
        m.histogram("runtime.run_seconds").record(seconds);
    }
    return merged;
}

} // namespace qem
