#include "runtime/parallel_backend.hh"

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>

namespace qem
{

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

ParallelBackend::ParallelBackend(const ShardedBackend& prototype,
                                 std::uint64_t seed,
                                 RuntimeOptions options)
    : rng_(seed), options_(options)
{
    if (options_.batchSize == 0)
        throw std::invalid_argument("ParallelBackend: batch size "
                                    "must be nonzero");
    const unsigned threads = resolveThreads(options_.numThreads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(prototype.clone());
    if (threads > 1)
        pool_ = std::make_unique<ThreadPool>(threads);
}

Counts
ParallelBackend::run(const Circuit& circuit, std::size_t shots)
{
    const auto start = std::chrono::steady_clock::now();

    const ShotPlan plan(shots, options_.batchSize);
    // One job stream per call: repeated runs see fresh substreams
    // (call-order dependent, like the serial simulators), while the
    // batch->substream mapping below stays order-independent.
    const Rng job = rng_.split();

    std::vector<Counts> partial(plan.numBatches());
    std::vector<std::uint64_t> workerShots(workers_.size(), 0);

    if (!pool_) {
        for (const ShotBatch& batch : plan.batches()) {
            Rng rng = ShotPlan::substream(job, batch.index);
            partial[batch.index] =
                workers_[0]->run(circuit, batch.shots, rng);
            workerShots[0] += batch.shots;
        }
    } else {
        std::vector<std::future<void>> futures;
        futures.reserve(plan.numBatches());
        for (const ShotBatch& batch : plan.batches()) {
            futures.push_back(pool_->submit(
                [this, &circuit, &job, &partial, &workerShots,
                 batch] {
                    const int w = ThreadPool::workerIndex();
                    Rng rng =
                        ShotPlan::substream(job, batch.index);
                    partial[batch.index] =
                        workers_[static_cast<std::size_t>(w)]->run(
                            circuit, batch.shots, rng);
                    workerShots[static_cast<std::size_t>(w)] +=
                        batch.shots;
                }));
        }
        // Wait for every batch before touching the stack frame the
        // tasks reference; only then surface the first exception.
        for (std::future<void>& f : futures)
            f.wait();
        for (std::future<void>& f : futures)
            f.get();
    }

    Counts merged(circuit.numClbits());
    for (const Counts& batchCounts : partial)
        merged.merge(batchCounts);

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    stats_.shots = shots;
    stats_.batches = plan.numBatches();
    stats_.numThreads = numThreads();
    stats_.wallSeconds = seconds;
    stats_.shotsPerSecond =
        seconds > 0.0 ? static_cast<double>(shots) / seconds : 0.0;
    stats_.perWorkerShots = std::move(workerShots);
    return merged;
}

} // namespace qem
