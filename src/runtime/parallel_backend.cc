#include "runtime/parallel_backend.hh"

#include <chrono>
#include <future>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>

#include "runtime/fault_injection.hh"
#include "telemetry/telemetry.hh"

namespace qem
{

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Per-worker batch-latency histograms plus the shared queue-wait
 * histogram, resolved once per run() so workers touch only
 * lock-free handles. Null handles (telemetry disabled) skip all
 * clock reads on the batch path.
 */
struct RunTelemetry
{
    std::vector<telemetry::Histogram*> workerBatchSeconds;
    telemetry::Histogram* queueWaitSeconds = nullptr;

    static RunTelemetry resolve(std::size_t workers)
    {
        RunTelemetry t;
        if (!telemetry::enabled()) {
            t.workerBatchSeconds.assign(workers, nullptr);
            return t;
        }
        telemetry::MetricsRegistry& m = telemetry::metrics();
        t.workerBatchSeconds.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            t.workerBatchSeconds.push_back(&m.histogram(
                "runtime.worker" + std::to_string(w) +
                ".batch_seconds"));
        }
        t.queueWaitSeconds =
            &m.histogram("runtime.queue_wait_seconds");
        return t;
    }
};

/** First transient failure of a batch: who failed it, and why. */
struct BatchFailure
{
    std::size_t worker = 0;
    std::string what;
};

} // namespace

ParallelBackend::ParallelBackend(const ShardedBackend& prototype,
                                 std::uint64_t seed,
                                 RuntimeOptions options)
    : rng_(seed), options_(options)
{
    if (options_.batchSize == 0)
        throw std::invalid_argument("ParallelBackend: batch size "
                                    "must be nonzero");
    const unsigned threads = resolveThreads(options_.numThreads);
    const std::optional<FaultOptions> faults =
        FaultOptions::fromEnv();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        std::unique_ptr<ShardedBackend> worker = prototype.clone();
        if (faults) {
            FaultOptions perWorker = *faults;
            perWorker.seed +=
                0x9E3779B97F4A7C15ULL * (i + 1); // Decorrelate.
            worker = std::make_unique<FaultInjectingBackend>(
                std::move(worker), perWorker);
        }
        workers_.push_back(std::move(worker));
    }
    if (threads > 1)
        pool_ = std::make_unique<ThreadPool>(threads);
}

Counts
ParallelBackend::run(const Circuit& circuit, std::size_t shots)
{
    const auto start = std::chrono::steady_clock::now();
    const ShotPlan plan(shots, options_.batchSize);
    Rng job(0);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        // Invalidate up front: a run that throws must never leave
        // the previous run's throughput on display.
        stats_ = RuntimeStats{};
        // One job stream per call: repeated runs see fresh
        // substreams (call-order dependent, like the serial
        // simulators), while the batch->substream mapping below
        // stays order-independent. Drawn under the lock so
        // concurrent run() calls split distinct streams.
        job = rng_.split();
    }
    telemetry::SpanTracer::Scope runSpan =
        telemetry::span("runtime.run");
    const RunTelemetry tele =
        RunTelemetry::resolve(workers_.size());

    // Lower the circuit once and share the immutable compiled run
    // across every worker; backends without a compiled form (and
    // the fault-injection decorator, which must keep perturbing
    // each run() call) return nullptr and fall back to per-batch
    // run(). Both paths consume each batch's substream identically,
    // so the merged histogram is the same either way.
    const std::shared_ptr<const ShardedBackend::CompiledRun>
        compiled = workers_[0]->compile(circuit);

    std::vector<Counts> partial(plan.numBatches());
    std::vector<std::uint64_t> workerShots(workers_.size(), 0);
    // Index-disjoint failure slots: the task for batch i writes
    // only failures[i], like partial[i].
    std::vector<std::optional<BatchFailure>> failures(
        plan.numBatches());

    if (!pool_) {
        for (const ShotBatch& batch : plan.batches()) {
            const auto batchStart =
                tele.workerBatchSeconds[0]
                    ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
            Rng rng = ShotPlan::substream(job, batch.index);
            try {
                partial[batch.index] =
                    compiled
                        ? compiled->run(batch.shots, rng)
                        : workers_[0]->run(circuit, batch.shots,
                                           rng);
                workerShots[0] += batch.shots;
            } catch (const TransientError& e) {
                failures[batch.index] = BatchFailure{0, e.what()};
            }
            if (tele.workerBatchSeconds[0]) {
                tele.workerBatchSeconds[0]->record(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        batchStart)
                        .count());
            }
        }
    } else {
        std::vector<std::future<void>> futures;
        futures.reserve(plan.numBatches());
        for (const ShotBatch& batch : plan.batches()) {
            const auto enqueued =
                tele.queueWaitSeconds
                    ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
            futures.push_back(pool_->submit(
                [this, &circuit, &job, &compiled, &partial,
                 &workerShots, &failures, &tele, enqueued, batch] {
                    const auto picked =
                        tele.queueWaitSeconds
                            ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::
                                  time_point{};
                    if (tele.queueWaitSeconds) {
                        tele.queueWaitSeconds->record(
                            std::chrono::duration<double>(
                                picked - enqueued)
                                .count());
                    }
                    const int w = ThreadPool::workerIndex();
                    Rng rng =
                        ShotPlan::substream(job, batch.index);
                    try {
                        partial[batch.index] =
                            compiled
                                ? compiled->run(batch.shots, rng)
                                : workers_[static_cast<std::size_t>(
                                               w)]
                                      ->run(circuit, batch.shots,
                                            rng);
                        workerShots[static_cast<std::size_t>(w)] +=
                            batch.shots;
                    } catch (const TransientError& e) {
                        failures[batch.index] = BatchFailure{
                            static_cast<std::size_t>(w), e.what()};
                    }
                    telemetry::Histogram* h =
                        tele.workerBatchSeconds
                            [static_cast<std::size_t>(w)];
                    if (h) {
                        h->record(std::chrono::duration<double>(
                                      std::chrono::steady_clock::
                                          now() -
                                      picked)
                                      .count());
                    }
                }));
        }
        // Wait for every batch before touching the stack frame the
        // tasks reference; only then surface the first non-transient
        // exception (transient ones were captured for retry).
        for (std::future<void>& f : futures)
            f.wait();
        for (std::future<void>& f : futures)
            f.get();
    }

    // Retry phase: failed batches re-run on the calling thread, in
    // batch-index order, on a worker other than the one that failed
    // them. Each attempt re-derives the batch's index-keyed
    // substream, so a recovered batch contributes exactly the
    // counts it would have produced on the first attempt — the
    // merged histogram does not depend on which batches failed.
    RunOutcome outcome;
    outcome.requestedShots = shots;
    outcome.completedShots = shots;
    outcome.salvage = options_.salvage;
    std::vector<char> dropped(plan.numBatches(), 0);
    // Jitter stream: index-keyed far outside any real batch index,
    // so it never collides with a batch substream.
    Rng backoffRng =
        job.splitAt(std::numeric_limits<std::uint64_t>::max());

    for (std::size_t i = 0; i < plan.numBatches(); ++i) {
        if (!failures[i])
            continue;
        const ShotBatch& batch = plan.batches()[i];
        std::size_t excluded = failures[i]->worker;
        std::string lastError = failures[i]->what;
        for (unsigned retries = 0;; ++retries) {
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const bool pastDeadline =
                options_.deadlineSeconds > 0.0 &&
                elapsed >= options_.deadlineSeconds;
            if (retries >= options_.maxRetries || pastDeadline) {
                if (pastDeadline && !outcome.deadlineExceeded) {
                    outcome.deadlineExceeded = true;
                    telemetry::count("runtime.deadline_exceeded");
                }
                if (options_.salvage != SalvageMode::DropBatches) {
                    throw BudgetExhausted(
                        "batch " + std::to_string(i) + " lost " +
                        (pastDeadline
                             ? "(deadline of " +
                                   std::to_string(
                                       options_.deadlineSeconds) +
                                   " s exceeded)"
                             : "after " +
                                   std::to_string(retries + 1) +
                                   " attempts") +
                        ": " + lastError);
                }
                dropped[i] = 1;
                outcome.droppedBatches += 1;
                outcome.completedShots -= batch.shots;
                telemetry::count("runtime.dropped_batches");
                break;
            }
            const double delay = options_.backoff.delaySeconds(
                retries, backoffRng);
            outcome.totalRetries += 1;
            outcome.backoffSeconds += delay;
            telemetry::count("runtime.retries");
            telemetry::observe("runtime.backoff_seconds", delay);
            backoffSleep(delay);
            // Prefer a different worker than the last failure; a
            // single-worker runtime has no choice.
            const std::size_t w =
                workers_.size() > 1 ? (excluded + 1) %
                                          workers_.size()
                                    : excluded;
            Rng rng = ShotPlan::substream(job, batch.index);
            try {
                partial[i] =
                    compiled
                        ? compiled->run(batch.shots, rng)
                        : workers_[w]->run(circuit, batch.shots,
                                           rng);
                workerShots[w] += batch.shots;
                outcome.retriedBatches += 1;
                break;
            } catch (const TransientError& e) {
                lastError = e.what();
                excluded = w;
            }
            // FatalError / non-taxonomy exceptions propagate.
        }
    }

    Counts merged(circuit.numClbits());
    for (std::size_t i = 0; i < plan.numBatches(); ++i) {
        if (!dropped[i])
            merged.merge(partial[i]);
    }

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.shots = outcome.completedShots;
        stats_.batches = plan.numBatches();
        stats_.numThreads = numThreads();
        stats_.wallSeconds = seconds;
        stats_.shotsPerSecond =
            seconds > 0.0
                ? static_cast<double>(outcome.completedShots) /
                      seconds
                : 0.0;
        stats_.perWorkerShots = std::move(workerShots);
        stats_.outcome = outcome;
        stats_.valid = true;
    }
    if (telemetry::enabled()) {
        // Fold RuntimeStats into the registry so sinks see the
        // runtime's throughput next to every other metric.
        telemetry::MetricsRegistry& m = telemetry::metrics();
        m.counter("runtime.shots").add(outcome.completedShots);
        m.counter("runtime.batches").add(plan.numBatches());
        m.counter("runtime.jobs").add(1);
        if (compiled)
            m.counter("runtime.compiled_jobs").add(1);
        m.gauge("runtime.threads")
            .set(static_cast<double>(numThreads()));
        m.histogram("runtime.run_seconds").record(seconds);
    }
    return merged;
}

} // namespace qem
