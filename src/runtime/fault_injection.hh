/**
 * @file
 * Reusable fault injection for the execution runtime.
 *
 * Promotes the test-only FlakyBackend into a configurable
 * ShardedBackend decorator so tests, benches, and CI can exercise
 * the retry path of the resilient runtime. Faults come in two
 * shapes, combinable:
 *
 *   - rate faults: each run() call fails independently with a fixed
 *     probability, decided by a hash of (seed, call index) — never
 *     by draws from the caller's shot stream, so an injected-then-
 *     retried batch reproduces exactly the counts a clean run
 *     produces;
 *   - schedule faults: calls [failAfter, failAfter + failCount)
 *     fail deterministically, which models an outage window (and,
 *     with an unbounded count, a dead backend).
 *
 * Selected via code or the environment: `INVERTQ_FAULTS` holds a
 * comma-separated k=v list, e.g.
 *
 *   INVERTQ_FAULTS="rate=0.02,kind=transient,seed=7"
 *   INVERTQ_FAULTS="after=10,count=3,kind=fatal"
 *
 * ParallelBackend wraps every worker clone in an injector when the
 * variable is set, so any parallel run in the process exercises
 * retry/backoff without code changes.
 */

#ifndef QEM_RUNTIME_FAULT_INJECTION_HH
#define QEM_RUNTIME_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "qsim/simulator.hh"
#include "runtime/resilient_backend.hh"

namespace qem
{

/** Which taxonomy type an injected fault throws. */
enum class FaultKind
{
    Transient, //!< TransientError: the retry path recovers.
    Fatal,     //!< FatalError: aborts immediately, never retried.
};

/** Configuration of one fault injector. */
struct FaultOptions
{
    /** Per-call failure probability in [0, 1]; 0 disables. */
    double failureRate = 0.0;
    /** Taxonomy type thrown for injected faults. */
    FaultKind kind = FaultKind::Transient;
    /**
     * First 0-based call index of the deterministic outage window;
     * -1 disables schedule faults.
     */
    std::int64_t failAfter = -1;
    /** Length of the outage window (default: never heals). */
    std::uint64_t failCount = UINT64_MAX;
    /** Seed of the rate-fault hash stream. */
    std::uint64_t seed = 0x5EEDFA17u;

    /**
     * Parse `INVERTQ_FAULTS`. Returns nullopt when unset or empty;
     * throws std::invalid_argument on a malformed spec (fail loudly
     * rather than silently running fault-free in CI).
     */
    static std::optional<FaultOptions> fromEnv();

    /** Parse a "rate=0.1,kind=fatal,after=3,count=2,seed=9" spec. */
    static FaultOptions parse(const std::string& spec);
};

/**
 * ShardedBackend decorator that injects failures per FaultOptions.
 *
 * Thread-safety matches the contract of the wrapped backend: the
 * const three-argument run() only touches atomics plus the inner
 * const run(), so worker threads may share one injector exactly as
 * they could share the inner backend.
 */
class FaultInjectingBackend : public ShardedBackend
{
  public:
    FaultInjectingBackend(std::unique_ptr<ShardedBackend> inner,
                          FaultOptions options);

    Counts run(const Circuit& circuit, std::size_t shots) override;

    Counts run(const Circuit& circuit, std::size_t shots,
               Rng& rng) const override;

    // compile() is intentionally NOT overridden: the inherited
    // nullptr default forces ParallelBackend down the per-batch
    // run() path, so every batch still crosses maybeFail() and an
    // INVERTQ_FAULTS smoke keeps exercising retry/backoff instead
    // of being bypassed by a shared compiled program.

    /** Fresh injector (call counters reset) over a cloned inner. */
    std::unique_ptr<ShardedBackend> clone() const override;

    unsigned numQubits() const override
    {
        return inner_->numQubits();
    }

    /** run() calls observed (including failed ones). */
    std::uint64_t calls() const
    {
        return calls_.load(std::memory_order_relaxed);
    }

    /** Faults injected so far. */
    std::uint64_t failures() const
    {
        return failures_.load(std::memory_order_relaxed);
    }

  private:
    /** Throw per the options if call @p index should fail. */
    void maybeFail(std::uint64_t index) const;

    std::unique_ptr<ShardedBackend> inner_;
    FaultOptions options_;
    mutable std::atomic<std::uint64_t> calls_{0};
    mutable std::atomic<std::uint64_t> failures_{0};
};

} // namespace qem

#endif // QEM_RUNTIME_FAULT_INJECTION_HH
