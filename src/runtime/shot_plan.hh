/**
 * @file
 * Deterministic partition of an N-shot job into fixed-size batches.
 *
 * The runtime's determinism guarantee hangs on this file: a job's
 * batches and their RNG substreams are a pure function of
 * (total shots, batch size, job stream), never of thread count or
 * completion order. Batch i always samples from the substream
 * derived at index i, so the merged histogram is bit-identical on 1
 * thread or 64.
 */

#ifndef QEM_RUNTIME_SHOT_PLAN_HH
#define QEM_RUNTIME_SHOT_PLAN_HH

#include <cstddef>
#include <vector>

#include "qsim/rng.hh"

namespace qem
{

/** One unit of parallel work: a contiguous slice of the shot budget. */
struct ShotBatch
{
    /** Position in the plan; keys the batch's RNG substream. */
    std::size_t index = 0;
    /** Global index of the batch's first shot. */
    std::size_t firstShot = 0;
    /** Shots in this batch (== batch size except maybe the last). */
    std::size_t shots = 0;
};

class ShotPlan
{
  public:
    /**
     * Partition @p total_shots into ceil(total/batch_size) batches.
     * Throws std::invalid_argument for a zero batch size.
     */
    ShotPlan(std::size_t total_shots, std::size_t batch_size);

    std::size_t totalShots() const { return totalShots_; }
    std::size_t batchSize() const { return batchSize_; }
    std::size_t numBatches() const { return batches_.size(); }

    const std::vector<ShotBatch>& batches() const { return batches_; }

    /**
     * The RNG substream for @p batch_index under @p job stream.
     * Defined as job.splitAt(batch_index): keyed by the explicit
     * index, so deriving substreams in any order (or concurrently)
     * yields the same streams.
     */
    static Rng substream(const Rng& job, std::size_t batch_index);

  private:
    std::size_t totalShots_;
    std::size_t batchSize_;
    std::vector<ShotBatch> batches_;
};

} // namespace qem

#endif // QEM_RUNTIME_SHOT_PLAN_HH
