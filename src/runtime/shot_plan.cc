#include "runtime/shot_plan.hh"

#include <stdexcept>

namespace qem
{

ShotPlan::ShotPlan(std::size_t total_shots, std::size_t batch_size)
    : totalShots_(total_shots), batchSize_(batch_size)
{
    if (batch_size == 0)
        throw std::invalid_argument("ShotPlan: batch size must be "
                                    "nonzero");
    batches_.reserve((total_shots + batch_size - 1) / batch_size);
    std::size_t first = 0;
    while (first < total_shots) {
        const std::size_t take =
            std::min(batch_size, total_shots - first);
        batches_.push_back({batches_.size(), first, take});
        first += take;
    }
}

Rng
ShotPlan::substream(const Rng& job, std::size_t batch_index)
{
    return job.splitAt(batch_index);
}

} // namespace qem
