/**
 * @file
 * Throughput accounting for one parallel job.
 *
 * Filled in by ParallelBackend::run and surfaced through
 * MachineSession so bench binaries can report shots/sec next to the
 * reproduced figures.
 */

#ifndef QEM_RUNTIME_RUNTIME_STATS_HH
#define QEM_RUNTIME_RUNTIME_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qem
{

struct RuntimeStats
{
    /** Trials executed by the job. */
    std::size_t shots = 0;
    /** Batches the job was split into. */
    std::size_t batches = 0;
    /** Worker threads the job ran on. */
    unsigned numThreads = 0;
    /** Wall-clock duration of the job. */
    double wallSeconds = 0.0;
    /** shots / wallSeconds (0 when the clock read 0). */
    double shotsPerSecond = 0.0;
    /** Shots executed by each worker, indexed by worker id. */
    std::vector<std::uint64_t> perWorkerShots;

    /** One-line human-readable summary. */
    std::string toString() const;
};

} // namespace qem

#endif // QEM_RUNTIME_RUNTIME_STATS_HH
