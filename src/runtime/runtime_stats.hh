/**
 * @file
 * Throughput and failure accounting for one parallel job.
 *
 * Filled in by ParallelBackend::run and surfaced through
 * MachineSession so bench binaries can report shots/sec next to the
 * reproduced figures, and so policies and the harness can tell a
 * clean run from a degraded (retried / salvaged) one.
 */

#ifndef QEM_RUNTIME_RUNTIME_STATS_HH
#define QEM_RUNTIME_RUNTIME_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qem
{

/** What the runtime does with a batch whose retries ran out. */
enum class SalvageMode
{
    /** Abort the whole run with BudgetExhausted (default). */
    FailFast,
    /**
     * Drop the batch, keep the run alive, and report the loss in
     * RunOutcome. The merged histogram then holds fewer trials than
     * requested — policies must check RunOutcome (or Counts::total)
     * before treating it as complete.
     */
    DropBatches,
};

/**
 * Failure-semantics summary of one submission: how much of the
 * requested work actually completed and what it took to get there.
 */
struct RunOutcome
{
    /** Trials the caller asked for. */
    std::size_t requestedShots = 0;
    /** Trials present in the returned histogram. */
    std::size_t completedShots = 0;
    /** Batches that succeeded only after at least one retry. */
    std::size_t retriedBatches = 0;
    /** Total re-submissions across all batches. */
    std::size_t totalRetries = 0;
    /** Batches abandoned under SalvageMode::DropBatches. */
    std::size_t droppedBatches = 0;
    /** Seconds spent sleeping in backoff. */
    double backoffSeconds = 0.0;
    /** Did the wall-clock deadline cut retrying short? */
    bool deadlineExceeded = false;
    /** Salvage policy the run executed under. */
    SalvageMode salvage = SalvageMode::FailFast;

    /** True iff every requested trial is in the histogram. */
    bool complete() const
    {
        return completedShots == requestedShots &&
               droppedBatches == 0;
    }

    /** True iff the run needed the resilience machinery at all. */
    bool degraded() const
    {
        return !complete() || retriedBatches > 0 ||
               deadlineExceeded;
    }

    /** One-line human-readable summary. */
    std::string toString() const;
};

struct RuntimeStats
{
    /** Trials executed by the job. */
    std::size_t shots = 0;
    /** Batches the job was split into. */
    std::size_t batches = 0;
    /** Worker threads the job ran on. */
    unsigned numThreads = 0;
    /** Wall-clock duration of the job. */
    double wallSeconds = 0.0;
    /** shots / wallSeconds (0 when the clock read 0). */
    double shotsPerSecond = 0.0;
    /** Shots executed by each worker, indexed by worker id. */
    std::vector<std::uint64_t> perWorkerShots;
    /** Failure-semantics summary of the job. */
    RunOutcome outcome;
    /**
     * False until the owning run() completes. A failed run leaves
     * stats zeroed-but-invalid instead of showing the previous
     * run's numbers.
     */
    bool valid = false;

    /** One-line human-readable summary. */
    std::string toString() const;
};

} // namespace qem

#endif // QEM_RUNTIME_RUNTIME_STATS_HH
