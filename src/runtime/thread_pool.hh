/**
 * @file
 * Fixed-size worker-thread pool with a shared task queue.
 *
 * The execution runtime (ParallelBackend) farms shot batches out to
 * this pool. Design goals, in order: deterministic shutdown (the
 * destructor drains every queued task before joining), exception
 * propagation (a task that throws surfaces the exception at the
 * submitter's future), and a stable worker index so callers can keep
 * per-worker state (e.g. a cloned simulator) without locking.
 */

#ifndef QEM_RUNTIME_THREAD_POOL_HH
#define QEM_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace qem
{

class ThreadPool
{
  public:
    /** How shutdown() treats tasks still waiting in the queue. */
    enum class ShutdownMode
    {
        /** Run every queued task to completion before joining. */
        Drain,
        /**
         * Discard queued tasks and join as soon as the running
         * ones finish. Discarded tasks never execute; their
         * futures fail with std::future_error (broken_promise).
         */
        Abort,
    };

    /**
     * Spawn @p num_threads workers. Throws std::invalid_argument
     * for zero threads.
     */
    explicit ThreadPool(unsigned num_threads);

    /**
     * Equivalent to shutdown(ShutdownMode::Drain): tasks submitted
     * before destruction always run to completion.
     */
    ~ThreadPool();

    /**
     * Stop accepting work and join every worker. Idempotent; a
     * second call (or the destructor after it) is a no-op, and the
     * first call's mode wins. In-flight tasks always finish —
     * Abort only discards tasks no worker has picked up yet.
     */
    void shutdown(ShutdownMode mode = ShutdownMode::Drain);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Index of the calling thread within its pool ([0, size())), or
     * -1 when called from a thread that is not a pool worker.
     */
    static int workerIndex();

    /** Tasks queued but not yet picked up by a worker. */
    std::size_t pendingTasks() const;

    /**
     * Queue @p fn for execution. The returned future yields fn's
     * result; if fn throws, future.get() rethrows the exception on
     * the submitter's thread. Throws std::runtime_error if the pool
     * is shutting down.
     */
    template <typename F>
    auto submit(F&& fn)
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        enqueue([task] { (*task)(); });
        return result;
    }

  private:
    /** Push one type-erased task; wakes one worker. */
    void enqueue(std::function<void()> task);

    /** Worker main loop; exits once stopping and the queue is dry. */
    void workerLoop(unsigned index);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace qem

#endif // QEM_RUNTIME_THREAD_POOL_HH
