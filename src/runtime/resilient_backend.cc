#include "runtime/resilient_backend.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "telemetry/telemetry.hh"

namespace qem
{

double
BackoffPolicy::delaySeconds(unsigned attempt, Rng& rng) const
{
    if (baseSeconds <= 0.0)
        return 0.0;
    // Saturating 2^attempt: past ~60 doublings the cap always wins.
    const double scale =
        attempt >= 60 ? maxSeconds
                      : baseSeconds *
                            static_cast<double>(1ULL << attempt);
    double delay = std::min(scale, maxSeconds);
    if (jitter > 0.0)
        delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    return std::min(delay, maxSeconds);
}

bool
isTransient(const std::exception& e)
{
    return dynamic_cast<const TransientError*>(&e) != nullptr;
}

void
backoffSleep(double seconds)
{
    if (seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
    }
}

ResilientBackend::ResilientBackend(Backend& inner,
                                   std::uint64_t seed,
                                   RetryOptions options)
    : inner_(inner), options_(options), rng_(seed)
{
    if (options_.maxRetries > 0 &&
        options_.backoff.baseSeconds < 0.0) {
        throw std::invalid_argument("ResilientBackend: negative "
                                    "backoff base");
    }
}

Counts
ResilientBackend::run(const Circuit& circuit, std::size_t shots)
{
    const auto start = std::chrono::steady_clock::now();
    outcome_ = RunOutcome{};
    outcome_.requestedShots = shots;

    for (unsigned attempt = 0;; ++attempt) {
        try {
            Counts out = inner_.run(circuit, shots);
            outcome_.completedShots = out.total();
            if (attempt > 0)
                outcome_.retriedBatches = 1;
            return out;
        } catch (const TransientError& e) {
            if (attempt >= options_.maxRetries) {
                throw BudgetExhausted(
                    "retries exhausted after " +
                    std::to_string(attempt + 1) +
                    " attempts: " + e.what());
            }
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (options_.deadlineSeconds > 0.0 &&
                elapsed >= options_.deadlineSeconds) {
                outcome_.deadlineExceeded = true;
                telemetry::count("runtime.deadline_exceeded");
                throw BudgetExhausted(
                    "deadline of " +
                    std::to_string(options_.deadlineSeconds) +
                    " s exceeded after " +
                    std::to_string(attempt + 1) +
                    " attempts: " + e.what());
            }
            const double delay =
                options_.backoff.delaySeconds(attempt, rng_);
            outcome_.totalRetries += 1;
            outcome_.backoffSeconds += delay;
            telemetry::count("runtime.retries");
            telemetry::observe("runtime.backoff_seconds", delay);
            backoffSleep(delay);
        }
        // FatalError and non-taxonomy exceptions propagate.
    }
}

} // namespace qem
