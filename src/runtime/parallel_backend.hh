/**
 * @file
 * Backend adapter that executes shot batches on a thread pool.
 *
 * ParallelBackend wraps any ShardedBackend (TrajectorySimulator,
 * IdealSimulator): it clones one simulator per worker thread, splits
 * every run() into a ShotPlan of fixed-size batches, binds batch i
 * to the RNG substream derived at index i, runs batches concurrently
 * on the pool, and merges the per-batch histograms in batch-index
 * order. The merged Counts is bit-identical for the same seed
 * regardless of thread count (see docs/runtime.md).
 *
 * Failure semantics (docs/resilience.md): a batch that throws
 * TransientError is re-submitted — with exponential backoff, on a
 * worker other than the one that failed it — up to
 * RuntimeOptions::maxRetries times. A recovered batch re-derives
 * its index-keyed RNG substream, so the merged histogram is
 * unchanged by which batches failed. Exhausted batches either
 * abort the run with BudgetExhausted (SalvageMode::FailFast) or
 * are dropped and reported in RunOutcome
 * (SalvageMode::DropBatches). Setting `INVERTQ_FAULTS` wraps every
 * worker in a FaultInjectingBackend (see fault_injection.hh).
 */

#ifndef QEM_RUNTIME_PARALLEL_BACKEND_HH
#define QEM_RUNTIME_PARALLEL_BACKEND_HH

#include <memory>
#include <mutex>
#include <vector>

#include "qsim/simulator.hh"
#include "runtime/resilient_backend.hh"
#include "runtime/runtime_stats.hh"
#include "runtime/shot_plan.hh"
#include "runtime/thread_pool.hh"

namespace qem
{

/** Tuning knobs for the parallel execution runtime. */
struct RuntimeOptions
{
    /** Worker threads; 0 = one per hardware thread. */
    unsigned numThreads = 0;
    /** Shots per batch (the unit of parallel work). */
    std::size_t batchSize = 256;
    /**
     * Re-submissions allowed per batch after a TransientError
     * before the batch counts as lost; 0 disables retrying.
     * FatalError and non-taxonomy exceptions are never retried.
     */
    unsigned maxRetries = 2;
    /** Backoff between re-submissions of a batch. */
    BackoffPolicy backoff{};
    /**
     * Wall-clock budget in seconds for the whole run() including
     * retries; 0 = unlimited. Checked before each re-submission (a
     * running batch is never interrupted).
     */
    double deadlineSeconds = 0.0;
    /** What to do with a batch whose retry budget ran out. */
    SalvageMode salvage = SalvageMode::FailFast;
};

class ParallelBackend : public Backend
{
  public:
    /**
     * @param prototype Simulator to clone per worker (not retained).
     * @param seed Root of the runtime's RNG tree; each run() call
     *             derives a fresh job stream, each batch a substream
     *             of that, so repeated runs differ but a
     *             reconstructed backend replays the same sequence —
     *             mirroring the serial simulators' contract.
     * @param options Thread count and batch size.
     */
    ParallelBackend(const ShardedBackend& prototype,
                    std::uint64_t seed,
                    RuntimeOptions options = {});

    Counts run(const Circuit& circuit, std::size_t shots) override;

    unsigned numQubits() const override
    {
        return workers_.front()->numQubits();
    }

    /** Worker threads actually spawned. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Throughput and failure accounting of the most recent run().
     * stats().valid is false before the first run() and after a
     * run() that threw — a failed run never reports the previous
     * run's numbers.
     *
     * The returned reference aliases state the next run() on this
     * backend rewrites; callers that share a backend across threads
     * (or read stats while another thread may call run()) must use
     * statsSnapshot() instead.
     */
    const RuntimeStats& lastRunStats() const { return stats_; }

    /** Failure-semantics summary of the most recent run(). Same
     *  aliasing caveat as lastRunStats(). */
    const RunOutcome& lastOutcome() const { return stats_.outcome; }

    /** Thread-safe copy of the most recent run()'s stats. */
    RuntimeStats statsSnapshot() const
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        return stats_;
    }

    /**
     * Mark the current stats invalid without running. Callers that
     * wrap several run() calls into one logical operation (e.g.
     * MachineSession::runPolicy) use this so an operation that
     * fails before its first batch cannot show stale throughput.
     */
    void invalidateStats()
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_ = RuntimeStats{};
    }

  private:
    std::vector<std::unique_ptr<ShardedBackend>> workers_;
    std::unique_ptr<ThreadPool> pool_; // Null for a single worker.
    Rng rng_;
    RuntimeOptions options_;
    /** Guards stats_ and the per-run job-stream draw from rng_. */
    mutable std::mutex statsMutex_;
    RuntimeStats stats_;
};

} // namespace qem

#endif // QEM_RUNTIME_PARALLEL_BACKEND_HH
