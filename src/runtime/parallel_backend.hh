/**
 * @file
 * Backend adapter that executes shot batches on a thread pool.
 *
 * ParallelBackend wraps any ShardedBackend (TrajectorySimulator,
 * IdealSimulator): it clones one simulator per worker thread, splits
 * every run() into a ShotPlan of fixed-size batches, binds batch i
 * to the RNG substream derived at index i, runs batches concurrently
 * on the pool, and merges the per-batch histograms in batch-index
 * order. The merged Counts is bit-identical for the same seed
 * regardless of thread count (see docs/runtime.md).
 */

#ifndef QEM_RUNTIME_PARALLEL_BACKEND_HH
#define QEM_RUNTIME_PARALLEL_BACKEND_HH

#include <memory>
#include <vector>

#include "qsim/simulator.hh"
#include "runtime/runtime_stats.hh"
#include "runtime/shot_plan.hh"
#include "runtime/thread_pool.hh"

namespace qem
{

/** Tuning knobs for the parallel execution runtime. */
struct RuntimeOptions
{
    /** Worker threads; 0 = one per hardware thread. */
    unsigned numThreads = 0;
    /** Shots per batch (the unit of parallel work). */
    std::size_t batchSize = 256;
};

class ParallelBackend : public Backend
{
  public:
    /**
     * @param prototype Simulator to clone per worker (not retained).
     * @param seed Root of the runtime's RNG tree; each run() call
     *             derives a fresh job stream, each batch a substream
     *             of that, so repeated runs differ but a
     *             reconstructed backend replays the same sequence —
     *             mirroring the serial simulators' contract.
     * @param options Thread count and batch size.
     */
    ParallelBackend(const ShardedBackend& prototype,
                    std::uint64_t seed,
                    RuntimeOptions options = {});

    Counts run(const Circuit& circuit, std::size_t shots) override;

    unsigned numQubits() const override
    {
        return workers_.front()->numQubits();
    }

    /** Worker threads actually spawned. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Throughput of the most recent run() (zeroed before that). */
    const RuntimeStats& lastRunStats() const { return stats_; }

  private:
    std::vector<std::unique_ptr<ShardedBackend>> workers_;
    std::unique_ptr<ThreadPool> pool_; // Null for a single worker.
    Rng rng_;
    RuntimeOptions options_;
    RuntimeStats stats_;
};

} // namespace qem

#endif // QEM_RUNTIME_PARALLEL_BACKEND_HH
