/**
 * @file
 * Reliability metrics of Section 4.2: PST, IST, and ROCA.
 */

#ifndef QEM_METRICS_RELIABILITY_HH
#define QEM_METRICS_RELIABILITY_HH

#include <vector>

#include "qsim/counts.hh"

namespace qem
{

/**
 * Probability of Successful Trial: fraction of trials whose outcome
 * is in @p accepted (for QAOA the paper accepts the optimal
 * partition and its complement).
 */
double pst(const Counts& counts,
           const std::vector<BasisState>& accepted);

/** PST with a single accepted outcome. */
double pst(const Counts& counts, BasisState accepted);

/**
 * Inference Strength: frequency of the correct output divided by the
 * frequency of the most frequent *incorrect* output. IST > 1 means
 * the correct answer tops the output log. Returns +inf when no
 * incorrect outcome was observed, and 0 when the correct outcome was
 * never observed alongside observed incorrect ones; an entirely
 * empty log yields 0.
 */
double ist(const Counts& counts,
           const std::vector<BasisState>& accepted);

/** IST with a single accepted outcome. */
double ist(const Counts& counts, BasisState accepted);

/**
 * Rank of Correct Answer: position (1-based) of the best-ranked
 * accepted outcome when outcomes are sorted by descending frequency.
 * An accepted outcome that never occurred ranks after every observed
 * outcome (distinct()+1).
 */
std::size_t roca(const Counts& counts,
                 const std::vector<BasisState>& accepted);

/** ROCA with a single accepted outcome. */
std::size_t roca(const Counts& counts, BasisState accepted);

/** PST/IST/ROCA bundle for one experiment. */
struct ReliabilityReport
{
    double pst = 0.0;
    double ist = 0.0;
    std::size_t roca = 0;
};

/** Compute all three metrics at once. */
ReliabilityReport reliability(const Counts& counts,
                              const std::vector<BasisState>& accepted);

} // namespace qem

#endif // QEM_METRICS_RELIABILITY_HH
