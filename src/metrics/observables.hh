/**
 * @file
 * Diagonal observables estimated from an output log.
 *
 * Everything measurable from computational-basis counts: Z-string
 * parities (the building block of Ising/max-cut energies and GHZ
 * population diagnostics) and the Hamming-distance spectrum of the
 * errors (how far wrong the wrong answers are — the masking
 * analysis of Section 3.3).
 */

#ifndef QEM_METRICS_OBSERVABLES_HH
#define QEM_METRICS_OBSERVABLES_HH

#include <string>
#include <vector>

#include "qsim/counts.hh"

namespace qem
{

/**
 * A point estimate with its one-sigma shot-noise standard error.
 * (Named standardError, not "stderr": stderr is a stdio macro.)
 */
struct ExpectationEstimate
{
    double value = 0.0;
    double standardError = 0.0;
};

/**
 * < prod_{i in mask} Z_i >: the expectation of a Z-string, i.e.
 * the mean parity (+1 for even, -1 for odd) of the masked bits
 * over the log. Empty logs yield 0.
 */
double zParityExpectation(const Counts& counts, BasisState mask);

/** All single-qubit <Z_i> for i in [0, bits). */
std::vector<double> singleQubitZExpectations(const Counts& counts);

/**
 * Z-string expectation with its standard error. The per-trial
 * observable is +-1, so SE = sqrt((1 - v^2) / N) — the plug-in
 * binomial error of the parity mean. Empty logs yield {0, 0}.
 */
ExpectationEstimate zParityWithError(const Counts& counts,
                                     BasisState mask);

/** All single-qubit <Z_i> with standard errors. */
std::vector<ExpectationEstimate> singleQubitZWithErrors(
    const Counts& counts);

/**
 * Z-string expectation of an analytic outcome distribution (dense
 * vector over 2^bits states, as produced by ExactOracle) — the
 * shot-free limit the sampled estimate converges to.
 */
double zParityFromDistribution(const std::vector<double>& probs,
                               BasisState mask);

/** All single-qubit <Z_i> of an analytic distribution. */
std::vector<double> zExpectationsFromDistribution(
    const std::vector<double>& probs, unsigned bits);

/**
 * A diagonal observable: a weighted sum of Z-strings,
 * O = sum_t coefficient_t * prod_{i in mask_t} Z_i. Everything
 * diagonal in the computational basis (Ising energies, max-cut
 * costs, GHZ witnesses' diagonal part) fits this form, and its
 * value on one trial outcome is a plain signed sum — so both the
 * sample mean and the sample variance are exact from the log.
 */
struct DiagonalObservable
{
    struct Term
    {
        double coefficient = 1.0;
        BasisState mask = 0;
    };

    std::string name;
    std::vector<Term> terms;
};

/** Value of @p obs on a single outcome. */
double observableValue(const DiagonalObservable& obs,
                       BasisState outcome);

/**
 * Sample mean of @p obs over the log, with the standard error of
 * the mean (sample standard deviation / sqrt(N)). Empty logs yield
 * {0, 0}.
 */
ExpectationEstimate expectation(const DiagonalObservable& obs,
                                const Counts& counts);

/** Analytic expectation of @p obs under a dense distribution. */
double expectationFromDistribution(const DiagonalObservable& obs,
                                   const std::vector<double>& probs);

/**
 * Error-distance spectrum: result[d] is the fraction of trials
 * whose outcome lies at Hamming distance d from @p reference.
 * result[0] is the PST.
 */
std::vector<double> hammingDistanceSpectrum(const Counts& counts,
                                            BasisState reference);

/**
 * Mean Hamming distance of the log from @p reference — a scalar
 * "how corrupted is this log" figure.
 */
double meanHammingDistance(const Counts& counts,
                           BasisState reference);

} // namespace qem

#endif // QEM_METRICS_OBSERVABLES_HH
