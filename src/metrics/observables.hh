/**
 * @file
 * Diagonal observables estimated from an output log.
 *
 * Everything measurable from computational-basis counts: Z-string
 * parities (the building block of Ising/max-cut energies and GHZ
 * population diagnostics) and the Hamming-distance spectrum of the
 * errors (how far wrong the wrong answers are — the masking
 * analysis of Section 3.3).
 */

#ifndef QEM_METRICS_OBSERVABLES_HH
#define QEM_METRICS_OBSERVABLES_HH

#include <vector>

#include "qsim/counts.hh"

namespace qem
{

/**
 * < prod_{i in mask} Z_i >: the expectation of a Z-string, i.e.
 * the mean parity (+1 for even, -1 for odd) of the masked bits
 * over the log. Empty logs yield 0.
 */
double zParityExpectation(const Counts& counts, BasisState mask);

/** All single-qubit <Z_i> for i in [0, bits). */
std::vector<double> singleQubitZExpectations(const Counts& counts);

/**
 * Error-distance spectrum: result[d] is the fraction of trials
 * whose outcome lies at Hamming distance d from @p reference.
 * result[0] is the PST.
 */
std::vector<double> hammingDistanceSpectrum(const Counts& counts,
                                            BasisState reference);

/**
 * Mean Hamming distance of the log from @p reference — a scalar
 * "how corrupted is this log" figure.
 */
double meanHammingDistance(const Counts& counts,
                           BasisState reference);

} // namespace qem

#endif // QEM_METRICS_OBSERVABLES_HH
