#include "metrics/stats.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        throw std::invalid_argument("mean: empty sample");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / xs.size();
}

double
stddev(const std::vector<double>& xs)
{
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / xs.size());
}

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument("pearson: size mismatch");
    if (xs.size() < 2)
        throw std::invalid_argument("pearson: need >= 2 samples");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
meanSquaredError(const std::vector<double>& a,
                 const std::vector<double>& b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("meanSquaredError: size mismatch");
    if (a.empty())
        throw std::invalid_argument("meanSquaredError: empty input");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return acc / a.size();
}

std::vector<double>
normalizeToMax(const std::vector<double>& xs)
{
    const double top = *std::max_element(xs.begin(), xs.end());
    if (top <= 0.0)
        return xs;
    std::vector<double> out(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        out[i] = xs[i] / top;
    return out;
}

std::vector<double>
normalizeToSum(const std::vector<double>& xs)
{
    double total = 0.0;
    for (double x : xs)
        total += x;
    if (total <= 0.0)
        return xs;
    std::vector<double> out(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        out[i] = xs[i] / total;
    return out;
}

ConfidenceInterval
wilsonInterval(std::uint64_t successes, std::uint64_t trials,
               double z)
{
    if (trials == 0)
        throw std::invalid_argument("wilsonInterval: zero trials");
    if (successes > trials)
        throw std::invalid_argument("wilsonInterval: successes "
                                    "exceed trials");
    if (z <= 0.0)
        throw std::invalid_argument("wilsonInterval: nonpositive "
                                    "quantile");
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) /
        denom;
    return {center - half, center + half};
}

std::vector<double>
averageByHammingWeight(const std::vector<double>& values, unsigned n)
{
    if (values.size() != (std::size_t{1} << n))
        throw std::invalid_argument("averageByHammingWeight: size is "
                                    "not 2^n");
    std::vector<double> sums(n + 1, 0.0);
    std::vector<std::size_t> cnts(n + 1, 0);
    for (BasisState s = 0; s < values.size(); ++s) {
        const int w = hammingWeight(s);
        sums[w] += values[s];
        ++cnts[w];
    }
    for (unsigned w = 0; w <= n; ++w)
        sums[w] /= cnts[w];
    return sums;
}

} // namespace qem
