/**
 * @file
 * Small statistics toolbox: moments, Pearson correlation (the
 * paper's BMS-vs-Hamming-weight coefficient), mean squared error
 * (the Appendix-A ESCT validation), and Hamming-weight aggregation
 * (Fig 5).
 */

#ifndef QEM_METRICS_STATS_HH
#define QEM_METRICS_STATS_HH

#include <map>
#include <vector>

#include "qsim/types.hh"

namespace qem
{

double mean(const std::vector<double>& xs);

/** Population standard deviation. */
double stddev(const std::vector<double>& xs);

/**
 * Pearson correlation coefficient of two equal-length samples;
 * returns 0 when either sample is constant.
 */
double pearson(const std::vector<double>& xs,
               const std::vector<double>& ys);

/** Mean squared error between two equal-length vectors. */
double meanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

/** Normalize a vector so its maximum is 1 (no-op on all-zero). */
std::vector<double> normalizeToMax(const std::vector<double>& xs);

/** Normalize a vector so it sums to 1 (no-op on all-zero). */
std::vector<double> normalizeToSum(const std::vector<double>& xs);

/**
 * Average per-state values over Hamming-weight classes:
 * result[w] = mean of values[s] over all n-bit states s with
 * popcount w. @p values must have size 2^n.
 */
std::vector<double> averageByHammingWeight(
    const std::vector<double>& values, unsigned n);

/** A two-sided confidence interval. */
struct ConfidenceInterval
{
    double low = 0.0;
    double high = 0.0;

    bool contains(double x) const { return x >= low && x <= high; }
    double width() const { return high - low; }
};

/**
 * Wilson score interval for a binomial proportion — the right way
 * to put error bars on a PST estimated from @p successes out of
 * @p trials shots (never escapes [0, 1], sane at the extremes).
 *
 * @param z Normal quantile; 1.96 is the 95% interval.
 */
ConfidenceInterval wilsonInterval(std::uint64_t successes,
                                  std::uint64_t trials,
                                  double z = 1.96);

} // namespace qem

#endif // QEM_METRICS_STATS_HH
