#include "metrics/reliability.hh"

#include <algorithm>
#include <limits>

namespace qem
{

namespace
{

bool
isAccepted(BasisState outcome,
           const std::vector<BasisState>& accepted)
{
    return std::find(accepted.begin(), accepted.end(), outcome) !=
           accepted.end();
}

} // namespace

double
pst(const Counts& counts, const std::vector<BasisState>& accepted)
{
    if (counts.total() == 0)
        return 0.0;
    std::uint64_t good = 0;
    for (BasisState s : accepted)
        good += counts.get(s);
    return static_cast<double>(good) /
           static_cast<double>(counts.total());
}

double
pst(const Counts& counts, BasisState accepted)
{
    return pst(counts, std::vector<BasisState>{accepted});
}

double
ist(const Counts& counts, const std::vector<BasisState>& accepted)
{
    if (counts.total() == 0)
        return 0.0;
    std::uint64_t good = 0;
    for (BasisState s : accepted)
        good += counts.get(s);
    std::uint64_t strongest_bad = 0;
    for (const auto& [outcome, n] : counts.raw()) {
        if (!isAccepted(outcome, accepted))
            strongest_bad = std::max(strongest_bad, n);
    }
    if (strongest_bad == 0) {
        return good > 0 ? std::numeric_limits<double>::infinity()
                        : 0.0;
    }
    return static_cast<double>(good) /
           static_cast<double>(strongest_bad);
}

double
ist(const Counts& counts, BasisState accepted)
{
    return ist(counts, std::vector<BasisState>{accepted});
}

std::size_t
roca(const Counts& counts, const std::vector<BasisState>& accepted)
{
    const auto sorted = counts.sortedByCount();
    for (std::size_t rank = 0; rank < sorted.size(); ++rank) {
        if (isAccepted(sorted[rank].first, accepted))
            return rank + 1;
    }
    return sorted.size() + 1;
}

std::size_t
roca(const Counts& counts, BasisState accepted)
{
    return roca(counts, std::vector<BasisState>{accepted});
}

ReliabilityReport
reliability(const Counts& counts,
            const std::vector<BasisState>& accepted)
{
    return {pst(counts, accepted), ist(counts, accepted),
            roca(counts, accepted)};
}

} // namespace qem
