#include "metrics/observables.hh"

#include "qsim/bitstring.hh"

namespace qem
{

double
zParityExpectation(const Counts& counts, BasisState mask)
{
    if (counts.total() == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto& [outcome, n] : counts.raw()) {
        const int parity = hammingWeight(outcome & mask) & 1;
        acc += (parity ? -1.0 : 1.0) * static_cast<double>(n);
    }
    return acc / static_cast<double>(counts.total());
}

std::vector<double>
singleQubitZExpectations(const Counts& counts)
{
    std::vector<double> out(counts.numBits());
    for (unsigned i = 0; i < counts.numBits(); ++i)
        out[i] = zParityExpectation(counts, BasisState{1} << i);
    return out;
}

std::vector<double>
hammingDistanceSpectrum(const Counts& counts, BasisState reference)
{
    std::vector<double> spectrum(counts.numBits() + 1, 0.0);
    if (counts.total() == 0)
        return spectrum;
    for (const auto& [outcome, n] : counts.raw()) {
        spectrum[hammingDistance(outcome, reference)] +=
            static_cast<double>(n);
    }
    for (double& v : spectrum)
        v /= static_cast<double>(counts.total());
    return spectrum;
}

double
meanHammingDistance(const Counts& counts, BasisState reference)
{
    if (counts.total() == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto& [outcome, n] : counts.raw())
        acc += hammingDistance(outcome, reference) *
               static_cast<double>(n);
    return acc / static_cast<double>(counts.total());
}

} // namespace qem
