#include "metrics/observables.hh"

#include <cmath>

#include "qsim/bitstring.hh"

namespace qem
{

double
zParityExpectation(const Counts& counts, BasisState mask)
{
    if (counts.total() == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto& [outcome, n] : counts.raw()) {
        const int parity = hammingWeight(outcome & mask) & 1;
        acc += (parity ? -1.0 : 1.0) * static_cast<double>(n);
    }
    return acc / static_cast<double>(counts.total());
}

std::vector<double>
singleQubitZExpectations(const Counts& counts)
{
    std::vector<double> out(counts.numBits());
    for (unsigned i = 0; i < counts.numBits(); ++i)
        out[i] = zParityExpectation(counts, BasisState{1} << i);
    return out;
}

ExpectationEstimate
zParityWithError(const Counts& counts, BasisState mask)
{
    if (counts.total() == 0)
        return {};
    const double v = zParityExpectation(counts, mask);
    // Per-trial parity is +-1: Var = 1 - v^2, SE = sqrt(Var / N).
    const double var = std::max(0.0, 1.0 - v * v);
    return {v, std::sqrt(var /
                         static_cast<double>(counts.total()))};
}

std::vector<ExpectationEstimate>
singleQubitZWithErrors(const Counts& counts)
{
    std::vector<ExpectationEstimate> out(counts.numBits());
    for (unsigned i = 0; i < counts.numBits(); ++i)
        out[i] = zParityWithError(counts, BasisState{1} << i);
    return out;
}

std::vector<double>
zExpectationsFromDistribution(const std::vector<double>& probs,
                              unsigned bits)
{
    std::vector<double> out(bits);
    for (unsigned i = 0; i < bits; ++i)
        out[i] = zParityFromDistribution(probs, BasisState{1} << i);
    return out;
}

double
zParityFromDistribution(const std::vector<double>& probs,
                        BasisState mask)
{
    double acc = 0.0;
    for (BasisState s = 0; s < probs.size(); ++s) {
        const int parity = hammingWeight(s & mask) & 1;
        acc += (parity ? -1.0 : 1.0) * probs[s];
    }
    return acc;
}

double
observableValue(const DiagonalObservable& obs, BasisState outcome)
{
    double value = 0.0;
    for (const DiagonalObservable::Term& term : obs.terms) {
        const int parity = hammingWeight(outcome & term.mask) & 1;
        value += (parity ? -1.0 : 1.0) * term.coefficient;
    }
    return value;
}

ExpectationEstimate
expectation(const DiagonalObservable& obs, const Counts& counts)
{
    if (counts.total() == 0)
        return {};
    const auto n_total = static_cast<double>(counts.total());
    double mean = 0.0;
    for (const auto& [outcome, n] : counts.raw())
        mean += observableValue(obs, outcome) *
                static_cast<double>(n);
    mean /= n_total;
    double var = 0.0;
    for (const auto& [outcome, n] : counts.raw()) {
        const double d = observableValue(obs, outcome) - mean;
        var += d * d * static_cast<double>(n);
    }
    var /= n_total;
    return {mean, std::sqrt(var / n_total)};
}

double
expectationFromDistribution(const DiagonalObservable& obs,
                            const std::vector<double>& probs)
{
    double acc = 0.0;
    for (BasisState s = 0; s < probs.size(); ++s) {
        if (probs[s] != 0.0)
            acc += observableValue(obs, s) * probs[s];
    }
    return acc;
}

std::vector<double>
hammingDistanceSpectrum(const Counts& counts, BasisState reference)
{
    std::vector<double> spectrum(counts.numBits() + 1, 0.0);
    if (counts.total() == 0)
        return spectrum;
    for (const auto& [outcome, n] : counts.raw()) {
        spectrum[hammingDistance(outcome, reference)] +=
            static_cast<double>(n);
    }
    for (double& v : spectrum)
        v /= static_cast<double>(counts.total());
    return spectrum;
}

double
meanHammingDistance(const Counts& counts, BasisState reference)
{
    if (counts.total() == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto& [outcome, n] : counts.raw())
        acc += hammingDistance(outcome, reference) *
               static_cast<double>(n);
    return acc / static_cast<double>(counts.total());
}

} // namespace qem
