/**
 * @file
 * Quantum Approximate Optimization Algorithm (QAOA) for max-cut.
 *
 * Standard Farhi-Goldstone-Gutmann ansatz: uniform superposition,
 * then p alternating layers of the cost unitary exp(-i gamma C)
 * (realized per edge as CX - RZ - CX) and the transverse mixer
 * exp(-i beta sum X). Angles are optimized classically against the
 * ideal simulator, exactly as a 2019-era QAOA pipeline would tune
 * them before submitting jobs to hardware.
 */

#ifndef QEM_KERNELS_QAOA_HH
#define QEM_KERNELS_QAOA_HH

#include "kernels/graph.hh"
#include "qsim/circuit.hh"
#include "qsim/counts.hh"

namespace qem
{

/** One (gamma, beta) pair per QAOA layer. */
struct QaoaAngles
{
    std::vector<double> gamma;
    std::vector<double> beta;

    unsigned layers() const
    {
        return static_cast<unsigned>(gamma.size());
    }
};

/**
 * Build the measured QAOA circuit for @p graph with the given
 * angles.
 */
Circuit qaoaCircuit(const Graph& graph, const QaoaAngles& angles);

/**
 * Expected cut value <C> of the ideal (noise-free) QAOA state.
 * The classical objective the optimizer maximizes.
 */
double qaoaExpectedCut(const Graph& graph, const QaoaAngles& angles);

/**
 * Ideal probability of measuring @p assignment from the QAOA state.
 */
double qaoaIdealProbability(const Graph& graph,
                            const QaoaAngles& angles,
                            BasisState assignment);

/**
 * Expected cut value of a *sampled* output log: the estimator a
 * QAOA outer loop would actually compute from hardware shots.
 * Readout bias corrupts it (every 1 -> 0 flip re-labels a
 * partition), which makes energy estimation another consumer of
 * measurement mitigation.
 */
double sampledExpectedCut(const Graph& graph, const Counts& counts);

/**
 * Optimize angles for @p layers QAOA layers: coarse grid search over
 * each (gamma, beta) plane followed by rounds of coordinate descent.
 * Deterministic.
 *
 * @param graph Problem instance.
 * @param layers p, the number of layers.
 * @param grid Grid points per angle in the coarse phase.
 * @param refine_rounds Coordinate-descent sweeps in the fine phase.
 */
QaoaAngles optimizeQaoaAngles(const Graph& graph, unsigned layers,
                              unsigned grid = 8,
                              unsigned refine_rounds = 3);

} // namespace qem

#endif // QEM_KERNELS_QAOA_HH
