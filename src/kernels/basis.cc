#include "kernels/basis.hh"

#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

Circuit
basisStatePrep(unsigned n, BasisState s, bool measure)
{
    if (n == 0 || n > 64)
        throw std::invalid_argument("basisStatePrep: bad qubit count");
    if (n < 64 && (s >> n) != 0)
        throw std::invalid_argument("basisStatePrep: state wider than "
                                    "register");
    Circuit circuit(n);
    for (Qubit q = 0; q < n; ++q) {
        if (getBit(s, q))
            circuit.x(q);
    }
    if (measure)
        circuit.measureAll();
    return circuit;
}

Circuit
uniformSuperposition(unsigned n, bool measure)
{
    Circuit circuit(n);
    for (Qubit q = 0; q < n; ++q)
        circuit.h(q);
    if (measure)
        circuit.measureAll();
    return circuit;
}

Circuit
ghzState(unsigned n, bool measure)
{
    Circuit circuit(n);
    circuit.h(0);
    for (Qubit q = 0; q + 1 < n; ++q)
        circuit.cx(q, q + 1);
    if (measure)
        circuit.measureAll();
    return circuit;
}

} // namespace qem
