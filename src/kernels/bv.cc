#include "kernels/bv.hh"

#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

namespace
{

/** Shared gate body: prep, oracle, un-Hadamard; no measurement. */
Circuit
bvBody(unsigned n, BasisState key)
{
    if (n == 0 || n > 63)
        throw std::invalid_argument("bernsteinVazirani: bad key "
                                    "width");
    if ((key >> n) != 0)
        throw std::invalid_argument("bernsteinVazirani: key wider "
                                    "than n bits");
    const Qubit ancilla = n;
    Circuit circuit(n + 1, static_cast<int>(n + 1));
    // Ancilla to |->, key register to uniform superposition.
    circuit.x(ancilla);
    for (Qubit q = 0; q <= ancilla; ++q)
        circuit.h(q);
    // Phase oracle: CX from every set key bit into the ancilla.
    for (Qubit q = 0; q < n; ++q) {
        if (getBit(key, q))
            circuit.cx(q, ancilla);
    }
    // Interference: undo the Hadamards on the key register.
    for (Qubit q = 0; q < n; ++q)
        circuit.h(q);
    return circuit;
}

} // namespace

Circuit
bernsteinVazirani(unsigned n, BasisState key)
{
    Circuit circuit = bvBody(n, key);
    for (Qubit q = 0; q < n; ++q)
        circuit.measure(q, q);
    return circuit;
}

Circuit
bernsteinVaziraniFull(unsigned n, BasisState target)
{
    if ((target >> (n + 1)) != 0)
        throw std::invalid_argument("bernsteinVaziraniFull: target "
                                    "wider than n+1 bits");
    const BasisState key = target & allOnes(n);
    Circuit circuit = bvBody(n, key);
    const Qubit ancilla = n;
    // Return the ancilla from |-> to |1>, then steer it to the
    // requested readout value.
    circuit.h(ancilla);
    if (!getBit(target, ancilla))
        circuit.x(ancilla);
    circuit.measureAll();
    return circuit;
}

} // namespace qem
