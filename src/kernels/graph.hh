/**
 * @file
 * Weighted undirected graphs and max-cut utilities for QAOA.
 */

#ifndef QEM_KERNELS_GRAPH_HH
#define QEM_KERNELS_GRAPH_HH

#include <cstdint>
#include <tuple>
#include <vector>

#include "qsim/types.hh"

namespace qem
{

class Graph
{
  public:
    explicit Graph(unsigned num_nodes);

    unsigned numNodes() const { return numNodes_; }

    /** Add an undirected weighted edge; duplicates are rejected. */
    void addEdge(unsigned a, unsigned b, double weight = 1.0);

    const std::vector<std::tuple<unsigned, unsigned, double>>&
    edges() const
    {
        return edges_;
    }

    std::size_t numEdges() const { return edges_.size(); }

    bool hasEdge(unsigned a, unsigned b) const;

    /**
     * Cut value of the partition encoded by @p assignment: the total
     * weight of edges whose endpoints fall on different sides (bit i
     * of @p assignment is node i's side).
     */
    double cutValue(BasisState assignment) const;

  private:
    unsigned numNodes_;
    std::vector<std::tuple<unsigned, unsigned, double>> edges_;
};

/** Result of exhaustive max-cut search. */
struct MaxCutResult
{
    double value = 0.0;
    /** Every assignment achieving the optimum (complement pairs). */
    std::vector<BasisState> argmax;
};

/** Exhaustive max-cut over all 2^n assignments (n <= 24). */
MaxCutResult bruteForceMaxCut(const Graph& graph);

/**
 * Complete bipartite graph between the nodes with a set bit in
 * @p side and the rest; its unique max cut (up to complement) is
 * exactly @p side. Used to build QAOA instances with a prescribed
 * optimal output.
 */
Graph completeBipartite(unsigned num_nodes, BasisState side);

/** Cycle 0-1-...-(n-1)-0. */
Graph cycleGraph(unsigned num_nodes);

/** Star with the given center. */
Graph starGraph(unsigned num_nodes, unsigned center = 0);

/**
 * Search (seeded, deterministic) for a graph with exactly
 * @p num_edges unit-weight edges whose unique max cut is
 * {target, ~target}. Falls back to completeBipartite(target) when
 * the random search fails — the caller always receives a graph with
 * the requested optimum, possibly with a different edge count.
 */
Graph synthesizeGraphForCut(unsigned num_nodes, std::size_t num_edges,
                            BasisState target,
                            std::uint64_t seed = 7);

} // namespace qem

#endif // QEM_KERNELS_GRAPH_HH
