#include "kernels/qaoa.hh"

#include <cmath>
#include <stdexcept>

#include "qsim/simulator.hh"

namespace qem
{

namespace
{

/** Unitary part of the QAOA circuit (no measurements). */
Circuit
qaoaBody(const Graph& graph, const QaoaAngles& angles)
{
    if (angles.gamma.size() != angles.beta.size())
        throw std::invalid_argument("qaoaCircuit: gamma/beta size "
                                    "mismatch");
    if (angles.gamma.empty())
        throw std::invalid_argument("qaoaCircuit: zero layers");

    const unsigned n = graph.numNodes();
    Circuit circuit(n);
    for (Qubit q = 0; q < n; ++q)
        circuit.h(q);
    for (unsigned layer = 0; layer < angles.layers(); ++layer) {
        const double gamma = angles.gamma[layer];
        const double beta = angles.beta[layer];
        // Cost unitary: exp(-i gamma w Z_a Z_b) per edge via
        // CX - RZ(2 gamma w) - CX.
        for (const auto& [a, b, w] : graph.edges()) {
            circuit.cx(a, b);
            circuit.rz(2.0 * gamma * w, b);
            circuit.cx(a, b);
        }
        // Mixer: RX(2 beta) on every node.
        for (Qubit q = 0; q < n; ++q)
            circuit.rx(2.0 * beta, q);
    }
    return circuit;
}

/** Ideal output distribution of the QAOA state. */
std::vector<double>
qaoaIdealDistribution(const Graph& graph, const QaoaAngles& angles)
{
    IdealSimulator sim(graph.numNodes());
    return sim.stateOf(qaoaBody(graph, angles)).probabilities();
}

} // namespace

Circuit
qaoaCircuit(const Graph& graph, const QaoaAngles& angles)
{
    Circuit circuit = qaoaBody(graph, angles);
    circuit.measureAll();
    return circuit;
}

double
qaoaExpectedCut(const Graph& graph, const QaoaAngles& angles)
{
    const std::vector<double> probs =
        qaoaIdealDistribution(graph, angles);
    double expected = 0.0;
    for (BasisState s = 0; s < probs.size(); ++s)
        expected += probs[s] * graph.cutValue(s);
    return expected;
}

double
qaoaIdealProbability(const Graph& graph, const QaoaAngles& angles,
                     BasisState assignment)
{
    const std::vector<double> probs =
        qaoaIdealDistribution(graph, angles);
    if (assignment >= probs.size())
        return 0.0;
    return probs[assignment];
}

double
sampledExpectedCut(const Graph& graph, const Counts& counts)
{
    if (counts.total() == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto& [outcome, n] : counts.raw())
        acc += graph.cutValue(outcome) * static_cast<double>(n);
    return acc / static_cast<double>(counts.total());
}

QaoaAngles
optimizeQaoaAngles(const Graph& graph, unsigned layers, unsigned grid,
                   unsigned refine_rounds)
{
    if (layers == 0 || layers > 4)
        throw std::invalid_argument("optimizeQaoaAngles: layer count "
                                    "out of range");
    if (grid < 2)
        throw std::invalid_argument("optimizeQaoaAngles: grid too "
                                    "small");

    const double gamma_range = 2.0 * M_PI;
    const double beta_range = M_PI;

    QaoaAngles best;
    best.gamma.assign(layers, 0.0);
    best.beta.assign(layers, 0.0);
    double best_value = qaoaExpectedCut(graph, best);

    auto evaluate = [&](const QaoaAngles& a) {
        return qaoaExpectedCut(graph, a);
    };

    if (layers <= 2) {
        // Exhaustive coarse grid over all 2*layers angles.
        const unsigned dims = 2 * layers;
        std::vector<unsigned> idx(dims, 0);
        while (true) {
            QaoaAngles cand;
            cand.gamma.resize(layers);
            cand.beta.resize(layers);
            for (unsigned l = 0; l < layers; ++l) {
                cand.gamma[l] =
                    gamma_range * idx[2 * l] / grid;
                cand.beta[l] =
                    beta_range * idx[2 * l + 1] / grid;
            }
            const double v = evaluate(cand);
            if (v > best_value) {
                best_value = v;
                best = cand;
            }
            // Odometer increment.
            unsigned d = 0;
            while (d < dims && ++idx[d] == grid) {
                idx[d] = 0;
                ++d;
            }
            if (d == dims)
                break;
        }
    } else {
        // Layer-by-layer greedy grid for deeper ansatz.
        for (unsigned l = 0; l < layers; ++l) {
            QaoaAngles cand = best;
            for (unsigned gi = 0; gi < grid; ++gi) {
                for (unsigned bi = 0; bi < grid; ++bi) {
                    cand.gamma[l] = gamma_range * gi / grid;
                    cand.beta[l] = beta_range * bi / grid;
                    const double v = evaluate(cand);
                    if (v > best_value) {
                        best_value = v;
                        best = cand;
                    }
                }
            }
        }
    }

    // Coordinate descent refinement with a shrinking step.
    double gstep = gamma_range / grid;
    double bstep = beta_range / grid;
    for (unsigned round = 0; round < refine_rounds; ++round) {
        for (unsigned l = 0; l < layers; ++l) {
            for (int dir : {-1, +1}) {
                QaoaAngles cand = best;
                cand.gamma[l] += dir * gstep;
                const double v = evaluate(cand);
                if (v > best_value) {
                    best_value = v;
                    best = cand;
                }
            }
            for (int dir : {-1, +1}) {
                QaoaAngles cand = best;
                cand.beta[l] += dir * bstep;
                const double v = evaluate(cand);
                if (v > best_value) {
                    best_value = v;
                    best = cand;
                }
            }
        }
        gstep *= 0.5;
        bstep *= 0.5;
    }
    return best;
}

} // namespace qem
