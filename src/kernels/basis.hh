/**
 * @file
 * Elementary state-preparation kernels used by the characterization
 * experiments: computational basis states, uniform superpositions,
 * and GHZ states.
 */

#ifndef QEM_KERNELS_BASIS_HH
#define QEM_KERNELS_BASIS_HH

#include "qsim/circuit.hh"

namespace qem
{

/**
 * Prepare the computational basis state @p s on @p n qubits with X
 * gates, then (optionally) measure every qubit. This is the paper's
 * direct BMS characterization workload (Section 3.1).
 */
Circuit basisStatePrep(unsigned n, BasisState s, bool measure = true);

/**
 * Prepare the uniform superposition H^n |0...0>, optionally
 * measured. Used by the equal-superposition characterization (ESCT,
 * Appendix A).
 */
Circuit uniformSuperposition(unsigned n, bool measure = true);

/**
 * Prepare the n-qubit GHZ state (|0...0> + |1...1>)/sqrt(2) with an
 * H followed by a CX chain, optionally measured. The paper's Fig 6
 * workload.
 */
Circuit ghzState(unsigned n, bool measure = true);

} // namespace qem

#endif // QEM_KERNELS_BASIS_HH
