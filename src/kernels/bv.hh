/**
 * @file
 * Bernstein-Vazirani kernel.
 *
 * BV hides an n-bit secret key inside a phase oracle; one oracle
 * query recovers the whole key. On an ideal machine the key appears
 * with probability 1, making PST degradation a direct readout-error
 * probe — which is why the paper sweeps BV over every possible key
 * (Figs 11(b) and 13).
 */

#ifndef QEM_KERNELS_BV_HH
#define QEM_KERNELS_BV_HH

#include "qsim/circuit.hh"

namespace qem
{

/**
 * Standard BV: n key qubits plus one ancilla (qubit n). Only the key
 * qubits are measured; the correct classical outcome is @p key.
 *
 * @param n Key width in bits.
 * @param key The hidden key (low n bits).
 */
Circuit bernsteinVazirani(unsigned n, BasisState key);

/**
 * Full-register BV used by the paper's per-state sweeps: all n+1
 * qubits are measured, and a trailing X on the ancilla is used to
 * steer its final value so the expected (n+1)-bit outcome equals
 * @p target exactly — bit n of @p target selects the ancilla's
 * expected value, bits 0..n-1 are the key.
 *
 * @param n Key width in bits.
 * @param target Expected (n+1)-bit output.
 */
Circuit bernsteinVaziraniFull(unsigned n, BasisState target);

} // namespace qem

#endif // QEM_KERNELS_BV_HH
