/**
 * @file
 * The paper's benchmark suite (Table 3): Bernstein-Vazirani and
 * QAOA max-cut instances, with BV-4/QAOA-4 targeting the 5-qubit
 * machines and BV-6/7, QAOA-6/7 targeting the 14-qubit machine.
 */

#ifndef QEM_KERNELS_BENCHMARKS_HH
#define QEM_KERNELS_BENCHMARKS_HH

#include <string>
#include <vector>

#include "kernels/graph.hh"
#include "qsim/circuit.hh"

namespace qem
{

/** A runnable NISQ benchmark with its known-correct output. */
struct NisqBenchmark
{
    std::string name;
    /** Logical measured circuit. */
    Circuit circuit;
    /** The single expected classical outcome. */
    BasisState correctOutput = 0;
    /**
     * All outcomes counted as correct. For QAOA this includes the
     * complement partition (Section 4.2.1); for BV it is just the
     * key.
     */
    std::vector<BasisState> acceptedOutputs;
    /** Width of the classical outcome in bits. */
    unsigned outputBits = 0;

    NisqBenchmark() : circuit(1) {}
};

/**
 * The complement of a benchmark's correct output over its output
 * width — for QAOA, the same partition labelled from the other side.
 */
BasisState complementOutput(const NisqBenchmark& bench);

/** BV with an @p n bit key. */
NisqBenchmark makeBvBenchmark(const std::string& name, unsigned n,
                              const std::string& key);

/**
 * GHZ state preparation as a benchmark (the paper's Fig 6
 * workload): both all-zeros and all-ones are accepted readouts,
 * with all-ones the listed correct output.
 */
NisqBenchmark makeGhzBenchmark(const std::string& name, unsigned n);

/**
 * QAOA max-cut benchmark: angles are optimized on the ideal
 * simulator at construction.
 *
 * @param name Display name.
 * @param graph Problem instance.
 * @param layers QAOA depth p.
 * @param target The known optimal cut (validated by brute force).
 */
NisqBenchmark makeQaoaBenchmark(const std::string& name,
                                const Graph& graph, unsigned layers,
                                const std::string& target);

/** Table 3 rows that fit a 5-qubit machine. */
std::vector<NisqBenchmark> benchmarkSuiteQ5();

/** Table 3 rows evaluated on the 14-qubit machine. */
std::vector<NisqBenchmark> benchmarkSuiteQ14();

/**
 * Suite matched to a machine size: Q5 suite for < 8 qubits, Q14
 * suite otherwise.
 */
std::vector<NisqBenchmark> benchmarkSuiteFor(unsigned machine_qubits);

} // namespace qem

#endif // QEM_KERNELS_BENCHMARKS_HH
