#include "kernels/graph.hh"

#include <algorithm>
#include <stdexcept>

#include "qsim/bitstring.hh"
#include "qsim/rng.hh"

namespace qem
{

Graph::Graph(unsigned num_nodes)
    : numNodes_(num_nodes)
{
    if (num_nodes == 0 || num_nodes > 24)
        throw std::invalid_argument("Graph: node count out of "
                                    "supported range");
}

void
Graph::addEdge(unsigned a, unsigned b, double weight)
{
    if (a >= numNodes_ || b >= numNodes_)
        throw std::out_of_range("Graph::addEdge: node out of range");
    if (a == b)
        throw std::invalid_argument("Graph::addEdge: self-loop");
    if (hasEdge(a, b))
        throw std::invalid_argument("Graph::addEdge: duplicate edge");
    if (a > b)
        std::swap(a, b);
    edges_.emplace_back(a, b, weight);
}

bool
Graph::hasEdge(unsigned a, unsigned b) const
{
    if (a > b)
        std::swap(a, b);
    for (const auto& [ea, eb, w] : edges_) {
        if (ea == a && eb == b)
            return true;
    }
    return false;
}

double
Graph::cutValue(BasisState assignment) const
{
    double value = 0.0;
    for (const auto& [a, b, w] : edges_) {
        if (getBit(assignment, a) != getBit(assignment, b))
            value += w;
    }
    return value;
}

MaxCutResult
bruteForceMaxCut(const Graph& graph)
{
    MaxCutResult result;
    const BasisState limit = BasisState{1} << graph.numNodes();
    result.value = -1.0;
    for (BasisState s = 0; s < limit; ++s) {
        const double v = graph.cutValue(s);
        if (v > result.value + 1e-12) {
            result.value = v;
            result.argmax = {s};
        } else if (v > result.value - 1e-12) {
            result.argmax.push_back(s);
        }
    }
    return result;
}

Graph
completeBipartite(unsigned num_nodes, BasisState side)
{
    Graph graph(num_nodes);
    for (unsigned a = 0; a < num_nodes; ++a) {
        for (unsigned b = a + 1; b < num_nodes; ++b) {
            if (getBit(side, a) != getBit(side, b))
                graph.addEdge(a, b);
        }
    }
    if (graph.numEdges() == 0)
        throw std::invalid_argument("completeBipartite: side must be "
                                    "a proper nonempty subset");
    return graph;
}

Graph
cycleGraph(unsigned num_nodes)
{
    if (num_nodes < 3)
        throw std::invalid_argument("cycleGraph: need >= 3 nodes");
    Graph graph(num_nodes);
    for (unsigned a = 0; a < num_nodes; ++a)
        graph.addEdge(a, (a + 1) % num_nodes);
    return graph;
}

Graph
starGraph(unsigned num_nodes, unsigned center)
{
    if (num_nodes < 2)
        throw std::invalid_argument("starGraph: need >= 2 nodes");
    Graph graph(num_nodes);
    for (unsigned a = 0; a < num_nodes; ++a) {
        if (a != center)
            graph.addEdge(center, a);
    }
    return graph;
}

Graph
synthesizeGraphForCut(unsigned num_nodes, std::size_t num_edges,
                      BasisState target, std::uint64_t seed)
{
    // All candidate edges, cut edges (across the target partition)
    // first; a valid instance must use only... no: it may use
    // non-cut edges too, they just must not create a better cut.
    std::vector<std::pair<unsigned, unsigned>> all_edges;
    for (unsigned a = 0; a < num_nodes; ++a) {
        for (unsigned b = a + 1; b < num_nodes; ++b)
            all_edges.emplace_back(a, b);
    }
    if (num_edges > all_edges.size())
        throw std::invalid_argument("synthesizeGraphForCut: too many "
                                    "edges requested");

    Rng rng(seed);
    const BasisState complement = target ^ allOnes(num_nodes);
    for (int attempt = 0; attempt < 20000; ++attempt) {
        // Random subset of num_edges edges (partial Fisher-Yates).
        std::vector<std::pair<unsigned, unsigned>> pool = all_edges;
        Graph candidate(num_nodes);
        for (std::size_t i = 0; i < num_edges; ++i) {
            const std::size_t j =
                i + rng.index(pool.size() - i);
            std::swap(pool[i], pool[j]);
            candidate.addEdge(pool[i].first, pool[i].second);
        }
        const MaxCutResult best = bruteForceMaxCut(candidate);
        if (best.argmax.size() == 2 &&
            ((best.argmax[0] == target &&
              best.argmax[1] == complement) ||
             (best.argmax[0] == complement &&
              best.argmax[1] == target))) {
            return candidate;
        }
    }
    // Deterministic fallback with the requested optimum.
    return completeBipartite(num_nodes, target);
}

} // namespace qem
