#include "kernels/benchmarks.hh"

#include <algorithm>
#include <stdexcept>

#include "kernels/basis.hh"
#include "kernels/bv.hh"
#include "kernels/qaoa.hh"
#include "qsim/bitstring.hh"

namespace qem
{

BasisState
complementOutput(const NisqBenchmark& bench)
{
    return bench.correctOutput ^ allOnes(bench.outputBits);
}

NisqBenchmark
makeBvBenchmark(const std::string& name, unsigned n,
                const std::string& key)
{
    if (key.size() != n)
        throw std::invalid_argument("makeBvBenchmark: key width "
                                    "mismatch");
    NisqBenchmark bench;
    bench.name = name;
    bench.correctOutput = fromBitString(key);
    bench.circuit = bernsteinVazirani(n, bench.correctOutput);
    bench.acceptedOutputs = {bench.correctOutput};
    bench.outputBits = n;
    return bench;
}

NisqBenchmark
makeGhzBenchmark(const std::string& name, unsigned n)
{
    if (n == 0)
        throw std::invalid_argument("makeGhzBenchmark: empty "
                                    "register");
    NisqBenchmark bench;
    bench.name = name;
    bench.circuit = ghzState(n);
    bench.correctOutput = allOnes(n);
    bench.acceptedOutputs = {0, allOnes(n)};
    bench.outputBits = n;
    return bench;
}

NisqBenchmark
makeQaoaBenchmark(const std::string& name, const Graph& graph,
                  unsigned layers, const std::string& target)
{
    if (target.size() != graph.numNodes())
        throw std::invalid_argument("makeQaoaBenchmark: target width "
                                    "mismatch");
    const BasisState cut = fromBitString(target);
    const BasisState complement =
        cut ^ allOnes(graph.numNodes());

    // The declared optimum must really be the (unique up to
    // complement) max cut; misconfigured instances are bugs.
    const MaxCutResult best = bruteForceMaxCut(graph);
    if (std::find(best.argmax.begin(), best.argmax.end(), cut) ==
        best.argmax.end()) {
        throw std::logic_error("makeQaoaBenchmark: target is not a "
                               "max cut of the graph");
    }

    NisqBenchmark bench;
    bench.name = name;
    bench.correctOutput = cut;
    // Section 4.2.1: for QAOA both the optimal partition string and
    // its inversion are correct answers, so evaluation metrics use
    // the cumulative frequency of the pair. (The Table 2
    // characterization instead scores the listed string alone --
    // that is what exposes the Hamming-weight dependence -- and
    // passes {correctOutput} explicitly.)
    bench.acceptedOutputs = {cut, complement};
    bench.outputBits = graph.numNodes();
    bench.circuit =
        qaoaCircuit(graph, optimizeQaoaAngles(graph, layers));
    return bench;
}

std::vector<NisqBenchmark>
benchmarkSuiteQ5()
{
    std::vector<NisqBenchmark> suite;
    suite.push_back(makeBvBenchmark("bv-4A", 4, "0111"));
    suite.push_back(makeBvBenchmark("bv-4B", 4, "1111"));
    // qaoa-4A: 4-node cycle; max cut is the alternating partition.
    suite.push_back(
        makeQaoaBenchmark("qaoa-4A", cycleGraph(4), 1, "0101"));
    // qaoa-4B (p=2): star centered on node 0; max cut isolates it.
    suite.push_back(
        makeQaoaBenchmark("qaoa-4B", starGraph(4, 0), 2, "0111"));
    return suite;
}

std::vector<NisqBenchmark>
benchmarkSuiteQ14()
{
    std::vector<NisqBenchmark> suite;
    suite.push_back(makeBvBenchmark("bv-6", 6, "011111"));
    suite.push_back(makeBvBenchmark("bv-7", 7, "0111111"));
    suite.push_back(makeQaoaBenchmark(
        "qaoa-6", completeBipartite(6, fromBitString("101011")), 2,
        "101011"));
    suite.push_back(makeQaoaBenchmark(
        "qaoa-7", completeBipartite(7, fromBitString("1010110")), 2,
        "1010110"));
    return suite;
}

std::vector<NisqBenchmark>
benchmarkSuiteFor(unsigned machine_qubits)
{
    return machine_qubits < 8 ? benchmarkSuiteQ5()
                              : benchmarkSuiteQ14();
}

} // namespace qem
