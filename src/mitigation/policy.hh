/**
 * @file
 * Measurement-mitigation policy interface and the baseline policy.
 *
 * A policy decides how to spend a trial budget on (possibly
 * rewritten) executions of one physical circuit, and how to combine
 * the observed logs into a single corrected output log. Policies are
 * written against the abstract Backend, so they are oblivious to
 * whether trials run on the trajectory simulator or real hardware.
 */

#ifndef QEM_MITIGATION_POLICY_HH
#define QEM_MITIGATION_POLICY_HH

#include <string>

#include "mitigation/inversion.hh"
#include "qsim/circuit.hh"
#include "qsim/counts.hh"
#include "qsim/simulator.hh"

namespace qem
{

class MitigationPolicy
{
  public:
    virtual ~MitigationPolicy() = default;

    /**
     * Execute @p circuit for a total of @p shots trials under this
     * policy and return the merged, post-corrected output log.
     */
    virtual Counts run(const Circuit& circuit, Backend& backend,
                       std::size_t shots) = 0;

    /** Display name ("Baseline", "SIM", "AIM", ...). */
    virtual std::string name() const = 0;

    /**
     * The (inversion string, trials) modes the most recent run()
     * executed, in order — what the verification oracle replays to
     * compute the analytic distribution the merged log should match.
     * Empty when the policy has not run, or when its correction is
     * not a per-mode relabeling (e.g. the matrix-inversion
     * comparator, whose output is not a mixture of mode logs).
     *
     * Contract: each mode's inversion string is the *physical*
     * rewrite the hardware executed — the X-prefix actually applied
     * before measurement — never the logical identity the
     * post-corrected log exhibits. Consumers that replay plans
     * against the machine (RbmsStalenessProbe's holdout replay, the
     * oracle's planDistribution) prepare the basis states the
     * readout actually saw; a policy that relabels outcomes (e.g.
     * Rebalance steering the predicted output onto the strong
     * state) must therefore report the applied prefix, not 0.
     */
    virtual ModePlan lastPlan() const { return {}; }
};

/** The paper's baseline: every trial measured as-is. */
class BaselinePolicy : public MitigationPolicy
{
  public:
    Counts run(const Circuit& circuit, Backend& backend,
               std::size_t shots) override;

    std::string name() const override { return "Baseline"; }

    /** One uninverted mode carrying the whole budget. */
    ModePlan lastPlan() const override { return lastPlan_; }

  private:
    ModePlan lastPlan_;
};

} // namespace qem

#endif // QEM_MITIGATION_POLICY_HH
