#include "mitigation/policy.hh"

namespace qem
{

Counts
BaselinePolicy::run(const Circuit& circuit, Backend& backend,
                    std::size_t shots)
{
    Counts counts = backend.run(circuit, shots);
    lastPlan_ = {{InversionString{0}, shots}};
    return counts;
}

} // namespace qem
