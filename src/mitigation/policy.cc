#include "mitigation/policy.hh"

namespace qem
{

Counts
BaselinePolicy::run(const Circuit& circuit, Backend& backend,
                    std::size_t shots)
{
    return backend.run(circuit, shots);
}

} // namespace qem
