#include "mitigation/rebalance_policy.hh"

#include <bit>
#include <stdexcept>
#include <vector>

#include "qsim/bitstring.hh"
#include "qsim/statevector.hh"
#include "runtime/resilient_backend.hh"
#include "telemetry/telemetry.hh"

namespace qem
{

namespace
{

/**
 * Most likely noise-free outcome of @p circuit, over the classical
 * register; ties break toward the numerically lowest state.
 * (Deliberately local: qem_verify links against this library, so
 * the oracle's idealDistribution cannot be reused here without a
 * dependency cycle.)
 */
BasisState
mostLikelyIdealOutcome(const Circuit& circuit)
{
    IdealSimulator sim(circuit.numQubits());
    const StateVector state = sim.stateOf(circuit);
    const std::vector<double> probs = state.probabilities();
    std::vector<double> outcome_probs(
        std::size_t{1} << circuit.numClbits(), 0.0);
    for (BasisState s = 0; s < probs.size(); ++s) {
        if (probs[s] > 0.0)
            outcome_probs[circuit.classicalOutcome(s)] += probs[s];
    }
    BasisState best = 0;
    for (BasisState s = 1; s < outcome_probs.size(); ++s) {
        if (outcome_probs[s] > outcome_probs[best])
            best = s;
    }
    return best;
}

} // namespace

RebalancePolicy::RebalancePolicy(
    std::shared_ptr<const RbmsEstimate> rbms,
    RebalanceOptions options)
    : rbms_(std::move(rbms)), options_(options)
{
    if (!rbms_)
        throw std::invalid_argument("Rebalance: null RBMS profile");
}

InversionString
RebalancePolicy::prefixFor(BasisState predicted,
                           const RbmsEstimate& rbms)
{
    return (predicted ^ rbms.strongestState()) &
           allOnes(rbms.numBits());
}

Counts
RebalancePolicy::run(const Circuit& circuit, Backend& backend,
                     std::size_t shots)
{
    const std::vector<Qubit> measured = circuit.measuredQubits();
    const unsigned bits = static_cast<unsigned>(measured.size());
    if (bits == 0)
        throw std::invalid_argument("Rebalance: circuit has no "
                                    "measurements");
    if (rbms_->numBits() != bits)
        throw std::invalid_argument("Rebalance: RBMS profile width "
                                    "does not match the circuit's "
                                    "output");
    if (shots == 0)
        throw std::invalid_argument("Rebalance: zero shots");

    telemetry::SpanTracer::Scope policySpan =
        telemetry::span("rebalance.run");

    // Classical prediction, no canary budget spent: the likely
    // outcome comes from software knowledge of the program, by
    // default its noise-free statevector.
    {
        telemetry::SpanTracer::Scope s =
            telemetry::span("rebalance.predict");
        lastPredicted_ = options_.predictFromIdeal
                             ? mostLikelyIdealOutcome(circuit)
                             : options_.predictedOutcome;
        lastPredicted_ &= allOnes(bits);
    }
    const InversionString prefix =
        prefixFor(lastPredicted_, *rbms_);

    // The whole budget runs in the single tailored mode.
    Counts observed(circuit.numClbits());
    {
        telemetry::SpanTracer::Scope s =
            telemetry::span("rebalance.shot_batches");
        observed = backend.run(applyInversion(circuit, prefix),
                               shots);
    }
    // A salvaged (partial) mode cannot bias a one-mode histogram,
    // but under-budget logs still break the shot accounting every
    // verification check assumes; refuse like SIM/AIM do.
    if (observed.total() != shots) {
        throw BudgetExhausted(
            "Rebalance: mode returned " +
            std::to_string(observed.total()) + " of " +
            std::to_string(shots) +
            " trials; refusing partial-mode data");
    }
    telemetry::count(
        "policy.rebalance.correction_bitflips",
        static_cast<std::uint64_t>(std::popcount(prefix)) *
            observed.total());
    Counts merged = correctInversion(observed, prefix);
    lastPlan_ = {{prefix, shots}};

    telemetry::count("policy.rebalance.runs");
    telemetry::count("policy.rebalance.shots", merged.total());
    return merged;
}

} // namespace qem
