#include "mitigation/inversion.hh"

#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

Circuit
applyInversion(const Circuit& circuit, InversionString inversion)
{
    Circuit out(circuit.numQubits(),
                static_cast<int>(circuit.numClbits()));
    for (const Operation& op : circuit.ops()) {
        if (op.kind == GateKind::MEASURE &&
            getBit(inversion, op.cbit)) {
            out.x(op.qubits[0]);
        }
        out.append(op);
    }
    return out;
}

Counts
correctInversion(const Counts& counts, InversionString inversion)
{
    return counts.xorAll(inversion);
}

std::vector<InversionString>
twoModeStrings(unsigned bits)
{
    return {0, allOnes(bits)};
}

namespace
{

/**
 * Generator mask j over @p bits positions: position i is set when
 * bit (j-1) of i is clear. j=1 gives the even-position mask, j=2
 * the pair mask (0,1,4,5,...), and so on.
 */
InversionString
generatorMask(unsigned bits, unsigned j)
{
    InversionString mask = 0;
    for (unsigned i = 0; i < bits; ++i) {
        if (((i >> (j - 1)) & 1U) == 0)
            mask = setBit(mask, i, true);
    }
    return mask;
}

} // namespace

std::vector<InversionString>
multiModeStrings(unsigned bits, unsigned k)
{
    if (bits == 0 || bits > 63)
        throw std::invalid_argument("multiModeStrings: bad bit "
                                    "count");
    if (k == 0 || (std::size_t{1} << k) > (std::size_t{1} << bits))
        throw std::invalid_argument("multiModeStrings: k out of "
                                    "range");
    // Generators: all-ones plus progressively coarser stripe masks.
    std::vector<InversionString> generators{allOnes(bits)};
    for (unsigned j = 1; generators.size() < k; ++j)
        generators.push_back(generatorMask(bits, j));
    // Emit the full XOR span of the generators.
    std::vector<InversionString> strings(std::size_t{1} << k, 0);
    for (std::size_t combo = 0; combo < strings.size(); ++combo) {
        InversionString s = 0;
        for (unsigned g = 0; g < k; ++g) {
            if ((combo >> g) & 1U)
                s ^= generators[g];
        }
        strings[combo] = s;
    }
    return strings;
}

std::vector<InversionString>
fourModeStrings(unsigned bits)
{
    return multiModeStrings(bits, 2);
}

} // namespace qem
