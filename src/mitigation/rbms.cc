#include "mitigation/rbms.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "qsim/bitstring.hh"
#include "qsim/circuit.hh"

namespace qem
{

namespace
{

constexpr double strengthFloor = 1e-9;

/** X/H prep over selected physical qubits + measurement into
 *  clbits 0..k-1. @p hadamard selects H (true) or basis prep. */
Circuit
prepCircuit(unsigned machine_qubits, const std::vector<Qubit>& qubits,
            BasisState basis, bool hadamard)
{
    Circuit circuit(machine_qubits,
                    static_cast<int>(qubits.size()));
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (hadamard)
            circuit.h(qubits[i]);
        else if (getBit(basis, static_cast<unsigned>(i)))
            circuit.x(qubits[i]);
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        circuit.measure(qubits[i], static_cast<Clbit>(i));
    return circuit;
}

void
checkQubits(const Backend& backend, const std::vector<Qubit>& qubits)
{
    if (qubits.empty())
        throw std::invalid_argument("RBMS characterization: no "
                                    "qubits");
    for (Qubit q : qubits) {
        if (q >= backend.numQubits())
            throw std::invalid_argument("RBMS characterization: "
                                        "qubit outside the machine");
    }
}

} // namespace

std::vector<double>
RbmsEstimate::relativeCurve() const
{
    if (numBits() > 20)
        throw std::logic_error("RbmsEstimate::relativeCurve: register "
                               "too wide to densify");
    const std::size_t dim = std::size_t{1} << numBits();
    std::vector<double> curve(dim);
    double top = 0.0;
    for (BasisState s = 0; s < dim; ++s) {
        curve[s] = strength(s);
        top = std::max(top, curve[s]);
    }
    if (top > 0.0) {
        for (double& v : curve)
            v /= top;
    }
    return curve;
}

ExhaustiveRbms::ExhaustiveRbms(std::vector<double> table)
    : table_(std::move(table))
{
    if (table_.empty() || !std::has_single_bit(table_.size()))
        throw std::invalid_argument("ExhaustiveRbms: table size must "
                                    "be a power of two");
    numBits_ =
        static_cast<unsigned>(std::countr_zero(table_.size()));
    for (double v : table_) {
        if (v < 0.0)
            throw std::invalid_argument("ExhaustiveRbms: negative "
                                        "strength");
    }
}

double
ExhaustiveRbms::strength(BasisState state) const
{
    if (state >= table_.size())
        throw std::out_of_range("ExhaustiveRbms::strength: state out "
                                "of range");
    return std::max(table_[state], strengthFloor);
}

BasisState
ExhaustiveRbms::strongestState() const
{
    return static_cast<BasisState>(
        std::max_element(table_.begin(), table_.end()) -
        table_.begin());
}

WindowedRbms::WindowedRbms(unsigned num_bits,
                           std::vector<Window> windows)
    : numBits_(num_bits), windows_(std::move(windows))
{
    if (windows_.empty())
        throw std::invalid_argument("WindowedRbms: no windows");
    unsigned covered = 0;
    for (std::size_t k = 0; k < windows_.size(); ++k) {
        const Window& w = windows_[k];
        if (w.table.empty() || !std::has_single_bit(w.table.size()))
            throw std::invalid_argument("WindowedRbms: window table "
                                        "size must be a power of "
                                        "two");
        if (w.offset > covered)
            throw std::invalid_argument("WindowedRbms: coverage gap "
                                        "between windows");
        if (k > 0 && w.offset < windows_[k - 1].offset)
            throw std::invalid_argument("WindowedRbms: windows not "
                                        "sorted by offset");
        newStart_.push_back(covered);
        covered = std::max(covered, w.offset + windowBits(k));
    }
    if (covered < numBits_)
        throw std::invalid_argument("WindowedRbms: windows do not "
                                    "cover the register");
}

unsigned
WindowedRbms::windowBits(std::size_t idx) const
{
    return static_cast<unsigned>(
        std::countr_zero(windows_[idx].table.size()));
}

double
WindowedRbms::strength(BasisState state) const
{
    double strength = 1.0;
    for (std::size_t k = 0; k < windows_.size(); ++k) {
        const Window& w = windows_[k];
        const unsigned m = windowBits(k);
        const BasisState local =
            (state >> w.offset) & allOnes(m);
        const double t = std::max(w.table[local], strengthFloor);
        if (newStart_[k] <= w.offset) {
            // Entire window is new coverage.
            strength *= t;
            continue;
        }
        // Conditional factor: divide out the already-covered
        // overlap bits by clearing the window's new bits.
        const unsigned overlap_bits = newStart_[k] - w.offset;
        const BasisState overlap_only =
            local & allOnes(overlap_bits);
        const double denom =
            std::max(w.table[overlap_only], strengthFloor);
        strength *= t / denom;
    }
    return std::max(strength, strengthFloor);
}

BasisState
WindowedRbms::strongestState() const
{
    BasisState best = 0;
    for (std::size_t k = 0; k < windows_.size(); ++k) {
        const Window& w = windows_[k];
        const unsigned m = windowBits(k);
        const unsigned overlap_bits =
            newStart_[k] > w.offset ? newStart_[k] - w.offset : 0;
        const BasisState fixed =
            (best >> w.offset) & allOnes(overlap_bits);
        // Among window states consistent with the bits already
        // chosen, take the strongest.
        BasisState best_local = fixed;
        double best_strength = -1.0;
        const BasisState free_count =
            BasisState{1} << (m - overlap_bits);
        for (BasisState free = 0; free < free_count; ++free) {
            const BasisState local =
                fixed | (free << overlap_bits);
            if (w.table[local] > best_strength) {
                best_strength = w.table[local];
                best_local = local;
            }
        }
        // Write the window's new bits into the global answer.
        for (unsigned b = overlap_bits; b < m; ++b) {
            best = setBit(best, w.offset + b,
                          getBit(best_local, b));
        }
    }
    return best & allOnes(numBits_);
}

ExhaustiveRbms
characterizeDirect(Backend& backend,
                   const std::vector<Qubit>& qubits,
                   std::size_t shots_per_state)
{
    checkQubits(backend, qubits);
    const unsigned k = static_cast<unsigned>(qubits.size());
    if (k > 16)
        throw std::invalid_argument("characterizeDirect: register "
                                    "too wide for brute force");
    std::vector<double> table(std::size_t{1} << k);
    for (BasisState s = 0; s < table.size(); ++s) {
        const Counts counts = backend.run(
            prepCircuit(backend.numQubits(), qubits, s, false),
            shots_per_state);
        table[s] = counts.probability(s);
    }
    return ExhaustiveRbms(std::move(table));
}

ExhaustiveRbms
characterizeSuperposition(Backend& backend,
                          const std::vector<Qubit>& qubits,
                          std::size_t shots)
{
    checkQubits(backend, qubits);
    const unsigned k = static_cast<unsigned>(qubits.size());
    if (k > 20)
        throw std::invalid_argument("characterizeSuperposition: "
                                    "register too wide");
    const Counts counts = backend.run(
        prepCircuit(backend.numQubits(), qubits, 0, true), shots);
    std::vector<double> table(std::size_t{1} << k);
    for (BasisState s = 0; s < table.size(); ++s)
        table[s] = counts.probability(s);
    return ExhaustiveRbms(std::move(table));
}

WindowedRbms
characterizeWindowed(Backend& backend,
                     const std::vector<Qubit>& qubits,
                     unsigned window_size,
                     std::size_t shots_per_window,
                     unsigned overlap)
{
    checkQubits(backend, qubits);
    const unsigned k = static_cast<unsigned>(qubits.size());
    if (window_size == 0 || overlap >= window_size)
        throw std::invalid_argument("characterizeWindowed: overlap "
                                    "must be smaller than the "
                                    "window");
    const unsigned m = std::min(window_size, k);
    const unsigned step = m > overlap ? m - overlap : 1;

    std::vector<WindowedRbms::Window> windows;
    unsigned offset = 0;
    while (true) {
        if (offset + m >= k)
            offset = k - m; // Clamp the final window to the end.
        std::vector<Qubit> window_qubits(
            qubits.begin() + offset, qubits.begin() + offset + m);
        ExhaustiveRbms local = characterizeSuperposition(
            backend, window_qubits, shots_per_window);
        WindowedRbms::Window w;
        w.offset = offset;
        w.table.resize(std::size_t{1} << m);
        for (BasisState s = 0; s < w.table.size(); ++s)
            w.table[s] = local.strength(s);
        windows.push_back(std::move(w));
        if (offset + m >= k)
            break;
        offset += step;
    }
    return WindowedRbms(k, std::move(windows));
}

std::shared_ptr<const RbmsEstimate>
characterizeAuto(Backend& backend, const std::vector<Qubit>& qubits,
                 const RbmsOptions& options)
{
    if (qubits.size() <= options.directMaxBits) {
        return std::make_shared<ExhaustiveRbms>(characterizeDirect(
            backend, qubits, options.shotsPerState));
    }
    return std::make_shared<WindowedRbms>(characterizeWindowed(
        backend, qubits, options.windowSize,
        options.shotsPerWindow));
}

} // namespace qem
