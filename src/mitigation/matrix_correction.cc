#include "mitigation/matrix_correction.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qsim/bitstring.hh"

namespace qem
{

MatrixInversionCorrection::MatrixInversionCorrection(
    std::size_t calibration_shots)
    : calibrationShots_(calibration_shots)
{
    if (calibration_shots == 0)
        throw std::invalid_argument("MatrixInversionCorrection: zero "
                                    "calibration shots");
}

std::vector<double>
invertTensoredConfusion(std::vector<double> probs,
                        const std::vector<double>& p01,
                        const std::vector<double>& p10)
{
    if (p01.size() != p10.size())
        throw std::invalid_argument("invertTensoredConfusion: rate "
                                    "size mismatch");
    if (probs.size() != (std::size_t{1} << p01.size()))
        throw std::invalid_argument("invertTensoredConfusion: vector "
                                    "size is not 2^bits");
    for (std::size_t bit = 0; bit < p01.size(); ++bit) {
        const double det = 1.0 - p01[bit] - p10[bit];
        if (std::abs(det) < 1e-9)
            throw std::invalid_argument("invertTensoredConfusion: "
                                        "singular confusion matrix");
        // Inverse of [[1-p01, p10], [p01, 1-p10]] / det.
        const double i00 = (1.0 - p10[bit]) / det;
        const double i01 = -p10[bit] / det;
        const double i10 = -p01[bit] / det;
        const double i11 = (1.0 - p01[bit]) / det;
        const std::size_t stride = std::size_t{1} << bit;
        for (std::size_t base = 0; base < probs.size();
             base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                const double q0 = probs[i];
                const double q1 = probs[i + stride];
                probs[i] = i00 * q0 + i01 * q1;
                probs[i + stride] = i10 * q0 + i11 * q1;
            }
        }
    }
    return probs;
}

Counts
MatrixInversionCorrection::run(const Circuit& circuit,
                               Backend& backend, std::size_t shots)
{
    const std::vector<Qubit> measured = circuit.measuredQubits();
    const unsigned bits = circuit.numClbits();
    if (measured.empty())
        throw std::invalid_argument("MatrixInversionCorrection: "
                                    "circuit has no measurements");
    if (bits > 20)
        throw std::invalid_argument("MatrixInversionCorrection: "
                                    "output register too wide to "
                                    "densify");

    // Calibration: all-zeros prep gives p01, all-ones prep gives
    // p10 per classical bit (identity rates for unused clbits).
    Circuit zeros(backend.numQubits(), static_cast<int>(bits));
    Circuit ones(backend.numQubits(), static_cast<int>(bits));
    std::vector<Clbit> clbit_of;
    for (const Operation& op : circuit.ops()) {
        if (op.kind != GateKind::MEASURE)
            continue;
        zeros.measure(op.qubits[0], op.cbit);
        ones.x(op.qubits[0]).measure(op.qubits[0], op.cbit);
        clbit_of.push_back(op.cbit);
    }
    const Counts zero_counts = backend.run(zeros, calibrationShots_);
    const Counts one_counts = backend.run(ones, calibrationShots_);

    std::vector<double> p01(bits, 0.0), p10(bits, 0.0);
    for (Clbit c : clbit_of) {
        double ones_seen = 0.0, zeros_seen = 0.0;
        for (const auto& [outcome, n] : zero_counts.raw()) {
            if (getBit(outcome, c))
                ones_seen += static_cast<double>(n);
        }
        for (const auto& [outcome, n] : one_counts.raw()) {
            if (!getBit(outcome, c))
                zeros_seen += static_cast<double>(n);
        }
        p01[c] = ones_seen / static_cast<double>(calibrationShots_);
        p10[c] = zeros_seen / static_cast<double>(calibrationShots_);
    }

    // Standard-mode execution, then classical inverse.
    const Counts observed = backend.run(circuit, shots);
    const std::vector<double> corrected = invertTensoredConfusion(
        observed.toProbabilityVector(), p01, p10);
    return roundCorrectedDistribution(corrected, bits, shots);
}

std::vector<double>
clipAndRenormalize(std::vector<double> probs)
{
    double total = 0.0;
    for (double& p : probs) {
        if (p < 0.0)
            p = 0.0;
        total += p;
    }
    if (total <= 0.0) {
        std::fill(probs.begin(), probs.end(), 0.0);
        return probs;
    }
    for (double& p : probs)
        p /= total;
    return probs;
}

Counts
roundCorrectedDistribution(const std::vector<double>& corrected,
                           unsigned bits, std::size_t shots)
{
    const std::vector<double> probs = clipAndRenormalize(corrected);
    Counts out(bits);
    for (BasisState s = 0; s < probs.size(); ++s) {
        const auto n = static_cast<std::uint64_t>(std::llround(
            probs[s] * static_cast<double>(shots)));
        if (n > 0)
            out.add(s, n);
    }
    return out;
}

} // namespace qem
