#include "mitigation/aim_policy.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "mitigation/sim_policy.hh"
#include "runtime/resilient_backend.hh"
#include "telemetry/telemetry.hh"

namespace qem
{

AdaptiveInvertAndMeasure::AdaptiveInvertAndMeasure(
    std::shared_ptr<const RbmsEstimate> rbms, AimOptions options)
    : rbms_(std::move(rbms)), options_(options)
{
    if (!rbms_)
        throw std::invalid_argument("AIM: null RBMS profile");
    if (options_.canaryFraction <= 0.0 ||
        options_.canaryFraction >= 1.0) {
        throw std::invalid_argument("AIM: canary fraction must be in "
                                    "(0, 1)");
    }
    if (options_.numCandidates == 0)
        throw std::invalid_argument("AIM: need at least one "
                                    "candidate");
}

Counts
AdaptiveInvertAndMeasure::run(const Circuit& circuit,
                              Backend& backend, std::size_t shots)
{
    const std::vector<Qubit> measured = circuit.measuredQubits();
    const unsigned bits = static_cast<unsigned>(measured.size());
    if (bits == 0)
        throw std::invalid_argument("AIM: circuit has no "
                                    "measurements");
    if (rbms_->numBits() != bits)
        throw std::invalid_argument("AIM: RBMS profile width does "
                                    "not match the circuit's output");

    telemetry::SpanTracer::Scope policySpan =
        telemetry::span("aim.run");

    // Phase 1 -- canary trials under the four static modes, to
    // observe the output distribution with global bias averaged out.
    // The canary budget needs one trial per static mode plus at
    // least one tailored trial, so fewer than 5 shots cannot be
    // clamped into a valid [4, shots - 1] split.
    if (shots < 5) {
        throw std::invalid_argument("AIM: need at least 5 shots "
                                    "(4 canary modes + 1 tailored "
                                    "trial)");
    }
    std::size_t canary_shots = static_cast<std::size_t>(
        options_.canaryFraction * static_cast<double>(shots));
    canary_shots =
        std::clamp<std::size_t>(canary_shots, 4, shots - 1);
    telemetry::SpanTracer::Scope canarySpan =
        telemetry::span("aim.canary");
    StaticInvertAndMeasure canary_policy =
        StaticInvertAndMeasure::fourMode(bits);
    const Counts canary =
        canary_policy.run(circuit, backend, canary_shots);
    canarySpan = {};

    // Phase 2 -- likelihoods: L_i = observed frequency divided by
    // measurement strength (Equation 1), then keep the top K.
    std::vector<std::pair<double, BasisState>> ranked;
    ranked.reserve(canary.distinct());
    for (const auto& [outcome, n] : canary.raw()) {
        const double l = static_cast<double>(n) /
                         rbms_->strength(outcome);
        ranked.emplace_back(l, outcome);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    lastCandidates_.clear();
    std::vector<double> likelihoods;
    for (const auto& [l, outcome] : ranked) {
        if (lastCandidates_.size() >= options_.numCandidates)
            break;
        lastCandidates_.push_back(outcome);
        likelihoods.push_back(l);
    }
    if (lastCandidates_.empty()) {
        lastCandidates_.push_back(0);
        likelihoods.push_back(1.0);
    }

    // Phase 3 -- tailored inversion strings: XOR each candidate
    // onto the machine's strongest state. (The XOR map is a
    // bijection, so distinct candidates give distinct strings.)
    const BasisState strongest = rbms_->strongestState();
    std::vector<InversionString> strings;
    strings.reserve(lastCandidates_.size());
    for (BasisState candidate : lastCandidates_)
        strings.push_back(candidate ^ strongest);

    // Budget per string: proportional to candidate likelihood, or
    // uniform when weighting is disabled.
    const std::size_t remaining = shots - canary_shots;
    std::vector<std::size_t> shares(strings.size(), 0);
    if (options_.weightedAllocation) {
        double total_l = 0.0;
        for (double l : likelihoods)
            total_l += l;
        std::size_t assigned = 0;
        for (std::size_t i = 0; i < strings.size(); ++i) {
            shares[i] = static_cast<std::size_t>(
                static_cast<double>(remaining) * likelihoods[i] /
                total_l);
            assigned += shares[i];
        }
        shares[0] += remaining - assigned; // Rounding remainder.
    } else {
        for (std::size_t i = 0; i < strings.size(); ++i)
            shares[i] = remaining / strings.size();
        shares[0] += remaining % strings.size();
    }

    telemetry::SpanTracer::Scope bulkSpan =
        telemetry::span("aim.tailored");
    ModePlan plan = canary_policy.lastPlan();
    Counts merged = canary;
    for (std::size_t i = 0; i < strings.size(); ++i) {
        if (shares[i] == 0)
            continue;
        const Counts observed = backend.run(
            applyInversion(circuit, strings[i]), shares[i]);
        // A salvaged (partial) mode would skew the likelihood-
        // weighted budget the correction assumes; refuse to merge
        // under-budget modes rather than degrade silently.
        if (observed.total() != shares[i]) {
            throw BudgetExhausted(
                "AIM: tailored mode returned " +
                std::to_string(observed.total()) + " of " +
                std::to_string(shares[i]) +
                " trials; refusing to merge partial-mode data");
        }
        telemetry::count("policy.aim.inversion_strings_applied");
        telemetry::count(
            "policy.aim.correction_bitflips",
            static_cast<std::uint64_t>(
                std::popcount(strings[i])) *
                observed.total());
        merged.merge(correctInversion(observed, strings[i]));
        plan.push_back({strings[i], shares[i]});
    }
    lastPlan_ = std::move(plan);

    // Counted on completion, from observed totals, so aborted runs
    // never overcount shots in manifests.
    telemetry::count("policy.aim.runs");
    telemetry::count("policy.aim.canary_shots", canary.total());
    telemetry::count("policy.aim.bulk_shots",
                     merged.total() - canary.total());
    return merged;
}

} // namespace qem
