/**
 * @file
 * Bit-Flip Averaging (Smith et al., arXiv:2106.05800).
 *
 * BFA splits the trial budget into shot groups, draws one random
 * X-twirl string per group (seeded, via Rng::splitAt, so the strings
 * are reproducible and order-independent), executes each group with
 * the twirl applied before measurement, and flips the observed
 * outcomes back classically. Averaged over twirls, each qubit's
 * asymmetric readout channel is symmetrized to a single bit-flip
 * rate p_i = (p01_i + p10_i) / 2 — state-dependent bias is converted
 * into state-independent noise. When the symmetrized rates are
 * supplied, a tensored inverse (the 2x2 symmetric confusion matrix
 * per bit) then unfolds that residual noise from the histogram.
 *
 * Twirling reuses the SIM inversion-string machinery verbatim: a
 * twirl string IS an inversion string, applied and post-corrected
 * the same way; BFA simply draws the strings at random instead of
 * from the Hamming-spread fixed sets.
 */

#ifndef QEM_MITIGATION_BFA_POLICY_HH
#define QEM_MITIGATION_BFA_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mitigation/policy.hh"

namespace qem
{

/** Bit-Flip Averaging knobs. */
struct BfaOptions
{
    /**
     * Shot groups, one random twirl string each. Zero disables
     * twirling entirely (single identity-string group — the run is
     * then bit-for-bit the baseline when no rates are set).
     */
    unsigned numGroups = 8;

    /**
     * Seed of the twirl-string stream. Group g's string is drawn
     * from Rng(twirlSeed).splitAt(g), so the set is a pure function
     * of (seed, group count, register width) — independent of
     * thread count, call order, and every other draw in the run.
     */
    std::uint64_t twirlSeed = 2106;

    /**
     * Per-clbit symmetrized flip rates p_i = (p01_i + p10_i) / 2,
     * sized numClbits (zero for unmeasured clbits). Empty = twirl
     * only: return the post-flipped merged log without unfolding.
     */
    std::vector<double> symmetrizedRates;
};

class BitFlipAveragePolicy : public MitigationPolicy
{
  public:
    /**
     * @param twirl_strings Optional precomputed twirl set (e.g. the
     *        cached TwirlStrings service artifact). Must match what
     *        twirlStrings(bits, options) would draw — validated on
     *        run(). Null computes the set on the fly.
     */
    explicit BitFlipAveragePolicy(
        BfaOptions options = {},
        std::shared_ptr<const std::vector<InversionString>>
            twirl_strings = nullptr);

    Counts run(const Circuit& circuit, Backend& backend,
               std::size_t shots) override;

    std::string name() const override { return "BFA"; }

    /**
     * The twirl modes as a ModePlan — but only while no symmetrized
     * rates are configured. With rates set, the merged log is the
     * tensored inverse of the twirl mixture, NOT a per-mode
     * relabeling, so this returns {} per the MitigationPolicy
     * contract and the twirl layout is exposed via lastTwirlPlan()
     * instead.
     */
    ModePlan lastPlan() const override;

    /** The twirl modes the last run() executed, always available. */
    const ModePlan& lastTwirlPlan() const { return lastTwirlPlan_; }

    /**
     * Merged post-flipped log before rate unfolding — the mixture
     * the twirl plan predicts, and the multinomial the oracle
     * G-tests against. Identical to run()'s result when no rates
     * are set.
     */
    const Counts& lastTwirledCounts() const
    {
        return lastTwirledCounts_;
    }

    const std::vector<double>& symmetrizedRates() const
    {
        return options_.symmetrizedRates;
    }

    /**
     * The twirl-string set for a @p bits -wide output register:
     * string g = low bits of Rng(options.twirlSeed).splitAt(g).
     * numGroups == 0 yields the single identity string. Shared with
     * the TwirlStrings service artifact and the oracle so the three
     * can never drift apart.
     */
    static std::vector<InversionString>
    twirlStrings(unsigned bits, const BfaOptions& options);

    /**
     * The (string, share) plan for a budget of @p shots: SIM's
     * share-split arithmetic (floor division, leftover distributed
     * one extra trial to the earliest groups) over the twirl set.
     */
    static ModePlan twirlPlan(unsigned bits, std::size_t shots,
                              const BfaOptions& options);

  private:
    BfaOptions options_;
    std::shared_ptr<const std::vector<InversionString>> strings_;
    ModePlan lastTwirlPlan_;
    Counts lastTwirledCounts_;
    bool unfolded_ = false;
};

} // namespace qem

#endif // QEM_MITIGATION_BFA_POLICY_HH
