/**
 * @file
 * Static Invert-and-Measure (SIM), Section 5.
 *
 * Splits the trial budget over a fixed set of inversion strings and
 * merges the post-corrected logs. With the default four strings
 * (none / full / even-bit / odd-bit inversion) the effective readout
 * error of any state approaches the average over its four images,
 * removing the worst-case penalty of reading a vulnerable state —
 * with no knowledge of the application or the machine.
 */

#ifndef QEM_MITIGATION_SIM_POLICY_HH
#define QEM_MITIGATION_SIM_POLICY_HH

#include <vector>

#include "mitigation/inversion.hh"
#include "mitigation/policy.hh"

namespace qem
{

class StaticInvertAndMeasure : public MitigationPolicy
{
  public:
    /**
     * @param strings Explicit inversion strings. Empty (default)
     *        means "the paper's four-mode set", instantiated per
     *        circuit width at run time.
     */
    explicit StaticInvertAndMeasure(
        std::vector<InversionString> strings = {});

    /** Convenience factories. */
    static StaticInvertAndMeasure twoMode(unsigned bits);
    static StaticInvertAndMeasure fourMode(unsigned bits);
    static StaticInvertAndMeasure multiMode(unsigned bits,
                                            unsigned k);

    Counts run(const Circuit& circuit, Backend& backend,
               std::size_t shots) override;

    std::string name() const override;

    /** The per-mode budget split of the last completed run(). */
    ModePlan lastPlan() const override { return lastPlan_; }

  private:
    /** Strings to use for a circuit with @p bits output bits. */
    std::vector<InversionString> stringsFor(unsigned bits) const;

    std::vector<InversionString> strings_;
    ModePlan lastPlan_;
};

} // namespace qem

#endif // QEM_MITIGATION_SIM_POLICY_HH
