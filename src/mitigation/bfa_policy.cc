#include "mitigation/bfa_policy.hh"

#include <bit>
#include <stdexcept>

#include "mitigation/matrix_correction.hh"
#include "qsim/bitstring.hh"
#include "qsim/rng.hh"
#include "runtime/resilient_backend.hh"
#include "telemetry/telemetry.hh"

namespace qem
{

BitFlipAveragePolicy::BitFlipAveragePolicy(
    BfaOptions options,
    std::shared_ptr<const std::vector<InversionString>>
        twirl_strings)
    : options_(std::move(options)), strings_(std::move(twirl_strings))
{
    for (double rate : options_.symmetrizedRates) {
        if (rate < 0.0 || rate >= 0.5) {
            throw std::invalid_argument(
                "BFA: symmetrized rates must be in [0, 0.5) — at "
                "0.5 the symmetric confusion matrix is singular");
        }
    }
}

std::vector<InversionString>
BitFlipAveragePolicy::twirlStrings(unsigned bits,
                                   const BfaOptions& options)
{
    if (options.numGroups == 0)
        return {InversionString{0}};
    const Rng parent(options.twirlSeed);
    std::vector<InversionString> strings;
    strings.reserve(options.numGroups);
    for (unsigned g = 0; g < options.numGroups; ++g)
        strings.push_back(parent.splitAt(g).bits() & allOnes(bits));
    return strings;
}

ModePlan
BitFlipAveragePolicy::twirlPlan(unsigned bits, std::size_t shots,
                                const BfaOptions& options)
{
    const std::vector<InversionString> strings =
        twirlStrings(bits, options);
    if (shots < strings.size())
        throw std::invalid_argument("BFA: fewer shots than twirl "
                                    "groups");
    ModePlan plan;
    plan.reserve(strings.size());
    const std::size_t per_mode = shots / strings.size();
    std::size_t leftover = shots % strings.size();
    for (InversionString inv : strings) {
        std::size_t share = per_mode;
        if (leftover > 0) {
            ++share;
            --leftover;
        }
        plan.push_back({inv, share});
    }
    return plan;
}

ModePlan
BitFlipAveragePolicy::lastPlan() const
{
    // With rate unfolding, the returned log is not a mixture of
    // per-mode relabelings (the tensored inverse mixes outcomes
    // across the whole histogram), so per the MitigationPolicy
    // contract there is no replayable plan to report.
    if (unfolded_)
        return {};
    return lastTwirlPlan_;
}

Counts
BitFlipAveragePolicy::run(const Circuit& circuit, Backend& backend,
                          std::size_t shots)
{
    const std::vector<Qubit> measured = circuit.measuredQubits();
    const unsigned bits = static_cast<unsigned>(measured.size());
    const unsigned clbits = circuit.numClbits();
    if (bits == 0)
        throw std::invalid_argument("BFA: circuit has no "
                                    "measurements");
    if (!options_.symmetrizedRates.empty()) {
        if (options_.symmetrizedRates.size() != clbits) {
            throw std::invalid_argument(
                "BFA: symmetrized rates must be sized to the "
                "classical register");
        }
        if (clbits > 20) {
            throw std::invalid_argument(
                "BFA: output register too wide to densify for "
                "rate unfolding");
        }
    }

    telemetry::SpanTracer::Scope policySpan =
        telemetry::span("bfa.run");

    ModePlan plan;
    if (strings_) {
        // Precomputed (cached) twirl set: must be exactly what the
        // seeded draw would produce, or the run is not reproducible
        // from (seed, groups, width) as documented.
        if (*strings_ != twirlStrings(bits, options_)) {
            throw std::invalid_argument(
                "BFA: supplied twirl strings do not match the "
                "(seed, groups, width) draw");
        }
        if (shots < strings_->size())
            throw std::invalid_argument("BFA: fewer shots than "
                                        "twirl groups");
        plan.reserve(strings_->size());
        const std::size_t per_mode = shots / strings_->size();
        std::size_t leftover = shots % strings_->size();
        for (InversionString inv : *strings_) {
            std::size_t share = per_mode;
            if (leftover > 0) {
                ++share;
                --leftover;
            }
            plan.push_back({inv, share});
        }
    } else {
        plan = twirlPlan(bits, shots, options_);
    }

    Counts merged(clbits);
    for (const ModeShare& mode : plan) {
        Counts observed(clbits);
        {
            telemetry::SpanTracer::Scope s =
                telemetry::span("bfa.shot_batches");
            observed = backend.run(
                applyInversion(circuit, mode.inversion), mode.shots);
        }
        // Same refusal as SIM: merging a salvaged (partial) group
        // would bias the twirl average toward the groups that
        // completed.
        if (observed.total() != mode.shots) {
            throw BudgetExhausted(
                "BFA: twirl group returned " +
                std::to_string(observed.total()) + " of " +
                std::to_string(mode.shots) +
                " trials; refusing to merge partial-group data");
        }
        telemetry::count(
            "policy.bfa.correction_bitflips",
            static_cast<std::uint64_t>(
                std::popcount(mode.inversion)) *
                observed.total());
        merged.merge(correctInversion(observed, mode.inversion));
    }
    lastTwirlPlan_ = std::move(plan);
    lastTwirledCounts_ = merged;
    unfolded_ = !options_.symmetrizedRates.empty();

    telemetry::count("policy.bfa.runs");
    telemetry::count("policy.bfa.shots", merged.total());
    telemetry::count("policy.bfa.twirl_strings_applied",
                     lastTwirlPlan_.size());
    if (!unfolded_)
        return merged;

    // Rate unfolding: the twirl has symmetrized each bit's channel
    // to rate p_i, so the tensored inverse with p01 = p10 = p_i
    // removes the residual (now state-independent) flip noise.
    telemetry::SpanTracer::Scope s =
        telemetry::span("bfa.unfold");
    const std::vector<double> corrected = invertTensoredConfusion(
        merged.toProbabilityVector(), options_.symmetrizedRates,
        options_.symmetrizedRates);
    return roundCorrectedDistribution(corrected, clbits, shots);
}

} // namespace qem
