/**
 * @file
 * Readout Rebalancing (Hicks et al., arXiv:2010.07496): data-free
 * AIM.
 *
 * Rebalancing picks one X-prefix per run so that the outcome the
 * program is *expected* to produce is read out of the machine's
 * strongest basis state. It reuses AIM's phase-3 machinery — XOR the
 * predicted output onto RbmsEstimate::strongestState() — but skips
 * the canary phase entirely: the prediction comes from classical
 * knowledge (by default the noise-free statevector of the physical
 * program), so every trial of the budget runs in the single tailored
 * mode. Against Hamming-monotone bias this recovers most of AIM's
 * win for free; against ambiguous outputs (e.g. the two QAOA
 * partitions) it can only protect one of them, which is exactly the
 * regime where AIM's sampled canary earns its 25% budget tax.
 */

#ifndef QEM_MITIGATION_REBALANCE_POLICY_HH
#define QEM_MITIGATION_REBALANCE_POLICY_HH

#include <memory>

#include "mitigation/policy.hh"
#include "mitigation/rbms.hh"

namespace qem
{

/** Rebalancing knobs. */
struct RebalanceOptions
{
    /**
     * Derive the likely outcome from the ideal (noise-free)
     * statevector of the circuit being run — the "software-only
     * knowledge" configuration of the Rebalancing paper. When
     * false, @ref predictedOutcome is used verbatim.
     */
    bool predictFromIdeal = true;
    /** Explicit likely outcome (ignored while predictFromIdeal). */
    BasisState predictedOutcome = 0;
};

class RebalancePolicy : public MitigationPolicy
{
  public:
    /**
     * @param rbms Machine profile over the program's output bits
     *        (same contract as AIM's: width must match the
     *        circuit's measured register).
     */
    explicit RebalancePolicy(
        std::shared_ptr<const RbmsEstimate> rbms,
        RebalanceOptions options = {});

    Counts run(const Circuit& circuit, Backend& backend,
               std::size_t shots) override;

    std::string name() const override { return "Rebalance"; }

    /**
     * The X-prefix steering @p predicted onto @p rbms's strongest
     * state — the single inversion string a Rebalance run executes.
     * Shared with ExactOracle::rebalancePlan so the policy and its
     * analytic prediction can never drift apart.
     */
    static InversionString prefixFor(BasisState predicted,
                                     const RbmsEstimate& rbms);

    /**
     * One mode carrying the whole budget. Per the MitigationPolicy
     * contract the recorded inversion string is the *physical*
     * prefix (predicted XOR strongest), not the logical identity
     * the post-corrected log exhibits — holdout replay through the
     * plan must prepare the basis states the hardware actually
     * read.
     */
    ModePlan lastPlan() const override { return lastPlan_; }

    /** The outcome the last run() predicted (diagnostics/tests). */
    BasisState lastPredicted() const { return lastPredicted_; }

    const RbmsEstimate& rbms() const { return *rbms_; }

  private:
    std::shared_ptr<const RbmsEstimate> rbms_;
    RebalanceOptions options_;
    BasisState lastPredicted_ = 0;
    ModePlan lastPlan_;
};

} // namespace qem

#endif // QEM_MITIGATION_REBALANCE_POLICY_HH
