/**
 * @file
 * Relative Basis Measurement Strength (RBMS) estimation.
 *
 * The RBMS assigns each basis state a (relative) probability of
 * being measured correctly. AIM consumes it twice: to rescale canary
 * outcomes into likelihoods, and to find the machine's strongest
 * state, the target every predicted output is steered onto.
 *
 * Three characterization techniques, matching Section 6.2.1 and
 * Appendix A:
 *  - Direct (brute force): prepare and measure every basis state;
 *    exact but costs O(2^N) circuits. Used for the 5-qubit machines.
 *  - ESCT (Equal-Superposition Characterization Technique): measure
 *    H^N |0>; the observed distribution is proportional to the RBMS
 *    up to leakage (the paper reports ~5% MSE). One circuit total.
 *  - AWCT (Approximate Windowed Characterization Technique): ESCT on
 *    sliding m-qubit windows with 2-qubit overlap; trials scale
 *    O(2^m) instead of O(2^N). Used for the 14-qubit machine (m=4,
 *    6 windows).
 */

#ifndef QEM_MITIGATION_RBMS_HH
#define QEM_MITIGATION_RBMS_HH

#include <memory>
#include <vector>

#include "qsim/simulator.hh"

namespace qem
{

/** Interface: per-state measurement strength on some scale. */
class RbmsEstimate
{
  public:
    virtual ~RbmsEstimate() = default;

    /** Number of output bits covered. */
    virtual unsigned numBits() const = 0;

    /**
     * Strength of @p state; only ratios between states are
     * meaningful.
     */
    virtual double strength(BasisState state) const = 0;

    /** The state with maximal strength (ties: lowest state). */
    virtual BasisState strongestState() const = 0;

    /**
     * Dense strength table over all 2^numBits states, normalized so
     * the maximum is 1 (requires numBits <= 20).
     */
    std::vector<double> relativeCurve() const;
};

/** RBMS backed by a dense 2^n table. */
class ExhaustiveRbms : public RbmsEstimate
{
  public:
    /** @param table Strength per state; size must be a power of 2. */
    explicit ExhaustiveRbms(std::vector<double> table);

    unsigned numBits() const override { return numBits_; }
    double strength(BasisState state) const override;
    BasisState strongestState() const override;

  private:
    unsigned numBits_;
    std::vector<double> table_;
};

/**
 * RBMS assembled from overlapping window tables (AWCT). The
 * strength of a full state is the first window's strength times,
 * for every later window, the conditional factor
 * T_w(state) / T_w(state with the window's new bits cleared) —
 * exact under independent readout noise, and the sliding-window
 * approximation in the presence of crosstalk.
 */
class WindowedRbms : public RbmsEstimate
{
  public:
    struct Window
    {
        /** First output bit the window covers. */
        unsigned offset = 0;
        /** Strength table over the window's 2^m local states. */
        std::vector<double> table;
    };

    /**
     * @param num_bits Total output bits covered.
     * @param windows Windows ordered by offset; consecutive windows
     *        must overlap or touch and jointly cover [0, num_bits).
     */
    WindowedRbms(unsigned num_bits, std::vector<Window> windows);

    unsigned numBits() const override { return numBits_; }
    double strength(BasisState state) const override;
    BasisState strongestState() const override;

    const std::vector<Window>& windows() const { return windows_; }

  private:
    unsigned windowBits(std::size_t idx) const;

    unsigned numBits_;
    std::vector<Window> windows_;
    /** newBits_[k]: first bit of window k not covered before it. */
    std::vector<unsigned> newStart_;
};

/**
 * Direct characterization: prepare each of the 2^k basis states on
 * the physical qubits @p qubits (clbit order) and measure; strength
 * is the fraction of trials read back exactly.
 */
ExhaustiveRbms characterizeDirect(Backend& backend,
                                  const std::vector<Qubit>& qubits,
                                  std::size_t shots_per_state);

/**
 * ESCT: one uniform-superposition circuit over @p qubits; the
 * observed outcome distribution is the (relative) strength table.
 */
ExhaustiveRbms characterizeSuperposition(
    Backend& backend, const std::vector<Qubit>& qubits,
    std::size_t shots);

/**
 * AWCT: ESCT applied to sliding windows of @p window_size bits.
 *
 * @param overlap Bits shared between consecutive windows; the
 *        paper uses 2. Zero means disjoint windows (a fully
 *        independent-noise assumption); must be < window_size.
 */
WindowedRbms characterizeWindowed(Backend& backend,
                                  const std::vector<Qubit>& qubits,
                                  unsigned window_size,
                                  std::size_t shots_per_window,
                                  unsigned overlap = 2);

/** Knobs for characterizeAuto. */
struct RbmsOptions
{
    /** Use direct characterization up to this many output bits. */
    unsigned directMaxBits = 5;
    std::size_t shotsPerState = 2048;
    /** AWCT window size (paper: m=4, overlap 2). */
    unsigned windowSize = 4;
    std::size_t shotsPerWindow = 8192;
};

/**
 * The paper's policy: brute force for small registers (IBM-Q5),
 * sliding windows for large ones (IBM-Q14).
 */
std::shared_ptr<const RbmsEstimate> characterizeAuto(
    Backend& backend, const std::vector<Qubit>& qubits,
    const RbmsOptions& options = {});

} // namespace qem

#endif // QEM_MITIGATION_RBMS_HH
