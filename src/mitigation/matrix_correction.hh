/**
 * @file
 * Tensored measurement-matrix inversion: the classical
 * post-processing comparator to Invert-and-Measure.
 *
 * This is the family of techniques (Qiskit measurement filters,
 * TREX, M3) that calibrates per-qubit confusion matrices and applies
 * their inverse to the observed distribution. It is a *software*
 * correction: unlike SIM/AIM it never changes what basis state the
 * hardware reads, so correlated (state-dependent) readout errors —
 * which the tensored calibration cannot see — remain uncorrected,
 * and the inversion can amplify shot noise. The ablation bench
 * compares it head-to-head with SIM/AIM.
 */

#ifndef QEM_MITIGATION_MATRIX_CORRECTION_HH
#define QEM_MITIGATION_MATRIX_CORRECTION_HH

#include "mitigation/policy.hh"

namespace qem
{

class MatrixInversionCorrection : public MitigationPolicy
{
  public:
    /**
     * @param calibration_shots Trials per calibration circuit (two
     *        circuits: all-zeros and all-ones prep).
     */
    explicit MatrixInversionCorrection(
        std::size_t calibration_shots = 8192);

    /**
     * Calibrate per-qubit confusion on the circuit's measured
     * qubits, run the full budget in the standard mode, and return
     * the inverse-confusion-corrected log (clipped to nonnegative
     * and renormalized, rounded back to integer counts).
     */
    Counts run(const Circuit& circuit, Backend& backend,
               std::size_t shots) override;

    std::string name() const override { return "MatrixInv"; }

  private:
    std::size_t calibrationShots_;
};

/**
 * Apply per-bit inverse confusion matrices to a dense probability
 * vector (bit i uses rates @p p01 [i], @p p10 [i]). Exposed for
 * testing; negative probabilities produced by the inversion are NOT
 * clipped here.
 */
std::vector<double> invertTensoredConfusion(
    std::vector<double> probs, const std::vector<double>& p01,
    const std::vector<double>& p10);

/**
 * Clip negative entries to zero and renormalize to unit sum — the
 * standard practical repair for quasi-probabilities produced by
 * confusion-matrix inversion. Returns an all-zeros vector when the
 * clipped sum is nonpositive.
 */
std::vector<double> clipAndRenormalize(std::vector<double> probs);

/**
 * Round a corrected quasi-probability vector back to an integer
 * output log of (approximately) @p shots trials: clip, renormalize,
 * then per-outcome llround. Shared by MatrixInversionCorrection and
 * BitFlipAveragePolicy so the two unfolding paths stay bit-identical.
 */
Counts roundCorrectedDistribution(const std::vector<double>& corrected,
                                  unsigned bits, std::size_t shots);

} // namespace qem

#endif // QEM_MITIGATION_MATRIX_CORRECTION_HH
