/**
 * @file
 * RBMS profile serialization.
 *
 * AIM's machine profile is measured offline (the paper observes the
 * bias is stable across calibration cycles, so profiling is an
 * occasional cost, not a per-job one). These helpers persist a
 * profile as a small line-oriented text format so a characterization
 * run and the production runs can be different processes:
 *
 *   rbms exhaustive <bits>
 *   <2^bits strength values, one per line>
 *
 *   rbms windowed <bits> <window-count>
 *   window <offset> <table-size>
 *   <table-size strength values, one per line>
 *   ...
 */

#ifndef QEM_MITIGATION_RBMS_IO_HH
#define QEM_MITIGATION_RBMS_IO_HH

#include <memory>
#include <string>

#include "mitigation/rbms.hh"

namespace qem
{

/** Serialize either RBMS representation. */
std::string serializeRbms(const RbmsEstimate& rbms);

/**
 * Parse a profile produced by serializeRbms. Throws
 * std::invalid_argument with a diagnostic on malformed input.
 */
std::shared_ptr<const RbmsEstimate> parseRbms(
    const std::string& text);

} // namespace qem

#endif // QEM_MITIGATION_RBMS_IO_HH
