/**
 * @file
 * Inversion strings: the primitive under both SIM and AIM.
 *
 * An inversion string is a bit mask over the program's classical
 * output bits. Applying it rewrites the circuit so that each
 * measured qubit whose output bit is set in the mask is flipped with
 * an X gate immediately before its measurement; the observed
 * outcomes are then flipped back classically (XOR with the mask) to
 * restore program semantics. The quantum state read out is thereby
 * steered to a different basis state with (hopefully) a smaller
 * readout error, while the program's answer is unchanged.
 */

#ifndef QEM_MITIGATION_INVERSION_HH
#define QEM_MITIGATION_INVERSION_HH

#include <vector>

#include "qsim/circuit.hh"
#include "qsim/counts.hh"

namespace qem
{

/** Mask over classical output bits; bit c flips the qubit read
 *  into clbit c. */
using InversionString = BasisState;

/**
 * One executed measurement mode: an inversion string and the number
 * of trials that ran under it. A policy's full run is a list of
 * these — its "mode plan" — which is exactly the information the
 * verification oracle needs to compute the analytic distribution
 * the merged, post-corrected log converges to (conditional on the
 * plan, every mode's log is an independent multinomial draw from
 * that mode's exact outcome distribution).
 */
struct ModeShare
{
    InversionString inversion = 0;
    std::size_t shots = 0;
};

/** The modes one policy run executed, in execution order. */
using ModePlan = std::vector<ModeShare>;

/**
 * Rewrite @p circuit for inverted measurement under @p inversion:
 * an X is inserted directly before every MEASURE whose classical
 * bit is set in the mask. Works on logical and physical circuits
 * alike since the mask addresses classical bits.
 */
Circuit applyInversion(const Circuit& circuit,
                       InversionString inversion);

/**
 * Classical post-correction: flip observed outcomes back. (Pure
 * relabeling of the histogram.)
 */
Counts correctInversion(const Counts& counts,
                        InversionString inversion);

/** @name Standard inversion-string sets (Section 5.3).  */
/// @{
/** {no inversion, full inversion} over @p bits output bits. */
std::vector<InversionString> twoModeStrings(unsigned bits);

/**
 * The paper's production SIM configuration: no inversion, full
 * inversion, even-bit inversion (bits 0, 2, ...), odd-bit inversion.
 * These split the Hamming space into four parts.
 */
std::vector<InversionString> fourModeStrings(unsigned bits);

/**
 * 2^k strings spreading inversions across the Hamming space:
 * generalization used by the SIM mode-count ablation. k <= bits
 * required; produced deterministically (k=1 and k=2 reduce to the
 * sets above).
 */
std::vector<InversionString> multiModeStrings(unsigned bits,
                                              unsigned k);
/// @}

} // namespace qem

#endif // QEM_MITIGATION_INVERSION_HH
