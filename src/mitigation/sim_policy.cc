#include "mitigation/sim_policy.hh"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "runtime/resilient_backend.hh"
#include "telemetry/telemetry.hh"

namespace qem
{

StaticInvertAndMeasure::StaticInvertAndMeasure(
    std::vector<InversionString> strings)
    : strings_(std::move(strings))
{
}

StaticInvertAndMeasure
StaticInvertAndMeasure::twoMode(unsigned bits)
{
    return StaticInvertAndMeasure(twoModeStrings(bits));
}

StaticInvertAndMeasure
StaticInvertAndMeasure::fourMode(unsigned bits)
{
    return StaticInvertAndMeasure(fourModeStrings(bits));
}

StaticInvertAndMeasure
StaticInvertAndMeasure::multiMode(unsigned bits, unsigned k)
{
    return StaticInvertAndMeasure(multiModeStrings(bits, k));
}

std::vector<InversionString>
StaticInvertAndMeasure::stringsFor(unsigned bits) const
{
    if (!strings_.empty())
        return strings_;
    return fourModeStrings(bits);
}

Counts
StaticInvertAndMeasure::run(const Circuit& circuit, Backend& backend,
                            std::size_t shots)
{
    const std::vector<Qubit> measured = circuit.measuredQubits();
    if (measured.empty())
        throw std::invalid_argument("SIM: circuit has no "
                                    "measurements");
    const std::vector<InversionString> strings =
        stringsFor(static_cast<unsigned>(measured.size()));
    if (shots < strings.size())
        throw std::invalid_argument("SIM: fewer shots than "
                                    "measurement modes");

    telemetry::SpanTracer::Scope policySpan =
        telemetry::span("sim.run");

    Counts merged(circuit.numClbits());
    ModePlan plan;
    plan.reserve(strings.size());
    const std::size_t per_mode = shots / strings.size();
    std::size_t leftover = shots % strings.size();
    for (InversionString inv : strings) {
        std::size_t share = per_mode;
        if (leftover > 0) {
            ++share;
            --leftover;
        }
        Counts observed(circuit.numClbits());
        {
            telemetry::SpanTracer::Scope s =
                telemetry::span("sim.shot_batches");
            observed =
                backend.run(applyInversion(circuit, inv), share);
        }
        // Each mode carries 1/k of the budget; merging a salvaged
        // (partial) mode would bias the histogram toward the modes
        // that completed. Refuse instead of degrading silently.
        if (observed.total() != share) {
            throw BudgetExhausted(
                "SIM: mode returned " +
                std::to_string(observed.total()) + " of " +
                std::to_string(share) +
                " trials; refusing to merge partial-mode data");
        }
        {
            telemetry::SpanTracer::Scope s =
                telemetry::span("sim.post_correct");
            // Every set mask bit is one classical bit-flip per
            // observed trial during post-correction.
            telemetry::count(
                "policy.sim.correction_bitflips",
                static_cast<std::uint64_t>(std::popcount(inv)) *
                    observed.total());
            merged.merge(correctInversion(observed, inv));
        }
        plan.push_back({inv, share});
    }
    lastPlan_ = std::move(plan);

    // Counted on completion, from the merged log, so aborted runs
    // never overcount shots in manifests.
    telemetry::count("policy.sim.runs");
    telemetry::count("policy.sim.shots", merged.total());
    telemetry::count("policy.sim.inversion_strings_applied",
                     strings.size());
    return merged;
}

std::string
StaticInvertAndMeasure::name() const
{
    if (strings_.empty())
        return "SIM";
    std::ostringstream os;
    os << "SIM-" << strings_.size();
    return os.str();
}

} // namespace qem
