#include "mitigation/rbms_io.hh"

#include <sstream>
#include <stdexcept>

namespace qem
{

namespace
{

[[noreturn]] void
parseFail(const std::string& what)
{
    throw std::invalid_argument("parseRbms: " + what);
}

std::vector<double>
readValues(std::istream& in, std::size_t count)
{
    std::vector<double> values(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!(in >> values[i]))
            parseFail("truncated strength table");
        if (values[i] < 0.0)
            parseFail("negative strength");
    }
    return values;
}

} // namespace

std::string
serializeRbms(const RbmsEstimate& rbms)
{
    std::ostringstream os;
    os.precision(17);
    if (const auto* windowed =
            dynamic_cast<const WindowedRbms*>(&rbms)) {
        os << "rbms windowed " << windowed->numBits() << " "
           << windowed->windows().size() << "\n";
        for (const WindowedRbms::Window& w :
             windowed->windows()) {
            os << "window " << w.offset << " " << w.table.size()
               << "\n";
            for (double v : w.table)
                os << v << "\n";
        }
        return os.str();
    }
    // Any other estimate serializes through its dense curve.
    os << "rbms exhaustive " << rbms.numBits() << "\n";
    const std::size_t dim = std::size_t{1} << rbms.numBits();
    for (BasisState s = 0; s < dim; ++s)
        os << rbms.strength(s) << "\n";
    return os.str();
}

std::shared_ptr<const RbmsEstimate>
parseRbms(const std::string& text)
{
    std::istringstream in(text);
    std::string magic, kind;
    if (!(in >> magic >> kind) || magic != "rbms")
        parseFail("missing 'rbms' header");

    if (kind == "exhaustive") {
        unsigned bits = 0;
        if (!(in >> bits) || bits == 0 || bits > 24)
            parseFail("bad bit count");
        return std::make_shared<ExhaustiveRbms>(
            readValues(in, std::size_t{1} << bits));
    }
    if (kind == "windowed") {
        unsigned bits = 0;
        std::size_t window_count = 0;
        if (!(in >> bits >> window_count) || bits == 0 ||
            window_count == 0) {
            parseFail("bad windowed header");
        }
        std::vector<WindowedRbms::Window> windows;
        for (std::size_t w = 0; w < window_count; ++w) {
            std::string tag;
            unsigned offset = 0;
            std::size_t table_size = 0;
            if (!(in >> tag >> offset >> table_size) ||
                tag != "window") {
                parseFail("bad window header");
            }
            WindowedRbms::Window window;
            window.offset = offset;
            window.table = readValues(in, table_size);
            windows.push_back(std::move(window));
        }
        return std::make_shared<WindowedRbms>(bits,
                                              std::move(windows));
    }
    parseFail("unknown profile kind '" + kind + "'");
}

} // namespace qem
