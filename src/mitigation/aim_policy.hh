/**
 * @file
 * Adaptive Invert-and-Measure (AIM), Section 6.
 *
 * AIM spends a fraction of the trial budget on "canary" trials run
 * under SIM's four static modes, rescales the observed outcome
 * frequencies by the machine's inverse measurement strength (RBMS)
 * to form likelihoods L_i, picks the top-K likely outputs, and runs
 * the remaining budget with tailored inversion strings that map each
 * predicted output onto the machine's strongest state. Unlike SIM,
 * AIM exploits arbitrary (non-Hamming-monotone) bias, which is what
 * the ibmqx4-class machines exhibit.
 */

#ifndef QEM_MITIGATION_AIM_POLICY_HH
#define QEM_MITIGATION_AIM_POLICY_HH

#include <memory>

#include "mitigation/policy.hh"
#include "mitigation/rbms.hh"

namespace qem
{

/** AIM tuning parameters (paper defaults). */
struct AimOptions
{
    /** Fraction of trials used as canaries (paper: 25%). */
    double canaryFraction = 0.25;
    /** Number of predicted outputs K (paper: K=4). */
    unsigned numCandidates = 4;
    /**
     * Split the tailored budget across candidates proportionally
     * to their likelihoods L_i rather than uniformly. When the
     * canary phase identifies the output with high confidence
     * (e.g. BV), nearly the whole budget then runs in the one mode
     * that reads the strongest state; ambiguous outputs (e.g. the
     * two QAOA partitions) still share it.
     */
    bool weightedAllocation = true;
};

class AdaptiveInvertAndMeasure : public MitigationPolicy
{
  public:
    /**
     * @param rbms Machine profile over the program's output bits
     *        (from characterizeAuto on the measured physical
     *        qubits); must cover exactly as many bits as the target
     *        circuit measures.
     * @param options Canary fraction and candidate count.
     */
    explicit AdaptiveInvertAndMeasure(
        std::shared_ptr<const RbmsEstimate> rbms,
        AimOptions options = {});

    Counts run(const Circuit& circuit, Backend& backend,
               std::size_t shots) override;

    std::string name() const override { return "AIM"; }

    const RbmsEstimate& rbms() const { return *rbms_; }

    /**
     * The candidate outputs chosen during the last run(), most
     * likely first (diagnostics / tests).
     */
    const std::vector<BasisState>& lastCandidates() const
    {
        return lastCandidates_;
    }

    /**
     * The realized mode split of the last run(): the four canary
     * modes followed by the tailored modes with their
     * likelihood-weighted shares. Because the tailored strings and
     * weights depend on the sampled canary log, this plan is a
     * per-run observation — the verification oracle conditions on
     * it rather than re-deriving it.
     */
    ModePlan lastPlan() const override { return lastPlan_; }

  private:
    std::shared_ptr<const RbmsEstimate> rbms_;
    AimOptions options_;
    std::vector<BasisState> lastCandidates_;
    ModePlan lastPlan_;
};

} // namespace qem

#endif // QEM_MITIGATION_AIM_POLICY_HH
