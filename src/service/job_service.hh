/**
 * @file
 * Long-lived, multi-tenant job service over the execution runtime.
 *
 * PRs 1-5 built a fast, failure-tolerant runtime that is still
 * driven one synchronous MachineSession::run at a time. This layer
 * turns it into a service: tenants submit() jobs asynchronously and
 * get a JobHandle back; jobs from every tenant and machine are
 * split into shot batches and multiplexed onto ONE shared
 * ThreadPool (instead of one pool per session); a bounded priority
 * queue provides admission control; and expensive per-machine
 * artifacts — compiled NoiseProgram​s, RBMS profiles, confusion
 * CDFs — are shared through an ArtifactCache so a million users
 * running the same canary circuit compile it once.
 *
 * Determinism: each job's RNG tree is
 *
 *     Rng(serviceSeed).splitAt(fp(tenant)).splitAt(jobKey)
 *
 * and batch i of the job samples from splitAt(i) of that — three
 * index-keyed derivations, no call-order state anywhere. Any
 * submission interleaving, queue depth, or thread count reproduces
 * bit-identical per-job Counts (pinned by the committed golden
 * tests/golden/job_service.json).
 *
 * Failure semantics mirror ParallelBackend (docs/resilience.md):
 * per-batch transient retries with deterministic backoff, then
 * FailFast (the job's handle throws BudgetExhausted) or
 * DropBatches (the job completes short and its JobRecord reports
 * the loss). Every job leaves a JobRecord in the audit log,
 * exportable as a service manifest.
 */

#ifndef QEM_SERVICE_JOB_SERVICE_HH
#define QEM_SERVICE_JOB_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qsim/circuit.hh"
#include "qsim/rng.hh"
#include "qsim/simulator.hh"
#include "runtime/resilient_backend.hh"
#include "runtime/thread_pool.hh"
#include "service/artifact_cache.hh"
#include "service/job.hh"
#include "service/job_queue.hh"
#include "telemetry/health.hh"
#include "telemetry/json.hh"

namespace qem::svc
{

/** Construction-time knobs of one service instance. */
struct ServiceOptions
{
    /** Shared pool workers; 0 = one per hardware thread. */
    unsigned numThreads = 0;
    /** Shots per batch when JobOptions::batchSize is 0. */
    std::size_t defaultBatchSize = 256;
    /**
     * Admission bound: queued batches across all jobs. A submission
     * whose batches would overflow it is rejected with
     * BudgetExhausted (nothing is enqueued).
     */
    std::size_t maxQueuedBatches = 4096;
    /** Per-batch retry budget when JobOptions::maxRetries is -1. */
    unsigned defaultMaxRetries = 2;
    /** Backoff shape between batch retry attempts. */
    BackoffPolicy backoff{};
    /** Shared artifact cache sizing. */
    ArtifactCache::Options cache{};
    /**
     * Attach a flight recorder to every job even when telemetry
     * is off (otherwise recording follows telemetry::enabled() at
     * submit time). Off by default: the established zero-cost
     * discipline — a disabled service allocates nothing per job.
     */
    bool flightRecorder = false;
    /** Ring capacity of each per-job flight recorder. */
    std::size_t flightCapacity = 64;
};

/** Aggregate accounting of one service instance. */
struct ServiceSummary
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shotsCompleted = 0;
    std::uint64_t retries = 0;
    std::uint64_t droppedBatches = 0;
    CacheStats cache;
    /** Aggregate of the last health check; Healthy when the
     *  service's monitor was never created or never ran. */
    telemetry::HealthStatus health =
        telemetry::HealthStatus::Healthy;
};

class JobService
{
  public:
    /**
     * @param options Pool size, queue bound, retry defaults, cache
     *        budget.
     * @param seed Root of the service's RNG tree; per-tenant and
     *        per-job streams derive from it by index-keyed splits.
     */
    explicit JobService(ServiceOptions options = ServiceOptions(),
                        std::uint64_t seed = 2019);

    /** Drains every in-flight job, then joins the pool. */
    ~JobService();

    JobService(const JobService&) = delete;
    JobService& operator=(const JobService&) = delete;

    /**
     * Register @p prototype as the executor for @p name, cloning
     * one worker per pool thread (wrapped in a fault injector when
     * `INVERTQ_FAULTS` is set, exactly like ParallelBackend).
     * Returns false — keeping the existing registration — when the
     * machine is already registered.
     */
    bool registerMachine(const std::string& name,
                         const ShardedBackend& prototype);

    /**
     * Swap the executor of an already-registered machine for
     * @p prototype (re-cloning one worker per pool thread) and
     * bump the machine's generation. The swap is a single atomic
     * publication: jobs submitted before it finish on the worker
     * set they resolved at submit time (pinned via shared_ptr),
     * jobs submitted after it run on the new one, and compiled
     * programs are keyed by generation so a swapped machine
     * misses cleanly instead of serving the old backend's
     * lowering. Returns false when @p name is not registered.
     */
    bool replaceMachine(const std::string& name,
                        const ShardedBackend& prototype);

    bool hasMachine(const std::string& name) const;

    /** Times the machine's backend was replaced (0 = as first
     *  registered). Throws for an unregistered machine. */
    std::uint64_t machineGeneration(const std::string& name) const;

    /**
     * Queue @p shots trials of @p circuit on @p machine. Returns
     * immediately with a handle to the async result.
     *
     * @throws std::invalid_argument for an unregistered machine or
     *         zero batch size.
     * @throws BudgetExhausted when admission control rejects the
     *         job (queue full); nothing is enqueued.
     */
    JobHandle submit(const std::string& machine,
                     const Circuit& circuit, std::size_t shots,
                     JobOptions options = {});

    /**
     * Request cancellation. Batches not yet started are skipped;
     * running batches finish (a batch is never interrupted). The
     * handle's get() then throws JobCancelled. Returns false when
     * the job is already terminal.
     */
    bool cancel(const JobHandle& handle);

    /** Block until every job submitted so far is terminal. */
    void drain();

    /** The shared artifact cache (also usable directly, e.g. for
     *  cached RBMS profiling via MachineSession). */
    ArtifactCache& cache() { return cache_; }

    /** Workers in the shared pool. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(pool_->size());
    }

    std::uint64_t seed() const { return seed_; }

    /**
     * The deterministic RNG root of (tenant, jobKey) under
     * @p service_seed — the exact stream a service job consumes,
     * exposed so tests and offline tools can replay any job
     * serially and compare bit-for-bit.
     */
    static Rng jobStream(std::uint64_t service_seed,
                         const std::string& tenant,
                         std::uint64_t job_key);

    /** Queued batches right now (live introspection). */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Admission bound on queued batches. */
    std::size_t queueCapacity() const
    {
        return queue_.capacity();
    }

    /** Batches popped and executed (or skipped) so far; the
     *  liveness signal behind the worker-starvation probe. */
    std::uint64_t dispatchedBatches() const
    {
        return dispatchedBatches_.load(
            std::memory_order_relaxed);
    }

    /**
     * The service's health monitor, created on first call with the
     * built-in probes — queue saturation, worker starvation, cache
     * thrash — wired to this instance. Callers add
     * machine-specific probes (e.g. svc::RbmsStalenessProbe) via
     * addProbe() and drive checkAll() at their own cadence; the
     * latest aggregate lands in ServiceSummary::health and the
     * service manifest. The monitor must not outlive the service.
     */
    std::shared_ptr<telemetry::HealthMonitor> healthMonitor();

    /** Audit records of every terminal job, in completion order. */
    std::vector<JobRecord> auditLog() const;

    /** Aggregate accounting (includes live cache stats). */
    ServiceSummary summary() const;

    /**
     * Register (or overwrite) an extra top-level section of the
     * service manifest: summaryJson() emits @p section() under
     * @p key. Used by sidecar subsystems (e.g. the recalibration
     * scheduler) to surface their state in the one manifest the
     * status page renders. The callable must stay valid until
     * removed — a sidecar must removeManifestSection() before it
     * is destroyed.
     */
    void addManifestSection(
        const std::string& key,
        std::function<telemetry::JsonValue()> section);

    /** Remove a section added by addManifestSection (no-op when
     *  absent). */
    void removeManifestSection(const std::string& key);

    /**
     * Service manifest (`invertq.service.manifest/v1`): service
     * configuration, aggregate summary, and the full per-job audit
     * log.
     */
    telemetry::JsonValue summaryJson() const;

    /** Write summaryJson() to @p path; false on I/O failure. */
    bool writeSummary(const std::string& path) const;

  private:
    /** One backend clone per pool worker; immutable once built so
     *  jobs can pin it with a shared_ptr across a replaceMachine. */
    using WorkerSet = std::vector<std::unique_ptr<ShardedBackend>>;

    /** Per-machine execution state. The workers pointer is the
     *  swap point of replaceMachine: readers snapshot it under
     *  mutex_ and keep running on their snapshot. */
    struct MachineRuntime
    {
        std::string name;
        std::shared_ptr<const WorkerSet> workers;
        /** Bumped per replaceMachine; folded into compiled-program
         *  cache keys. */
        std::uint64_t generation = 0;
    };

    /** The worker set + generation a job resolves at submit time. */
    struct MachineSnapshot
    {
        std::shared_ptr<const WorkerSet> workers;
        std::uint64_t generation = 0;
    };

    /** Clone @p prototype once per pool worker (fault-wrapped per
     *  INVERTQ_FAULTS, exactly like ParallelBackend). */
    std::shared_ptr<const WorkerSet>
    cloneWorkers(const ShardedBackend& prototype) const;

    /** Resolve a registered machine's current snapshot or throw. */
    MachineSnapshot machineSnapshot(const std::string& name) const;

    /**
     * Compile @p circuit for @p machine through the shared cache
     * (single-flight across concurrent submissions), keyed by the
     * snapshot's generation. Returns nullptr for backends without
     * a compiled form. Records hit/miss in @p record.
     */
    std::shared_ptr<const ShardedBackend::CompiledRun>
    compileCached(const std::string& machine,
                  const MachineSnapshot& snapshot,
                  const Circuit& circuit, JobRecord& record);

    /** Execute one batch (retries included); never throws. */
    void runBatch(
        const std::shared_ptr<JobState>& state,
        std::shared_ptr<const WorkerSet> workers,
        std::shared_ptr<const ShardedBackend::CompiledRun>
            compiled,
        std::size_t batch_index, std::size_t batch_shots);

    /** Mark one batch finished; finalizes the job on the last. */
    void finishBatch(const std::shared_ptr<JobState>& state);

    /** Close out a terminal job. Caller holds the job mutex. */
    void finalizeLocked(JobState& state);

    /** Audit/accounting after a job turned terminal (no job lock
     *  held). */
    void afterTerminal(const std::shared_ptr<JobState>& state);

    ServiceOptions options_;
    std::uint64_t seed_;
    ArtifactCache cache_;
    JobQueue queue_;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    std::map<std::string, std::unique_ptr<MachineRuntime>>
        machines_;
    std::map<std::string, std::uint64_t> tenantSeq_;
    std::uint64_t nextJobId_ = 1;
    std::uint64_t nextJobSeq_ = 0;
    std::size_t activeJobs_ = 0;
    std::shared_ptr<telemetry::HealthMonitor> health_;
    std::map<std::string,
             std::function<telemetry::JsonValue()>>
        manifestSections_;
    std::atomic<std::uint64_t> dispatchedBatches_{0};

    mutable std::mutex auditMutex_;
    std::vector<JobRecord> auditLog_;
    ServiceSummary totals_;
};

} // namespace qem::svc

#endif // QEM_SERVICE_JOB_SERVICE_HH
