/**
 * @file
 * Job model of the multi-tenant service: what a tenant submits,
 * how it is prioritized and seeded, and the audit record every job
 * leaves behind.
 *
 * Determinism contract (docs/jobservice.md): a job's output Counts
 * is a pure function of (service seed, tenant id, job key, circuit,
 * shots, batch size) — never of submission interleaving, queue
 * depth, thread count, or which jobs ran beside it. The per-job RNG
 * derives via two index-keyed splits (Rng::splitAt) so concurrent
 * submissions in any order reproduce bit-identical per-job results.
 */

#ifndef QEM_SERVICE_JOB_HH
#define QEM_SERVICE_JOB_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qsim/counts.hh"
#include "runtime/resilient_backend.hh"
#include "runtime/runtime_stats.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/json.hh"

namespace qem::svc
{

/** Scheduling classes; lower values dispatch first. */
enum class JobPriority : std::uint8_t
{
    /** Latency-sensitive (canary runs, interactive queries). */
    Interactive = 0,
    /** The default bulk class. */
    Batch = 1,
    /** Yield to everyone (re-profiling, maintenance sweeps). */
    Background = 2,
};

/** Display name ("interactive", "batch", "background"). */
const char* jobPriorityName(JobPriority priority);

/** Lifecycle of one job. */
enum class JobStatus : std::uint8_t
{
    Queued,
    Running,
    /** Terminal: result available (possibly salvaged short). */
    Completed,
    /** Terminal: the job's exception is stored in the handle. */
    Failed,
    /** Terminal: cancelled before completion. */
    Cancelled,
};

/** Display name ("queued", ... "cancelled"). */
const char* jobStatusName(JobStatus status);

/** True for Completed / Failed / Cancelled. */
bool isTerminal(JobStatus status);

/** A submit() on a cancelled/failed/completed job's handle. */
class JobCancelled : public BackendError
{
  public:
    using BackendError::BackendError;
};

/** Per-submission knobs. */
struct JobOptions
{
    /** Who is submitting; scopes the RNG stream and the audit
     *  record. */
    std::string tenant = "default";
    JobPriority priority = JobPriority::Batch;
    /** Shots per scheduled batch; 0 = the service default. */
    std::size_t batchSize = 0;
    /** Retries per batch after a TransientError; -1 (the default
     *  sentinel) = the service default. */
    int maxRetries = -1;
    /** What happens to a batch whose retry budget runs out. */
    SalvageMode salvage = SalvageMode::FailFast;
    /**
     * Index keying this job's RNG substream within its tenant.
     * The default sentinel assigns the tenant's next submission
     * sequence number (deterministic when each tenant submits its
     * jobs in a fixed order). Set it explicitly to make a job's
     * stream independent of how many jobs the tenant submitted
     * before it.
     */
    std::uint64_t jobKey = UINT64_MAX;
    /** Free-form label copied into the audit record. */
    std::string label;
};

/**
 * Audit record of one job: who ran what, under which seed and
 * policy knobs, what it cost, and how it ended. Appended to the
 * service's audit log when the job reaches a terminal status;
 * exported by JobService::summaryJson().
 */
struct JobRecord
{
    std::uint64_t id = 0;
    std::string tenant;
    std::string machine;
    std::string label;
    JobPriority priority = JobPriority::Batch;
    /** Index-key of the job's RNG substream within the tenant. */
    std::uint64_t jobKey = 0;
    std::size_t shotsRequested = 0;
    std::size_t shotsCompleted = 0;
    std::size_t batches = 0;
    /** Total batch re-submissions after transient failures. */
    std::size_t retries = 0;
    std::size_t droppedBatches = 0;
    SalvageMode salvage = SalvageMode::FailFast;
    /** Cache lookups this job made, split hit/miss. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Did the job execute a shared compiled program? */
    bool compiled = false;
    JobStatus status = JobStatus::Queued;
    /** what() of the terminal exception (Failed jobs). */
    std::string error;
    /** Submission-to-terminal wall seconds. */
    double wallSeconds = 0.0;
    /**
     * Submission-to-first-dispatch wall seconds: how long the job
     * sat in the queue before any batch ran. Equals wallSeconds
     * for jobs that never dispatched (cancelled while queued,
     * zero-shot jobs).
     */
    double queueWaitSeconds = 0.0;
    /**
     * First-dispatch-to-terminal wall seconds; 0 when the job
     * never dispatched. Invariant (asserted in test_job_service):
     * queueWaitSeconds + execSeconds == wallSeconds, both >= 0.
     */
    double execSeconds = 0.0;
    /**
     * Flight-recorder dump: the job's lifecycle events, oldest
     * first. Empty unless recording was on (telemetry enabled or
     * ServiceOptions::flightRecorder). flightDropped counts events
     * evicted by the ring bound.
     */
    std::vector<telemetry::FlightEvent> flight;
    std::uint64_t flightDropped = 0;

    telemetry::JsonValue toJson() const;
};

/** Internal shared state behind a JobHandle (service-owned). */
struct JobState;

/**
 * The submitter's view of one async job. Cheap to copy (shared
 * state); safe to wait on from any thread. A default-constructed
 * handle is empty (valid() == false).
 */
class JobHandle
{
  public:
    JobHandle() = default;

    bool valid() const { return state_ != nullptr; }

    /** Service-assigned id (stable across the job's lifetime). */
    std::uint64_t id() const;

    /** Current lifecycle status (racy by nature; terminal statuses
     *  are stable once observed). */
    JobStatus status() const;

    /** Block until the job reaches a terminal status. */
    void wait() const;

    /**
     * Block for the result histogram. Throws the job's failure
     * (BudgetExhausted, FatalError, ...) for Failed jobs and
     * JobCancelled for cancelled ones. Callable repeatedly.
     */
    const Counts& get() const;

    /**
     * The job's audit record; blocks until terminal so the record
     * is final.
     */
    const JobRecord& record() const;

  private:
    friend class JobService;
    explicit JobHandle(std::shared_ptr<JobState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<JobState> state_;
};

} // namespace qem::svc

#endif // QEM_SERVICE_JOB_HH
