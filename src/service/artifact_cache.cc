#include "service/artifact_cache.hh"

#include <sstream>

#include "service/fingerprint.hh"
#include "telemetry/telemetry.hh"

namespace qem::svc
{

const char*
artifactKindName(ArtifactKind kind)
{
    switch (kind) {
    case ArtifactKind::CompiledProgram:
        return "compiled";
    case ArtifactKind::RbmsProfile:
        return "rbms";
    case ArtifactKind::ConfusionCdf:
        return "confusion_cdf";
    case ArtifactKind::TwirlStrings:
        return "twirl_strings";
    }
    return "unknown";
}

std::uint64_t
ArtifactKey::hash() const
{
    std::uint64_t h = kFnvBasis;
    h = fnvWord(h, static_cast<std::uint64_t>(kind));
    h = fnvWord(h, subject);
    h = fnvString(h, machine);
    h = fnvWord(h, options);
    return h;
}

std::string
ArtifactKey::toString() const
{
    std::ostringstream out;
    out << artifactKindName(kind) << '/' << machine << '/'
        << std::hex << subject << '/' << options;
    return out.str();
}

ArtifactCache::ArtifactCache() : ArtifactCache(Options()) {}

ArtifactCache::ArtifactCache(Options options) : options_(options)
{
    if (options_.shards == 0)
        options_.shards = 1;
    shards_.reserve(options_.shards);
    for (unsigned i = 0; i < options_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

void
ArtifactCache::countTelemetry(const char* which, std::uint64_t n)
{
    telemetry::count(std::string("service.cache.") + which, n);
}

void
ArtifactCache::evictOver(Shard& shard, std::size_t shard_budget)
{
    while (shard.bytesUsed > shard_budget && !shard.lru.empty()) {
        const ArtifactKey victim = shard.lru.back();
        auto it = shard.entries.find(victim);
        // LRU holds ready entries only, so the lookup always lands.
        shard.bytesUsed -= it->second.bytes;
        shard.lru.pop_back();
        shard.entries.erase(it);
        shard.evictions += 1;
        countTelemetry("evictions");
    }
}

std::shared_ptr<const void>
ArtifactCache::getOrComputeErased(
    const ArtifactKey& key,
    const std::function<
        std::pair<std::shared_ptr<const void>, std::size_t>()>&
        compute,
    bool* hit)
{
    Shard& shard =
        *shards_[key.hash() % shards_.size()];
    if (hit)
        *hit = false;

    {
        std::unique_lock<std::mutex> lock(shard.mutex);
        for (;;) {
            auto it = shard.entries.find(key);
            if (it == shard.entries.end())
                break; // This caller computes.
            Entry& entry = it->second;
            if (entry.ready) {
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 entry.lruPos);
                entry.lruPos = shard.lru.begin();
                shard.hits += 1;
                countTelemetry("hits");
                if (hit)
                    *hit = true;
                return entry.value;
            }
            // Someone else is building this artifact: wait for the
            // slot to become ready (or to be withdrawn after a
            // failed computation, in which case we take over).
            shard.singleFlightWaits += 1;
            countTelemetry("single_flight_waits");
            shard.readyCv.wait(lock, [&] {
                auto now = shard.entries.find(key);
                return now == shard.entries.end() ||
                       now->second.ready;
            });
        }
        // Claim the key with a pending slot, then compute outside
        // the lock so the shard stays responsive.
        Entry pending;
        pending.ready = false;
        shard.entries.emplace(key, std::move(pending));
        shard.misses += 1;
        countTelemetry("misses");
    }

    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    try {
        auto [v, b] = compute();
        value = std::move(v);
        bytes = b;
    } catch (...) {
        // Withdraw the pending slot so a waiter can retry.
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.entries.erase(key);
        }
        shard.readyCv.notify_all();
        throw;
    }

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(key);
        // clear() may have dropped the pending slot; reinsert.
        if (it == shard.entries.end())
            it = shard.entries.emplace(key, Entry{}).first;
        Entry& entry = it->second;
        if (entry.invalidated) {
            // invalidate() raced this computation: hand the value
            // to the caller that started before the invalidation,
            // but never let it become resident — waiters wake on
            // the erased slot and recompute fresh.
            shard.entries.erase(it);
        } else {
            entry.value = value;
            entry.bytes = bytes;
            entry.ready = true;
            shard.lru.push_front(key);
            entry.lruPos = shard.lru.begin();
            shard.bytesUsed += bytes;
            // Per-shard budget: the total divides evenly; a 0
            // budget keeps nothing resident (the entry is evicted
            // right here, after being handed to the caller).
            evictOver(shard, options_.maxBytes / shards_.size());
        }
    }
    shard.readyCv.notify_all();
    if (telemetry::enabled()) {
        telemetry::gaugeSet("service.cache.bytes",
                            static_cast<double>(stats().bytesUsed));
    }
    return value;
}

bool
ArtifactCache::invalidate(const ArtifactKey& key)
{
    Shard& shard = *shards_[key.hash() % shards_.size()];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(key);
        if (it == shard.entries.end())
            return false;
        Entry& entry = it->second;
        if (entry.ready) {
            shard.bytesUsed -= entry.bytes;
            shard.lru.erase(entry.lruPos);
            shard.entries.erase(it);
        } else if (entry.invalidated) {
            // Already marked by an earlier invalidate; count once.
            return false;
        } else {
            entry.invalidated = true;
        }
        shard.invalidations += 1;
    }
    countTelemetry("invalidations");
    if (telemetry::enabled()) {
        telemetry::gaugeSet("service.cache.bytes",
                            static_cast<double>(stats().bytesUsed));
    }
    return true;
}

CacheStats
ArtifactCache::stats() const
{
    CacheStats total;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
        total.invalidations += shard->invalidations;
        total.singleFlightWaits += shard->singleFlightWaits;
        total.bytesUsed += shard->bytesUsed;
        total.entries += shard->lru.size();
    }
    return total;
}

void
ArtifactCache::clear()
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        // Keep pending slots (their computations are in flight and
        // will reinsert on completion); drop everything ready.
        for (const ArtifactKey& key : shard->lru)
            shard->entries.erase(key);
        shard->lru.clear();
        shard->bytesUsed = 0;
    }
}

} // namespace qem::svc
