/**
 * @file
 * Bounded, priority-ordered work queue of the job service.
 *
 * The queue holds *batches* (the unit of parallel work), not jobs:
 * every admitted job contributes one item per shot batch, so a
 * 10^6-shot Background job cannot starve a 256-shot Interactive
 * canary — the scheduler drains strictly by (priority class,
 * admission order, batch index), which round-robins concurrent
 * same-class jobs at batch granularity.
 *
 * Admission control is all-or-nothing: a job's batches are admitted
 * together or not at all (a partially admitted job could never
 * finish), and a full queue rejects the submission — the service
 * surfaces that as BudgetExhausted, the taxonomy's "the runtime
 * gave up" error (docs/resilience.md).
 *
 * Thread-safe; pop order is deterministic given queue content, but
 * *which* worker pops an item is not — job determinism therefore
 * never rests on scheduling (see docs/jobservice.md).
 */

#ifndef QEM_SERVICE_JOB_QUEUE_HH
#define QEM_SERVICE_JOB_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "service/job.hh"

namespace qem::svc
{

/** One schedulable unit: a closure tagged with its dispatch rank. */
struct WorkItem
{
    JobPriority priority = JobPriority::Batch;
    /** Admission sequence of the owning job (FIFO within class). */
    std::uint64_t jobSeq = 0;
    /** Batch index within the job (ordered dispatch per job). */
    std::size_t batchIndex = 0;
    /** Executes the batch (never throws; failures land in the
     *  job's state). */
    std::function<void()> work;
};

class JobQueue
{
  public:
    /** @param capacity Maximum queued items (batches). */
    explicit JobQueue(std::size_t capacity);

    std::size_t capacity() const { return capacity_; }

    /** Items currently queued. */
    std::size_t size() const;

    /**
     * Admit every item of one job, or none: returns false (and
     * enqueues nothing) when @p items would overflow the capacity.
     */
    bool tryPushAll(std::vector<WorkItem> items);

    /**
     * Remove and return the highest-ranked item (lowest
     * (priority, jobSeq, batchIndex) triple), or nullopt when
     * empty.
     */
    std::optional<WorkItem> tryPop();

  private:
    using Rank =
        std::tuple<std::uint8_t, std::uint64_t, std::size_t>;

    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::map<Rank, WorkItem> items_;
};

} // namespace qem::svc

#endif // QEM_SERVICE_JOB_QUEUE_HH
