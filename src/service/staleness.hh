/**
 * @file
 * RBMS staleness detection: is the cached readout-confusion model
 * still what the live machine produces?
 *
 * The paper's AIM inverts onto the machine's strong states using a
 * profile measured ahead of time (RBMS); §6 argues the bias is
 * repeatable, but calibration drifts between profiling and use
 * (ROADMAP item 3). This probe replays a small holdout shot budget
 * — a few basis states prepared and measured on the *live* machine
 * — and compares those fresh samples against samples drawn from
 * the *cached* ConfusionCdf with the verification subsystem's
 * two-sample G-test. Both sides are seeded and sampled, so per
 * docs/verification.md a red result is a reproducible distribution
 * change, not shot noise; alpha is budgeted across the probed
 * states (Bonferroni) so the probe's total false-positive rate per
 * check is the configured alpha.
 *
 * Plugged into a telemetry::HealthMonitor the probe publishes the
 * `health.rbms_stale` gauge (0 healthy / 2 unhealthy) — the signal
 * a re-profiling scheduler keys on.
 */

#ifndef QEM_SERVICE_STALENESS_HH
#define QEM_SERVICE_STALENESS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "machine/calibration.hh"
#include "qsim/counts.hh"
#include "qsim/rng.hh"
#include "qsim/simulator.hh"
#include "service/artifacts.hh"
#include "telemetry/health.hh"
#include "verify/statistics.hh"

namespace qem::svc
{

/**
 * Source of fresh holdout samples: measured outcomes of @p shots
 * preparations of basis state @p truth on the live machine,
 * deterministic in @p rng.
 */
using HoldoutSampler =
    std::function<Counts(BasisState truth, std::size_t shots,
                         Rng& rng)>;

/**
 * Holdout sampler that replays readout only: observed outcomes are
 * drawn from a ConfusionCdf built on the machine's *current*
 * calibration. This is the standard test double — state
 * preparation is exact, so any detected difference is purely
 * readout drift (no gate-noise contamination inflating the test).
 */
HoldoutSampler holdoutFromCalibration(
    const Calibration& cal, const std::vector<Qubit>& qubits);

/**
 * Holdout sampler that runs real prep circuits (X gates on the set
 * bits, then measure) on @p backend — the full replay a hardware
 * deployment would use. Gate noise contaminates the comparison
 * slightly; budget a few extra retries or a smaller alpha when the
 * prep circuits are not effectively noiseless.
 */
HoldoutSampler holdoutFromBackend(
    std::shared_ptr<const ShardedBackend> backend,
    std::vector<Qubit> qubits);

/**
 * The holdout preparation circuit: X gates on the set bits of
 * @p truth over the register @p qubits (clbit order), then measure.
 * Shared by every holdout sampler and by the recalibration
 * scheduler's re-profiling jobs, so probe and profile always run
 * the exact same circuits.
 */
Circuit holdoutPrepCircuit(unsigned machine_qubits,
                           const std::vector<Qubit>& qubits,
                           BasisState truth);

/**
 * Reject probe states with bits above @p num_bits with
 * std::invalid_argument (such states would index past the cached
 * CDF rows). A no-op for num_bits >= 64: every BasisState fits.
 */
void validateProbeStates(unsigned num_bits,
                         const std::vector<BasisState>& states);

/**
 * The default probed states — all-zeros and all-ones over
 * @p num_bits (the paper's two state-dependent drift directions),
 * with the 64-bit shift guard on the all-ones mask.
 */
std::vector<BasisState> defaultProbeStates(unsigned num_bits);

struct StalenessOptions
{
    /** Holdout budget per probed state per check. */
    std::size_t shotsPerState = 4096;
    /**
     * Total false-positive probability per check() — split evenly
     * across the probed states. 1e-6 follows the repo-wide seeded
     * alpha-budget convention (docs/verification.md).
     */
    double alpha = 1e-6;
    /** Root of the probe's deterministic sample streams. Check i
     *  uses splitAt(i), so repeated checks draw fresh samples. */
    std::uint64_t seed = 2019;
    /**
     * Basis states to replay; empty = all-zeros and all-ones
     * (all-zeros is most sensitive to P(0->1) drift, all-ones to
     * P(1->0) — the paper's state-dependent directions).
     */
    std::vector<BasisState> states;
};

class RbmsStalenessProbe : public telemetry::HealthProbe
{
  public:
    /**
     * @param cached The confusion model the service is serving
     *        (what AIM inverts with).
     * @param live Fresh-sample source for the current machine.
     * @throws std::invalid_argument when any configured probe
     *         state is wider than the cached model's register.
     */
    RbmsStalenessProbe(
        std::shared_ptr<const ConfusionCdf> cached,
        HoldoutSampler live, StalenessOptions options = {});

    std::string name() const override { return "rbms_stale"; }

    /**
     * Replay the holdout and test; Unhealthy when any probed
     * state's two-sample test rejects at alpha / numStates.
     *
     * Exception safety: a throwing sampler (transient backend
     * failure) rolls the consumed epoch back, so a serial retry
     * replays the exact splitAt(epoch) stream that failed instead
     * of burning it. Under concurrent checks an epoch interleaved
     * with a failure may be skipped, but is never reused.
     */
    telemetry::ProbeResult check() override;

    /** Checks run so far (each consumes a fresh seed split). */
    std::uint64_t checksRun() const;

    /** Worst (lowest-p) test of the most recent check. */
    verify::GofResult lastWorst() const;

  private:
    std::shared_ptr<const ConfusionCdf> cached_;
    HoldoutSampler live_;
    StalenessOptions options_;

    mutable std::mutex mutex_;
    std::uint64_t checks_ = 0;
    verify::GofResult lastWorst_;
};

} // namespace qem::svc

#endif // QEM_SERVICE_STALENESS_HH
