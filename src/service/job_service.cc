#include "service/job_service.hh"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runtime/fault_injection.hh"
#include "runtime/shot_plan.hh"
#include "service/artifacts.hh"
#include "service/fingerprint.hh"
#include "service/job_state.hh"
#include "telemetry/manifest.hh"
#include "telemetry/telemetry.hh"

namespace qem::svc
{

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/**
 * Rough resident-size estimate of a compiled program: the dominant
 * term is the retained pre-measurement state vector (16 bytes per
 * amplitude), plus a small per-op overhead. An estimate is enough —
 * the cache budget bounds memory order-of-magnitude, it is not an
 * allocator.
 */
std::size_t
compiledBytesEstimate(const Circuit& circuit)
{
    const unsigned bits =
        circuit.numQubits() < 30u ? circuit.numQubits() : 30u;
    return (std::size_t{16} << bits) +
           circuit.ops().size() * 64 + 1024;
}

} // namespace

JobService::JobService(ServiceOptions options, std::uint64_t seed)
    : options_(options), seed_(seed), cache_(options.cache),
      queue_(options.maxQueuedBatches)
{
    unsigned threads = options_.numThreads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    pool_ = std::make_unique<ThreadPool>(threads);
}

JobService::~JobService()
{
    drain();
    // Pool destruction drains the (now no-op) remaining tickets.
    pool_.reset();
}

std::shared_ptr<const JobService::WorkerSet>
JobService::cloneWorkers(const ShardedBackend& prototype) const
{
    const std::optional<FaultOptions> faults =
        FaultOptions::fromEnv();
    auto workers = std::make_shared<WorkerSet>();
    workers->reserve(pool_->size());
    for (std::size_t i = 0; i < pool_->size(); ++i) {
        std::unique_ptr<ShardedBackend> worker =
            prototype.clone();
        if (faults)
            worker = std::make_unique<FaultInjectingBackend>(
                std::move(worker), *faults);
        workers->push_back(std::move(worker));
    }
    return workers;
}

bool
JobService::registerMachine(const std::string& name,
                            const ShardedBackend& prototype)
{
    // Clone outside the lock: prototypes can be heavy.
    auto workers = cloneWorkers(prototype);
    auto runtime = std::make_unique<MachineRuntime>();
    runtime->name = name;
    runtime->workers = std::move(workers);

    std::lock_guard<std::mutex> lock(mutex_);
    return machines_.emplace(name, std::move(runtime)).second;
}

bool
JobService::replaceMachine(const std::string& name,
                           const ShardedBackend& prototype)
{
    // Clone outside the lock; the swap itself is one pointer
    // assignment plus the generation bump under mutex_.
    auto workers = cloneWorkers(prototype);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = machines_.find(name);
        if (it == machines_.end())
            return false;
        it->second->workers = std::move(workers);
        ++it->second->generation;
    }
    telemetry::count("service.machine_swaps");
    return true;
}

bool
JobService::hasMachine(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return machines_.count(name) != 0;
}

std::uint64_t
JobService::machineGeneration(const std::string& name) const
{
    return machineSnapshot(name).generation;
}

JobService::MachineSnapshot
JobService::machineSnapshot(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = machines_.find(name);
    if (it == machines_.end())
        throw std::invalid_argument(
            "JobService: machine \"" + name +
            "\" is not registered");
    return {it->second->workers, it->second->generation};
}

Rng
JobService::jobStream(std::uint64_t service_seed,
                      const std::string& tenant,
                      std::uint64_t job_key)
{
    return Rng(service_seed)
        .splitAt(fingerprintString(tenant))
        .splitAt(job_key);
}

std::shared_ptr<const ShardedBackend::CompiledRun>
JobService::compileCached(const std::string& machine,
                          const MachineSnapshot& snapshot,
                          const Circuit& circuit,
                          JobRecord& record)
{
    // Generation-keyed: after a replaceMachine the key misses
    // cleanly and the new backend compiles fresh; the previous
    // generation's entry ages out of the LRU.
    const ArtifactKey key = compiledProgramKey(
        machine, circuit, snapshot.generation);

    bool hit = false;
    auto compiled = cache_.getOrCompute<
        ShardedBackend::CompiledRun>(
        key,
        [&]() -> ArtifactCache::Costed<
                  ShardedBackend::CompiledRun> {
            auto program = snapshot.workers->front()->compile(
                circuit);
            if (program)
                telemetry::count("runtime.compiled_jobs");
            // Backends without a compiled form cache the nullptr
            // (cheaply), so repeat submissions skip the probe too.
            const std::size_t bytes =
                program ? compiledBytesEstimate(circuit) : 64;
            return {std::move(program), bytes};
        },
        &hit);
    if (hit)
        ++record.cacheHits;
    else
        ++record.cacheMisses;
    record.compiled = compiled != nullptr;
    return compiled;
}

JobHandle
JobService::submit(const std::string& machine,
                   const Circuit& circuit, std::size_t shots,
                   JobOptions options)
{
    // Pin the machine's worker set for this job's whole lifetime:
    // a replaceMachine issued after this line never affects the
    // batches below (they run on the snapshot), only later
    // submissions.
    const MachineSnapshot snapshot = machineSnapshot(machine);

    const std::size_t batchSize = options.batchSize != 0
                                      ? options.batchSize
                                      : options_.defaultBatchSize;
    if (batchSize == 0)
        throw std::invalid_argument(
            "JobService: batch size must be nonzero");
    const unsigned maxRetries =
        options.maxRetries < 0
            ? options_.defaultMaxRetries
            : static_cast<unsigned>(options.maxRetries);

    const ShotPlan plan(shots, batchSize);

    // Advisory early reject: shed load before paying for a
    // compile. tryPushAll below is the authoritative check.
    if (queue_.size() + plan.numBatches() >
        queue_.capacity()) {
        telemetry::count("service.rejected_jobs");
        {
            std::lock_guard<std::mutex> lock(auditMutex_);
            ++totals_.rejected;
        }
        throw BudgetExhausted(
            "JobService: queue full (" +
            std::to_string(plan.numBatches()) +
            " batches over capacity " +
            std::to_string(queue_.capacity()) + ")");
    }

    auto state = std::make_shared<JobState>();
    state->circuit = circuit;
    state->maxRetries = maxRetries;
    state->salvage = options.salvage;
    state->submitSeconds = nowSeconds();
    if (options_.flightRecorder || telemetry::enabled()) {
        // Timestamps are seconds since this job's submission, so
        // dumps read the same regardless of process uptime.
        const double submitted = state->submitSeconds;
        state->flight =
            std::make_shared<telemetry::FlightRecorder>(
                options_.flightCapacity, [submitted] {
                    return nowSeconds() - submitted;
                });
        state->flight->record(
            telemetry::FlightEventKind::Enqueue, -1,
            plan.numBatches(), machine);
    }

    JobRecord& record = state->record;
    record.tenant = options.tenant;
    record.machine = machine;
    record.label = options.label;
    record.priority = options.priority;
    record.salvage = options.salvage;
    record.shotsRequested = shots;
    record.batches = plan.numBatches();

    std::uint64_t jobSeq = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        record.id = nextJobId_++;
        jobSeq = nextJobSeq_++;
        // An auto-keyed job consumes its tenant's next sequence
        // number here — even if admission rejects it below —
        // because rolling back under concurrent submitters would
        // reorder streams. Use explicit jobKeys for streams that
        // must not depend on prior submissions.
        record.jobKey = options.jobKey != UINT64_MAX
                            ? options.jobKey
                            : tenantSeq_[options.tenant]++;
        ++activeJobs_;
    }

    state->jobRng =
        jobStream(seed_, options.tenant, record.jobKey);

    const std::uint64_t hitsBefore = record.cacheHits;
    auto compiled =
        compileCached(machine, snapshot, circuit, record);
    if (state->flight)
        state->flight->record(
            record.cacheHits > hitsBefore
                ? telemetry::FlightEventKind::CacheHit
                : telemetry::FlightEventKind::Compile,
            -1, 0, machine);

    state->partial.assign(plan.numBatches(),
                          Counts(circuit.numClbits()));
    state->remaining = plan.numBatches();

    std::vector<WorkItem> items;
    items.reserve(plan.numBatches());
    for (const ShotBatch& batch : plan.batches()) {
        WorkItem item;
        item.priority = options.priority;
        item.jobSeq = jobSeq;
        item.batchIndex = batch.index;
        item.work = [this, state, workers = snapshot.workers,
                     compiled, index = batch.index,
                     shotsInBatch = batch.shots] {
            runBatch(state, workers, compiled, index,
                     shotsInBatch);
        };
        items.push_back(std::move(item));
    }

    if (!items.empty() && !queue_.tryPushAll(std::move(items))) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeJobs_;
        }
        idleCv_.notify_all();
        telemetry::count("service.rejected_jobs");
        {
            std::lock_guard<std::mutex> lock(auditMutex_);
            ++totals_.rejected;
        }
        throw BudgetExhausted(
            "JobService: queue full (" +
            std::to_string(plan.numBatches()) +
            " batches over capacity " +
            std::to_string(queue_.capacity()) + ")");
    }

    telemetry::count("service.submitted_jobs");
    if (state->flight)
        state->flight->record(telemetry::FlightEventKind::Admit,
                              -1, plan.numBatches());
    {
        std::lock_guard<std::mutex> lock(auditMutex_);
        ++totals_.submitted;
    }

    if (plan.numBatches() == 0) {
        // Zero-shot job: terminal immediately, empty histogram.
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            finalizeLocked(*state);
        }
        afterTerminal(state);
        return JobHandle(state);
    }

    // One interchangeable ticket per admitted batch: each pops the
    // globally best-ranked item, so priority order holds even
    // though the pool itself is FIFO.
    for (std::size_t i = 0; i < plan.numBatches(); ++i) {
        pool_->submit([this] {
            if (auto item = queue_.tryPop())
                item->work();
        });
    }
    return JobHandle(state);
}

void
JobService::runBatch(
    const std::shared_ptr<JobState>& state,
    std::shared_ptr<const WorkerSet> workers,
    std::shared_ptr<const ShardedBackend::CompiledRun> compiled,
    std::size_t batch_index, std::size_t batch_shots)
{
    dispatchedBatches_.fetch_add(1, std::memory_order_relaxed);
    bool skip = false;
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->cancelled || state->failure) {
            skip = true;
        } else {
            if (state->record.status == JobStatus::Queued)
                state->record.status = JobStatus::Running;
            if (state->firstDispatchSeconds == 0.0)
                state->firstDispatchSeconds = nowSeconds();
        }
    }
    if (skip) {
        if (state->flight)
            state->flight->record(
                telemetry::FlightEventKind::Skip,
                static_cast<std::int64_t>(batch_index));
        // Skipped batch: still counts as finished so the job
        // reaches a terminal status.
        finishBatch(state);
        return;
    }
    if (state->flight)
        state->flight->record(
            telemetry::FlightEventKind::Dispatch,
            static_cast<std::int64_t>(batch_index), batch_shots);

    const int workerIdx = ThreadPool::workerIndex();
    const std::size_t worker =
        workerIdx >= 0 ? static_cast<std::size_t>(workerIdx) %
                             workers->size()
                       : 0;
    // Keyed far above any real batch index so backoff draws can
    // never collide with a batch substream.
    Rng backoffRng =
        state->jobRng.splitAt(UINT64_MAX - batch_index);
    unsigned attempts = 0;
    for (;;) {
        try {
            // Re-derived fresh each attempt: a failed attempt may
            // have consumed part of the stream.
            Rng rng =
                ShotPlan::substream(state->jobRng, batch_index);
            Counts counts =
                compiled
                    ? compiled->run(batch_shots, rng)
                    : (*workers)[worker]->run(
                          state->circuit, batch_shots, rng);
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->partial[batch_index] = std::move(counts);
                state->record.retries += attempts;
            }
            finishBatch(state);
            return;
        } catch (const std::exception& e) {
            const bool transient = isTransient(e);
            if (transient && attempts < state->maxRetries) {
                const double delay =
                    options_.backoff.delaySeconds(attempts,
                                                  backoffRng);
                ++attempts;
                telemetry::count("service.retries");
                if (state->flight) {
                    state->flight->record(
                        telemetry::FlightEventKind::Retry,
                        static_cast<std::int64_t>(batch_index),
                        attempts, e.what());
                    state->flight->record(
                        telemetry::FlightEventKind::Backoff,
                        static_cast<std::int64_t>(batch_index),
                        static_cast<std::uint64_t>(delay * 1e6));
                }
                backoffSleep(delay);
                continue;
            }
            if (transient &&
                state->salvage == SalvageMode::DropBatches) {
                telemetry::count("service.dropped_batches");
                if (state->flight)
                    state->flight->record(
                        telemetry::FlightEventKind::Salvage,
                        static_cast<std::int64_t>(batch_index),
                        attempts, e.what());
                std::lock_guard<std::mutex> lock(state->mutex);
                state->record.retries += attempts;
                ++state->record.droppedBatches;
            } else {
                if (state->flight)
                    state->flight->record(
                        telemetry::FlightEventKind::Fail,
                        static_cast<std::int64_t>(batch_index),
                        attempts, e.what());
                std::lock_guard<std::mutex> lock(state->mutex);
                state->record.retries += attempts;
                if (!state->failure) {
                    if (transient)
                        state->failure = std::make_exception_ptr(
                            BudgetExhausted(
                                "JobService: batch " +
                                std::to_string(batch_index) +
                                " of job " +
                                std::to_string(
                                    state->record.id) +
                                " exhausted " +
                                std::to_string(
                                    state->maxRetries) +
                                " retries: " + e.what()));
                    else
                        state->failure =
                            std::current_exception();
                }
            }
            finishBatch(state);
            return;
        } catch (...) {
            if (state->flight)
                state->flight->record(
                    telemetry::FlightEventKind::Fail,
                    static_cast<std::int64_t>(batch_index),
                    attempts, "unknown exception");
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->record.retries += attempts;
                if (!state->failure)
                    state->failure = std::current_exception();
            }
            finishBatch(state);
            return;
        }
    }
}

void
JobService::finishBatch(const std::shared_ptr<JobState>& state)
{
    bool terminal = false;
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->remaining;
        if (state->remaining == 0) {
            finalizeLocked(*state);
            terminal = true;
        }
    }
    if (terminal)
        afterTerminal(state);
}

void
JobService::finalizeLocked(JobState& state)
{
    JobRecord& record = state.record;
    if (state.failure) {
        record.status = JobStatus::Failed;
        try {
            std::rethrow_exception(state.failure);
        } catch (const std::exception& e) {
            record.error = e.what();
        } catch (...) {
            record.error = "unknown exception";
        }
    } else if (state.cancelled) {
        record.status = JobStatus::Cancelled;
    } else {
        record.status = JobStatus::Completed;
        Counts merged(state.circuit.numClbits());
        for (const Counts& part : state.partial)
            merged.merge(part);
        state.result = std::move(merged);
        record.shotsCompleted = state.result.total();
    }
    record.wallSeconds = nowSeconds() - state.submitSeconds;
    // Queue-wait vs execute split: the audit record reports how
    // long the job waited for its first batch to dispatch and how
    // long it then took to finish. Clamped so the invariant
    // queueWait + exec == wall, both >= 0, holds exactly.
    if (state.firstDispatchSeconds > 0.0) {
        double wait =
            state.firstDispatchSeconds - state.submitSeconds;
        if (wait < 0.0)
            wait = 0.0;
        if (wait > record.wallSeconds)
            wait = record.wallSeconds;
        record.queueWaitSeconds = wait;
        record.execSeconds = record.wallSeconds - wait;
    } else {
        // Never dispatched (cancelled in queue, zero batches):
        // the whole lifetime was queue wait.
        record.queueWaitSeconds = record.wallSeconds;
        record.execSeconds = 0.0;
    }
    if (state.flight) {
        switch (record.status) {
        case JobStatus::Completed:
            state.flight->record(
                telemetry::FlightEventKind::Merge, -1,
                record.shotsCompleted);
            break;
        case JobStatus::Cancelled:
            state.flight->record(
                telemetry::FlightEventKind::Cancel);
            break;
        case JobStatus::Failed:
            state.flight->record(
                telemetry::FlightEventKind::Fail, -1, 0,
                record.error);
            break;
        default:
            break;
        }
    }
    // No notify here: waiters are released by afterTerminal once
    // the job is recorded in the audit log and service totals.
}

void
JobService::afterTerminal(const std::shared_ptr<JobState>& state)
{
    JobRecord record;
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->flight) {
            // The audit marker is the recorder's final event; the
            // dump then freezes into the record every consumer
            // (handle, audit log, manifest) sees.
            state->flight->record(
                telemetry::FlightEventKind::Audit);
            state->record.flight = state->flight->events();
            state->record.flightDropped =
                state->flight->droppedCount();
        }
        record = state->record;
    }
    if (record.status == JobStatus::Failed &&
        !record.flight.empty())
        telemetry::count("service.flight_dumps");
    {
        std::lock_guard<std::mutex> lock(auditMutex_);
        auditLog_.push_back(record);
        switch (record.status) {
        case JobStatus::Completed:
            ++totals_.completed;
            break;
        case JobStatus::Failed:
            ++totals_.failed;
            break;
        case JobStatus::Cancelled:
            ++totals_.cancelled;
            break;
        default:
            break;
        }
        totals_.shotsCompleted += record.shotsCompleted;
        totals_.retries += record.retries;
        totals_.droppedBatches += record.droppedBatches;
    }
    if (telemetry::enabled()) {
        switch (record.status) {
        case JobStatus::Completed:
            telemetry::count("service.completed_jobs");
            break;
        case JobStatus::Failed:
            telemetry::count("service.failed_jobs");
            break;
        case JobStatus::Cancelled:
            telemetry::count("service.cancelled_jobs");
            break;
        default:
            break;
        }
        telemetry::count("service.shots",
                         record.shotsCompleted);
        telemetry::observe("service.job_seconds",
                           record.wallSeconds);
    }
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->audited = true;
    }
    state->terminalCv.notify_all();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --activeJobs_;
    }
    idleCv_.notify_all();
}

bool
JobService::cancel(const JobHandle& handle)
{
    if (!handle.valid())
        return false;
    JobState& state = *handle.state_;
    std::lock_guard<std::mutex> lock(state.mutex);
    if (isTerminal(state.record.status))
        return false;
    state.cancelled = true;
    return true;
}

void
JobService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return activeJobs_ == 0; });
}

std::shared_ptr<telemetry::HealthMonitor>
JobService::healthMonitor()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (health_)
        return health_;
    health_ = std::make_shared<telemetry::HealthMonitor>();

    // Queue saturation: how close admission control is to
    // rejecting. Sustained high utilization means tenants are
    // about to see BudgetExhausted.
    health_->addProbe(std::make_shared<telemetry::FunctionProbe>(
        "queue_saturation", [this] {
            telemetry::ProbeResult result;
            const std::size_t depth = queue_.size();
            const std::size_t cap = queue_.capacity();
            result.value =
                cap > 0 ? static_cast<double>(depth) /
                              static_cast<double>(cap)
                        : 0.0;
            result.status = telemetry::statusFromUtilization(
                result.value, 0.75, 0.95);
            result.message = std::to_string(depth) + "/" +
                             std::to_string(cap) +
                             " batches queued";
            return result;
        }));

    // Worker starvation: work is queued but no batch has been
    // popped since the previous check — the pool is wedged (or
    // every worker is stuck in one pathological batch). One
    // stagnant interval degrades; two in a row go unhealthy.
    struct StarvationState
    {
        std::uint64_t lastDispatched = 0;
        int stagnantChecks = 0;
    };
    auto starvation = std::make_shared<StarvationState>();
    health_->addProbe(std::make_shared<telemetry::FunctionProbe>(
        "worker_starvation", [this, starvation] {
            telemetry::ProbeResult result;
            const std::size_t depth = queue_.size();
            const std::uint64_t dispatched =
                dispatchedBatches();
            if (depth > 0 &&
                dispatched == starvation->lastDispatched) {
                ++starvation->stagnantChecks;
                result.status =
                    starvation->stagnantChecks >= 2
                        ? telemetry::HealthStatus::Unhealthy
                        : telemetry::HealthStatus::Degraded;
                result.message =
                    std::to_string(depth) +
                    " batches queued with no dispatch progress "
                    "across " +
                    std::to_string(starvation->stagnantChecks) +
                    " check(s)";
            } else {
                starvation->stagnantChecks = 0;
            }
            starvation->lastDispatched = dispatched;
            result.value = static_cast<double>(depth);
            return result;
        }));

    // Cache thrash: evictions per lookup since the last check.
    // A hot cache evicting on most lookups is churning artifacts
    // faster than tenants reuse them — the budget is too small
    // for the working set.
    struct ThrashState
    {
        std::uint64_t lastEvictions = 0;
        std::uint64_t lastLookups = 0;
    };
    auto thrash = std::make_shared<ThrashState>();
    health_->addProbe(std::make_shared<telemetry::FunctionProbe>(
        "cache_thrash", [this, thrash] {
            telemetry::ProbeResult result;
            const CacheStats stats = cache_.stats();
            const std::uint64_t lookups =
                stats.hits + stats.misses;
            const std::uint64_t lookupDelta =
                lookups - thrash->lastLookups;
            const std::uint64_t evictionDelta =
                stats.evictions - thrash->lastEvictions;
            thrash->lastLookups = lookups;
            thrash->lastEvictions = stats.evictions;
            result.value =
                lookupDelta > 0
                    ? static_cast<double>(evictionDelta) /
                          static_cast<double>(lookupDelta)
                    : 0.0;
            result.status = telemetry::statusFromUtilization(
                result.value, 0.25, 0.75);
            result.message =
                std::to_string(evictionDelta) +
                " evictions over " +
                std::to_string(lookupDelta) + " lookups";
            return result;
        }));

    return health_;
}

void
JobService::addManifestSection(
    const std::string& key,
    std::function<telemetry::JsonValue()> section)
{
    std::lock_guard<std::mutex> lock(mutex_);
    manifestSections_[key] = std::move(section);
}

void
JobService::removeManifestSection(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    manifestSections_.erase(key);
}

std::vector<JobRecord>
JobService::auditLog() const
{
    std::lock_guard<std::mutex> lock(auditMutex_);
    return auditLog_;
}

ServiceSummary
JobService::summary() const
{
    ServiceSummary result;
    {
        std::lock_guard<std::mutex> lock(auditMutex_);
        result = totals_;
    }
    result.cache = cache_.stats();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (health_)
            result.health = health_->status();
    }
    return result;
}

telemetry::JsonValue
JobService::summaryJson() const
{
    const ServiceSummary totals = summary();
    const std::vector<JobRecord> jobs = auditLog();

    telemetry::JsonValue doc = telemetry::JsonValue::object();
    doc["schema"] =
        telemetry::JsonValue("invertq.service.manifest/v1");

    telemetry::JsonValue service =
        telemetry::JsonValue::object();
    service["seed"] = telemetry::JsonValue(seed_);
    service["num_threads"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(pool_->size()));
    service["queue_capacity"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(queue_.capacity()));
    service["default_batch_size"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(options_.defaultBatchSize));
    service["default_max_retries"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(options_.defaultMaxRetries));
    service["cache_max_bytes"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(cache_.maxBytes()));
    doc["service"] = std::move(service);

    telemetry::JsonValue sum = telemetry::JsonValue::object();
    sum["submitted"] = telemetry::JsonValue(totals.submitted);
    sum["completed"] = telemetry::JsonValue(totals.completed);
    sum["failed"] = telemetry::JsonValue(totals.failed);
    sum["cancelled"] = telemetry::JsonValue(totals.cancelled);
    sum["rejected"] = telemetry::JsonValue(totals.rejected);
    sum["shots_completed"] =
        telemetry::JsonValue(totals.shotsCompleted);
    sum["retries"] = telemetry::JsonValue(totals.retries);
    sum["dropped_batches"] =
        telemetry::JsonValue(totals.droppedBatches);

    telemetry::JsonValue cache = telemetry::JsonValue::object();
    cache["hits"] = telemetry::JsonValue(totals.cache.hits);
    cache["misses"] = telemetry::JsonValue(totals.cache.misses);
    cache["evictions"] =
        telemetry::JsonValue(totals.cache.evictions);
    cache["invalidations"] =
        telemetry::JsonValue(totals.cache.invalidations);
    cache["single_flight_waits"] =
        telemetry::JsonValue(totals.cache.singleFlightWaits);
    cache["bytes_used"] =
        telemetry::JsonValue(totals.cache.bytesUsed);
    cache["entries"] =
        telemetry::JsonValue(totals.cache.entries);
    sum["cache"] = std::move(cache);
    doc["summary"] = std::move(sum);

    std::shared_ptr<telemetry::HealthMonitor> health;
    std::map<std::string,
             std::function<telemetry::JsonValue()>>
        sections;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        health = health_;
        sections = manifestSections_;
    }
    if (health)
        doc["health"] = health->toJson();
    // Evaluated outside mutex_: a section callable may take its
    // own subsystem lock (and must not deadlock against ours).
    for (const auto& [key, section] : sections)
        doc[key] = section();

    telemetry::JsonValue jobsJson =
        telemetry::JsonValue::array();
    for (const JobRecord& record : jobs)
        jobsJson.push(record.toJson());
    doc["jobs"] = std::move(jobsJson);
    return doc;
}

bool
JobService::writeSummary(const std::string& path) const
{
    return telemetry::writeTextAtomic(
        path, summaryJson().dump(2) + "\n");
}

} // namespace qem::svc
