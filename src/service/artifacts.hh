/**
 * @file
 * The non-compiled artifact families of the service cache, plus
 * their key builders.
 *
 * A cache needs an agreed key discipline or two call sites will
 * key the same artifact differently and silently duplicate it.
 * This header is that discipline: every family's key derivation
 * lives here —
 *
 *  - CompiledProgram: (fingerprintCircuit, machine) — built
 *    internally by JobService::submit;
 *  - RbmsProfile: (fingerprintQubits of the measured register,
 *    machine, fingerprint of RbmsOptions) — the characterization
 *    is per (machine, register, technique knobs), not per circuit,
 *    which is exactly why it is worth sharing;
 *  - ConfusionCdf: (fingerprintQubits, machine, fingerprint of the
 *    calibration readout rates) — folding the rates into the key
 *    means a recalibrated machine misses cleanly instead of
 *    serving stale rows.
 */

#ifndef QEM_SERVICE_ARTIFACTS_HH
#define QEM_SERVICE_ARTIFACTS_HH

#include <memory>
#include <vector>

#include "machine/calibration.hh"
#include "mitigation/bfa_policy.hh"
#include "mitigation/rbms.hh"
#include "qsim/circuit.hh"
#include "qsim/counts.hh"
#include "qsim/simulator.hh"
#include "qsim/types.hh"
#include "service/artifact_cache.hh"

namespace qem::svc
{

/**
 * Per-truth-state readout-confusion CDF rows, precomputed from a
 * machine's calibration: row s holds the cumulative distribution of
 * the observed outcome given true state s, under the calibrated
 * independent flip rates plus (if present) readout crosstalk.
 * Useful for O(log) sampling of confused outcomes and for exact
 * P(observed | truth) lookups without re-deriving products of flip
 * rates per shot.
 */
class ConfusionCdf
{
  public:
    /** Largest register the dense representation supports. */
    static constexpr unsigned kMaxBits = 10;

    /**
     * Build rows for the register @p qubits (clbit order) of a
     * machine with calibration @p cal. Throws std::invalid_argument
     * above kMaxBits.
     */
    ConfusionCdf(const Calibration& cal,
                 const std::vector<Qubit>& qubits);

    /**
     * Empirical rows from measured holdout histograms: row s is the
     * normalized frequency of @p per_truth[s] — the shape the
     * recalibration scheduler rebuilds from fresh re-profiling
     * shots, model-free. @p per_truth must hold one histogram per
     * truth state (2^num_bits of them) and every histogram must be
     * non-empty; outcomes wider than @p num_bits throw.
     */
    ConfusionCdf(unsigned num_bits,
                 const std::vector<Counts>& per_truth);

    unsigned numBits() const { return numBits_; }

    /** P(observed | truth), recovered from adjacent CDF entries. */
    double probability(BasisState truth, BasisState observed) const;

    /**
     * The observed outcome whose CDF bucket contains @p u (uniform
     * in [0,1)); binary search, O(numBits) time.
     */
    BasisState sample(BasisState truth, double u) const;

    /** Row @p truth: cumulative probability per observed outcome. */
    const std::vector<double>& row(BasisState truth) const;

    /** Estimated resident bytes (for cache cost accounting). */
    std::size_t bytes() const;

  private:
    unsigned numBits_;
    /** rows_[truth][observed] = P(outcome <= observed | truth). */
    std::vector<std::vector<double>> rows_;
};

/**
 * @p key with @p generation folded into its options fingerprint.
 * Generation 0 is the identity, so un-versioned call sites keep
 * their historical keys. The recalibration scheduler publishes each
 * refresh under the next generation and invalidates the previous
 * one: in-flight consumers keep their pinned shared_ptr, new
 * lookups miss cleanly onto the fresh artifact.
 */
ArtifactKey withGeneration(ArtifactKey key,
                           std::uint64_t generation);

/**
 * Cache key of a compiled program for (machine, circuit) under a
 * machine @p generation (bumped by JobService::replaceMachine so a
 * swapped backend never serves a previous backend's lowering).
 */
ArtifactKey compiledProgramKey(const std::string& machine,
                               const Circuit& circuit,
                               std::uint64_t generation = 0);

/** Cache key of the RBMS profile for (machine, register, knobs). */
ArtifactKey rbmsProfileKey(const std::string& machine,
                           const std::vector<Qubit>& qubits,
                           const RbmsOptions& options);

/** Cache key of the confusion CDF for (machine, register, rates). */
ArtifactKey confusionCdfKey(const std::string& machine,
                            const std::vector<Qubit>& qubits,
                            const Calibration& cal);

/**
 * The RBMS profile for @p qubits on @p machine, characterizing via
 * characterizeAuto on a miss. Single-flight: concurrent sessions
 * profiling the same machine run one characterization.
 */
std::shared_ptr<const RbmsEstimate> cachedRbmsProfile(
    ArtifactCache& cache, Backend& backend,
    const std::string& machine, const std::vector<Qubit>& qubits,
    const RbmsOptions& options = {}, bool* hit = nullptr);

/** The confusion CDF for @p qubits on @p machine, built from
 *  @p cal on a miss. */
std::shared_ptr<const ConfusionCdf> cachedConfusionCdf(
    ArtifactCache& cache, const Calibration& cal,
    const std::string& machine, const std::vector<Qubit>& qubits,
    bool* hit = nullptr);

/**
 * Cache key of a twirl-string set for (machine, register, policy,
 * twirl knobs). The policy name and twirl seed are both folded into
 * the options fingerprint: two policies — or two seeds — drawing
 * over the same register must never share an entry, or a reseeded
 * run would silently execute the previous seed's strings.
 */
ArtifactKey twirlStringsKey(const std::string& machine,
                            const std::vector<Qubit>& qubits,
                            const std::string& policy,
                            std::uint64_t twirl_seed,
                            unsigned num_groups);

/**
 * The BFA twirl-string set for @p qubits on @p machine, drawn via
 * BitFlipAveragePolicy::twirlStrings on a miss. The returned set
 * feeds BitFlipAveragePolicy's precomputed-strings constructor.
 */
std::shared_ptr<const std::vector<BasisState>> cachedTwirlStrings(
    ArtifactCache& cache, const std::string& machine,
    const std::vector<Qubit>& qubits, const BfaOptions& options,
    bool* hit = nullptr);

} // namespace qem::svc

#endif // QEM_SERVICE_ARTIFACTS_HH
