/**
 * @file
 * Background RBMS recalibration: detect → re-profile → swap.
 *
 * PR 7's RbmsStalenessProbe answers "is the cached confusion model
 * still what the live machine produces?" but nothing acted on it:
 * a tripped probe left stale artifacts pinned in the ArtifactCache
 * forever, and AIM kept inverting onto yesterday's strong states —
 * exactly the failure mode Hicks et al. (arXiv:2010.07496) warn
 * about, and the reason model-free alternatives exist at all
 * (van den Berg et al., arXiv:2012.09738). This scheduler closes
 * the loop at service level:
 *
 *  1. **Detect** — run the staleness probe per watched machine,
 *     sampling fresh holdout shots through the JobService itself
 *     (Background priority; tenant traffic is never blocked).
 *  2. **Re-profile** — on a trip, submit one low-priority holdout
 *     job per truth state and rebuild the RbmsProfile /
 *     ConfusionCdf empirically from the fresh histograms.
 *  3. **Swap** — publish the rebuilt artifacts under the next
 *     *generation-versioned* cache key, invalidate the previous
 *     generation, and atomically swap the scheduler's current
 *     pointers. In-flight consumers keep their pinned shared_ptr
 *     generation; every lookup after the swap resolves the fresh
 *     one. There is no torn state: the {profile, confusion,
 *     generation} triple changes under one lock.
 *
 * Observability: `service.recal.trips` / `service.recal.refreshes`
 * counters, the `service.recal.swap_generation` gauge, RecalTrip /
 * RecalSwap flight-recorder events (exactly one RecalSwap per
 * refresh), a `recalibration_lag` health probe (trips not yet
 * answered by a refresh), and a "recalibration" section in the
 * service manifest rendered by tools/invertq_statusz. See
 * docs/recalibration.md.
 */

#ifndef QEM_SERVICE_RECALIBRATION_HH
#define QEM_SERVICE_RECALIBRATION_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mitigation/rbms.hh"
#include "service/artifacts.hh"
#include "service/job_service.hh"
#include "service/staleness.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/health.hh"

namespace qem::svc
{

/**
 * Holdout sampler that runs the prep circuits as Background jobs
 * on @p service — the production replay path, sharing the queue
 * (and its admission control) with tenant traffic instead of
 * stalling it. The job key is drawn from the probe's own stream
 * (`rng.bits()`), so the probe's epoch discipline carries into the
 * service's deterministic (tenant, jobKey) tree: a rolled-back
 * epoch retry resubmits the *identical* job.
 *
 * @param machine_qubits Width of the registered backend (prep
 *        circuits are machine-wide, like holdoutFromBackend's).
 */
HoldoutSampler holdoutFromService(JobService& service,
                                  std::string machine,
                                  unsigned machine_qubits,
                                  std::vector<Qubit> qubits,
                                  std::string tenant = "__recal");

/** Knobs of one scheduler instance. */
struct RecalOptions
{
    /** Probe configuration (budget, alpha, seed). The effective
     *  per-probe seed also folds in machine name and generation,
     *  so machines and refreshes never share sample streams. */
    StalenessOptions staleness{};
    /** Holdout shots per truth state when re-profiling. Keep well
     *  above staleness.shotsPerState: the published rows must be
     *  estimated tighter than the probe can distinguish, or the
     *  probe would reject its own refresh. */
    std::size_t profileShotsPerState = 16384;
    /** Tenant the maintenance jobs bill to (its own audit
     *  lineage, visible per-tenant in the status page). */
    std::string tenant = "__recal";
    /** Ring capacity of the scheduler's flight recorder. */
    std::size_t flightCapacity = 64;
};

/** Generation-versioned cache key of the scheduler's empirical
 *  RBMS profile for (machine, register). */
ArtifactKey recalProfileKey(const std::string& machine,
                            const std::vector<Qubit>& qubits,
                            std::uint64_t generation);

/** Generation-versioned cache key of the scheduler's empirical
 *  confusion CDF for (machine, register). */
ArtifactKey recalConfusionKey(const std::string& machine,
                              const std::vector<Qubit>& qubits,
                              std::uint64_t generation);

/** Deterministic job key of re-profiling job (machine,
 *  generation, truth) — explicit keys keep the maintenance
 *  streams independent of submission order. */
std::uint64_t recalProfileJobKey(const std::string& machine,
                                 std::uint64_t generation,
                                 BasisState truth);

class RecalibrationScheduler
{
  public:
    /**
     * @param service The job service whose machines, queue, and
     *        artifact cache the scheduler operates on. Must
     *        outlive the scheduler.
     */
    explicit RecalibrationScheduler(JobService& service,
                                    RecalOptions options = {});

    /** stop()s the background thread and unregisters the
     *  manifest section. */
    ~RecalibrationScheduler();

    RecalibrationScheduler(const RecalibrationScheduler&) = delete;
    RecalibrationScheduler&
    operator=(const RecalibrationScheduler&) = delete;

    /**
     * Start watching @p name (must already be registered with the
     * service): bootstrap the generation-0 profile/confusion pair
     * by running the re-profiling jobs once, publish them under
     * the generation-0 keys, and install the staleness probe.
     * Bootstrapping empirically — through the same backend, prep
     * circuits, and service path the probe replays later — keeps
     * cached and live samples drawn from one distribution family,
     * so gate noise in the prep circuits can never trip the probe
     * by itself.
     *
     * @param machine_qubits Width of the registered backend.
     * @param qubits Measured register (clbit order), at most
     *        ConfusionCdf::kMaxBits wide.
     * @throws std::invalid_argument for an unregistered machine,
     *         an already-watched machine, or a bad register.
     */
    void watchMachine(const std::string& name,
                      unsigned machine_qubits,
                      std::vector<Qubit> qubits);

    /**
     * One detection pass over every watched machine: run its
     * staleness probe; on a trip, re-profile and swap. Safe to
     * call concurrently (passes serialize) and alongside tenant
     * submissions. A refresh that fails (e.g. queue full) leaves
     * the trip outstanding — visible through lagProbe() — and is
     * retried on the next pass.
     *
     * @return Machines refreshed in this pass.
     */
    std::size_t checkNow();

    /** Current artifact generation of @p name (0 = bootstrap). */
    std::uint64_t generation(const std::string& name) const;

    /** Current profile of @p name. Holders keep their generation
     *  pinned across later swaps (shared_ptr semantics). */
    std::shared_ptr<const RbmsEstimate>
    currentProfile(const std::string& name) const;

    /** Current confusion model of @p name (same pinning). */
    std::shared_ptr<const ConfusionCdf>
    currentConfusion(const std::string& name) const;

    /** Probe trips across all machines so far. */
    std::uint64_t trips() const;

    /** Completed refreshes (swaps) across all machines so far. */
    std::uint64_t refreshes() const;

    /** Probe/refresh attempts that threw (queue full, backend
     *  failure); each leaves the stale artifacts serving. */
    std::uint64_t errors() const;

    /** Scheduler flight-recorder events (RecalTrip/RecalSwap). */
    std::vector<telemetry::FlightEvent> flightEvents() const;

    /**
     * Health probe "recalibration_lag": number of watched machines
     * that tripped but have not been refreshed yet (a later
     * successful refresh clears the machine's lag, so a transient
     * refresh failure does not degrade health forever).
     * 0 = Healthy, 1 = Degraded, >= 2 = Unhealthy. Add it to the
     * service's HealthMonitor; it must not outlive the scheduler.
     */
    std::shared_ptr<telemetry::HealthProbe> lagProbe();

    /** The manifest section ("recalibration"): totals, per-machine
     *  generations, and the flight ring. */
    telemetry::JsonValue toJson() const;

    /**
     * Run checkNow() every @p period_seconds on a background
     * thread until stop(). The paper-scale deployment cadence;
     * tests and benches drive checkNow() directly instead.
     */
    void start(double period_seconds);

    /** Join the background thread (idempotent). */
    void stop();

  private:
    struct Watched
    {
        unsigned machineQubits = 0;
        std::vector<Qubit> qubits;
        std::uint64_t generation = 0;
        std::shared_ptr<const RbmsEstimate> profile;
        std::shared_ptr<const ConfusionCdf> confusion;
        std::shared_ptr<RbmsStalenessProbe> probe;
        std::uint64_t trips = 0;
        std::uint64_t refreshes = 0;
        /** Tripped but not yet refreshed (feeds lagProbe). */
        bool pendingTrip = false;
    };

    struct Profiled
    {
        std::shared_ptr<const RbmsEstimate> profile;
        std::shared_ptr<const ConfusionCdf> confusion;
    };

    /** Submit the per-truth-state holdout jobs, build the
     *  empirical artifacts, publish them under the generation's
     *  cache keys. No scheduler lock held (jobs take time). */
    Profiled reprofile(const std::string& name,
                       unsigned machine_qubits,
                       const std::vector<Qubit>& qubits,
                       std::uint64_t generation);

    /** Probe over @p confusion with a (machine, generation)-keyed
     *  seed, sampling live through the service. */
    std::shared_ptr<RbmsStalenessProbe>
    makeProbe(const std::string& name, unsigned machine_qubits,
              const std::vector<Qubit>& qubits,
              std::shared_ptr<const ConfusionCdf> confusion,
              std::uint64_t generation) const;

    JobService& service_;
    RecalOptions options_;
    telemetry::FlightRecorder flight_;

    mutable std::mutex mutex_;
    std::map<std::string, Watched> watched_;
    std::uint64_t trips_ = 0;
    std::uint64_t refreshes_ = 0;
    std::uint64_t errors_ = 0;

    /** Serializes whole checkNow() passes. */
    std::mutex passMutex_;

    std::mutex threadMutex_;
    std::condition_variable stopCv_;
    std::thread thread_;
    bool stopping_ = false;
};

} // namespace qem::svc

#endif // QEM_SERVICE_RECALIBRATION_HH
