/**
 * @file
 * Deterministic 64-bit fingerprints for cache keys.
 *
 * The ArtifactCache keys expensive per-machine artifacts by
 * (circuit, machine, options). Pointer identity is useless across
 * tenants — two users submitting the same canary circuit must hit
 * the same cache line — so keys are content fingerprints: FNV-1a
 * over a canonical byte serialization. Fingerprints are stable
 * within a process run and across runs on the same platform; they
 * are cache keys, not cryptographic digests.
 */

#ifndef QEM_SERVICE_FINGERPRINT_HH
#define QEM_SERVICE_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qsim/circuit.hh"

namespace qem::svc
{

/** FNV-1a offset basis; the seed of an empty fingerprint. */
inline constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

/** Fold @p byte into @p h (FNV-1a step). */
std::uint64_t fnvByte(std::uint64_t h, unsigned char byte);

/** Fold a 64-bit word (little-endian byte order). */
std::uint64_t fnvWord(std::uint64_t h, std::uint64_t word);

/** Fold a double via its IEEE-754 bit pattern (so -0.0 != 0.0). */
std::uint64_t fnvDouble(std::uint64_t h, double value);

/** Fold a string (length-prefixed, so "ab","c" != "a","bc"). */
std::uint64_t fnvString(std::uint64_t h, const std::string& s);

/**
 * Fingerprint of a circuit's full content: register sizes plus
 * every operation's kind, operands, parameters, and classical
 * destination, in program order. Circuits that execute identically
 * but differ structurally (e.g. an extra barrier) fingerprint
 * differently — the cache may then compile twice, which is safe.
 */
std::uint64_t fingerprintCircuit(const Circuit& circuit);

/** Fingerprint of a qubit list (e.g. a measured register). */
std::uint64_t fingerprintQubits(const std::vector<Qubit>& qubits);

/** Fingerprint of a string (tenant ids, machine names). */
std::uint64_t fingerprintString(const std::string& s);

} // namespace qem::svc

#endif // QEM_SERVICE_FINGERPRINT_HH
