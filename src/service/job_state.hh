/**
 * @file
 * Shared mutable state of one in-flight job. Internal to the
 * service layer: JobService writes it from pool workers, JobHandle
 * reads it from submitter threads; every access takes the job
 * mutex (batch execution itself runs lock-free on the worker's
 * stack — only result hand-off synchronizes here).
 */

#ifndef QEM_SERVICE_JOB_STATE_HH
#define QEM_SERVICE_JOB_STATE_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "qsim/circuit.hh"
#include "qsim/counts.hh"
#include "qsim/rng.hh"
#include "service/job.hh"
#include "telemetry/flight_recorder.hh"

namespace qem::svc
{

struct JobState
{
    std::mutex mutex;
    std::condition_variable terminalCv;

    /** Final record; status field is the job's lifecycle. */
    JobRecord record;

    /** The physical circuit the job executes (placeholder width
     *  until submit() assigns the real one; Circuit rejects 0). */
    Circuit circuit{1};
    /** Root of the job's RNG tree (batch i uses splitAt(i)). */
    Rng jobRng;
    /** Per-batch retry budget and salvage mode. */
    unsigned maxRetries = 0;
    SalvageMode salvage = SalvageMode::FailFast;

    /** Per-batch partial histograms, merged in index order. */
    std::vector<Counts> partial;
    /** Batches not yet finished (success, drop, or skip). */
    std::size_t remaining = 0;
    /** Set by cancel(); pending batches become no-ops. */
    bool cancelled = false;
    /** Set by the first fatal/exhausted batch under FailFast. */
    std::exception_ptr failure;
    /**
     * Set once the terminal job is recorded in the service audit
     * log and totals. JobHandle::wait() keys on this (not the
     * status) so a returned wait() implies auditLog()/summary()
     * already account for the job.
     */
    bool audited = false;

    /** Merged result (valid once status == Completed). */
    Counts result{0};

    /** Monotonic submit timestamp for wallSeconds. */
    double submitSeconds = 0.0;
    /** Monotonic timestamp of the first batch dispatch (queued ->
     *  running edge); 0 until then. Feeds the queue-wait/execute
     *  split in the audit record. */
    double firstDispatchSeconds = 0.0;

    /**
     * Per-job flight recorder; null unless recording is on
     * (telemetry enabled at submit, or ServiceOptions::
     * flightRecorder). Timestamps are seconds since submission.
     * Has its own mutex, so workers record without the job lock.
     */
    std::shared_ptr<telemetry::FlightRecorder> flight;
};

} // namespace qem::svc

#endif // QEM_SERVICE_JOB_STATE_HH
