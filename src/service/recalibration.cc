#include "service/recalibration.hh"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "service/fingerprint.hh"
#include "telemetry/telemetry.hh"

namespace qem::svc
{

namespace
{

/** Options fingerprint marking the empirical (measured, not
 *  calibration-derived) artifact family. */
std::uint64_t
empiricalOptionsFingerprint(const std::string& tag)
{
    std::uint64_t h = kFnvBasis;
    h = fnvString(h, "recal-empirical");
    h = fnvString(h, tag);
    return h;
}

} // namespace

HoldoutSampler
holdoutFromService(JobService& service, std::string machine,
                   unsigned machine_qubits,
                   std::vector<Qubit> qubits, std::string tenant)
{
    if (qubits.empty())
        throw std::invalid_argument(
            "holdoutFromService: empty register");
    JobService* svc = &service;
    return [svc, machine = std::move(machine), machine_qubits,
            qubits = std::move(qubits),
            tenant = std::move(tenant)](BasisState truth,
                                        std::size_t shots,
                                        Rng& rng) {
        JobOptions options;
        options.tenant = tenant;
        options.priority = JobPriority::Background;
        // The job key is drawn from the probe's per-(epoch, state)
        // stream, so a rolled-back epoch retry resubmits a job with
        // the identical (tenant, jobKey) — bit-identical Counts by
        // the service determinism contract.
        options.jobKey = rng.bits();
        options.label = "recal-holdout";
        JobHandle handle = svc->submit(
            machine,
            holdoutPrepCircuit(machine_qubits, qubits, truth),
            shots, options);
        return handle.get();
    };
}

ArtifactKey
recalProfileKey(const std::string& machine,
                const std::vector<Qubit>& qubits,
                std::uint64_t generation)
{
    ArtifactKey key;
    key.kind = ArtifactKind::RbmsProfile;
    key.subject = fingerprintQubits(qubits);
    key.machine = machine;
    key.options = empiricalOptionsFingerprint("profile");
    return withGeneration(std::move(key), generation);
}

ArtifactKey
recalConfusionKey(const std::string& machine,
                  const std::vector<Qubit>& qubits,
                  std::uint64_t generation)
{
    ArtifactKey key;
    key.kind = ArtifactKind::ConfusionCdf;
    key.subject = fingerprintQubits(qubits);
    key.machine = machine;
    key.options = empiricalOptionsFingerprint("confusion");
    return withGeneration(std::move(key), generation);
}

std::uint64_t
recalProfileJobKey(const std::string& machine,
                   std::uint64_t generation, BasisState truth)
{
    std::uint64_t h = kFnvBasis;
    h = fnvString(h, "recal-profile");
    h = fnvString(h, machine);
    h = fnvWord(h, generation);
    h = fnvWord(h, truth);
    return h;
}

RecalibrationScheduler::RecalibrationScheduler(
    JobService& service, RecalOptions options)
    : service_(service), options_(std::move(options)),
      flight_(options_.flightCapacity)
{
    service_.addManifestSection("recalibration",
                                [this] { return toJson(); });
}

RecalibrationScheduler::~RecalibrationScheduler()
{
    stop();
    service_.removeManifestSection("recalibration");
}

void
RecalibrationScheduler::watchMachine(const std::string& name,
                                     unsigned machine_qubits,
                                     std::vector<Qubit> qubits)
{
    if (!service_.hasMachine(name))
        throw std::invalid_argument(
            "RecalibrationScheduler: machine '" + name +
            "' is not registered with the service");
    if (qubits.empty() || qubits.size() > ConfusionCdf::kMaxBits)
        throw std::invalid_argument(
            "RecalibrationScheduler: watched register must hold "
            "1.." +
            std::to_string(ConfusionCdf::kMaxBits) +
            " qubits, got " + std::to_string(qubits.size()));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (watched_.count(name) != 0)
            throw std::invalid_argument(
                "RecalibrationScheduler: machine '" + name +
                "' is already watched");
    }

    // Bootstrap generation 0 through the same job path refreshes
    // use: cached and live samples then come from one distribution
    // family, so prep-circuit gate noise cancels out of the probe.
    Profiled bootstrap =
        reprofile(name, machine_qubits, qubits, 0);

    Watched watched;
    watched.machineQubits = machine_qubits;
    watched.qubits = std::move(qubits);
    watched.generation = 0;
    watched.profile = bootstrap.profile;
    watched.confusion = bootstrap.confusion;
    watched.probe = makeProbe(name, machine_qubits,
                              watched.qubits,
                              bootstrap.confusion, 0);

    std::lock_guard<std::mutex> lock(mutex_);
    if (!watched_.emplace(name, std::move(watched)).second)
        throw std::invalid_argument(
            "RecalibrationScheduler: machine '" + name +
            "' is already watched");
}

std::size_t
RecalibrationScheduler::checkNow()
{
    // One pass at a time: two overlapping passes tripping the same
    // machine would race to publish the same next generation.
    std::lock_guard<std::mutex> pass(passMutex_);

    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        names.reserve(watched_.size());
        for (const auto& [name, watched] : watched_) {
            (void)watched;
            names.push_back(name);
        }
    }

    std::size_t refreshed = 0;
    for (const std::string& name : names) {
        std::shared_ptr<RbmsStalenessProbe> probe;
        unsigned machineQubits = 0;
        std::vector<Qubit> qubits;
        std::uint64_t generation = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = watched_.find(name);
            if (it == watched_.end())
                continue;
            probe = it->second.probe;
            machineQubits = it->second.machineQubits;
            qubits = it->second.qubits;
            generation = it->second.generation;
        }

        telemetry::ProbeResult result;
        try {
            // Outside the scheduler lock: the probe submits jobs
            // and blocks on their results.
            result = probe->check();
        } catch (...) {
            // The probe rolled its epoch back (staleness.cc); the
            // next pass replays the identical stream.
            std::lock_guard<std::mutex> lock(mutex_);
            ++errors_;
            continue;
        }
        if (result.status != telemetry::HealthStatus::Unhealthy)
            continue;

        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++trips_;
            auto it = watched_.find(name);
            if (it != watched_.end()) {
                ++it->second.trips;
                it->second.pendingTrip = true;
            }
        }
        telemetry::count("service.recal.trips");
        flight_.record(telemetry::FlightEventKind::RecalTrip, -1,
                       generation, name);

        const std::uint64_t next = generation + 1;
        Profiled fresh;
        try {
            fresh = reprofile(name, machineQubits, qubits, next);
        } catch (...) {
            // Refresh failed (queue full, backend fault): the trip
            // stays outstanding — lagProbe() degrades — and the
            // stale artifacts keep serving until the next pass.
            std::lock_guard<std::mutex> lock(mutex_);
            ++errors_;
            continue;
        }

        // Retire the previous generation from the shared cache.
        // Holders of the old shared_ptr keep their pinned
        // generation; only future lookups are affected.
        service_.cache().invalidate(
            recalConfusionKey(name, qubits, generation));
        service_.cache().invalidate(
            recalProfileKey(name, qubits, generation));

        {
            // The swap: {profile, confusion, generation, probe}
            // change in one critical section, so a reader sees
            // all-old or all-new — never a torn mix.
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = watched_.find(name);
            if (it == watched_.end())
                continue;
            Watched& watched = it->second;
            watched.generation = next;
            watched.profile = fresh.profile;
            watched.confusion = fresh.confusion;
            watched.probe = makeProbe(name, machineQubits, qubits,
                                      fresh.confusion, next);
            ++watched.refreshes;
            watched.pendingTrip = false;
            ++refreshes_;
        }
        telemetry::count("service.recal.refreshes");
        if (telemetry::enabled())
            telemetry::gaugeSet("service.recal.swap_generation",
                                static_cast<double>(next));
        flight_.record(telemetry::FlightEventKind::RecalSwap, -1,
                       next, name);
        ++refreshed;
    }
    return refreshed;
}

RecalibrationScheduler::Profiled
RecalibrationScheduler::reprofile(const std::string& name,
                                  unsigned machine_qubits,
                                  const std::vector<Qubit>& qubits,
                                  std::uint64_t generation)
{
    const unsigned bits = static_cast<unsigned>(qubits.size());
    const std::size_t dim = std::size_t{1} << bits;

    // Submit every truth state before waiting on any: the sweep
    // pipelines through the shared pool, and Background priority
    // lets tenant traffic overtake it batch by batch.
    std::vector<JobHandle> handles;
    handles.reserve(dim);
    for (BasisState truth = 0; truth < dim; ++truth) {
        JobOptions options;
        options.tenant = options_.tenant;
        options.priority = JobPriority::Background;
        options.jobKey =
            recalProfileJobKey(name, generation, truth);
        options.label =
            "recal-profile/gen" + std::to_string(generation);
        handles.push_back(service_.submit(
            name,
            holdoutPrepCircuit(machine_qubits, qubits, truth),
            options_.profileShotsPerState, options));
    }

    std::vector<Counts> perTruth;
    perTruth.reserve(dim);
    for (const JobHandle& handle : handles)
        perTruth.push_back(handle.get());

    auto builtConfusion =
        std::make_shared<const ConfusionCdf>(bits, perTruth);
    // RBMS strength of state s is its survival probability
    // P(observed = s | truth = s) — the paper's definition of how
    // strongly the machine holds a state, read off the diagonal.
    std::vector<double> table(dim, 0.0);
    for (BasisState s = 0; s < dim; ++s)
        table[s] = builtConfusion->probability(s, s);
    auto builtProfile =
        std::make_shared<const ExhaustiveRbms>(std::move(table));

    // Publish under the generation's keys. getOrCompute (not a
    // blind insert) preserves single-flight semantics if another
    // path ever publishes the same generation concurrently.
    ArtifactCache& cache = service_.cache();
    Profiled out;
    out.confusion = cache.getOrCompute<ConfusionCdf>(
        recalConfusionKey(name, qubits, generation),
        [&]() -> ArtifactCache::Costed<ConfusionCdf> {
            return {builtConfusion, builtConfusion->bytes()};
        });
    out.profile = cache.getOrCompute<RbmsEstimate>(
        recalProfileKey(name, qubits, generation),
        [&]() -> ArtifactCache::Costed<RbmsEstimate> {
            return {builtProfile, dim * sizeof(double) + 256};
        });
    return out;
}

std::shared_ptr<RbmsStalenessProbe>
RecalibrationScheduler::makeProbe(
    const std::string& name, unsigned machine_qubits,
    const std::vector<Qubit>& qubits,
    std::shared_ptr<const ConfusionCdf> confusion,
    std::uint64_t generation) const
{
    StalenessOptions probeOptions = options_.staleness;
    // Fold machine and generation into the probe seed: no two
    // machines — and no probe and its post-refresh successor —
    // ever replay the same holdout streams.
    std::uint64_t h = kFnvBasis;
    h = fnvWord(h, probeOptions.seed);
    h = fnvString(h, name);
    h = fnvWord(h, generation);
    probeOptions.seed = h;
    return std::make_shared<RbmsStalenessProbe>(
        std::move(confusion),
        holdoutFromService(service_, name, machine_qubits, qubits,
                           options_.tenant),
        std::move(probeOptions));
}

std::uint64_t
RecalibrationScheduler::generation(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = watched_.find(name);
    if (it == watched_.end())
        throw std::invalid_argument(
            "RecalibrationScheduler: machine '" + name +
            "' is not watched");
    return it->second.generation;
}

std::shared_ptr<const RbmsEstimate>
RecalibrationScheduler::currentProfile(
    const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = watched_.find(name);
    if (it == watched_.end())
        throw std::invalid_argument(
            "RecalibrationScheduler: machine '" + name +
            "' is not watched");
    return it->second.profile;
}

std::shared_ptr<const ConfusionCdf>
RecalibrationScheduler::currentConfusion(
    const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = watched_.find(name);
    if (it == watched_.end())
        throw std::invalid_argument(
            "RecalibrationScheduler: machine '" + name +
            "' is not watched");
    return it->second.confusion;
}

std::uint64_t
RecalibrationScheduler::trips() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return trips_;
}

std::uint64_t
RecalibrationScheduler::refreshes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return refreshes_;
}

std::uint64_t
RecalibrationScheduler::errors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return errors_;
}

std::vector<telemetry::FlightEvent>
RecalibrationScheduler::flightEvents() const
{
    return flight_.events();
}

std::shared_ptr<telemetry::HealthProbe>
RecalibrationScheduler::lagProbe()
{
    return std::make_shared<telemetry::FunctionProbe>(
        "recalibration_lag", [this]() {
            std::uint64_t lag = 0;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                for (const auto& [name, watched] : watched_) {
                    (void)name;
                    if (watched.pendingTrip)
                        ++lag;
                }
            }
            telemetry::ProbeResult result;
            result.value = static_cast<double>(lag);
            if (lag == 0) {
                result.status = telemetry::HealthStatus::Healthy;
                result.message =
                    "every trip answered by a refresh";
            } else {
                result.status =
                    lag == 1
                        ? telemetry::HealthStatus::Degraded
                        : telemetry::HealthStatus::Unhealthy;
                result.message =
                    std::to_string(lag) +
                    " tripped machine(s) awaiting a refresh";
            }
            return result;
        });
}

telemetry::JsonValue
RecalibrationScheduler::toJson() const
{
    telemetry::JsonValue doc = telemetry::JsonValue::object();
    telemetry::JsonValue machines =
        telemetry::JsonValue::array();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        doc["trips"] = telemetry::JsonValue(trips_);
        doc["refreshes"] = telemetry::JsonValue(refreshes_);
        doc["errors"] = telemetry::JsonValue(errors_);
        for (const auto& [name, watched] : watched_) {
            telemetry::JsonValue machine =
                telemetry::JsonValue::object();
            machine["machine"] = telemetry::JsonValue(name);
            machine["swap_generation"] =
                telemetry::JsonValue(watched.generation);
            machine["trips"] =
                telemetry::JsonValue(watched.trips);
            machine["refreshes"] =
                telemetry::JsonValue(watched.refreshes);
            machine["pending_trip"] =
                telemetry::JsonValue(watched.pendingTrip);
            machine["num_bits"] = telemetry::JsonValue(
                static_cast<std::uint64_t>(
                    watched.qubits.size()));
            machines.push(std::move(machine));
        }
    }
    doc["machines"] = std::move(machines);
    doc["flight"] = flight_.toJson();
    return doc;
}

void
RecalibrationScheduler::start(double period_seconds)
{
    if (period_seconds <= 0.0)
        throw std::invalid_argument(
            "RecalibrationScheduler: period must be positive");
    std::lock_guard<std::mutex> lock(threadMutex_);
    if (thread_.joinable())
        throw std::logic_error(
            "RecalibrationScheduler: already started");
    stopping_ = false;
    thread_ = std::thread([this, period_seconds] {
        const auto period =
            std::chrono::duration<double>(period_seconds);
        std::unique_lock<std::mutex> lock(threadMutex_);
        while (!stopCv_.wait_for(lock, period,
                                 [this] { return stopping_; })) {
            lock.unlock();
            try {
                checkNow();
            } catch (...) {
                std::lock_guard<std::mutex> guard(mutex_);
                ++errors_;
            }
            lock.lock();
        }
    });
}

void
RecalibrationScheduler::stop()
{
    std::thread worker;
    {
        std::lock_guard<std::mutex> lock(threadMutex_);
        stopping_ = true;
        worker = std::move(thread_);
    }
    stopCv_.notify_all();
    if (worker.joinable())
        worker.join();
}

} // namespace qem::svc
