#include "service/job.hh"

#include <stdexcept>

#include "service/job_state.hh"

namespace qem::svc
{

const char*
jobPriorityName(JobPriority priority)
{
    switch (priority) {
    case JobPriority::Interactive:
        return "interactive";
    case JobPriority::Batch:
        return "batch";
    case JobPriority::Background:
        return "background";
    }
    return "unknown";
}

const char*
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Queued:
        return "queued";
    case JobStatus::Running:
        return "running";
    case JobStatus::Completed:
        return "completed";
    case JobStatus::Failed:
        return "failed";
    case JobStatus::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

bool
isTerminal(JobStatus status)
{
    return status == JobStatus::Completed ||
           status == JobStatus::Failed ||
           status == JobStatus::Cancelled;
}

telemetry::JsonValue
JobRecord::toJson() const
{
    telemetry::JsonValue doc = telemetry::JsonValue::object();
    doc["id"] = telemetry::JsonValue(id);
    doc["tenant"] = telemetry::JsonValue(tenant);
    doc["machine"] = telemetry::JsonValue(machine);
    if (!label.empty())
        doc["label"] = telemetry::JsonValue(label);
    doc["priority"] =
        telemetry::JsonValue(jobPriorityName(priority));
    doc["job_key"] = telemetry::JsonValue(jobKey);
    doc["shots_requested"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(shotsRequested));
    doc["shots_completed"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(shotsCompleted));
    doc["batches"] =
        telemetry::JsonValue(static_cast<std::uint64_t>(batches));
    doc["retries"] =
        telemetry::JsonValue(static_cast<std::uint64_t>(retries));
    doc["dropped_batches"] = telemetry::JsonValue(
        static_cast<std::uint64_t>(droppedBatches));
    doc["salvage"] = telemetry::JsonValue(
        salvage == SalvageMode::DropBatches ? "drop_batches"
                                            : "fail_fast");
    doc["cache_hits"] = telemetry::JsonValue(cacheHits);
    doc["cache_misses"] = telemetry::JsonValue(cacheMisses);
    doc["compiled"] = telemetry::JsonValue(compiled);
    doc["status"] = telemetry::JsonValue(jobStatusName(status));
    if (!error.empty())
        doc["error"] = telemetry::JsonValue(error);
    doc["wall_seconds"] = telemetry::JsonValue(wallSeconds);
    doc["queue_wait_seconds"] =
        telemetry::JsonValue(queueWaitSeconds);
    doc["exec_seconds"] = telemetry::JsonValue(execSeconds);
    if (!flight.empty()) {
        telemetry::JsonValue events =
            telemetry::JsonValue::array();
        for (const telemetry::FlightEvent& event : flight)
            events.push(event.toJson());
        doc["flight"] = std::move(events);
        if (flightDropped > 0)
            doc["flight_dropped"] =
                telemetry::JsonValue(flightDropped);
    }
    return doc;
}

std::uint64_t
JobHandle::id() const
{
    if (!state_)
        throw std::logic_error("JobHandle: empty handle");
    return state_->record.id;
}

JobStatus
JobHandle::status() const
{
    if (!state_)
        throw std::logic_error("JobHandle: empty handle");
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->record.status;
}

void
JobHandle::wait() const
{
    if (!state_)
        throw std::logic_error("JobHandle: empty handle");
    std::unique_lock<std::mutex> lock(state_->mutex);
    // Keyed on audited, not the terminal status: the service flags
    // it only after the job is in the audit log and totals, so a
    // returned wait() means summary() already counts this job.
    state_->terminalCv.wait(lock,
                            [this] { return state_->audited; });
}

const Counts&
JobHandle::get() const
{
    wait();
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->failure)
        std::rethrow_exception(state_->failure);
    if (state_->record.status == JobStatus::Cancelled)
        throw JobCancelled("job " +
                           std::to_string(state_->record.id) +
                           " was cancelled");
    return state_->result;
}

const JobRecord&
JobHandle::record() const
{
    wait();
    // Terminal records are immutable, so the reference is safe to
    // read without the lock after wait().
    return state_->record;
}

} // namespace qem::svc
